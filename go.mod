module dsidx

go 1.24
