// DTW similarity search on an unchanged MESSI index — the paper's §V
// extension: "we can index a dataset once, and then use this index to
// answer both Euclidean and DTW similarity search queries."
//
// The example indexes phase-shifted oscillations; for a query that is a
// time-warped copy of a dataset member, Euclidean distance is misled by
// the misalignment while DTW recovers the true match.
//
//	go run ./examples/dtw
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dsidx"
)

const length = 128

// wave produces a three-component oscillation with the given stretch
// applied to its time axis (stretch 1 = canonical shape). The component
// frequencies, mix and phases vary per shape seed, so shapes are distinct.
func wave(seedShape int64, stretch float64, noise float64, rng *rand.Rand) dsidx.Series {
	sr := rand.New(rand.NewSource(seedShape*2654435761 + 1))
	f1 := 2 + sr.Float64()*8
	f2 := f1 * (1.5 + sr.Float64())
	f3 := f1 * (3 + sr.Float64()*2)
	a2 := 0.2 + sr.Float64()*0.6
	a3 := 0.1 + sr.Float64()*0.4
	p1 := sr.Float64() * 2 * math.Pi
	p2 := sr.Float64() * 2 * math.Pi
	s := make(dsidx.Series, length)
	for i := range s {
		t := math.Pow(float64(i)/length, stretch) // nonlinear time warp
		v := math.Sin(2*math.Pi*f1*t+p1) + a2*math.Sin(2*math.Pi*f2*t+p2) + a3*math.Sin(2*math.Pi*f3*t)
		if noise > 0 {
			v += rng.NormFloat64() * noise
		}
		s[i] = float32(v)
	}
	return s
}

func main() {
	rng := rand.New(rand.NewSource(3))

	// Collection: 20k distinct shapes, canonical timing.
	const n = 20_000
	coll := dsidx.NewCollection(n, length)
	for i := 0; i < n; i++ {
		coll.Set(i, wave(int64(i), 1.0, 0.05, rng))
	}
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Query: shape #7777, but time-warped (stretch 1.15) — same event,
	// different local speed, as sensors and natural processes produce.
	const target = 7777
	q := wave(target, 1.15, 0.05, rng)

	ed, err := idx.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	dtw, err := idx.SearchDTW(q, 12) // Sakoe-Chiba half-width 12 (~10% of n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query is a warped copy of series #%d\n", target)
	fmt.Printf("Euclidean 1-NN: series #%d at distance %.3f\n", ed.Pos, ed.Distance)
	fmt.Printf("DTW(12)   1-NN: series #%d at distance %.3f\n", dtw.Pos, dtw.Distance)
	switch {
	case dtw.Pos == target && ed.Pos != target:
		fmt.Println("=> DTW recovered the true match that Euclidean distance missed.")
	case dtw.Pos == target && ed.Pos == target:
		fmt.Println("=> both measures found the true match (DTW with a much smaller distance).")
	default:
		fmt.Println("=> warping too strong for this window; try a wider band.")
	}

	// DTW distances never exceed ED distances on the same candidates.
	if dtw.Distance > ed.Distance+1e-9 {
		log.Fatalf("invariant violated: DTW %v > ED %v", dtw.Distance, ed.Distance)
	}
}
