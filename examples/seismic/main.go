// On-disk indexing of a seismic archive: the ParIS+ workflow for
// collections that do not fit in memory, with simulated HDD and SSD
// devices showing the storage-latency regimes of the paper's Figures 8,
// 10 and 11.
//
//	go run ./examples/seismic
package main

import (
	"fmt"
	"log"
	"time"

	"dsidx"
)

func main() {
	const n = 50_000
	fmt.Printf("generating %d seismic-like series...\n", n)
	coll := dsidx.Generate(dsidx.Seismic, n, 0, 11)
	// Queries with a close match in the archive (the realistic case when
	// matching an observed event against a large archive).
	queries := dsidx.GeneratePerturbedQueries(coll, 3, 0.05, 11)

	for _, profile := range []dsidx.DiskProfile{dsidx.HDD, dsidx.SSD} {
		fmt.Printf("\n=== device: %s ===\n", profile.Name)
		dc, err := dsidx.NewSimulatedDisk(coll, profile)
		if err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		idx, err := dsidx.NewParISPlus(dc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ParIS+ index created in %v\n", time.Since(t0).Round(time.Millisecond))
		m := dc.Metrics()
		fmt.Printf("  device during build: %d reads (%d MB), %d writes, %d seeks\n",
			m.ReadOps, m.BytesRead>>20, m.WriteOps, m.Seeks)

		dc.ResetMetrics()
		for i := 0; i < queries.Len(); i++ {
			q := queries.At(i)
			t0 = time.Now()
			match, err := idx.Search(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  query %d: series #%d at %.4f in %v\n",
				i, match.Pos, match.Distance, time.Since(t0).Round(time.Microsecond))
		}
		m = dc.Metrics()
		fmt.Printf("  device during queries: %d random reads, %d seeks, %v busy\n",
			m.ReadOps, m.Seeks, m.ReadBusy.Round(time.Millisecond))
	}
	fmt.Println("\nThe SSD's cheap random reads make the exact-distance phase far faster,")
	fmt.Println("reproducing the HDD-vs-SSD gap of the paper's Figure 8.")
}
