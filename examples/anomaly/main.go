// Anomaly detection with similarity search — the use case the paper's
// introduction motivates ("users need to query and analyze them (e.g.,
// detect anomalies)"; discord-style detection reduces to nearest-neighbor
// distance).
//
// A reference collection of normal heartbeats-like signals is indexed with
// MESSI; incoming windows whose nearest-neighbor distance is unusually
// large are flagged as anomalies. Exact NN distance is what makes the
// detector trustworthy: no false dismissals from approximation.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"dsidx"
)

const length = 128

// normalWindow synthesizes a "healthy" quasi-periodic signal window.
func normalWindow(rng *rand.Rand) dsidx.Series {
	s := make(dsidx.Series, length)
	freq := 4 + rng.Float64()*2
	phase := rng.Float64() * 2 * math.Pi
	for i := range s {
		t := float64(i) / length
		v := math.Sin(2*math.Pi*freq*t+phase) + 0.3*math.Sin(2*math.Pi*2*freq*t)
		s[i] = float32(v + rng.NormFloat64()*0.1)
	}
	return s
}

// anomalousWindow injects a flatline segment — a typical sensor fault.
func anomalousWindow(rng *rand.Rand) dsidx.Series {
	s := normalWindow(rng)
	start := 30 + rng.Intn(40)
	for i := start; i < start+35 && i < len(s); i++ {
		s[i] = s[start]
	}
	return s
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Reference collection: 50k windows of normal behaviour.
	const n = 50_000
	coll := dsidx.NewCollection(n, length)
	for i := 0; i < n; i++ {
		coll.Set(i, normalWindow(rng))
	}
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d reference windows\n", idx.Len())

	// Incoming stream: mostly normal, a few anomalies at known positions.
	type window struct {
		id      int
		s       dsidx.Series
		anomaly bool
	}
	stream := make([]window, 0, 200)
	for i := 0; i < 200; i++ {
		w := window{id: i}
		if i%29 == 13 { // known anomalous positions
			w.s, w.anomaly = anomalousWindow(rng), true
		} else {
			w.s = normalWindow(rng)
		}
		stream = append(stream, w)
	}

	// Score each window by its exact NN distance to the reference set.
	type scored struct {
		window
		dist float64
	}
	results := make([]scored, 0, len(stream))
	for _, w := range stream {
		m, err := idx.Search(w.s)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{w, m.Distance})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].dist > results[j].dist })

	// The windows with the largest NN distances should be the anomalies.
	expected := 0
	for _, w := range stream {
		if w.anomaly {
			expected++
		}
	}
	fmt.Printf("top %d windows by NN distance (expected anomalies: %d):\n", expected+3, expected)
	hit := 0
	for rank, r := range results[:expected+3] {
		marker := " "
		if r.anomaly {
			marker = "ANOMALY"
			if rank < expected {
				hit++
			}
		}
		fmt.Printf("  %2d. window %3d  dist %.3f  %s\n", rank+1, r.id, r.dist, marker)
	}
	fmt.Printf("recall@%d: %d/%d\n", expected, hit, expected)
}
