// High-dimensional vector search — the paper's §V observation that "our
// techniques are applicable to high-dimensional vectors in general (not
// just sequences) ... such as similarity search for images" (deep learning
// embeddings).
//
// The example synthesizes a corpus of embedding vectors organized in
// latent clusters (as trained encoders produce), indexes them with MESSI,
// and shows that nearest-neighbor search retrieves members of the query's
// own cluster — plus the exactness check against brute force.
//
//	go run ./examples/embeddings
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dsidx"
)

const (
	dim      = 256 // embedding dimensionality (must be a multiple of 16 segments)
	clusters = 200
	perClust = 250 // corpus = 50k embeddings
)

// centroid returns the deterministic center of cluster c on the unit
// sphere-ish shell.
func centroid(c int) dsidx.Series {
	rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
	v := make(dsidx.Series, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	normalize(v)
	return v
}

// member draws an embedding near its cluster centroid.
func member(center dsidx.Series, rng *rand.Rand, spread float64) dsidx.Series {
	v := make(dsidx.Series, dim)
	for i := range v {
		v[i] = center[i] + float32(rng.NormFloat64()*spread)
	}
	normalize(v)
	return v
}

// normalize scales v to unit L2 norm (embeddings are typically
// normalized, making Euclidean distance equivalent to cosine distance).
func normalize(v dsidx.Series) {
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	n := float32(1 / math.Sqrt(ss))
	for i := range v {
		v[i] *= n
	}
}

func main() {
	rng := rand.New(rand.NewSource(99))
	corpus := dsidx.NewCollection(clusters*perClust, dim)
	labels := make([]int, corpus.Len())
	for c := 0; c < clusters; c++ {
		ctr := centroid(c)
		for j := 0; j < perClust; j++ {
			i := c*perClust + j
			corpus.Set(i, member(ctr, rng, 0.05))
			labels[i] = c
		}
	}
	fmt.Printf("indexed corpus: %d embeddings of dimension %d in %d latent clusters\n",
		corpus.Len(), dim, clusters)

	idx, err := dsidx.NewMESSI(corpus)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Queries: fresh embeddings from known clusters.
	correct, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		wantCluster := rng.Intn(clusters)
		q := member(centroid(wantCluster), rng, 0.05)

		top, err := idx.SearchKNN(q, 10)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range top {
			total++
			if labels[m.Pos] == wantCluster {
				correct++
			}
		}
		// Exactness: the 1-NN equals brute force.
		if scan := dsidx.ScanNearest(corpus, q); scan.Pos != top[0].Pos &&
			math.Abs(scan.Distance-top[0].Distance) > 1e-9 {
			log.Fatalf("exactness violated: index %v vs scan %v", top[0], scan)
		}
	}
	fmt.Printf("top-10 retrieval purity over 20 queries: %.1f%% (%d/%d from the query's cluster)\n",
		100*float64(correct)/float64(total), correct, total)
	fmt.Println("every 1-NN answer verified exact against brute force")
}
