// Quickstart: build a MESSI index over a synthetic collection and answer
// exact nearest-neighbor queries in milliseconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dsidx"
)

func main() {
	const (
		n      = 100_000
		length = 256
	)
	fmt.Printf("generating %d random-walk series of length %d...\n", n, length)
	coll := dsidx.Generate(dsidx.Synthetic, n, length, 42)

	t0 := time.Now()
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("MESSI index built in %v: %+v\n", time.Since(t0).Round(time.Millisecond), idx.Stats())

	queries := dsidx.GenerateQueries(dsidx.Synthetic, 5, length, 42)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		t0 = time.Now()
		m, err := idx.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)

		// The index is exact: a brute-force scan agrees.
		check := dsidx.ScanNearest(coll, q)
		fmt.Printf("query %d: nearest series #%d at distance %.4f in %v (scan agrees: %v)\n",
			i, m.Pos, m.Distance, elapsed.Round(time.Microsecond), check.Pos == m.Pos)
	}

	// k-NN on the same index.
	q := queries.At(0)
	top, err := idx.SearchKNN(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5 nearest neighbors of query 0:")
	for rank, m := range top {
		fmt.Printf("  %d. series #%d at %.4f\n", rank+1, m.Pos, m.Distance)
	}
}
