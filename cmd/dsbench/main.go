// Command dsbench reproduces the paper's evaluation: it runs any (or all)
// of the figure/ablation experiments and prints tables shaped like the
// paper's plots.
//
// Usage:
//
//	dsbench -list
//	dsbench -experiment fig9
//	dsbench -experiment all -series 200000 -queries 5
//	dsbench -experiment concurrent -inflight 1,8,32
//	dsbench -experiment ingest -appendrate 0,5000,50000
//	dsbench -experiment sharded -shards 1,2,4
//	dsbench -benchjson BENCH_query.json -series 50000 -queries 16
//	dsbench -shardedjson BENCH_sharded.json -shards 1,2,4
//	dsbench -memjson BENCH_mem.json -series 20000 -shards 4
//	dsbench -diskjson BENCH_disk.json -series 20000 -queries 8
//	dsbench -kerneljson BENCH_query.json
//	dsbench -metrics -series 4000
//	dsbench -faults -series 3000
//
// The concurrent experiment is the serving-engine workload: it measures
// MESSI throughput (queries/s) with the given numbers of queries in flight
// on the shared worker pool. The ingest experiment is the live-write
// workload: query QPS and append throughput with a writer streaming new
// series into the serving index at each configured rate.
//
// Each experiment prints its measured table followed by a note restating
// the paper's claim for that figure, so measured-vs-paper comparison is
// immediate. See EXPERIMENTS.md for recorded results.
//
// The sharded experiment sweeps shard counts: the same collection
// partitioned across N MESSI shards answering by scatter-gather with one
// shared best-so-far on one shared worker pool.
//
// -benchjson writes the machine-readable query-performance record
// (ns/query, QPS across the in-flight sweep, raw distances per query) to
// the given path instead of running experiments — the perf-trajectory
// point tracked across PRs and by the CI bench-smoke step. -shardedjson
// does the same for the shard-count sweep (BENCH_sharded.json), -memjson
// for the memory-residency comparison of flat vs sharded builds
// (BENCH_mem.json) — the record behind the CI memory smoke step, which
// asserts a sharded build keeps the base data resident once (bytes/series
// within 1.1x of flat; see scripts/mem_smoke.sh). -kerneljson records the
// distance-kernel microbenchmark (SIMD vs forced-scalar ns/op per kernel)
// as another trajectory point in the same envelope — the record behind the
// CI kernel smoke step (scripts/kernel_smoke.sh), keyed by what CPU
// detection found so avx2 and scalar machines track separate series.
//
// -metrics is the observability self-check behind scripts/metrics_smoke.sh:
// it builds a small auto-tuned sharded index, drives appends and queries
// through the public API, scrapes dsidx.MetricsHandler, validates the
// exposition (format and required families) and prints it.
//
// -faults is the fault-tolerance self-check behind scripts/fault_smoke.sh:
// it builds a mixed hot/cold sharded index on a fault-injected device,
// walks the failure lifecycle (transient retries → dead device → typed
// failures → quarantine → re-stage → bit-identical recovery) and prints
// the resulting metrics exposition, fault families included.
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"dsidx"
	"dsidx/internal/experiments"
	"dsidx/internal/metrics"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments and exit")
		expID       = flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
		series      = flag.Int("series", 0, "collection size (default 200000)")
		queries     = flag.Int("queries", 0, "queries per measurement (default 5)")
		seed        = flag.Int64("seed", 0, "generator seed (default 2020)")
		cores       = flag.Int("cores", 0, "maximum core count axis (default 24)")
		inflight    = flag.String("inflight", "", "comma-separated in-flight query counts for the concurrent experiment (default 1,4,16)")
		appendrate  = flag.String("appendrate", "", "comma-separated append rates (series/s) for the ingest experiment (default 0,1000,10000)")
		shards      = flag.String("shards", "", "comma-separated shard counts for the sharded experiment (default 1,2,4)")
		deleterate  = flag.Float64("deleterate", 0, "fraction of the collection tombstoned (evenly spaced, uncompacted) before the -benchjson query benchmark; keys a separate trajectory run")
		benchjson   = flag.String("benchjson", "", "write the machine-readable query benchmark to this path and exit")
		shardedjson = flag.String("shardedjson", "", "write the machine-readable sharded benchmark to this path and exit")
		memjson     = flag.String("memjson", "", "write the machine-readable memory-residency benchmark to this path and exit")
		diskjson    = flag.String("diskjson", "", "write the machine-readable out-of-core tiering benchmark to this path and exit")
		kerneljson  = flag.String("kerneljson", "", "write the machine-readable distance-kernel microbenchmark to this path and exit")
		metricsDump = flag.Bool("metrics", false, "build a small index, scrape and validate its Prometheus metrics, print them, and exit")
		faultSmoke  = flag.Bool("faults", false, "walk the fault-tolerance lifecycle on a fault-injected cold tier, print its metrics, and exit")
	)
	flag.Parse()

	parseAxis := func(name, csv string, minVal int) []int {
		if csv == "" {
			return nil
		}
		var axis []int
		for _, f := range strings.Split(csv, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < minVal {
				fmt.Fprintf(os.Stderr, "dsbench: bad -%s element %q\n", name, f)
				os.Exit(2)
			}
			axis = append(axis, v)
		}
		return axis
	}
	inflightAxis := parseAxis("inflight", *inflight, 1)
	appendRates := parseAxis("appendrate", *appendrate, 0)
	shardAxis := parseAxis("shards", *shards, 1)

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		SeriesCount:  *series,
		QueryCount:   *queries,
		Seed:         *seed,
		MaxCores:     *cores,
		InFlightAxis: inflightAxis,
		AppendRates:  appendRates,
		ShardAxis:    shardAxis,
		DeleteRate:   *deleterate,
	}

	if *metricsDump {
		n := *series
		if n <= 0 {
			n = 4000
		}
		if err := metricsSelfCheck(n); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: metrics: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *faultSmoke {
		text, err := experiments.RunFaultSmoke(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: faults: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
		fmt.Fprintln(os.Stderr, "dsbench: fault lifecycle OK: transient retried, dead device quarantined, re-stage recovered bit-identical answers")
		return
	}

	if *benchjson != "" {
		res, err := experiments.RunQueryBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %.0f ns/query, %.1f raw distances/query, QPS %v\n",
			*benchjson, res.NsPerQuery, res.RawDistancesPerQuery, res.QPSByInflight)
		return
	}

	if *shardedjson != "" {
		res, err := experiments.RunShardedBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: shardedjson: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(*shardedjson); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: shardedjson: %v\n", err)
			os.Exit(1)
		}
		for _, pt := range res.Points {
			fmt.Printf("wrote %s: %d shards: %.0f ns/query, %.1f raw distances/query, build %.2fs\n",
				*shardedjson, pt.Shards, pt.NsPerQuery, pt.RawDistancesPerQuery, pt.BuildSeconds)
		}
		return
	}

	if *memjson != "" {
		res, err := experiments.RunMemBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: memjson: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(*memjson); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: memjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: flat %.0f B/series, sharded@%d %.0f B/series, ratio %.3f\n",
			*memjson, res.FlatBytesPerSeries, res.Shards, res.ShardedBytesPerSeries, res.ShardedOverFlat)
		return
	}

	if *diskjson != "" {
		res, err := experiments.RunDiskBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: diskjson: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(*diskjson); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: diskjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: cold_matches_hot=%v, flat %.0f B/series vs cold %.0f B/series (%.2fx)\n",
			*diskjson, res.ColdMatchesHot, res.FlatBytesPerSeries, res.ColdBytesPerSeries, res.ColdOverFlat)
		for _, pt := range res.Points {
			fmt.Printf("  cache %4.1f%%: %.1f ms/query, hit rate %.3f, %d device reads (%d seeks)\n",
				100*pt.CacheOverData, pt.NsPerQuery/1e6, pt.HitRate, pt.DeviceReadOps, pt.DeviceSeeks)
		}
		return
	}

	if *kerneljson != "" {
		res, err := experiments.RunKernelBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: kerneljson: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(*kerneljson); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: kerneljson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: simd=%s, ED %.1f vs %.1f ns, EA %.1f vs %.1f ns, MinDist %.1f vs %.1f ns/bound, min ED speedup %.2fx\n",
			*kerneljson, res.Simd, res.EDSimdNs, res.EDScalarNs, res.EASimdNs, res.EAScalarNs,
			res.MinDistSimdNs, res.MinDistScalarNs, res.MinEDSpeedup)
		return
	}

	var ids []string
	if *expID == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expID, ",")
	}
	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "dsbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if _, err := tbl.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  (experiment wall time: %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}
}

// metricsSelfCheck is the end-to-end observability check: public-API
// index, real traffic, a scrape through dsidx.MetricsHandler, and format
// plus required-family validation of what came back.
func metricsSelfCheck(n int) error {
	coll := dsidx.Generate(dsidx.Synthetic, n, 64, 2020)
	idx, err := dsidx.NewSharded(coll,
		dsidx.WithShards(2), dsidx.WithAutoTune(true), dsidx.WithMergeThreshold(256))
	if err != nil {
		return err
	}
	defer idx.Close()

	extra := dsidx.Generate(dsidx.Synthetic, 64, 64, 2021)
	for i := 0; i < extra.Len(); i++ {
		if _, err := idx.Append(extra.At(i)); err != nil {
			return err
		}
	}
	qcoll := dsidx.GenerateQueries(dsidx.Synthetic, 4, 64, 2020)
	qs := make([]dsidx.Series, qcoll.Len())
	for i := range qs {
		qs[i] = qcoll.At(i)
	}
	if _, err := idx.BatchSearch(qs); err != nil {
		return err
	}

	rec := httptest.NewRecorder()
	dsidx.MetricsHandler(idx).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		return fmt.Errorf("scrape status %d", rec.Code)
	}
	text := rec.Body.String()
	fams, err := metrics.Parse(text)
	if err != nil {
		return fmt.Errorf("exposition failed validation: %w", err)
	}
	required := []string{
		"dsidx_engine_workers", "dsidx_engine_queries_total", "dsidx_engine_tasks_total",
		"dsidx_ingest_appended_total", "dsidx_ingest_pending", "dsidx_ingest_merges_total",
		"dsidx_index_queries_total", "dsidx_index_query_seconds",
		"dsidx_tuning_autotune", "dsidx_tuning_probe_leaves",
		"dsidx_shards", "dsidx_shard_base_series", "dsidx_shard_appends_total",
		"dsidx_cold_shards", "dsidx_cold_cache_hits_total", "dsidx_cold_device_reads_total",
		"dsidx_vector_simd",
	}
	var missing []string
	for _, name := range required {
		if _, ok := fams[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition lacks required families: %s", strings.Join(missing, ", "))
	}
	fmt.Print(text)
	fmt.Fprintf(os.Stderr, "dsbench: metrics OK: %d families, %d required present\n", len(fams), len(required))
	return nil
}
