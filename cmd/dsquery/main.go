// Command dsquery builds an index over a series file and answers nearest
// neighbor queries against it.
//
// Usage:
//
//	dsquery -data data.dsf -index messi -queries 10
//	dsquery -data data.dsf -index paris+ -profile hdd -queries 5
//	dsquery -data data.dsf -index messi -k 5
//	dsquery -data data.dsf -index messi -dtw 16
//
// Queries are fresh series from the same family (use -qseed to vary). The
// tool reports each answer and summary timing statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dsidx"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsquery: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		data    = flag.String("data", "", "series file path (required)")
		index   = flag.String("index", "messi", "index: messi, paris, paris+, adsplus, scan")
		profile = flag.String("profile", "unthrottled", "device profile for on-disk indexes: hdd, ssd, unthrottled")
		queries = flag.Int("queries", 10, "number of queries")
		k       = flag.Int("k", 1, "neighbors per query (MESSI only)")
		dtwWin  = flag.Int("dtw", -1, "DTW window; -1 means Euclidean (MESSI only)")
		kindArg = flag.String("kind", "synthetic", "query family: synthetic, sald, seismic")
		qseed   = flag.Int64("qseed", 99, "query generator seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
		saveIx  = flag.String("saveindex", "", "after building, save the index to this path")
		loadIx  = flag.String("loadindex", "", "load a previously saved index instead of building")
	)
	flag.Parse()
	if *data == "" {
		fail("-data is required")
	}

	var prof dsidx.DiskProfile
	switch strings.ToLower(*profile) {
	case "hdd":
		prof = dsidx.HDD
	case "ssd":
		prof = dsidx.SSD
	case "unthrottled":
		prof = dsidx.Unthrottled
	default:
		fail("unknown profile %q", *profile)
	}
	var kind dsidx.DatasetKind
	switch strings.ToLower(*kindArg) {
	case "synthetic":
		kind = dsidx.Synthetic
	case "sald":
		kind = dsidx.SALD
	case "seismic":
		kind = dsidx.Seismic
	default:
		fail("unknown kind %q", *kindArg)
	}

	dc, err := dsidx.OpenDiskCollection(*data, prof)
	if err != nil {
		fail("%v", err)
	}
	defer dc.Close()
	fmt.Printf("collection: %d series of length %d (%s)\n", dc.Len(), dc.SeriesLen(), prof.Name)

	qs := dsidx.GenerateQueries(kind, *queries, dc.SeriesLen(), *qseed)

	// For the in-memory indexes, load the collection into RAM first.
	loadMemory := func() *dsidx.Collection {
		coll := dsidx.NewCollection(dc.Len(), dc.SeriesLen())
		dc.SetLatencyScale(0)
		for i := 0; i < dc.Len(); i++ {
			if err := dc.ReadSeries(i, coll.At(i)); err != nil {
				fail("loading series %d: %v", i, err)
			}
		}
		dc.SetLatencyScale(1)
		return coll
	}

	type searcher func(q dsidx.Series) (dsidx.Match, error)
	var search searcher
	buildStart := time.Now()
	switch strings.ToLower(*index) {
	case "messi":
		coll := loadMemory()
		var ix *dsidx.MESSI
		var err error
		if *loadIx != "" {
			ix, err = dsidx.LoadMESSI(*loadIx, coll, dsidx.WithWorkers(*workers))
		} else {
			ix, err = dsidx.NewMESSI(coll, dsidx.WithWorkers(*workers))
		}
		if err != nil {
			fail("%v", err)
		}
		if *saveIx != "" {
			if err := ix.Save(*saveIx); err != nil {
				fail("%v", err)
			}
			fmt.Printf("index saved to %s\n", *saveIx)
		}
		switch {
		case *dtwWin >= 0:
			search = func(q dsidx.Series) (dsidx.Match, error) { return ix.SearchDTW(q, *dtwWin) }
		case *k > 1:
			search = func(q dsidx.Series) (dsidx.Match, error) {
				ms, err := ix.SearchKNN(q, *k)
				if err != nil || len(ms) == 0 {
					return dsidx.Match{}, err
				}
				for i, m := range ms {
					fmt.Printf("    k=%d: series %d at %.4f\n", i+1, m.Pos, m.Distance)
				}
				return ms[0], nil
			}
		default:
			search = ix.Search
		}
	case "paris", "paris+":
		var ix *dsidx.ParIS
		var err error
		switch {
		case *loadIx != "":
			ix, err = dsidx.LoadParIS(*loadIx, dc, dsidx.WithWorkers(*workers))
		case strings.ToLower(*index) == "paris":
			ix, err = dsidx.NewParIS(dc, dsidx.WithWorkers(*workers))
		default:
			ix, err = dsidx.NewParISPlus(dc, dsidx.WithWorkers(*workers))
		}
		if err != nil {
			fail("%v", err)
		}
		if *saveIx != "" {
			if err := ix.Save(*saveIx); err != nil {
				fail("%v", err)
			}
			fmt.Printf("index saved to %s\n", *saveIx)
		}
		search = ix.Search
	case "adsplus":
		ix, err := dsidx.NewADSPlus(dc)
		if err != nil {
			fail("%v", err)
		}
		search = ix.Search
	case "scan":
		coll := loadMemory()
		search = func(q dsidx.Series) (dsidx.Match, error) {
			return dsidx.ScanNearestParallel(coll, q, *workers), nil
		}
	default:
		fail("unknown index %q", *index)
	}
	fmt.Printf("index %s ready in %v\n", *index, time.Since(buildStart).Round(time.Millisecond))

	times := make([]float64, 0, qs.Len())
	for i := 0; i < qs.Len(); i++ {
		t0 := time.Now()
		m, err := search(qs.At(i))
		if err != nil {
			fail("query %d: %v", i, err)
		}
		el := time.Since(t0)
		times = append(times, el.Seconds()*1000)
		fmt.Printf("  query %2d: series %8d at distance %.4f (%v)\n", i, m.Pos, m.Distance, el.Round(time.Microsecond))
	}
	sort.Float64s(times)
	var sum float64
	for _, v := range times {
		sum += v
	}
	fmt.Printf("queries: %d  mean %.3fms  median %.3fms  max %.3fms\n",
		len(times), sum/float64(len(times)), times[len(times)/2], times[len(times)-1])
}
