// Command dsgen generates a data series collection in the binary series
// file format (DSF1) used by the on-disk indexes.
//
// Usage:
//
//	dsgen -out data.dsf -kind synthetic -n 1000000
//	dsgen -out sald.dsf -kind sald -n 200000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dsidx"
)

func main() {
	var (
		out    = flag.String("out", "", "output file path (required)")
		kind   = flag.String("kind", "synthetic", "dataset family: synthetic, sald, seismic")
		n      = flag.Int("n", 100000, "number of series")
		length = flag.Int("len", 0, "series length (default: family default)")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dsgen: -out is required")
		os.Exit(2)
	}
	var dk dsidx.DatasetKind
	switch strings.ToLower(*kind) {
	case "synthetic":
		dk = dsidx.Synthetic
	case "sald":
		dk = dsidx.SALD
	case "seismic":
		dk = dsidx.Seismic
	default:
		fmt.Fprintf(os.Stderr, "dsgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	t0 := time.Now()
	coll := dsidx.Generate(dk, *n, *length, *seed)
	dc, err := dsidx.SaveCollection(*out, coll, dsidx.Unthrottled)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
		os.Exit(1)
	}
	defer dc.Close()
	fmt.Printf("wrote %d %v series of length %d to %s in %v\n",
		coll.Len(), dk, coll.SeriesLen(), *out, time.Since(t0).Round(time.Millisecond))
}
