package dsidx_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"dsidx"
)

func TestGenerateDeterministic(t *testing.T) {
	a := dsidx.Generate(dsidx.Synthetic, 50, 256, 7)
	b := dsidx.Generate(dsidx.Synthetic, 50, 256, 7)
	if a.Len() != 50 || a.SeriesLen() != 256 {
		t.Fatalf("shape (%d,%d)", a.Len(), a.SeriesLen())
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.At(i), b.At(i)
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("series %d differs at %d", i, j)
			}
		}
	}
}

func TestGenerateDefaultLengths(t *testing.T) {
	if got := dsidx.Generate(dsidx.SALD, 2, 0, 1).SeriesLen(); got != 128 {
		t.Errorf("SALD default length = %d, want 128", got)
	}
	if got := dsidx.Generate(dsidx.Seismic, 2, 0, 1).SeriesLen(); got != 256 {
		t.Errorf("Seismic default length = %d, want 256", got)
	}
}

func TestMESSIPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 2000, 256, 9)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(64), dsidx.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 2000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	st := idx.Stats()
	if st.Series != 2000 || st.Leaves == 0 {
		t.Fatalf("stats %+v", st)
	}

	queries := dsidx.GenerateQueries(dsidx.Synthetic, 5, 256, 9)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		want := dsidx.ScanNearest(coll, q)
		got, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Distance-want.Distance) > 1e-6*math.Max(1, want.Distance) {
			t.Fatalf("query %d: MESSI %v != scan %v", qi, got.Distance, want.Distance)
		}
		// Distances through the public API are true distances (not squared).
		if got.Distance < 0 {
			t.Fatal("negative distance")
		}

		knn, err := idx.SearchKNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(knn) != 3 || math.Abs(knn[0].Distance-got.Distance) > 1e-9 {
			t.Fatalf("query %d: kNN[0] %v != 1NN %v", qi, knn[0].Distance, got.Distance)
		}

		dtw, err := idx.SearchDTW(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		wantDTW := dsidx.ScanNearestDTW(coll, q, 10)
		if math.Abs(dtw.Distance-wantDTW.Distance) > 1e-6*math.Max(1, wantDTW.Distance) {
			t.Fatalf("query %d: DTW %v != scan %v", qi, dtw.Distance, wantDTW.Distance)
		}
		if dtw.Distance > got.Distance+1e-9 {
			t.Fatalf("query %d: DTW NN %v above ED NN %v", qi, dtw.Distance, got.Distance)
		}
	}
}

func TestMESSIBatchSearchPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 2000, 256, 11)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	queries := dsidx.GeneratePerturbedQueries(coll, 12, 0.05, 11)
	qs := make([]dsidx.Series, queries.Len())
	for i := range qs {
		qs[i] = queries.At(i)
	}
	batch, err := idx.BatchSearch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qs) {
		t.Fatalf("%d results for %d queries", len(batch), len(qs))
	}
	for i := range qs {
		want, err := idx.Search(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("batch[%d] = %+v, serial = %+v", i, batch[i], want)
		}
	}
	if st := idx.EngineStats(); st.Queries < uint64(len(qs)) || st.Workers <= 0 {
		t.Fatalf("engine stats %+v after batch", st)
	}
}

func TestMESSIServePublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 1500, 256, 13)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	queries := dsidx.GeneratePerturbedQueries(coll, 9, 0.05, 13)
	in := make(chan dsidx.QueryRequest)
	out := idx.Serve(context.Background(), in)
	go func() {
		for i := 0; i < queries.Len(); i++ {
			req := dsidx.QueryRequest{ID: int64(i), Query: queries.At(i)}
			switch i % 3 {
			case 1:
				req.Kind, req.K = dsidx.QueryKNN, 3
			case 2:
				req.Kind, req.Window = dsidx.QueryDTW, 10
			}
			in <- req
		}
		close(in)
	}()

	got := make(map[int64]dsidx.QueryResponse)
	for resp := range out {
		got[resp.ID] = resp
	}
	if len(got) != queries.Len() {
		t.Fatalf("%d responses for %d requests", len(got), queries.Len())
	}
	for i := 0; i < queries.Len(); i++ {
		resp := got[int64(i)]
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		q := queries.At(i)
		switch i % 3 {
		case 0:
			want, _ := idx.Search(q)
			if len(resp.Matches) != 1 || resp.Matches[0] != want {
				t.Fatalf("request %d (NN): %+v, want %+v", i, resp.Matches, want)
			}
		case 1:
			want, _ := idx.SearchKNN(q, 3)
			if len(resp.Matches) != len(want) {
				t.Fatalf("request %d (kNN): %d matches, want %d", i, len(resp.Matches), len(want))
			}
			for r := range want {
				if resp.Matches[r] != want[r] {
					t.Fatalf("request %d (kNN) rank %d: %+v, want %+v", i, r, resp.Matches[r], want[r])
				}
			}
		case 2:
			want, _ := idx.SearchDTW(q, 10)
			if len(resp.Matches) != 1 || resp.Matches[0] != want {
				t.Fatalf("request %d (DTW): %+v, want %+v", i, resp.Matches, want)
			}
		}
	}
}

func TestMESSIServeRejectsKNNWithoutK(t *testing.T) {
	// KNN without K must surface a per-response error, not a silent empty
	// answer (SearchKNN treats k<=0 as a no-op by contract).
	coll := dsidx.Generate(dsidx.Synthetic, 500, 64, 19)
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	in := make(chan dsidx.QueryRequest, 1)
	out := idx.Serve(context.Background(), in)
	in <- dsidx.QueryRequest{ID: 1, Query: coll.At(0), Kind: dsidx.QueryKNN}
	close(in)
	resp := <-out
	if resp.Err == nil {
		t.Fatalf("KNN request without K answered without error: %+v", resp)
	}
}

func TestMESSIServeContextCancel(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 500, 64, 17)
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan dsidx.QueryRequest) // never closed: cancellation must end Serve
	out := idx.Serve(ctx, in)
	cancel()
	for range out {
	} // must terminate
}

func TestParISOnSimulatedDiskPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Seismic, 800, 256, 10)
	for _, build := range []struct {
		name string
		fn   func(*dsidx.DiskCollection, ...dsidx.Option) (*dsidx.ParIS, error)
	}{
		{"ParIS", dsidx.NewParIS},
		{"ParIS+", dsidx.NewParISPlus},
	} {
		t.Run(build.name, func(t *testing.T) {
			dc, err := dsidx.NewSimulatedDisk(coll, dsidx.Unthrottled)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := build.fn(dc, dsidx.WithLeafCapacity(32), dsidx.WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			if idx.Len() != coll.Len() {
				t.Fatalf("Len = %d", idx.Len())
			}
			queries := dsidx.GenerateQueries(dsidx.Seismic, 3, 256, 10)
			for qi := 0; qi < queries.Len(); qi++ {
				q := queries.At(qi)
				want := dsidx.ScanNearest(coll, q)
				got, err := idx.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Distance-want.Distance) > 1e-6*math.Max(1, want.Distance) {
					t.Fatalf("query %d: %v != %v", qi, got.Distance, want.Distance)
				}
			}
			m := dc.Metrics()
			if m.BytesRead == 0 {
				t.Error("no device reads recorded during build+search")
			}
		})
	}
}

func TestADSPlusPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.SALD, 600, 0, 11)
	dc, err := dsidx.NewSimulatedDisk(coll, dsidx.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := dsidx.NewADSPlus(dc, dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	queries := dsidx.GenerateQueries(dsidx.SALD, 3, 0, 11)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		want := dsidx.ScanNearest(coll, q)
		got, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Distance-want.Distance) > 1e-6*math.Max(1, want.Distance) {
			t.Fatalf("query %d: %v != %v", qi, got.Distance, want.Distance)
		}
	}
}

func TestSaveAndOpenDiskCollection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.dsf")
	coll := dsidx.Generate(dsidx.Synthetic, 100, 64, 12)

	dc, err := dsidx.SaveCollection(path, coll, dsidx.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Len() != 100 || dc.SeriesLen() != 64 {
		t.Fatalf("saved shape (%d,%d)", dc.Len(), dc.SeriesLen())
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := dsidx.OpenDiskCollection(path, dsidx.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	buf := make(dsidx.Series, 64)
	if err := reopened.ReadSeries(42, buf); err != nil {
		t.Fatal(err)
	}
	want := coll.At(42)
	for j := range want {
		if buf[j] != want[j] {
			t.Fatalf("series 42 differs at %d after reopen", j)
		}
	}
}

func TestParISInMemoryPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 700, 256, 13)
	idx, err := dsidx.NewParISInMemory(coll, dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, 256, 13).At(0)
	want := dsidx.ScanNearestParallel(coll, q, 4)
	got, err := idx.SearchWithWorkers(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Distance-want.Distance) > 1e-6*math.Max(1, want.Distance) {
		t.Fatalf("%v != %v", got.Distance, want.Distance)
	}
}

func TestScanDiskSerialPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 300, 128, 14)
	dc, err := dsidx.NewSimulatedDisk(coll, dsidx.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, 128, 14).At(0)
	want := dsidx.ScanNearest(coll, q)
	got, err := dsidx.ScanNearestDiskSerial(dc, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != want.Pos || math.Abs(got.Distance-want.Distance) > 1e-9 {
		t.Fatalf("disk scan %+v != memory %+v", got, want)
	}
}

func TestSearchApproximatePublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 1000, 256, 15)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	queries := dsidx.GeneratePerturbedQueries(coll, 5, 0.05, 15)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		approx, err := idx.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if approx.Distance < exact.Distance-1e-9 {
			t.Fatalf("query %d: approximate %v below exact %v", qi, approx.Distance, exact.Distance)
		}
	}
}

func TestGeneratePerturbedQueriesClose(t *testing.T) {
	coll := dsidx.Generate(dsidx.SALD, 500, 0, 16)
	queries := dsidx.GeneratePerturbedQueries(coll, 5, 0.05, 16)
	for qi := 0; qi < queries.Len(); qi++ {
		m := dsidx.ScanNearest(coll, queries.At(qi))
		// NN of a 5%-perturbed member must be far closer than a random
		// query's NN (which is ~sqrt(2n) for z-normalized series).
		if m.Distance > 3 {
			t.Fatalf("perturbed query %d has NN at %v — not close", qi, m.Distance)
		}
	}
}

func TestCollectionFromValuesPublicAPI(t *testing.T) {
	coll, err := dsidx.CollectionFromValues([]float32{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 2 {
		t.Fatalf("Len = %d", coll.Len())
	}
	if _, err := dsidx.CollectionFromValues([]float32{1, 2, 3}, 2); err == nil {
		t.Error("invalid values accepted")
	}
}
