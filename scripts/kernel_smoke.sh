#!/usr/bin/env bash
# kernel_smoke.sh — assert the SIMD distance kernels actually pay: one
# dsbench -kerneljson run measures every kernel under both dispatch arms
# (production dispatch vs forced scalar oracle) and the smallest of the
# ED-kernel speedups must clear MIN_SPEEDUP. On machines without AVX2 the
# record says simd="none" and the gate is skipped with a notice — the
# differential tests still prove correctness there; only the perf claim
# needs the hardware.
#
# Usage: scripts/kernel_smoke.sh [min-speedup]
#
# Used identically in CI (kernel smoke step) and locally. The record is a
# trajectory point in the same envelope as BENCH_query.json; this script
# writes to a fresh temp file so the field extraction below only sees the
# run it just produced.
set -euo pipefail

MIN_SPEEDUP="${1:-1.2}"
OUT="${BENCH_KERNEL_JSON:-$(mktemp /tmp/BENCH_kernels.XXXXXX.json)}"
rm -f "$OUT"

go run ./cmd/dsbench -kerneljson "$OUT"
cat "$OUT"

field() {
    awk -F': *' -v key="\"$1\"" '$1 ~ key { gsub(/[,"]/, "", $2); print $2; exit }' "$OUT"
}
simd=$(field simd)
speedup=$(field min_ed_speedup)
mindist=$(field mindist_speedup)
if [ -z "$simd" ] || [ -z "$speedup" ]; then
    echo "kernel smoke: record in $OUT lacks simd/min_ed_speedup fields" >&2
    exit 1
fi

if [ "$simd" = "none" ]; then
    echo "kernel smoke: no AVX2 on this machine (simd=none) — speedup gate skipped; scalar oracle is the production path here"
    exit 0
fi

awk -v s="$speedup" -v md="$mindist" -v lim="$MIN_SPEEDUP" 'BEGIN {
    if (s + 0 < lim + 0) {
        printf "kernel smoke: min ED speedup %.2fx below the %.2fx floor — the assembly kernels are not beating the scalar oracle\n", s, lim
        exit 1
    }
    if (md + 0 < 1.0) {
        printf "kernel smoke: MinDist speedup %.2fx — the gather kernel is slower than the scalar lookup loop\n", md
        exit 1
    }
    printf "kernel smoke: simd kernels pay: min ED speedup %.2fx (floor %.2fx), MinDist %.2fx\n", s, lim, md
}'
