#!/usr/bin/env bash
# disk_smoke.sh — assert the out-of-core tier is invisible to results and
# actually caches: a tiny dsbench -diskjson run must report (a)
# cold_matches_hot=true — every exact answer over the device-backed tier is
# bit-identical to the hot build's — and (b) a best-budget cache hit rate
# above zero, so refinement is actually being served from the block cache
# rather than paying the device on every read.
#
# Usage: scripts/disk_smoke.sh [series] [queries]
#
# Used identically in CI (disk smoke step) and locally. Writes the full
# machine-readable record next to the check so regressions are diagnosable
# from the log.
set -euo pipefail

SERIES="${1:-6000}"
QUERIES="${2:-4}"
# A fresh file per run: BENCH files are trajectories now, and the
# line-based field extraction below must only see the run this smoke
# just produced, not stale points from earlier invocations.
OUT="${BENCH_DISK_JSON:-$(mktemp /tmp/BENCH_disk.XXXXXX.json)}"
rm -f "$OUT"

go run ./cmd/dsbench -diskjson "$OUT" -series "$SERIES" -queries "$QUERIES"
cat "$OUT"

matches=$(awk -F': *' '/"cold_matches_hot"/ { gsub(/[,"]/, "", $2); print $2 }' "$OUT")
if [ "$matches" != "true" ]; then
    echo "disk smoke: cold_matches_hot=$matches — device-backed answers diverged from the hot build" >&2
    exit 1
fi

best_hit=$(awk -F': *' '/"hit_rate"/ { gsub(/[,"]/, "", $2); if ($2 + 0 > best + 0) best = $2 } END { print best }' "$OUT")
awk -v r="${best_hit:-0}" 'BEGIN {
    if (r + 0 <= 0) {
        print "disk smoke: best cache hit rate is zero — the block cache is not serving refinement reads"
        exit 1
    }
    printf "disk smoke: cold answers match hot bit-for-bit; best cache hit rate %.3f\n", r
}'
