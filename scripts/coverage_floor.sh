#!/usr/bin/env bash
# coverage_floor.sh — run the full test suite with coverage and fail if
# total statement coverage drops below the floor.
#
# Usage: scripts/coverage_floor.sh [floor-percent] [coverprofile-path]
#
# The floor tracks the measured total minus a small jitter margin for the
# timing-dependent concurrency tests (see .github/workflows/ci.yml, which
# calls this script); raise it when a PR raises coverage, never lower it
# to make a build pass. Used identically in CI and locally.
set -euo pipefail

FLOOR="${1:-82.0}"
PROFILE="${2:-cover.out}"

go test -coverprofile="$PROFILE" ./...
total=$(go tool cover -func="$PROFILE" | tail -1 | awk '{print $3}' | tr -d '%')
echo "total statement coverage: ${total}% (floor ${FLOOR}%)"
awk -v t="$total" -v floor="$FLOOR" 'BEGIN {
    if (t + 0 < floor + 0) {
        printf "coverage %.1f%% fell below the %.1f%% floor\n", t, floor
        exit 1
    }
}'
