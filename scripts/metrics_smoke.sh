#!/usr/bin/env bash
# metrics_smoke.sh — assert the observability surface actually serves: a
# small dsbench -metrics run builds an auto-tuned sharded index, drives
# appends and queries through the public API, scrapes dsidx.MetricsHandler
# and validates the Prometheus exposition (format plus required families)
# before printing it. This script additionally greps the printed text for
# the family names dashboards key on, so a rename that survives the Go
# validator still fails loudly here.
#
# Usage: scripts/metrics_smoke.sh [series]
#
# Used identically in CI (metrics smoke step) and locally.
set -euo pipefail

SERIES="${1:-4000}"
OUT="${METRICS_SMOKE_OUT:-/tmp/metrics_smoke.txt}"

go build ./...
go run ./cmd/dsbench -metrics -series "$SERIES" > "$OUT"

for family in \
    dsidx_engine_workers \
    dsidx_engine_queries_total \
    dsidx_engine_admit_waits_total \
    dsidx_ingest_appended_total \
    dsidx_ingest_merges_total \
    dsidx_index_query_seconds_bucket \
    dsidx_tuning_autotune \
    dsidx_shard_appends_total \
    dsidx_cold_cache_hits_total \
    dsidx_vector_simd
do
    if ! grep -q "^$family" "$OUT"; then
        echo "metrics smoke: family $family missing from the scrape" >&2
        exit 1
    fi
done

# Spot-check semantics, not just presence: the run appended 64 series and
# issued queries, so the totals must be positive.
appended=$(awk '/^dsidx_ingest_appended_total/ { sum += $NF } END { print sum + 0 }' "$OUT")
queries=$(awk '/^dsidx_engine_queries_total/ { print $NF + 0 }' "$OUT")
if [ "$appended" -le 0 ] || [ "$queries" -le 0 ]; then
    echo "metrics smoke: implausible totals (appended=$appended, queries=$queries)" >&2
    exit 1
fi

echo "metrics smoke: exposition valid; appended=$appended queries=$queries"
