#!/usr/bin/env bash
# mem_smoke.sh — assert that a sharded build keeps the base data resident
# once: resident bytes/series of a sharded build must stay within RATIO of
# a flat build over the same collection. Before the zero-copy view-based
# base split the sharded figure was ~1.5x total (base values held twice);
# with views it is ~1.05x, and this check pins that win forever.
#
# Usage: scripts/mem_smoke.sh [max-ratio] [series] [shards]
#
# Used identically in CI (memory smoke step) and locally. Writes the full
# machine-readable record next to the check so regressions are diagnosable
# from the log.
set -euo pipefail

RATIO="${1:-1.1}"
SERIES="${2:-20000}"
SHARDS="${3:-4}"
# A fresh file per run: BENCH files are trajectories now, and the
# line-based field extraction below must only see the run this smoke
# just produced, not stale points from earlier invocations.
OUT="${BENCH_MEM_JSON:-$(mktemp /tmp/BENCH_mem.XXXXXX.json)}"
rm -f "$OUT"

go run ./cmd/dsbench -memjson "$OUT" -series "$SERIES" -shards "$SHARDS"
cat "$OUT"
ratio=$(awk -F': *' '/"sharded_over_flat"/ { gsub(/[,"]/, "", $2); print $2 }' "$OUT")
if [ -z "$ratio" ]; then
    echo "mem_smoke: no sharded_over_flat field in $OUT" >&2
    exit 1
fi
awk -v r="$ratio" -v lim="$RATIO" 'BEGIN {
    if (r + 0 > lim + 0) {
        printf "memory smoke: sharded build uses %.3fx the resident bytes/series of a flat build (limit %.2fx) — the base split is copying again\n", r, lim
        exit 1
    }
    printf "memory smoke: sharded/flat resident ratio %.3f within the %.2fx limit\n", r, lim
}'
