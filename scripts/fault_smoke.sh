#!/usr/bin/env bash
# fault_smoke.sh — assert the fault-tolerance stack actually works end to
# end: a fixed-seed dsbench -faults run builds a mixed hot/cold sharded
# index on a fault-injected device and walks the failure lifecycle —
# transient faults retried invisibly, a dead device failing queries with
# the typed shards-unavailable error, quarantine after repeated permanent
# failures, re-stage onto a fresh store, bit-identical recovery. The Go
# side already fails on any contract violation; this script additionally
# greps the printed exposition for the fault metric families dashboards
# key on, and spot-checks that the lifecycle actually moved them (retries
# happened, the cold shard quarantined and re-staged exactly once, and
# every shard is back to serving).
#
# Usage: scripts/fault_smoke.sh [series]
#
# Used identically in CI (fault smoke step) and locally.
set -euo pipefail

SERIES="${1:-3000}"
OUT="${FAULT_SMOKE_OUT:-/tmp/fault_smoke.txt}"

go build ./...
go run ./cmd/dsbench -faults -series "$SERIES" -seed 2020 > "$OUT"

for family in \
    dsidx_shard_state \
    dsidx_shard_failures_total \
    dsidx_shard_quarantines_total \
    dsidx_shard_restages_total \
    dsidx_cold_retries_total \
    dsidx_cold_faults_transient_total \
    dsidx_cold_faults_permanent_total
do
    if ! grep -q "^$family" "$OUT"; then
        echo "fault smoke: family $family missing from the exposition" >&2
        exit 1
    fi
done

retries=$(awk '/^dsidx_cold_retries_total/ { print $NF + 0 }' "$OUT")
permanent=$(awk '/^dsidx_cold_faults_permanent_total/ { print $NF + 0 }' "$OUT")
quarantines=$(awk '/^dsidx_shard_quarantines_total/ { sum += $NF } END { print sum + 0 }' "$OUT")
restages=$(awk '/^dsidx_shard_restages_total/ { sum += $NF } END { print sum + 0 }' "$OUT")
degraded=$(awk '/^dsidx_shard_state\{/ { sum += $NF } END { print sum + 0 }' "$OUT")

if [ "$retries" -le 0 ]; then
    echo "fault smoke: no transient retries recorded — the retry path never ran" >&2
    exit 1
fi
if [ "$permanent" -le 0 ]; then
    echo "fault smoke: no permanent faults recorded — the dead-device path never ran" >&2
    exit 1
fi
if [ "$quarantines" -ne 1 ] || [ "$restages" -ne 1 ]; then
    echo "fault smoke: quarantines=$quarantines restages=$restages, want exactly 1 each" >&2
    exit 1
fi
if [ "$degraded" -ne 0 ]; then
    echo "fault smoke: shards still degraded after recovery (state sum $degraded)" >&2
    exit 1
fi

echo "fault smoke: lifecycle OK; retries=$retries permanent_faults=$permanent quarantines=$quarantines restages=$restages, all shards serving"
