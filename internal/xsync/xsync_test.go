package xsync

import (
	"math"
	"sync"
	"testing"
)

func TestCounterSequential(t *testing.T) {
	var c Counter
	for want := int64(0); want < 10; want++ {
		if got := c.Next(); got != want {
			t.Fatalf("Next() = %d, want %d", got, want)
		}
	}
	c.Reset()
	if got := c.Next(); got != 0 {
		t.Fatalf("after Reset, Next() = %d, want 0", got)
	}
}

func TestCounterConcurrentUnique(t *testing.T) {
	var c Counter
	const workers, perWorker = 16, 1000
	results := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, perWorker)
			for i := range vals {
				vals[i] = c.Next()
			}
			results[w] = vals
		}(w)
	}
	wg.Wait()
	seen := make(map[int64]bool, workers*perWorker)
	for _, vals := range results {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %d claimed twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("claimed %d values, want %d", len(seen), workers*perWorker)
	}
}

func TestBestInitial(t *testing.T) {
	b := NewBest()
	d, p := b.Load()
	if !math.IsInf(d, 1) || p != -1 {
		t.Fatalf("initial Best = (%v,%d), want (+Inf,-1)", d, p)
	}
}

func TestBestUpdateMonotone(t *testing.T) {
	b := NewBest()
	if !b.Update(10, 1) {
		t.Fatal("first update rejected")
	}
	if b.Update(10, 2) {
		t.Fatal("equal distance accepted")
	}
	if b.Update(11, 3) {
		t.Fatal("worse distance accepted")
	}
	if !b.Update(5, 4) {
		t.Fatal("better distance rejected")
	}
	d, p := b.Load()
	if d != 5 || p != 4 {
		t.Fatalf("Best = (%v,%d), want (5,4)", d, p)
	}
}

func TestBestConcurrentMinimum(t *testing.T) {
	b := NewBest()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				// Each worker proposes values; global min is 1 at pos 777.
				v := float64((i*7+w*13)%1000) + 1
				pos := int64(i)
				if v == 1 {
					pos = 777
				}
				b.Update(v, pos)
			}
		}(w)
	}
	wg.Wait()
	d, p := b.Load()
	if d != 1 {
		t.Fatalf("final distance = %v, want 1", d)
	}
	if p != 777 {
		t.Fatalf("final pos = %d, want 777", p)
	}
}

func TestCandidateList(t *testing.T) {
	l := NewCandidateList(100)
	if l.Len() != 0 {
		t.Fatalf("new list Len = %d", l.Len())
	}
	l.Append(5)
	l.Append(7)
	got := l.Snapshot()
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("Snapshot = %v, want [5 7]", got)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("after Reset Len = %d", l.Len())
	}
}

func TestCandidateListConcurrent(t *testing.T) {
	const workers, perWorker = 8, 500
	l := NewCandidateList(workers * perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Append(int32(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	got := l.Snapshot()
	if len(got) != workers*perWorker {
		t.Fatalf("len = %d, want %d", len(got), workers*perWorker)
	}
	seen := make(map[int32]bool, len(got))
	for _, v := range got {
		if seen[v] {
			t.Fatalf("position %d appended twice", v)
		}
		seen[v] = true
	}
}

func TestChunksCoverExactly(t *testing.T) {
	cases := []struct{ n, parts int }{
		{10, 3}, {10, 10}, {10, 20}, {1, 1}, {100, 7}, {5, 4},
	}
	for _, tc := range cases {
		chunks := Chunks(tc.n, tc.parts)
		covered := 0
		prev := 0
		for _, ch := range chunks {
			if ch.Lo != prev {
				t.Fatalf("n=%d parts=%d: gap at %d", tc.n, tc.parts, ch.Lo)
			}
			if ch.Hi <= ch.Lo {
				t.Fatalf("n=%d parts=%d: empty chunk %+v", tc.n, tc.parts, ch)
			}
			covered += ch.Hi - ch.Lo
			prev = ch.Hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d parts=%d: covered %d", tc.n, tc.parts, covered)
		}
		// Balanced: sizes differ by at most 1.
		minSz, maxSz := tc.n, 0
		for _, ch := range chunks {
			sz := ch.Hi - ch.Lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("n=%d parts=%d: imbalance %d..%d", tc.n, tc.parts, minSz, maxSz)
		}
	}
}

func TestChunksDegenerate(t *testing.T) {
	if got := Chunks(0, 5); got != nil {
		t.Errorf("Chunks(0,5) = %v, want nil", got)
	}
	if got := Chunks(5, 0); got != nil {
		t.Errorf("Chunks(5,0) = %v, want nil", got)
	}
}

func TestBlocks(t *testing.T) {
	blocks := Blocks(10, 4)
	want := []Chunk{{0, 4}, {4, 8}, {8, 10}}
	if len(blocks) != len(want) {
		t.Fatalf("Blocks = %v, want %v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("Blocks[%d] = %v, want %v", i, blocks[i], want[i])
		}
	}
	if Blocks(0, 4) != nil || Blocks(4, 0) != nil {
		t.Error("degenerate Blocks should be nil")
	}
}

func TestBestReset(t *testing.T) {
	b := NewBest()
	if !b.Update(3.5, 7) {
		t.Fatal("update rejected")
	}
	b.Reset()
	d, p := b.Load()
	if !math.IsInf(d, 1) || p != -1 {
		t.Fatalf("after Reset: (%v, %d), want (+Inf, -1)", d, p)
	}
	if !b.Update(1.0, 2) {
		t.Fatal("update after Reset rejected")
	}
}
