// Package xsync provides the small concurrency primitives the paper's
// algorithms are built from: Fetch&Inc work claiming, a shared Best-So-Far
// (BSF) value, a lock-free append-only candidate list, and contiguous range
// chunking for static work partitioning.
//
// The paper's ParIS and MESSI assign work units (chunks of the raw data
// array, receiving buffers, index subtrees) to threads "using Fetch&Inc";
// Counter is that primitive. The BSF variable is read on every pruning
// decision and written rarely, so Best uses an atomic fast path for reads
// and a mutex only on improvement.
package xsync

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a Fetch&Inc work-claiming counter. The zero value is ready to
// use and starts at 0.
type Counter struct {
	v atomic.Int64
}

// Next claims and returns the next value (0, 1, 2, ...).
func (c *Counter) Next() int64 { return c.v.Add(1) - 1 }

// Value returns the number of values claimed so far without claiming one.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset rewinds the counter to zero so a pool can reuse it between phases.
func (c *Counter) Reset() { c.v.Store(0) }

// Best is a concurrently updatable (distance, position) pair that only ever
// improves (distance decreases). Reads are a single atomic load; writes take
// a mutex but first re-check under the atomic so losers back off cheaply.
type Best struct {
	bits atomic.Uint64 // float64 bits of the current best distance
	mu   sync.Mutex
	pos  int64
}

// NewBest returns a Best initialized to (+Inf, -1).
func NewBest() *Best {
	b := &Best{pos: -1}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Distance returns the current best distance.
func (b *Best) Distance() float64 { return math.Float64frombits(b.bits.Load()) }

// Reset rewinds the pair to (+Inf, -1) so a single owner can reuse the
// allocation across searches. Must not race with concurrent Update/Load
// callers — reuse is between searches, not during one.
func (b *Best) Reset() {
	b.mu.Lock()
	b.bits.Store(math.Float64bits(math.Inf(1)))
	b.pos = -1
	b.mu.Unlock()
}

// Load returns the current best distance and position. The pair is
// consistent: it reflects some update that actually happened.
func (b *Best) Load() (float64, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return math.Float64frombits(b.bits.Load()), b.pos
}

// Update installs (dist, pos) if dist improves on the current best and
// reports whether it did. Safe for concurrent use.
func (b *Best) Update(dist float64, pos int64) bool {
	if dist >= b.Distance() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dist >= math.Float64frombits(b.bits.Load()) {
		return false
	}
	b.bits.Store(math.Float64bits(dist))
	b.pos = pos
	return true
}

// CandidateList is the lock-free, append-only list that the lower-bound
// filtering stage of ParIS query answering fills with the positions of
// series that survive pruning (paper §III: "the data series that are not
// pruned are stored in a candidate list"). Appends claim a slot with a
// single atomic add; the list has fixed capacity, sized to the dataset.
type CandidateList struct {
	slots []int32
	next  atomic.Int64
}

// NewCandidateList allocates a list that can hold up to capacity positions.
func NewCandidateList(capacity int) *CandidateList {
	return &CandidateList{slots: make([]int32, capacity)}
}

// Append adds a position. It panics if capacity is exceeded, which cannot
// happen when capacity equals the dataset size.
func (l *CandidateList) Append(pos int32) {
	i := l.next.Add(1) - 1
	l.slots[i] = pos
}

// Snapshot returns the filled prefix of the list. Callers must ensure all
// appenders have finished (the stages are separated by WaitGroups).
func (l *CandidateList) Snapshot() []int32 { return l.slots[:l.next.Load()] }

// Len returns the number of appended candidates so far.
func (l *CandidateList) Len() int { return int(l.next.Load()) }

// Reset empties the list for reuse across queries.
func (l *CandidateList) Reset() { l.next.Store(0) }

// Chunk describes a contiguous half-open range of work items.
type Chunk struct{ Lo, Hi int }

// Chunks splits [0, n) into at most parts contiguous chunks of near-equal
// size. Fewer chunks are returned when n < parts. Static partitioning like
// this is how ParIS splits the SAX array across lower-bound workers.
func Chunks(n, parts int) []Chunk {
	if parts <= 0 || n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Chunk, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Chunk{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// Blocks splits [0, n) into fixed-size blocks (the last one may be short).
// MESSI assigns raw-data blocks to summarization workers round-robin from a
// shared Counter over these blocks.
func Blocks(n, blockSize int) []Chunk {
	if n <= 0 || blockSize <= 0 {
		return nil
	}
	out := make([]Chunk, 0, (n+blockSize-1)/blockSize)
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		out = append(out, Chunk{Lo: lo, Hi: hi})
	}
	return out
}
