package xsync

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// KBestEntry is one (position, squared distance) result in a KBest set.
type KBestEntry struct {
	Pos  int32
	Dist float64
}

// KBest is a concurrent bounded max-heap of the k best (smallest-distance)
// results seen so far. Its Threshold — the k-th best distance, +Inf until
// the set fills — is readable without the lock and plays the BSF role in
// k-NN search: any candidate whose lower bound reaches it can be pruned.
type KBest struct {
	k     int
	mu    sync.Mutex
	items []KBestEntry
	thr   atomic.Uint64
}

// NewKBest returns an empty k-best set.
func NewKBest(k int) *KBest {
	kb := &KBest{k: k, items: make([]KBestEntry, 0, k)}
	kb.thr.Store(math.Float64bits(math.Inf(1)))
	return kb
}

// Threshold returns the current pruning threshold (k-th best distance).
func (kb *KBest) Threshold() float64 { return math.Float64frombits(kb.thr.Load()) }

// Offer inserts (pos, dist) if it improves the k-best set. A position
// already present is ignored (results sets are per-position, and search
// phases may examine a series twice).
func (kb *KBest) Offer(pos int32, dist float64) {
	if dist >= kb.Threshold() {
		return
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	for _, it := range kb.items {
		if it.Pos == pos {
			return
		}
	}
	if len(kb.items) < kb.k {
		kb.items = append(kb.items, KBestEntry{pos, dist})
		kb.up(len(kb.items) - 1)
		if len(kb.items) == kb.k {
			kb.thr.Store(math.Float64bits(kb.items[0].Dist))
		}
		return
	}
	if dist >= kb.items[0].Dist {
		return
	}
	kb.items[0] = KBestEntry{pos, dist}
	kb.down(0)
	kb.thr.Store(math.Float64bits(kb.items[0].Dist))
}

func (kb *KBest) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if kb.items[parent].Dist >= kb.items[i].Dist {
			return
		}
		kb.items[parent], kb.items[i] = kb.items[i], kb.items[parent]
		i = parent
	}
}

func (kb *KBest) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(kb.items) && kb.items[l].Dist > kb.items[largest].Dist {
			largest = l
		}
		if r < len(kb.items) && kb.items[r].Dist > kb.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		kb.items[i], kb.items[largest] = kb.items[largest], kb.items[i]
		i = largest
	}
}

// Sorted returns the current results in ascending distance order.
func (kb *KBest) Sorted() []KBestEntry {
	kb.mu.Lock()
	out := make([]KBestEntry, len(kb.items))
	copy(out, kb.items)
	kb.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}
