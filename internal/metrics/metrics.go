// Package metrics is a dependency-free metrics registry that renders in
// the Prometheus text exposition format (version 0.0.4).
//
// It exists so every stats surface in the index — engine counters,
// ingest/merge progress, per-shard query and append counts, cold-tier
// cache and device activity — can be scraped from one endpoint without
// pulling in the Prometheus client library (the module is intentionally
// dependency-free). Only the small subset of the format the index needs
// is implemented: counters, gauges, and fixed-bucket histograms, with
// optional constant labels per instrument.
//
// Instruments come in two flavors: owned (Counter, Gauge, Histogram),
// which hold their own atomic state and are updated on the hot path, and
// callback-backed (CounterFunc, GaugeFunc), which sample an existing
// stats surface at scrape time. The callback flavor is how the registry
// wires into the index's existing snapshot accessors without duplicating
// state.
//
// All instruments are safe for concurrent use; WriteTo may run while
// writers are updating instruments and always renders a well-formed
// exposition (individual values are atomically read, the text is
// assembled from one consistent pass over the registry).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to an instrument.
type Label struct {
	Key   string
	Value string
}

// Opts names an instrument. Name must match the Prometheus metric-name
// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*); Help is the HELP line text.
type Opts struct {
	Name   string
	Help   string
	Labels []Label
}

// Metric is implemented by every instrument in this package. The methods
// are unexported: the only implementations live here.
type Metric interface {
	opts() Opts
	kind() string // "counter" | "gauge" | "histogram"
	// write appends the instrument's sample lines (without HELP/TYPE)
	// to b, rendered with the given constant labels.
	write(b *strings.Builder, labels []Label)
}

// --- owned instruments ---

// Counter is a monotonically increasing uint64 counter.
type Counter struct {
	o Opts
	v atomic.Uint64
}

// NewCounter returns a counter; register it to expose it.
func NewCounter(o Opts) *Counter { return &Counter{o: o} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) opts() Opts   { return c.o }
func (c *Counter) kind() string { return "counter" }
func (c *Counter) write(b *strings.Builder, labels []Label) {
	sampleLine(b, c.o.Name, labels, nil, strconv.FormatUint(c.v.Load(), 10))
}

// Gauge is a float64 gauge.
type Gauge struct {
	o    Opts
	bits atomic.Uint64
}

// NewGauge returns a gauge; register it to expose it.
func NewGauge(o Opts) *Gauge { return &Gauge{o: o} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) opts() Opts   { return g.o }
func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) write(b *strings.Builder, labels []Label) {
	sampleLine(b, g.o.Name, labels, nil, formatFloat(g.Value()))
}

// --- callback-backed instruments ---

// CounterFunc exposes a counter sampled from fn at scrape time. fn must
// be safe to call concurrently and should be monotonically
// non-decreasing.
type CounterFunc struct {
	o  Opts
	fn func() float64
}

// NewCounterFunc returns a callback-backed counter.
func NewCounterFunc(o Opts, fn func() float64) *CounterFunc {
	return &CounterFunc{o: o, fn: fn}
}

func (c *CounterFunc) opts() Opts   { return c.o }
func (c *CounterFunc) kind() string { return "counter" }
func (c *CounterFunc) write(b *strings.Builder, labels []Label) {
	sampleLine(b, c.o.Name, labels, nil, formatFloat(c.fn()))
}

// GaugeFunc exposes a gauge sampled from fn at scrape time. fn must be
// safe to call concurrently.
type GaugeFunc struct {
	o  Opts
	fn func() float64
}

// NewGaugeFunc returns a callback-backed gauge.
func NewGaugeFunc(o Opts, fn func() float64) *GaugeFunc {
	return &GaugeFunc{o: o, fn: fn}
}

func (g *GaugeFunc) opts() Opts   { return g.o }
func (g *GaugeFunc) kind() string { return "gauge" }
func (g *GaugeFunc) write(b *strings.Builder, labels []Label) {
	sampleLine(b, g.o.Name, labels, nil, formatFloat(g.fn()))
}

// LabeledValue is one sample of a multi-sample instrument: a value under
// one variable-label value.
type LabeledValue struct {
	Label string
	Value float64
}

// MultiFunc exposes a whole metric family sampled from one callback at
// scrape time: fn returns any number of samples, each rendered under
// labelKey="<Label>" plus the instrument's constant labels. This is how
// per-tenant families — whose member set is dynamic and unknown at
// registration time — fit a registry of statically registered
// instruments. Samples render sorted by label so expositions are
// deterministic; fn must be safe to call concurrently.
type MultiFunc struct {
	o        Opts
	k        string
	labelKey string
	fn       func() []LabeledValue
}

// NewMultiGaugeFunc returns a callback-backed multi-sample gauge family.
// Panics if labelKey is not a valid label name.
func NewMultiGaugeFunc(o Opts, labelKey string, fn func() []LabeledValue) *MultiFunc {
	return newMultiFunc(o, "gauge", labelKey, fn)
}

// NewMultiCounterFunc returns a callback-backed multi-sample counter
// family; each sample's value should be monotonically non-decreasing.
// Panics if labelKey is not a valid label name.
func NewMultiCounterFunc(o Opts, labelKey string, fn func() []LabeledValue) *MultiFunc {
	return newMultiFunc(o, "counter", labelKey, fn)
}

func newMultiFunc(o Opts, kind, labelKey string, fn func() []LabeledValue) *MultiFunc {
	if !validName(labelKey) {
		panic(fmt.Sprintf("metrics: invalid label name %q on %q", labelKey, o.Name))
	}
	return &MultiFunc{o: o, k: kind, labelKey: labelKey, fn: fn}
}

func (m *MultiFunc) opts() Opts   { return m.o }
func (m *MultiFunc) kind() string { return m.k }
func (m *MultiFunc) write(b *strings.Builder, labels []Label) {
	vs := append([]LabeledValue(nil), m.fn()...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].Label < vs[j].Label })
	for _, v := range vs {
		sampleLine(b, m.o.Name, labels,
			[]Label{{Key: m.labelKey, Value: v.Label}}, formatFloat(v.Value))
	}
}

// --- histogram ---

// LatencyBuckets are the fixed bucket upper bounds (seconds) used for
// all query-latency histograms: 100µs to 10s, roughly 2.5x apart. On the
// paper's workloads exact queries land in the 100µs–100ms decades; the
// tail buckets catch cold-tier and saturated-pool outliers.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Buckets are cumulative in the
// rendered text (per the exposition format); internally each bucket
// holds only its own count so Observe is one atomic add.
type Histogram struct {
	o       Opts
	upper   []float64 // ascending; +Inf bucket is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds (the +Inf bucket is implicit). Panics if buckets is empty or
// not strictly ascending.
func NewHistogram(o Opts, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must be strictly ascending")
		}
	}
	h := &Histogram{o: o, upper: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Uint64, len(buckets)+1)
	return h
}

// Observe records one value (for latency histograms, in seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) opts() Opts   { return h.o }
func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) write(b *strings.Builder, labels []Label) {
	var cum uint64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		sampleLine(b, h.o.Name+"_bucket", labels,
			[]Label{{Key: "le", Value: formatFloat(up)}},
			strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.upper)].Load()
	sampleLine(b, h.o.Name+"_bucket", labels,
		[]Label{{Key: "le", Value: "+Inf"}},
		strconv.FormatUint(cum, 10))
	sampleLine(b, h.o.Name+"_sum", labels, nil,
		formatFloat(math.Float64frombits(h.sumBits.Load())))
	sampleLine(b, h.o.Name+"_count", labels, nil,
		strconv.FormatUint(h.count.Load(), 10))
}

// labeled is a registration-time view of an instrument with extra
// constant labels appended — how a sharding layer registers one shard's
// instruments under a shard="i" label without the shard knowing its
// number. The underlying instrument still owns the values.
type labeled struct {
	Metric
	o Opts
}

func (l labeled) opts() Opts { return l.o }

// WithLabels returns a view of m with extra constant labels appended.
func WithLabels(m Metric, extra ...Label) Metric {
	o := m.opts()
	o.Labels = append(append([]Label(nil), o.Labels...), extra...)
	return labeled{Metric: m, o: o}
}

// --- registry ---

// Registry holds registered instruments and renders them as one
// Prometheus text exposition. Families (instruments sharing a name) are
// emitted sorted by name; within a family, samples keep registration
// order. Safe for concurrent registration and rendering.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	// kinds maps family name -> kind, to reject type-conflicting
	// registrations; series maps name+labels -> true to reject exact
	// duplicates.
	kinds  map[string]string
	series map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]string), series: make(map[string]bool)}
}

// MustRegister adds instruments to the registry. It panics on an invalid
// metric name, a family re-registered with a different type, or an exact
// duplicate (same name and label set) — all are programming errors.
func (r *Registry) MustRegister(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		o := m.opts()
		if !validName(o.Name) {
			panic(fmt.Sprintf("metrics: invalid metric name %q", o.Name))
		}
		for _, l := range o.Labels {
			if !validName(l.Key) {
				panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Key, o.Name))
			}
		}
		if k, ok := r.kinds[o.Name]; ok && k != m.kind() {
			panic(fmt.Sprintf("metrics: %q registered as both %s and %s", o.Name, k, m.kind()))
		}
		key := seriesKey(o)
		if r.series[key] {
			panic(fmt.Sprintf("metrics: duplicate registration of %s", key))
		}
		r.kinds[o.Name] = m.kind()
		r.series[key] = true
		r.metrics = append(r.metrics, m)
	}
}

// Text renders the full exposition as a string.
func (r *Registry) Text() string {
	r.mu.Lock()
	ms := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()

	// Group into families preserving registration order within each.
	order := make([]string, 0, len(ms))
	fams := make(map[string][]Metric, len(ms))
	for _, m := range ms {
		name := m.opts().Name
		if _, ok := fams[name]; !ok {
			order = append(order, name)
		}
		fams[name] = append(fams[name], m)
	}
	sort.Strings(order)

	var b strings.Builder
	for _, name := range order {
		fam := fams[name]
		help := fam[0].opts().Help
		if help != "" {
			b.WriteString("# HELP ")
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(fam[0].kind())
		b.WriteByte('\n')
		for _, m := range fam {
			m.write(&b, m.opts().Labels)
		}
	}
	return b.String()
}

// WriteTo renders the exposition to w.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, r.Text())
	return int64(n), err
}

// Handler returns an http.Handler serving the exposition with the
// standard text-format content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// --- rendering helpers ---

func sampleLine(b *strings.Builder, name string, labels, extra []Label, value string) {
	b.WriteString(name)
	if len(labels)+len(extra) > 0 {
		b.WriteByte('{')
		first := true
		for _, set := range [][]Label{labels, extra} {
			for _, l := range set {
				if !first {
					b.WriteByte(',')
				}
				first = false
				b.WriteString(l.Key)
				b.WriteString(`="`)
				b.WriteString(escapeLabel(l.Value))
				b.WriteByte('"')
			}
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func seriesKey(o Opts) string {
	var b strings.Builder
	sampleLine(&b, o.Name, o.Labels, nil, "")
	return strings.TrimRight(b.String(), " \n")
}
