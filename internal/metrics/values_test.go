package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestInstrumentValuesLabelsAndEdgeFloats(t *testing.T) {
	c := NewCounter(Opts{Name: "v_events_total"})
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter value %d", c.Value())
	}

	h := NewHistogram(Opts{Name: "v_seconds"}, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3) // lands in the implicit +Inf bucket
	if h.Count() != 2 {
		t.Fatalf("histogram count %d", h.Count())
	}

	up := NewGauge(Opts{Name: "v_up"})
	up.Set(math.Inf(1))
	down := NewGauge(Opts{Name: "v_down"})
	down.Set(math.Inf(-1))

	r := NewRegistry()
	r.MustRegister(WithLabels(c, Label{Key: "shard", Value: "0"}), h, up, down)
	text := r.Text()
	for _, want := range []string{
		`v_events_total{shard="0"} 3`,
		`v_seconds_bucket{le="1"} 1`,
		`v_seconds_bucket{le="+Inf"} 2`,
		"v_seconds_count 2",
		"v_up +Inf",
		"v_down -Inf",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("exposition failed validation: %v", err)
	}
}
