package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestGoldenText pins the exact exposition text for one registry holding
// every instrument kind: family ordering (sorted by name), HELP/TYPE
// lines, label rendering and escaping, and the histogram's cumulative
// bucket/_sum/_count expansion. Any byte-level drift in the encoder
// fails here.
func TestGoldenText(t *testing.T) {
	r := NewRegistry()

	c := NewCounter(Opts{Name: "ds_queries_total", Help: "Total queries."})
	c.Add(41)
	c.Inc()

	g := NewGauge(Opts{Name: "ds_pending", Help: "Pending appends."})
	g.Set(7)

	gf := NewGaugeFunc(Opts{
		Name:   "ds_workers",
		Help:   `Worker count for pool "main" \ friends.`,
		Labels: []Label{{Key: "pool", Value: `ma"in\`}},
	}, func() float64 { return 3 })

	cf := NewCounterFunc(Opts{Name: "ds_bytes_total", Help: "Bytes."},
		func() float64 { return 1.5e6 })

	h := NewHistogram(Opts{
		Name:   "ds_query_seconds",
		Help:   "Query latency.",
		Labels: []Label{{Key: "shard", Value: "0"}},
	}, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(5) // lands in +Inf

	r.MustRegister(c, g, gf, cf, h)

	want := `# HELP ds_bytes_total Bytes.
# TYPE ds_bytes_total counter
ds_bytes_total 1.5e+06
# HELP ds_pending Pending appends.
# TYPE ds_pending gauge
ds_pending 7
# HELP ds_queries_total Total queries.
# TYPE ds_queries_total counter
ds_queries_total 42
# HELP ds_query_seconds Query latency.
# TYPE ds_query_seconds histogram
ds_query_seconds_bucket{shard="0",le="0.001"} 1
ds_query_seconds_bucket{shard="0",le="0.01"} 1
ds_query_seconds_bucket{shard="0",le="0.1"} 2
ds_query_seconds_bucket{shard="0",le="+Inf"} 3
ds_query_seconds_sum{shard="0"} 5.0205
ds_query_seconds_count{shard="0"} 3
# HELP ds_workers Worker count for pool "main" \\ friends.
# TYPE ds_workers gauge
ds_workers{pool="ma\"in\\"} 3
`
	got := r.Text()
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if _, err := Parse(got); err != nil {
		t.Fatalf("golden text does not self-parse: %v", err)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(Opts{Name: "h"}, []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(3)
	var b strings.Builder
	h.write(&b, h.o.Labels)
	want := "h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 5.5\nh_count 3\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryConflicts(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() {
		NewRegistry().MustRegister(NewCounter(Opts{Name: "0bad"}))
	})
	mustPanic("bad label", func() {
		NewRegistry().MustRegister(NewCounter(Opts{Name: "ok", Labels: []Label{{Key: "0k", Value: "v"}}}))
	})
	mustPanic("type conflict", func() {
		r := NewRegistry()
		r.MustRegister(NewCounter(Opts{Name: "m", Labels: []Label{{Key: "a", Value: "1"}}}))
		r.MustRegister(NewGauge(Opts{Name: "m", Labels: []Label{{Key: "a", Value: "2"}}}))
	})
	mustPanic("duplicate series", func() {
		r := NewRegistry()
		r.MustRegister(NewCounter(Opts{Name: "m"}))
		r.MustRegister(NewCounter(Opts{Name: "m"}))
	})

	// Same family, different labels: allowed, renders one TYPE header.
	r := NewRegistry()
	r.MustRegister(
		NewCounter(Opts{Name: "m", Labels: []Label{{Key: "a", Value: "1"}}}),
		NewCounter(Opts{Name: "m", Labels: []Label{{Key: "a", Value: "2"}}}),
	)
	text := r.Text()
	if strings.Count(text, "# TYPE m counter") != 1 {
		t.Fatalf("want one TYPE line, got:\n%s", text)
	}
	fams, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if fams["m"].Samples != 2 {
		t.Fatalf("want 2 samples, got %+v", fams["m"])
	}
}

// TestConcurrentObserveAndRender races writers against scrapes under
// -race: the exposition must stay parseable and histogram invariants
// must hold in every snapshot.
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(Opts{Name: "c_total"})
	g := NewGauge(Opts{Name: "g"})
	h := NewHistogram(Opts{Name: "h_seconds"}, LatencyBuckets)
	r.MustRegister(c, g, h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(seed + float64(i))
				h.Observe(seed * 0.001 * float64(i%17))
			}
		}(float64(w + 1))
	}
	for i := 0; i < 200; i++ {
		if _, err := Parse(r.Text()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(Opts{Name: "m_total"})
	c.Inc()
	r.MustRegister(c)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(string(body))
	if err != nil {
		t.Fatalf("handler body does not parse: %v\n%s", err, body)
	}
	if fams["m_total"].Samples != 1 {
		t.Fatalf("missing m_total in:\n%s", body)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []struct{ name, text string }{
		{"no TYPE", "m 1\n"},
		{"dup TYPE", "# TYPE m counter\n# TYPE m counter\nm 1\n"},
		{"bad value", "# TYPE m counter\nm one\n"},
		{"negative counter", "# TYPE m counter\nm -1\n"},
		{"unknown type", "# TYPE m flurble\nm 1\n"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"},
		{"unterminated labels", "# TYPE m counter\nm{a=\"1\" 1\n"},
		{"unquoted label", "# TYPE m counter\nm{a=1} 1\n"},
		{"trailing junk", "# TYPE m counter\nm 1 2 3\n"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.text)
		}
	}
	// Negative gauges are fine.
	if _, err := Parse("# TYPE g gauge\ng -1\n"); err != nil {
		t.Errorf("negative gauge rejected: %v", err)
	}
}
