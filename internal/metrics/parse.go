package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Family is one parsed metric family from an exposition.
type Family struct {
	Name    string
	Type    string
	Samples int // sample lines attributed to this family
}

// Parse validates a Prometheus text exposition and returns its families
// keyed by name. It checks the subset of the format this package emits:
//
//   - every sample line parses as name[{labels}] value
//   - every sample belongs to a family declared by a preceding # TYPE
//     line (histogram samples may use the _bucket/_sum/_count suffixes)
//   - a family's TYPE is declared at most once
//   - values parse as floats (counters and histogram counts additionally
//     must not be negative)
//   - histogram _bucket series are cumulative (non-decreasing in le
//     order as emitted)
//
// It is the validator behind the golden tests, the dsbench -metrics
// self-check, and the metrics_smoke.sh CI step.
func Parse(text string) (map[string]Family, error) {
	fams := make(map[string]Family)
	// Track cumulative-bucket monotonicity per histogram series (family
	// plus non-le labels).
	lastBucket := make(map[string]float64)

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.SplitN(rest[len("TYPE "):], " ", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := parts[0], strings.TrimSpace(parts[1])
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				fams[name] = Family{Name: name, Type: typ}
			case strings.HasPrefix(rest, "HELP "):
				// HELP text is free-form; nothing to validate beyond the
				// name token existing.
				if strings.TrimSpace(rest[len("HELP "):]) == "" {
					return nil, fmt.Errorf("line %d: malformed HELP line", lineNo)
				}
			default:
				// Plain comment; ignore.
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix, ok := owningFamily(fams, name)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", lineNo, value)
		}
		if (fam.Type == "counter" || suffix == "_bucket" || suffix == "_count") && v < 0 {
			return nil, fmt.Errorf("line %d: negative %s value %q", lineNo, fam.Type, value)
		}
		if suffix == "_bucket" {
			key := fam.Name + "|" + stripLabel(labels, "le")
			if prev, seen := lastBucket[key]; seen && v < prev {
				return nil, fmt.Errorf("line %d: histogram %q buckets not cumulative", lineNo, fam.Name)
			}
			lastBucket[key] = v
		}
		fam.Samples++
		fams[fam.Name] = fam
	}
	return fams, nil
}

// owningFamily resolves a sample name to its declared family, allowing
// the histogram/summary suffixes.
func owningFamily(fams map[string]Family, name string) (Family, string, bool) {
	if f, ok := fams[name]; ok {
		return f, "", true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f, suffix, true
		}
	}
	return Family{}, "", false
}

// parseSample splits `name{labels} value` (labels optional). The
// trailing optional timestamp is not emitted by this package and is
// rejected.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unterminated label set")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimPrefix(rest[j+1:], " ")
		if err := checkLabels(labels); err != nil {
			return "", "", "", err
		}
	} else {
		k := strings.IndexByte(rest, ' ')
		if k < 0 {
			return "", "", "", fmt.Errorf("sample line %q has no value", line)
		}
		name = rest[:k]
		rest = rest[k+1:]
	}
	rest = strings.TrimSpace(rest)
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid sample name %q", name)
	}
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", "", fmt.Errorf("sample %q: want exactly one value, got %q", name, rest)
	}
	return name, labels, rest, nil
}

func checkLabels(labels string) error {
	if labels == "" {
		return nil
	}
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !validName(k) {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label %s value %q not quoted", k, v)
		}
	}
	return nil
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLabel returns labels with the named pair removed — used to key
// histogram bucket series independently of their le label.
func stripLabel(labels, name string) string {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if k, _, ok := strings.Cut(pair, "="); ok && k == name {
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ",")
}
