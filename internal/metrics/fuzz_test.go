package metrics

import (
	"strings"
	"testing"
)

// FuzzParse hammers the exposition validator with arbitrary text: it
// must never panic, and on any input it accepts, every reported family
// must carry a plausible type and non-negative sample count. The seeds
// cover the shapes the encoder emits plus known-tricky fragments
// (escaped quotes in labels, +Inf buckets, comments).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# plain comment\n",
		"# HELP m help text\n# TYPE m counter\nm 1\n",
		"# TYPE m gauge\nm{a=\"x\"} -2.5\n",
		"# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n",
		"# TYPE m counter\nm{a=\"es\\\"caped\\\\\"} 7\n",
		"# TYPE m counter\nm 1e+06\n",
		"m 1\n",              // sample without TYPE: rejected
		"# TYPE m counter\n", // family with no samples: accepted
	}
	// A real rendered registry as a seed too.
	r := NewRegistry()
	h := NewHistogram(Opts{Name: "seed_seconds", Help: "Seed."}, LatencyBuckets)
	h.Observe(0.002)
	c := NewCounter(Opts{Name: "seed_total", Labels: []Label{{Key: "shard", Value: "0"}}})
	c.Inc()
	r.MustRegister(h, c)
	seeds = append(seeds, r.Text())

	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		fams, err := Parse(text)
		if err != nil {
			return
		}
		for name, fam := range fams {
			if fam.Name != name || fam.Samples < 0 {
				t.Fatalf("inconsistent family %q: %+v", name, fam)
			}
			switch fam.Type {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("family %q accepted with bad type %q", name, fam.Type)
			}
		}
		// Anything accepted that came out of our own encoder must
		// re-render losslessly through a re-parse of itself.
		if strings.Contains(text, "seed_total") {
			if _, err := Parse(text); err != nil {
				t.Fatalf("re-parse disagreed: %v", err)
			}
		}
	})
}
