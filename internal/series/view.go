package series

import "fmt"

// Reader is the read-only surface an index build consumes: a fixed set of
// equal-length series addressable by position. Collection implements it
// with flat contiguous storage; View implements it by remapping positions
// into another Reader's position space. Index packages accept a Reader so
// a sharding layer can build each shard directly over its slice of the
// caller's collection — no per-shard copy, the base values stay resident
// exactly once (the in-memory premise of MESSI's RawData array).
//
// Implementations must be immutable for the lifetime of any index built
// over them: At(i) must keep returning the same values, and Len must not
// shrink. At returns a live view of the underlying storage; callers that
// retain values across other operations must copy them (index builds do —
// leaf materialization copies into leaf-owned blocks).
//
// At is not required to be RAM-resident or uniform-cost: a device-backed
// Reader (storage.DiskReader) may pay a device read on a cache miss, and
// may panic on a device I/O error — there is deliberately no error return,
// so in-memory implementations stay allocation- and branch-free. Readers
// whose At can be slow should implement Prefetcher (prefetch.go), which
// latency-sensitive callers discover via ResolvePrefetcher to overlap
// loads with computation; everyone else remains oblivious.
type Reader interface {
	// Len returns the number of series.
	Len() int
	// SeriesLen returns the number of points in each series.
	SeriesLen() int
	// At returns the i-th series.
	At(i int) Series
}

// Collection satisfies Reader by construction; assert it here so the
// contract cannot drift.
var _ Reader = (*Collection)(nil)
var _ Reader = (*View)(nil)

// View is a position-remapping, read-only collection: series i of the view
// is series pos[i] of the base Reader. It holds no series data of its own —
// 4 bytes per member against a full copy of the values — which is what lets
// a sharded build index N partitions of one collection while the raw data
// stays resident once.
//
// The view shares pos with the caller (shard layers already own exactly
// this local→global map); neither side may mutate it afterwards.
type View struct {
	base Reader
	pos  []int32
}

// NewView wraps base with the given local→global position map. It panics
// if any position is out of base's range: views are built from maps the
// caller derived from the same base, so an out-of-range entry is a bug,
// not an input error.
func NewView(base Reader, pos []int32) *View {
	n := base.Len()
	for i, p := range pos {
		if p < 0 || int(p) >= n {
			panic(fmt.Sprintf("series: view position %d of %d maps to %d, base has %d", i, len(pos), p, n))
		}
	}
	return &View{base: base, pos: pos}
}

// Len returns the number of series in the view.
func (v *View) Len() int { return len(v.pos) }

// SeriesLen returns the number of points in each series.
func (v *View) SeriesLen() int { return v.base.SeriesLen() }

// At returns the i-th series of the view: series pos[i] of the base.
func (v *View) At(i int) Series { return v.base.At(int(v.pos[i])) }

// Positions exposes the local→global map: view series i is base series
// Positions()[i]. Callers must not mutate it.
func (v *View) Positions() []int32 { return v.pos }

// Base returns the Reader the view remaps into.
func (v *View) Base() Reader { return v.base }

// Materialize copies the view's members into a flat Collection — the
// storage a view-based build makes unnecessary. It exists for differential
// tests (a build over Materialize() must equal a build over the view) and
// for callers that outlive the base.
func (v *View) Materialize() *Collection {
	out := NewCollection(v.Len(), v.SeriesLen())
	for i := range v.pos {
		out.Set(i, v.At(i))
	}
	return out
}
