package series

// Prefetcher is implemented by Readers whose At may pay device time (a
// disk-backed base collection) and can make positions resident ahead of
// use. Prefetch blocks until the series at pos are loaded and is safe
// concurrently with At — the hook ParIS+-style I/O masking hangs off: a
// query submits the next candidate leaf's positions as a worker-pool task
// while computing real distances on the current leaf.
//
// In-memory Readers simply don't implement it; callers discover support
// through ResolvePrefetcher, so hot paths over RAM-resident data pay
// nothing.
type Prefetcher interface {
	Prefetch(pos []int32)
}

// ResolvePrefetcher returns a prefetch function operating in r's own
// position space, unwrapping any chain of position-remapping Views down to
// the base Reader; ok is false when the base is not device-backed (does
// not implement Prefetcher). A view's function translates local positions
// through its map before delegating, so callers always pass the positions
// they would pass to r.At.
func ResolvePrefetcher(r Reader) (prefetch func(pos []int32), ok bool) {
	switch v := r.(type) {
	case Prefetcher:
		return v.Prefetch, true
	case *View:
		base, ok := ResolvePrefetcher(v.base)
		if !ok {
			return nil, false
		}
		pos := v.pos
		return func(local []int32) {
			global := make([]int32, len(local))
			for i, p := range local {
				global[i] = pos[p]
			}
			base(global)
		}, true
	default:
		return nil, false
	}
}
