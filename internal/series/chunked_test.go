package series

import (
	"sync"
	"testing"
)

func TestChunkedAppendAt(t *testing.T) {
	c := NewChunked(4, 3) // tiny chunks force directory growth
	if c.Len() != 0 || c.SeriesLen() != 4 {
		t.Fatalf("empty chunked: len=%d serieslen=%d", c.Len(), c.SeriesLen())
	}
	const n = 50
	for i := 0; i < n; i++ {
		s := Series{float32(i), float32(i + 1), float32(i + 2), float32(i + 3)}
		if pos := c.Append(s); pos != i {
			t.Fatalf("append %d landed at %d", i, pos)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		got := c.At(i)
		for j := 0; j < 4; j++ {
			if got[j] != float32(i+j) {
				t.Fatalf("At(%d)[%d] = %v, want %v", i, j, got[j], float32(i+j))
			}
		}
	}
}

func TestChunkedAppendLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	NewChunked(4, 0).Append(Series{1, 2})
}

func TestChunkedViewIsStablePrefix(t *testing.T) {
	c := NewChunked(2, 4)
	for i := 0; i < 6; i++ {
		c.Append(Series{float32(i), float32(-i)})
	}
	v := c.Snapshot()
	if v.Len() != 6 {
		t.Fatalf("snapshot len = %d", v.Len())
	}
	// Growth after the snapshot must not change what the view answers.
	for i := 6; i < 200; i++ {
		c.Append(Series{float32(100 + i), float32(100 + i)})
	}
	for i := 0; i < 6; i++ {
		if got := v.At(i)[0]; got != float32(i) {
			t.Fatalf("view At(%d) = %v after growth, want %v", i, got, float32(i))
		}
	}
	flat := v.Materialize()
	if flat.Len() != 6 || flat.SeriesLen() != 2 {
		t.Fatalf("materialized shape %dx%d", flat.Len(), flat.SeriesLen())
	}
	for i := 0; i < 6; i++ {
		if flat.At(i)[1] != float32(-i) {
			t.Fatalf("materialized At(%d) = %v", i, flat.At(i))
		}
	}
	// Out-of-snapshot access must panic rather than silently read newer data.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-view index")
		}
	}()
	v.At(6)
}

func TestChunkedConcurrentAppendersAndReaders(t *testing.T) {
	// Writers race Append while readers continuously re-scan every position
	// below the Len they observe; run with -race. Values are derived from
	// their position so readers can validate without coordination.
	c := NewChunked(3, 8)
	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := c.Len()
				for i := 0; i < n; i++ {
					s := c.At(i)
					if s[1] != s[0]+1 || s[2] != s[0]+2 {
						t.Errorf("reader saw torn series at %d: %v", i, s)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				// Positions are assigned by Append, so the invariant readers
				// check is position-independent: consecutive deltas of 1.
				base := float32(i * w)
				c.Append(Series{base, base + 1, base + 2})
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if c.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", c.Len(), writers*perWriter)
	}
}
