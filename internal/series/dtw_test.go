package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTWIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, w := range []int{0, 1, 5, -1} {
		s := randomSeries(rng, 64)
		if d := DTW(s, s, w, math.Inf(1)); d != 0 {
			t.Errorf("DTW(s,s,window=%d) = %v, want 0", w, d)
		}
	}
}

func TestDTWZeroWindowIsED(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a, b := randomSeries(rng, 100), randomSeries(rng, 100)
		dtw := DTW(a, b, 0, math.Inf(1))
		ed := SquaredED(a, b)
		if !almostEqual(dtw, ed, 1e-9) {
			t.Fatalf("DTW window 0 = %v, SquaredED = %v", dtw, ed)
		}
	}
}

func TestDTWNeverExceedsED(t *testing.T) {
	// Widening the band can only decrease the optimum.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		a, b := randomSeries(rng, 80), randomSeries(rng, 80)
		ed := SquaredED(a, b)
		prev := ed
		for _, w := range []int{1, 2, 5, 10, 80} {
			d := DTW(a, b, w, math.Inf(1))
			if d > prev+1e-9 {
				t.Fatalf("DTW with window %d = %v exceeds smaller-window value %v", w, d, prev)
			}
			prev = d
		}
	}
}

func TestDTWKnownAlignment(t *testing.T) {
	// b is a shifted by one position; a one-step warp aligns all but the
	// boundary, so DTW should be far below ED.
	a := Series{0, 1, 2, 3, 4, 5, 6, 7}
	b := Series{0, 0, 1, 2, 3, 4, 5, 6}
	dtw := DTW(a, b, 2, math.Inf(1))
	ed := SquaredED(a, b)
	if dtw >= ed {
		t.Fatalf("DTW = %v not below ED = %v for shifted series", dtw, ed)
	}
	if !almostEqual(dtw, 1, 1e-9) {
		t.Errorf("DTW = %v, want 1 (single boundary mismatch)", dtw)
	}
}

func TestDTWEmptyAndMismatched(t *testing.T) {
	if d := DTW(Series{}, Series{1}, 1, math.Inf(1)); !math.IsInf(d, 1) {
		t.Errorf("DTW with empty input = %v, want +Inf", d)
	}
	// Band narrower than the length difference: no path.
	if d := DTW(make(Series, 10), make(Series, 20), 3, math.Inf(1)); !math.IsInf(d, 1) {
		t.Errorf("DTW with impossible band = %v, want +Inf", d)
	}
}

func TestDTWEarlyAbandonConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		a, b := randomSeries(rng, 64), randomSeries(rng, 64)
		full := DTW(a, b, 8, math.Inf(1))
		got := DTW(a, b, 8, full/3)
		if got <= full/3 && !almostEqual(got, full, 1e-9) {
			t.Fatalf("abandoned DTW returned %v <= limit but full is %v", got, full)
		}
	}
}

func TestEnvelopeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q := randomSeries(rng, 128)
	for _, w := range []int{0, 1, 7, 128} {
		env := NewEnvelope(q, w)
		for i := range q {
			if env.Lower[i] > q[i] || env.Upper[i] < q[i] {
				t.Fatalf("window %d: envelope does not contain q at %d: [%v,%v] vs %v",
					w, i, env.Lower[i], env.Upper[i], q[i])
			}
		}
	}
}

func TestEnvelopeZeroWindowIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	q := randomSeries(rng, 32)
	env := NewEnvelope(q, 0)
	for i := range q {
		if env.Upper[i] != q[i] || env.Lower[i] != q[i] {
			t.Fatalf("zero-window envelope differs from q at %d", i)
		}
	}
}

func TestLBKeoghLowerBoundsDTW(t *testing.T) {
	// The load-bearing invariant of the DTW cascade.
	rng := rand.New(rand.NewSource(16))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, s := randomSeries(r, 96), randomSeries(r, 96)
		w := r.Intn(20)
		env := NewEnvelope(q, w)
		lb := LBKeogh(env, s, math.Inf(1))
		dtw := DTW(q, s, w, math.Inf(1))
		return lb <= dtw+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLBKeoghZeroForSeriesInsideEnvelope(t *testing.T) {
	q := Series{0, 1, 2, 3, 4}
	env := NewEnvelope(q, 2)
	if lb := LBKeogh(env, q, math.Inf(1)); lb != 0 {
		t.Errorf("LBKeogh of query against own envelope = %v, want 0", lb)
	}
}

func TestLBKeoghEarlyAbandon(t *testing.T) {
	q := make(Series, 64)
	s := make(Series, 64)
	for i := range s {
		s[i] = 100 // far outside envelope of zeros
	}
	env := NewEnvelope(q, 3)
	got := LBKeogh(env, s, 5)
	if got <= 5 {
		t.Errorf("expected early-abandoned value > 5, got %v", got)
	}
	full := LBKeogh(env, s, math.Inf(1))
	if full != 64*100*100 {
		t.Errorf("full LBKeogh = %v, want %v", full, 64*100*100)
	}
}
