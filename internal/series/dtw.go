package series

import (
	"fmt"
	"math"
)

// This file implements dynamic time warping (DTW) and the LB_Keogh lower
// bound, supporting the paper's §V extension: answering DTW similarity
// queries on the same iSAX index used for Euclidean queries, with no change
// to the index structure.

// DTW returns the squared DTW distance between a and b under a Sakoe-Chiba
// band of half-width window (window < 0 means unconstrained). A window of 0
// degenerates to the squared Euclidean distance.
//
// The implementation uses the standard O(n·w) two-row dynamic program with
// early termination when an entire row exceeds limit (pass math.Inf(1) to
// disable early abandoning).
func DTW(a, b Series, window int, limit float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window < 0 {
		window = max(n, m)
	}
	// The band must be at least |n-m| wide for any warping path to exist.
	if d := n - m; d > window || -d > window {
		return math.Inf(1)
	}

	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0

	for i := 1; i <= n; i++ {
		lo := max(1, i-window)
		hi := min(m, i+window)
		for j := 0; j <= m; j++ {
			curr[j] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			d := float64(a[i-1]) - float64(b[j-1])
			cost := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			curr[j] = cost + best
			if curr[j] < rowMin {
				rowMin = curr[j]
			}
		}
		if rowMin > limit {
			return rowMin
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// Envelope holds the upper and lower warping envelopes of a query series:
// for each position i, Upper[i] = max(q[i-w..i+w]) and Lower[i] is the
// corresponding min. LB_Keogh compares candidate values against this band.
type Envelope struct {
	Upper Series
	Lower Series
}

// NewEnvelope computes the warping envelope of q for a Sakoe-Chiba band of
// half-width window. The envelope is computed once per query, so the simple
// O(n·window) sweep is never a measurable cost.
func NewEnvelope(q Series, window int) *Envelope {
	n := len(q)
	env := &Envelope{Upper: make(Series, n), Lower: make(Series, n)}
	if window < 0 {
		window = n
	}
	for i := 0; i < n; i++ {
		lo := max(0, i-window)
		hi := min(n-1, i+window)
		up, down := q[lo], q[lo]
		for j := lo + 1; j <= hi; j++ {
			if q[j] > up {
				up = q[j]
			}
			if q[j] < down {
				down = q[j]
			}
		}
		env.Upper[i], env.Lower[i] = up, down
	}
	return env
}

// LBKeogh returns the squared LB_Keogh lower bound of DTW(q, s) where env is
// the envelope of q. Early-abandons once the partial sum exceeds limit.
//
// Invariant (property-tested): LBKeogh(env(q), s) ≤ DTW(q, s, window).
func LBKeogh(env *Envelope, s Series, limit float64) float64 {
	if len(env.Upper) != len(s) {
		panic(fmt.Sprintf("series: LBKeogh length mismatch %d != %d", len(env.Upper), len(s)))
	}
	var acc float64
	for i, v := range s {
		switch {
		case v > env.Upper[i]:
			d := float64(v) - float64(env.Upper[i])
			acc += d * d
		case v < env.Lower[i]:
			d := float64(v) - float64(env.Lower[i])
			acc += d * d
		}
		if acc > limit {
			return acc
		}
	}
	return acc
}
