package series

import "fmt"

// This file implements subsequence extraction: "for streaming series, we
// create and index subsequences of length n using a sliding window" (paper
// §II). Long recordings become collections of fixed-length windows, which
// is how whole-matching indexes answer subsequence similarity queries.

// Windows extracts every window of the given length from s, advancing by
// step points, optionally z-normalizing each window (the standard setting
// for similarity search). It returns the window collection and the start
// offset of each window in s.
func Windows(s Series, length, step int, znormalize bool) (*Collection, []int, error) {
	if length <= 0 || step <= 0 {
		return nil, nil, fmt.Errorf("series: invalid window length %d or step %d", length, step)
	}
	if len(s) < length {
		return nil, nil, fmt.Errorf("series: series of %d points shorter than window %d", len(s), length)
	}
	count := (len(s)-length)/step + 1
	coll := NewCollection(count, length)
	offsets := make([]int, count)
	for i := 0; i < count; i++ {
		start := i * step
		offsets[i] = start
		w := coll.At(i)
		copy(w, s[start:start+length])
		if znormalize {
			w.ZNormalizeInPlace()
		}
	}
	return coll, offsets, nil
}

// WindowsInto appends the windows of s to an existing collection (which
// must have matching series length), returning the appended window start
// offsets. Streaming pipelines use it to grow one collection from many
// recordings.
func WindowsInto(coll *Collection, s Series, step int, znormalize bool) ([]int, error) {
	length := coll.SeriesLen()
	if step <= 0 {
		return nil, fmt.Errorf("series: invalid step %d", step)
	}
	if len(s) < length {
		return nil, fmt.Errorf("series: series of %d points shorter than window %d", len(s), length)
	}
	count := (len(s)-length)/step + 1
	offsets := make([]int, count)
	buf := make(Series, length)
	for i := 0; i < count; i++ {
		start := i * step
		offsets[i] = start
		copy(buf, s[start:start+length])
		if znormalize {
			buf.ZNormalizeInPlace()
		}
		coll.Append(buf)
	}
	return offsets, nil
}
