package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randomSeries(rng *rand.Rand, n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestMeanStddev(t *testing.T) {
	tests := []struct {
		name string
		s    Series
		mean float64
		sd   float64
	}{
		{"empty", Series{}, 0, 0},
		{"single", Series{5}, 5, 0},
		{"constant", Series{2, 2, 2, 2}, 2, 0},
		{"simple", Series{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{"negative", Series{-1, 1}, 0, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Mean(); !almostEqual(got, tc.mean, 1e-9) {
				t.Errorf("Mean() = %v, want %v", got, tc.mean)
			}
			if got := tc.s.Stddev(); !almostEqual(got, tc.sd, 1e-9) {
				t.Errorf("Stddev() = %v, want %v", got, tc.sd)
			}
		})
	}
}

func TestZNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomSeries(rng, 256)
	for i := range s {
		s[i] = s[i]*3 + 7 // skew mean and variance
	}
	z := s.ZNormalize()
	if !almostEqual(z.Mean(), 0, 1e-5) {
		t.Errorf("z-normalized mean = %v, want 0", z.Mean())
	}
	if !almostEqual(z.Stddev(), 1, 1e-5) {
		t.Errorf("z-normalized stddev = %v, want 1", z.Stddev())
	}
}

func TestZNormalizeConstant(t *testing.T) {
	s := Series{3, 3, 3}
	z := s.ZNormalize()
	for i, v := range z {
		if v != 0 {
			t.Errorf("z[%d] = %v, want 0 for constant series", i, v)
		}
	}
}

func TestZNormalizeInPlaceMatchesCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSeries(rng, 64)
	want := s.ZNormalize()
	got := s.Clone()
	got.ZNormalizeInPlace()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-place[%d] = %v, copy = %v", i, got[i], want[i])
		}
	}
}

func TestSquaredED(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{1, 2, 2}
	if got := SquaredED(a, b); got != 9 {
		t.Errorf("SquaredED = %v, want 9", got)
	}
	if got := ED(a, b); got != 3 {
		t.Errorf("ED = %v, want 3", got)
	}
	if got := SquaredED(a, a); got != 0 {
		t.Errorf("SquaredED(a,a) = %v, want 0", got)
	}
}

func TestSquaredEDPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SquaredED(Series{1}, Series{1, 2})
}

func TestEarlyAbandonExactWhenUnderLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := randomSeries(rng, n), randomSeries(rng, n)
		full := SquaredED(a, b)
		got := SquaredEDEarlyAbandon(a, b, math.Inf(1))
		if !almostEqual(got, full, 1e-12) {
			t.Fatalf("n=%d: early abandon with inf limit = %v, want %v", n, got, full)
		}
	}
}

func TestEarlyAbandonExceedsLimitWhenAbandoned(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := randomSeries(rng, 256), randomSeries(rng, 256)
		full := SquaredED(a, b)
		limit := full / 4
		got := SquaredEDEarlyAbandon(a, b, limit)
		if got <= limit {
			t.Fatalf("abandoned result %v must exceed limit %v", got, limit)
		}
	}
}

func TestEarlyAbandonProperty(t *testing.T) {
	// Property: result > limit implies true distance > limit, and
	// result <= limit implies result == true distance.
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, limFrac float64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSeries(r, 128), randomSeries(r, 128)
		full := SquaredED(a, b)
		limit := math.Abs(limFrac) * full
		got := SquaredEDEarlyAbandon(a, b, limit)
		if got <= limit {
			return almostEqual(got, full, 1e-12)
		}
		return full > limit || almostEqual(full, limit, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCollectionBasics(t *testing.T) {
	c := NewCollection(3, 4)
	if c.Len() != 3 || c.SeriesLen() != 4 {
		t.Fatalf("shape = (%d,%d), want (3,4)", c.Len(), c.SeriesLen())
	}
	c.Set(1, Series{1, 2, 3, 4})
	got := c.At(1)
	for i, want := range []float32{1, 2, 3, 4} {
		if got[i] != want {
			t.Errorf("At(1)[%d] = %v, want %v", i, got[i], want)
		}
	}
	// Slot 0 and 2 untouched.
	for _, i := range []int{0, 2} {
		for j, v := range c.At(i) {
			if v != 0 {
				t.Errorf("At(%d)[%d] = %v, want 0", i, j, v)
			}
		}
	}
}

func TestCollectionFromValues(t *testing.T) {
	c, err := CollectionFromValues([]float32{1, 2, 3, 4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.At(1)[0] != 4 {
		t.Errorf("At(1)[0] = %v, want 4", c.At(1)[0])
	}
	if _, err := CollectionFromValues([]float32{1, 2, 3, 4, 5}, 3); err == nil {
		t.Error("expected error for non-divisible values")
	}
	if _, err := CollectionFromValues(nil, 0); err == nil {
		t.Error("expected error for zero length")
	}
}

func TestCollectionAppend(t *testing.T) {
	c := NewCollection(0, 2)
	i := c.Append(Series{1, 2})
	j := c.Append(Series{3, 4})
	if i != 0 || j != 1 {
		t.Fatalf("Append returned %d,%d want 0,1", i, j)
	}
	if c.At(1)[1] != 4 {
		t.Errorf("At(1)[1] = %v, want 4", c.At(1)[1])
	}
}

func TestCollectionSlice(t *testing.T) {
	c := NewCollection(5, 2)
	for i := 0; i < 5; i++ {
		c.Set(i, Series{float32(i), float32(i)})
	}
	s := c.Slice(1, 4)
	if s.Len() != 3 {
		t.Fatalf("Slice len = %d, want 3", s.Len())
	}
	if s.At(0)[0] != 1 || s.At(2)[0] != 3 {
		t.Errorf("Slice contents wrong: %v %v", s.At(0), s.At(2))
	}
}

func TestBruteForce1NN(t *testing.T) {
	c := NewCollection(4, 3)
	c.Set(0, Series{10, 10, 10})
	c.Set(1, Series{1, 1, 1})
	c.Set(2, Series{5, 5, 5})
	c.Set(3, Series{0.5, 0.5, 0.5})
	idx, d := c.BruteForce1NN(Series{0, 0, 0})
	if idx != 3 {
		t.Errorf("1NN index = %d, want 3", idx)
	}
	if !almostEqual(d, 0.75, 1e-9) {
		t.Errorf("1NN dist = %v, want 0.75", d)
	}
}

func TestBruteForce1NNEmpty(t *testing.T) {
	c := NewCollection(0, 3)
	idx, d := c.BruteForce1NN(Series{0, 0, 0})
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty 1NN = (%d,%v), want (-1,+Inf)", idx, d)
	}
}
