package series

import (
	"testing"
)

func testCollection(t *testing.T, n, length int) *Collection {
	t.Helper()
	c := NewCollection(n, length)
	for i := 0; i < n; i++ {
		s := make(Series, length)
		for j := range s {
			s[j] = float32(i*length + j)
		}
		c.Set(i, s)
	}
	return c
}

func TestViewRemapsPositions(t *testing.T) {
	c := testCollection(t, 8, 4)
	pos := []int32{5, 0, 7, 2}
	v := NewView(c, pos)
	if v.Len() != len(pos) {
		t.Fatalf("Len() = %d, want %d", v.Len(), len(pos))
	}
	if v.SeriesLen() != c.SeriesLen() {
		t.Fatalf("SeriesLen() = %d, want %d", v.SeriesLen(), c.SeriesLen())
	}
	for i, p := range pos {
		got, want := v.At(i), c.At(int(p))
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("At(%d)[%d] = %v, want base series %d value %v", i, j, got[j], p, want[j])
			}
		}
	}
	if &v.Positions()[0] != &pos[0] {
		t.Error("Positions() does not share the caller's map")
	}
	if v.Base() != Reader(c) {
		t.Error("Base() is not the wrapped collection")
	}
}

// TestViewIsZeroCopy pins the tentpole property at the storage level: a
// view's series alias the base collection's backing array, so building an
// index through the view adds no raw-value residency.
func TestViewIsZeroCopy(t *testing.T) {
	c := testCollection(t, 4, 8)
	v := NewView(c, []int32{3, 1})
	for i, p := range v.Positions() {
		if &v.At(i)[0] != &c.At(int(p))[0] {
			t.Fatalf("view series %d does not alias base series %d", i, p)
		}
	}
}

func TestViewOfView(t *testing.T) {
	c := testCollection(t, 10, 4)
	outer := NewView(c, []int32{9, 4, 6, 1})
	inner := NewView(outer, []int32{3, 0})
	if got, want := &inner.At(0)[0], &c.At(1)[0]; got != want {
		t.Error("nested view At(0) does not resolve to base series 1")
	}
	if got, want := &inner.At(1)[0], &c.At(9)[0]; got != want {
		t.Error("nested view At(1) does not resolve to base series 9")
	}
}

func TestViewMaterializeEqualsView(t *testing.T) {
	c := testCollection(t, 16, 8)
	pos := []int32{15, 3, 3, 0, 8}
	v := NewView(c, pos)
	m := v.Materialize()
	if m.Len() != v.Len() || m.SeriesLen() != v.SeriesLen() {
		t.Fatalf("materialized shape (%d,%d) != view shape (%d,%d)",
			m.Len(), m.SeriesLen(), v.Len(), v.SeriesLen())
	}
	for i := 0; i < v.Len(); i++ {
		got, want := m.At(i), v.At(i)
		if &got[0] == &want[0] {
			t.Fatalf("materialized series %d aliases the base — Materialize must copy", i)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("materialized series %d differs at point %d", i, j)
			}
		}
	}
}

func TestViewEmpty(t *testing.T) {
	c := testCollection(t, 4, 4)
	v := NewView(c, nil)
	if v.Len() != 0 {
		t.Fatalf("empty view Len() = %d", v.Len())
	}
	if m := v.Materialize(); m.Len() != 0 || m.SeriesLen() != 4 {
		t.Fatalf("empty view materialized to shape (%d,%d)", m.Len(), m.SeriesLen())
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	c := testCollection(t, 4, 4)
	for _, pos := range [][]int32{{4}, {-1}, {0, 1, 2, 3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewView(%v) over a 4-series base did not panic", pos)
				}
			}()
			NewView(c, pos)
		}()
	}
}
