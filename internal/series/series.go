// Package series provides the data series kernel used by every index in this
// repository: the in-memory representation of fixed-length real-valued
// sequences, Euclidean and dynamic-time-warping distances, z-normalization,
// and the query envelopes used by lower-bounding scans.
//
// A data series S = {p1, ..., pn} is an ordered sequence of real values
// (paper §II). Values are stored as float32, matching the authors' C
// implementations; all distance accumulation is performed in float64 so that
// results are deterministic across the serial and parallel code paths.
//
// Unless stated otherwise every "distance" in this package and in the index
// packages is the SQUARED Euclidean distance. Working with squared distances
// avoids a square root per candidate; public API boundaries apply math.Sqrt.
package series

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single fixed-length data series.
type Series []float32

// ErrLengthMismatch is returned when two series of different lengths are
// combined in an operation that requires equal lengths.
var ErrLengthMismatch = errors.New("series: length mismatch")

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Mean returns the arithmetic mean of the values of s. The mean of an empty
// series is 0.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return sum / float64(len(s))
}

// Stddev returns the population standard deviation of s. The standard
// deviation of an empty series is 0.
func (s Series) Stddev() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s {
		d := float64(v) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// ZNormalize returns a z-normalized copy of s: zero mean, unit variance.
// Constant series (zero variance) normalize to all zeros, following the UCR
// Suite convention.
func (s Series) ZNormalize() Series {
	out := make(Series, len(s))
	mean := s.Mean()
	sd := s.Stddev()
	if sd == 0 {
		return out
	}
	for i, v := range s {
		out[i] = float32((float64(v) - mean) / sd)
	}
	return out
}

// ZNormalizeInPlace z-normalizes s without allocating.
func (s Series) ZNormalizeInPlace() {
	mean := s.Mean()
	sd := s.Stddev()
	if sd == 0 {
		for i := range s {
			s[i] = 0
		}
		return
	}
	for i, v := range s {
		s[i] = float32((float64(v) - mean) / sd)
	}
}

// SquaredED returns the squared Euclidean distance between a and b.
// It panics if the lengths differ; index code guarantees equal lengths.
func SquaredED(a, b Series) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: SquaredED length mismatch %d != %d", len(a), len(b)))
	}
	var acc float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}

// ED returns the Euclidean distance between a and b.
func ED(a, b Series) float64 { return math.Sqrt(SquaredED(a, b)) }

// SquaredEDEarlyAbandon computes the squared Euclidean distance between a and
// b but abandons the computation as soon as the partial sum exceeds limit,
// returning a value > limit (not necessarily the full distance). This is the
// core optimization of the UCR Suite and of the real-distance phases of
// ParIS and MESSI.
func SquaredEDEarlyAbandon(a, b Series, limit float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: SquaredEDEarlyAbandon length mismatch %d != %d", len(a), len(b)))
	}
	var acc float64
	i := 0
	// Process in blocks of 8 between abandon checks: checking every element
	// costs more than it saves, checking every block preserves almost all of
	// the abandoning benefit.
	for ; i+8 <= len(a); i += 8 {
		for j := i; j < i+8; j++ {
			d := float64(a[j]) - float64(b[j])
			acc += d * d
		}
		if acc > limit {
			return acc
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}

// Collection is a contiguous, flat container of equal-length series: the
// in-memory "RawData" array of MESSI (paper Figure 3) and the raw data buffer
// of ParIS. Storing all values in one backing slice keeps series access
// cache-friendly and allocation-free.
type Collection struct {
	n      int // number of series
	length int // points per series
	values []float32
}

// NewCollection allocates a collection of n series of the given length.
func NewCollection(n, length int) *Collection {
	if n < 0 || length <= 0 {
		panic(fmt.Sprintf("series: invalid collection shape n=%d length=%d", n, length))
	}
	return &Collection{n: n, length: length, values: make([]float32, n*length)}
}

// CollectionFromValues wraps an existing flat value slice. len(values) must
// be a multiple of length.
func CollectionFromValues(values []float32, length int) (*Collection, error) {
	if length <= 0 {
		return nil, fmt.Errorf("series: invalid series length %d", length)
	}
	if len(values)%length != 0 {
		return nil, fmt.Errorf("series: %d values not divisible by series length %d: %w",
			len(values), length, ErrLengthMismatch)
	}
	return &Collection{n: len(values) / length, length: length, values: values}, nil
}

// Len returns the number of series in the collection.
func (c *Collection) Len() int { return c.n }

// SeriesLen returns the number of points in each series.
func (c *Collection) SeriesLen() int { return c.length }

// At returns the i-th series as a view into the backing array. The caller
// must not hold the view across a Set to the same slot.
func (c *Collection) At(i int) Series {
	return Series(c.values[i*c.length : (i+1)*c.length : (i+1)*c.length])
}

// Set copies s into slot i. It panics if the length of s differs from the
// collection's series length.
func (c *Collection) Set(i int, s Series) {
	if len(s) != c.length {
		panic(fmt.Sprintf("series: Set length mismatch %d != %d", len(s), c.length))
	}
	copy(c.values[i*c.length:(i+1)*c.length], s)
}

// Values exposes the flat backing array: n*length float32 values, series i
// occupying [i*length, (i+1)*length).
func (c *Collection) Values() []float32 { return c.values }

// Append grows the collection by one series and returns its index.
func (c *Collection) Append(s Series) int {
	if len(s) != c.length {
		panic(fmt.Sprintf("series: Append length mismatch %d != %d", len(s), c.length))
	}
	c.values = append(c.values, s...)
	c.n++
	return c.n - 1
}

// Slice returns a view collection of series [lo, hi).
func (c *Collection) Slice(lo, hi int) *Collection {
	if lo < 0 || hi > c.n || lo > hi {
		panic(fmt.Sprintf("series: Slice bounds [%d,%d) out of range n=%d", lo, hi, c.n))
	}
	return &Collection{
		n:      hi - lo,
		length: c.length,
		values: c.values[lo*c.length : hi*c.length],
	}
}

// BruteForce1NN scans the whole collection and returns the index and squared
// Euclidean distance of the nearest neighbor of q. It is the reference
// answer for the exactness tests of every index in this repository.
func (c *Collection) BruteForce1NN(q Series) (best int, bestDist float64) {
	best, bestDist = -1, math.Inf(1)
	for i := 0; i < c.n; i++ {
		if d := SquaredED(q, c.At(i)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}
