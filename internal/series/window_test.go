package series

import (
	"math"
	"math/rand"
	"testing"
)

func TestWindowsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	long := randomSeries(rng, 100)
	coll, offsets, err := Windows(long, 32, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	// Windows start at 0,16,32,48,64; 80+32 > 100 ⇒ last start 68? No:
	// (100-32)/16+1 = 5 windows, starts 0..64.
	if coll.Len() != 5 || len(offsets) != 5 {
		t.Fatalf("got %d windows, want 5", coll.Len())
	}
	for i, off := range offsets {
		if off != i*16 {
			t.Fatalf("offset[%d] = %d, want %d", i, off, i*16)
		}
		w := coll.At(i)
		for j := range w {
			if w[j] != long[off+j] {
				t.Fatalf("window %d differs from source at %d", i, j)
			}
		}
	}
}

func TestWindowsZNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	long := randomSeries(rng, 300)
	for i := range long {
		long[i] = long[i]*5 + 100 // offset + scale
	}
	coll, _, err := Windows(long, 64, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 237 {
		t.Fatalf("got %d windows, want 237", coll.Len())
	}
	for i := 0; i < coll.Len(); i += 50 {
		w := coll.At(i)
		if m := w.Mean(); math.Abs(m) > 1e-4 {
			t.Fatalf("window %d mean %v", i, m)
		}
		if sd := w.Stddev(); math.Abs(sd-1) > 1e-3 {
			t.Fatalf("window %d stddev %v", i, sd)
		}
	}
}

func TestWindowsErrors(t *testing.T) {
	s := make(Series, 10)
	if _, _, err := Windows(s, 0, 1, false); err == nil {
		t.Error("zero length accepted")
	}
	if _, _, err := Windows(s, 4, 0, false); err == nil {
		t.Error("zero step accepted")
	}
	if _, _, err := Windows(s, 20, 1, false); err == nil {
		t.Error("window longer than series accepted")
	}
}

func TestWindowsExactFit(t *testing.T) {
	s := Series{1, 2, 3, 4}
	coll, offsets, err := Windows(s, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 1 || offsets[0] != 0 {
		t.Fatalf("exact-fit window wrong: %d windows", coll.Len())
	}
}

func TestWindowsIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	coll := NewCollection(0, 16)
	a := randomSeries(rng, 40)
	b := randomSeries(rng, 30)
	offA, err := WindowsInto(coll, a, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	offB, err := WindowsInto(coll, b, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if coll.Len() != len(offA)+len(offB) {
		t.Fatalf("collection %d != %d+%d windows", coll.Len(), len(offA), len(offB))
	}
	// First window of b sits right after a's windows.
	w := coll.At(len(offA))
	for j := range w {
		if w[j] != b[j] {
			t.Fatalf("first b-window differs at %d", j)
		}
	}
	if _, err := WindowsInto(coll, make(Series, 4), 1, false); err == nil {
		t.Error("short source accepted")
	}
}

func TestWindowsSubsequenceSearchEndToEnd(t *testing.T) {
	// Classic subsequence matching: plant a known pattern inside a long
	// noisy recording; the window whose offset covers the pattern must be
	// the 1-NN of the pattern.
	rng := rand.New(rand.NewSource(83))
	long := randomSeries(rng, 2000)
	pattern := randomSeries(rng, 64)
	const plantAt = 777
	copy(long[plantAt:plantAt+64], pattern)

	coll, offsets, err := Windows(long, 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	best, bestDist := coll.BruteForce1NN(pattern)
	if offsets[best] != plantAt {
		t.Fatalf("1-NN window offset %d, want %d", offsets[best], plantAt)
	}
	if bestDist != 0 {
		t.Fatalf("planted pattern distance %v, want 0", bestDist)
	}
}
