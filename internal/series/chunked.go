package series

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ChunkedRows is an append-only store of fixed-width rows that supports
// concurrent readers while writers append — the storage engine behind the
// live-ingestion write path. Rows live in fixed-size chunks that are
// allocated once and never moved, so a row view returned by At remains
// valid — and bit-identical — forever, no matter how much the store grows
// afterwards (a flat slice cannot offer that: growing it reallocates the
// backing array under concurrent readers). The chunk directory grows
// copy-on-write behind an atomic pointer.
//
// Concurrency contract: Append is safe for concurrent use (appends are
// serialized internally and positions are assigned in publication order).
// At(i) is safe concurrently with appends for any i below a Len value the
// reader has already observed: Len's atomic load acquires every row write
// published before it. Callers may also gate visibility with their own
// published counter (the index's append count), as long as rows are
// appended before that counter advances.
type ChunkedRows[T any] struct {
	width    int // elements per row
	chunkCap int // rows per chunk

	mu  sync.Mutex // serializes appenders
	dir atomic.Pointer[[][]T]
	n   atomic.Int64
}

// defaultChunkCap is the chunk size in rows when NewChunkedRows is given 0:
// large enough to amortize directory growth, small enough that a mostly
// idle delta buffer does not pin megabytes.
const defaultChunkCap = 1024

// NewChunkedRows creates an empty store of rows with the given width.
// chunkCap is the chunk size in rows (0 means 1024).
func NewChunkedRows[T any](width, chunkCap int) *ChunkedRows[T] {
	if width <= 0 {
		panic(fmt.Sprintf("series: invalid chunked row width %d", width))
	}
	if chunkCap <= 0 {
		chunkCap = defaultChunkCap
	}
	c := &ChunkedRows[T]{width: width, chunkCap: chunkCap}
	empty := make([][]T, 0)
	c.dir.Store(&empty)
	return c
}

// Len returns the number of appended rows. The load acquires: every write
// of rows [0, Len) is visible to the caller afterwards.
func (c *ChunkedRows[T]) Len() int { return int(c.n.Load()) }

// Width returns the number of elements in each row.
func (c *ChunkedRows[T]) Width() int { return c.width }

// Append copies row into the store and returns its position. Positions are
// assigned and published in order: when Append returns p, every row in
// [0, p] is visible to readers.
func (c *ChunkedRows[T]) Append(row []T) int {
	if len(row) != c.width {
		panic(fmt.Sprintf("series: ChunkedRows.Append width mismatch %d != %d", len(row), c.width))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int(c.n.Load())
	ci := n / c.chunkCap
	dir := *c.dir.Load()
	if ci == len(dir) {
		// Grow the directory copy-on-write so readers holding the old
		// directory keep a consistent view; chunks themselves never move.
		grown := make([][]T, len(dir)+1)
		copy(grown, dir)
		grown[len(dir)] = make([]T, c.chunkCap*c.width)
		c.dir.Store(&grown)
		dir = grown
	}
	off := (n % c.chunkCap) * c.width
	copy(dir[ci][off:off+c.width], row)
	c.n.Store(int64(n + 1)) // release: row values precede the new length
	return n
}

// At returns row i as a capacity-capped view into its chunk. The view is
// stable: chunks are never reallocated. i must be below a Len value the
// caller observed.
func (c *ChunkedRows[T]) At(i int) []T {
	dir := *c.dir.Load()
	ci := i / c.chunkCap
	off := (i % c.chunkCap) * c.width
	return dir[ci][off : off+c.width : off+c.width]
}

// Run returns the longest contiguous run of rows starting at lo and
// capped at hi: rows [lo, lo+k) share one chunk, so they come back as a
// single flat slice of k*width elements (capacity-capped). Batched
// scans walk [lo, hi) in runs instead of chasing At row by row. lo must
// be below a Len value the caller observed; hi must not exceed one.
func (c *ChunkedRows[T]) Run(lo, hi int) (rows []T, k int) {
	dir := *c.dir.Load()
	ci := lo / c.chunkCap
	off := lo % c.chunkCap
	k = min(hi-lo, c.chunkCap-off)
	return dir[ci][off*c.width : (off+k)*c.width : (off+k)*c.width], k
}

// Chunked is an append-only collection of equal-length series over a
// ChunkedRows store: the concurrent-append counterpart of Collection used
// by the serving engine's write path.
type Chunked struct {
	rows *ChunkedRows[float32]
}

// NewChunked creates an empty chunked collection of series with the given
// length. chunkCap is the chunk size in series (0 means 1024).
func NewChunked(length, chunkCap int) *Chunked {
	return &Chunked{rows: NewChunkedRows[float32](length, chunkCap)}
}

// Len returns the number of appended series (see ChunkedRows.Len for the
// visibility guarantee).
func (c *Chunked) Len() int { return c.rows.Len() }

// SeriesLen returns the number of points in each series.
func (c *Chunked) SeriesLen() int { return c.rows.Width() }

// Append copies s into the collection and returns its position.
func (c *Chunked) Append(s Series) int { return c.rows.Append(s) }

// At returns series i as a stable view into its chunk.
func (c *Chunked) At(i int) Series { return Series(c.rows.At(i)) }

// Snapshot returns a stable view of the first Len() series. The view keeps
// answering from exactly that prefix no matter how many series are appended
// afterwards.
func (c *Chunked) Snapshot() ChunkedView { return c.View(c.Len()) }

// View returns a stable view of the first n series; n must not exceed a
// Len value the caller has observed.
func (c *Chunked) View(n int) ChunkedView { return ChunkedView{c: c, n: n} }

// ChunkedView is a frozen prefix of a Chunked collection: a consistent
// snapshot for queries and ground-truth scans while appends continue.
type ChunkedView struct {
	c *Chunked
	n int
}

// Len returns the number of series in the view.
func (v ChunkedView) Len() int { return v.n }

// SeriesLen returns the number of points in each series.
func (v ChunkedView) SeriesLen() int { return v.c.SeriesLen() }

// At returns series i of the view.
func (v ChunkedView) At(i int) Series {
	if i >= v.n {
		panic(fmt.Sprintf("series: view index %d out of snapshot range %d", i, v.n))
	}
	return v.c.At(i)
}

// Materialize copies the view into a flat Collection — the form the serial
// ground-truth scans consume.
func (v ChunkedView) Materialize() *Collection {
	out := NewCollection(v.n, v.c.SeriesLen())
	for i := 0; i < v.n; i++ {
		out.Set(i, v.c.At(i))
	}
	return out
}
