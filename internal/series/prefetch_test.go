package series

import (
	"sync"
	"testing"
)

// prefetchRecorder is a device-backed-Reader stand-in: a Collection that
// records every Prefetch call.
type prefetchRecorder struct {
	*Collection
	mu  sync.Mutex
	got [][]int32
}

func (r *prefetchRecorder) Prefetch(pos []int32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, append([]int32(nil), pos...))
}

func TestResolvePrefetcherDirect(t *testing.T) {
	r := &prefetchRecorder{Collection: NewCollection(6, 4)}
	pf, ok := ResolvePrefetcher(r)
	if !ok {
		t.Fatal("Prefetcher implementation not resolved")
	}
	pf([]int32{1, 3})
	if len(r.got) != 1 || r.got[0][0] != 1 || r.got[0][1] != 3 {
		t.Fatalf("direct prefetch recorded %v", r.got)
	}
}

func TestResolvePrefetcherTranslatesViewChains(t *testing.T) {
	r := &prefetchRecorder{Collection: NewCollection(8, 4)}
	v1 := NewView(r, []int32{5, 2, 7, 0})
	pf, ok := ResolvePrefetcher(v1)
	if !ok {
		t.Fatal("view over a Prefetcher not resolved")
	}
	pf([]int32{0, 2})
	if len(r.got) != 1 || r.got[0][0] != 5 || r.got[0][1] != 7 {
		t.Fatalf("view prefetch recorded %v, want base positions [5 7]", r.got)
	}
	// Nested views compose the translation: v2-local 1 → v1-local 1 → base 2.
	v2 := NewView(v1, []int32{3, 1})
	pf, ok = ResolvePrefetcher(v2)
	if !ok {
		t.Fatal("nested view over a Prefetcher not resolved")
	}
	pf([]int32{1})
	if len(r.got) != 2 || len(r.got[1]) != 1 || r.got[1][0] != 2 {
		t.Fatalf("nested view prefetch recorded %v, want base position [2]", r.got[1])
	}
}

func TestResolvePrefetcherInMemoryReaders(t *testing.T) {
	coll := NewCollection(4, 4)
	if _, ok := ResolvePrefetcher(coll); ok {
		t.Fatal("flat collection resolved as device-backed")
	}
	if _, ok := ResolvePrefetcher(NewView(coll, []int32{1, 0})); ok {
		t.Fatal("view over a flat collection resolved as device-backed")
	}
}
