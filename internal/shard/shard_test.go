package shard

import (
	"context"
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
	"dsidx/internal/vector"
)

const testLen = 64

func testConfig() core.Config { return core.Config{LeafCapacity: 32} }

func buildSharded(t *testing.T, coll *series.Collection, shards int, policy Policy) *Sharded {
	t.Helper()
	s, err := Build(coll, testConfig(), Options{Shards: shards, Policy: policy,
		Options: messi.Options{MergeThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// landedCollection copies everything the sharded index serves, in global
// position order, for ground-truth scans.
func landedCollection(s *Sharded) *series.Collection {
	out := series.NewCollection(s.Count(), s.seriesLen)
	for i := 0; i < s.Count(); i++ {
		out.Set(i, s.At(i))
	}
	return out
}

func TestShardedMatchesSerialAcrossShardCountsAndPolicies(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 7}
	coll := g.Collection(1500)
	queries := g.PerturbedQueries(coll, 12, 0.05)
	for _, policy := range []Policy{RoundRobin{}, HashSeries{}} {
		for _, n := range []int{1, 2, 4, 7} {
			s := buildSharded(t, coll, n, policy)
			if s.Shards() != n {
				t.Fatalf("%s/%d: Shards() = %d", policy.Name(), n, s.Shards())
			}
			for i := 0; i < queries.Len(); i++ {
				q := queries.At(i)
				got, st, err := s.Search(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				if st.Observed != coll.Len() {
					t.Fatalf("%s/%d: observed %d, want %d", policy.Name(), n, st.Observed, coll.Len())
				}
				want := ucr.Scan(coll, q)
				if got.Pos != want.Pos || got.Dist != want.Dist {
					t.Fatalf("%s/%d query %d: (#%d, %v) != serial (#%d, %v)",
						policy.Name(), n, i, got.Pos, got.Dist, want.Pos, want.Dist)
				}
				gotK, _, err := s.SearchKNN(q, 5, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantK := ucr.ScanKNN(coll, q, 5)
				if len(gotK) != len(wantK) {
					t.Fatalf("%s/%d query %d: %d k-NN results, want %d",
						policy.Name(), n, i, len(gotK), len(wantK))
				}
				for r := range wantK {
					if gotK[r].Pos != wantK[r].Pos || gotK[r].Dist != wantK[r].Dist {
						t.Fatalf("%s/%d query %d rank %d: (#%d, %v) != serial (#%d, %v)",
							policy.Name(), n, i, r, gotK[r].Pos, gotK[r].Dist, wantK[r].Pos, wantK[r].Dist)
					}
				}
				gotD, _, err := s.SearchDTW(q, 4, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantD := ucr.ScanDTW(coll, q, 4)
				if gotD.Pos != wantD.Pos || gotD.Dist != wantD.Dist {
					t.Fatalf("%s/%d DTW query %d: (#%d, %v) != serial (#%d, %v)",
						policy.Name(), n, i, gotD.Pos, gotD.Dist, wantD.Pos, wantD.Dist)
				}
			}
		}
	}
}

func TestShardedSharedPoolServesAllShards(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 11}
	coll := g.Collection(2000)
	queries := g.PerturbedQueries(coll, 8, 0.05)
	s := buildSharded(t, coll, 4, RoundRobin{})

	qs := make([]series.Series, queries.Len())
	for i := range qs {
		qs[i] = queries.At(i)
	}
	results, stats, err := s.BatchSearchStats(qs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.EngineStats()
	if st.Tasks == 0 {
		t.Error("no tasks executed on the shared pool — shard queries did not use it")
	}
	if st.PeakInFlight > s.MaxInFlight() {
		t.Errorf("peak in-flight %d exceeds admission bound %d", st.PeakInFlight, s.MaxInFlight())
	}
	// The pool counts LOGICAL queries: one per scatter-gather, not one per
	// shard, so sampling Queries yields true QPS at any shard count.
	if st.Queries != uint64(len(qs)) {
		t.Errorf("engine counted %d queries for %d scatter-gather searches", st.Queries, len(qs))
	}
	for i := range qs {
		want := ucr.Scan(coll, qs[i])
		if results[i].Pos != want.Pos || results[i].Dist != want.Dist {
			t.Fatalf("batch query %d: (#%d, %v) != serial (#%d, %v)",
				i, results[i].Pos, results[i].Dist, want.Pos, want.Dist)
		}
		if stats[i].Observed != coll.Len() {
			t.Fatalf("batch query %d observed %d", i, stats[i].Observed)
		}
	}
	// Every shard should have answered (round-robin split leaves no shard
	// empty at this size).
	for si := 0; si < s.Shards(); si++ {
		if s.Shard(si).Count() == 0 {
			t.Fatalf("shard %d is empty", si)
		}
	}
}

func TestShardedAppendVisibleAndGloballyPositioned(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 21}
	coll := g.Collection(600)
	s := buildSharded(t, coll, 3, RoundRobin{})
	extra := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 22}.Collection(200)

	for i := 0; i < 100; i++ {
		pos, err := s.Append(extra.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if pos != 600+i {
			t.Fatalf("append %d landed at global %d", i, pos)
		}
	}
	batch := make([]series.Series, 100)
	for i := range batch {
		batch[i] = extra.At(100 + i)
	}
	start, err := s.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if start != 700 {
		t.Fatalf("batch landed at global %d", start)
	}
	if s.Count() != 800 {
		t.Fatalf("count %d", s.Count())
	}

	// Every appended series is findable as its own nearest neighbor at its
	// global position, and At resolves the same values.
	for i := 0; i < 200; i += 17 {
		got, st, err := s.Search(extra.At(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pos != int32(600+i) || got.Dist != 0 {
			t.Fatalf("self-query of append %d: (#%d, %v)", i, got.Pos, got.Dist)
		}
		if st.Observed != 800 {
			t.Fatalf("observed %d", st.Observed)
		}
	}
	live := landedCollection(s)
	queries := g.PerturbedQueries(coll, 6, 0.05)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("query %d: (#%d, %v) != serial (#%d, %v)", i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}

	// Flush folds every shard's delta; answers must not move.
	s.Flush()
	if p := s.Pending(); p != 0 {
		t.Fatalf("pending %d after Flush", p)
	}
	ist := s.IngestStats()
	if ist.Appended != 200 || ist.Merged != 200 {
		t.Fatalf("ingest stats after flush: %+v", ist)
	}
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("post-flush query %d: (#%d, %v) != serial (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

func TestShardedPersistRoundTrip(t *testing.T) {
	for _, policy := range []Policy{RoundRobin{}, HashSeries{}} {
		g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 31}
		coll := g.Collection(500)
		s := buildSharded(t, coll, 3, policy)
		extra := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 32}.Collection(120)
		for i := 0; i < 80; i++ {
			if _, err := s.Append(extra.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush()
		for i := 80; i < 120; i++ {
			if _, err := s.Append(extra.At(i)); err != nil {
				t.Fatal(err)
			}
		}

		enc := s.Encode()
		if string(enc[:4]) != "DSS1" {
			t.Fatalf("sharded encode magic %q", enc[:4])
		}
		s2, err := Decode(enc, coll, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if s2.Count() != s.Count() || s2.Shards() != s.Shards() || s2.PolicyName() != policy.Name() {
			t.Fatalf("%s: decoded count=%d shards=%d policy=%s", policy.Name(),
				s2.Count(), s2.Shards(), s2.PolicyName())
		}
		if s2.Pending() != s.Pending() {
			t.Fatalf("%s: decoded pending %d, want %d", policy.Name(), s2.Pending(), s.Pending())
		}
		if enc2 := s2.Encode(); string(enc2) != string(enc) {
			t.Fatalf("%s: re-encode differs from original", policy.Name())
		}
		live := landedCollection(s)
		queries := g.PerturbedQueries(coll, 6, 0.05)
		for i := 0; i < queries.Len(); i++ {
			q := queries.At(i)
			a, _, err := s.Search(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := s2.Search(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := ucr.Scan(live, q)
			if a != b || b.Pos != want.Pos || b.Dist != want.Dist {
				t.Fatalf("%s round-trip query %d: %+v vs %+v vs serial %+v", policy.Name(), i, a, b, want)
			}
		}
		// Appended series travel with the shards and keep their global
		// positions across the round trip.
		got, _, err := s2.Search(extra.At(100), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pos != 600 || got.Dist != 0 {
			t.Fatalf("%s: decoded self-query: (#%d, %v)", policy.Name(), got.Pos, got.Dist)
		}
	}
}

func TestLegacySingleIndexLoadsAsOneShard(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 41}
	coll := g.Collection(400)
	ix, err := messi.Build(coll, testConfig(), messi.Options{MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	extra := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 42}.Collection(50)
	for i := 0; i < extra.Len(); i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Both the bare DSI1 form (no appends — encode before the appends
	// happened is equivalent to a fresh build) and the DSL1 live form must
	// load as a 1-shard instance with unchanged positions and answers.
	enc := ix.Encode()
	s, err := Decode(enc, coll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Shards() != 1 || s.Count() != ix.Count() || s.Pending() != ix.Pending() {
		t.Fatalf("legacy load: shards=%d count=%d pending=%d, want 1/%d/%d",
			s.Shards(), s.Count(), s.Pending(), ix.Count(), ix.Pending())
	}
	queries := g.PerturbedQueries(coll, 8, 0.05)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		a, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("legacy query %d: plain %+v != 1-shard %+v", i, a, b)
		}
	}
	// Appended positions are identity-mapped.
	got, _, err := s.Search(extra.At(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != 410 || got.Dist != 0 {
		t.Fatalf("legacy append self-query: (#%d, %v)", got.Pos, got.Dist)
	}

	// Requesting a conflicting topology is an error, not a silent ignore —
	// for the shard count and for the policy (a legacy file loads, and
	// re-encodes, as round-robin).
	if _, err := Decode(enc, coll, Options{Shards: 4}); err == nil {
		t.Fatal("legacy file decoded under Shards=4")
	}
	if _, err := Decode(enc, coll, Options{Policy: HashSeries{}}); err == nil {
		t.Fatal("legacy file decoded under an explicit hash policy")
	}
	if rr, err := Decode(enc, coll, Options{Policy: RoundRobin{}}); err != nil {
		t.Fatalf("legacy file rejected under an explicit round-robin policy: %v", err)
	} else {
		rr.Close()
	}
}

func TestShardedDecodeRejectsCorruptManifests(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 51}
	coll := g.Collection(200)
	s := buildSharded(t, coll, 2, RoundRobin{})
	enc := s.Encode()

	cases := map[string][]byte{
		"truncated header": enc[:10],
		"bad version":      append([]byte("DSS1\xff\xff\xff\xff"), enc[8:]...),
		"bad policy":       append([]byte("DSS1\x01\x00\x00\x00\x99\x00\x00\x00"), enc[12:]...),
		"zero shards":      append(append([]byte{}, enc[:12]...), append([]byte{0, 0, 0, 0}, enc[16:]...)...),
		"truncated blob":   enc[:len(enc)-8],
		"trailing bytes":   append(append([]byte{}, enc...), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := Decode(data, coll, Options{}); err == nil {
			t.Errorf("%s: corrupt manifest decoded without error", name)
		}
	}
	// Wrong base collection shape.
	if _, err := Decode(enc, g.Collection(100), Options{}); err == nil {
		t.Error("manifest decoded over a wrong-size base collection")
	}
}

func TestShardedEmptyAndErrorPaths(t *testing.T) {
	coll := series.NewCollection(0, testLen)
	s := buildSharded(t, coll, 2, RoundRobin{})
	q := make(series.Series, testLen)
	got, st, err := s.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != -1 || st.Observed != 0 {
		t.Fatalf("empty index answered (#%d, observed %d)", got.Pos, st.Observed)
	}
	if _, _, err := s.Search(make(series.Series, 3), 0); err == nil {
		t.Fatal("wrong-length query accepted")
	}
	if _, err := s.Append(make(series.Series, 3)); err == nil {
		t.Fatal("wrong-length append accepted")
	}
	if _, err := s.AppendBatch([]series.Series{q, make(series.Series, 1)}); err == nil {
		t.Fatal("wrong-length batch accepted")
	}
	if k, _, err := s.SearchKNN(q, 0, 0); err != nil || k != nil {
		t.Fatalf("k=0 returned (%v, %v)", k, err)
	}

	// Appends into an empty sharded index still work and are searchable.
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 61}
	extra := g.Collection(40)
	for i := 0; i < extra.Len(); i++ {
		if _, err := s.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	r, st2, err := s.Search(extra.At(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pos != 5 || r.Dist != 0 || st2.Observed != 40 {
		t.Fatalf("append-only self-query: (#%d, %v) observed %d", r.Pos, r.Dist, st2.Observed)
	}

	// Too many shards is a construction error.
	if _, err := Build(extra, testConfig(), Options{Shards: MaxShards + 1}); err == nil {
		t.Fatal("Build accepted more than MaxShards shards")
	}
}

func TestShardedApproximateUpperBounds(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 71}
	coll := g.Collection(1200)
	queries := g.PerturbedQueries(coll, 10, 0.05)
	s := buildSharded(t, coll, 4, HashSeries{})
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		approx, err := s.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		exact := ucr.Scan(coll, q)
		if approx.Pos < 0 || approx.Pos >= int32(coll.Len()) {
			t.Fatalf("approx position %d out of range", approx.Pos)
		}
		if approx.Dist < exact.Dist {
			t.Fatalf("approximate distance %v below exact %v", approx.Dist, exact.Dist)
		}
		// The reported position's true distance must equal the reported one
		// (same vector kernel the index computes with).
		if d := vector.SquaredEDEarlyAbandon(q, coll.At(int(approx.Pos)), math.Inf(1)); d != approx.Dist {
			t.Fatalf("approx reports %v for #%d, true distance %v", approx.Dist, approx.Pos, d)
		}
	}
}

func TestShardedAdmissionAndBatchSearch(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 31}
	coll := g.Collection(300)
	s := buildSharded(t, coll, 3, RoundRobin{})
	if s.MaxInFlight() <= 0 {
		t.Fatalf("MaxInFlight() = %d", s.MaxInFlight())
	}
	release := s.Admit()
	release()
	release, err := s.AdmitContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	qs := []series.Series{coll.At(0), coll.At(7), coll.At(123)}
	want := []int32{0, 7, 123}
	rs, err := s.BatchSearch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Pos != want[i] || r.Dist != 0 {
			t.Errorf("query %d: got pos %d dist %v, want exact self-match at %d",
				i, r.Pos, r.Dist, want[i])
		}
	}
}
