// Package shard partitions a collection across N independent MESSI shards
// that answer as one index — the coarse-grained layer above the paper's
// intra-tree parallelism. One tree scales by fanning its phases out to a
// worker pool (internal/messi); a serving system at collection sizes past a
// single tree's memory ceiling additionally partitions the data, so builds,
// merges and ingestion parallelize across trees ("Parallel and Distributed
// Data Series Processing on Modern and Emerging Hardware" names exactly
// this distribution step above ParIS+/MESSI).
//
// The design keeps the single-index guarantees:
//
//   - One shared worker pool. Every shard attaches to the same
//     internal/engine pool (messi.Options.Engine), so parallelism is
//     governed globally: N shards of one query, or tasks of many queries,
//     never oversubscribe the machine, and admission control spans the
//     whole sharded index.
//   - One shared best-so-far. A query scatters to all shards through the
//     messi Shared search variants with a single xsync.Best (or KBest)
//     threaded into every shard's traversal, so a tight bound found on
//     shard 0 prunes shards 1..N-1 mid-flight — not merely at merge time.
//     Each shard records answers under its local→global position map, so
//     the shared accumulator always holds collection-level positions.
//   - One consistent cut. Appends publish a copy-on-write per-shard count
//     vector under the route lock; a query captures that vector once and
//     caps every shard at its entry, so the answer covers exactly the
//     global prefix [0, Observed) — the property the conformance and
//     race-stress suites verify against serial scans.
//   - One copy of the base data. Each shard is built over a zero-copy
//     position-remapping view (series.View) of the caller's collection,
//     not a materialized per-shard copy, so sharding never doubles
//     base-value residency: N shards read the same flat array a 1-shard
//     index would. Decode replays the same views, so loading is equally
//     copy-free.
//
// Routing is pluggable (Policy): round-robin by arrival order, or
// content-hashing so identical series co-locate. Persistence wraps the
// per-shard DSI1/DSL1 blobs in a DSS1 manifest (persist.go); plain
// single-index files load as a 1-shard instance.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dsidx/internal/core"
	"dsidx/internal/engine"
	"dsidx/internal/messi"
	"dsidx/internal/metrics"
	"dsidx/internal/series"
	"dsidx/internal/storage"
	"dsidx/internal/xsync"
)

// MaxShards bounds the shard count: shard ids persist as one byte per
// appended series in the DSS1 route log.
const MaxShards = 256

// Options configures a sharded index: the per-shard MESSI options (Workers
// and MaxInFlight size the one pool every shard shares) plus the partition
// shape.
type Options struct {
	messi.Options
	// Shards is the number of partitions (0 means 1).
	Shards int
	// Policy routes series to shards (nil means RoundRobin).
	Policy Policy
	// CopyBase restores the legacy build: each shard indexes a
	// materialized flat copy of its slice of the base collection instead
	// of a zero-copy position-remapping view, doubling base-data
	// residency. Answers, stats and encoded bytes are identical either
	// way — the conformance harness toggles it randomly and a
	// differential test pins the equivalence — so the knob exists only
	// for that testing and as a measurement baseline, never for serving.
	// Mutually exclusive with ColdStorage.
	CopyBase bool
	// ColdStorage, when set, places shards' base values on a device behind
	// a block cache instead of RAM — the out-of-core tier. Answers stay
	// bit-identical to a hot build (float32 values round-trip the device
	// exactly); the conformance harness tosses placement randomly to pin
	// that. Mutually exclusive with CopyBase.
	ColdStorage *ColdStorage
	// AllowPartial opts queries into best-effort answers when shards are
	// unavailable: instead of failing with ErrShardsUnavailable, the query
	// answers from the shards still serving and records the skipped set in
	// QueryStats.UncoveredShards. Off by default — a partial answer is no
	// longer the exact nearest neighbor, so the caller must opt in.
	AllowPartial bool
	// QuarantineAfter is the number of CONSECUTIVE permanent cold-read
	// failures after which a shard is quarantined (0 means
	// DefaultQuarantineAfter). Retry-exhausted transient faults never
	// count: only errors the storage tier classified permanent advance
	// the streak, and any clean query resets it.
	QuarantineAfter int
	// AutoRestage schedules a background re-stage (Restage) as soon as a
	// shard is quarantined, using the shared pool's tracked-job path.
	// Without it the shard stays quarantined until the operator calls
	// Restage explicitly.
	AutoRestage bool
}

// ColdStorage configures the out-of-core tier: which shards are cold, what
// device backs them, and how much RAM the block cache may use. A cold
// shard's base series live in one shared series file on the device and are
// read through a storage.DiskReader (views over it replace the in-RAM
// views), with leaf-ordered raw blocks disabled for that shard so
// refinement actually reads the cold tier; its tree and SAX summaries stay
// resident. Hot shards keep today's behavior exactly, so one Sharded index
// mixes tiers per shard — the Milvus-style hot/cold placement pattern.
//
// When EVERY shard is cold, the index itself holds no reference to the
// caller's flat collection (global reads resolve through the device cache
// too), so the caller may drop it and the base tier's RAM ceiling becomes
// the cache budget.
//
// Appended series always stay hot: the delta buffer and its merged
// positions live in each shard's own chunked store, which is small by
// construction (merges bound it).
type ColdStorage struct {
	// NewStore returns the byte store backing the tier's series file; nil
	// means a fresh in-memory MemStore (hermetic, simulation-only). Real
	// persistence supplies a FileStore. The caller owns the store's
	// lifetime — close it after the index is closed, not before.
	NewStore func() (storage.Store, error)
	// Profile is the simulated device the store is wrapped in; the zero
	// Profile means storage.Unthrottled. Construction (the staging write
	// and the build's sequential scans) runs at latency scale 0 — a
	// precondition, like the experiments' dataset staging — and the scale
	// is restored to 1 when the index is ready, so query-time accesses pay
	// full device time. Modeled busy-time metrics accumulate throughout.
	Profile storage.Profile
	// CacheBytes is the block-cache budget in bytes (0 means
	// storage.DefaultCacheBytes).
	CacheBytes int64
	// BlockSeries is the cache granularity in consecutive series (0 means
	// storage.DefaultBlockSeries).
	BlockSeries int
	// Cold reports whether shard si is placed cold; nil places every
	// shard cold.
	Cold func(si int) bool
	// Retry overrides the cold readers' transient-fault retry policy (the
	// zero value means storage defaults: 3 retries, capped exponential
	// backoff). Applies to the shared tier and to re-staged shard files.
	Retry storage.RetryPolicy
	// Source, when set, is the hot reader re-staging copies base values
	// from (it must cover the full base collection in global positions).
	// When nil, Restage reads through the index's own base reader — fine
	// on a mixed hot/cold build, but on an all-cold build that is the
	// failing device itself, so callers that want to re-stage around a
	// dead store should keep a hot source and pass it here.
	Source series.Reader
}

func (o Options) normalize() (Options, error) {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Shards > MaxShards {
		return o, fmt.Errorf("shard: %d shards exceeds the maximum %d", o.Shards, MaxShards)
	}
	if o.Policy == nil {
		o.Policy = RoundRobin{}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CopyBase && o.ColdStorage != nil {
		return o, fmt.Errorf("shard: CopyBase and ColdStorage are mutually exclusive")
	}
	return o, nil
}

// Sharded is a partitioned index over N messi shards, answering the full
// MESSI surface — exact 1-NN/k-NN/DTW, approximate search, batches, live
// appends, Flush, persistence — with every answer position in the global
// (collection-order) position space.
type Sharded struct {
	opt       Options
	n         int
	policy    Policy
	seriesLen int
	base      series.Reader // the flat collection, or the cold tier's DiskReader when all shards are cold
	baseLen   int
	eng       *engine.Engine
	shards    []*messi.Index

	// cold is the shared out-of-core tier (nil when every shard is hot);
	// coldShards[si] reports shard si's placement, coldParts[si] the
	// swappable device binding its views resolve through (nil for hot
	// shards), and health[si] its fault accounting.
	cold       *coldTier
	coldShards []bool
	coldParts  []*coldPart
	health     []shardHealth

	// baseMap[si][localPos] is the global position of shard si's build-time
	// series; mappers[si] extends it over appends. Both immutable after
	// construction (append rows are published before they become readable).
	baseMap [][]int32
	mappers []func(int32) int32

	// Live-append routing state. appendMap[si] maps a shard's append-local
	// index to its global position; routeLog row g is {shard, shard-local
	// pos} of global append g — the landed order. cuts is the published
	// copy-on-write per-shard append-count vector: one atomic load yields a
	// consistent global prefix for a whole scatter-gather query.
	mu        sync.Mutex
	appendMap []*series.ChunkedRows[int32]
	routeLog  *series.ChunkedRows[int32]
	cuts      atomic.Pointer[[]int32]
	appended  atomic.Int64

	regOnce sync.Once
	reg     *metrics.Registry
}

// splitBase partitions the base collection by policy, returning one
// position-remapping view per shard and each shard's local→global base
// position map (the same []int32 backs both — the view IS the map). The
// split is a pure function of (collection, policy, n): Decode replays it
// to rebuild views and maps without persisting them.
//
// Nothing is copied: each shard's messi index reads its series straight
// out of the caller's collection through the view, so a sharded index
// holds the base raw data exactly once — the same single-residency
// guarantee an unsharded index gives, and the property the CI memory
// smoke test pins (bytes/series within 1.1x of a flat build). The legacy
// copying split survives behind Options.CopyBase for differential
// testing.
func splitBase(coll *series.Collection, policy Policy, n int) (views []*series.View, baseMap [][]int32) {
	baseMap = make([][]int32, n)
	for i := 0; i < coll.Len(); i++ {
		si := policy.Route(i, coll.At(i), n)
		baseMap[si] = append(baseMap[si], int32(i))
	}
	views = make([]*series.View, n)
	for si := range views {
		views[si] = series.NewView(coll, baseMap[si])
	}
	return views, baseMap
}

// newShell assembles the Sharded state common to Build and Decode: the
// base split (views, or flat copies under Options.CopyBase, or cold
// view-over-DiskReader parts under Options.ColdStorage), the shared
// engine, and empty append-routing structures. The caller fills s.shards
// (one per part) and then calls finish.
func newShell(coll *series.Collection, opt Options) (*Sharded, []series.Reader, error) {
	views, baseMap := splitBase(coll, opt.Policy, opt.Shards)
	parts := make([]series.Reader, opt.Shards)
	for si, v := range views {
		if opt.CopyBase {
			parts[si] = v.Materialize()
		} else {
			parts[si] = v
		}
	}
	s := &Sharded{
		opt:       opt,
		n:         opt.Shards,
		policy:    opt.Policy,
		seriesLen: coll.SeriesLen(),
		base:      coll,
		baseLen:   coll.Len(),
		eng:       engine.New(engine.Options{Workers: opt.Workers, MaxInFlight: opt.MaxInFlight}),
		shards:    make([]*messi.Index, opt.Shards),
		baseMap:   baseMap,
		health:    make([]shardHealth, opt.Shards),
		appendMap: make([]*series.ChunkedRows[int32], opt.Shards),
		routeLog:  series.NewChunkedRows[int32](2, 0),
	}
	for si := range s.appendMap {
		s.appendMap[si] = series.NewChunkedRows[int32](1, 0)
	}
	cuts := make([]int32, opt.Shards)
	s.cuts.Store(&cuts)
	if opt.ColdStorage != nil {
		if err := s.initCold(coll, opt.ColdStorage, parts); err != nil {
			s.eng.Close()
			return nil, nil, err
		}
	}
	return s, parts, nil
}

// coldTier is the shared device state behind every cold shard: one disk,
// one series file holding the whole base collection in global order, one
// block-cached reader the cold views remap into.
type coldTier struct {
	disk   *storage.Disk
	reader *storage.DiskReader
}

// initCold stages the base collection onto the cold device and swaps the
// cold shards' parts from in-RAM views to views over the block-cached
// reader. The staging write and the upcoming build-time reads run at
// latency scale 0 (construction is a precondition, not a measured query);
// finish restores scale 1.
func (s *Sharded) initCold(coll *series.Collection, cs *ColdStorage, parts []series.Reader) error {
	cold := make([]bool, s.n)
	any, all := false, true
	for si := range cold {
		cold[si] = cs.Cold == nil || cs.Cold(si)
		if cold[si] {
			any = true
		} else {
			all = false
		}
	}
	if !any {
		return nil // every shard placed hot: no tier to set up
	}
	store := storage.Store(storage.NewMemStore())
	if cs.NewStore != nil {
		st, err := cs.NewStore()
		if err != nil {
			return fmt.Errorf("shard: cold store: %w", err)
		}
		store = st
	}
	profile := cs.Profile
	if profile == (storage.Profile{}) {
		profile = storage.Unthrottled
	}
	disk := storage.NewDisk(store, profile)
	disk.SetScale(0)
	f, err := storage.WriteCollection(disk, coll)
	if err != nil {
		return fmt.Errorf("shard: staging cold tier: %w", err)
	}
	dr, err := storage.NewDiskReader(f, storage.DiskReaderOptions{
		CacheBytes:  cs.CacheBytes,
		BlockSeries: cs.BlockSeries,
		Retry:       cs.Retry,
	})
	if err != nil {
		return fmt.Errorf("shard: cold tier: %w", err)
	}
	// Each cold shard's view remaps into a coldPart rather than the reader
	// directly, so a re-stage can swap the shard onto a fresh store with
	// one atomic pointer store — no index rebuild, no view rebuild.
	s.coldParts = make([]*coldPart, s.n)
	shared := &coldSrc{reader: dr, disk: disk, local: false}
	for si := range parts {
		if cold[si] {
			cp := newColdPart(coll.Len(), coll.SeriesLen(), s.baseMap[si], shared)
			s.coldParts[si] = cp
			parts[si] = series.NewView(cp, s.baseMap[si])
		}
	}
	if all {
		// Nothing references the caller's flat collection anymore — global
		// position reads resolve through the cache too — so the caller may
		// drop it, and base residency shrinks to the cache budget.
		s.base = dr
	}
	s.cold = &coldTier{disk: disk, reader: dr}
	s.coldShards = cold
	return nil
}

// shardOptions is shard si's messi configuration: identical tuning, one
// shared pool. Cold shards disable leaf-ordered raw blocks — a full hot
// copy of the values would defeat the tier — so their refinement reads
// resolve through the device cache (and get the prefetch-masked path).
func (s *Sharded) shardOptions(si int) messi.Options {
	mo := s.opt.Options
	mo.Engine = s.eng
	if s.isCold(si) {
		mo.DisableLeafRaw = true
	}
	return mo
}

// isCold reports shard si's tier.
func (s *Sharded) isCold(si int) bool { return s.cold != nil && s.coldShards[si] }

// ColdStats reports the cold tier's cache and device counters; the zero
// value when every shard is hot.
type ColdStats struct {
	// ColdShards is the number of cold-placed shards.
	ColdShards int
	// Cache snapshots the shared block cache.
	Cache storage.CacheStats
	// Device snapshots the cold device's I/O accounting.
	Device storage.Metrics
}

// ColdStats snapshots the out-of-core tier's counters.
func (s *Sharded) ColdStats() ColdStats {
	if s.cold == nil {
		return ColdStats{}
	}
	n := 0
	for _, c := range s.coldShards {
		if c {
			n++
		}
	}
	return ColdStats{ColdShards: n, Cache: s.cold.reader.Stats(), Device: s.cold.disk.Metrics()}
}

// ColdDisk exposes the cold tier's device for experiments (latency scaling,
// metric resets between phases); nil when every shard is hot.
func (s *Sharded) ColdDisk() *storage.Disk {
	if s.cold == nil {
		return nil
	}
	return s.cold.disk
}

// finish is called once every shard exists: it builds the per-shard
// position mappers and releases the constructor's engine reference (each
// shard retained its own, so the pool now lives exactly as long as the
// shards do).
func (s *Sharded) finish() {
	s.mappers = make([]func(int32) int32, s.n)
	for si := range s.mappers {
		bm := s.baseMap[si]
		am := s.appendMap[si]
		s.mappers[si] = func(p int32) int32 {
			if int(p) < len(bm) {
				return bm[p]
			}
			return am.At(int(p) - len(bm))[0]
		}
	}
	if s.cold != nil {
		s.cold.disk.SetScale(1) // construction staged at scale 0; queries pay modeled latency
	}
	s.eng.Close()
}

// abort releases everything a failed construction acquired: the shards
// decoded so far and the constructor's engine reference.
func (s *Sharded) abort() {
	for _, sh := range s.shards {
		if sh != nil {
			sh.Close()
		}
	}
	s.eng.Close()
}

// Build partitions coll by the configured policy and builds one MESSI
// index per shard, all attached to a single shared worker pool.
func Build(coll *series.Collection, cfg core.Config, opt Options) (*Sharded, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	s, parts, err := newShell(coll, opt)
	if err != nil {
		return nil, err
	}
	for si := range s.shards {
		s.shards[si], err = messi.Build(parts[si], cfg, s.shardOptions(si))
		if err != nil {
			s.abort()
			return nil, err
		}
	}
	s.finish()
	return s, nil
}

// Close releases every shard's reference to the shared worker pool; the
// pool stops after the last one (waiting for in-flight background merges).
// It is idempotent and safe to call concurrently with appends and queries.
func (s *Sharded) Close() {
	for _, sh := range s.shards {
		sh.Close()
	}
}

// Shards returns the number of partitions.
func (s *Sharded) Shards() int { return s.n }

// Shard exposes partition si for diagnostics and tests.
func (s *Sharded) Shard(si int) *messi.Index { return s.shards[si] }

// PolicyName reports the routing policy.
func (s *Sharded) PolicyName() string { return s.policy.Name() }

// Count returns the number of series the index answers over: the base
// collection plus every published append, across all shards.
func (s *Sharded) Count() int { return s.baseLen + int(s.appended.Load()) }

// At returns the series at a global position — base collection order
// first, then appends in arrival order. Every position a query result
// reports resolves through here.
func (s *Sharded) At(pos int) series.Series {
	if pos < s.baseLen {
		return s.base.At(pos)
	}
	r := s.routeLog.At(pos - s.baseLen)
	return s.shards[r[0]].At(int(r[1]))
}

// EngineStats snapshots the shared pool's counters — one pool serves every
// shard, so this is already the aggregate view.
func (s *Sharded) EngineStats() engine.Stats { return s.eng.Stats() }

// Admit blocks until the shared pool's admission control grants a query
// slot; one slot covers a whole scatter-gather query across all shards.
func (s *Sharded) Admit() (release func()) { return s.eng.Admit() }

// AdmitContext is Admit with cancellation.
func (s *Sharded) AdmitContext(ctx context.Context) (release func(), err error) {
	return s.eng.AdmitContext(ctx)
}

// MaxInFlight returns the admission bound on concurrently admitted
// scatter-gather queries.
// AdmitTenantContext is AdmitContext under a tenant identity; tenant "" is
// exactly AdmitContext.
func (s *Sharded) AdmitTenantContext(ctx context.Context, tenant string) (release func(), err error) {
	return s.eng.AdmitTenantContext(ctx, tenant)
}

// TenantStats snapshots the shared pool's per-tenant accounting.
func (s *Sharded) TenantStats() []engine.TenantStat { return s.eng.TenantStats() }

func (s *Sharded) MaxInFlight() int { return s.eng.MaxInFlight() }

// view captures one consistent cross-shard cut: the per-shard append
// counts published by the most recent append, plus the global series count
// they imply. Every shard of one query is capped at its entry, so the
// query answers over exactly the global prefix [0, observed).
func (s *Sharded) view() (cuts []int32, observed int) {
	c := *s.cuts.Load()
	total := 0
	for _, v := range c {
		total += int(v)
	}
	return c, s.baseLen + total
}

// scatter runs fn for every shard concurrently (each call coordinates its
// shard's search, whose tasks run on the shared pool) and merges the
// per-shard work stats into stats. The logical query is counted once here;
// the per-shard sub-searches register only as active executors, so the
// engine's Queries counter reads in logical QPS at any shard count.
//
// Fault handling: quarantined shards are skipped up front, and a shard
// that fails mid-query with a storage-classified error (a contained
// *storage.BlockError from the cold tier) is absorbed into its health
// record rather than failing the process. If any shard ends uncovered the
// query fails fast with ErrShardsUnavailable — or, under
// Options.AllowPartial, answers from the covered shards and reports the
// gap in stats.UncoveredShards. Non-storage errors are bugs and fail the
// query as-is.
func (s *Sharded) scatter(tenant string, stats *messi.QueryStats, fn func(si int) (*messi.QueryStats, error)) error {
	s.eng.CountQueryTenant(tenant)
	sts := make([]*messi.QueryStats, s.n)
	errs := make([]error, s.n)
	skipped := make([]bool, s.n)
	var wg sync.WaitGroup
	for si := 0; si < s.n; si++ {
		if !s.available(si) {
			skipped[si] = true
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sts[si], errs[si] = fn(si)
		}(si)
	}
	wg.Wait()
	var skippedIDs, failedIDs []int
	var cause error
	for si := 0; si < s.n; si++ {
		switch {
		case skipped[si]:
			skippedIDs = append(skippedIDs, si)
		case errs[si] != nil:
			if !s.noteShardError(si, errs[si]) {
				return errs[si]
			}
			failedIDs = append(failedIDs, si)
			if cause == nil {
				cause = errs[si]
			}
		default:
			s.noteShardSuccess(si)
		}
	}
	if miss := uncovered(skippedIDs, failedIDs); len(miss) > 0 {
		if cause == nil && len(skippedIDs) > 0 {
			cause = s.health[skippedIDs[0]].getErr()
		}
		if !s.opt.AllowPartial {
			return &ErrShardsUnavailable{Shards: miss, Cause: cause}
		}
		stats.UncoveredShards = miss
	}
	for _, st := range sts {
		if st == nil {
			continue
		}
		stats.ProbeLeaves += st.ProbeLeaves
		stats.LeavesInserted += st.LeavesInserted
		stats.LeavesPopped += st.LeavesPopped
		stats.EntriesChecked += st.EntriesChecked
		stats.RawDistances += st.RawDistances
	}
	return nil
}

// shardScope is shard si's slice of one scatter-gather query's scope: the
// layer's own consistent per-shard append cut, with the caller's window
// lower cut and tenant identity carried through. The caller-side AppendCut
// is not forwarded — the cut vector is the only consistent cross-shard
// prefix (per-shard counts are not interchangeable with a global count).
func (s *Sharded) shardScope(scope messi.Scope, cuts []int32, si int) messi.Scope {
	return messi.Scope{AppendCut: int(cuts[si]), LowPos: scope.LowPos, Tenant: scope.Tenant}
}

// Search answers an exact 1-NN query by scatter-gathering over every shard
// with one shared best-so-far: the bound tightens globally as any shard
// improves it, pruning the others mid-flight. The answer is bit-identical
// to a serial scan of the observed global prefix.
func (s *Sharded) Search(q series.Series, workers int) (core.Result, *messi.QueryStats, error) {
	return s.SearchScoped(q, workers, messi.FullScope)
}

// SearchWindow answers an exact 1-NN query over the most recent n landed
// series across all shards: the consistent cut vector captured at call time
// pins the upper edge, and a global lower cut n positions back restricts
// every shard to exactly the global suffix — the per-shard cut machinery
// guarantees the window is a contiguous range of global positions no matter
// how appends were routed.
func (s *Sharded) SearchWindow(q series.Series, n, workers int) (core.Result, *messi.QueryStats, error) {
	return s.SearchWindowTenant(q, n, workers, "")
}

// SearchWindowTenant is SearchWindow under a tenant identity. The lower
// cut derives from the same view capture that pins the scatter's cut
// vector, so the window is exactly the last min(n, observed) global
// positions of one consistent prefix.
func (s *Sharded) SearchWindowTenant(q series.Series, n, workers int, tenant string) (core.Result, *messi.QueryStats, error) {
	if n <= 0 {
		return core.NoResult(), nil, fmt.Errorf("shard: window size %d, want > 0", n)
	}
	if len(q) != s.seriesLen {
		return core.NoResult(), nil, fmt.Errorf("shard: query length %d != %d", len(q), s.seriesLen)
	}
	cuts, observed := s.view()
	scope := messi.Scope{AppendCut: -1, LowPos: int32(max(0, observed-n)), Tenant: tenant}
	return s.searchAt(q, workers, scope, cuts, observed)
}

// SearchScoped is Search under an explicit scope: a window lower cut and a
// tenant identity. The scope's AppendCut is ignored — the sharding layer
// always pins its own consistent cross-shard cut.
func (s *Sharded) SearchScoped(q series.Series, workers int, scope messi.Scope) (core.Result, *messi.QueryStats, error) {
	if len(q) != s.seriesLen {
		return core.NoResult(), nil, fmt.Errorf("shard: query length %d != %d", len(q), s.seriesLen)
	}
	cuts, observed := s.view()
	return s.searchAt(q, workers, scope, cuts, observed)
}

// searchAt runs the 1-NN scatter against an already-captured consistent
// view (cut vector + observed prefix length).
func (s *Sharded) searchAt(q series.Series, workers int, scope messi.Scope, cuts []int32, observed int) (core.Result, *messi.QueryStats, error) {
	stats := &messi.QueryStats{Observed: observed}
	if observed == 0 {
		return core.NoResult(), stats, nil
	}
	best := xsync.NewBest()
	if err := s.scatter(scope.Tenant, stats, func(si int) (*messi.QueryStats, error) {
		return s.shards[si].SearchShared(q, workers, best, s.mappers[si], s.shardScope(scope, cuts, si))
	}); err != nil {
		return core.NoResult(), nil, err
	}
	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// SearchKNN answers an exact k-NN query with one shared k-best set across
// all shards; its k-th-best threshold plays the global BSF role.
func (s *Sharded) SearchKNN(q series.Series, k, workers int) ([]core.Result, *messi.QueryStats, error) {
	return s.SearchKNNScoped(q, k, workers, messi.FullScope)
}

// SearchKNNScoped is SearchKNN under an explicit scope (window lower cut
// and tenant); the scope's AppendCut is ignored in favor of the layer's own
// consistent cut vector.
//
// Tombstone audit for the shared k-best set: a deleted position can never
// re-enter the results through cross-shard deduplication. Every global
// position is owned by exactly one shard (the mappers are disjoint by
// construction — base positions partition via baseMap, appended positions
// via the route log), so the only goroutines that can Offer a position run
// inside its owner's SearchKNNShared, after that shard's tombstone filter
// (qfilter.skip) consulted the delete state captured at query start. KBest
// dedup only drops re-offers of a position already present; it never
// revives one that was filtered, and no other shard can offer it.
// TestDeletedNearestNeverInKNN pins this across shard counts, placements
// and compaction states.
func (s *Sharded) SearchKNNScoped(q series.Series, k, workers int, scope messi.Scope) ([]core.Result, *messi.QueryStats, error) {
	if len(q) != s.seriesLen {
		return nil, nil, fmt.Errorf("shard: query length %d != %d", len(q), s.seriesLen)
	}
	if k <= 0 {
		return nil, &messi.QueryStats{}, nil
	}
	cuts, observed := s.view()
	stats := &messi.QueryStats{Observed: observed}
	if observed == 0 {
		return nil, stats, nil
	}
	kb := xsync.NewKBest(k)
	if err := s.scatter(scope.Tenant, stats, func(si int) (*messi.QueryStats, error) {
		return s.shards[si].SearchKNNShared(q, k, workers, kb, s.mappers[si], s.shardScope(scope, cuts, si))
	}); err != nil {
		return nil, nil, err
	}
	out := make([]core.Result, 0, k)
	for _, e := range kb.Sorted() {
		out = append(out, core.Result{Pos: e.Pos, Dist: e.Dist})
	}
	return out, stats, nil
}

// SearchDTW answers an exact 1-NN DTW query (Sakoe-Chiba half-width
// window) with the shared best-so-far threaded through every shard's
// LB_Keogh cascade.
func (s *Sharded) SearchDTW(q series.Series, window, workers int) (core.Result, *messi.QueryStats, error) {
	return s.SearchDTWScoped(q, window, workers, messi.FullScope)
}

// SearchDTWScoped is SearchDTW under an explicit scope (window lower cut
// and tenant); the scope's AppendCut is ignored in favor of the layer's own
// consistent cut vector.
func (s *Sharded) SearchDTWScoped(q series.Series, window, workers int, scope messi.Scope) (core.Result, *messi.QueryStats, error) {
	if len(q) != s.seriesLen {
		return core.NoResult(), nil, fmt.Errorf("shard: query length %d != %d", len(q), s.seriesLen)
	}
	cuts, observed := s.view()
	stats := &messi.QueryStats{Observed: observed}
	if observed == 0 {
		return core.NoResult(), stats, nil
	}
	best := xsync.NewBest()
	if err := s.scatter(scope.Tenant, stats, func(si int) (*messi.QueryStats, error) {
		return s.shards[si].SearchDTWShared(q, window, workers, best, s.mappers[si], s.shardScope(scope, cuts, si))
	}); err != nil {
		return core.NoResult(), nil, err
	}
	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// SearchApproximate returns the best answer among every shard's
// approximate probe — still microseconds (the probes are sequential leaf
// reads), still an upper bound on the exact answer. Shards are probed
// under one consistent cut, so the reported global position always lies
// inside the prefix this call observed, even mid-append.
func (s *Sharded) SearchApproximate(q series.Series) (core.Result, error) {
	return s.SearchApproximateScoped(q, messi.FullScope)
}

// SearchApproximateScoped is SearchApproximate under an explicit scope
// (window lower cut and tenant); the scope's AppendCut is ignored in favor
// of the layer's own consistent cut vector.
func (s *Sharded) SearchApproximateScoped(q series.Series, scope messi.Scope) (core.Result, error) {
	if len(q) != s.seriesLen {
		return core.NoResult(), fmt.Errorf("shard: query length %d != %d", len(q), s.seriesLen)
	}
	cuts, observed := s.view()
	if observed == 0 {
		return core.NoResult(), nil
	}
	s.eng.CountQueryTenant(scope.Tenant)
	best := core.NoResult()
	var skippedIDs, failedIDs []int
	var cause error
	for si, sh := range s.shards {
		if !s.available(si) {
			skippedIDs = append(skippedIDs, si)
			continue
		}
		r, err := sh.SearchApproximateShared(q, s.mappers[si], s.shardScope(scope, cuts, si))
		if err != nil {
			if !s.noteShardError(si, err) {
				return core.NoResult(), err
			}
			failedIDs = append(failedIDs, si)
			if cause == nil {
				cause = err
			}
			continue
		}
		s.noteShardSuccess(si)
		if r.Pos >= 0 && r.Dist < best.Dist {
			best = r
		}
	}
	if miss := uncovered(skippedIDs, failedIDs); len(miss) > 0 && !s.opt.AllowPartial {
		if cause == nil && len(skippedIDs) > 0 {
			cause = s.health[skippedIDs[0]].getErr()
		}
		return core.NoResult(), &ErrShardsUnavailable{Shards: miss, Cause: cause}
	}
	return best, nil
}

// BatchSearchStats answers many exact 1-NN queries concurrently under the
// shared pool's admission control; one admission slot covers one query's
// whole cross-shard scatter.
func (s *Sharded) BatchSearchStats(qs []series.Series) ([]core.Result, []messi.QueryStats, error) {
	return messi.RunBatch(s.eng, qs, func(q series.Series) (core.Result, *messi.QueryStats, error) {
		return s.Search(q, 0)
	})
}

// BatchSearch is BatchSearchStats without the per-query stats.
func (s *Sharded) BatchSearch(qs []series.Series) ([]core.Result, error) {
	results, _, err := s.BatchSearchStats(qs)
	return results, err
}

// Append routes one series to its shard and returns its global position.
// The series is visible to queries before Append returns; merges into the
// shard's tree happen in the background exactly as for a plain index.
func (s *Sharded) Append(ser series.Series) (int, error) {
	if len(ser) != s.seriesLen {
		return 0, fmt.Errorf("shard: append length %d != %d", len(ser), s.seriesLen)
	}
	s.mu.Lock()
	g := s.appendLocked(ser)
	s.publishLocked(1)
	s.mu.Unlock()
	return g, nil
}

// AppendBatch routes a batch of series, returning the global position of
// the first; the batch occupies consecutive global positions and becomes
// visible atomically (the cut vector publishes once, after the last
// series lands).
func (s *Sharded) AppendBatch(ss []series.Series) (int, error) {
	for i, ser := range ss {
		if len(ser) != s.seriesLen {
			return 0, fmt.Errorf("shard: append batch series %d length %d != %d",
				i, len(ser), s.seriesLen)
		}
	}
	s.mu.Lock()
	start := s.Count()
	for _, ser := range ss {
		s.appendLocked(ser)
	}
	s.publishLocked(len(ss))
	s.mu.Unlock()
	return start, nil
}

// appendLocked lands one pre-validated series: route, record the mapping
// BEFORE the shard publishes (readers acquire the shard's append counter,
// so a position a query can see always has a visible mapping row), then
// append to the shard. Returns the global position. Caller holds s.mu and
// publishes the cut afterwards.
func (s *Sharded) appendLocked(ser series.Series) int {
	g := s.baseLen + s.routeLog.Len()
	si := s.policy.Route(g, ser, s.n)
	local := len(s.baseMap[si]) + s.appendMap[si].Len()
	s.appendMap[si].Append([]int32{int32(g)})
	s.routeLog.Append([]int32{int32(si), int32(local)})
	if _, err := s.shards[si].Append(ser); err != nil {
		// Lengths are validated before routing; a shard of the same config
		// cannot reject the append.
		panic(fmt.Sprintf("shard: shard %d rejected a validated append: %v", si, err))
	}
	return g
}

// publishLocked publishes n freshly landed appends as one atomic cut: a
// copy-on-write bump of the per-shard count vector (derived from the route
// log, whose suffix the caller just wrote), then the global counter.
func (s *Sharded) publishLocked(n int) {
	old := *s.cuts.Load()
	next := make([]int32, len(old))
	copy(next, old)
	lo := s.routeLog.Len() - n
	for g := lo; g < s.routeLog.Len(); g++ {
		next[s.routeLog.At(g)[0]]++
	}
	s.cuts.Store(&next)
	s.appended.Add(int64(n))
}

// AppendWithTTL is Append with an expiry deadline: the series lands and is
// immediately searchable, and a later ExpireBefore(now) with now past the
// deadline tombstones it. The TTL is attached before the cut publishes, so
// no reader can observe the series without its deadline.
func (s *Sharded) AppendWithTTL(ser series.Series, deadline int64) (int, error) {
	if len(ser) != s.seriesLen {
		return 0, fmt.Errorf("shard: append length %d != %d", len(ser), s.seriesLen)
	}
	s.mu.Lock()
	g := s.appendLocked(ser)
	r := s.routeLog.At(g - s.baseLen)
	if err := s.shards[r[0]].SetTTL(int(r[1]), deadline); err != nil {
		s.mu.Unlock()
		// appendLocked just landed this exact local position.
		panic(fmt.Sprintf("shard: shard %d rejected TTL on a landed append: %v", r[0], err))
	}
	s.publishLocked(1)
	s.mu.Unlock()
	return g, nil
}

// locate resolves a global position to its (shard, shard-local position)
// pair. Base positions binary-search the per-shard base maps (each an
// ascending slice of global positions); appended positions read the route
// log row, which was written before the position became visible. Caller
// guarantees 0 <= pos < Count().
func (s *Sharded) locate(pos int) (si, local int) {
	if pos < s.baseLen {
		for si, bm := range s.baseMap {
			j := sort.Search(len(bm), func(i int) bool { return bm[i] >= int32(pos) })
			if j < len(bm) && bm[j] == int32(pos) {
				return si, j
			}
		}
		panic(fmt.Sprintf("shard: base position %d in no shard's base map", pos))
	}
	r := s.routeLog.At(pos - s.baseLen)
	return int(r[0]), int(r[1])
}

// Delete tombstones the series at global position pos on whichever shard
// holds it; every subsequent search on every shard skips it. Reports
// whether this call newly deleted it.
func (s *Sharded) Delete(pos int) (bool, error) {
	n, err := s.DeleteRange(pos, pos+1)
	return n > 0, err
}

// DeleteRange tombstones every series in the global position range
// [lo, hi), returning how many this call newly deleted. The range must lie
// within [0, Count()].
func (s *Sharded) DeleteRange(lo, hi int) (int, error) {
	total := s.Count()
	if lo < 0 || hi < lo || hi > total {
		return 0, fmt.Errorf("shard: delete range [%d, %d) outside [0, %d]", lo, hi, total)
	}
	deleted := 0
	for pos := lo; pos < hi; pos++ {
		si, local := s.locate(pos)
		ok, err := s.shards[si].Delete(local)
		if err != nil {
			return deleted, err
		}
		if ok {
			deleted++
		}
	}
	return deleted, nil
}

// SetTTL sets (or replaces) the expiry deadline on the series at global
// position pos.
func (s *Sharded) SetTTL(pos int, deadline int64) error {
	if pos < 0 || pos >= s.Count() {
		return fmt.Errorf("shard: ttl position %d outside [0, %d)", pos, s.Count())
	}
	si, local := s.locate(pos)
	return s.shards[si].SetTTL(local, deadline)
}

// ExpireBefore tombstones every TTL'd series whose deadline is at or
// before now, across all shards, returning how many it newly deleted.
func (s *Sharded) ExpireBefore(now int64) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.ExpireBefore(now)
	}
	return n
}

// Tombstoned counts deleted (or expired) series across all shards.
func (s *Sharded) Tombstoned() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Tombstoned()
	}
	return n
}

// Live counts landed-and-not-tombstoned series across all shards.
func (s *Sharded) Live() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Live()
	}
	return n
}

// Compact synchronously flushes every shard and rebuilds its tree without
// tombstoned entries, reclaiming their tree residency.
func (s *Sharded) Compact() {
	for _, sh := range s.shards {
		sh.Compact()
	}
}

// Pending sums the shards' unmerged delta sizes.
func (s *Sharded) Pending() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Pending()
	}
	return total
}

// Flush synchronously merges every shard's delta into its tree.
func (s *Sharded) Flush() {
	for _, sh := range s.shards {
		sh.Flush()
	}
}

// IngestStats merges the shards' write-path counters. MergeThreshold is
// the per-shard threshold (each shard schedules its own merges).
func (s *Sharded) IngestStats() messi.IngestStats {
	var out messi.IngestStats
	for _, sh := range s.shards {
		st := sh.IngestStats()
		out.Appended += st.Appended
		out.Pending += st.Pending
		out.Merged += st.Merged
		out.Merges += st.Merges
		out.SnapshotSwaps += st.SnapshotSwaps
		out.MergeThreshold = st.MergeThreshold
		out.Live += st.Live
		out.Tombstoned += st.Tombstoned
	}
	return out
}
