package shard

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
)

// FuzzShardedPersistRoundTrip drives the DSS1 manifest format from both
// ends, the same contract core.DecodeIndex and the messi live format hold:
// arbitrary bytes through Decode must error, never panic — including
// panics deferred to the first query over a garbage manifest that happened
// to decode — and a real sharded index with a split delta buffer must
// round-trip into a byte-identical, answer-identical copy.
func FuzzShardedPersistRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte("DSS1"), uint8(1))
	f.Add([]byte("DSS1\x01\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff"), uint8(3))
	f.Add([]byte("DSS1\x01\x00\x00\x00\x01\x00\x00\x00\x02\x00\x00\x00"+
		"\x40\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"), uint8(2))
	f.Add([]byte("DSL1 pretending to be a live index"), uint8(4))
	f.Add([]byte("DSI1 not really an index"), uint8(1))
	f.Add([]byte{0x80, 0x00, 0xff, 0x7f, 0x41, 0x41, 0x41, 0x41}, uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, shardsRaw uint8) {
		const n, length = 64, 32
		shards := 1 + int(shardsRaw)%4
		base := gen.Generator{Kind: gen.Synthetic, Length: length, Seed: 19}.Collection(n)

		// Arbitrary bytes through the decoder: errors are expected, panics
		// are bugs, and an accidentally valid decode must answer queries.
		if s, err := Decode(data, base, Options{Options: messi.Options{Workers: 1}}); err == nil {
			if _, _, err := s.Search(base.At(0), 0); err != nil {
				t.Errorf("search over decoded index errored: %v", err)
			}
			s.Close()
		}

		// Round-trip a sharded index whose delta buffers hold fuzz-derived
		// appends, part merged, part pending, across several shards.
		s, err := Build(base, core.Config{Segments: 8, LeafCapacity: 16},
			Options{Shards: shards, Policy: HashSeries{},
				Options: messi.Options{Workers: 1, MergeThreshold: 1 << 30}})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		appends := 3 + len(data)%9
		merged := appends / 2
		ser := make(series.Series, length)
		for a := 0; a < appends; a++ {
			for j := range ser {
				b := byte(a*length + j)
				if len(data) > 0 {
					b = data[(a*length+j)%len(data)]
				}
				ser[j] = float32(int8(b))/8 + float32(a)
			}
			if _, err := s.Append(ser); err != nil {
				t.Fatal(err)
			}
			if a == merged-1 {
				s.Flush()
			}
		}
		if s.Pending() == 0 {
			t.Fatal("fuzz setup: delta buffers unexpectedly empty")
		}

		enc := s.Encode()
		s2, err := Decode(enc, base, Options{})
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		defer s2.Close()
		if s2.Count() != s.Count() || s2.Pending() != s.Pending() || s2.Shards() != shards {
			t.Fatalf("round-trip shape: count %d/%d pending %d/%d shards %d/%d",
				s2.Count(), s.Count(), s2.Pending(), s.Pending(), s2.Shards(), shards)
		}
		if enc2 := s2.Encode(); string(enc2) != string(enc) {
			t.Fatal("re-encode differs after round trip")
		}
		for si := 0; si < shards; si++ {
			if err := s2.Shard(si).Tree().CheckInvariants(); err != nil {
				t.Fatalf("decoded shard %d tree invariants: %v", si, err)
			}
		}
		// One query through both copies, checked against a serial scan over
		// the full landed content. Skip inputs producing non-finite values
		// (the exactness claim needs finite arithmetic).
		live := landedCollection(s2)
		q := base.At(0)
		for i := 0; i < live.Len(); i++ {
			for _, v := range live.At(i) {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					return
				}
			}
		}
		a, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s2.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if a != b || b.Pos != want.Pos || b.Dist != want.Dist {
			t.Fatalf("round-trip answers diverge: %+v vs %+v vs serial %+v", a, b, want)
		}
	})
}
