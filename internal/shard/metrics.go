package shard

import (
	"strconv"

	"dsidx/internal/messi"
	"dsidx/internal/metrics"
	"dsidx/internal/storage"
)

// coldFaultTotals sums the fault/retry counters over every live cold
// reader: the shared build-time tier plus any re-staged per-shard readers
// (each re-stage stands up its own). The shared reader appears once even
// though many shards point at it.
func (s *Sharded) coldFaultTotals() (retries, transient, permanent uint64) {
	seen := make(map[*storage.DiskReader]bool)
	add := func(r *storage.DiskReader) {
		if r == nil || seen[r] {
			return
		}
		seen[r] = true
		st := r.Stats()
		retries += st.Retries
		transient += st.TransientFaults
		permanent += st.PermanentFaults
	}
	if s.cold != nil {
		add(s.cold.reader)
	}
	for _, cp := range s.coldParts {
		if cp != nil {
			add(cp.src.Load().reader)
		}
	}
	return retries, transient, permanent
}

// ShardAppends returns the number of live appends routed to shard si so
// far (the published cut), independent of merge progress.
func (s *Sharded) ShardAppends(si int) int {
	return int((*s.cuts.Load())[si])
}

// ShardBaseLen returns the number of build-time series placed in shard si.
func (s *Sharded) ShardBaseLen(si int) int { return len(s.baseMap[si]) }

// Registry returns the sharded index's metrics registry, built on first
// call:
//
//   - the shared engine's families, registered once for the whole pool
//   - every shard's ingest/query/tuning families under a shard="i" label
//   - per-shard routing counters (series placed, appends routed)
//   - the cold tier's cache and device families — always registered, so
//     a scrape sees the full schema (zero-valued) even on an all-hot
//     build
func (s *Sharded) Registry() *metrics.Registry {
	s.regOnce.Do(func() {
		s.reg = metrics.NewRegistry()
		s.eng.RegisterMetrics(s.reg)
		s.reg.MustRegister(metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_shards",
			Help: "Number of shards.",
		}, func() float64 { return float64(s.n) }))
		for si := 0; si < s.n; si++ {
			si := si
			label := metrics.Label{Key: "shard", Value: strconv.Itoa(si)}
			s.shards[si].RegisterMetrics(s.reg, label)
			s.reg.MustRegister(
				metrics.NewGaugeFunc(metrics.Opts{
					Name:   "dsidx_shard_base_series",
					Help:   "Build-time series placed in the shard.",
					Labels: []metrics.Label{label},
				}, func() float64 { return float64(s.ShardBaseLen(si)) }),
				metrics.NewCounterFunc(metrics.Opts{
					Name:   "dsidx_shard_appends_total",
					Help:   "Live appends routed to the shard.",
					Labels: []metrics.Label{label},
				}, func() float64 { return float64(s.ShardAppends(si)) }),
				metrics.NewGaugeFunc(metrics.Opts{
					Name:   "dsidx_shard_state",
					Help:   "Serving state: 0=serving, 1=quarantined, 2=restaging.",
					Labels: []metrics.Label{label},
				}, func() float64 { return float64(s.health[si].state.Load()) }),
				metrics.NewCounterFunc(metrics.Opts{
					Name:   "dsidx_shard_failures_total",
					Help:   "Queries the shard failed with a storage-classified error.",
					Labels: []metrics.Label{label},
				}, func() float64 { return float64(s.health[si].failures.Load()) }),
				metrics.NewCounterFunc(metrics.Opts{
					Name:   "dsidx_shard_quarantines_total",
					Help:   "Serving-to-quarantined transitions.",
					Labels: []metrics.Label{label},
				}, func() float64 { return float64(s.health[si].quarantines.Load()) }),
				metrics.NewCounterFunc(metrics.Opts{
					Name:   "dsidx_shard_restages_total",
					Help:   "Completed re-stages onto a fresh store.",
					Labels: []metrics.Label{label},
				}, func() float64 { return float64(s.health[si].restages.Load()) }),
			)
		}
		cold := func(f func(ColdStats) float64) func() float64 {
			return func() float64 { return f(s.ColdStats()) }
		}
		s.reg.MustRegister(
			metrics.NewGaugeFunc(metrics.Opts{
				Name: "dsidx_cold_shards",
				Help: "Shards placed on the out-of-core tier.",
			}, cold(func(c ColdStats) float64 { return float64(c.ColdShards) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_cache_hits_total",
				Help: "Block-cache hits in the cold tier.",
			}, cold(func(c ColdStats) float64 { return float64(c.Cache.Hits) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_cache_misses_total",
				Help: "Block-cache misses (device reads triggered).",
			}, cold(func(c ColdStats) float64 { return float64(c.Cache.Misses) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_cache_evictions_total",
				Help: "Blocks evicted from the cold tier's cache.",
			}, cold(func(c ColdStats) float64 { return float64(c.Cache.Evictions) })),
			metrics.NewGaugeFunc(metrics.Opts{
				Name: "dsidx_cold_cache_resident_bytes",
				Help: "Decoded bytes currently resident in the block cache.",
			}, cold(func(c ColdStats) float64 { return float64(c.Cache.ResidentBytes) })),
			metrics.NewGaugeFunc(metrics.Opts{
				Name: "dsidx_cold_cache_budget_bytes",
				Help: "Configured block-cache budget.",
			}, cold(func(c ColdStats) float64 { return float64(c.Cache.CacheBytes) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_device_reads_total",
				Help: "Read operations issued to the cold device.",
			}, cold(func(c ColdStats) float64 { return float64(c.Device.ReadOps) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_device_read_bytes_total",
				Help: "Bytes read from the cold device.",
			}, cold(func(c ColdStats) float64 { return float64(c.Device.BytesRead) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_device_seeks_total",
				Help: "Non-sequential reads charged seek latency.",
			}, cold(func(c ColdStats) float64 { return float64(c.Device.Seeks) })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_device_read_busy_seconds_total",
				Help: "Modeled device time spent serving reads.",
			}, cold(func(c ColdStats) float64 { return c.Device.ReadBusy.Seconds() })),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_retries_total",
				Help: "Transient cold-read faults retried by the block loaders.",
			}, func() float64 { r, _, _ := s.coldFaultTotals(); return float64(r) }),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_faults_transient_total",
				Help: "Cold block loads that failed after exhausting transient retries.",
			}, func() float64 { _, t, _ := s.coldFaultTotals(); return float64(t) }),
			metrics.NewCounterFunc(metrics.Opts{
				Name: "dsidx_cold_faults_permanent_total",
				Help: "Cold block loads that failed with a permanent device error.",
			}, func() float64 { _, _, p := s.coldFaultTotals(); return float64(p) }),
		)
	})
	return s.reg
}

// Tuning reports the self-tuning state. The live knob values are shard
// 0's (every shard starts from the same configuration and sees a similar
// mix); Adjustments sums all shards' knob changes.
func (s *Sharded) Tuning() messi.Tuning {
	t := s.shards[0].Tuning()
	t.Adjustments = 0
	for _, sh := range s.shards {
		t.Adjustments += sh.Tuning().Adjustments
	}
	return t
}
