package shard

import (
	"strings"
	"testing"

	"dsidx/internal/gen"
)

func TestRegistryRendersPerShardAndColdFamilies(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 51}
	coll := g.Collection(400)
	s := buildSharded(t, coll, 2, RoundRobin{})
	extra := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 52}.Collection(10)
	for i := 0; i < extra.Len(); i++ {
		if _, err := s.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}

	r := s.Registry()
	if s.Registry() != r {
		t.Fatal("Registry not memoized")
	}
	text := r.Text()
	for _, want := range []string{
		"dsidx_shards 2",
		`dsidx_shard_base_series{shard="0"} 200`,
		`dsidx_shard_base_series{shard="1"} 200`,
		`dsidx_shard_appends_total{shard="0"} 5`,
		`dsidx_shard_appends_total{shard="1"} 5`,
		`dsidx_ingest_appended_total{shard="0"} 5`,
		`dsidx_tuning_autotune{shard="1"} 0`,
		"dsidx_cold_shards 0",
		"dsidx_cold_cache_hits_total 0",
		"dsidx_cold_device_reads_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	if s.ShardBaseLen(0)+s.ShardBaseLen(1) != coll.Len() {
		t.Fatalf("base split %d+%d != %d", s.ShardBaseLen(0), s.ShardBaseLen(1), coll.Len())
	}
	if s.ShardAppends(0)+s.ShardAppends(1) != extra.Len() {
		t.Fatalf("append routing %d+%d != %d", s.ShardAppends(0), s.ShardAppends(1), extra.Len())
	}

	tu := s.Tuning()
	if tu.AutoTune || tu.ProbeLeaves <= 0 || tu.MergeThreshold <= 0 || tu.Adjustments != 0 {
		t.Fatalf("tuning snapshot: %+v", tu)
	}
}
