package shard

// Cross-shard race-stress suite: the acceptance gate for the shared
// best-so-far. 16 concurrent mixed queries (1-NN / k-NN / DTW) scatter over
// 4 shards — every one threading a single xsync.Best or KBest through all
// four shards' traversals — while writer goroutines stream appends through
// the routing layer and background merges fire per shard. Every recorded
// answer is verified post-hoc against a serial internal/ucr scan over
// exactly the global prefix the query observed (QueryStats.Observed), the
// cross-shard analogue of the messi ingest stress test: the consistent-cut
// vector guarantees each query saw a true prefix of the landed order even
// though its pieces live on four different shards.

import (
	"sync"
	"testing"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
	"dsidx/internal/xsync"
)

const (
	stressShards  = 4
	stressReaders = 16
	stressWriters = 3
	stressKNNK    = 5
	stressWindow  = 4
	stressBase    = 900
	stressAppends = 1100
)

// stressRecord is one answer a reader observed mid-stream.
type stressRecord struct {
	kind     int // 0 = 1-NN, 1 = k-NN, 2 = DTW
	qi       int
	observed int
	nn       ucr.Result
	knn      []ucr.Result
}

func TestShardedIngestRaceStress(t *testing.T) {
	queriesPerReader := 8
	if testing.Short() {
		queriesPerReader = 3
	}
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 808}
	base := g.Collection(stressBase)
	queries := g.PerturbedQueries(base, 48, 0.05)
	pool := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 809}.Collection(stressAppends)
	s, err := Build(base, core.Config{LeafCapacity: 64},
		Options{Shards: stressShards, Options: messi.Options{MergeThreshold: 64}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var appendCursor xsync.Counter
	var wg sync.WaitGroup

	// Writers: claim pool series with Fetch&Inc and append them in small
	// paced bursts (a mix of Append and AppendBatch) so the routing layer,
	// the cut vector and per-shard merges all churn under the readers.
	for w := 0; w < stressWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]series.Series, 0, 16)
			for {
				batch = batch[:0]
				for len(batch) < 16 {
					i := int(appendCursor.Next())
					if i >= pool.Len() {
						break
					}
					batch = append(batch, pool.At(i))
				}
				if len(batch) == 0 {
					return
				}
				var err error
				if w == 0 {
					for _, ser := range batch {
						if _, err = s.Append(ser); err != nil {
							break
						}
					}
				} else {
					_, err = s.AppendBatch(batch)
				}
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}

	// Readers: 16 concurrent mixed queries, every one sharing its BSF
	// across all 4 shards, recording what each call observed.
	records := make([][]stressRecord, stressReaders)
	for r := 0; r < stressReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			recs := make([]stressRecord, 0, queriesPerReader)
			for n := 0; n < queriesPerReader; n++ {
				qi := (r*queriesPerReader + n) % queries.Len()
				q := queries.At(qi)
				switch kind := qi % 3; kind {
				case 0:
					got, st, err := s.Search(q, 0)
					if err != nil {
						t.Error(err)
						return
					}
					recs = append(recs, stressRecord{kind: 0, qi: qi, observed: st.Observed, nn: got})
				case 1:
					got, st, err := s.SearchKNN(q, stressKNNK, 0)
					if err != nil {
						t.Error(err)
						return
					}
					recs = append(recs, stressRecord{kind: 1, qi: qi, observed: st.Observed, knn: got})
				case 2:
					got, st, err := s.SearchDTW(q, stressWindow, 0)
					if err != nil {
						t.Error(err)
						return
					}
					recs = append(recs, stressRecord{kind: 2, qi: qi, observed: st.Observed, nn: got})
				}
			}
			records[r] = recs
		}(r)
	}
	wg.Wait()

	if s.Count() != stressBase+stressAppends {
		t.Fatalf("count %d, want %d", s.Count(), stressBase+stressAppends)
	}
	if st := s.IngestStats(); st.Merges == 0 {
		t.Error("no background merge ran on any shard — lower the threshold or raise the append count")
	}

	// Post-hoc verification: the routing layer's global position order is
	// the landed order; every recorded answer must equal a serial scan over
	// the global prefix it observed, bit for bit.
	landed := landedCollection(s)
	verified := 0
	for r := range records {
		for _, rec := range records[r] {
			if rec.observed < stressBase || rec.observed > landed.Len() {
				t.Fatalf("record observed %d outside [%d, %d]", rec.observed, stressBase, landed.Len())
			}
			prefix := landed.Slice(0, rec.observed)
			q := queries.At(rec.qi)
			switch rec.kind {
			case 0:
				want := ucr.Scan(prefix, q)
				if rec.nn.Pos != want.Pos || rec.nn.Dist != want.Dist {
					t.Errorf("query %d over %d series: (#%d, %v), serial scan says (#%d, %v)",
						rec.qi, rec.observed, rec.nn.Pos, rec.nn.Dist, want.Pos, want.Dist)
				}
			case 1:
				want := ucr.ScanKNN(prefix, q, stressKNNK)
				if len(rec.knn) != len(want) {
					t.Errorf("query %d over %d series: %d results, want %d",
						rec.qi, rec.observed, len(rec.knn), len(want))
					continue
				}
				for k := range want {
					if rec.knn[k].Pos != want[k].Pos || rec.knn[k].Dist != want[k].Dist {
						t.Errorf("query %d over %d series rank %d: (#%d, %v) != (#%d, %v)",
							rec.qi, rec.observed, k, rec.knn[k].Pos, rec.knn[k].Dist, want[k].Pos, want[k].Dist)
					}
				}
			case 2:
				want := ucr.ScanDTW(prefix, q, stressWindow)
				if rec.nn.Pos != want.Pos || rec.nn.Dist != want.Dist {
					t.Errorf("DTW query %d over %d series: (#%d, %v), serial scan says (#%d, %v)",
						rec.qi, rec.observed, rec.nn.Pos, rec.nn.Dist, want.Pos, want.Dist)
				}
			}
			verified++
		}
	}
	if verified != stressReaders*queriesPerReader {
		t.Fatalf("verified %d records, want %d", verified, stressReaders*queriesPerReader)
	}

	// Settle: flush every shard, re-check exactness and tree invariants.
	s.Flush()
	if p := s.Pending(); p != 0 {
		t.Fatalf("pending %d after final Flush", p)
	}
	for si := 0; si < s.Shards(); si++ {
		if err := s.Shard(si).Tree().CheckInvariants(); err != nil {
			t.Fatalf("shard %d tree invariants after stress: %v", si, err)
		}
	}
	for qi := 0; qi < 6; qi++ {
		q := queries.At(qi)
		got, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(landed, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("settled query %d: (#%d, %v) != serial (#%d, %v)",
				qi, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

func TestShardedCloseDuringMergesAndQueries(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 818}
	base := g.Collection(600)
	queries := g.PerturbedQueries(base, 6, 0.05)
	pool := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 819}.Collection(800)
	s, err := Build(base, core.Config{LeafCapacity: 64},
		Options{Shards: stressShards, Options: messi.Options{MergeThreshold: 48}})
	if err != nil {
		t.Fatal(err)
	}

	ss := make([]series.Series, 400)
	for i := range ss {
		ss[i] = pool.At(i)
	}
	if _, err := s.AppendBatch(ss); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 400; i < 600; i++ {
			if _, err := s.Append(pool.At(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < queries.Len(); i++ {
			if _, _, err := s.Search(queries.At(i), 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	s.Close() // idempotent on top of the concurrent pair

	// After Close: appends still land, Flush merges inline, answers stay
	// exact over the shared-pool-less (serial) execution path.
	if _, err := s.Append(pool.At(600)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if p := s.Pending(); p != 0 {
		t.Fatalf("pending %d after post-Close Flush", p)
	}
	live := landedCollection(s)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("post-close query %d: (#%d, %v) != serial (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}
