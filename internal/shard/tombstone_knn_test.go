package shard

// Regression suite for the tombstone/k-NN interaction audited on
// SearchKNNScoped: deleting a query's nearest neighbors must remove them
// from every k-NN answer — never letting one re-enter through the shared
// cross-shard k-best set — at every shard count, hot and cold placements,
// and in every compaction state (tombstone-filtered, flushed, compacted).

import (
	"fmt"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/ucr"
)

func TestDeletedNearestNeverInKNN(t *testing.T) {
	const k = 8
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 53}
	coll := g.Collection(500)
	extra := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 54}.Collection(60)
	queries := g.PerturbedQueries(coll, 6, 0.05)

	placements := map[string]func(int) bool{
		"hot":  nil,
		"cold": func(si int) bool { return si%2 == 0 },
	}
	for name, cold := range placements {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				opt := Options{Shards: shards,
					Options: messi.Options{MergeThreshold: 1 << 30}}
				if cold != nil {
					opt.ColdStorage = coldOptions(cold)
				}
				s, err := Build(coll, testConfig(), opt)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				// Appends put positions behind the delta scan too, so the
				// delete filter is exercised on both the tree path and the
				// append-store path.
				for i := 0; i < extra.Len(); i++ {
					if _, err := s.Append(extra.At(i)); err != nil {
						t.Fatal(err)
					}
				}
				mirror := landedCollection(s)

				// Delete every query's true top half of its k-NN set — the
				// positions a buggy filter would most likely resurface.
				dead := map[int]bool{}
				for qi := 0; qi < queries.Len(); qi++ {
					for _, r := range ucr.ScanKNN(mirror, queries.At(qi), k/2) {
						if dead[int(r.Pos)] {
							continue
						}
						newly, err := s.Delete(int(r.Pos))
						if err != nil {
							t.Fatal(err)
						}
						if !newly {
							t.Fatalf("position %d reported already deleted", r.Pos)
						}
						dead[int(r.Pos)] = true
					}
				}

				check := func(state string) {
					t.Helper()
					for qi := 0; qi < queries.Len(); qi++ {
						q := queries.At(qi)
						got, _, err := s.SearchKNN(q, k, 0)
						if err != nil {
							t.Fatal(err)
						}
						for r, res := range got {
							if dead[int(res.Pos)] {
								t.Fatalf("%s: query %d rank %d returned deleted position %d", state, qi, r, res.Pos)
							}
						}
						want := ucr.ScanLiveKNN(mirror, q, k, 0, func(p int) bool { return dead[p] })
						if len(got) != len(want) {
							t.Fatalf("%s: query %d: %d results, want %d", state, qi, len(got), len(want))
						}
						for r := range want {
							if got[r].Pos != want[r].Pos || got[r].Dist != want[r].Dist {
								t.Fatalf("%s: query %d rank %d: got (#%d, %v), serial live scan says (#%d, %v)",
									state, qi, r, got[r].Pos, got[r].Dist, want[r].Pos, want[r].Dist)
							}
						}
					}
				}
				check("pre-flush")
				s.Flush()
				check("post-flush")
				s.Compact()
				check("post-compact")
				if s.Tombstoned() != len(dead) {
					t.Fatalf("tombstoned %d, want %d", s.Tombstoned(), len(dead))
				}
				if s.Live() != mirror.Len()-len(dead) {
					t.Fatalf("live %d, want %d", s.Live(), mirror.Len()-len(dead))
				}
			})
		}
	}
}

// TestDeleteMidKNNStableUnderCompact drives the mid-query scenario the
// audit reasons about serially: a query that began before a delete keeps
// the delete state it captured, and a query that begins after never sees
// the position again, regardless of concurrent-looking compaction between
// the two. (The concurrent version lives in the -race stress suites.)
func TestDeleteMidKNNStableUnderCompact(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 59}
	coll := g.Collection(300)
	s := buildSharded(t, coll, 3, RoundRobin{})
	q := g.PerturbedQueries(coll, 1, 0.02).At(0)

	before, _, err := s.SearchKNN(q, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := int(before[0].Pos)
	if _, err := s.Delete(victim); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		after, _, err := s.SearchKNN(q, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		for r, res := range after {
			if int(res.Pos) == victim {
				t.Fatalf("pass %d rank %d: deleted nearest %d re-entered the k-NN set", pass, r, victim)
			}
		}
		want := ucr.ScanLiveKNN(coll, q, 5, 0, func(p int) bool { return p == victim })
		for r := range want {
			if after[r].Pos != want[r].Pos || after[r].Dist != want[r].Dist {
				t.Fatalf("pass %d rank %d: got (#%d, %v), serial live scan says (#%d, %v)",
					pass, r, after[r].Pos, after[r].Dist, want[r].Pos, want[r].Dist)
			}
		}
		s.Compact()
	}
}
