// Shard-level fault tolerance: per-shard health tracking, quarantine of
// cold shards whose device keeps failing, partial-results queries over the
// shards that remain, and background re-staging that rewrites a quarantined
// shard onto a fresh store and returns it to serving.
//
// The failure model layers on the storage tier's: a cold read that exhausts
// its retries surfaces as a typed *storage.BlockError panic, the engine
// contains it at the task boundary, and the messi coordinator converts it
// into a per-shard query error. This file is where those per-shard errors
// become policy — fail fast with the missing-shard set, or answer from the
// shards still standing — instead of process death.
package shard

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"dsidx/internal/series"
	"dsidx/internal/storage"
)

// ShardState is a shard's serving condition.
type ShardState int32

const (
	// Serving is the healthy state: the shard participates in every query.
	Serving ShardState = iota
	// Quarantined marks a cold shard whose device returned K consecutive
	// permanent read failures. Queries skip it: they fail fast with
	// ErrShardsUnavailable, or — under Options.AllowPartial — answer from
	// the remaining shards and report it uncovered.
	Quarantined
	// Restaging marks a shard being rewritten onto a fresh store. It is
	// still skipped by queries; Serving resumes when the rewrite lands.
	Restaging
)

// String names the state for logs and metrics.
func (st ShardState) String() string {
	switch st {
	case Serving:
		return "serving"
	case Quarantined:
		return "quarantined"
	case Restaging:
		return "restaging"
	default:
		return fmt.Sprintf("ShardState(%d)", int32(st))
	}
}

// DefaultQuarantineAfter is the consecutive-permanent-failure threshold at
// which a cold shard is quarantined when Options.QuarantineAfter is zero.
const DefaultQuarantineAfter = 3

// ErrShardsUnavailable is the typed failure a query returns when one or
// more shards cannot be covered (quarantined, or failed mid-query) and the
// index is not configured for partial results. Callers distinguish it from
// bugs with errors.As; Shards lists every uncovered shard.
type ErrShardsUnavailable struct {
	// Shards is the ascending list of shard ids the query could not cover.
	Shards []int
	// Cause is the storage error behind the first in-query failure; nil
	// when every listed shard was already quarantined before the query.
	Cause error
}

func (e *ErrShardsUnavailable) Error() string {
	return fmt.Sprintf("shard: %d shard(s) unavailable %v: %v", len(e.Shards), e.Shards, e.Cause)
}

// Unwrap exposes the storage cause so errors.Is/As reach the device error.
func (e *ErrShardsUnavailable) Unwrap() error { return e.Cause }

// shardHealth is one shard's fault accounting. State transitions are
// Serving → Quarantined (K consecutive permanent failures, CAS so exactly
// one query performs it) → Restaging → Serving.
type shardHealth struct {
	state      atomic.Int32 // ShardState
	consecPerm atomic.Int32 // consecutive permanent failures; reset on success

	failures    atomic.Uint64 // storage-classified query failures
	permFaults  atomic.Uint64 // the permanent subset
	quarantines atomic.Uint64
	restages    atomic.Uint64

	mu      sync.Mutex
	lastErr error
}

func (h *shardHealth) setErr(err error) {
	h.mu.Lock()
	h.lastErr = err
	h.mu.Unlock()
}

func (h *shardHealth) getErr() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}

// ShardHealth is one shard's externally visible health snapshot.
type ShardHealth struct {
	// State is the serving condition.
	State ShardState
	// Cold reports the shard's tier.
	Cold bool
	// Failures counts queries this shard failed with a storage-classified
	// error; PermanentFailures is the permanent subset.
	Failures          uint64
	PermanentFailures uint64
	// Quarantines and Restages count state transitions over the index's
	// lifetime (a shard may cycle more than once).
	Quarantines uint64
	Restages    uint64
	// LastError describes the most recent storage failure ("" when none).
	LastError string
}

// Health is the sharded index's liveness snapshot: aggregate query/merge
// outcomes plus per-shard serving states.
type Health struct {
	// Searches and FailedSearches aggregate the shards' query outcomes;
	// a failed scatter-gather query counts once per shard that failed it.
	Searches       uint64
	FailedSearches uint64
	// MergeAborts counts background merges abandoned after a contained
	// task panic, summed across shards.
	MergeAborts uint64
	// TaskPanics and BgPanics are the shared pool's containment counters.
	TaskPanics uint64
	BgPanics   uint64
	// Live and Tombstoned partition the landed series across shards into
	// searchable and deleted (or TTL-expired).
	Live       int
	Tombstoned int
	// Shards holds one entry per shard; Quarantined lists the ids not
	// currently Serving, ascending.
	Shards      []ShardHealth
	Quarantined []int
}

// Health snapshots the index's serving condition. It is safe to call
// concurrently with queries, appends and re-stages.
func (s *Sharded) Health() Health {
	out := Health{Shards: make([]ShardHealth, s.n)}
	for si, sh := range s.shards {
		mh := sh.Health()
		out.Searches += mh.Searches
		out.FailedSearches += mh.FailedSearches
		out.MergeAborts += mh.MergeAborts
		out.Live += mh.Live
		out.Tombstoned += mh.Tombstoned
		h := &s.health[si]
		hs := ShardHealth{
			State:             ShardState(h.state.Load()),
			Cold:              s.isCold(si),
			Failures:          h.failures.Load(),
			PermanentFailures: h.permFaults.Load(),
			Quarantines:       h.quarantines.Load(),
			Restages:          h.restages.Load(),
		}
		if err := h.getErr(); err != nil {
			hs.LastError = err.Error()
		}
		out.Shards[si] = hs
		if hs.State != Serving {
			out.Quarantined = append(out.Quarantined, si)
		}
	}
	es := s.eng.Stats()
	out.TaskPanics = es.TaskPanics
	out.BgPanics = es.BgPanics
	return out
}

// ShardState reports shard si's serving condition.
func (s *Sharded) ShardState(si int) ShardState {
	return ShardState(s.health[si].state.Load())
}

// available reports whether shard si participates in queries right now.
func (s *Sharded) available(si int) bool {
	return s.health[si].state.Load() == int32(Serving)
}

// noteShardError classifies a per-shard query error. Storage-classified
// failures (those carrying a *storage.BlockError from the cold tier) are
// absorbed into the shard's health — the query treats the shard as
// uncovered — and permanent ones advance the quarantine counter. Anything
// else (a bug-level panic, a validation error) is not absorbable: the
// caller must fail the whole query with it.
func (s *Sharded) noteShardError(si int, err error) (absorbed bool) {
	var be *storage.BlockError
	if !errors.As(err, &be) {
		return false
	}
	h := &s.health[si]
	h.failures.Add(1)
	h.setErr(err)
	if be.Class != storage.FaultPermanent {
		return true
	}
	h.permFaults.Add(1)
	if int(h.consecPerm.Add(1)) >= s.quarantineAfter() &&
		h.state.CompareAndSwap(int32(Serving), int32(Quarantined)) {
		h.quarantines.Add(1)
		s.onQuarantine(si)
	}
	return true
}

// noteShardSuccess resets the consecutive-failure streak after a shard
// completes a query cleanly.
func (s *Sharded) noteShardSuccess(si int) {
	s.health[si].consecPerm.Store(0)
}

func (s *Sharded) quarantineAfter() int {
	if s.opt.QuarantineAfter > 0 {
		return s.opt.QuarantineAfter
	}
	return DefaultQuarantineAfter
}

// onQuarantine runs once per Serving→Quarantined transition. Under
// Options.AutoRestage it schedules the rewrite as a tracked background job
// on the shared pool (contained like any other background work); otherwise
// the shard stays quarantined until the operator calls Restage.
func (s *Sharded) onQuarantine(si int) {
	if !s.opt.AutoRestage {
		return
	}
	s.eng.Go(func() { _ = s.Restage(si) })
}

// coldSrc is the swappable device binding behind one cold shard: the
// reader its views resolve through, the disk that models its latency, and
// whether the backing file is in shard-local order (a re-staged per-shard
// file) or global order (the shared build-time tier).
type coldSrc struct {
	reader *storage.DiskReader
	disk   *storage.Disk
	local  bool
}

// coldPart is the indirection a cold shard's view remaps into. At accepts
// GLOBAL base positions (the shard's view translates local→global through
// baseMap first) and resolves them against the current source — initially
// the shared global-order reader, after a re-stage the shard's own
// local-order file, found by binary search over the shard's ascending
// position set. The source swap is a single atomic pointer store, so a
// re-stage never rebuilds the shard's messi index or its prefetch wiring:
// in-flight queries keep reading the old (possibly dead, but contained)
// source and new ones see the fresh store.
type coldPart struct {
	baseLen   int
	seriesLen int
	positions []int32 // the shard's global base positions, ascending
	src       atomic.Pointer[coldSrc]
}

var _ series.Reader = (*coldPart)(nil)
var _ series.Prefetcher = (*coldPart)(nil)

func newColdPart(baseLen, seriesLen int, positions []int32, src *coldSrc) *coldPart {
	p := &coldPart{baseLen: baseLen, seriesLen: seriesLen, positions: positions}
	p.src.Store(src)
	return p
}

// Len spans the whole global base position space so the shard's remapping
// view validates; only the shard's own positions are ever requested.
func (p *coldPart) Len() int       { return p.baseLen }
func (p *coldPart) SeriesLen() int { return p.seriesLen }

// resolve translates a global base position into the current source's
// position space.
func (p *coldPart) resolve(src *coldSrc, g int32) int {
	if !src.local {
		return int(g)
	}
	i, ok := slices.BinarySearch(p.positions, g)
	if !ok {
		panic(fmt.Sprintf("shard: position %d not in re-staged shard", g))
	}
	return i
}

func (p *coldPart) At(g int) series.Series {
	src := p.src.Load()
	return src.reader.At(p.resolve(src, int32(g)))
}

// Prefetch implements series.Prefetcher over global positions, so the
// messi index's I/O-masking path keeps working across source swaps.
func (p *coldPart) Prefetch(pos []int32) {
	src := p.src.Load()
	if !src.local {
		src.reader.Prefetch(pos)
		return
	}
	local := make([]int32, len(pos))
	for i, g := range pos {
		local[i] = int32(p.resolve(src, g))
	}
	src.reader.Prefetch(local)
}

// Restage rewrites cold shard si onto a fresh store and returns it to
// serving: materialize the shard's base series from the re-stage source
// (ColdStorage.Source, or the index's base reader when unset), write them
// as a shard-local series file via storage.WriteCollection, stand up a new
// block-cached reader, and atomically swap the shard's views onto it. The
// old store is left to its owner; the shard's messi tree and SAX summaries
// were never lost, so no index rebuild happens.
//
// Restage is safe concurrently with queries and appends. It returns an
// error — never panics — when the shard is hot, a re-stage is already in
// flight, or the source itself fails mid-copy (the shard then returns to
// Quarantined).
func (s *Sharded) Restage(si int) (err error) {
	if si < 0 || si >= s.n {
		return fmt.Errorf("shard: restage: no shard %d", si)
	}
	if !s.isCold(si) {
		return fmt.Errorf("shard: restage: shard %d is hot", si)
	}
	h := &s.health[si]
	// Claim the transition from whichever stable state the shard is in.
	if !h.state.CompareAndSwap(int32(Quarantined), int32(Restaging)) &&
		!h.state.CompareAndSwap(int32(Serving), int32(Restaging)) {
		return fmt.Errorf("shard: restage: shard %d re-stage already in flight", si)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: restage shard %d: %v", si, r)
		}
		if err != nil {
			h.setErr(err)
			h.state.Store(int32(Quarantined))
		}
	}()

	src := s.restageSource()
	local := series.NewView(src, s.baseMap[si]).Materialize()

	cs := s.opt.ColdStorage
	store := storage.Store(storage.NewMemStore())
	if cs.NewStore != nil {
		st, err := cs.NewStore()
		if err != nil {
			return fmt.Errorf("shard: restage shard %d: store: %w", si, err)
		}
		store = st
	}
	profile := cs.Profile
	if profile == (storage.Profile{}) {
		profile = storage.Unthrottled
	}
	disk := storage.NewDisk(store, profile)
	disk.SetScale(0) // staging is construction, not a measured query
	f, werr := storage.WriteCollection(disk, local)
	if werr != nil {
		return fmt.Errorf("shard: restage shard %d: staging: %w", si, werr)
	}
	dr, rerr := storage.NewDiskReader(f, storage.DiskReaderOptions{
		CacheBytes:  cs.CacheBytes,
		BlockSeries: cs.BlockSeries,
		Retry:       cs.Retry,
	})
	if rerr != nil {
		return fmt.Errorf("shard: restage shard %d: reader: %w", si, rerr)
	}
	disk.SetScale(1)

	s.coldParts[si].src.Store(&coldSrc{reader: dr, disk: disk, local: true})
	h.restages.Add(1)
	h.consecPerm.Store(0)
	h.setErr(nil)
	h.state.Store(int32(Serving))
	return nil
}

// restageSource is the reader a re-stage copies base values from: the
// caller-supplied hot source when configured, else the index's base reader
// (the caller's collection on a mixed hot/cold build; on an all-cold build
// that is the shared device reader, which only works if the device has
// recovered — supply ColdStorage.Source to re-stage around a dead device).
func (s *Sharded) restageSource() series.Reader {
	if cs := s.opt.ColdStorage; cs != nil && cs.Source != nil {
		return cs.Source
	}
	return s.base
}

// uncovered builds the sorted uncovered-shard list for a query: shards
// skipped because they were not Serving, plus shards that failed with an
// absorbable storage error mid-query.
func uncovered(skipped []int, failed []int) []int {
	out := append(append([]int(nil), skipped...), failed...)
	sort.Ints(out)
	return out
}
