package shard

// Sharded persistence ("DSS1" manifest format): an envelope around the
// per-shard DSI1/DSL1 blobs the single-index persistence already writes,
// plus the routing metadata that cannot be re-derived — the shard each
// append landed on, in global arrival order. The build-time split is NOT
// persisted: it is a pure function of (collection, policy, shards), so
// Decode replays the policy over the supplied base collection instead —
// rebuilding the same zero-copy position-remapping views a fresh Build
// would use, so a loaded sharded index holds the base values once, too.
// The format carries no trace of the backing shape: files written by
// copy-split builds and view-split builds are byte-identical.
//
//	magic "DSS1", u32 version=1
//	u32 policy id, u32 shard count N (1 ≤ N ≤ MaxShards)
//	u64 base collection length, u64 appended count A
//	A × u8 shard id of each append, in global arrival order
//	N × { u64 blobLen, blob } per-shard index (DSI1 or DSL1)
//
// A file that does not start with the DSS1 magic is decoded as a plain
// single-index file and served as a 1-shard instance, so every pre-sharding
// index file keeps loading unchanged.

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"dsidx/internal/messi"
	"dsidx/internal/series"
)

const (
	manifestMagic   = "DSS1"
	manifestVersion = 1
	manifestHeader  = 4 + 4 + 4 + 4 + 8 + 8
)

// Encode serializes the sharded index: the manifest, the append route log,
// and every shard's own encoding (tree, summaries, append store). The base
// collection is not included and must be supplied again to Decode. Encode
// briefly holds the route lock, so the cut is a consistent global prefix;
// concurrent appends land after the save.
func (s *Sharded) Encode() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.routeLog.Len()
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	_ = binary.Write(&buf, binary.LittleEndian, uint32(manifestVersion))
	_ = binary.Write(&buf, binary.LittleEndian, s.policy.ID())
	_ = binary.Write(&buf, binary.LittleEndian, uint32(s.n))
	_ = binary.Write(&buf, binary.LittleEndian, uint64(s.baseLen))
	_ = binary.Write(&buf, binary.LittleEndian, uint64(a))
	for g := 0; g < a; g++ {
		buf.WriteByte(byte(s.routeLog.At(g)[0]))
	}
	for _, sh := range s.shards {
		blob := sh.Encode()
		_ = binary.Write(&buf, binary.LittleEndian, uint64(len(blob)))
		buf.Write(blob)
	}
	return buf.Bytes()
}

// Decode reconstructs a sharded index from Encode output over the same
// base collection it was built from. Non-DSS1 data is treated as a plain
// single-index file and loaded as a 1-shard instance. Corrupt or truncated
// input returns an error, never panics. opt.Shards and opt.Policy, when
// set, must match the file (the file defines the topology).
func Decode(data []byte, coll *series.Collection, opt Options) (*Sharded, error) {
	wantShards, wantPolicy := opt.Shards, opt.Policy
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(data, []byte(manifestMagic)) {
		return decodeLegacy(data, coll, opt, wantShards, wantPolicy)
	}
	if len(data) < manifestHeader {
		return nil, fmt.Errorf("shard: truncated DSS1 header (%d bytes)", len(data))
	}
	version := binary.LittleEndian.Uint32(data[4:])
	if version != manifestVersion {
		return nil, fmt.Errorf("shard: unsupported DSS1 version %d", version)
	}
	policy, err := policyByID(binary.LittleEndian.Uint32(data[8:]))
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(data[12:]))
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: manifest shard count %d outside [1, %d]", n, MaxShards)
	}
	baseLen := binary.LittleEndian.Uint64(data[16:])
	if baseLen != uint64(coll.Len()) {
		return nil, fmt.Errorf("shard: manifest is for a %d-series base collection, got %d",
			baseLen, coll.Len())
	}
	a64 := binary.LittleEndian.Uint64(data[24:])
	rest := data[manifestHeader:]
	if a64 > uint64(len(rest)) {
		return nil, fmt.Errorf("shard: manifest claims %d appends, only %d bytes remain", a64, len(rest))
	}
	a := int(a64)
	routes := rest[:a]
	rest = rest[a:]
	for g, r := range routes {
		if int(r) >= n {
			return nil, fmt.Errorf("shard: append %d routed to shard %d of %d", g, r, n)
		}
	}

	// The file defines the topology; explicitly conflicting options are a
	// caller bug worth surfacing, not silently overriding.
	if wantShards > 0 && wantShards != n {
		return nil, fmt.Errorf("shard: options ask for %d shards, file has %d", wantShards, n)
	}
	if wantPolicy != nil && wantPolicy.ID() != policy.ID() {
		return nil, fmt.Errorf("shard: options ask for policy %s, file has %s",
			wantPolicy.Name(), policy.Name())
	}
	opt.Shards, opt.Policy = n, policy

	s, parts, err := newShell(coll, opt)
	if err != nil {
		return nil, err
	}
	routed := make([]int, n)
	for _, r := range routes {
		routed[r]++
	}
	for si := range s.shards {
		if len(rest) < 8 {
			s.abort()
			return nil, fmt.Errorf("shard: truncated blob length for shard %d", si)
		}
		blobLen := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		if blobLen > uint64(len(rest)) {
			s.abort()
			return nil, fmt.Errorf("shard: shard %d blob claims %d bytes, %d remain", si, blobLen, len(rest))
		}
		blob := rest[:blobLen]
		rest = rest[blobLen:]
		sh, err := messi.Decode(blob, parts[si], s.shardOptions(si))
		if err != nil {
			s.abort()
			return nil, fmt.Errorf("shard: decoding shard %d: %w", si, err)
		}
		s.shards[si] = sh
		if want := parts[si].Len() + routed[si]; sh.Count() != want {
			s.abort()
			return nil, fmt.Errorf("shard: shard %d holds %d series, route log implies %d",
				si, sh.Count(), want)
		}
	}
	if len(rest) != 0 {
		s.abort()
		return nil, fmt.Errorf("shard: %d trailing bytes after the last shard blob", len(rest))
	}
	s.replayRoutes(routes)
	s.finish()
	return s, nil
}

// decodeLegacy serves a pre-sharding single-index file as a 1-shard
// instance: identity position maps, every restored append routed to shard
// 0. Behavior, counts and answers are exactly those of the plain index.
// The instance re-encodes (and so behaves from then on) as round-robin,
// which is why an explicitly different policy is rejected here too — the
// same option must not be silently ignored on the first open and a hard
// mismatch error on the next.
func decodeLegacy(data []byte, coll *series.Collection, opt Options, wantShards int, wantPolicy Policy) (*Sharded, error) {
	if wantShards > 1 {
		return nil, fmt.Errorf("shard: options ask for %d shards, file is a single-index file", wantShards)
	}
	if wantPolicy != nil && wantPolicy.ID() != policyRoundRobinID {
		return nil, fmt.Errorf("shard: options ask for policy %s, single-index files load as round-robin",
			wantPolicy.Name())
	}
	opt.Shards, opt.Policy = 1, RoundRobin{}
	s, parts, err := newShell(coll, opt)
	if err != nil {
		return nil, err
	}
	sh, err := messi.Decode(data, parts[0], s.shardOptions(0))
	if err != nil {
		s.abort()
		return nil, err
	}
	s.shards[0] = sh
	routes := make([]byte, sh.Count()-coll.Len())
	s.replayRoutes(routes)
	s.finish()
	return s, nil
}

// replayRoutes rebuilds the in-memory append routing state — per-shard
// global position maps, the route log, the published cut vector — from the
// persisted shard-id sequence.
func (s *Sharded) replayRoutes(routes []byte) {
	cuts := make([]int32, s.n)
	for g, r := range routes {
		si := int(r)
		local := len(s.baseMap[si]) + s.appendMap[si].Len()
		s.appendMap[si].Append([]int32{int32(s.baseLen + g)})
		s.routeLog.Append([]int32{int32(si), int32(local)})
		cuts[si]++
	}
	s.cuts.Store(&cuts)
	s.appended.Store(int64(len(routes)))
}
