package shard

import (
	"bytes"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
)

// buildDiff builds a sharded index with the view-vs-copy toggle and one
// worker, so both build paths are fully deterministic and their encodings
// are comparable byte-for-byte.
func buildDiff(t *testing.T, coll *series.Collection, shards int, policy Policy, copyBase bool) *Sharded {
	t.Helper()
	s, err := Build(coll, testConfig(), Options{
		Shards: shards, Policy: policy, CopyBase: copyBase,
		Options: messi.Options{Workers: 1, MergeThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// assertSameAnswers runs the full query surface against both instances and
// fails on any non-bit-identical answer.
func assertSameAnswers(t *testing.T, view, copied *Sharded, queries *series.Collection) {
	t.Helper()
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		vr, _, err := view.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		cr, _, err := copied.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if vr != cr {
			t.Fatalf("query %d: view 1-NN (#%d, %v) != copy 1-NN (#%d, %v)",
				i, vr.Pos, vr.Dist, cr.Pos, cr.Dist)
		}
		vk, _, err := view.SearchKNN(q, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		ck, _, err := copied.SearchKNN(q, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(vk) != len(ck) {
			t.Fatalf("query %d: view %d k-NN results, copy %d", i, len(vk), len(ck))
		}
		for r := range vk {
			if vk[r] != ck[r] {
				t.Fatalf("query %d rank %d: view (#%d, %v) != copy (#%d, %v)",
					i, r, vk[r].Pos, vk[r].Dist, ck[r].Pos, ck[r].Dist)
			}
		}
		vd, _, err := view.SearchDTW(q, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		cd, _, err := copied.SearchDTW(q, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if vd != cd {
			t.Fatalf("query %d: view DTW (#%d, %v) != copy DTW (#%d, %v)",
				i, vd.Pos, vd.Dist, cd.Pos, cd.Dist)
		}
		va, err := view.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := copied.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		if va != ca {
			t.Fatalf("query %d: view approx (#%d, %v) != copy approx (#%d, %v)",
				i, va.Pos, va.Dist, ca.Pos, ca.Dist)
		}
	}
}

// TestViewBuildIdenticalToCopyBuild is the tentpole's differential test: a
// shard built over zero-copy position-remapping views must produce
// bit-identical answers AND byte-identical persistence output versus one
// built over materialized flat copies — through builds, appends, merges
// and save/load.
func TestViewBuildIdenticalToCopyBuild(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 41}
	coll := g.Collection(1200)
	queries := g.PerturbedQueries(coll, 10, 0.05)
	for _, policy := range []Policy{RoundRobin{}, HashSeries{}} {
		for _, n := range []int{1, 3, 4} {
			view := buildDiff(t, coll, n, policy, false)
			copied := buildDiff(t, coll, n, policy, true)

			assertSameAnswers(t, view, copied, queries)
			if ve, ce := view.Encode(), copied.Encode(); !bytes.Equal(ve, ce) {
				t.Fatalf("%s/%d: view Encode (%d bytes) != copy Encode (%d bytes)",
					policy.Name(), n, len(ve), len(ce))
			}

			// Appends route and merge identically on both; re-check after
			// the write path has run.
			for i := 0; i < 300; i++ {
				s := g.Series(int64(coll.Len() + i))
				if _, err := view.Append(s); err != nil {
					t.Fatal(err)
				}
				if _, err := copied.Append(s); err != nil {
					t.Fatal(err)
				}
			}
			view.Flush()
			copied.Flush()
			assertSameAnswers(t, view, copied, queries)
			if ve, ce := view.Encode(), copied.Encode(); !bytes.Equal(ve, ce) {
				t.Fatalf("%s/%d post-append: view Encode != copy Encode", policy.Name(), n)
			}
		}
	}
}

// TestViewBuildHoldsBaseOnce pins the zero-copy wiring end to end: every
// shard of a default build indexes through a *series.View whose series
// alias the caller's collection — no shard holds its own copy of the base
// values.
func TestViewBuildHoldsBaseOnce(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 43}
	coll := g.Collection(600)
	s := buildSharded(t, coll, 4, RoundRobin{})
	for si := 0; si < s.Shards(); si++ {
		v, ok := s.Shard(si).Raw().(*series.View)
		if !ok {
			t.Fatalf("shard %d raw backing is %T, want *series.View", si, s.Shard(si).Raw())
		}
		if v.Base() != series.Reader(coll) {
			t.Fatalf("shard %d view base is not the caller's collection", si)
		}
		for i := 0; i < v.Len(); i++ {
			gp := v.Positions()[i]
			if &v.At(i)[0] != &coll.At(int(gp))[0] {
				t.Fatalf("shard %d series %d does not alias base series %d", si, i, gp)
			}
		}
	}
	// CopyBase is the explicit opt-out: each shard then owns flat storage.
	c, err := Build(coll, testConfig(), Options{Shards: 4, CopyBase: true,
		Options: messi.Options{MergeThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for si := 0; si < c.Shards(); si++ {
		if _, ok := c.Shard(si).Raw().(*series.Collection); !ok {
			t.Fatalf("CopyBase shard %d raw backing is %T, want *series.Collection", si, c.Shard(si).Raw())
		}
	}
}

// TestDecodeRestoresViews verifies Decode replays the same zero-copy views
// a fresh build would use: loading never re-materializes per-shard copies.
func TestDecodeRestoresViews(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 47}
	coll := g.Collection(500)
	s := buildSharded(t, coll, 3, HashSeries{})
	for i := 0; i < 40; i++ {
		if _, err := s.Append(g.Series(int64(coll.Len() + i))); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := Decode(s.Encode(), coll, Options{Options: messi.Options{MergeThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	for si := 0; si < dec.Shards(); si++ {
		v, ok := dec.Shard(si).Raw().(*series.View)
		if !ok {
			t.Fatalf("decoded shard %d raw backing is %T, want *series.View", si, dec.Shard(si).Raw())
		}
		if v.Base() != series.Reader(coll) {
			t.Fatalf("decoded shard %d view base is not the caller's collection", si)
		}
	}
	queries := g.PerturbedQueries(coll, 6, 0.05)
	live := landedCollection(s)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		want, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := dec.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || int(got.Pos) >= live.Len() {
			t.Fatalf("query %d: decoded (#%d, %v) != original (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}
