package shard

import (
	"fmt"
	"math"

	"dsidx/internal/series"
)

// Policy decides which shard a series belongs to. Routing must be a pure
// function of its inputs: persistence re-derives the build-time split by
// replaying the policy over the base collection, so the same (seq, values,
// shards) must always land on the same shard.
type Policy interface {
	// Route returns the shard in [0, shards) for the seq-th series overall
	// (base collection positions first, then appends in arrival order).
	Route(seq int, s series.Series, shards int) int
	// ID is the policy's stable on-disk identifier (DSS1 manifest field).
	ID() uint32
	// Name is the human-readable policy name used in diagnostics.
	Name() string
}

// Policy IDs recorded in DSS1 manifests. Values are stable: files written
// with one build keep loading forever.
const (
	policyRoundRobinID uint32 = 0
	policyHashID       uint32 = 1
)

// RoundRobin routes series by arrival order: series seq lands on shard
// seq mod shards. Base collections split into near-equal interleaved
// stripes, and a steady append stream spreads uniformly regardless of
// content — the default policy.
type RoundRobin struct{}

// Route implements Policy.
func (RoundRobin) Route(seq int, _ series.Series, shards int) int { return seq % shards }

// ID implements Policy.
func (RoundRobin) ID() uint32 { return policyRoundRobinID }

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// HashSeries routes a series by an FNV-1a hash of its values, so identical
// series always land on the same shard no matter when they arrive — the
// policy for deduplication-adjacent workloads and for routing that must be
// stable under reordering of the input.
type HashSeries struct{}

// Route implements Policy.
func (HashSeries) Route(_ int, s series.Series, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range s {
		bits := math.Float32bits(v)
		for b := 0; b < 4; b++ {
			h ^= uint64(bits >> (8 * b) & 0xff)
			h *= prime64
		}
	}
	return int(h % uint64(shards))
}

// ID implements Policy.
func (HashSeries) ID() uint32 { return policyHashID }

// Name implements Policy.
func (HashSeries) Name() string { return "hash-series" }

// policyByID resolves a manifest's policy field; unknown IDs are a decode
// error, never a panic.
func policyByID(id uint32) (Policy, error) {
	switch id {
	case policyRoundRobinID:
		return RoundRobin{}, nil
	case policyHashID:
		return HashSeries{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown shard policy id %d", id)
	}
}
