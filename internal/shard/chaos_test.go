package shard

// Chaos suite: the fault-tolerance acceptance gate, designed to run under
// -race. A deterministic test walks the full failure lifecycle — permanent
// device faults → typed fail-fast → partial results → quarantine →
// re-stage → bit-identical recovery — and a concurrent test throws random
// fault plans, heals and re-stages at a sharded index while writers append
// and readers query, asserting the process never panics, nothing
// deadlocks, every completed answer is bit-identical to a serial scan of
// the prefix it observed, and every failed query carries the typed
// shards-unavailable error.

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
)

// instantRetry keeps fault tests fast: backoff is computed but not slept.
var instantRetry = storage.RetryPolicy{Sleep: func(time.Duration) {}}

// buildFaulty builds a sharded index whose cold tier sits on a FaultStore,
// returning both. cold selects the placement (nil = all shards cold); the
// collection itself is the re-stage source, so recovery works while the
// injected store is dead.
func buildFaulty(t *testing.T, coll *series.Collection, shards int, cold func(int) bool, opt func(*Options)) (*Sharded, *storage.FaultStore) {
	t.Helper()
	fs := storage.NewFaultStore(storage.NewMemStore(), storage.FaultPlan{})
	first := true
	o := Options{
		Shards: shards,
		ColdStorage: &ColdStorage{
			NewStore: func() (storage.Store, error) {
				if first {
					first = false
					return fs, nil
				}
				return storage.NewMemStore(), nil
			},
			CacheBytes:  4 << 10,
			BlockSeries: 8,
			Cold:        cold,
			Retry:       instantRetry,
			Source:      coll,
		},
		QuarantineAfter: 2,
		Options:         messi.Options{MergeThreshold: 64},
	}
	if opt != nil {
		opt(&o)
	}
	s, err := Build(coll, testConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, fs
}

// deadPlan fails every read of the store permanently.
func deadPlan(fs *storage.FaultStore) storage.FaultPlan {
	return storage.FaultPlan{PermanentRanges: []storage.Range{{Start: 0, End: fs.Size()}}}
}

// shardMemberQueries picks members of shard si as queries. Their true
// nearest neighbor (distance zero) lives on that shard, and a zero
// distance can never be proven from summaries alone — so any search MUST
// read the member's raw values off the shard's device. Queries derived
// from other shards' members don't have that property: the hot shards'
// near-exact best-so-far prunes the cold shard at the summary level and
// the dead device goes unnoticed.
func shardMemberQueries(s *Sharded, coll *series.Collection, si int, picks ...int) *series.Collection {
	qs := series.NewCollection(0, coll.SeriesLen())
	pos := s.baseMap[si]
	for _, p := range picks {
		qs.Append(coll.At(int(pos[p%len(pos)])))
	}
	return qs
}

// TestHealthTypesRendering pins the log/metric surface of the degraded
// mode: state names and the typed error's message and unwrap chain.
func TestHealthTypesRendering(t *testing.T) {
	for st, want := range map[ShardState]string{
		Serving: "serving", Quarantined: "quarantined", Restaging: "restaging",
		ShardState(9): "ShardState(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("ShardState(%d).String() = %q, want %q", int32(st), got, want)
		}
	}
	cause := &storage.ReadError{Off: 8, Len: 4, Class: storage.FaultPermanent, Err: storage.ErrInjected}
	err := &ErrShardsUnavailable{Shards: []int{1, 3}, Cause: cause}
	msg := err.Error()
	for _, sub := range []string{"2 shard(s) unavailable", "[1 3]", "permanent"} {
		if !strings.Contains(msg, sub) {
			t.Errorf("ErrShardsUnavailable %q lacks %q", msg, sub)
		}
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Error("typed error does not unwrap to the injected cause")
	}
}

// TestChaosQuarantineRestageRoundTrip walks the deterministic lifecycle on
// a mixed hot/cold index with one cold shard: kill the device, watch
// queries fail fast with the typed error, the shard quarantine, partial
// results answer over the covered shards, and a re-stage restore
// bit-identical service — the ISSUE's acceptance scenario.
func TestChaosQuarantineRestageRoundTrip(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 31}
	coll := g.Collection(600)
	queries := g.PerturbedQueries(coll, 8, 0.05)
	const coldShard = 1
	s, fs := buildFaulty(t, coll, 3, func(si int) bool { return si == coldShard }, nil)
	// Queries whose answers live on the cold shard, spread across distinct
	// cache blocks so summary pruning and the block cache can't mask the
	// device (see shardMemberQueries).
	coldQ := shardMemberQueries(s, coll, coldShard, 3, 51, 99, 147, 195)

	// Healthy baseline: bit-identical to the serial oracle.
	q0 := coldQ.At(0)
	want := ucr.Scan(coll, q0)
	got, _, err := s.Search(q0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		t.Fatalf("healthy: (#%d, %v) != serial (#%d, %v)", got.Pos, got.Dist, want.Pos, want.Dist)
	}

	// Kill the device. Queries must fail with the typed error naming the
	// cold shard — never a panic, never an untyped error — and after
	// QuarantineAfter consecutive permanent failures the shard flips to
	// Quarantined (later queries fail fast without touching the device).
	fs.SetPlan(deadPlan(fs))
	var su *ErrShardsUnavailable
	for i := 0; i < 4; i++ {
		if _, _, err := s.Search(coldQ.At(1+i%(coldQ.Len()-1)), 0); err == nil {
			t.Fatalf("query %d succeeded on a dead device", i)
		} else if !errors.As(err, &su) {
			t.Fatalf("query %d failed untyped: %v", i, err)
		}
		if len(su.Shards) != 1 || su.Shards[0] != coldShard {
			t.Fatalf("query %d: unavailable shards %v, want [%d]", i, su.Shards, coldShard)
		}
	}
	if st := s.ShardState(coldShard); st != Quarantined {
		t.Fatalf("cold shard state %v after repeated permanent failures, want Quarantined", st)
	}
	if !errors.Is(su, storage.ErrInjected) {
		t.Fatalf("typed error does not unwrap to the injected cause: %v", su)
	}
	h := s.Health()
	if len(h.Quarantined) != 1 || h.Quarantined[0] != coldShard {
		t.Fatalf("Health().Quarantined = %v, want [%d]", h.Quarantined, coldShard)
	}
	if hs := h.Shards[coldShard]; hs.PermanentFailures < 2 || hs.Quarantines != 1 || hs.LastError == "" {
		t.Fatalf("cold shard health %+v lacks the failure record", hs)
	}
	if hs := h.Shards[0]; hs.Failures != 0 || hs.State != Serving {
		t.Fatalf("hot shard 0 health %+v contaminated by shard %d's faults", hs, coldShard)
	}

	// Partial results: the same degraded index answers best-effort when
	// asked, reporting the gap — and the answer is exactly the serial scan
	// over the shards it could cover.
	s.opt.AllowPartial = true
	var covered []int32
	coveredColl := series.NewCollection(0, testLen)
	onCold := make(map[int32]bool, len(s.baseMap[coldShard]))
	for _, g := range s.baseMap[coldShard] {
		onCold[g] = true
	}
	for g := 0; g < coll.Len(); g++ {
		if !onCold[int32(g)] {
			covered = append(covered, int32(g))
			coveredColl.Append(coll.At(g))
		}
	}
	for i := 0; i < 3; i++ {
		q := queries.At(i)
		got, st, err := s.Search(q, 0)
		if err != nil {
			t.Fatalf("AllowPartial query %d failed: %v", i, err)
		}
		if len(st.UncoveredShards) != 1 || st.UncoveredShards[0] != coldShard {
			t.Fatalf("AllowPartial query %d: UncoveredShards %v, want [%d]", i, st.UncoveredShards, coldShard)
		}
		pw := ucr.Scan(coveredColl, q)
		if got.Pos != covered[pw.Pos] || got.Dist != pw.Dist {
			t.Fatalf("partial answer (#%d, %v) != covered-scan (#%d, %v)",
				got.Pos, got.Dist, covered[pw.Pos], pw.Dist)
		}
	}
	s.opt.AllowPartial = false

	// Re-stage onto a fresh store — the dead device stays dead; recovery
	// reads from the hot source — and service is bit-identical again.
	if err := s.Restage(coldShard); err != nil {
		t.Fatalf("restage: %v", err)
	}
	if st := s.ShardState(coldShard); st != Serving {
		t.Fatalf("state %v after restage, want Serving", st)
	}
	for i := 0; i < queries.Len()+coldQ.Len(); i++ {
		q := queries.At(i % queries.Len())
		if i >= queries.Len() {
			q = coldQ.At(i - queries.Len()) // must read the restaged device
		}
		want := ucr.Scan(coll, q)
		got, st, err := s.Search(q, 0)
		if err != nil {
			t.Fatalf("post-restage query %d: %v", i, err)
		}
		if len(st.UncoveredShards) != 0 {
			t.Fatalf("post-restage query %d reports uncovered shards %v", i, st.UncoveredShards)
		}
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("post-restage query %d: (#%d, %v) != serial (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
	h = s.Health()
	if hs := h.Shards[coldShard]; hs.Restages != 1 || hs.State != Serving || hs.LastError != "" {
		t.Fatalf("post-restage health %+v", hs)
	}
	if h.FailedSearches == 0 {
		t.Fatal("health reports no failed searches after the outage")
	}
}

// TestChaosAutoRestage verifies the hands-off path: with AutoRestage on,
// quarantining a shard schedules the rewrite as a background job on the
// shared pool and the shard returns to Serving without operator action.
func TestChaosAutoRestage(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 37}
	coll := g.Collection(400)
	s, fs := buildFaulty(t, coll, 2, func(si int) bool { return si == 0 },
		func(o *Options) { o.AutoRestage = true })

	fs.SetPlan(deadPlan(fs))
	q := shardMemberQueries(s, coll, 0, 7).At(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, err := s.Search(q, 0)
		if err == nil && s.ShardState(0) == Serving && s.Health().Shards[0].Restages >= 1 {
			break // auto re-stage landed and service recovered
		}
		if err != nil {
			var su *ErrShardsUnavailable
			if !errors.As(err, &su) {
				t.Fatalf("untyped failure during outage: %v", err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto re-stage never recovered the shard: state %v, health %+v",
				s.ShardState(0), s.Health().Shards[0])
		}
		time.Sleep(time.Millisecond)
	}
	want := ucr.Scan(coll, q)
	got, _, err := s.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		t.Fatalf("post-auto-restage: (#%d, %v) != serial (#%d, %v)",
			got.Pos, got.Dist, want.Pos, want.Dist)
	}
}

// chaosAnswer is one completed query recorded mid-chaos for post-hoc
// verification against the serial oracle.
type chaosAnswer struct {
	qi       int
	observed int
	partial  bool
	nn       ucr.Result
}

// TestChaosConcurrentFaults is the -race gate: fault plans flip while
// writers append and readers issue mixed queries against hot/cold/mixed
// placements. Invariants: no panic escapes, nothing deadlocks (the test
// finishes), failed queries are typed, and every COMPLETE answer —
// recorded with the cut it observed — is bit-identical to a serial scan
// of exactly that prefix.
func TestChaosConcurrentFaults(t *testing.T) {
	placements := map[string]func(int) bool{
		"all-cold": nil,
		"mixed":    func(si int) bool { return si%2 == 0 },
	}
	for name, placement := range placements {
		for _, partial := range []bool{false, true} {
			mode := "failfast"
			if partial {
				mode = "partial"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				runChaos(t, placement, partial)
			})
		}
	}
}

func runChaos(t *testing.T, placement func(int) bool, allowPartial bool) {
	const (
		chaosShards  = 4
		chaosBase    = 700
		chaosReaders = 8
	)
	queriesPerReader := 12
	if testing.Short() {
		queriesPerReader = 4
	}
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 41}
	coll := g.Collection(chaosBase)
	queries := g.PerturbedQueries(coll, 32, 0.05)
	pool := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 43}.Collection(256)
	s, fs := buildFaulty(t, coll, chaosShards, placement, func(o *Options) {
		o.AllowPartial = allowPartial
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Chaos driver: flip between transient plans, dead ranges, and heals
	// (re-staging whatever quarantined) until the readers finish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(47))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				fs.SetPlan(storage.FaultPlan{
					Seed:           rng.Int63(),
					TransientProb:  0.3,
					TransientBurst: rng.Intn(3),
				})
			case 1:
				size := fs.Size()
				start := rng.Int63n(size)
				fs.SetPlan(storage.FaultPlan{
					Seed:            rng.Int63(),
					PermanentRanges: []storage.Range{{Start: start, End: start + 1 + rng.Int63n(size-start)}},
				})
			case 2:
				fs.Heal()
				for _, si := range s.Health().Quarantined {
					// A concurrent query may have re-quarantined or a
					// previous loop already claimed it; both fine.
					_ = s.Restage(si)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Writers: concurrent appends land hot and must never be disturbed by
	// device faults.
	appended := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for i := 0; i < pool.Len(); i++ {
			select {
			case <-stop:
				appended <- n
				return
			default:
			}
			if _, err := s.Append(pool.At(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				appended <- n
				return
			}
			n++
			time.Sleep(200 * time.Microsecond)
		}
		appended <- n
	}()

	// Readers drive the duration: when they finish, stop closes and the
	// chaos and writer goroutines wind down.
	var rwg sync.WaitGroup
	records := make([][]chaosAnswer, chaosReaders)
	for r := 0; r < chaosReaders; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			var su *ErrShardsUnavailable
			for n := 0; n < queriesPerReader; n++ {
				qi := (r*queriesPerReader + n) % queries.Len()
				got, st, err := s.Search(queries.At(qi), 0)
				if err != nil {
					if !errors.As(err, &su) {
						t.Errorf("reader %d query %d failed untyped: %v", r, n, err)
						return
					}
					continue
				}
				records[r] = append(records[r], chaosAnswer{
					qi:       qi,
					observed: st.Observed,
					partial:  len(st.UncoveredShards) > 0,
					nn:       got,
				})
			}
		}(r)
	}

	// The no-deadlock invariant: everything must wind down within the
	// bound. The readers finish on their own; stop then releases the
	// chaos and writer loops.
	done := make(chan struct{})
	go func() {
		rwg.Wait()
		close(stop)
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos run did not settle within 60s — possible deadlock")
	}
	<-appended

	// Post-chaos: heal, re-stage everything, and the index must serve
	// exact full-coverage answers again.
	fs.Heal()
	for _, si := range s.Health().Quarantined {
		if err := s.Restage(si); err != nil {
			t.Fatalf("final restage shard %d: %v", si, err)
		}
	}
	if q := s.Health().Quarantined; len(q) != 0 {
		t.Fatalf("shards %v quarantined after final heal", q)
	}

	// Verify recorded complete answers post-hoc: bit-identical to a serial
	// scan over exactly the prefix each observed. Partial answers (their
	// uncovered set was reported) are contract-checked by the round-trip
	// test; here they only prove the code path ran.
	landed := landedCollection(s)
	verified := 0
	for r := range records {
		for _, rec := range records[r] {
			if rec.partial {
				continue
			}
			if rec.observed < chaosBase || rec.observed > landed.Len() {
				t.Fatalf("observed %d outside [%d, %d]", rec.observed, chaosBase, landed.Len())
			}
			want := ucr.Scan(landed.Slice(0, rec.observed), queries.At(rec.qi))
			if rec.nn.Pos != want.Pos || rec.nn.Dist != want.Dist {
				t.Errorf("chaos answer over %d series: (#%d, %v) != serial (#%d, %v)",
					rec.observed, rec.nn.Pos, rec.nn.Dist, want.Pos, want.Dist)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Error("no complete answers recorded under chaos — nothing was verified")
	}

	// Final exactness on the settled index.
	for qi := 0; qi < 4; qi++ {
		q := queries.At(qi)
		want := ucr.Scan(landed, q)
		got, st, err := s.Search(q, 0)
		if err != nil {
			t.Fatalf("settled query %d: %v", qi, err)
		}
		if len(st.UncoveredShards) != 0 {
			t.Fatalf("settled query %d uncovered %v", qi, st.UncoveredShards)
		}
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("settled query %d: (#%d, %v) != serial (#%d, %v)",
				qi, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}
