package shard

import (
	"path/filepath"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
)

// coldOptions returns a small-cache cold configuration so tests exercise
// misses and evictions, not just the warm path.
func coldOptions(cold func(int) bool) *ColdStorage {
	return &ColdStorage{CacheBytes: 16 << 10, BlockSeries: 8, Cold: cold}
}

// TestColdStorageMatchesHot is the tiering acceptance test: the same
// collection indexed hot, all-cold and mixed hot/cold must answer every
// search flavor bit-identically, while the cold builds actually touch the
// device cache.
func TestColdStorageMatchesHot(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 11}
	coll := g.Collection(900)
	queries := g.PerturbedQueries(coll, 10, 0.05)
	hot := buildSharded(t, coll, 3, RoundRobin{})

	placements := map[string]func(int) bool{
		"all-cold": nil,
		"mixed":    func(si int) bool { return si != 1 },
	}
	for name, placement := range placements {
		t.Run(name, func(t *testing.T) {
			s, err := Build(coll, testConfig(), Options{Shards: 3,
				ColdStorage: coldOptions(placement),
				Options:     messi.Options{MergeThreshold: 1 << 30}})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(s.Close)
			for i := 0; i < queries.Len(); i++ {
				q := queries.At(i)
				got, _, err := s.Search(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := hot.Search(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("query %d: cold (#%d, %v) != hot (#%d, %v)",
						i, got.Pos, got.Dist, want.Pos, want.Dist)
				}
				gotK, _, err := s.SearchKNN(q, 5, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantK, _, err := hot.SearchKNN(q, 5, 0)
				if err != nil {
					t.Fatal(err)
				}
				for r := range wantK {
					if gotK[r] != wantK[r] {
						t.Fatalf("query %d rank %d: cold %+v != hot %+v", i, r, gotK[r], wantK[r])
					}
				}
				gotD, _, err := s.SearchDTW(q, 4, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantD, _, err := hot.SearchDTW(q, 4, 0)
				if err != nil {
					t.Fatal(err)
				}
				if gotD != wantD {
					t.Fatalf("DTW query %d: cold %+v != hot %+v", i, gotD, wantD)
				}
			}
			st := s.ColdStats()
			wantShards := 3
			if name == "mixed" {
				wantShards = 2
			}
			if st.ColdShards != wantShards {
				t.Fatalf("ColdShards = %d, want %d", st.ColdShards, wantShards)
			}
			if st.Cache.Misses == 0 {
				t.Error("cold queries never missed the 16 KiB cache")
			}
			if st.Device.ReadOps == 0 || st.Device.BytesRead == 0 {
				t.Errorf("cold device untouched: %+v", st.Device)
			}
			if s.ColdDisk() == nil {
				t.Error("ColdDisk() = nil with cold shards present")
			}
			if name == "all-cold" {
				// All shards cold: the sharded index must serve global reads
				// through the device cache, not keep the flat collection alive.
				if _, ok := s.base.(*storage.DiskReader); !ok {
					t.Errorf("all-cold base is %T, want *storage.DiskReader", s.base)
				}
			} else if s.base != coll {
				t.Errorf("mixed-tier base replaced: %T", s.base)
			}
		})
	}

	// The hot index has no cold tier to report.
	if st := hot.ColdStats(); st != (ColdStats{}) {
		t.Errorf("hot ColdStats = %+v, want zero", st)
	}
	if hot.ColdDisk() != nil {
		t.Error("hot ColdDisk() non-nil")
	}
}

// TestColdStorageAppendsStayHot: appends land in the in-RAM delta stores
// regardless of tier, and queries over the mixed base+append content still
// match the serial oracle.
func TestColdStorageAppendsStayHot(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 13}
	coll := g.Collection(300)
	s, err := Build(coll, testConfig(), Options{Shards: 2,
		ColdStorage: coldOptions(nil),
		Options:     messi.Options{MergeThreshold: 64}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for i := 0; i < 150; i++ {
		if _, err := s.Append(g.Series(int64(1000 + i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	mirror := landedCollection(s)
	queries := g.PerturbedQueries(mirror, 8, 0.05)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, st, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Observed != mirror.Len() {
			t.Fatalf("observed %d, want %d", st.Observed, mirror.Len())
		}
		want := ucr.Scan(mirror, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("query %d: (#%d, %v) != serial (#%d, %v)", i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

// TestColdStorageDecode: a file saved from a hot instance loads with a cold
// base placement and keeps answering identically — persistence is
// backing-agnostic.
func TestColdStorageDecode(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 17}
	coll := g.Collection(400)
	hot := buildSharded(t, coll, 3, RoundRobin{})
	enc := hot.Encode()

	s, err := Decode(enc, coll, Options{
		ColdStorage: coldOptions(nil),
		Options:     messi.Options{MergeThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	queries := g.PerturbedQueries(coll, 8, 0.05)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := hot.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: decoded-cold %+v != hot %+v", i, got, want)
		}
	}
	if st := s.ColdStats(); st.ColdShards != 3 || st.Cache.Hits+st.Cache.Misses == 0 {
		t.Fatalf("decoded-cold stats %+v", st)
	}
}

// TestColdStorageFileStore runs the cold tier over a real temp file — the
// genuinely out-of-core configuration — and checks answers against the
// oracle.
func TestColdStorageFileStore(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 19}
	coll := g.Collection(500)
	dir := t.TempDir()
	var fs *storage.FileStore
	cs := coldOptions(nil)
	cs.NewStore = func() (storage.Store, error) {
		var err error
		fs, err = storage.OpenFileStore(filepath.Join(dir, "base.dsf"))
		return fs, err
	}
	s, err := Build(coll, testConfig(), Options{Shards: 2, ColdStorage: cs,
		Options: messi.Options{MergeThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		fs.Close()
	})
	queries := g.PerturbedQueries(coll, 6, 0.05)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, _, err := s.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(coll, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("query %d: (#%d, %v) != serial (#%d, %v)", i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

func TestColdStorageRejectsCopyBase(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 23}
	coll := g.Collection(64)
	_, err := Build(coll, testConfig(), Options{Shards: 2, CopyBase: true,
		ColdStorage: coldOptions(nil)})
	if err == nil {
		t.Fatal("CopyBase together with ColdStorage accepted")
	}
}

// TestColdStorageAllHotPlacement: a ColdStorage whose Cold func marks every
// shard hot is a no-op — no tier is built, no device exists.
func TestColdStorageAllHotPlacement(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: testLen, Seed: 29}
	coll := g.Collection(100)
	s, err := Build(coll, testConfig(), Options{Shards: 2,
		ColdStorage: coldOptions(func(int) bool { return false })})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if s.ColdDisk() != nil || s.ColdStats() != (ColdStats{}) {
		t.Fatal("all-hot placement still built a cold tier")
	}
	q := coll.At(0)
	got, _, err := s.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := ucr.Scan(coll, q); got.Pos != want.Pos {
		t.Fatalf("got #%d, want #%d", got.Pos, want.Pos)
	}
}
