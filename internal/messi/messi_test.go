package messi

import (
	"context"
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
)

func dataset(t *testing.T, kind gen.Kind, n int) (*series.Collection, *series.Collection) {
	t.Helper()
	g := gen.Generator{Kind: kind, Seed: 71}
	return g.Collection(n), g.Queries(6)
}

func build(t *testing.T, coll *series.Collection, workers int) *Index {
	t.Helper()
	ix, err := Build(coll, core.Config{LeafCapacity: 32},
		Options{Workers: workers, BlockSeries: 100})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildIndexesEverything(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		coll, _ := dataset(t, gen.Synthetic, 1100)
		ix := build(t, coll, workers)
		if ix.Count() != coll.Len() || ix.Tree().Count() != coll.Len() {
			t.Fatalf("workers=%d: indexed %d/%d", workers, ix.Tree().Count(), coll.Len())
		}
		if err := ix.Tree().CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestBuildDeterministicTreeContent(t *testing.T) {
	// Different worker counts must index the same set of positions (tree
	// shape may differ only in insertion order effects, but the multiset of
	// entries per root subtree is fixed by the data).
	coll, _ := dataset(t, gen.SALD, 900)
	collect := func(ix *Index) map[int32]bool {
		seen := make(map[int32]bool)
		ix.Tree().VisitLeaves(func(n *core.Node) {
			for _, p := range n.Pos {
				if seen[p] {
					t.Fatalf("duplicate position %d", p)
				}
				seen[p] = true
			}
		})
		return seen
	}
	a := collect(build(t, coll, 1))
	b := collect(build(t, coll, 8))
	if len(a) != len(b) || len(a) != coll.Len() {
		t.Fatalf("different entry sets: %d vs %d (want %d)", len(a), len(b), coll.Len())
	}
}

func TestBuildStats(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 600)
	ix := build(t, coll, 4)
	bs := ix.BuildStats()
	if bs.Summarize <= 0 || bs.TreeBuild <= 0 || bs.Total <= 0 {
		t.Errorf("phases not recorded: %+v", bs)
	}
	if bs.Total < bs.Summarize {
		t.Errorf("Total %v < Summarize %v", bs.Total, bs.Summarize)
	}
}

func TestSearchExactness(t *testing.T) {
	for _, kind := range []gen.Kind{gen.Synthetic, gen.SALD, gen.Seismic} {
		t.Run(kind.String(), func(t *testing.T) {
			coll, queries := dataset(t, kind, 1000)
			ix := build(t, coll, 8)
			for _, workers := range []int{1, 4, 16} {
				for qi := 0; qi < queries.Len(); qi++ {
					q := queries.At(qi)
					_, wantDist := coll.BruteForce1NN(q)
					got, stats, err := ix.Search(q, workers)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(got.Dist-wantDist) > 1e-6*math.Max(1, wantDist) {
						t.Fatalf("workers=%d query %d: dist %v, want %v",
							workers, qi, got.Dist, wantDist)
					}
					if d := series.SquaredED(q, coll.At(int(got.Pos))); math.Abs(d-got.Dist) > 1e-9 {
						t.Fatalf("returned pos %d has dist %v, claimed %v", got.Pos, d, got.Dist)
					}
					if stats.LeavesPopped > stats.LeavesInserted {
						t.Fatalf("popped %d > inserted %d", stats.LeavesPopped, stats.LeavesInserted)
					}
				}
			}
		})
	}
}

func TestSearchPrunesAgainstFullScan(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 4000)
	ix := build(t, coll, 8)
	for qi := 0; qi < queries.Len(); qi++ {
		_, stats, err := ix.Search(queries.At(qi), 8)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RawDistances >= coll.Len()/2 {
			t.Fatalf("query %d: %d raw distances on %d series — pruning broken",
				qi, stats.RawDistances, coll.Len())
		}
	}
}

func TestSearchEmptyAndValidation(t *testing.T) {
	empty, err := Build(series.NewCollection(0, 256), core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := empty.Search(make(series.Series, 256), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != -1 || !math.IsInf(got.Dist, 1) {
		t.Fatalf("empty search = %+v", got)
	}
	if _, _, err := empty.Search(make(series.Series, 13), 2); err == nil {
		t.Error("mismatched query length accepted")
	}
}

func TestSearchKNNMatchesSerialKNN(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 800)
	ix := build(t, coll, 8)
	const k = 10
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		want := ucr.ScanKNN(coll, q, k)
		got, _, err := ix.SearchKNN(q, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), k)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*math.Max(1, want[i].Dist) {
				t.Fatalf("query %d rank %d: dist %v, want %v", qi, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestSearchKNNDegenerate(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 100)
	ix := build(t, coll, 4)
	if got, _, err := ix.SearchKNN(queries.At(0), 0, 2); err != nil || got != nil {
		t.Errorf("k=0: (%v,%v)", got, err)
	}
	got, _, err := ix.SearchKNN(queries.At(0), 1, 2)
	if err != nil || len(got) != 1 {
		t.Fatalf("k=1: %v %v", got, err)
	}
	one, _, err := ix.Search(queries.At(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0].Dist-one.Dist) > 1e-9 {
		t.Errorf("k=1 dist %v != 1-NN dist %v", got[0].Dist, one.Dist)
	}
}

func TestSearchDTWMatchesUCRDTW(t *testing.T) {
	g := gen.Generator{Kind: gen.SALD, Length: 128, Seed: 73}
	coll := g.Collection(400)
	queries := g.Queries(4)
	ix := build(t, coll, 8)
	window := 8
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		want := ucr.ScanDTW(coll, q, window)
		got, stats, err := ix.SearchDTW(q, window, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*math.Max(1, want.Dist) {
			t.Fatalf("query %d: DTW dist %v, want %v", qi, got.Dist, want.Dist)
		}
		// The approximate-phase leaf may be re-examined by the queue phase,
		// so allow one leaf's worth of duplicates over a full scan.
		if stats.RawDistances > coll.Len()+32 {
			t.Fatalf("query %d: %d DTW computations on %d series", qi, stats.RawDistances, coll.Len())
		}
	}
}

func TestSearchDTWZeroWindowMatchesED(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 300)
	ix := build(t, coll, 4)
	q := queries.At(0)
	ed, _, err := ix.Search(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	dtw, _, err := ix.SearchDTW(q, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ed.Dist-dtw.Dist) > 1e-6 {
		t.Fatalf("zero-window DTW %v != ED %v", dtw.Dist, ed.Dist)
	}
}

func TestQueueCountVariants(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 600)
	for _, qc := range []int{1, 2, 8, 32} {
		ix, err := Build(coll, core.Config{LeafCapacity: 32},
			Options{Workers: 8, QueueCount: qc})
		if err != nil {
			t.Fatal(err)
		}
		q := queries.At(0)
		_, wantDist := coll.BruteForce1NN(q)
		got, _, err := ix.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-wantDist) > 1e-6*math.Max(1, wantDist) {
			t.Fatalf("queues=%d: dist %v, want %v", qc, got.Dist, wantDist)
		}
	}
}

func TestIndexAdmissionProbeAndRaw(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 400)
	ix := build(t, coll, 2)
	defer ix.Close()
	if ix.Raw() != series.Reader(coll) {
		t.Fatal("Raw() does not return the collection the index was built over")
	}
	if got := ix.ProbeLeaves(); got < 1 {
		t.Fatalf("ProbeLeaves() = %d", got)
	}
	if ix.MaxInFlight() <= 0 {
		t.Fatalf("MaxInFlight() = %d", ix.MaxInFlight())
	}
	release := ix.Admit()
	release()
	release, err := ix.AdmitContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
}
