package messi

// Unit coverage for the delete/TTL/window surface: range validation,
// idempotence, the at-or-before expiry boundary, and the sliding-window
// scope — each checked against serial live scans for bit-identical answers
// across compaction states.

import (
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/ucr"
)

// buildTombIndex returns a small index (large merge threshold, so appended
// series stay in the delta) plus its content mirror.
func buildTombIndex(t *testing.T, n, appends int) (*Index, *gen.Generator) {
	t.Helper()
	g := &gen.Generator{Kind: gen.Synthetic, Length: 32, Seed: 67}
	base := g.Collection(n)
	ix, err := Build(base, core.Config{Segments: 8, LeafCapacity: 16},
		Options{Workers: 1, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ix.Close)
	mirror := g.Collection(n + appends)
	for i := n; i < n+appends; i++ {
		if _, err := ix.Append(mirror.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	return ix, g
}

func TestDeleteValidationAndIdempotence(t *testing.T) {
	ix, _ := buildTombIndex(t, 40, 8)
	for _, bad := range [][2]int{{-1, 0}, {0, 49}, {5, 3}, {49, 50}} {
		if _, err := ix.DeleteRange(bad[0], bad[1]); err == nil {
			t.Errorf("DeleteRange(%d, %d) accepted an invalid range", bad[0], bad[1])
		}
	}
	if n, err := ix.DeleteRange(7, 7); err != nil || n != 0 {
		t.Errorf("empty range: %d, %v", n, err)
	}
	newly, err := ix.Delete(3)
	if err != nil || !newly {
		t.Fatalf("first delete: %v, %v", newly, err)
	}
	newly, err = ix.Delete(3)
	if err != nil || newly {
		t.Fatalf("second delete reported newly=%v, %v", newly, err)
	}
	// Range overlapping the existing tombstone and the base/append seam.
	n, err := ix.DeleteRange(2, 44)
	if err != nil || n != 41 {
		t.Fatalf("overlap range deleted %d, %v; want 41", n, err)
	}
	if ix.Tombstoned() != 42 || ix.Live() != 48-42 {
		t.Fatalf("tombstoned %d live %d, want 42/6", ix.Tombstoned(), ix.Live())
	}
}

func TestExpireBeforeBoundary(t *testing.T) {
	ix, g := buildTombIndex(t, 30, 0)
	s := g.Series(1000)
	pos, err := ix.AppendWithTTL(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Expiry is at-or-before: now=9 keeps the series, now=10 reaps it.
	if n := ix.ExpireBefore(9); n != 0 {
		t.Fatalf("expired %d at now=9, deadline 10", n)
	}
	if n := ix.ExpireBefore(10); n != 1 {
		t.Fatalf("expired %d at now=10, deadline 10", n)
	}
	if !ix.tombstones().has(int32(pos)) {
		t.Fatal("expired position not tombstoned")
	}
	// The entry is consumed: advancing the clock expires nothing new.
	if n := ix.ExpireBefore(1 << 40); n != 0 {
		t.Fatal("ttl entry survived its expiry")
	}

	// SetTTL replaces an existing deadline in place.
	pos2, err := ix.AppendWithTTL(g.Series(1001), 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetTTL(pos2, 40); err != nil {
		t.Fatal(err)
	}
	if n := ix.ExpireBefore(30); n != 0 {
		t.Fatal("replaced deadline still expired at the old time")
	}
	if n := ix.ExpireBefore(40); n != 1 {
		t.Fatal("replaced deadline did not expire at the new time")
	}

	// A TTL on an already-deleted position expires silently (not newly).
	pos3, err := ix.AppendWithTTL(g.Series(1002), 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(pos3); err != nil {
		t.Fatal(err)
	}
	if n := ix.ExpireBefore(50); n != 0 {
		t.Fatalf("deleted position counted as newly expired: %d", n)
	}

	// SetTTL range validation.
	if err := ix.SetTTL(-1, 5); err == nil {
		t.Error("SetTTL(-1) accepted")
	}
	if err := ix.SetTTL(ix.Count(), 5); err == nil {
		t.Error("SetTTL(Count()) accepted")
	}
}

func TestSearchWindowBasics(t *testing.T) {
	ix, g := buildTombIndex(t, 50, 20)
	mirror := g.Collection(70)
	q := g.PerturbedQueries(mirror, 1, 0.05).At(0)

	if _, _, err := ix.SearchWindow(q, 0, 0); err == nil {
		t.Error("window size 0 accepted")
	}
	if _, _, err := ix.SearchWindow(q, -3, 0); err == nil {
		t.Error("negative window accepted")
	}

	check := func(state string) {
		t.Helper()
		for _, n := range []int{1, 7, 20, 35, 70, 1000} {
			got, _, err := ix.SearchWindow(q, n, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := ucr.ScanLive(mirror, q, 70-n, nil)
			if got != core.Result(want) {
				t.Fatalf("%s: window %d: got (#%d, %v), serial suffix scan says (#%d, %v)",
					state, n, got.Pos, got.Dist, want.Pos, want.Dist)
			}
		}
		// A window wider than everything landed degenerates to Search.
		wide, _, err := ix.SearchWindow(q, 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if wide != full {
			t.Fatalf("%s: wide window %+v != full search %+v", state, wide, full)
		}
	}
	check("pre-flush")
	ix.Flush()
	check("post-flush")
}

func TestSearchWindowWithDeletes(t *testing.T) {
	ix, g := buildTombIndex(t, 50, 10)
	mirror := g.Collection(60)
	q := g.PerturbedQueries(mirror, 1, 0.05).At(0)

	// Delete a band straddling the window edge.
	if _, err := ix.DeleteRange(40, 55); err != nil {
		t.Fatal(err)
	}
	dead := func(p int) bool { return p >= 40 && p < 55 }
	for _, n := range []int{5, 15, 25, 60} {
		got, _, err := ix.SearchWindow(q, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.ScanLive(mirror, q, 60-n, dead)
		if got != core.Result(want) {
			t.Fatalf("window %d: got (#%d, %v), serial live suffix scan says (#%d, %v)",
				n, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
	// An all-deleted window answers NoResult rather than leaking a
	// tombstoned or out-of-window series.
	got, _, err := ix.SearchWindow(q, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos >= 0 && dead(int(got.Pos)) {
		t.Fatalf("window over deleted suffix answered deleted series %d", got.Pos)
	}
	ix.Compact()
	got2, _, err := ix.SearchWindow(q, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Fatalf("compaction changed the window answer: %+v != %+v", got2, got)
	}
}

func TestDeleteVisibleInAllFlavors(t *testing.T) {
	ix, g := buildTombIndex(t, 60, 12)
	mirror := g.Collection(72)
	q := g.PerturbedQueries(mirror, 1, 0.03).At(0)

	// Delete the true nearest neighbor and check every flavor skips it,
	// before and after flush and compaction.
	victim := int(ucr.Scan(mirror, q).Pos)
	if _, err := ix.Delete(victim); err != nil {
		t.Fatal(err)
	}
	dead := func(p int) bool { return p == victim }
	check := func(state string) {
		t.Helper()
		got, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := ucr.ScanLive(mirror, q, 0, dead); got != core.Result(want) {
			t.Fatalf("%s: 1-NN %+v, want %+v", state, got, want)
		}
		knn, _, err := ix.SearchKNN(q, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range knn {
			if int(r.Pos) == victim {
				t.Fatalf("%s: k-NN returned deleted %d", state, victim)
			}
		}
		dtw, _, err := ix.SearchDTW(q, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := ucr.ScanLiveDTW(mirror, q, 4, 0, dead); dtw != core.Result(want) {
			t.Fatalf("%s: DTW %+v, want %+v", state, dtw, want)
		}
		approx, err := ix.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		if int(approx.Pos) == victim {
			t.Fatalf("%s: approximate returned deleted %d", state, victim)
		}
	}
	check("pre-flush")
	ix.Flush()
	check("post-flush")
	ix.Compact()
	check("post-compact")
}
