package messi

// Deletes and TTL: the index never removes series in place — snapshots are
// immutable and the delta buffer is append-only, which is exactly what makes
// lock-free reads work — so deletion is a tombstone. Delete/DeleteRange mark
// global positions in a copy-on-write bitset published atomically; every
// search flavor (tree refinement, delta scan, k-NN offers, approximate
// probes) consults the set it loaded at query start, so an answer reflects
// one consistent delete state just like it reflects one consistent append
// cut. The background merge drops tombstoned entries whenever it rebuilds a
// subtree (ingest.go), and Compact forces a full sweep; the tombstone set
// itself is kept even for compacted positions — positions are never reused,
// so a stale bit is harmless, and keeping it makes the filter independent of
// compaction progress (answers cannot depend on merge timing).
//
// TTL is deletion scheduled by the caller's clock: AppendWithTTL/SetTTL
// record a deadline per position, and ExpireBefore(now) tombstones every
// position whose deadline has passed. The index never reads a wall clock
// itself — expiry is an explicit, deterministic operation, which is what
// lets the conformance harness drive it from a logical clock and demand
// bit-identical answers from every placement.

import (
	"fmt"
	"math/bits"

	"dsidx/internal/series"
	"dsidx/internal/storage"
)

// tombSet is an immutable bitset of tombstoned global positions plus its
// population count. Mutators build a new set under tombMu and publish it via
// an atomic pointer; readers load the pointer once per query and test it
// lock-free. A nil *tombSet (the initial state) is a valid empty set.
type tombSet struct {
	bits []uint64
	n    int
}

// has reports whether pos is tombstoned. Nil-safe.
func (ts *tombSet) has(pos int32) bool {
	if ts == nil || pos < 0 {
		return false
	}
	i := int(pos) >> 6
	return i < len(ts.bits) && ts.bits[i]&(1<<(uint(pos)&63)) != 0
}

// count returns the number of tombstoned positions. Nil-safe.
func (ts *tombSet) count() int {
	if ts == nil {
		return 0
	}
	return ts.n
}

// clone returns a mutable copy sized to hold positions below limit.
func (ts *tombSet) clone(limit int) *tombSet {
	words := (limit + 63) / 64
	next := &tombSet{bits: make([]uint64, words), n: ts.count()}
	if ts != nil {
		copy(next.bits, ts.bits)
	}
	return next
}

// set marks pos in a mutable (not yet published) set, reporting whether the
// bit was newly set.
func (ts *tombSet) set(pos int32) bool {
	i := int(pos) >> 6
	mask := uint64(1) << (uint(pos) & 63)
	if ts.bits[i]&mask != 0 {
		return false
	}
	ts.bits[i] |= mask
	ts.n++
	return true
}

// positions returns the tombstoned positions in ascending order. Nil-safe.
func (ts *tombSet) positions() []int32 {
	if ts == nil || ts.n == 0 {
		return nil
	}
	out := make([]int32, 0, ts.n)
	for i, w := range ts.bits {
		for ; w != 0; w &= w - 1 {
			out = append(out, int32(i*64+bits.TrailingZeros64(w)))
		}
	}
	return out
}

// ttlEntry is one pending expiry deadline: the series at global position pos
// is tombstoned by the first ExpireBefore(now) with now >= deadline.
type ttlEntry struct {
	pos      int32
	deadline int64
}

// tombstones returns the published tombstone set (nil-safe empty before any
// delete).
func (ix *Index) tombstones() *tombSet { return ix.tombs.Load() }

// Delete tombstones the series at global position pos: it stops appearing in
// every subsequent search (all flavors, hot or cold, merged or pending) and
// is dropped from the tree the next time a merge or Compact rebuilds its
// subtree. Returns false if pos was already tombstoned. Deleting is
// idempotent, safe concurrently with appends and queries, and never blocks
// readers — in-flight queries keep the delete state they observed at start,
// exactly as they keep their append cut.
func (ix *Index) Delete(pos int) (bool, error) {
	n, err := ix.DeleteRange(pos, pos+1)
	return n == 1, err
}

// DeleteRange tombstones every position in [lo, hi), returning how many were
// newly tombstoned. The range must satisfy 0 <= lo <= hi <= Count().
func (ix *Index) DeleteRange(lo, hi int) (int, error) {
	limit := ix.baseLen + int(ix.appended.Load())
	if lo < 0 || hi < lo || hi > limit {
		return 0, fmt.Errorf("messi: delete range [%d, %d) outside [0, %d)", lo, hi, limit)
	}
	if lo == hi {
		return 0, nil
	}
	ix.tombMu.Lock()
	next := ix.tombs.Load().clone(limit)
	newly := 0
	for p := lo; p < hi; p++ {
		if next.set(int32(p)) {
			newly++
		}
	}
	if newly > 0 {
		ix.tombs.Store(next)
	}
	ix.tombMu.Unlock()
	return newly, nil
}

// AppendWithTTL is Append plus a TTL deadline: the series is served exactly
// like any other append until a call to ExpireBefore(now) with
// now >= deadline tombstones it. The deadline is in whatever units the
// caller's clock uses (the index never reads a clock itself).
func (ix *Index) AppendWithTTL(s series.Series, deadline int64) (int, error) {
	pos, err := ix.Append(s)
	if err != nil {
		return 0, err
	}
	if err := ix.SetTTL(pos, deadline); err != nil {
		return 0, err
	}
	return pos, nil
}

// SetTTL attaches (or replaces) an expiry deadline on the series at global
// position pos. The position must be < Count().
func (ix *Index) SetTTL(pos int, deadline int64) error {
	limit := ix.baseLen + int(ix.appended.Load())
	if pos < 0 || pos >= limit {
		return fmt.Errorf("messi: ttl position %d outside [0, %d)", pos, limit)
	}
	ix.tombMu.Lock()
	replaced := false
	for i := range ix.ttls {
		if ix.ttls[i].pos == int32(pos) {
			ix.ttls[i].deadline = deadline
			replaced = true
			break
		}
	}
	if !replaced {
		ix.ttls = append(ix.ttls, ttlEntry{pos: int32(pos), deadline: deadline})
	}
	ix.tombMu.Unlock()
	return nil
}

// ExpireBefore tombstones every TTL'd series whose deadline is <= now and
// returns how many expired. Expiry is explicit — the caller owns the clock —
// so identical call sequences produce identical answer streams regardless of
// wall time, which the conformance harness relies on.
func (ix *Index) ExpireBefore(now int64) int {
	ix.tombMu.Lock()
	expired := 0
	keep := ix.ttls[:0]
	var next *tombSet
	for _, e := range ix.ttls {
		if e.deadline > now {
			keep = append(keep, e)
			continue
		}
		if next == nil {
			next = ix.tombs.Load().clone(ix.baseLen + int(ix.appended.Load()))
		}
		if next.set(e.pos) {
			expired++
		}
	}
	ix.ttls = keep
	if next != nil {
		ix.tombs.Store(next)
	}
	ix.tombMu.Unlock()
	return expired
}

// Tombstoned returns the number of tombstoned positions; Live returns
// Count() minus that — the series a full search actually ranges over.
func (ix *Index) Tombstoned() int { return ix.tombs.Load().count() }

// Live returns the number of non-tombstoned series the index answers over.
func (ix *Index) Live() int { return ix.Count() - ix.Tombstoned() }

// Compact synchronously folds the pending delta into the tree (Flush) and
// then rebuilds every subtree that holds tombstoned entries, dropping them
// from leaves. Queries were already exact before the call — the tombstone
// filter covers un-compacted entries — so Compact only reclaims memory and
// refinement work; answers never change. Subtrees whose leaves have been
// flushed to device storage are kept as-is (their entries live on disk and
// stay filtered at query time).
func (ix *Index) Compact() {
	ix.Flush()
	ts := ix.tombs.Load()
	if ts.count() == 0 {
		return
	}
	ix.mergeMu.Lock()
	defer ix.mergeMu.Unlock()
	old := ix.snap.Load()
	next := old.tree.CloneShell()
	for _, key := range old.tree.OccupiedKeys() {
		next.SetSubtree(key, old.tree.CloneSubtreeFiltered(key, ts.has))
	}
	ix.snap.Store(&snapshot{tree: next, mergedA: old.mergedA})
	ix.snapSwaps.Add(1)
}

// Tombstone persistence ("DST1"): an optional envelope around the DSL1/DSI1
// bytes carrying the tombstone set and pending TTL deadlines. Emitted only
// when either is non-empty, so an index with no delete state encodes
// byte-identically to one written before deletes existed, and legacy files
// load with zero tombstones.
//
//	magic "DST1", u32 version=1
//	u32 tombCount, tombCount × u32 ascending global positions
//	u32 ttlCount,  ttlCount × (u32 position, u64 deadline as int64 LE)
//	u64 innerLen, inner bytes (DSL1 or bare DSI1)
const (
	tombMagic   = "DST1"
	tombVersion = 1
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", storage.ErrCorrupt, fmt.Sprintf(format, args...))
}
