package messi

import (
	"strings"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
)

// newTuneIndex builds a small index with a known knob configuration
// (ProbeLeaves 2, MergeThreshold 1024) so retune targets are exact.
func newTuneIndex(t *testing.T, autoTune bool) *Index {
	t.Helper()
	base := gen.Generator{Kind: gen.Synthetic, Length: 32, Seed: 91}.Collection(300)
	ix, err := Build(base, core.Config{LeafCapacity: 32},
		Options{MergeThreshold: 1024, ProbeLeaves: 2, AutoTune: autoTune})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ix.Close)
	return ix
}

// runWindow drives exactly one tuneWindow of traffic with the given
// query/append mix (queries+appends must equal tuneWindow), so the retune
// at the window boundary classifies precisely this mix.
func runWindow(t *testing.T, ix *Index, queries, appends int) {
	t.Helper()
	if queries+appends != tuneWindow {
		t.Fatalf("window mix %d+%d != %d", queries, appends, tuneWindow)
	}
	q := gen.Generator{Kind: gen.Synthetic, Length: 32, Seed: 92}.Collection(1).At(0)
	extra := gen.Generator{Kind: gen.Synthetic, Length: 32, Seed: 93}.Collection(appends)
	for i := 0; i < queries; i++ {
		if _, _, err := ix.Search(q, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < appends; i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAutoTuneMovesKnobsWithWorkloadMix(t *testing.T) {
	ix := newTuneIndex(t, true)

	// Query-heavy window: probe up, merge threshold down.
	runWindow(t, ix, tuneWindow, 0)
	tu := ix.Tuning()
	if !tu.AutoTune || tu.ProbeLeaves != 4 || tu.MergeThreshold != 256 {
		t.Fatalf("query-heavy tuning: %+v", tu)
	}
	if tu.Adjustments == 0 {
		t.Fatal("query-heavy retune recorded no adjustments")
	}

	// Append-heavy window: probe to the floor, merge threshold up.
	runWindow(t, ix, 0, tuneWindow)
	tu = ix.Tuning()
	if tu.ProbeLeaves != 1 || tu.MergeThreshold != 4096 {
		t.Fatalf("append-heavy tuning: %+v", tu)
	}

	// Mixed window: both knobs return to the configured values.
	runWindow(t, ix, tuneWindow/2, tuneWindow/2)
	tu = ix.Tuning()
	if tu.ProbeLeaves != 2 || tu.MergeThreshold != 1024 {
		t.Fatalf("mixed tuning did not restore configuration: %+v", tu)
	}
}

func TestTuningInertWithoutAutoTune(t *testing.T) {
	ix := newTuneIndex(t, false)
	runWindow(t, ix, tuneWindow, 0)
	tu := ix.Tuning()
	if tu.AutoTune || tu.ProbeLeaves != 2 || tu.MergeThreshold != 1024 || tu.Adjustments != 0 {
		t.Fatalf("knobs moved without AutoTune: %+v", tu)
	}
}

func TestRegistryRendersIngestAndTuningFamilies(t *testing.T) {
	ix := newTuneIndex(t, true)
	r := ix.Registry()
	if ix.Registry() != r {
		t.Fatal("Registry not memoized")
	}
	runWindow(t, ix, tuneWindow, 0)
	text := r.Text()
	for _, want := range []string{
		"dsidx_engine_workers", "dsidx_ingest_appended_total", "dsidx_ingest_pending",
		"dsidx_ingest_merge_threshold", "dsidx_index_queries_total",
		"dsidx_index_query_seconds_bucket", "dsidx_tuning_autotune 1",
		"dsidx_tuning_probe_leaves 4", "dsidx_tuning_adjustments_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
