package messi

// Torn-snapshot regression suite for IngestStats (run with -race): the
// stats snapshot must be internally consistent while appenders and
// background merges run. The pre-fix implementation read a separate
// lifetime-appends counter before the snapshot and published count, so a
// concurrent append between the loads made Appended < Merged + Pending —
// exactly the arithmetic this test hammers.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"dsidx/internal/gen"
	"dsidx/internal/series"
)

func TestIngestStatsConsistentUnderConcurrentAppends(t *testing.T) {
	base := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 61}.Collection(200)
	// Low threshold so merges (and snapshot swaps) happen mid-test.
	ix := newIngestIndex(t, base, 128)
	pool := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 62}.Collection(512)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%17 == 0 {
				batch := make([]series.Series, 8)
				for j := range batch {
					batch[j] = pool.At((i + j) % pool.Len())
				}
				if _, err := ix.AppendBatch(batch); err != nil {
					panic(err)
				}
			} else if _, err := ix.Append(pool.At(i % pool.Len())); err != nil {
				panic(err)
			}
		}
	}()

	// Sample for a fixed duration, yielding regularly: on one CPU an
	// unyielding load loop would starve the writer and sample a frozen
	// index. The deadline (not a sample count) bounds the run; the final
	// Merges check proves the writer actually interleaved.
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var prev IngestStats
	for k := 0; ; k++ {
		if k%64 == 0 {
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
		st := ix.IngestStats()
		// The core consistency invariant: on a fresh index every accepted
		// append is either merged or pending — never both, never neither.
		if st.Appended != uint64(st.Merged+st.Pending) {
			t.Fatalf("sample %d: torn snapshot: Appended=%d != Merged=%d + Pending=%d",
				k, st.Appended, st.Merged, st.Pending)
		}
		if st.Pending < 0 {
			t.Fatalf("sample %d: negative Pending %d", k, st.Pending)
		}
		// Monotonic counters must never regress between snapshots.
		if st.Appended < prev.Appended || st.Merged < prev.Merged ||
			st.Merges < prev.Merges || st.SnapshotSwaps < prev.SnapshotSwaps {
			t.Fatalf("sample %d: counter regressed: %+v after %+v", k, st, prev)
		}
		prev = st
	}
	close(stop)
	wg.Wait()

	// Quiesced: the books must balance exactly.
	ix.Flush()
	st := ix.IngestStats()
	if st.Pending != 0 || st.Appended != uint64(st.Merged) {
		t.Fatalf("after flush: %+v", st)
	}
	if st.Appended == 0 || st.Merges == 0 || st.SnapshotSwaps == 0 {
		t.Fatalf("writer made no observable progress during the stress run: %+v", st)
	}
}

// TestIngestStatsRestoredBaseline pins the loaded-index semantics:
// Appended counts post-load appends only, while Merged+Pending cover the
// restored series too.
func TestIngestStatsRestoredBaseline(t *testing.T) {
	base := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 63}.Collection(150)
	ix := newIngestIndex(t, base, 1<<20)
	extra := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 64}.Collection(40)
	for i := 0; i < extra.Len(); i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := ix.IngestStats(); st.Appended != 40 {
		t.Fatalf("fresh index: Appended=%d, want 40", st.Appended)
	}

	loaded, err := Decode(ix.Encode(), base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if st := loaded.IngestStats(); st.Appended != 0 || st.Merged+st.Pending != 40 {
		t.Fatalf("loaded index: %+v, want Appended=0 and Merged+Pending=40", st)
	}
	if _, err := loaded.Append(extra.At(0)); err != nil {
		t.Fatal(err)
	}
	if st := loaded.IngestStats(); st.Appended != 1 || st.Merged+st.Pending != 41 {
		t.Fatalf("loaded index after append: %+v", st)
	}
}
