package messi

import (
	"math"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/vector"
)

// TestSearchImplIndependent runs the same searches under both kernel
// implementations in one process — the dispatch seam test at the level
// users observe. Because the SIMD and scalar kernels are bit-identical,
// the answers (position AND the exact distance bits), k-NN result lists,
// and DTW answers must not depend on which implementation dispatch
// selected.
func TestSearchImplIndependent(t *testing.T) {
	defer vector.ForceScalar(false)
	coll, queries := dataset(t, gen.Synthetic, 1500)
	ix := build(t, coll, 4)
	defer ix.Close()

	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)

		vector.ForceScalar(false)
		fast, _, err := ix.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		fastK, _, err := ix.SearchKNN(q, 5, 4)
		if err != nil {
			t.Fatal(err)
		}

		vector.ForceScalar(true)
		slow, _, err := ix.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		slowK, _, err := ix.SearchKNN(q, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		vector.ForceScalar(false)

		if fast.Pos != slow.Pos || math.Float64bits(fast.Dist) != math.Float64bits(slow.Dist) {
			t.Fatalf("query %d: %s answer %+v differs from scalar answer %+v",
				qi, vector.Detected(), fast, slow)
		}
		if len(fastK) != len(slowK) {
			t.Fatalf("query %d: k-NN lengths differ: %d vs %d", qi, len(fastK), len(slowK))
		}
		for i := range fastK {
			if fastK[i].Pos != slowK[i].Pos || math.Float64bits(fastK[i].Dist) != math.Float64bits(slowK[i].Dist) {
				t.Fatalf("query %d k-NN[%d]: %+v vs scalar %+v", qi, i, fastK[i], slowK[i])
			}
		}
	}
}
