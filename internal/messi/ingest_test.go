package messi

// Live-ingestion suite. Run with -race: the stress test is the acceptance
// gate for concurrent append+query serving — writer goroutines stream new
// series into the index while readers run mixed Search/SearchKNN/SearchDTW,
// and every answer is compared bit-for-bit against a serial internal/ucr
// scan over exactly the collection snapshot the query observed (the
// QueryStats.Observed prefix). Equality can be exact because the index and
// the serial scans share one distance kernel (see ucr.Scan), and because
// appends publish in prefix order: a query that observed T series saw
// precisely positions [0, T) of the final landed order.

import (
	"sync"
	"testing"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
	"dsidx/internal/xsync"
)

const (
	ingestLen     = 64
	ingestKNNK    = 5
	ingestWindow  = 4
	ingestBase    = 1000
	ingestAppends = 1200
)

// newIngestIndex builds a small index with a low merge threshold so
// background merges actually happen mid-test.
func newIngestIndex(t *testing.T, base *series.Collection, threshold int) *Index {
	t.Helper()
	ix, err := Build(base, core.Config{LeafCapacity: 64}, Options{MergeThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ix.Close)
	return ix
}

// liveCollection copies everything the index currently serves — base
// collection plus landed appends, in position order — into a flat
// collection for ground-truth scans.
func liveCollection(ix *Index) *series.Collection {
	n := ix.Count()
	out := series.NewCollection(n, ix.cfg.SeriesLen)
	for i := 0; i < n; i++ {
		out.Set(i, ix.At(i))
	}
	return out
}

func TestAppendVisibleImmediatelyAndExact(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 31}
	base := g.Collection(400)
	queries := g.PerturbedQueries(base, 8, 0.05)
	ix := newIngestIndex(t, base, 1<<30) // never auto-merge: pure delta path
	extra := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 32}.Collection(150)

	for i := 0; i < extra.Len(); i++ {
		pos, err := ix.Append(extra.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if pos != 400+i {
			t.Fatalf("append %d landed at %d", i, pos)
		}
	}
	if ix.Count() != 550 || ix.Pending() != 150 {
		t.Fatalf("count=%d pending=%d", ix.Count(), ix.Pending())
	}
	live := liveCollection(ix)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, st, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Observed != 550 {
			t.Fatalf("observed %d, want 550", st.Observed)
		}
		want := ucr.Scan(live, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("query %d: (#%d, %v) != serial (#%d, %v)", i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
	// An appended series must be findable as its own exact nearest neighbor.
	got, _, err := ix.Search(extra.At(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != 407 || got.Dist != 0 {
		t.Fatalf("self-query of appended series: (#%d, %v)", got.Pos, got.Dist)
	}
}

func TestFlushMergesEverythingAndKeepsAnswers(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 41}
	base := g.Collection(600)
	queries := g.PerturbedQueries(base, 10, 0.05)
	ix := newIngestIndex(t, base, 1<<30)
	extra := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 42}.Collection(500)
	ss := make([]series.Series, extra.Len())
	for i := range ss {
		ss[i] = extra.At(i)
	}
	if _, err := ix.AppendBatch(ss); err != nil {
		t.Fatal(err)
	}

	live := liveCollection(ix)
	before := make([]ucr.Result, queries.Len())
	for i := range before {
		r, _, err := ix.Search(queries.At(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = r
	}
	oldTree := ix.Tree()
	oldCount := oldTree.Count()

	ix.Flush()

	if p := ix.Pending(); p != 0 {
		t.Fatalf("pending %d after Flush", p)
	}
	st := ix.IngestStats()
	if st.Merged != 500 || st.Appended != 500 || st.Merges == 0 {
		t.Fatalf("ingest stats after flush: %+v", st)
	}
	newTree := ix.Tree()
	if newTree.Count() != 1100 {
		t.Fatalf("tree covers %d series after flush, want 1100", newTree.Count())
	}
	if err := newTree.CheckInvariants(); err != nil {
		t.Fatalf("merged tree invariants: %v", err)
	}
	// The pre-merge snapshot must be untouched: readers that loaded it
	// mid-merge keep answering from a consistent structure.
	if oldTree.Count() != oldCount {
		t.Fatalf("old snapshot mutated by merge: %d != %d", oldTree.Count(), oldCount)
	}
	// Answers are identical before and after the merge, and identical to a
	// serial scan: merging moves series between structures, never results.
	for i := range before {
		r, _, err := ix.Search(queries.At(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pos != before[i].Pos || r.Dist != before[i].Dist {
			t.Fatalf("query %d changed across merge: (#%d,%v) != (#%d,%v)",
				i, r.Pos, r.Dist, before[i].Pos, before[i].Dist)
		}
		want := ucr.Scan(live, queries.At(i))
		if r.Pos != want.Pos || r.Dist != want.Dist {
			t.Fatalf("query %d after merge: (#%d,%v) != serial (#%d,%v)",
				i, r.Pos, r.Dist, want.Pos, want.Dist)
		}
	}
}

func TestAppendLengthMismatch(t *testing.T) {
	base := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 5}.Collection(100)
	ix := newIngestIndex(t, base, 1<<30)
	if _, err := ix.Append(make(series.Series, ingestLen+1)); err == nil {
		t.Fatal("wrong-length append accepted")
	}
	if _, err := ix.AppendBatch([]series.Series{make(series.Series, ingestLen), make(series.Series, 3)}); err == nil {
		t.Fatal("wrong-length batch accepted")
	}
	if ix.Count() != 100 || ix.Pending() != 0 {
		t.Fatalf("failed appends changed state: count=%d pending=%d", ix.Count(), ix.Pending())
	}
}

// ingestRecord is one answer a reader observed mid-stream, verified
// post-hoc against a serial scan over the observed prefix.
type ingestRecord struct {
	kind     int // 0 = 1-NN, 1 = k-NN, 2 = DTW
	qi       int
	observed int
	nn       ucr.Result
	knn      []ucr.Result
}

func TestIngestRaceStress(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 404}
	base := g.Collection(ingestBase)
	queries := g.PerturbedQueries(base, 48, 0.05)
	pool := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 405}.Collection(ingestAppends)
	ix := newIngestIndex(t, base, 200) // several background merges mid-test

	const writers, readers, queriesPerReader = 3, 6, 8
	var appendCursor xsync.Counter
	var wg sync.WaitGroup

	// Writers: claim pool series with Fetch&Inc and append them in small
	// paced bursts (a mix of Append and AppendBatch), yielding so readers
	// interleave on few cores.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]series.Series, 0, 16)
			for {
				batch = batch[:0]
				for len(batch) < 16 {
					i := int(appendCursor.Next())
					if i >= pool.Len() {
						break
					}
					batch = append(batch, pool.At(i))
				}
				if len(batch) == 0 {
					return
				}
				var err error
				if w == 0 {
					for _, s := range batch {
						if _, err = ix.Append(s); err != nil {
							break
						}
					}
				} else {
					_, err = ix.AppendBatch(batch)
				}
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}

	// Readers: mixed query kinds, recording what each call observed.
	records := make([][]ingestRecord, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			recs := make([]ingestRecord, 0, queriesPerReader)
			for n := 0; n < queriesPerReader; n++ {
				qi := (r*queriesPerReader + n) % queries.Len()
				q := queries.At(qi)
				switch kind := qi % 3; kind {
				case 0:
					got, st, err := ix.Search(q, 0)
					if err != nil {
						t.Error(err)
						return
					}
					recs = append(recs, ingestRecord{kind: 0, qi: qi, observed: st.Observed, nn: got})
				case 1:
					got, st, err := ix.SearchKNN(q, ingestKNNK, 0)
					if err != nil {
						t.Error(err)
						return
					}
					recs = append(recs, ingestRecord{kind: 1, qi: qi, observed: st.Observed, knn: got})
				case 2:
					got, st, err := ix.SearchDTW(q, ingestWindow, 0)
					if err != nil {
						t.Error(err)
						return
					}
					recs = append(recs, ingestRecord{kind: 2, qi: qi, observed: st.Observed, nn: got})
				}
			}
			records[r] = recs
		}(r)
	}
	wg.Wait()

	if ix.Count() != ingestBase+ingestAppends {
		t.Fatalf("count %d, want %d", ix.Count(), ingestBase+ingestAppends)
	}
	if st := ix.IngestStats(); st.Merges == 0 {
		t.Error("no background merge ran — lower the threshold or raise the append count")
	}

	// Post-hoc verification: the landed order is the index's own position
	// order; every recorded answer must equal a serial scan over the prefix
	// it observed.
	landed := liveCollection(ix)
	verified := 0
	for r := range records {
		for _, rec := range records[r] {
			if rec.observed < ingestBase || rec.observed > landed.Len() {
				t.Fatalf("record observed %d outside [%d, %d]", rec.observed, ingestBase, landed.Len())
			}
			prefix := landed.Slice(0, rec.observed)
			q := queries.At(rec.qi)
			switch rec.kind {
			case 0:
				want := ucr.Scan(prefix, q)
				if rec.nn.Pos != want.Pos || rec.nn.Dist != want.Dist {
					t.Errorf("query %d over %d series: (#%d, %v), serial scan says (#%d, %v)",
						rec.qi, rec.observed, rec.nn.Pos, rec.nn.Dist, want.Pos, want.Dist)
				}
			case 1:
				want := ucr.ScanKNN(prefix, q, ingestKNNK)
				if len(rec.knn) != len(want) {
					t.Errorf("query %d over %d series: %d results, want %d",
						rec.qi, rec.observed, len(rec.knn), len(want))
					continue
				}
				for k := range want {
					if rec.knn[k].Pos != want[k].Pos || rec.knn[k].Dist != want[k].Dist {
						t.Errorf("query %d over %d series rank %d: (#%d, %v) != (#%d, %v)",
							rec.qi, rec.observed, k, rec.knn[k].Pos, rec.knn[k].Dist, want[k].Pos, want[k].Dist)
					}
				}
			case 2:
				want := ucr.ScanDTW(prefix, q, ingestWindow)
				if rec.nn.Pos != want.Pos || rec.nn.Dist != want.Dist {
					t.Errorf("DTW query %d over %d series: (#%d, %v), serial scan says (#%d, %v)",
						rec.qi, rec.observed, rec.nn.Pos, rec.nn.Dist, want.Pos, want.Dist)
				}
			}
			verified++
		}
	}
	if verified != readers*queriesPerReader {
		t.Fatalf("verified %d records, want %d", verified, readers*queriesPerReader)
	}

	// Settle: merge everything and re-check exactness and tree invariants.
	ix.Flush()
	if p := ix.Pending(); p != 0 {
		t.Fatalf("pending %d after final Flush", p)
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatalf("tree invariants after stress: %v", err)
	}
	for qi := 0; qi < 6; qi++ {
		q := queries.At(qi)
		got, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(landed, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("settled query %d: (#%d, %v) != serial (#%d, %v)",
				qi, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

func TestCloseDuringBackgroundMergeIsSafeAndIdempotent(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 51}
	base := g.Collection(800)
	queries := g.PerturbedQueries(base, 6, 0.05)
	pool := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 52}.Collection(2000)
	ix := newIngestIndex(t, base, 128)

	// Cross the merge threshold so a background merge is in flight, then
	// race Close against it (and against more appends and queries).
	ss := make([]series.Series, 600)
	for i := range ss {
		ss[i] = pool.At(i)
	}
	if _, err := ix.AppendBatch(ss); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ix.Close()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 600; i < 1000; i++ {
			if _, err := ix.Append(pool.At(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < queries.Len(); i++ {
			if _, _, err := ix.Search(queries.At(i), 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	ix.Close() // double-call on top of the concurrent pair

	// After Close: appends still land, Flush merges inline, queries stay
	// exact (executing serially), and the tree is structurally sound.
	if _, err := ix.Append(pool.At(1000)); err != nil {
		t.Fatal(err)
	}
	ix.Flush()
	if p := ix.Pending(); p != 0 {
		t.Fatalf("pending %d after post-Close Flush", p)
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatalf("tree invariants after shutdown race: %v", err)
	}
	live := liveCollection(ix)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		got, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Fatalf("post-close query %d: (#%d, %v) != serial (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

func TestCloseReturnsUnderSustainedAppends(t *testing.T) {
	// A producer that keeps the delta above the merge threshold must not
	// wedge Close: the background merge job polls the engine's closing
	// signal and exits, leaving the remainder pending (still exactly
	// searchable, mergeable via Flush).
	base := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 81}.Collection(400)
	pool := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 82}.Collection(4000)
	ix := newIngestIndex(t, base, 16) // tiny threshold: merges can never catch up

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.Append(pool.At(i % pool.Len())); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Let the merge job spin up against the append stream, then close.
	for ix.IngestStats().Merges == 0 {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		ix.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return while appends continued")
	}
	close(stop)
	wg.Wait()
	ix.Flush()
	if p := ix.Pending(); p != 0 {
		t.Fatalf("pending %d after post-Close Flush", p)
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRoundTripWithPendingDelta(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 61}
	base := g.Collection(500)
	queries := g.PerturbedQueries(base, 6, 0.05)
	ix := newIngestIndex(t, base, 1<<30)
	extra := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 62}.Collection(300)

	// Merge some appends, keep others pending, so the encoded index carries
	// a split delta buffer.
	for i := 0; i < 200; i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Flush()
	for i := 200; i < 300; i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}

	enc := ix.Encode()
	ix2, err := Decode(enc, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Count() != ix.Count() || ix2.Pending() != 100 {
		t.Fatalf("decoded count=%d pending=%d, want %d/100", ix2.Count(), ix2.Pending(), ix.Count())
	}
	st := ix2.IngestStats()
	if st.Merged != 200 {
		t.Fatalf("decoded merged = %d, want 200", st.Merged)
	}
	// Re-encoding the decoded index reproduces the bytes exactly.
	if enc2 := ix2.Encode(); string(enc2) != string(enc) {
		t.Fatal("re-encode differs from original encode")
	}
	// Answers are identical across the round trip and match serial scans.
	live := liveCollection(ix)
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		a, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ix2.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if a != b || a.Pos != want.Pos || a.Dist != want.Dist {
			t.Fatalf("round-trip query %d: %+v vs %+v vs serial %+v", i, a, b, want)
		}
	}
	// The appended store travels with the index: appended series resolve
	// from the decoded index without the caller re-supplying them.
	got, _, err := ix2.Search(extra.At(250), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != 750 || got.Dist != 0 {
		t.Fatalf("decoded self-query: (#%d, %v)", got.Pos, got.Dist)
	}
}

func TestLegacyFormatStillDecodes(t *testing.T) {
	// An index with no appends encodes to the bare DSI1 blob, so files
	// written before live ingestion existed keep loading.
	base := gen.Generator{Kind: gen.Synthetic, Length: ingestLen, Seed: 71}.Collection(300)
	ix := newIngestIndex(t, base, 1<<30)
	enc := ix.Encode()
	if string(enc[:4]) != "DSI1" {
		t.Fatalf("no-append encode magic %q, want legacy DSI1", enc[:4])
	}
	ix2, err := Decode(enc, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix2.Close()
}
