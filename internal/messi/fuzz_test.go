package messi

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
)

// FuzzPersistRoundTrip drives the live persistence format from both ends:
// arbitrary bytes must never panic the decoder, and an index whose delta
// buffer holds fuzz-derived appends (part merged, part pending) must
// round-trip through Encode/Decode into a byte-identical, answer-identical
// copy.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DSL1"))
	f.Add([]byte("DSL1\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("DSI1 not really an index"))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0x80, 0x00, 0xff, 0x7f, 0x41, 0x41, 0x41, 0x41})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n, length = 64, 32
		base := gen.Generator{Kind: gen.Synthetic, Length: length, Seed: 9}.Collection(n)

		// Arbitrary bytes through the decoder: errors are expected, panics
		// are bugs — including panics deferred to the first query over a
		// garbage index that happened to decode.
		if ix, err := Decode(data, base, Options{Workers: 1}); err == nil {
			if _, _, err := ix.Search(base.At(0), 0); err != nil {
				t.Errorf("search over decoded index errored: %v", err)
			}
			ix.Close()
		}

		// Round-trip an index with a non-empty, split delta buffer derived
		// from the fuzz input.
		ix, err := Build(base, core.Config{Segments: 8, LeafCapacity: 16},
			Options{Workers: 1, MergeThreshold: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		appends := 2 + len(data)%7
		merged := appends / 2
		s := make(series.Series, length)
		for a := 0; a < appends; a++ {
			for j := range s {
				b := byte(a*length + j)
				if len(data) > 0 {
					b = data[(a*length+j)%len(data)]
				}
				s[j] = float32(int8(b)) / 8
			}
			if _, err := ix.Append(s); err != nil {
				t.Fatal(err)
			}
			if a == merged-1 {
				ix.Flush() // part of the buffer merged, the rest pending
			}
		}
		if ix.Pending() == 0 {
			t.Fatal("fuzz setup: delta buffer unexpectedly empty")
		}

		enc := ix.Encode()
		ix2, err := Decode(enc, base, Options{Workers: 1})
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		defer ix2.Close()
		if ix2.Count() != ix.Count() || ix2.Pending() != ix.Pending() {
			t.Fatalf("round-trip shape: count %d/%d pending %d/%d",
				ix2.Count(), ix.Count(), ix2.Pending(), ix.Pending())
		}
		if enc2 := ix2.Encode(); string(enc2) != string(enc) {
			t.Fatal("re-encode differs after round trip")
		}
		if err := ix2.Tree().CheckInvariants(); err != nil {
			t.Fatalf("decoded tree invariants: %v", err)
		}
		// One query through both copies, checked against a serial scan over
		// the decoded index's full content. Skip inputs that produced
		// non-finite values (the exactness claim needs finite arithmetic).
		live := liveCollection(ix2)
		q := base.At(0)
		finite := true
		for i := 0; i < live.Len() && finite; i++ {
			for _, v := range live.At(i) {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					finite = false
					break
				}
			}
		}
		if !finite {
			return
		}
		a, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ix2.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if a != b || b.Pos != want.Pos || b.Dist != want.Dist {
			t.Fatalf("round-trip answers diverge: %+v vs %+v vs serial %+v", a, b, want)
		}
	})
}
