package messi

import (
	"math"
	"math/rand"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/isax"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
	"dsidx/internal/vector"
)

// FuzzPersistRoundTrip drives the live persistence format from both ends:
// arbitrary bytes must never panic the decoder, and an index whose delta
// buffer holds fuzz-derived appends (part merged, part pending) must
// round-trip through Encode/Decode into a byte-identical, answer-identical
// copy.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DSL1"))
	f.Add([]byte("DSL1\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("DSI1 not really an index"))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0x80, 0x00, 0xff, 0x7f, 0x41, 0x41, 0x41, 0x41})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n, length = 64, 32
		base := gen.Generator{Kind: gen.Synthetic, Length: length, Seed: 9}.Collection(n)

		// Arbitrary bytes through the decoder: errors are expected, panics
		// are bugs — including panics deferred to the first query over a
		// garbage index that happened to decode.
		if ix, err := Decode(data, base, Options{Workers: 1}); err == nil {
			if _, _, err := ix.Search(base.At(0), 0); err != nil {
				t.Errorf("search over decoded index errored: %v", err)
			}
			ix.Close()
		}

		// Round-trip an index with a non-empty, split delta buffer derived
		// from the fuzz input.
		ix, err := Build(base, core.Config{Segments: 8, LeafCapacity: 16},
			Options{Workers: 1, MergeThreshold: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		appends := 2 + len(data)%7
		merged := appends / 2
		s := make(series.Series, length)
		for a := 0; a < appends; a++ {
			for j := range s {
				b := byte(a*length + j)
				if len(data) > 0 {
					b = data[(a*length+j)%len(data)]
				}
				s[j] = float32(int8(b)) / 8
			}
			if _, err := ix.Append(s); err != nil {
				t.Fatal(err)
			}
			if a == merged-1 {
				ix.Flush() // part of the buffer merged, the rest pending
			}
		}
		if ix.Pending() == 0 {
			t.Fatal("fuzz setup: delta buffer unexpectedly empty")
		}

		enc := ix.Encode()
		ix2, err := Decode(enc, base, Options{Workers: 1})
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		defer ix2.Close()
		if ix2.Count() != ix.Count() || ix2.Pending() != ix.Pending() {
			t.Fatalf("round-trip shape: count %d/%d pending %d/%d",
				ix2.Count(), ix.Count(), ix2.Pending(), ix.Pending())
		}
		if enc2 := ix2.Encode(); string(enc2) != string(enc) {
			t.Fatal("re-encode differs after round trip")
		}
		if err := ix2.Tree().CheckInvariants(); err != nil {
			t.Fatalf("decoded tree invariants: %v", err)
		}
		// One query through both copies, checked against a serial scan over
		// the decoded index's full content. Skip inputs that produced
		// non-finite values (the exactness claim needs finite arithmetic).
		live := liveCollection(ix2)
		q := base.At(0)
		finite := true
		for i := 0; i < live.Len() && finite; i++ {
			for _, v := range live.At(i) {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					finite = false
					break
				}
			}
		}
		if !finite {
			return
		}
		a, _, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ix2.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ucr.Scan(live, q)
		if a != b || b.Pos != want.Pos || b.Dist != want.Dist {
			t.Fatalf("round-trip answers diverge: %+v vs %+v vs serial %+v", a, b, want)
		}
	})
}

// FuzzBatchedLowerBounds is the differential guarantee behind the batched
// refinement hot path: for random leaves (SAX blocks), cardinalities and
// segment counts, the batched kernel used by leaf refinement and the delta
// scans (vector.MinDistBatch — SIMD at w=16 where the CPU has it, generic
// otherwise) and the strided table form must produce bounds BIT-IDENTICAL
// to the per-entry QueryTable.MinDistSAX path — so batched and per-entry
// refinement make the same pruning decisions down to the last ulp, and the
// set of entries surviving any limit is the same. The batched bounds must
// also be bit-identical across implementations: a ForceScalar pass re-runs
// the kernel on the scalar oracle and compares.
func FuzzBatchedLowerBounds(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(8), uint8(64), false)
	f.Add(int64(2), uint8(16), uint8(3), uint8(1), true)
	f.Add(int64(3), uint8(4), uint8(1), uint8(255), false)
	f.Add(int64(4), uint8(7), uint8(5), uint8(17), true)
	f.Add(int64(5), uint8(32), uint8(8), uint8(9), false)

	f.Fuzz(func(t *testing.T, seed int64, wRaw, bitsRaw, cntRaw uint8, dtw bool) {
		w := 1 + int(wRaw)%32 // segments; 16 exercises the unrolled kernel
		maxBits := 1 + int(bitsRaw)%isax.MaxBits
		count := 1 + int(cntRaw) // leaf entries
		rng := rand.New(rand.NewSource(seed))

		quant, err := isax.NewQuantizer(maxBits)
		if err != nil {
			t.Fatal(err)
		}
		paaA := make([]float64, w)
		paaB := make([]float64, w)
		for j := range paaA {
			paaA[j] = rng.NormFloat64()
			paaB[j] = rng.NormFloat64()
		}
		n := w * (1 + rng.Intn(32)) // series length, a multiple of w
		table := &isax.QueryTable{}
		if dtw {
			// Envelope tables feed the same kernels; upper must dominate.
			for j := range paaA {
				if paaA[j] < paaB[j] {
					paaA[j], paaB[j] = paaB[j], paaA[j]
				}
			}
			table.FillDTW(quant, paaA, paaB, n)
		} else {
			table.FillED(quant, paaA, n)
		}

		// A random leaf: count full-cardinality summaries back-to-back.
		card := 1 << maxBits
		sax := make([]uint8, count*w)
		for i := range sax {
			sax[i] = uint8(rng.Intn(card))
		}

		perEntry := make([]float64, count)
		for i := 0; i < count; i++ {
			perEntry[i] = table.MinDistSAX(sax[i*w : (i+1)*w])
		}
		batched := make([]float64, count)
		vector.MinDistBatch(table.Cells(), sax, w, table.Card(), batched)
		strided := make([]float64, count)
		table.MinDistSAXStrided(sax, strided)
		for i := 0; i < count; i++ {
			if batched[i] != perEntry[i] {
				t.Fatalf("w=%d bits=%d entry %d: batched bound %v != per-entry %v",
					w, maxBits, i, batched[i], perEntry[i])
			}
			if strided[i] != perEntry[i] {
				t.Fatalf("w=%d bits=%d entry %d: strided bound %v != per-entry %v",
					w, maxBits, i, strided[i], perEntry[i])
			}
		}

		// SIMD and scalar implementations must agree bit for bit (on
		// machines without SIMD both passes run the oracle and this is
		// trivially true).
		vector.ForceScalar(true)
		scalarBounds := make([]float64, count)
		vector.MinDistBatch(table.Cells(), sax, w, table.Card(), scalarBounds)
		vector.ForceScalar(false)
		for i := 0; i < count; i++ {
			if math.Float64bits(scalarBounds[i]) != math.Float64bits(batched[i]) {
				t.Fatalf("w=%d bits=%d entry %d: %s bound %v != scalar bound %v",
					w, maxBits, i, vector.Impl(), batched[i], scalarBounds[i])
			}
		}

		// Same survivor set under a pruning limit drawn from the bounds
		// themselves (the adversarial spot: limits equal to a bound).
		limit := perEntry[rng.Intn(count)]
		for i := 0; i < count; i++ {
			if (batched[i] >= limit) != (perEntry[i] >= limit) {
				t.Fatalf("entry %d: batched and per-entry paths disagree on pruning at limit %v", i, limit)
			}
		}
	})
}
