package messi

// Live ingestion: Append/AppendBatch accept new series while queries run.
//
// The write path extends the ParIS+ split between buffer filling and tree
// construction into an always-on pipeline:
//
//   - Appends land in a delta buffer — stable chunked storage for raw
//     values plus each series' full-cardinality SAX summary, computed on
//     arrival. Publication is a single atomic count: a query that observes
//     count a sees the values and summaries of every appended series below
//     a (release/acquire on the counter), and nothing ever moves.
//   - Queries union the current tree snapshot's candidates with an exact
//     scan of the unmerged delta suffix (query.go), so every answer is
//     bit-identical to a serial scan of the prefix the query observed.
//   - When the unmerged suffix reaches Options.MergeThreshold, a background
//     merge is scheduled: a buffer-fill phase groups the pending summaries
//     by root subtree (workers claim blocks with Fetch&Inc, each filling
//     its own parts — the paper's footnote-2 design), then a tree-insert
//     phase clones each affected subtree aside, inserts the new entries,
//     and installs the results into a shell copy of the tree. Both phases
//     run as tasks on the index's shared worker pool. The merged snapshot
//     is swapped in atomically; in-flight queries keep the snapshot they
//     loaded and never observe a half-merged tree.
//
// Consistency guarantees, concretely: Append returns position p only after
// series ≤ p are visible; a query observes some prefix [0, T) with T at
// least the count published before the call; merges never change answers,
// only which data structure serves them.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"dsidx/internal/core"
	"dsidx/internal/series"
	"dsidx/internal/xsync"
)

// The saxLog field (a series.ChunkedRows of summary bytes) stores the
// on-arrival summaries of appended series aligned with the series store:
// row i is the summary of appended series i. Writers append under the
// index's ingest mutex; readers may access any row below a published
// appended count.

// Append adds one series to the index and returns its position. The series
// is summarized with SAX on arrival and becomes visible to queries before
// Append returns; a background merge folds it into the tree later. Safe for
// concurrent use with queries, other appends, Flush and Close.
func (ix *Index) Append(s series.Series) (int, error) {
	if len(s) != ix.cfg.SeriesLen {
		return 0, fmt.Errorf("messi: append length %d != %d", len(s), ix.cfg.SeriesLen)
	}
	ix.ingestMu.Lock()
	pos := ix.baseLen + int(ix.appended.Load())
	ix.ingestSM.Summarize(s, ix.ingestBf)
	ix.store.Append(s)
	ix.saxLog.Append(ix.ingestBf)
	ix.appended.Add(1) // publish: values and summary precede the count
	ix.ingestMu.Unlock()
	ix.maybeTune()
	ix.maybeScheduleMerge()
	return pos, nil
}

// AppendBatch adds a batch of series, returning the position of the first;
// the batch occupies consecutive positions and becomes visible atomically
// (a query sees either none or all of it).
func (ix *Index) AppendBatch(ss []series.Series) (int, error) {
	for i, s := range ss {
		if len(s) != ix.cfg.SeriesLen {
			return 0, fmt.Errorf("messi: append batch series %d length %d != %d",
				i, len(s), ix.cfg.SeriesLen)
		}
	}
	ix.ingestMu.Lock()
	start := ix.baseLen + int(ix.appended.Load())
	for _, s := range ss {
		ix.ingestSM.Summarize(s, ix.ingestBf)
		ix.store.Append(s)
		ix.saxLog.Append(ix.ingestBf)
	}
	ix.appended.Add(int64(len(ss)))
	ix.ingestMu.Unlock()
	ix.maybeTune()
	ix.maybeScheduleMerge()
	return start, nil
}

// Pending returns the number of appended series not yet merged into the
// tree (exact-scanned by queries in the meantime). Loading the snapshot
// before the counter keeps the result non-negative when racing a
// completing merge (mergedA never exceeds a count published before it).
func (ix *Index) Pending() int {
	mergedA := ix.snap.Load().mergedA
	return int(ix.appended.Load()) - mergedA
}

// IngestStats is a snapshot of the write path's counters. Snapshots are
// internally consistent even while appenders and merges run: on a
// freshly created index Appended == Merged + Pending holds exactly, on a
// loaded one Appended counts only post-load appends (so Merged + Pending
// - Appended is the restored count, a constant). The race-stress test in
// ingest_stats_test.go pins these invariants.
type IngestStats struct {
	// Appended counts series accepted by Append/AppendBatch since the index
	// was created (or loaded).
	Appended uint64
	// Pending is the current delta-buffer size: appended series the tree
	// does not cover yet.
	Pending int
	// Merged is the number of appended series the tree covers.
	Merged int
	// Merges counts completed merge cycles; MergeAborts counts merge
	// cycles abandoned because a merge task panicked (the panic is
	// contained and the previous snapshot keeps serving — a half-built
	// tree is never installed).
	Merges      uint64
	MergeAborts uint64
	// SnapshotSwaps counts atomically installed tree snapshots — merge
	// cycles that published a new tree.
	SnapshotSwaps uint64
	// MergeThreshold is the delta size that triggers a background merge —
	// the live value, which AutoTune may have moved off the configured one.
	MergeThreshold int
	// Live and Tombstoned split the served position space: Live series a
	// full search ranges over, Tombstoned positions deleted or TTL-expired
	// (tombstone.go). Their sum is the index Count().
	Live       int
	Tombstoned int
}

// IngestStats snapshots the write path's counters.
//
// Every field is derived from two loads — the snapshot pointer, then the
// published append count — in that order, so the arithmetic relations
// between Appended, Pending and Merged hold in every snapshot. (The
// previous implementation read an independent lifetime-appends counter
// first, which could run behind the published count it was compared
// against and make Appended < Merged + Pending under concurrent
// appends.)
func (ix *Index) IngestStats() IngestStats {
	snap := ix.snap.Load()
	a := ix.appended.Load() // after snap: a >= snap.mergedA
	tombstoned := ix.tombs.Load().count()
	return IngestStats{
		Appended:       uint64(a - ix.restored),
		Pending:        int(a) - snap.mergedA,
		Merged:         snap.mergedA,
		Merges:         ix.merges.Load(),
		MergeAborts:    ix.mergeAborts.Load(),
		SnapshotSwaps:  ix.snapSwaps.Load(),
		MergeThreshold: ix.mergeThresholdNow(),
		Live:           ix.baseLen + int(a) - tombstoned,
		Tombstoned:     tombstoned,
	}
}

// maybeScheduleMerge starts the background merge job if the delta has
// reached the threshold and no job is active. After Close the job cannot be
// scheduled (the engine refuses background work during shutdown); the delta
// keeps absorbing appends and Flush remains available.
func (ix *Index) maybeScheduleMerge() {
	if ix.Pending() < ix.mergeThresholdNow() {
		return
	}
	if !ix.merging.CompareAndSwap(false, true) {
		return
	}
	if !ix.eng.Go(ix.backgroundMerge) {
		ix.merging.Store(false)
	}
}

// backgroundMerge drains the delta while it stays above the threshold. The
// deactivate-recheck loop closes the window where an append lands after the
// last merge but before the active flag drops, which would otherwise strand
// a full delta with no scheduled job. The job also exits as soon as the
// engine starts closing: Close waits for background jobs, and a sustained
// append stream could otherwise keep Pending above the threshold forever
// and deadlock the shutdown; whatever remains in the delta stays exactly
// searchable and mergeable via Flush.
func (ix *Index) backgroundMerge() {
	for {
		for ix.Pending() >= ix.mergeThresholdNow() && !ix.eng.Closing() {
			if !ix.mergeOnce() {
				// A merge task panicked; the cycle was aborted without
				// installing anything. Give up this job instead of
				// hot-looping on a persistent failure — the next append
				// (or Flush) schedules a fresh attempt.
				ix.merging.Store(false)
				return
			}
		}
		ix.merging.Store(false)
		if ix.eng.Closing() || ix.Pending() < ix.mergeThresholdNow() ||
			!ix.merging.CompareAndSwap(false, true) {
			return
		}
	}
}

// Flush merges every series appended before the call into the tree,
// synchronously. Concurrent appends may leave new pending series behind;
// concurrent background merges are coordinated with, not duplicated. A
// merge cycle aborted by a contained task panic stops the Flush early —
// the pending delta stays exactly searchable, and IngestStats.MergeAborts
// records the failure.
func (ix *Index) Flush() {
	target := int(ix.appended.Load())
	for ix.snap.Load().mergedA < target {
		if !ix.mergeOnce() {
			return
		}
	}
}

// mergeBlock is the buffer-fill work-claiming granularity in series.
const mergeBlock = 1024

// mergeOnce folds the published delta suffix into the tree: buffer-fill
// groups pending entries by root subtree, tree-insert rebuilds affected
// subtrees aside, and the new snapshot is installed atomically. Merges are
// serialized; queries are never blocked — they either hold the old
// snapshot or pick up the new one on their next call.
//
// It reports whether the cycle completed. A panic in either phase's tasks
// is contained at the Group boundary; the cycle is then aborted before the
// snapshot install — the half-built tree is discarded, the previous
// snapshot keeps serving, the delta stays exact-searchable — and
// MergeAborts is bumped.
func (ix *Index) mergeOnce() bool {
	ix.mergeMu.Lock()
	defer ix.mergeMu.Unlock()
	old := ix.snap.Load()
	total := int(ix.appended.Load())
	lo := old.mergedA
	if lo >= total {
		return true // a concurrent mergeOnce already covered this suffix
	}
	// One tombstone snapshot for the whole cycle: rebuilt subtrees drop
	// entries it marks, and marked pending entries are not inserted. Bits
	// set after this load stay in the published set — queries filter them —
	// so a racing Delete loses nothing.
	tombs := ix.tombs.Load()
	pending := total - lo
	blocks := xsync.Blocks(pending, mergeBlock)
	workers := min(ix.eng.Workers(), len(blocks))

	// Phase 1 — buffer fill (ParIS+ stage 1): workers claim blocks of the
	// delta suffix with Fetch&Inc and group positions by root key into
	// their own parts; no synchronization on the buffers themselves.
	parts := make([]map[uint32][]int32, workers)
	var cursor xsync.Counter
	g := ix.eng.NewGroup()
	for wk := 0; wk < workers; wk++ {
		wk := wk
		g.Submit(func() {
			mine := make(map[uint32][]int32, 64)
			for {
				bi := cursor.Next()
				if int(bi) >= len(blocks) {
					break
				}
				blk := blocks[bi]
				for i := blk.Lo; i < blk.Hi; i++ {
					ai := int32(lo + i)
					key := old.tree.RootKey(ix.saxLog.At(int(ai)))
					mine[key] = append(mine[key], ai)
				}
			}
			parts[wk] = mine
		})
	}
	g.Wait()
	if g.Err() != nil {
		ix.mergeAborts.Add(1)
		return false
	}

	keySet := make(map[uint32]struct{}, 64)
	for _, part := range parts {
		for key := range part {
			keySet[key] = struct{}{}
		}
	}
	keys := make([]uint32, 0, len(keySet))
	for key := range keySet {
		keys = append(keys, key)
	}
	// Sorted claim order keeps serial merges deterministic (see the same
	// step in Build): newly created subtrees land in the occupied list in
	// key order, so equivalent indexes keep encoding identically.
	slices.Sort(keys)

	// Phase 2 — tree insert (ParIS+ stage 2): workers claim affected root
	// keys with Fetch&Inc; each clones the old subtree aside, inserts the
	// new entries, and installs the result into a shell copy of the tree.
	// Untouched subtrees are shared between the old and new snapshot. On a
	// materialized index the inserts carry each merged series' raw values
	// into the destination leaf (and through any splits), so leaf-ordered
	// storage survives merge cycles: a refined leaf streams its merged-in
	// entries exactly like its build-time ones.
	next := old.tree.CloneShell()
	var keyCursor xsync.Counter
	g = ix.eng.NewGroup()
	for wk := 0; wk < min(ix.eng.Workers(), len(keys)); wk++ {
		g.Submit(func() {
			for {
				ki := keyCursor.Next()
				if int(ki) >= len(keys) {
					return
				}
				key := keys[ki]
				if tombs.count() > 0 {
					// Rebuilding anyway — drop tombstoned entries from the
					// copy (deletes compact for free on subtrees merges
					// touch; Compact sweeps the rest).
					next.SetSubtree(key, old.tree.CloneSubtreeFiltered(key, tombs.has))
				} else {
					next.SetSubtree(key, old.tree.Subtree(key).Clone())
				}
				for _, part := range parts {
					for _, ai := range part[key] {
						if tombs.has(int32(ix.baseLen) + ai) {
							continue // deleted while pending: never enters the tree
						}
						if ix.opt.DisableLeafRaw {
							next.SubtreeInsert(key, ix.saxLog.At(int(ai)), int32(ix.baseLen)+ai)
						} else {
							next.SubtreeInsertRaw(key, ix.saxLog.At(int(ai)), int32(ix.baseLen)+ai,
								ix.store.At(int(ai)))
						}
					}
				}
			}
		})
	}
	g.Wait()
	if g.Err() != nil {
		// A tree-insert task panicked: next may hold half-inserted
		// subtrees. Installing it would serve silently wrong answers —
		// dropping it serves the previous snapshot, still exact.
		ix.mergeAborts.Add(1)
		return false
	}

	// No summary copying: the flat SAX rows of the merged prefix stay in
	// baseSAX and the saxLog, both immutable below the published counts;
	// Encode materializes a flat array from them on demand.
	ix.snap.Store(&snapshot{tree: next, mergedA: total})
	ix.snapSwaps.Add(1)
	ix.merges.Add(1)
	return true
}

// Index persistence ("DSL1" live format): the core DSI1 blob (tree + SAX
// array over base + merged appends) wrapped with the append store, so the
// delta buffer — merged or not — survives Save/Load. The base collection is
// still not included and must be supplied again to Decode; appended series
// ARE included, because they exist nowhere else.
//
//	magic "DSL1", u32 version=1
//	u64 appended (A), u64 mergedA (≤ A)
//	u64 blobLen, blob (core DSI1 index over baseLen+mergedA series)
//	A × seriesLen float32 LE appended values
//	A × segments appended summary bytes
//
// An index with no appended series encodes as a bare DSI1 blob,
// byte-compatible with files written before live ingestion existed; Decode
// accepts both.

const (
	liveMagic   = "DSL1"
	liveVersion = 1
)

// Encode serializes the index — tree, SAX array and the append store (its
// raw values and summaries) — so the delta buffer survives Save/Load. The
// base collection is not included and must be supplied again to Decode.
// Encode never stalls appenders: the snapshot load is consistent on its
// own, loading the published count after it guarantees a ≥ mergedA, and
// every store/log row below that count is immutable, so concurrent appends
// simply fall outside this save. Delete/TTL state is read under its own
// short mutex and wraps the result in a DST1 envelope (tombstone.go) only
// when non-empty, so indexes without deletes keep their legacy encoding.
func (ix *Index) Encode() []byte {
	inner := ix.encodeLive()
	ix.tombMu.Lock()
	tombs := ix.tombs.Load()
	ttls := slices.Clone(ix.ttls)
	ix.tombMu.Unlock()
	if tombs.count() == 0 && len(ttls) == 0 {
		return inner
	}
	// Canonical TTL order: equivalent delete states encode identically no
	// matter the SetTTL call order (positions are unique in ttls).
	slices.SortFunc(ttls, func(a, b ttlEntry) int { return int(a.pos) - int(b.pos) })
	var buf bytes.Buffer
	buf.WriteString(tombMagic)
	_ = binary.Write(&buf, binary.LittleEndian, uint32(tombVersion))
	pos := tombs.positions() // ascending
	_ = binary.Write(&buf, binary.LittleEndian, uint32(len(pos)))
	for _, p := range pos {
		_ = binary.Write(&buf, binary.LittleEndian, uint32(p))
	}
	_ = binary.Write(&buf, binary.LittleEndian, uint32(len(ttls)))
	for _, e := range ttls {
		_ = binary.Write(&buf, binary.LittleEndian, uint32(e.pos))
		_ = binary.Write(&buf, binary.LittleEndian, uint64(e.deadline))
	}
	_ = binary.Write(&buf, binary.LittleEndian, uint64(len(inner)))
	buf.Write(inner)
	return buf.Bytes()
}

// encodeLive is the pre-delete encoding: the DSL1 live wrapper, or a bare
// DSI1 blob when nothing was ever appended.
func (ix *Index) encodeLive() []byte {
	snap := ix.snap.Load()
	a := int(ix.appended.Load())
	w := ix.cfg.Segments
	// Materialize the flat SAX array of the merged prefix for the core
	// blob: the base collection's summaries followed by the merged slice of
	// the append log. This is the only place that needs the flat form, so
	// merges never copy summary data.
	data := make([]uint8, (ix.baseLen+snap.mergedA)*w)
	copy(data, ix.baseSAX.Data)
	for i := 0; i < snap.mergedA; i++ {
		copy(data[(ix.baseLen+i)*w:], ix.saxLog.At(i))
	}
	blob := core.EncodeIndex(snap.tree, &core.SAXArray{W: w, Data: data})
	if a == 0 {
		return blob
	}
	var buf bytes.Buffer
	buf.WriteString(liveMagic)
	_ = binary.Write(&buf, binary.LittleEndian, uint32(liveVersion))
	_ = binary.Write(&buf, binary.LittleEndian, uint64(a))
	_ = binary.Write(&buf, binary.LittleEndian, uint64(snap.mergedA))
	_ = binary.Write(&buf, binary.LittleEndian, uint64(len(blob)))
	buf.Write(blob)
	vals := make([]byte, 4*ix.cfg.SeriesLen)
	for i := 0; i < a; i++ {
		s := ix.store.At(i)
		for j, v := range s {
			binary.LittleEndian.PutUint32(vals[4*j:], math.Float32bits(v))
		}
		buf.Write(vals)
	}
	for i := 0; i < a; i++ {
		buf.Write(ix.saxLog.At(i))
	}
	return buf.Bytes()
}

// Decode reconstructs an index from Encode output over the same base
// collection it was built from — the same Reader shape too: an index built
// through a position-remapping view decodes through the replayed view, so
// loading is as zero-copy as building. The append store and the
// merged/pending split are restored exactly as saved.
func Decode(data []byte, coll series.Reader, opt Options) (*Index, error) {
	opt = opt.normalize()
	inner, tombPos, ttls, err := splitTomb(data)
	if err != nil {
		return nil, err
	}
	blob, tail, a, mergedA, err := splitLive(inner)
	if err != nil {
		return nil, err
	}
	tree, sax, err := core.DecodeIndex(blob)
	if err != nil {
		return nil, fmt.Errorf("messi: %w", err)
	}
	cfg := tree.Config()
	if cfg.SeriesLen != coll.SeriesLen() {
		return nil, fmt.Errorf("messi: index is for length-%d series, collection has %d",
			cfg.SeriesLen, coll.SeriesLen())
	}
	if sax.Len() != coll.Len()+mergedA {
		return nil, fmt.Errorf("messi: index covers %d series, collection has %d (+%d merged appends)",
			sax.Len(), coll.Len(), mergedA)
	}
	valBytes := a * cfg.SeriesLen * 4
	if len(tail) != valBytes+a*cfg.Segments {
		return nil, fmt.Errorf("messi: corrupt append store: %d bytes for %d series of length %d",
			len(tail), a, cfg.SeriesLen)
	}
	vals, sums := tail[:valBytes], tail[valBytes:]
	// Summary symbols index per-query lookup tables of 2^MaxBits cells, so
	// an out-of-range byte in a corrupt file must fail here, not panic in
	// the first delta scan.
	for i, s := range sums {
		if int(s) >= 1<<cfg.MaxBits {
			return nil, fmt.Errorf("messi: corrupt append store: summary %d symbol %d exceeds cardinality %d",
				i/cfg.Segments, s, 1<<cfg.MaxBits)
		}
	}
	ix := &Index{cfg: cfg, opt: opt, raw: coll}
	ix.store = series.NewChunked(cfg.SeriesLen, 0)
	ix.saxLog = series.NewChunkedRows[uint8](cfg.Segments, 0)
	s := make(series.Series, cfg.SeriesLen)
	for i := 0; i < a; i++ {
		base := i * cfg.SeriesLen * 4
		for j := 0; j < cfg.SeriesLen; j++ {
			s[j] = math.Float32frombits(binary.LittleEndian.Uint32(vals[base+4*j:]))
		}
		ix.store.Append(s)
		ix.saxLog.Append(sums[i*cfg.Segments : (i+1)*cfg.Segments])
	}
	ix.appended.Store(int64(a))
	ix.restored = int64(a) // IngestStats.Appended counts post-load appends only
	// The serialized form carries no leaf raw blocks (values exist in the
	// collection and append store already, and the format predates the
	// layout) — rebuild leaf-ordered storage from them, resolving merged
	// append positions through the restored store. One linear pass at load
	// time buys every query the sequential refinement layout.
	if !opt.DisableLeafRaw {
		for _, key := range tree.OccupiedKeys() {
			tree.Subtree(key).MaterializeLeaves(cfg.SeriesLen, func(pos int32) []float32 {
				if int(pos) < coll.Len() {
					return coll.At(int(pos))
				}
				return ix.store.At(int(pos) - coll.Len())
			})
		}
	}
	// Restore delete/TTL state before the index can merge or serve: the
	// envelope's positions must land inside the restored position space.
	if len(tombPos) > 0 || len(ttls) > 0 {
		limit := coll.Len() + a
		ts := (*tombSet)(nil).clone(limit)
		for _, p := range tombPos {
			if int(p) >= limit {
				return nil, corruptf("messi: tombstone position %d outside %d series", p, limit)
			}
			ts.set(p)
		}
		for _, e := range ttls {
			if int(e.pos) >= limit {
				return nil, corruptf("messi: ttl position %d outside %d series", e.pos, limit)
			}
		}
		if ts.n > 0 {
			ix.tombs.Store(ts)
		}
		ix.ttls = ttls
	}
	// The decoded flat SAX array covers base + merged appends; the index
	// keeps only the immutable base prefix (merged summaries live in the
	// saxLog, re-appended above).
	baseSAX := &core.SAXArray{W: cfg.Segments, Data: sax.Data[:coll.Len()*cfg.Segments]}
	ix.initLive(tree, baseSAX, mergedA)
	// A restored delta may already exceed the threshold; without this, a
	// read-only workload would pay the full delta scan forever (merges are
	// otherwise only scheduled from the append path).
	ix.maybeScheduleMerge()
	return ix, nil
}

// splitLive separates a serialized index into its core blob and the append
// store's raw bytes (values followed by summaries — split by the caller
// once the blob's config is known). Bare DSI1 blobs pass through unchanged
// with an empty append store.
func splitLive(data []byte) (blob, tail []byte, appended, mergedA int, err error) {
	if !bytes.HasPrefix(data, []byte(liveMagic)) {
		return data, nil, 0, 0, nil
	}
	const header = 4 + 4 + 8 + 8 + 8
	if len(data) < header {
		return nil, nil, 0, 0, fmt.Errorf("messi: truncated live index header (%d bytes)", len(data))
	}
	version := binary.LittleEndian.Uint32(data[4:])
	if version != liveVersion {
		return nil, nil, 0, 0, fmt.Errorf("messi: unsupported live index version %d", version)
	}
	a := binary.LittleEndian.Uint64(data[8:])
	merged := binary.LittleEndian.Uint64(data[16:])
	blobLen := binary.LittleEndian.Uint64(data[24:])
	rest := uint64(len(data) - header)
	if blobLen > rest || merged > a || a > rest {
		return nil, nil, 0, 0, fmt.Errorf("messi: corrupt live index header (a=%d merged=%d blob=%d of %d)",
			a, merged, blobLen, rest)
	}
	blob = data[header : header+int(blobLen)]
	return blob, data[header+int(blobLen):], int(a), int(merged), nil
}

// splitTomb peels the optional DST1 delete/TTL envelope (tombstone.go) off a
// serialized index. Files without the envelope — every file written before
// deletes existed, and every current file with no delete state — pass
// through unchanged with zero tombstones. All structural failures wrap
// storage.ErrCorrupt; position range checks against the restored series
// count happen in Decode once the inner image is parsed.
func splitTomb(data []byte) (inner []byte, tombs []int32, ttls []ttlEntry, err error) {
	if !bytes.HasPrefix(data, []byte(tombMagic)) {
		return data, nil, nil, nil
	}
	off := len(tombMagic)
	u32 := func(what string) (uint32, error) {
		if len(data)-off < 4 {
			return 0, corruptf("messi: truncated tombstone envelope at %s", what)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	u64 := func(what string) (uint64, error) {
		if len(data)-off < 8 {
			return 0, corruptf("messi: truncated tombstone envelope at %s", what)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	version, err := u32("version")
	if err != nil {
		return nil, nil, nil, err
	}
	if version != tombVersion {
		return nil, nil, nil, corruptf("messi: unsupported tombstone envelope version %d", version)
	}
	tombCount, err := u32("tombstone count")
	if err != nil {
		return nil, nil, nil, err
	}
	if uint64(tombCount)*4 > uint64(len(data)-off) {
		return nil, nil, nil, corruptf("messi: tombstone count %d exceeds envelope size", tombCount)
	}
	tombs = make([]int32, tombCount)
	for i := range tombs {
		p, _ := u32("tombstone position")
		if int64(p) > int64(1)<<30 {
			return nil, nil, nil, corruptf("messi: tombstone position %d out of range", p)
		}
		if i > 0 && int32(p) <= tombs[i-1] {
			return nil, nil, nil, corruptf("messi: tombstone positions not strictly ascending at %d", p)
		}
		tombs[i] = int32(p)
	}
	ttlCount, err := u32("ttl count")
	if err != nil {
		return nil, nil, nil, err
	}
	if uint64(ttlCount)*12 > uint64(len(data)-off) {
		return nil, nil, nil, corruptf("messi: ttl count %d exceeds envelope size", ttlCount)
	}
	ttls = make([]ttlEntry, ttlCount)
	for i := range ttls {
		p, _ := u32("ttl position")
		d, _ := u64("ttl deadline")
		if int64(p) > int64(1)<<30 {
			return nil, nil, nil, corruptf("messi: ttl position %d out of range", p)
		}
		if i > 0 && int32(p) <= ttls[i-1].pos {
			return nil, nil, nil, corruptf("messi: ttl positions not strictly ascending at %d", p)
		}
		ttls[i] = ttlEntry{pos: int32(p), deadline: int64(d)}
	}
	innerLen, err := u64("inner length")
	if err != nil {
		return nil, nil, nil, err
	}
	if innerLen != uint64(len(data)-off) {
		return nil, nil, nil, corruptf("messi: tombstone envelope inner length %d, %d bytes remain",
			innerLen, len(data)-off)
	}
	return data[off:], tombs, ttls, nil
}
