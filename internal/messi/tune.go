package messi

// Self-tuning (Options.AutoTune): the first feedback loop closed over
// the metrics layer. The index watches its own query/append mix and
// moves the two workload-sensitive knobs — ProbeLeaves and
// MergeThreshold — between bounds derived from their configured values.
//
// The safety argument is structural, not empirical: ProbeLeaves only
// decides how many leaves seed the best-so-far before the exact phase
// (any seed yields the same exact answer, just different pruning work),
// and MergeThreshold only decides when the delta buffer folds into the
// tree (queries exact-scan the delta either way). Neither knob can
// change an answer, so tuning is invisible to correctness — the
// conformance harness randomly enables AutoTune on every run and
// compares bit-identically against the serial oracle to keep it that
// way.

const (
	// tuneWindow is the retune cadence in operations (queries + appends).
	// Power of two so the trigger is a mask, not a division.
	tuneWindow = 256

	// Knob bounds: live values stay within a 4x band of the configured
	// ones (and inside the absolute limits), so a pathological window can
	// never run the knobs to extremes.
	maxProbeLeaves    = 8
	minMergeThreshold = 64
	maxMergeThreshold = 1 << 18
)

// probeLeavesNow is the live probe count queries read; mergeThresholdNow
// is the live threshold the merge scheduler reads. Without AutoTune both
// stay at the configured values for the index's lifetime.
func (ix *Index) probeLeavesNow() int    { return int(ix.probeLive.Load()) }
func (ix *Index) mergeThresholdNow() int { return int(ix.mergeLive.Load()) }

// Tuning is a snapshot of the self-tuning state.
type Tuning struct {
	AutoTune       bool   // whether the feedback loop is active
	ProbeLeaves    int    // live probe count (== configured when !AutoTune)
	MergeThreshold int    // live merge threshold
	Adjustments    uint64 // knob changes applied since creation
}

// Tuning snapshots the live knob values and the adjustment count.
func (ix *Index) Tuning() Tuning {
	return Tuning{
		AutoTune:       ix.opt.AutoTune,
		ProbeLeaves:    ix.probeLeavesNow(),
		MergeThreshold: ix.mergeThresholdNow(),
		Adjustments:    ix.tuneAdjusts.Load(),
	}
}

// maybeTune is called once per query and once per append (batch); every
// tuneWindow-th call runs a retune over the window's traffic. The fast
// path is one atomic add and a mask test.
func (ix *Index) maybeTune() {
	if !ix.opt.AutoTune {
		return
	}
	if ix.tuneOps.Add(1)%tuneWindow != 0 {
		return
	}
	ix.retune()
}

// retune classifies the last window's query/append mix and moves the
// live knobs toward the matching operating point:
//
//   - query-heavy (>=4 queries per append): probe more leaves — a
//     tighter best-so-far seed prunes more of the tree, which pays off
//     when queries dominate — and merge the delta sooner, since the
//     per-query delta-scan tax is being paid often.
//   - append-heavy (>=4 appends per query): probe the minimum and let
//     the delta grow larger before merging, trading rare-query latency
//     for fewer merge cycles in the write path.
//   - mixed: return to the configured values.
//
// Adjustments move knobs directly to the target (the targets are already
// bounded), so oscillation is bounded by the window cadence.
func (ix *Index) retune() {
	ix.tuneMu.Lock()
	defer ix.tuneMu.Unlock()
	q := ix.searches.Load()
	a := uint64(ix.appended.Load())
	dq, da := q-ix.lastQ, a-ix.lastA
	ix.lastQ, ix.lastA = q, a

	cfgProbe, cfgMerge := ix.opt.ProbeLeaves, ix.opt.MergeThreshold
	probe, merge := cfgProbe, cfgMerge
	switch {
	case dq >= 4*da:
		probe = min(cfgProbe+2, maxProbeLeaves)
		merge = max(cfgMerge/4, minMergeThreshold)
	case da >= 4*dq:
		probe = max(cfgProbe-1, 1)
		merge = min(cfgMerge*4, maxMergeThreshold)
	}
	if int32(probe) != ix.probeLive.Load() {
		ix.probeLive.Store(int32(probe))
		ix.tuneAdjusts.Add(1)
	}
	if int32(merge) != ix.mergeLive.Load() {
		ix.mergeLive.Store(int32(merge))
		ix.tuneAdjusts.Add(1)
		// A lowered threshold may make the current delta instantly
		// over-threshold; the scheduler only runs from the append path,
		// so kick it here too.
		ix.maybeScheduleMerge()
	}
}
