package messi

// Concurrency suite for the shared-worker-pool query engine. Run with
// -race; the stress tests are the acceptance gate for multi-query serving:
// ≥64 simultaneous Search/SearchKNN/SearchDTW calls against one index, with
// every answer compared bit-for-bit against the serial internal/ucr
// brute-force ground truth. Equality can be exact (not tolerance-based)
// because the index and the serial scans share one distance kernel: a
// winner is never early-abandoned, so every system computes the identical
// floating-point sum for it (see ucr.Scan).

import (
	"sync"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
)

const (
	stressQueries = 64
	stressKNNK    = 5
	stressWindow  = 8
)

// stressWorkload builds one index plus serial ground truth for a mixed
// ED/kNN/DTW query set. Queries are perturbed collection members so the
// pruning regime matches dense collections (see gen.PerturbedQueries).
type stressWorkload struct {
	coll    *series.Collection
	queries *series.Collection
	ix      *Index
	nn      []ucr.Result   // ground truth for kind 0 (1-NN ED)
	knn     [][]ucr.Result // ground truth for kind 1 (k-NN ED)
	dtw     []ucr.Result   // ground truth for kind 2 (1-NN DTW)
}

func newStressWorkload(t *testing.T, n int) *stressWorkload {
	t.Helper()
	g := gen.Generator{Kind: gen.Synthetic, Length: 128, Seed: 404}
	coll := g.Collection(n)
	queries := g.PerturbedQueries(coll, stressQueries, 0.05)
	ix, err := Build(coll, core.Config{LeafCapacity: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ix.Close)
	w := &stressWorkload{coll: coll, queries: queries, ix: ix,
		nn:  make([]ucr.Result, queries.Len()),
		knn: make([][]ucr.Result, queries.Len()),
		dtw: make([]ucr.Result, queries.Len()),
	}
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		switch i % 3 {
		case 0:
			w.nn[i] = ucr.Scan(coll, q)
		case 1:
			w.knn[i] = ucr.ScanKNN(coll, q, stressKNNK)
		case 2:
			w.dtw[i] = ucr.ScanDTW(coll, q, stressWindow)
		}
	}
	return w
}

// checkQuery runs query i through the index (concurrently with others) and
// compares against ground truth bit-for-bit.
func (w *stressWorkload) checkQuery(t *testing.T, i int) {
	q := w.queries.At(i)
	switch i % 3 {
	case 0:
		got, _, err := w.ix.Search(q, 0)
		if err != nil {
			t.Errorf("query %d: %v", i, err)
			return
		}
		want := w.nn[i]
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Errorf("query %d (1-NN): got (#%d, %v), serial scan says (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	case 1:
		got, _, err := w.ix.SearchKNN(q, stressKNNK, 0)
		if err != nil {
			t.Errorf("query %d: %v", i, err)
			return
		}
		want := w.knn[i]
		if len(got) != len(want) {
			t.Errorf("query %d (k-NN): %d results, want %d", i, len(got), len(want))
			return
		}
		for r := range want {
			if got[r].Pos != want[r].Pos || got[r].Dist != want[r].Dist {
				t.Errorf("query %d (k-NN) rank %d: got (#%d, %v), serial scan says (#%d, %v)",
					i, r, got[r].Pos, got[r].Dist, want[r].Pos, want[r].Dist)
			}
		}
	case 2:
		got, _, err := w.ix.SearchDTW(q, stressWindow, 0)
		if err != nil {
			t.Errorf("query %d: %v", i, err)
			return
		}
		want := w.dtw[i]
		if got.Pos != want.Pos || got.Dist != want.Dist {
			t.Errorf("query %d (DTW): got (#%d, %v), serial scan says (#%d, %v)",
				i, got.Pos, got.Dist, want.Pos, want.Dist)
		}
	}
}

func TestConcurrentStress64(t *testing.T) {
	// 64 goroutines firing mixed Search/SearchKNN/SearchDTW at one index at
	// once — all query phases from all queries interleave on the shared
	// pool. Every answer must equal the serial brute-force answer exactly.
	w := newStressWorkload(t, 4000)
	var wg sync.WaitGroup
	for i := 0; i < w.queries.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w.checkQuery(t, i)
		}(i)
	}
	wg.Wait()
	if st := w.ix.EngineStats(); st.Tasks == 0 {
		t.Error("no tasks executed on the shared pool — queries did not use it")
	}
}

func TestConcurrentStressRepeated(t *testing.T) {
	// Several waves over the same index: scratch buffers recycle between
	// waves, so reuse bugs (stale tables, unreset queues) surface as wrong
	// answers in later waves.
	w := newStressWorkload(t, 2000)
	for wave := 0; wave < 3; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < w.queries.Len(); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w.checkQuery(t, i)
			}(i)
		}
		wg.Wait()
	}
}

func TestBatchSearchMatchesSerial(t *testing.T) {
	w := newStressWorkload(t, 3000)
	qs := make([]series.Series, w.queries.Len())
	for i := range qs {
		qs[i] = w.queries.At(i)
	}
	got, err := w.ix.BatchSearch(qs)
	if err != nil {
		t.Fatal(err)
	}
	st := w.ix.EngineStats() // snapshot before the serial re-runs below
	for i := range qs {
		want, _, err := w.ix.Search(qs[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Pos != want.Pos || got[i].Dist != want.Dist {
			t.Fatalf("batch result %d: (#%d, %v) != serial (#%d, %v)",
				i, got[i].Pos, got[i].Dist, want.Pos, want.Dist)
		}
	}
	if st.Queries != uint64(len(qs)) {
		t.Errorf("engine counted %d queries, want %d", st.Queries, len(qs))
	}
	if st.PeakInFlight > w.ix.MaxInFlight() {
		t.Errorf("peak in-flight %d exceeds admission bound %d", st.PeakInFlight, w.ix.MaxInFlight())
	}
}

func TestBatchSearchReportsQueryError(t *testing.T) {
	w := newStressWorkload(t, 1000)
	bad := make(series.Series, 3) // wrong length
	if _, err := w.ix.BatchSearch([]series.Series{w.queries.At(0), bad}); err == nil {
		t.Fatal("batch with a wrong-length query returned no error")
	}
}

func TestSearchAfterCloseStillExact(t *testing.T) {
	// Close degrades the pool to inline execution; answers must not change.
	w := newStressWorkload(t, 1500)
	w.ix.Close()
	w.ix.Close() // idempotent
	for i := 0; i < 6; i++ {
		w.checkQuery(t, i)
	}
}

func TestConcurrentWorkerCountsAgree(t *testing.T) {
	// The per-call worker knob (the paper's scaling axis) must not change
	// answers, concurrent or not.
	w := newStressWorkload(t, 2000)
	var wg sync.WaitGroup
	for _, workers := range []int{1, 2, 4, 99} {
		for i := 0; i < 12; i += 3 {
			wg.Add(1)
			go func(i, workers int) {
				defer wg.Done()
				got, _, err := w.ix.Search(w.queries.At(i), workers)
				if err != nil {
					t.Errorf("workers=%d: %v", workers, err)
					return
				}
				want := w.nn[i]
				if got.Pos != want.Pos || got.Dist != want.Dist {
					t.Errorf("workers=%d query %d: (#%d, %v) != (#%d, %v)",
						workers, i, got.Pos, got.Dist, want.Pos, want.Dist)
				}
			}(i, workers)
		}
	}
	wg.Wait()
}
