package messi

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
)

// verifyLeafRaw asserts every leaf of the index's current tree is
// materialized and that each entry's raw block is bit-identical to the
// series its position resolves to — the alignment the refinement hot path
// depends on.
func verifyLeafRaw(t *testing.T, ix *Index) {
	t.Helper()
	n := ix.cfg.SeriesLen
	leaves, entries := 0, 0
	ix.Tree().VisitLeaves(func(leaf *core.Node) {
		leaves++
		if leaf.Raw == nil {
			t.Fatalf("leaf %v not materialized", leaf.Word)
		}
		if len(leaf.Raw) != leaf.Count*n {
			t.Fatalf("leaf %v: %d raw values for %d entries", leaf.Word, len(leaf.Raw), leaf.Count)
		}
		for i, p := range leaf.Pos {
			entries++
			want := ix.At(int(p))
			got := leaf.Raw[i*n : (i+1)*n]
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("leaf %v entry %d (pos %d) raw[%d] = %v, want %v",
						leaf.Word, i, p, j, got[j], want[j])
				}
			}
		}
	})
	if leaves == 0 {
		t.Fatal("tree has no leaves")
	}
	_ = entries
}

func TestLeafRawAlignedAfterBuild(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 1500)
	ix := build(t, coll, 8)
	defer ix.Close()
	verifyLeafRaw(t, ix)
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafRawSurvivesMergeCycle(t *testing.T) {
	// A live-ingest merge must preserve leaf-ordered storage for the
	// merged-in series: after the delta folds into the tree, every leaf —
	// including leaves that were split or newly created by the merge —
	// holds its entries' raw values contiguously.
	g := gen.Generator{Kind: gen.Synthetic, Seed: 77}
	coll := g.Collection(800)
	extra := g.Queries(300)
	ix, err := Build(coll, core.Config{LeafCapacity: 16}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < extra.Len(); i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Flush()
	if got := ix.IngestStats().Merged; got != extra.Len() {
		t.Fatalf("merged %d of %d appends", got, extra.Len())
	}
	verifyLeafRaw(t, ix)
	merged := 0
	ix.Tree().VisitLeaves(func(leaf *core.Node) {
		for _, p := range leaf.Pos {
			if int(p) >= coll.Len() {
				merged++
			}
		}
	})
	if merged != extra.Len() {
		t.Fatalf("tree holds %d merged-in positions, want %d", merged, extra.Len())
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafRawRebuiltAfterDecode(t *testing.T) {
	// The serialized formats (DSI1/DSL1) carry no raw blocks; Decode must
	// rebuild the layout from the collection and the restored append
	// store, for merged and pending appends alike.
	g := gen.Generator{Kind: gen.Synthetic, Seed: 78}
	coll := g.Collection(600)
	extra := g.Queries(120)
	ix, err := Build(coll, core.Config{LeafCapacity: 16},
		Options{Workers: 2, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < extra.Len(); i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
		if i == extra.Len()/2 {
			ix.Flush() // half merged, half pending
		}
	}
	ix2, err := Decode(ix.Encode(), coll, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	verifyLeafRaw(t, ix2)

	// And with materialization disabled, Decode leaves the tree bare.
	ix3, err := Decode(ix.Encode(), coll, Options{Workers: 2, DisableLeafRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix3.Close()
	ix3.Tree().VisitLeaves(func(leaf *core.Node) {
		if leaf.Raw != nil {
			t.Fatalf("leaf %v materialized despite DisableLeafRaw", leaf.Word)
		}
	})
}

func TestLeafMaterializationAnswerEquivalence(t *testing.T) {
	// The layout is a pure memory-access optimization: materialized and
	// positional indexes must return bit-identical answers for every
	// search flavor, with live appends in the mix.
	g := gen.Generator{Kind: gen.SALD, Seed: 79}
	coll := g.Collection(1200)
	queries := g.Queries(6)
	extra := g.PerturbedQueries(coll, 64, 0.1)
	variants := make([]*Index, 2)
	for i, disable := range []bool{false, true} {
		ix, err := Build(coll, core.Config{LeafCapacity: 32},
			Options{Workers: 4, MergeThreshold: 48, DisableLeafRaw: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		for j := 0; j < extra.Len(); j++ {
			if _, err := ix.Append(extra.At(j)); err != nil {
				t.Fatal(err)
			}
		}
		ix.Flush()
		variants[i] = ix
	}
	mat, pos := variants[0], variants[1]
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		a, _, err := mat.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := pos.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: ED answers diverge: %+v vs %+v", qi, a, b)
		}
		ka, _, err := mat.SearchKNN(q, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		kb, _, err := pos.SearchKNN(q, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ka {
			if math.Abs(ka[i].Dist-kb[i].Dist) > 0 {
				t.Fatalf("query %d rank %d: kNN dists diverge: %v vs %v", qi, i, ka[i].Dist, kb[i].Dist)
			}
		}
		da, _, err := mat.SearchDTW(q, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		db, _, err := pos.SearchDTW(q, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatalf("query %d: DTW answers diverge: %+v vs %+v", qi, da, db)
		}
	}
}

func TestMultiProbePruningRegression(t *testing.T) {
	// Multi-probe BSF seeding exists to cut refinement work; this guards
	// the balance. On the standard test workload the default probe count
	// must not compute more raw distances than the classic single-probe
	// seed — a probe-count regression (or a probe phase that re-pays
	// probed leaves) would show up here as extra distances.
	g := gen.Generator{Kind: gen.Synthetic, Seed: 71}
	coll := g.Collection(20_000)
	queries := g.Queries(12)
	perturbed := g.PerturbedQueries(coll, 12, 0.05)

	sum := func(ix *Index) (raw int) {
		for _, qs := range []*series.Collection{queries, perturbed} {
			for i := 0; i < qs.Len(); i++ {
				_, st, err := ix.Search(qs.At(i), 1)
				if err != nil {
					t.Fatal(err)
				}
				raw += st.RawDistances
			}
		}
		return raw
	}

	single, err := Build(coll, core.Config{}, Options{Workers: 1, ProbeLeaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	multi, err := Build(coll, core.Config{}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	if multi.opt.ProbeLeaves <= 1 {
		t.Fatalf("default ProbeLeaves = %d, want multi-probe", multi.opt.ProbeLeaves)
	}

	baseline := sum(single)
	got := sum(multi)
	t.Logf("raw distances: single-probe %d, default %d-probe %d", baseline, multi.opt.ProbeLeaves, got)
	if got > baseline {
		t.Fatalf("multi-probe computed %d raw distances, single-probe baseline %d — pruning regressed",
			got, baseline)
	}

	// Multi-probe must also report its probes and keep answers identical.
	q := queries.At(0)
	a, st, err := multi.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ProbeLeaves != multi.opt.ProbeLeaves {
		t.Fatalf("ProbeLeaves stat %d, want %d", st.ProbeLeaves, multi.opt.ProbeLeaves)
	}
	b, _, err := single.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("answers diverge across probe counts: %+v vs %+v", a, b)
	}
}

func TestBatchSearchStatsMatchesSearch(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 1000)
	ix := build(t, coll, 4)
	defer ix.Close()
	qs := make([]series.Series, queries.Len())
	for i := range qs {
		qs[i] = queries.At(i)
	}
	results, stats, err := ix.BatchSearchStats(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) || len(stats) != len(qs) {
		t.Fatalf("%d results, %d stats for %d queries", len(results), len(stats), len(qs))
	}
	for i, q := range qs {
		want, wantSt, err := ix.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Fatalf("query %d: batch %+v vs direct %+v", i, results[i], want)
		}
		if stats[i].Observed != wantSt.Observed || stats[i].Observed != coll.Len() {
			t.Fatalf("query %d: Observed %d, want %d", i, stats[i].Observed, coll.Len())
		}
		if stats[i].RawDistances <= 0 || stats[i].EntriesChecked <= 0 {
			t.Fatalf("query %d: empty stats %+v", i, stats[i])
		}
		// Probes are capped by the leaves reachable from the query's root
		// subtree, so shallow subtrees may yield fewer than the configured
		// count.
		if stats[i].ProbeLeaves < 1 || stats[i].ProbeLeaves > ix.opt.ProbeLeaves {
			t.Fatalf("query %d: ProbeLeaves %d outside [1,%d]", i, stats[i].ProbeLeaves, ix.opt.ProbeLeaves)
		}
	}
}
