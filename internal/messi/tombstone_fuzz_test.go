package messi

// Fuzz and regression coverage for the DST1 tombstone/TTL persistence
// envelope (tombstone.go, ingest.go): round trips must be byte-identical,
// corrupt or truncated envelopes must surface as typed storage.ErrCorrupt,
// and the decoder must never panic. Legacy trailer-less images (written
// before deletes existed, or by an index with no delete state) must load
// with zero tombstones and byte-identical re-encoding.

import (
	"bytes"
	"errors"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
)

// tombFuzzIndex builds a small index with a split delta buffer and applies
// the delete/TTL pattern encoded in the two masks, returning the index, the
// full content mirror, and the dead-set oracle.
func tombFuzzIndex(t *testing.T, delMask, ttlMask uint16) (*Index, *gen.Generator, map[int]bool) {
	t.Helper()
	const n, appends, length = 48, 8, 32
	g := &gen.Generator{Kind: gen.Synthetic, Length: length, Seed: 23}
	base := g.Collection(n)
	ix, err := Build(base, core.Config{Segments: 8, LeafCapacity: 16},
		Options{Workers: 1, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ix.Close)
	extra := g.Collection(n + appends)
	for i := n; i < n+appends; i++ {
		if _, err := ix.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := n + appends
	dead := map[int]bool{}
	for i := 0; i < 16; i++ {
		pos := (i*7 + 3) % count
		if delMask&(1<<i) != 0 {
			if _, err := ix.Delete(pos); err != nil {
				t.Fatal(err)
			}
			dead[pos] = true
		}
		if ttlMask&(1<<i) != 0 {
			if err := ix.SetTTL(pos, int64(i)+5); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ix, g, dead
}

func FuzzTombstonePersist(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(0), uint8(0))
	f.Add([]byte{}, uint16(0xffff), uint16(0), uint8(5))
	f.Add([]byte{}, uint16(0), uint16(0xffff), uint8(9))
	f.Add([]byte{1, 2, 3}, uint16(0x5a5a), uint16(0xa5a5), uint8(30))
	f.Add([]byte("DST1"), uint16(1), uint16(2), uint8(60))
	f.Add([]byte("DST1\x01\x00\x00\x00\xff\xff\xff\xff"), uint16(7), uint16(0), uint8(120))

	f.Fuzz(func(t *testing.T, data []byte, delMask, ttlMask uint16, cut uint8) {
		// Arbitrary bytes forced under the envelope magic: parsing may fail
		// (with the typed corruption error when it fails in the envelope)
		// but must never panic, and anything that decodes must be servable.
		garbage := append([]byte(tombMagic), data...)
		gBase := gen.Generator{Kind: gen.Synthetic, Length: 32, Seed: 23}.Collection(48)
		if ix, err := Decode(garbage, gBase, Options{Workers: 1}); err == nil {
			if _, _, err := ix.Search(gBase.At(0), 0); err != nil {
				t.Errorf("search over decoded garbage index errored: %v", err)
			}
			ix.Close()
		}

		ix, g, dead := tombFuzzIndex(t, delMask, ttlMask)
		enc := ix.Encode()

		// Zero delete state must encode exactly as a legacy trailer-less
		// image; any delete state must wear the envelope.
		hasEnvelope := bytes.HasPrefix(enc, []byte(tombMagic))
		if (delMask|ttlMask == 0) == hasEnvelope {
			t.Fatalf("delMask=%04x ttlMask=%04x: envelope present=%v", delMask, ttlMask, hasEnvelope)
		}

		// Round trip: byte-identical re-encode, identical delete state,
		// identical answers against the live-scan oracle.
		base := g.Collection(48)
		mirror := g.Collection(48 + 8)
		ix2, err := Decode(enc, base, Options{Workers: 1})
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		defer ix2.Close()
		if enc2 := ix2.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatal("re-encode differs after round trip")
		}
		if ix2.Tombstoned() != len(dead) {
			t.Fatalf("round trip dropped tombstones: %d, want %d", ix2.Tombstoned(), len(dead))
		}
		q := base.At(1)
		isDead := func(p int) bool { return dead[p] }
		want := ucr.ScanLive(mirror, q, 0, isDead)
		for which, x := range []*Index{ix, ix2} {
			got, _, err := x.Search(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != core.Result(want) {
				t.Fatalf("index %d: got (#%d, %v), serial live scan says (#%d, %v)",
					which, got.Pos, got.Dist, want.Pos, want.Dist)
			}
		}
		// Pending TTLs survived: expiring everything tombstones the same
		// positions on both sides.
		if n1, n2 := ix.ExpireBefore(1<<40), ix2.ExpireBefore(1<<40); n1 != n2 {
			t.Fatalf("expire after round trip: %d on original, %d on copy", n1, n2)
		}
		if ix.Tombstoned() != ix2.Tombstoned() {
			t.Fatalf("post-expire tombstones: %d vs %d", ix.Tombstoned(), ix2.Tombstoned())
		}

		if !hasEnvelope {
			return
		}
		// Truncation anywhere past the magic keeps the envelope shape but
		// breaks the inner-length accounting: the typed corruption error,
		// never a panic, never a silent partial load.
		at := 4 + int(cut)%(len(enc)-4)
		if _, err := Decode(enc[:at], base, Options{Workers: 1}); !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("truncation at %d of %d: got %v, want storage.ErrCorrupt", at, len(enc), err)
		}
		// Single byte flips inside the envelope trailer (before the inner
		// image) must either fail cleanly or decode into a servable index.
		for i, b := range data {
			if i >= 4 {
				break
			}
			mut := bytes.Clone(enc)
			off := 4 + (int(b)+i)%(len(enc)-4)
			mut[off] ^= 1 + b
			if mx, err := Decode(mut, base, Options{Workers: 1}); err == nil {
				if _, _, err := mx.Search(q, 0); err != nil {
					t.Errorf("flip at %d: search over decoded mutant errored: %v", off, err)
				}
				mx.Close()
			}
		}
	})
}

// TestTombstonePersistLegacy pins backward compatibility from both ends: a
// delete-free index encodes with no DST1 envelope (bit-identical to images
// written before deletes existed), and such a trailer-less image loads with
// zero tombstones, no pending TTLs, and unchanged answers.
func TestTombstonePersistLegacy(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: 32, Seed: 31}
	base := g.Collection(64)
	ix, err := Build(base, core.Config{Segments: 8, LeafCapacity: 16},
		Options{Workers: 1, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	mirror := g.Collection(64 + 4)
	for i := 64; i < 64+4; i++ {
		if _, err := ix.Append(mirror.At(i)); err != nil {
			t.Fatal(err)
		}
	}

	enc := ix.Encode()
	if bytes.HasPrefix(enc, []byte(tombMagic)) {
		t.Fatal("delete-free index encoded with a tombstone envelope")
	}
	ix2, err := Decode(enc, base, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Tombstoned() != 0 {
		t.Fatalf("legacy image loaded %d tombstones", ix2.Tombstoned())
	}
	if n := ix2.ExpireBefore(1 << 40); n != 0 {
		t.Fatalf("legacy image loaded %d pending TTLs", n)
	}
	q := base.At(2)
	want := ucr.Scan(mirror, q)
	got, _, err := ix2.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != core.Result(want) {
		t.Fatalf("legacy load: got (#%d, %v), serial scan says (#%d, %v)",
			got.Pos, got.Dist, want.Pos, want.Dist)
	}
	if enc2 := ix2.Encode(); !bytes.Equal(enc, enc2) {
		t.Fatal("legacy image re-encodes differently")
	}

	// The delete state round-trips independently of it: deleting on the
	// loaded copy and re-encoding produces the envelope, and stripping it
	// back out recovers a loadable inner image.
	if _, err := ix2.Delete(3); err != nil {
		t.Fatal(err)
	}
	enc3 := ix2.Encode()
	if !bytes.HasPrefix(enc3, []byte(tombMagic)) {
		t.Fatal("deleted index encoded without a tombstone envelope")
	}
	ix3, err := Decode(enc3, base, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ix3.Close()
	if ix3.Tombstoned() != 1 {
		t.Fatalf("envelope round trip: %d tombstones, want 1", ix3.Tombstoned())
	}
}
