package messi

// Race-detector stress suite for the mutation surface added with deletes:
// concurrent deleters and appenders against mixed exact/kNN/DTW/window
// readers, with every answer verified post hoc against serial scans.
//
// Verification model: appends land as a monotone prefix and each deleter
// kills a disjoint arithmetic progression of positions in order, so a
// reader's pre/post snapshots (landed count n1..n2, per-deleter progress
// c1..c2) bound the set of states its query could have observed. When the
// snapshots agree (no concurrent movement), the answer must be bit-identical
// to ucr.ScanLive over that exact state. When they differ, the answer must
// be (a) a valid series: landed by n2, not yet deleted at c1, distance
// recomputed with the shared kernel equal bit-for-bit, and (b) minimal:
// no position that was certainly live for the whole query (landed before
// n1, still alive at c2) may beat it. Both sides of the comparison use the
// same distance kernels as the index, so equality is exact, not
// tolerance-based (see ucr.Scan).

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
	"dsidx/internal/vector"
)

const (
	delStressBase     = 1200 // series in the built base
	delStressExtra    = 400  // series appended concurrently
	delStressDeleters = 2    // each kills a disjoint arithmetic progression
	delStressReaders  = 8
	delStressKNNK     = 5
	delStressDTWWin   = 8
)

// delStressIters is per reader; the suite must stay viable on a single
// CPU under -race, so -short trims the query count, not the concurrency.
func delStressIters() int {
	if testing.Short() {
		return 8
	}
	return 20
}

// delObs is one reader observation: the pre/post snapshots bracketing a
// query plus its answer, verified serially after all goroutines join.
type delObs struct {
	kind   int // 0 = 1-NN ED, 1 = k-NN ED, 2 = 1-NN DTW, 3 = window ED
	qi     int
	winN   int // window size (kind 3 only)
	n1, n2 int
	c1, c2 [delStressDeleters]int
	res    []core.Result
}

// delDeadAt reports whether position p is deleted once each deleter d has
// completed c[d] deletes of its progression p ≡ d (mod delStressDeleters).
func delDeadAt(p int, c [delStressDeleters]int) bool {
	return p/delStressDeleters < c[p%delStressDeleters]
}

func TestConcurrentDeleteStress(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: 64, Seed: 1109}
	mirror := g.Collection(delStressBase + delStressExtra)
	base := series.NewCollection(0, mirror.SeriesLen())
	for i := 0; i < delStressBase; i++ {
		base.Append(mirror.At(i))
	}
	queries := g.PerturbedQueries(mirror, 64, 0.05)

	ix, err := Build(base, core.Config{LeafCapacity: 64}, Options{MergeThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	var (
		landed  atomic.Int64 // series visible: positions [0, landed)
		delProg [delStressDeleters]atomic.Int64
		done    atomic.Bool
		wg      sync.WaitGroup
	)
	landed.Store(delStressBase)

	// Appender: lands the remaining mirror suffix one at a time, flushing
	// periodically so delta merges run concurrently with the deleters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < delStressExtra; i++ {
			gpos := delStressBase + i
			p, err := ix.Append(mirror.At(gpos))
			if err != nil {
				t.Error(err)
				return
			}
			if p != gpos {
				t.Errorf("append landed at %d, want %d", p, gpos)
				return
			}
			landed.Store(int64(gpos + 1))
			if i%200 == 199 {
				ix.Flush()
			}
		}
	}()

	// Deleters: deleter d tombstones base positions d, d+D, d+2D, ... in
	// order, publishing progress only after each Delete returns.
	for d := 0; d < delStressDeleters; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for p := d; p < delStressBase/2; p += delStressDeleters {
				newly, err := ix.Delete(p)
				if err != nil {
					t.Error(err)
					return
				}
				if !newly {
					t.Errorf("delete #%d reported already-dead on first delete", p)
					return
				}
				delProg[p%delStressDeleters].Add(1)
			}
		}(d)
	}

	// Compactor: sweeps tombstones into the trees while everything runs.
	// The sweep rebuilds filtered subtrees, so it is paced rather than
	// spun — on one CPU a tight loop would starve the readers. It joins
	// on its own WaitGroup: it stops on done, which is only set after the
	// workers join, so parking it in wg would deadlock wg.Wait.
	var compWG sync.WaitGroup
	compWG.Add(1)
	go func() {
		defer compWG.Done()
		for !done.Load() {
			ix.Compact()
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Readers: mixed query kinds with pre/post snapshots, verified below.
	iters := delStressIters()
	obsCh := make(chan delObs, delStressReaders*iters)
	for r := 0; r < delStressReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (r*iters + it) % queries.Len()
				q := queries.At(qi)
				o := delObs{kind: (r + it) % 4, qi: qi}
				o.n1 = int(landed.Load())
				for d := range o.c1 {
					o.c1[d] = int(delProg[d].Load())
				}
				switch o.kind {
				case 0:
					res, _, err := ix.Search(q, 0)
					if err != nil {
						t.Error(err)
						return
					}
					o.res = []core.Result{res}
				case 1:
					res, _, err := ix.SearchKNN(q, delStressKNNK, 0)
					if err != nil {
						t.Error(err)
						return
					}
					o.res = res
				case 2:
					res, _, err := ix.SearchDTW(q, delStressDTWWin, 0)
					if err != nil {
						t.Error(err)
						return
					}
					o.res = []core.Result{res}
				case 3:
					o.winN = 64 + 97*it
					res, _, err := ix.SearchWindow(q, o.winN, 0)
					if err != nil {
						t.Error(err)
						return
					}
					o.res = []core.Result{res}
				}
				// Post-snapshots in the reverse order of the pre-snapshots,
				// so each counter's true value during the query lies inside
				// its recorded interval.
				for d := range o.c2 {
					o.c2[d] = int(delProg[d].Load())
				}
				o.n2 = int(landed.Load())
				obsCh <- o
			}
		}(r)
	}

	wg.Wait()
	done.Store(true)
	compWG.Wait()
	close(obsCh)

	quiescent := 0
	for o := range obsCh {
		if verifyDelObs(t, mirror, queries, o) {
			quiescent++
		}
	}
	if quiescent == 0 {
		t.Error("no observation had quiescent snapshots — exact-state branch never exercised")
	}
	if ix.Tombstoned() != delStressBase/2 {
		t.Errorf("tombstoned %d, want %d", ix.Tombstoned(), delStressBase/2)
	}
	if ix.Live() != delStressBase/2+delStressExtra {
		t.Errorf("live %d, want %d", ix.Live(), delStressBase/2+delStressExtra)
	}
}

// verifyDelObs checks one observation and reports whether it hit the exact
// quiescent-state branch.
func verifyDelObs(t *testing.T, mirror, queries *series.Collection, o delObs) bool {
	t.Helper()
	q := queries.At(o.qi)

	// Exact branch: no counter moved during the query, so the observed
	// state is unique and the answer must be bit-identical to the serial
	// scan over it.
	if o.n1 == o.n2 && o.c1 == o.c2 {
		dead := func(p int) bool { return p >= o.n1 || delDeadAt(p, o.c1) }
		switch o.kind {
		case 0:
			want := ucr.ScanLive(mirror, q, 0, dead)
			if o.res[0] != core.Result(want) {
				t.Errorf("query %d (1-NN, quiescent): got (#%d, %v), serial scan says (#%d, %v)",
					o.qi, o.res[0].Pos, o.res[0].Dist, want.Pos, want.Dist)
			}
		case 1:
			want := ucr.ScanLiveKNN(mirror, q, delStressKNNK, 0, dead)
			if len(o.res) != len(want) {
				t.Errorf("query %d (k-NN, quiescent): %d results, want %d", o.qi, len(o.res), len(want))
				break
			}
			for r := range want {
				if o.res[r] != core.Result(want[r]) {
					t.Errorf("query %d (k-NN, quiescent) rank %d: got (#%d, %v), serial scan says (#%d, %v)",
						o.qi, r, o.res[r].Pos, o.res[r].Dist, want[r].Pos, want[r].Dist)
				}
			}
		case 2:
			want := ucr.ScanLiveDTW(mirror, q, delStressDTWWin, 0, dead)
			if o.res[0] != core.Result(want) {
				t.Errorf("query %d (DTW, quiescent): got (#%d, %v), serial scan says (#%d, %v)",
					o.qi, o.res[0].Pos, o.res[0].Dist, want.Pos, want.Dist)
			}
		case 3:
			want := ucr.ScanLive(mirror, q, o.n1-o.winN, dead)
			if o.res[0] != core.Result(want) {
				t.Errorf("query %d (window %d, quiescent): got (#%d, %v), serial scan says (#%d, %v)",
					o.qi, o.winN, o.res[0].Pos, o.res[0].Dist, want.Pos, want.Dist)
			}
		}
		return true
	}

	// Concurrent branch. certain(p): landed before the query began and
	// never deleted by the time it ended — visible and live throughout.
	certain := func(p int) bool { return p < o.n1 && !delDeadAt(p, o.c2) }

	for r, res := range o.res {
		if res.Pos < 0 {
			continue
		}
		p := int(res.Pos)
		if p >= o.n2 {
			t.Errorf("query %d: answered #%d, only %d series had landed", o.qi, p, o.n2)
			return false
		}
		if delDeadAt(p, o.c1) {
			t.Errorf("query %d: answered #%d, deleted before the query began", o.qi, p)
			return false
		}
		if o.kind == 3 && p < o.n1-o.winN {
			t.Errorf("query %d: window %d answered #%d, below every possible cut", o.qi, o.winN, p)
			return false
		}
		var d float64
		if o.kind == 2 {
			d = series.DTW(q, mirror.At(p), delStressDTWWin, math.Inf(1))
		} else {
			d = vector.SquaredEDEarlyAbandon(q, mirror.At(p), math.Inf(1))
		}
		if d != res.Dist {
			t.Errorf("query %d: answer #%d reports dist %v, kernel says %v", o.qi, p, res.Dist, d)
			return false
		}
		if r > 0 && (res.Dist < o.res[r-1].Dist || res.Pos == o.res[r-1].Pos) {
			t.Errorf("query %d (k-NN): rank %d (#%d, %v) out of order after (#%d, %v)",
				o.qi, r, res.Pos, res.Dist, o.res[r-1].Pos, o.res[r-1].Dist)
			return false
		}
	}

	// Minimality: nothing certainly visible and live may beat the answer.
	switch o.kind {
	case 0, 2:
		got := o.res[0]
		limit := got.Dist
		if got.Pos < 0 {
			limit = math.Inf(1)
		}
		var env *series.Envelope
		if o.kind == 2 {
			env = series.NewEnvelope(q, delStressDTWWin)
		}
		for p := 0; p < o.n1; p++ {
			if !certain(p) {
				continue
			}
			var d float64
			if o.kind == 2 {
				if lb := series.LBKeogh(env, mirror.At(p), limit); lb >= limit {
					continue
				}
				d = series.DTW(q, mirror.At(p), delStressDTWWin, limit)
			} else {
				d = vector.SquaredEDEarlyAbandon(q, mirror.At(p), limit)
			}
			if d < limit {
				t.Errorf("query %d: certainly-live #%d at dist %v beats the answer (%v)", o.qi, p, d, limit)
				return false
			}
		}
	case 1:
		inRes := make(map[int32]bool, len(o.res))
		for _, r := range o.res {
			inRes[r.Pos] = true
		}
		limit := math.Inf(1)
		if len(o.res) == delStressKNNK {
			limit = o.res[len(o.res)-1].Dist
		}
		for p := 0; p < o.n1; p++ {
			if !certain(p) || inRes[int32(p)] {
				continue
			}
			if d := vector.SquaredEDEarlyAbandon(q, mirror.At(p), limit); d < limit {
				t.Errorf("query %d (k-NN): certainly-live #%d at dist %v beats the returned set (worst %v)",
					o.qi, p, d, limit)
				return false
			}
		}
	case 3:
		// Positions inside the window at every possible cut.
		got := o.res[0]
		limit := got.Dist
		if got.Pos < 0 {
			limit = math.Inf(1)
		}
		for p := o.n2 - o.winN; p < o.n1; p++ {
			if p < 0 || !certain(p) {
				continue
			}
			if d := vector.SquaredEDEarlyAbandon(q, mirror.At(p), limit); d < limit {
				t.Errorf("query %d (window %d): certainly-in-window #%d at dist %v beats the answer (%v)",
					o.qi, o.winN, p, d, limit)
				return false
			}
		}
	}
	return false
}

func TestCloseDuringCompaction(t *testing.T) {
	// Close must be safe to race against Compact, Delete, and queries:
	// no panic, no deadlock, and answers stay exact afterwards on the
	// degraded inline engine.
	g := gen.Generator{Kind: gen.Synthetic, Length: 64, Seed: 2218}
	coll := g.Collection(1200)
	ix, err := Build(coll, core.Config{LeafCapacity: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := g.PerturbedQueries(coll, 1, 0.05).At(0)

	var wg sync.WaitGroup
	var done atomic.Bool
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !done.Load(); i += 3 {
				if i < coll.Len()/2 {
					if _, err := ix.Delete(i); err != nil {
						t.Error(err)
						return
					}
				}
				ix.Compact()
				if _, _, err := ix.Search(q, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	ix.Close()
	ix.Close() // idempotent, racing the workers too
	time.Sleep(time.Millisecond)
	done.Store(true)
	wg.Wait()

	// Post-close: delete the first half entirely, compact, and verify the
	// inline engine still answers bit-exactly over the live suffix.
	if _, err := ix.DeleteRange(0, coll.Len()/2); err != nil {
		t.Fatal(err)
	}
	ix.Compact()
	dead := func(p int) bool { return p < coll.Len()/2 }
	want := ucr.ScanLive(coll, q, 0, dead)
	got, _, err := ix.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != core.Result(want) {
		t.Fatalf("post-close search: got (#%d, %v), serial scan says (#%d, %v)",
			got.Pos, got.Dist, want.Pos, want.Dist)
	}
}
