package messi

import (
	"math"
	"sync"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
)

func TestSearchApproximateUpperBoundsExact(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 1000)
	ix := build(t, coll, 8)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		approx, err := ix.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := ix.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if approx.Pos < 0 {
			t.Fatalf("query %d: approximate returned no answer", qi)
		}
		if approx.Dist < exact.Dist-1e-9 {
			t.Fatalf("query %d: approximate %v below exact %v", qi, approx.Dist, exact.Dist)
		}
		// The reported distance must be real.
		if d := series.SquaredED(q, coll.At(int(approx.Pos))); math.Abs(d-approx.Dist) > 1e-9 {
			t.Fatalf("query %d: approximate pos %d has dist %v, claimed %v",
				qi, approx.Pos, d, approx.Dist)
		}
	}
}

func TestSearchApproximateQualityOnPerturbedQueries(t *testing.T) {
	// For a query that is a perturbed dataset member, the approximate
	// answer should usually BE the exact answer (the regime the paper's
	// approximate searches live in).
	g := gen.Generator{Kind: gen.Synthetic, Seed: 71}
	coll := g.Collection(2000)
	queries := g.PerturbedQueries(coll, 20, 0.05)
	ix := build(t, coll, 8)
	hits := 0
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		approx, err := ix.SearchApproximate(q)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := ix.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(approx.Dist-exact.Dist) < 1e-9 {
			hits++
		}
	}
	if hits < queries.Len()/2 {
		t.Errorf("approximate matched exact on only %d/%d perturbed queries", hits, queries.Len())
	}
}

func TestSearchApproximateValidation(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 50)
	ix := build(t, coll, 2)
	if _, err := ix.SearchApproximate(make(series.Series, 5)); err == nil {
		t.Error("mismatched query length accepted")
	}
	empty, err := Build(series.NewCollection(0, 256), core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := empty.SearchApproximate(make(series.Series, 256))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pos != -1 {
		t.Error("empty index should return no result")
	}
}

func TestConcurrentMixedSearches(t *testing.T) {
	// Exact, approximate, kNN and DTW searches share the index read-only;
	// they must coexist under the race detector.
	coll, queries := dataset(t, gen.Synthetic, 600)
	ix := build(t, coll, 4)
	var wg sync.WaitGroup
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		wg.Add(4)
		go func() { defer wg.Done(); _, _, _ = ix.Search(q, 2) }()
		go func() { defer wg.Done(); _, _ = ix.SearchApproximate(q) }()
		go func() { defer wg.Done(); _, _, _ = ix.SearchKNN(q, 3, 2) }()
		go func() { defer wg.Done(); _, _, _ = ix.SearchDTW(q, 8, 2) }()
	}
	wg.Wait()
}

func TestSharedBuffersBuildEquivalence(t *testing.T) {
	// The footnote-2 ablation variant must index the identical entry set.
	coll, queries := dataset(t, gen.SALD, 800)
	def, err := Build(coll, core.Config{LeafCapacity: 32}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Build(coll, core.Config{LeafCapacity: 32}, Options{Workers: 8, SharedBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	if def.Tree().Count() != shared.Tree().Count() {
		t.Fatalf("counts differ: %d vs %d", def.Tree().Count(), shared.Tree().Count())
	}
	if err := shared.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		a, _, err := def.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := shared.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Dist-b.Dist) > 1e-9 {
			t.Fatalf("query %d: %v != %v", qi, a.Dist, b.Dist)
		}
	}
}
