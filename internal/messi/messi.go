// Package messi implements MESSI (paper §III, Figure 3), the first parallel
// in-memory data series index, extended into a live serving system.
//
// Index creation: the in-memory RawData array is split into fixed-size
// blocks; index workers claim blocks with Fetch&Inc and write each series'
// iSAX summary into the global SAX array, recording its position in the
// worker's own partition of the per-root-subtree iSAX buffer (each buffer
// is "split into parts and each worker works on its own part", eliminating
// synchronization — paper footnote 2). When all summaries exist, workers
// claim whole buffers with Fetch&Inc and build the corresponding subtrees
// independently (footnote 3).
//
// Query answering: a multi-probe approximate search (the Options.ProbeLeaves
// best leaves under the query's summary) seeds the shared BSF; workers
// then traverse distinct root subtrees, pruning by node-level lower bounds
// against the live BSF, and push surviving leaves — minus the already-probed
// ones — into a set of concurrent min-priority queues (round-robin, for load
// balancing). After the traversal, workers drain the queues in ascending
// lower-bound order: a popped leaf whose bound beats the BSF has its whole
// summary block lower-bounded in one batched pass (bit-identical to the
// per-entry bounds), then survivors pay an early-abandoning real distance
// read from the leaf's contiguous raw block (leaf-ordered storage, unless
// Options.DisableLeafRaw). When a queue's minimum is not below the BSF, the
// whole queue can never improve the answer and is abandoned. Compared to
// ParIS, the tree prunes *before* lower-bound computation and the queues
// order work best-first — the two effects behind Figure 12's speedups; the
// batched bounds and leaf-ordered reads give the refinement loop the
// sequential memory behavior the paper gets from SIMD over flat arrays.
//
// Live ingestion: the paper builds the index as a one-shot batch job; this
// implementation additionally accepts new series while queries run (see
// ingest.go). Appends land in a concurrent delta buffer, summarized with
// SAX on arrival; queries union the tree's candidates with an exact scan of
// the delta, so answers stay bit-identical to a serial scan of everything
// the query observed. A background merge — the ParIS+ buffer-fill /
// tree-insert split, run as tasks on the index's worker pool — folds the
// delta into a copied-aside version of the affected subtrees and swaps in
// the merged snapshot atomically, never blocking readers.
package messi

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/engine"
	"dsidx/internal/metrics"
	"dsidx/internal/series"
	"dsidx/internal/xsync"
)

// Options configures index creation and query answering.
type Options struct {
	// Workers is the number of index worker goroutines (the paper's
	// "number of cores"). 0 means GOMAXPROCS.
	Workers int
	// BlockSeries is the stage-1 chunk size in series (0 means 1024); small
	// blocks assigned with Fetch&Inc give the load balancing the paper
	// describes.
	BlockSeries int
	// QueueCount is the number of concurrent priority queues used by query
	// answering (0 means half the workers, minimum 1 — close to the paper's
	// tuning).
	QueueCount int
	// SharedBuffers selects the alternative stage-1 design the paper's
	// footnote 2 reports trying and rejecting: one lock-protected buffer
	// per root subtree shared by all workers, instead of per-worker buffer
	// parts. Kept for the ablation experiment; expect worse performance
	// under contention.
	SharedBuffers bool
	// MaxInFlight bounds the number of queries admitted simultaneously by
	// BatchSearch and the serving layer (0 means 2×Workers). Directly
	// invoked Search calls are not admission-controlled.
	MaxInFlight int
	// MergeThreshold is the delta-buffer size (in series) at which a
	// background merge into the tree is scheduled (0 means 4096). Queries
	// stay exact at any threshold — the delta is exact-scanned — so this
	// knob only trades merge frequency against per-query delta-scan cost.
	MergeThreshold int
	// ProbeLeaves is the number of leaves the approximate phase probes to
	// seed the best-so-far before exact search (0 means 2; 1 restores the
	// paper's single-leaf seed). More probes cost a few extra candidate
	// distances up front but tighten the BSF, so tree pruning discards
	// more of the index — the net raw-distance count must not grow, which
	// the pruning regression test enforces for the default.
	ProbeLeaves int
	// AutoTune lets the index adjust the live ProbeLeaves and
	// MergeThreshold values from the observed query/append mix (tune.go).
	// Tuning never changes answers: ProbeLeaves only affects how the
	// best-so-far is seeded before the exact phase, and MergeThreshold
	// only decides when the delta folds into the tree — both paths are
	// answer-invariant by construction, and the conformance harness
	// randomly enables tuning to enforce it.
	AutoTune bool
	// DisableLeafRaw turns off leaf-ordered raw storage. By default every
	// leaf keeps a contiguous copy of its series' values (filled at build,
	// carried through splits and live merges), so leaf refinement streams
	// sequential memory instead of chasing positions through the
	// collection — at the cost of one extra copy of the raw data.
	// Disabling trades that memory back for per-entry random reads.
	DisableLeafRaw bool
	// Engine attaches the index to an existing shared worker pool instead
	// of creating its own — how a sharding layer runs every shard's tasks
	// through one globally governed pool. The engine is retained for the
	// index's lifetime; Close releases only this index's reference, so the
	// pool survives until its last holder closes. When set, Workers and
	// MaxInFlight describe the shared pool (they do not size a new one).
	Engine *engine.Engine
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BlockSeries <= 0 {
		o.BlockSeries = 1024
	}
	if o.QueueCount <= 0 {
		o.QueueCount = max(1, o.Workers/2)
	}
	if o.MergeThreshold <= 0 {
		o.MergeThreshold = 4096
	}
	if o.ProbeLeaves <= 0 {
		o.ProbeLeaves = 2
	}
	return o
}

// BuildStats splits creation time into the two phases of Figure 5.
type BuildStats struct {
	Summarize time.Duration // stage 1: iSAX summary computation
	TreeBuild time.Duration // stage 2: subtree construction
	Total     time.Duration
}

// snapshot is one immutable version of the indexed state: a tree covering
// the base collection plus the first mergedA appended series. Queries load
// the current snapshot once and use it throughout, so a concurrent merge
// (which installs a new snapshot, never mutating a published one) is
// invisible to in-flight queries. The flat SAX rows backing the snapshot
// live outside it — baseSAX for the build-time collection, saxLog for
// appends — both immutable below the published counts, so snapshots stay
// two words and merges never copy summary data.
type snapshot struct {
	tree    *core.Tree
	mergedA int // appended series covered by the tree
}

// Index is a MESSI index over an in-memory collection, serving exact
// queries while accepting live appends.
//
// Query answering runs on a persistent, index-owned worker pool shared by
// every in-flight query (see internal/engine): Search, SearchKNN and
// SearchDTW may be called concurrently from any number of goroutines, and
// their traversal/refinement tasks interleave on the pool instead of
// spawning per-call goroutines. Append and AppendBatch (ingest.go) are safe
// concurrently with all of the above. Close releases the pool; an unclosed
// Index releases it when garbage-collected.
type Index struct {
	cfg     core.Config
	opt     Options
	raw     series.Reader // immutable base collection (flat or a view)
	baseLen int
	build   BuildStats

	// prefetch is non-nil when raw is device-backed (resolves a
	// series.Prefetcher through any view chain): the refinement path then
	// masks cold-leaf device reads behind distance computation (query.go).
	// Nil for RAM-resident collections — the hot path is untouched.
	prefetch func(pos []int32)

	// snap is the current tree snapshot; swapped whole by merges.
	snap atomic.Pointer[snapshot]

	// Live-ingestion state (ingest.go). store and saxLog hold appended
	// series (raw values and on-arrival summaries) in stable chunked
	// storage; appended is the published count gating reader visibility
	// into both. baseSAX holds the build-time collection's summaries,
	// immutable after construction.
	baseSAX     *core.SAXArray
	store       *series.Chunked
	saxLog      *series.ChunkedRows[uint8]
	appended    atomic.Int64
	ingestMu    sync.Mutex // serializes appenders
	ingestSM    *core.Summarizer
	ingestBf    []uint8
	mergeMu     sync.Mutex // serializes merges (background and Flush)
	merging     atomic.Bool
	merges      atomic.Uint64
	mergeAborts atomic.Uint64 // merge cycles abandoned after a contained task panic
	// restored is the appended count carried in from Decode, so
	// IngestStats.Appended counts only series accepted since this Index
	// was created or loaded. Written once before the index is shared.
	restored int64
	// snapSwaps counts snapshot installs (merge cycles that actually
	// published a new tree).
	snapSwaps atomic.Uint64

	// Delete/TTL state (tombstone.go). tombs is the published copy-on-write
	// tombstone set every search consults; tombMu serializes mutators and
	// guards ttls, the pending per-position expiry deadlines.
	tombs  atomic.Pointer[tombSet]
	tombMu sync.Mutex
	ttls   []ttlEntry

	// searches counts Shared-entry searches served by this index (for a
	// sharded index: this shard's sub-searches); queryDur is their
	// latency histogram. Both feed the metrics registry and the tuner.
	// searchFails counts searches that returned a contained-fault error
	// instead of an answer.
	searches    atomic.Uint64
	searchFails atomic.Uint64
	queryDur    *metrics.Histogram

	// Live tuning state (tune.go): the knob values queries and merges
	// actually read. They start at the configured options and move only
	// when Options.AutoTune is set.
	probeLive   atomic.Int32
	mergeLive   atomic.Int32
	tuneOps     atomic.Uint64 // queries+appends since creation, drives the retune cadence
	tuneAdjusts atomic.Uint64
	tuneMu      sync.Mutex // serializes retunes; guards lastQ/lastA
	lastQ       uint64
	lastA       uint64

	eng     *engine.Engine
	engRef  *engineRef
	scratch sync.Pool // *searchScratch, sized for cfg/opt
	lbPool  sync.Pool // *lbScratch, one per concurrently running task

	regOnce sync.Once
	reg     *metrics.Registry
}

// engineRef pairs the index's engine reference with a once, so Close and
// the garbage-collection cleanup release it exactly one time even when a
// shared pool (Options.Engine) is counting references across indexes.
type engineRef struct {
	eng  *engine.Engine
	once sync.Once
}

func (r *engineRef) release() { r.once.Do(r.eng.Close) }

// initLive gives a constructed index its ingestion state, worker pool and
// scratch pool, and arranges for the pool goroutines to be released if the
// index is garbage-collected without Close (experiments build thousands of
// short-lived indexes).
func (ix *Index) initLive(tree *core.Tree, baseSAX *core.SAXArray, mergedA int) {
	ix.baseLen = ix.raw.Len()
	ix.baseSAX = baseSAX
	if ix.store == nil {
		ix.store = series.NewChunked(ix.cfg.SeriesLen, 0)
		ix.saxLog = series.NewChunkedRows[uint8](ix.cfg.Segments, 0)
	}
	ix.ingestSM = core.NewSummarizer(ix.cfg, tree.Quantizer())
	ix.ingestBf = make([]uint8, ix.cfg.Segments)
	if pf, ok := series.ResolvePrefetcher(ix.raw); ok {
		// Leaf position lists mix base series with appended ones; only the
		// base lives behind ix.raw (appends stay in the in-RAM delta store),
		// so positions past baseLen are dropped before delegating.
		base := int32(ix.baseLen)
		ix.prefetch = func(pos []int32) {
			inBase := make([]int32, 0, len(pos))
			for _, p := range pos {
				if p < base {
					inBase = append(inBase, p)
				}
			}
			if len(inBase) > 0 {
				pf(inBase)
			}
		}
	}
	ix.snap.Store(&snapshot{tree: tree, mergedA: mergedA})
	ix.probeLive.Store(int32(ix.opt.ProbeLeaves))
	ix.mergeLive.Store(int32(ix.opt.MergeThreshold))
	ix.queryDur = metrics.NewHistogram(metrics.Opts{
		Name: "dsidx_index_query_seconds",
		Help: "Search latency per index (sub-searches for a sharded index).",
	}, metrics.LatencyBuckets)
	if ix.opt.Engine != nil {
		ix.eng = ix.opt.Engine.Retain()
	} else {
		ix.eng = engine.New(engine.Options{Workers: ix.opt.Workers, MaxInFlight: ix.opt.MaxInFlight})
	}
	ix.engRef = &engineRef{eng: ix.eng}
	ix.scratch.New = func() any { return ix.newScratch() }
	ix.lbPool.New = func() any { return &lbScratch{} }
	runtime.AddCleanup(ix, func(r *engineRef) { r.release() }, ix.engRef)
}

// Close releases the index's worker pool reference. An index-owned pool
// stops after any in-flight background merge completes (the pool stays
// live for it); a shared pool (Options.Engine) keeps running for its other
// holders. Close is idempotent and safe to call concurrently with appends
// and queries; after the pool fully stops, queries execute serially on the
// calling goroutine, appends still land in the delta buffer, and merges
// happen only through Flush.
func (ix *Index) Close() { ix.engRef.release() }

// EngineStats snapshots the shared pool's throughput counters.
func (ix *Index) EngineStats() engine.Stats { return ix.eng.Stats() }

// Admit blocks until the engine's admission control grants a query slot and
// returns its release function. BatchSearch and the public serving layer
// wrap every query in an Admit/release pair.
func (ix *Index) Admit() (release func()) { return ix.eng.Admit() }

// AdmitContext is Admit with cancellation: release is nil and err non-nil
// if ctx is done before a slot frees.
func (ix *Index) AdmitContext(ctx context.Context) (release func(), err error) {
	return ix.eng.AdmitContext(ctx)
}

// AdmitTenantContext is AdmitContext under a tenant identity: the query
// clears the tenant's own admission gate before the global one, so one
// tenant's storm queues on its own gate instead of capturing the shared
// window. Tenant "" is exactly AdmitContext.
func (ix *Index) AdmitTenantContext(ctx context.Context, tenant string) (release func(), err error) {
	return ix.eng.AdmitTenantContext(ctx, tenant)
}

// TenantStats snapshots the engine's per-tenant accounting, sorted by
// tenant ID; empty until the first tenanted call.
func (ix *Index) TenantStats() []engine.TenantStat { return ix.eng.TenantStats() }

// MaxInFlight returns the admission bound on concurrently admitted queries.
func (ix *Index) MaxInFlight() int { return ix.eng.MaxInFlight() }

// ProbeLeaves returns the live approximate-phase probe count — the
// configured value unless AutoTune has moved it (the per-query
// QueryStats.ProbeLeaves may be lower when a query's root subtree holds
// fewer leaves).
func (ix *Index) ProbeLeaves() int { return ix.probeLeavesNow() }

// Searches returns the number of Shared-entry searches this index has
// served — for a sharded index, this shard's sub-search count.
func (ix *Index) Searches() uint64 { return ix.searches.Load() }

// Health is one index's fault-tolerance snapshot: how often queries and
// merges hit contained faults, alongside the engine's panic-containment
// counters. All zeros on a healthy index.
type Health struct {
	// Searches and FailedSearches count Shared-entry searches served and
	// the subset that returned a contained-fault error instead of an
	// answer.
	Searches       uint64
	FailedSearches uint64
	// MergeAborts counts merge cycles abandoned after a contained task
	// panic (the previous snapshot kept serving).
	MergeAborts uint64
	// TaskPanics and BgPanics mirror the engine's containment counters
	// (pool-task and background-job boundaries). A shared pool reports
	// the same values through every index attached to it.
	TaskPanics uint64
	BgPanics   uint64
	// Live and Tombstoned split Count() into series a full search ranges
	// over and series deleted (or TTL-expired) but still occupying
	// positions.
	Live       int
	Tombstoned int
}

// Health snapshots the index's fault counters.
func (ix *Index) Health() Health {
	es := ix.eng.Stats()
	return Health{
		Searches:       ix.searches.Load(),
		FailedSearches: ix.searchFails.Load(),
		MergeAborts:    ix.mergeAborts.Load(),
		TaskPanics:     es.TaskPanics,
		BgPanics:       es.BgPanics,
		Live:           ix.Live(),
		Tombstoned:     ix.Tombstoned(),
	}
}

// Build creates a MESSI index over coll — any read-only collection: the
// flat in-memory RawData array of the paper, or a position-remapping
// series.View over someone else's collection (how a sharding layer builds
// each shard over its slice of the base data without copying it). The
// index retains coll and reads it on every unmaterialized refinement, so
// it must stay immutable for the index's lifetime.
func Build(coll series.Reader, cfg core.Config, opt Options) (*Index, error) {
	opt = opt.normalize()
	cfg.SeriesLen = coll.SeriesLen()
	tree, err := core.NewTree(cfg)
	if err != nil {
		return nil, fmt.Errorf("messi: %w", err)
	}
	cfg = tree.Config()
	n := coll.Len()
	ix := &Index{cfg: cfg, opt: opt, raw: coll}
	sax := core.NewSAXArray(n, cfg.Segments)

	start := time.Now()

	// Stage 1: summarization. The default design gives every worker its own
	// partition of each iSAX buffer (no synchronization); the SharedBuffers
	// ablation instead funnels all workers through one locked buffer per
	// root subtree (the design footnote 2 rejects).
	blocks := xsync.Blocks(n, opt.BlockSeries)
	parts := make([]map[uint32][]int32, opt.Workers) // parts[w][key] = positions
	var shared []lockedBuffer
	if opt.SharedBuffers {
		shared = make([]lockedBuffer, cfg.RootFanout())
	}
	var blockCursor xsync.Counter
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sm := core.NewSummarizer(cfg, tree.Quantizer())
			mine := make(map[uint32][]int32, 256)
			for {
				bi := blockCursor.Next()
				if int(bi) >= len(blocks) {
					break
				}
				blk := blocks[bi]
				for i := blk.Lo; i < blk.Hi; i++ {
					dst := sax.At(i)
					sm.Summarize(coll.At(i), dst)
					key := tree.RootKey(dst)
					if opt.SharedBuffers {
						shared[key].append(int32(i))
					} else {
						mine[key] = append(mine[key], int32(i))
					}
				}
			}
			parts[w] = mine
		}(w)
	}
	wg.Wait()
	ix.build.Summarize = time.Since(start)

	// Stage 2: one worker per buffer (Fetch&Inc over the key list) builds
	// the whole subtree from every worker's part — distinct subtrees, no
	// synchronization.
	t0 := time.Now()
	if opt.SharedBuffers {
		// Re-shape the shared buffers into the single-part layout so stage
		// 2 is identical for both designs.
		single := make(map[uint32][]int32, 1024)
		for key := range shared {
			if len(shared[key].pos) > 0 {
				single[uint32(key)] = shared[key].pos
			}
		}
		parts = []map[uint32][]int32{single}
	}
	keys := make([]uint32, 0, 1024)
	seen := make([]bool, cfg.RootFanout())
	for _, part := range parts {
		for key := range part {
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
		}
	}
	// Claim keys in sorted order, not map-iteration order: with one worker
	// the whole build is then a pure function of the collection, so two
	// builds over identical content (say, a position-remapping view vs a
	// flat copy of the same series) encode byte-identically — the property
	// the sharding layer's differential tests compare against.
	slices.Sort(keys)
	var keyCursor xsync.Counter
	wg = sync.WaitGroup{}
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ki := keyCursor.Next()
				if int(ki) >= len(keys) {
					return
				}
				key := keys[ki]
				for _, part := range parts {
					for _, pos := range part[key] {
						tree.SubtreeInsert(key, sax.At(int(pos)), pos)
					}
				}
				// Leaf-ordered storage: once the subtree's shape is final
				// (no more splits), copy each leaf's series into one
				// contiguous block — materializing after the build avoids
				// re-copying raw values through every intermediate split.
				if !opt.DisableLeafRaw {
					tree.Subtree(key).MaterializeLeaves(cfg.SeriesLen,
						func(pos int32) []float32 { return coll.At(int(pos)) })
				}
			}
		}()
	}
	wg.Wait()
	ix.build.TreeBuild = time.Since(t0)
	ix.build.Total = time.Since(start)
	ix.initLive(tree, sax, 0)
	return ix, nil
}

// lockedBuffer is the footnote-2 alternative: one mutex-protected position
// buffer per root subtree, contended by every worker.
type lockedBuffer struct {
	mu  sync.Mutex
	pos []int32
}

func (b *lockedBuffer) append(p int32) {
	b.mu.Lock()
	b.pos = append(b.pos, p)
	b.mu.Unlock()
}

// Count returns the number of series the index answers over: the base
// collection plus every published append (merged or not).
func (ix *Index) Count() int { return ix.baseLen + int(ix.appended.Load()) }

// Tree exposes the current snapshot's tree for diagnostics and tests. It
// covers the base collection plus the merged part of the delta buffer.
func (ix *Index) Tree() *core.Tree { return ix.snap.Load().tree }

// BuildStats returns the creation-phase breakdown of Figure 5.
func (ix *Index) BuildStats() BuildStats { return ix.build }

// Raw returns the immutable base collection the index was built over —
// the caller's flat collection, or the view a sharding layer built this
// shard through. Appended series live in the index's own stable storage
// (see At).
func (ix *Index) Raw() series.Reader { return ix.raw }

// At returns the series at a global position: the base collection for
// positions below its length, the append store above. Every position a
// query result reports resolves through here.
func (ix *Index) At(pos int) series.Series {
	if pos < ix.baseLen {
		return ix.raw.At(pos)
	}
	return ix.store.At(pos - ix.baseLen)
}
