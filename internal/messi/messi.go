// Package messi implements MESSI (paper §III, Figure 3), the first parallel
// in-memory data series index.
//
// Index creation: the in-memory RawData array is split into fixed-size
// blocks; index workers claim blocks with Fetch&Inc and write each series'
// iSAX summary into the global SAX array, recording its position in the
// worker's own partition of the per-root-subtree iSAX buffer (each buffer
// is "split into parts and each worker works on its own part", eliminating
// synchronization — paper footnote 2). When all summaries exist, workers
// claim whole buffers with Fetch&Inc and build the corresponding subtrees
// independently (footnote 3).
//
// Query answering: an approximate tree search seeds the shared BSF; workers
// then traverse distinct root subtrees, pruning by node-level lower bounds
// against the live BSF, and push surviving leaves into a set of concurrent
// min-priority queues (round-robin, for load balancing). After the
// traversal, workers drain the queues in ascending lower-bound order: a
// popped leaf whose bound beats the BSF has its entries checked first by
// summary lower bound and only then by early-abandoning real distance.
// When a queue's minimum is not below the BSF, the whole queue can never
// improve the answer and is abandoned. Compared to ParIS, the tree prunes
// *before* lower-bound computation and the queues order work best-first —
// the two effects behind Figure 12's speedups.
package messi

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/series"
	"dsidx/internal/xsync"
)

// Options configures index creation and query answering.
type Options struct {
	// Workers is the number of index worker goroutines (the paper's
	// "number of cores"). 0 means GOMAXPROCS.
	Workers int
	// BlockSeries is the stage-1 chunk size in series (0 means 1024); small
	// blocks assigned with Fetch&Inc give the load balancing the paper
	// describes.
	BlockSeries int
	// QueueCount is the number of concurrent priority queues used by query
	// answering (0 means half the workers, minimum 1 — close to the paper's
	// tuning).
	QueueCount int
	// SharedBuffers selects the alternative stage-1 design the paper's
	// footnote 2 reports trying and rejecting: one lock-protected buffer
	// per root subtree shared by all workers, instead of per-worker buffer
	// parts. Kept for the ablation experiment; expect worse performance
	// under contention.
	SharedBuffers bool
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BlockSeries <= 0 {
		o.BlockSeries = 1024
	}
	if o.QueueCount <= 0 {
		o.QueueCount = max(1, o.Workers/2)
	}
	return o
}

// BuildStats splits creation time into the two phases of Figure 5.
type BuildStats struct {
	Summarize time.Duration // stage 1: iSAX summary computation
	TreeBuild time.Duration // stage 2: subtree construction
	Total     time.Duration
}

// Index is a built MESSI index over an in-memory collection.
type Index struct {
	cfg   core.Config
	opt   Options
	tree  *core.Tree
	sax   *core.SAXArray
	raw   *series.Collection
	build BuildStats
}

// Build creates a MESSI index over coll.
func Build(coll *series.Collection, cfg core.Config, opt Options) (*Index, error) {
	opt = opt.normalize()
	cfg.SeriesLen = coll.SeriesLen()
	tree, err := core.NewTree(cfg)
	if err != nil {
		return nil, fmt.Errorf("messi: %w", err)
	}
	cfg = tree.Config()
	n := coll.Len()
	ix := &Index{cfg: cfg, opt: opt, tree: tree, sax: core.NewSAXArray(n, cfg.Segments), raw: coll}

	start := time.Now()

	// Stage 1: summarization. The default design gives every worker its own
	// partition of each iSAX buffer (no synchronization); the SharedBuffers
	// ablation instead funnels all workers through one locked buffer per
	// root subtree (the design footnote 2 rejects).
	blocks := xsync.Blocks(n, opt.BlockSeries)
	parts := make([]map[uint32][]int32, opt.Workers) // parts[w][key] = positions
	var shared []lockedBuffer
	if opt.SharedBuffers {
		shared = make([]lockedBuffer, cfg.RootFanout())
	}
	var blockCursor xsync.Counter
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sm := core.NewSummarizer(cfg, tree.Quantizer())
			mine := make(map[uint32][]int32, 256)
			for {
				bi := blockCursor.Next()
				if int(bi) >= len(blocks) {
					break
				}
				blk := blocks[bi]
				for i := blk.Lo; i < blk.Hi; i++ {
					dst := ix.sax.At(i)
					sm.Summarize(coll.At(i), dst)
					key := tree.RootKey(dst)
					if opt.SharedBuffers {
						shared[key].append(int32(i))
					} else {
						mine[key] = append(mine[key], int32(i))
					}
				}
			}
			parts[w] = mine
		}(w)
	}
	wg.Wait()
	ix.build.Summarize = time.Since(start)

	// Stage 2: one worker per buffer (Fetch&Inc over the key list) builds
	// the whole subtree from every worker's part — distinct subtrees, no
	// synchronization.
	t0 := time.Now()
	if opt.SharedBuffers {
		// Re-shape the shared buffers into the single-part layout so stage
		// 2 is identical for both designs.
		single := make(map[uint32][]int32, 1024)
		for key := range shared {
			if len(shared[key].pos) > 0 {
				single[uint32(key)] = shared[key].pos
			}
		}
		parts = []map[uint32][]int32{single}
	}
	keys := make([]uint32, 0, 1024)
	seen := make([]bool, cfg.RootFanout())
	for _, part := range parts {
		for key := range part {
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
		}
	}
	var keyCursor xsync.Counter
	wg = sync.WaitGroup{}
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ki := keyCursor.Next()
				if int(ki) >= len(keys) {
					return
				}
				key := keys[ki]
				for _, part := range parts {
					for _, pos := range part[key] {
						tree.SubtreeInsert(key, ix.sax.At(int(pos)), pos)
					}
				}
			}
		}()
	}
	wg.Wait()
	ix.build.TreeBuild = time.Since(t0)
	ix.build.Total = time.Since(start)
	return ix, nil
}

// lockedBuffer is the footnote-2 alternative: one mutex-protected position
// buffer per root subtree, contended by every worker.
type lockedBuffer struct {
	mu  sync.Mutex
	pos []int32
}

func (b *lockedBuffer) append(p int32) {
	b.mu.Lock()
	b.pos = append(b.pos, p)
	b.mu.Unlock()
}

// Encode serializes the built index (tree + SAX array); the raw collection
// is not included and must be supplied again to Decode.
func (ix *Index) Encode() []byte { return core.EncodeIndex(ix.tree, ix.sax) }

// Decode reconstructs an index from Encode output over the same raw
// collection it was built from.
func Decode(data []byte, coll *series.Collection, opt Options) (*Index, error) {
	opt = opt.normalize()
	tree, sax, err := core.DecodeIndex(data)
	if err != nil {
		return nil, fmt.Errorf("messi: %w", err)
	}
	cfg := tree.Config()
	if cfg.SeriesLen != coll.SeriesLen() {
		return nil, fmt.Errorf("messi: index is for length-%d series, collection has %d",
			cfg.SeriesLen, coll.SeriesLen())
	}
	if sax.Len() != coll.Len() {
		return nil, fmt.Errorf("messi: index covers %d series, collection has %d",
			sax.Len(), coll.Len())
	}
	return &Index{cfg: cfg, opt: opt, tree: tree, sax: sax, raw: coll}, nil
}

// Count returns the number of indexed series.
func (ix *Index) Count() int { return ix.raw.Len() }

// Tree exposes the index tree for diagnostics and tests.
func (ix *Index) Tree() *core.Tree { return ix.tree }

// BuildStats returns the creation-phase breakdown of Figure 5.
func (ix *Index) BuildStats() BuildStats { return ix.build }

// Raw returns the indexed collection.
func (ix *Index) Raw() *series.Collection { return ix.raw }
