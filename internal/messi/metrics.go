package messi

import "dsidx/internal/metrics"

// RegisterMetrics wires this index's ingest, query and tuning surfaces
// into r, with the given constant labels on every instrument (a
// sharding layer passes shard="i"; a standalone index passes none). The
// engine's families are registered separately — by the index's Registry
// for a standalone index, once for the whole pool by a sharding layer.
func (ix *Index) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	lbl := func(m metrics.Metric) metrics.Metric {
		if len(labels) == 0 {
			return m
		}
		return metrics.WithLabels(m, labels...)
	}
	ing := func(f func(IngestStats) float64) func() float64 {
		return func() float64 { return f(ix.IngestStats()) }
	}
	r.MustRegister(
		lbl(metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_ingest_appended_total",
			Help: "Series accepted by Append/AppendBatch since creation or load.",
		}, ing(func(s IngestStats) float64 { return float64(s.Appended) }))),
		lbl(metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_ingest_pending",
			Help: "Appended series not yet merged into the tree (delta-buffer size).",
		}, ing(func(s IngestStats) float64 { return float64(s.Pending) }))),
		lbl(metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_ingest_merged",
			Help: "Appended series the tree snapshot covers.",
		}, ing(func(s IngestStats) float64 { return float64(s.Merged) }))),
		lbl(metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_ingest_merges_total",
			Help: "Completed merge cycles.",
		}, ing(func(s IngestStats) float64 { return float64(s.Merges) }))),
		lbl(metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_ingest_snapshot_swaps_total",
			Help: "Tree snapshots atomically installed by merges.",
		}, ing(func(s IngestStats) float64 { return float64(s.SnapshotSwaps) }))),
		lbl(metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_ingest_merge_threshold",
			Help: "Live delta size that triggers a background merge.",
		}, ing(func(s IngestStats) float64 { return float64(s.MergeThreshold) }))),
		lbl(metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_index_queries_total",
			Help: "Searches served by this index (sub-searches for a sharded index).",
		}, func() float64 { return float64(ix.searches.Load()) })),
		lbl(ix.queryDur),
		lbl(metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_tuning_autotune",
			Help: "Whether the AutoTune feedback loop is active (0/1).",
		}, func() float64 {
			if ix.opt.AutoTune {
				return 1
			}
			return 0
		})),
		lbl(metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_tuning_probe_leaves",
			Help: "Live approximate-phase probe count.",
		}, func() float64 { return float64(ix.probeLeavesNow()) })),
		lbl(metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_tuning_adjustments_total",
			Help: "Knob changes applied by AutoTune since creation.",
		}, func() float64 { return float64(ix.tuneAdjusts.Load()) })),
	)
}

// Registry returns the index's metrics registry — engine families plus
// this index's ingest/query/tuning families — built on first call.
func (ix *Index) Registry() *metrics.Registry {
	ix.regOnce.Do(func() {
		ix.reg = metrics.NewRegistry()
		ix.eng.RegisterMetrics(ix.reg)
		ix.RegisterMetrics(ix.reg)
	})
	return ix.reg
}
