package messi

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/xsync"
)

// BenchmarkMESSIRefineLeaf isolates the refinement hot path: one pass over
// every leaf of a built index, exactly as the queue-drain phase would
// visit them. The leaf-ordered sub-benchmark reads each leaf's
// materialized raw block sequentially; the positional sub-benchmark is the
// pre-layout behavior, chasing leaf.Pos through the collection. The BSF is
// reset to a loose bound per leaf, so every leaf runs the batched bound
// pass AND touches its raw series (one full distance, then early-abandoned
// reads) — the worst-case refinement profile where memory layout matters,
// rather than the best case where bounds prune everything.
func BenchmarkMESSIRefineLeaf(b *testing.B) {
	g := gen.Generator{Kind: gen.Synthetic, Seed: 9}
	coll := g.Collection(20_000)
	q := g.PerturbedQueries(coll, 1, 0.05).At(0)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"leaf-ordered", false},
		{"positional", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ix, err := Build(coll, core.Config{}, Options{Workers: 1, DisableLeafRaw: mode.disable})
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			sc := ix.getScratch()
			defer ix.putScratch(sc)
			sc.summarizeQuery(q)
			t := ix.Tree()
			sc.table.FillED(t.Quantizer(), sc.qpaa, ix.cfg.SeriesLen)
			var leaves []*core.Node
			entries := 0
			t.VisitLeaves(func(n *core.Node) {
				leaves = append(leaves, n)
				entries += n.Count
			})
			lb := ix.getLB()
			defer ix.putLB(lb)
			stats := &QueryStats{}
			best := xsync.NewBest()
			const loose = 1e18 // passes every bound; full distance on the first entry
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, leaf := range leaves {
					best.Reset()
					best.Update(loose, -1)
					ix.refineLeafED(q, sc.table, leaf, best, stats, lb, identPos, qfilter{posLimit: math.MaxInt32})
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(entries), "entries/op")
		})
	}
}
