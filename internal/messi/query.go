package messi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dsidx/internal/core"
	"dsidx/internal/isax"
	"dsidx/internal/paa"
	"dsidx/internal/pqueue"
	"dsidx/internal/series"
	"dsidx/internal/vector"
	"dsidx/internal/xsync"
)

// QueryStats counts the work of one query, exposing the pruning effects the
// paper credits for MESSI's speedups.
type QueryStats struct {
	LeavesInserted int // leaves that survived tree pruning
	LeavesPopped   int // leaves actually examined from the queues
	EntriesChecked int // per-series lower bounds computed
	RawDistances   int // exact distances computed (incl. approximate phase)
	// Observed is the number of series this query answered over: the
	// consistent prefix (base collection + published appends) captured at
	// query start. A serial scan over exactly that prefix returns the
	// bit-identical answer.
	Observed int
}

// view is the consistent cut one query observes: a tree snapshot plus the
// count of appended series published at capture time. Loading the snapshot
// before the append count guarantees aLive ≥ snap.mergedA — the delta
// suffix [snap.mergedA, aLive) is exactly what the tree does not cover.
type view struct {
	snap  *snapshot
	aLive int // published appended series
}

func (ix *Index) view() view {
	s := ix.snap.Load()
	return view{snap: s, aLive: int(ix.appended.Load())}
}

// total returns the number of series the view answers over.
func (v view) total(baseLen int) int { return baseLen + v.aLive }

// queueEntry is a surviving leaf with its lower-bound distance.
type queueEntry struct {
	leaf *core.Node
}

// searchScratch is the pooled per-query working set: summarizer, summary
// buffers, lower-bound lookup tables and the priority-queue set. At the
// default configuration these total ~70KB per query — allocating them per
// Search call is invisible at one query at a time but dominates allocator
// traffic at serving rates, so in-flight queries check them out of a
// sync.Pool and sustained QPS recycles a bounded working set.
type searchScratch struct {
	sm     *core.Summarizer
	qsax   []uint8
	qpaa   []float64
	table  *isax.QueryTable
	mt     *isax.MultiTable
	queues *pqueue.Set[queueEntry]
	done   []atomic.Bool
}

func (ix *Index) newScratch() *searchScratch {
	queues := pqueue.NewSet[queueEntry](ix.opt.QueueCount, 64)
	return &searchScratch{
		sm:     core.NewSummarizer(ix.cfg, ix.Tree().Quantizer()),
		qsax:   make([]uint8, ix.cfg.Segments),
		qpaa:   make([]float64, ix.cfg.Segments),
		table:  &isax.QueryTable{},
		mt:     &isax.MultiTable{},
		queues: queues,
		done:   make([]atomic.Bool, queues.Count()),
	}
}

func (ix *Index) getScratch() *searchScratch   { return ix.scratch.Get().(*searchScratch) }
func (ix *Index) putScratch(sc *searchScratch) { ix.scratch.Put(sc) }

// summarizeQuery fills the scratch summary buffers for q.
func (sc *searchScratch) summarizeQuery(q series.Series) {
	sc.sm.Summarize(q, sc.qsax)
	copy(sc.qpaa, sc.sm.PAA(q))
}

// Search answers an exact 1-NN query over everything the index holds at
// call time: the tree snapshot plus an exact scan of the unmerged delta.
// workers ≤ 0 means the index's configured worker count; the effective
// parallelism is additionally capped by the index's pool size, which all
// in-flight queries share.
func (ix *Index) Search(q series.Series, workers int) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	v := ix.view()
	stats := &QueryStats{Observed: v.total(ix.baseLen)}
	if stats.Observed == 0 {
		return core.NoResult(), stats, nil
	}

	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	best := xsync.NewBest()
	t := v.snap.tree

	// Approximate phase: exact distances over the closest leaf.
	if leaf := t.BestLeafApprox(sc.qsax, sc.qpaa); leaf != nil {
		for _, p := range leaf.Pos {
			stats.RawDistances++
			if d := vector.SquaredEDEarlyAbandon(q, ix.At(int(p)), best.Distance()); d < best.Distance() {
				best.Update(d, int64(p))
			}
		}
	}

	sc.table.FillED(t.Quantizer(), sc.qpaa, ix.cfg.SeriesLen)
	sc.mt.FillFrom(t.Quantizer(), sc.table)
	ix.queuedSearch(workers, stats, best.Distance, sc, v,
		func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)) {
			t.PruneWalkTable(node, sc.mt, bsf, emit)
		},
		func(leaf *core.Node, limit float64, st *QueryStats) {
			ix.refineLeafED(q, sc.table, leaf, best, st)
		},
		func(lo, hi int, st *QueryStats) {
			for i := lo; i < hi; i++ {
				st.EntriesChecked++
				limit := best.Distance()
				if sc.table.MinDistSAX(ix.saxLog.At(i)) >= limit {
					continue
				}
				st.RawDistances++
				if d := vector.SquaredEDEarlyAbandon(q, ix.store.At(i), limit); d < limit {
					best.Update(d, int64(ix.baseLen+i))
				}
			}
		})

	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// BatchSearch answers many exact 1-NN queries concurrently on the shared
// worker pool, bounded by the engine's admission control. results[i] is the
// answer for qs[i]; the first query error (if any) is returned after all
// queries finish.
func (ix *Index) BatchSearch(qs []series.Series) ([]core.Result, error) {
	results := make([]core.Result, len(qs))
	errs := make([]error, len(qs))
	spawn := min(len(qs), ix.eng.MaxInFlight())
	var next xsync.Counter
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Next())
				if i >= len(qs) {
					return
				}
				release := ix.eng.Admit()
				results[i], _, errs[i] = ix.Search(qs[i], 0)
				release()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// refineLeafED checks a leaf's entries: summary lower bound first, then
// early-abandoning real distance.
func (ix *Index) refineLeafED(q series.Series, table *isax.QueryTable, leaf *core.Node, best *xsync.Best, stats *QueryStats) {
	w := ix.cfg.Segments
	for i := 0; i < leaf.Count; i++ {
		stats.EntriesChecked++
		limit := best.Distance()
		if table.MinDistSAX(leaf.SAX[i*w:(i+1)*w]) >= limit {
			continue
		}
		p := leaf.Pos[i]
		stats.RawDistances++
		if d := vector.SquaredEDEarlyAbandon(q, ix.At(int(p)), limit); d < limit {
			best.Update(d, int64(p))
		}
	}
}

// deltaBlock is the delta-scan work-claiming granularity in series.
const deltaBlock = 1024

// queuedSearch runs MESSI stage 3: parallel pruned traversal filling the
// priority queues — concurrently with an exact scan of the view's unmerged
// delta suffix — then a barrier, then parallel best-first draining. bsf
// reads the live pruning threshold (the BSF for 1-NN, the k-th best for
// k-NN); walk, refine and scanDelta abstract the distance flavor (ED vs
// DTW). The delta scan shares the BSF with the traversal, so abandoning
// thresholds tighten globally whichever side improves the answer first.
//
// All phases execute as tasks on the index's shared worker pool rather
// than per-call goroutines: with several queries in flight, their tasks
// interleave through one run queue and the machine runs at most pool-size
// tasks at any instant. workers caps THIS query's share of the pool (the
// per-call scaling knob); each phase submits at most that many tasks and
// the phase barrier waits only for its own.
func (ix *Index) queuedSearch(
	workers int,
	stats *QueryStats,
	bsf func() float64,
	sc *searchScratch,
	v view,
	walk func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)),
	refine func(leaf *core.Node, limit float64, st *QueryStats),
	scanDelta func(lo, hi int, st *QueryStats),
) {
	end := ix.eng.BeginQuery()
	defer end()
	if workers <= 0 {
		// Unpinned queries take a fair share of the pool: full fan-out when
		// alone, a proportional slice when other queries are active. An
		// explicit workers value (the paper's scaling knob) is honored up to
		// the pool size.
		workers = ix.eng.FairShare()
	} else if workers > ix.eng.Workers() {
		workers = ix.eng.Workers()
	}
	queues := sc.queues
	queues.Reset()
	t := v.snap.tree
	keys := t.OccupiedKeys()

	// Phase A: traversal plus delta scan. Traversal tasks claim root
	// subtrees with Fetch&Inc, in blocks: a tree over a scaled-down
	// collection has tens of thousands of tiny root subtrees, and
	// per-subtree claims would serialize on the shared counter's cache
	// line. Delta tasks claim blocks of the unmerged suffix the same way.
	const claimBlock = 256
	var cursor, deltaCursor xsync.Counter
	var inserted, popped, entries, raws atomic.Int64
	blocks := (len(keys) + claimBlock - 1) / claimBlock
	deltaLo, deltaHi := v.snap.mergedA, v.aLive
	deltaBlocks := (deltaHi - deltaLo + deltaBlock - 1) / deltaBlock
	g := ix.eng.NewGroup()
	for w := 0; w < min(workers, max(blocks, 1)); w++ {
		g.Submit(func() {
			for {
				lo := int(cursor.Next()) * claimBlock
				if lo >= len(keys) {
					return
				}
				hi := min(lo+claimBlock, len(keys))
				for _, key := range keys[lo:hi] {
					walk(t.Subtree(key), bsf, func(leaf *core.Node, lb float64) {
						queues.Insert(lb, queueEntry{leaf: leaf})
						inserted.Add(1)
					})
				}
			}
		})
	}
	for w := 0; w < min(workers, deltaBlocks); w++ {
		g.Submit(func() {
			st := QueryStats{}
			for {
				lo := deltaLo + int(deltaCursor.Next())*deltaBlock
				if lo >= deltaHi {
					break
				}
				scanDelta(lo, min(lo+deltaBlock, deltaHi), &st)
			}
			entries.Add(int64(st.EntriesChecked))
			raws.Add(int64(st.RawDistances))
		})
	}
	g.Wait()

	// Phase B: best-first refinement. A queue whose head is not below the
	// BSF can never improve the answer (bounds only grow within a queue and
	// the BSF only shrinks), so it is marked done for everyone.
	done := sc.done[:queues.Count()]
	for i := range done {
		done[i].Store(false)
	}
	g = ix.eng.NewGroup()
	for w := 0; w < workers; w++ {
		g.Submit(func() {
			st := QueryStats{}
			for remaining := true; remaining; {
				remaining = false
				for qi := 0; qi < queues.Count(); qi++ {
					idx := (w + qi) % queues.Count()
					if done[idx].Load() {
						continue
					}
					q := queues.Queue(idx)
					for {
						it, abandon := q.PopIfUnder(bsf())
						if abandon {
							done[idx].Store(true)
							break
						}
						popped.Add(1)
						refine(it.Value.leaf, it.Priority, &st)
					}
				}
				// Re-scan in case another worker inserted... no inserts can
				// happen in phase B, but a queue may have been skipped while
				// a peer was draining it and then re-marked not-done; one
				// clean pass over all queues seeing them done suffices.
				for qi := 0; qi < queues.Count(); qi++ {
					if !done[qi].Load() {
						remaining = true
						break
					}
				}
			}
			entries.Add(int64(st.EntriesChecked))
			raws.Add(int64(st.RawDistances))
		})
	}
	g.Wait()

	stats.LeavesInserted = int(inserted.Load())
	stats.LeavesPopped = int(popped.Load())
	stats.EntriesChecked += int(entries.Load())
	stats.RawDistances += int(raws.Load())
}

// SearchApproximate answers a query with the approximate algorithm of the
// iSAX family: descend to the leaf whose word matches the query summary
// and return the best series in it, with no traversal of the rest of the
// tree. The unmerged delta is exact-scanned too (it is small by
// construction — merges keep it under the threshold), so the answer's
// distance still upper-bounds the exact answer over everything the call
// observed. The answer is not guaranteed to be the true nearest neighbor
// but is computed in microseconds.
func (ix *Index) SearchApproximate(q series.Series) (core.Result, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	v := ix.view()
	if v.total(ix.baseLen) == 0 {
		return core.NoResult(), nil
	}
	end := ix.eng.BeginQuery()
	defer end()
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	best := core.NoResult()
	if leaf := v.snap.tree.BestLeafApprox(sc.qsax, sc.qpaa); leaf != nil {
		for _, p := range leaf.Pos {
			if d := vector.SquaredEDEarlyAbandon(q, ix.At(int(p)), best.Dist); d < best.Dist {
				best = core.Result{Pos: p, Dist: d}
			}
		}
	}
	for i := v.snap.mergedA; i < v.aLive; i++ {
		if d := vector.SquaredEDEarlyAbandon(q, ix.store.At(i), best.Dist); d < best.Dist {
			best = core.Result{Pos: int32(ix.baseLen + i), Dist: d}
		}
	}
	return best, nil
}

// SearchKNN answers an exact k-NN query, returning the k nearest series in
// ascending distance order. The k-th best distance plays the BSF role.
func (ix *Index) SearchKNN(q series.Series, k, workers int) ([]core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return nil, nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if k <= 0 {
		return nil, &QueryStats{}, nil
	}
	v := ix.view()
	stats := &QueryStats{Observed: v.total(ix.baseLen)}
	if stats.Observed == 0 {
		return nil, stats, nil
	}

	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	t := v.snap.tree
	kb := xsync.NewKBest(k)
	if leaf := t.BestLeafApprox(sc.qsax, sc.qpaa); leaf != nil {
		for _, p := range leaf.Pos {
			stats.RawDistances++
			d := vector.SquaredEDEarlyAbandon(q, ix.At(int(p)), kb.Threshold())
			kb.Offer(p, d)
		}
	}

	sc.table.FillED(t.Quantizer(), sc.qpaa, ix.cfg.SeriesLen)
	sc.mt.FillFrom(t.Quantizer(), sc.table)
	table := sc.table
	// The k-th best distance plays the BSF role in every pruning decision.
	ix.queuedSearch(workers, stats, kb.Threshold, sc, v,
		func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)) {
			t.PruneWalkTable(node, sc.mt, bsf, emit)
		},
		func(leaf *core.Node, limit float64, st *QueryStats) {
			w := ix.cfg.Segments
			for i := 0; i < leaf.Count; i++ {
				st.EntriesChecked++
				lim := kb.Threshold()
				if table.MinDistSAX(leaf.SAX[i*w:(i+1)*w]) >= lim {
					continue
				}
				p := leaf.Pos[i]
				st.RawDistances++
				d := vector.SquaredEDEarlyAbandon(q, ix.At(int(p)), lim)
				kb.Offer(p, d)
			}
		},
		func(lo, hi int, st *QueryStats) {
			for i := lo; i < hi; i++ {
				st.EntriesChecked++
				lim := kb.Threshold()
				if table.MinDistSAX(ix.saxLog.At(i)) >= lim {
					continue
				}
				st.RawDistances++
				d := vector.SquaredEDEarlyAbandon(q, ix.store.At(i), lim)
				kb.Offer(int32(ix.baseLen+i), d)
			}
		})

	out := make([]core.Result, 0, k)
	for _, e := range kb.Sorted() {
		out = append(out, core.Result{Pos: e.Pos, Dist: e.Dist})
	}
	return out, stats, nil
}

// SearchDTW answers an exact 1-NN query under DTW with a Sakoe-Chiba band
// of half-width window, on the unchanged index (paper §V): node pruning and
// per-entry filtering use the envelope-based iSAX lower bound, candidates
// pass an LB_Keogh check, and survivors pay the full dynamic program. The
// unmerged delta runs through the same cascade.
func (ix *Index) SearchDTW(q series.Series, window, workers int) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if window < 0 {
		window = 0
	}
	v := ix.view()
	stats := &QueryStats{Observed: v.total(ix.baseLen)}
	if stats.Observed == 0 {
		return core.NoResult(), stats, nil
	}

	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	env := series.NewEnvelope(q, window)
	upPAA := paa.Transform(env.Upper, ix.cfg.Segments)
	loPAA := paa.Transform(env.Lower, ix.cfg.Segments)
	n := ix.cfg.SeriesLen

	t := v.snap.tree
	best := xsync.NewBest()
	if leaf := t.BestLeafApprox(sc.qsax, sc.qpaa); leaf != nil {
		for _, p := range leaf.Pos {
			stats.RawDistances++
			if d := series.DTW(q, ix.At(int(p)), window, best.Distance()); d < best.Distance() {
				best.Update(d, int64(p))
			}
		}
	}

	sc.table.FillDTW(t.Quantizer(), upPAA, loPAA, n)
	// The multi-cardinality view of the DTW table remains a valid DTW lower
	// bound: coarse cells are minima over their sub-regions.
	sc.mt.FillFrom(t.Quantizer(), sc.table)
	table := sc.table
	ix.queuedSearch(workers, stats, best.Distance, sc, v,
		func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)) {
			t.PruneWalkTable(node, sc.mt, bsf, emit)
		},
		func(leaf *core.Node, limit float64, st *QueryStats) {
			w := ix.cfg.Segments
			for i := 0; i < leaf.Count; i++ {
				st.EntriesChecked++
				lim := best.Distance()
				if table.MinDistSAX(leaf.SAX[i*w:(i+1)*w]) >= lim {
					continue
				}
				s := ix.At(int(leaf.Pos[i]))
				if series.LBKeogh(env, s, lim) >= lim {
					continue
				}
				st.RawDistances++
				if d := series.DTW(q, s, window, lim); d < lim {
					best.Update(d, int64(leaf.Pos[i]))
				}
			}
		},
		func(lo, hi int, st *QueryStats) {
			for i := lo; i < hi; i++ {
				st.EntriesChecked++
				lim := best.Distance()
				if table.MinDistSAX(ix.saxLog.At(i)) >= lim {
					continue
				}
				s := ix.store.At(i)
				if series.LBKeogh(env, s, lim) >= lim {
					continue
				}
				st.RawDistances++
				if d := series.DTW(q, s, window, lim); d < lim {
					best.Update(d, int64(ix.baseLen+i))
				}
			}
		})

	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}
