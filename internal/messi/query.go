package messi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/engine"
	"dsidx/internal/isax"
	"dsidx/internal/paa"
	"dsidx/internal/pqueue"
	"dsidx/internal/series"
	"dsidx/internal/vector"
	"dsidx/internal/xsync"
)

// QueryStats counts the work of one query, exposing the pruning effects the
// paper credits for MESSI's speedups.
type QueryStats struct {
	ProbeLeaves    int // leaves probed by the BSF-seeding approximate phase
	LeavesInserted int // leaves that survived tree pruning
	LeavesPopped   int // leaves actually examined from the queues
	EntriesChecked int // per-series lower bounds computed
	RawDistances   int // exact distances computed (incl. approximate phase)
	// Observed is the number of series this query answered over: the
	// consistent prefix (base collection + published appends) captured at
	// query start. A serial scan over exactly that prefix returns the
	// bit-identical answer.
	Observed int
	// UncoveredShards lists the shards a partial-results query (the shard
	// layer's AllowPartial mode) could not cover — quarantined or failing
	// at query time. Empty on a complete answer; never set by an unsharded
	// index.
	UncoveredShards []int
}

// view is the consistent cut one query observes: a tree snapshot plus the
// count of appended series published at capture time. Loading the snapshot
// before the append count guarantees aLive ≥ snap.mergedA — the delta
// suffix [snap.mergedA, aLive) is exactly what the tree does not cover.
type view struct {
	snap  *snapshot
	aLive int // published appended series
}

func (ix *Index) view() view {
	s := ix.snap.Load()
	return view{snap: s, aLive: int(ix.appended.Load())}
}

// total returns the number of series the view answers over.
func (v view) total(baseLen int) int { return baseLen + v.aLive }

// queueEntry is a surviving leaf with its lower-bound distance.
type queueEntry struct {
	leaf *core.Node
}

// searchScratch is the pooled per-query working set: summarizer, summary
// buffers, lower-bound lookup tables and the priority-queue set. At the
// default configuration these total ~70KB per query — allocating them per
// Search call is invisible at one query at a time but dominates allocator
// traffic at serving rates, so in-flight queries check them out of a
// sync.Pool and sustained QPS recycles a bounded working set.
type searchScratch struct {
	sm     *core.Summarizer
	qsax   []uint8
	qpaa   []float64
	table  *isax.QueryTable
	mt     *isax.MultiTable
	queues *pqueue.Set[queueEntry]
	done   []atomic.Bool
	// probed records the leaves the approximate phase refined, so the
	// traversal skips re-inserting them: a probed leaf is already fully
	// refined against a bound at least as tight, and re-refining it would
	// double-count its surviving entries' distances. Read-only during the
	// traversal; len ≤ ProbeLeaves, so membership is a pointer scan.
	probed []*core.Node
}

func (ix *Index) newScratch() *searchScratch {
	queues := pqueue.NewSet[queueEntry](ix.opt.QueueCount, 64)
	return &searchScratch{
		sm:     core.NewSummarizer(ix.cfg, ix.Tree().Quantizer()),
		qsax:   make([]uint8, ix.cfg.Segments),
		qpaa:   make([]float64, ix.cfg.Segments),
		table:  &isax.QueryTable{},
		mt:     &isax.MultiTable{},
		queues: queues,
		done:   make([]atomic.Bool, queues.Count()),
	}
}

func (ix *Index) getScratch() *searchScratch { return ix.scratch.Get().(*searchScratch) }

func (ix *Index) putScratch(sc *searchScratch) {
	// Drop the probed-leaf pointers before parking in the pool: after a
	// merge retires a snapshot, a pooled scratch must not pin the old
	// subtrees' materialized raw blocks until its next reuse.
	clear(sc.probed)
	sc.probed = sc.probed[:0]
	ix.scratch.Put(sc)
}

// lbScratch is a reusable lower-bound buffer. Every refinement or
// delta-scan task checks one out of the index's pool for its lifetime, so
// concurrent tasks of the same query never share a buffer and sustained
// traffic recycles a bounded set (one buffer per concurrently running
// task, not per leaf).
type lbScratch struct{ buf []float64 }

// take returns a length-n bound buffer, growing the backing array only
// when a leaf exceeds every previous one (over-capacity duplicate leaves
// can exceed the configured leaf capacity).
func (s *lbScratch) take(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

func (ix *Index) getLB() *lbScratch  { return ix.lbPool.Get().(*lbScratch) }
func (ix *Index) putLB(s *lbScratch) { ix.lbPool.Put(s) }

// summarizeQuery fills the scratch summary buffers for q.
func (sc *searchScratch) summarizeQuery(q series.Series) {
	sc.sm.Summarize(q, sc.qsax)
	copy(sc.qpaa, sc.sm.PAA(q))
}

// leafSeries returns leaf entry i's raw values: the leaf's materialized
// block when present — entries of one leaf are then consecutive in memory,
// so refinement streams through them — falling back to a positional read
// from the collection/append store for unmaterialized trees.
func (ix *Index) leafSeries(leaf *core.Node, i int) series.Series {
	if raw := leaf.EntryRaw(i, ix.cfg.SeriesLen); raw != nil {
		return raw
	}
	return ix.At(int(leaf.Pos[i]))
}

// forLeafBounds computes the whole leaf's summary lower bounds in one
// batched pass over its contiguous SAX block (bit-identical to the
// per-entry MinDistSAX values) and invokes each for every entry. Callers
// read their live pruning threshold inside each, so every compare sees
// the freshest BSF. This is the shared skeleton of all three refinement
// flavors (ED, k-NN, DTW).
func (ix *Index) forLeafBounds(table *isax.QueryTable, leaf *core.Node, st *QueryStats, lb *lbScratch, each func(i int, bound float64)) {
	bounds := lb.take(leaf.Count)
	vector.MinDistBatch(table.Cells(), leaf.SAX, ix.cfg.Segments, table.Card(), bounds)
	st.EntriesChecked += leaf.Count
	for i, b := range bounds {
		each(i, b)
	}
}

// forDeltaBounds is forLeafBounds over the delta suffix [lo, hi): bounds
// are batched run-by-run over the append log's chunk-contiguous rows, and
// each receives absolute delta indexes.
func (ix *Index) forDeltaBounds(table *isax.QueryTable, lo, hi int, st *QueryStats, lb *lbScratch, each func(i int, bound float64)) {
	for i := lo; i < hi; {
		rows, k := ix.saxLog.Run(i, hi)
		bounds := lb.take(k)
		vector.MinDistBatch(table.Cells(), rows, ix.cfg.Segments, table.Card(), bounds)
		st.EntriesChecked += k
		for j, b := range bounds {
			each(i+j, b)
		}
		i += k
	}
}

// probeLeaves runs the approximate phase: the p best leaves under the
// query's summary (see core.Tree.BestLeavesApprox) are refined with the
// same closure the queue-drain phase uses, seeding the BSF with exact
// distances. Probing several neighboring leaves instead of one tightens
// the initial BSF, which shrinks everything downstream: fewer leaves
// survive tree pruning, fewer entries survive the lower-bound filter.
func (ix *Index) probeLeaves(sc *searchScratch, t *core.Tree, stats *QueryStats,
	refine func(leaf *core.Node, limit float64, st *QueryStats, lb *lbScratch)) {
	lb := ix.getLB()
	sc.probed = append(sc.probed[:0], t.BestLeavesApprox(sc.qsax, sc.qpaa, ix.probeLeavesNow())...)
	for _, leaf := range sc.probed {
		stats.ProbeLeaves++
		refine(leaf, 0, stats, lb)
	}
	ix.putLB(lb)
}

// wasProbed reports whether the approximate phase already refined leaf.
func (sc *searchScratch) wasProbed(leaf *core.Node) bool {
	for _, p := range sc.probed {
		if p == leaf {
			return true
		}
	}
	return false
}

// identPos is the position map of an unsharded query: local positions ARE
// the answer positions.
func identPos(p int32) int32 { return p }

// Scope bounds one query's visible position space and carries its tenant
// identity. The zero Scope answers over nothing appended — use FullScope
// (or AppendCut: -1) for "everything published".
type Scope struct {
	// AppendCut, when ≥ 0, bounds the query to the first AppendCut appended
	// series, so a sharding layer can pin one consistent cross-shard
	// prefix; -1 answers over everything published at call time.
	AppendCut int
	// LowPos, when > 0, excludes answers whose mapped (global) position is
	// below it — the sliding-window lower cut. Composed with AppendCut the
	// query ranges over exactly the global suffix [LowPos, cut).
	LowPos int32
	// Tenant is an opaque tenant ID for fair scheduling: the engine divides
	// pool shares across tenants with live queries, so one tenant's storm
	// cannot starve the rest. "" is the untenanted default (exactly the
	// pre-tenant behavior).
	Tenant string
}

// FullScope answers over everything published, untenanted.
var FullScope = Scope{AppendCut: -1}

// qfilter is the per-entry visibility filter one query carries: the
// exclusive local position limit (merged appends beyond the scope's append
// cut), the tombstone set loaded at query start, and the window's lower
// global position. One consistent filter per query — a delete or append
// landing mid-query is invisible, exactly like a mid-query merge.
type qfilter struct {
	posLimit int32
	lowPos   int32
	tombs    *tombSet
}

// skip reports whether the entry at local position p is outside the query's
// scope: past the append cut, tombstoned, or (for window queries) mapping
// below the window's global lower cut.
func (f *qfilter) skip(p int32, mp func(int32) int32) bool {
	if p >= f.posLimit || f.tombs.has(p) {
		return true
	}
	return f.lowPos > 0 && mp(p) < f.lowPos
}

// failQuery records a search that is returning a contained-fault error
// instead of an answer, feeding Health().FailedSearches.
func (ix *Index) failQuery(err error) error {
	ix.searchFails.Add(1)
	return err
}

// beginQuery registers a query with the engine's counters. A sub-search —
// one shard's branch of a scatter-gather query, recognizable by its
// non-nil position map — contributes to pool scheduling (FairShare) but
// not to the Queries throughput counter: the sharding layer counts the
// logical query exactly once. Every search flavor funnels through here,
// so the returned end also feeds the index's own observability surface
// (per-index search count and latency histogram) and gives the tuner
// its per-query tick.
func (ix *Index) beginQuery(sub bool, tenant string) (end func()) {
	t0 := time.Now()
	var endE func()
	if sub {
		endE = ix.eng.BeginSubQueryTenant(tenant)
	} else {
		endE = ix.eng.BeginQueryTenant(tenant)
	}
	return func() {
		endE()
		ix.searches.Add(1)
		ix.queryDur.Observe(time.Since(t0).Seconds())
		ix.maybeTune()
	}
}

// sharedCut prepares the cross-index search state: the view (its delta
// suffix capped at the scope's append cut when a sharding layer pins this
// query to a consistent global prefix), the position map, and the per-entry
// visibility filter. A merge may already have folded appends beyond the cut
// into the tree snapshot — those entries are filtered by position during
// refinement, so the answer covers exactly the scoped slice of
// [0, baseLen+cut), minus the tombstones published at capture time.
func (ix *Index) sharedCut(mapPos func(int32) int32, scope Scope) (v view, mp func(int32) int32, f qfilter) {
	v = ix.view()
	if scope.AppendCut >= 0 && scope.AppendCut < v.aLive {
		v.aLive = scope.AppendCut
	}
	mp = mapPos
	if mp == nil {
		mp = identPos
	}
	f = qfilter{
		posLimit: int32(ix.baseLen + v.aLive),
		lowPos:   scope.LowPos,
		tombs:    ix.tombs.Load(),
	}
	return v, mp, f
}

// Search answers an exact 1-NN query over everything the index holds at
// call time: the tree snapshot plus an exact scan of the unmerged delta.
// workers ≤ 0 means the index's configured worker count; the effective
// parallelism is additionally capped by the index's pool size, which all
// in-flight queries share.
func (ix *Index) Search(q series.Series, workers int) (core.Result, *QueryStats, error) {
	return ix.SearchScoped(q, workers, FullScope)
}

// SearchScoped is Search under an explicit Scope: a bounded append cut, a
// sliding-window lower cut, a tenant identity, or any combination.
func (ix *Index) SearchScoped(q series.Series, workers int, scope Scope) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	best := xsync.NewBest()
	stats, err := ix.SearchShared(q, workers, best, nil, scope)
	if err != nil {
		return core.NoResult(), nil, err
	}
	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// SearchWindow answers an exact 1-NN query over the most recent n landed
// series: the consistent append cut captured at call time composed with a
// lower cut n positions back. A window wider than everything landed so far
// degenerates to Search. The answer is bit-identical to a serial scan of
// exactly that suffix minus tombstones.
func (ix *Index) SearchWindow(q series.Series, n, workers int) (core.Result, *QueryStats, error) {
	return ix.SearchWindowTenant(q, n, workers, "")
}

// SearchWindowTenant is SearchWindow under a tenant identity.
func (ix *Index) SearchWindowTenant(q series.Series, n, workers int, tenant string) (core.Result, *QueryStats, error) {
	scope, err := ix.windowScope(n)
	if err != nil {
		return core.NoResult(), nil, err
	}
	scope.Tenant = tenant
	return ix.SearchScoped(q, workers, scope)
}

// windowScope captures the consistent cut of a most-recent-n window: the
// published append count as the upper cut, total-n as the global lower cut.
func (ix *Index) windowScope(n int) (Scope, error) {
	if n <= 0 {
		return Scope{}, fmt.Errorf("messi: window size %d, want > 0", n)
	}
	cut := int(ix.appended.Load())
	return Scope{AppendCut: cut, LowPos: int32(max(0, ix.baseLen+cut-n))}, nil
}

// SearchShared is the scatter-gather form of Search, the injection point a
// sharding layer uses to run one logical query across many indexes: the
// best-so-far lives in the caller-owned best, so a tight bound found by any
// shard immediately prunes every other shard's traversal, lower-bound
// filtering and early abandoning — not just the merged answer afterwards.
// Every improvement is recorded under mapPos (local position → the caller's
// global position space; nil means identity). scope bounds the visible
// position space — append cut, window lower cut — and names the tenant (see
// Scope); FullScope answers over everything published. The caller reads the
// answer from best after the call (and after every sibling shard's call,
// when sharing).
func (ix *Index) SearchShared(q series.Series, workers int, best *xsync.Best, mapPos func(int32) int32, scope Scope) (stats *QueryStats, err error) {
	if len(q) != ix.cfg.SeriesLen {
		return nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	v, mp, f := ix.sharedCut(mapPos, scope)
	stats = &QueryStats{Observed: v.total(ix.baseLen)}
	if stats.Observed == 0 {
		return stats, nil
	}
	// Coordinator-side containment: the approximate phase refines leaves on
	// this goroutine, so a cold-device fault here does not pass through any
	// pool-task boundary — recover it into the same typed error shape.
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, ix.failQuery(engine.Contain(r))
		}
	}()

	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	t := v.snap.tree
	sc.table.FillED(t.Quantizer(), sc.qpaa, ix.cfg.SeriesLen)
	sc.mt.FillFrom(t.Quantizer(), sc.table)

	refine := func(leaf *core.Node, _ float64, st *QueryStats, lb *lbScratch) {
		ix.refineLeafED(q, sc.table, leaf, best, st, lb, mp, f)
	}
	// Approximate phase: exact distances over the closest p leaves.
	ix.probeLeaves(sc, t, stats, refine)

	if err := ix.queuedSearch(workers, mapPos != nil, scope.Tenant, stats, best.Distance, sc, v,
		func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)) {
			t.PruneWalkTable(node, sc.mt, bsf, emit)
		},
		refine,
		func(lo, hi int, st *QueryStats, lb *lbScratch) {
			ix.forDeltaBounds(sc.table, lo, hi, st, lb, func(i int, b float64) {
				limit := best.Distance()
				if b >= limit || f.skip(int32(ix.baseLen+i), mp) {
					return
				}
				st.RawDistances++
				if d := vector.SquaredEDEarlyAbandon(q, ix.store.At(i), limit); d < limit {
					best.Update(d, int64(mp(int32(ix.baseLen+i))))
				}
			})
		}); err != nil {
		return nil, ix.failQuery(err)
	}
	return stats, nil
}

// RunBatch answers one exact query per element of qs concurrently under
// eng's admission control — the shared skeleton of every BatchSearch
// surface (plain and sharded): at most MaxInFlight worker goroutines claim
// queries with Fetch&Inc, each holding an admission slot for the duration
// of its search. results[i] and stats[i] answer qs[i]; the first query
// error (if any) is returned after all queries finish.
func RunBatch(eng *engine.Engine, qs []series.Series,
	search func(q series.Series) (core.Result, *QueryStats, error)) ([]core.Result, []QueryStats, error) {
	results := make([]core.Result, len(qs))
	stats := make([]QueryStats, len(qs))
	errs := make([]error, len(qs))
	spawn := min(len(qs), eng.MaxInFlight())
	var next xsync.Counter
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Next())
				if i >= len(qs) {
					return
				}
				release := eng.Admit()
				var st *QueryStats
				results[i], st, errs[i] = search(qs[i])
				if st != nil {
					stats[i] = *st
				}
				release()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, stats, err
		}
	}
	return results, stats, nil
}

// BatchSearchStats answers many exact 1-NN queries concurrently on the
// shared worker pool, bounded by the engine's admission control, returning
// each query's answer and work stats.
func (ix *Index) BatchSearchStats(qs []series.Series) ([]core.Result, []QueryStats, error) {
	return RunBatch(ix.eng, qs, func(q series.Series) (core.Result, *QueryStats, error) {
		return ix.Search(q, 0)
	})
}

// BatchSearch is BatchSearchStats without the per-query stats.
func (ix *Index) BatchSearch(qs []series.Series) ([]core.Result, error) {
	results, _, err := ix.BatchSearchStats(qs)
	return results, err
}

// refineLeafED checks a leaf's entries: lower bounds for the whole leaf
// are computed in one batched pass over its contiguous SAX block (bit-
// identical to the per-entry MinDistSAX values), then survivors pay an
// early-abandoning real distance against the leaf's materialized raw
// block — two sequential streams instead of per-entry pointer chasing.
// Entries outside the query's filter — past the consistent cut, tombstoned,
// or below a window's lower cut — are skipped; improvements land in best
// under mp.
func (ix *Index) refineLeafED(q series.Series, table *isax.QueryTable, leaf *core.Node, best *xsync.Best, stats *QueryStats, lb *lbScratch, mp func(int32) int32, f qfilter) {
	ix.forLeafBounds(table, leaf, stats, lb, func(i int, b float64) {
		limit := best.Distance()
		if b >= limit || f.skip(leaf.Pos[i], mp) {
			return
		}
		stats.RawDistances++
		if d := vector.SquaredEDEarlyAbandon(q, ix.leafSeries(leaf, i), limit); d < limit {
			best.Update(d, int64(mp(leaf.Pos[i])))
		}
	})
}

// deltaBlock is the delta-scan work-claiming granularity in series.
const deltaBlock = 1024

// queuedSearch runs MESSI stage 3: parallel pruned traversal filling the
// priority queues — concurrently with an exact scan of the view's unmerged
// delta suffix — then a barrier, then parallel best-first draining. bsf
// reads the live pruning threshold (the BSF for 1-NN, the k-th best for
// k-NN); walk, refine and scanDelta abstract the distance flavor (ED vs
// DTW). The delta scan shares the BSF with the traversal, so abandoning
// thresholds tighten globally whichever side improves the answer first.
// refine and scanDelta receive a per-task lower-bound buffer for their
// batched bound computations.
//
// All phases execute as tasks on the index's shared worker pool rather
// than per-call goroutines: with several queries in flight, their tasks
// interleave through one run queue and the machine runs at most pool-size
// tasks at any instant. workers caps THIS query's share of the pool (the
// per-call scaling knob); each phase submits at most that many tasks and
// the phase barrier waits only for its own. sub marks a sharded
// sub-search (see beginQuery).
//
// A task that panics — a cold-device *storage.BlockError surfacing inside
// a refinement, typically — is contained at the Group boundary; the phase
// barrier still releases, and queuedSearch returns the first contained
// panic as an error. The caller must then discard the answer: the shared
// best-so-far may be missing contributions from the failed tasks.
func (ix *Index) queuedSearch(
	workers int,
	sub bool,
	tenant string,
	stats *QueryStats,
	bsf func() float64,
	sc *searchScratch,
	v view,
	walk func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)),
	refine func(leaf *core.Node, limit float64, st *QueryStats, lb *lbScratch),
	scanDelta func(lo, hi int, st *QueryStats, lb *lbScratch),
) error {
	end := ix.beginQuery(sub, tenant)
	defer end()
	if workers <= 0 {
		// Unpinned queries take a fair share of the pool: full fan-out when
		// alone, a proportional slice when other queries are active — and,
		// for a tenanted query, a slice of the tenant's share, so one
		// tenant's storm cannot starve the rest. An explicit workers value
		// (the paper's scaling knob) is honored up to the pool size.
		workers = ix.eng.FairShareTenant(tenant)
	} else if workers > ix.eng.Workers() {
		workers = ix.eng.Workers()
	}
	queues := sc.queues
	queues.Reset()
	t := v.snap.tree
	keys := t.OccupiedKeys()

	// Phase A: traversal plus delta scan. Traversal tasks claim root
	// subtrees with Fetch&Inc, in blocks: a tree over a scaled-down
	// collection has tens of thousands of tiny root subtrees, and
	// per-subtree claims would serialize on the shared counter's cache
	// line. Delta tasks claim blocks of the unmerged suffix the same way.
	const claimBlock = 256
	var cursor, deltaCursor xsync.Counter
	var inserted, popped, entries, raws atomic.Int64
	blocks := (len(keys) + claimBlock - 1) / claimBlock
	// A sharding layer's append cut may sit below mergedA (a merge folded
	// appends past the cut into the tree, where the position filter handles
	// them) — there is no delta suffix to scan then.
	deltaLo, deltaHi := v.snap.mergedA, max(v.aLive, v.snap.mergedA)
	deltaBlocks := (deltaHi - deltaLo + deltaBlock - 1) / deltaBlock
	g := ix.eng.NewGroup()
	for w := 0; w < min(workers, max(blocks, 1)); w++ {
		g.Submit(func() {
			// One emit closure per task, not per subtree: a scaled-down
			// tree has thousands of root keys, and allocating the closure
			// inside the key loop used to dominate the query's allocation
			// count.
			emit := func(leaf *core.Node, lb float64) {
				if sc.wasProbed(leaf) {
					return
				}
				queues.Insert(lb, queueEntry{leaf: leaf})
				inserted.Add(1)
			}
			for {
				lo := int(cursor.Next()) * claimBlock
				if lo >= len(keys) {
					return
				}
				hi := min(lo+claimBlock, len(keys))
				for _, key := range keys[lo:hi] {
					walk(t.Subtree(key), bsf, emit)
				}
			}
		})
	}
	for w := 0; w < min(workers, deltaBlocks); w++ {
		g.Submit(func() {
			st := QueryStats{}
			lb := ix.getLB()
			for {
				lo := deltaLo + int(deltaCursor.Next())*deltaBlock
				if lo >= deltaHi {
					break
				}
				scanDelta(lo, min(lo+deltaBlock, deltaHi), &st, lb)
			}
			ix.putLB(lb)
			entries.Add(int64(st.EntriesChecked))
			raws.Add(int64(st.RawDistances))
		})
	}
	g.Wait()
	if err := g.Err(); err != nil {
		return err
	}

	// Phase B: best-first refinement. A queue whose head is not below the
	// BSF can never improve the answer (bounds only grow within a queue and
	// the BSF only shrinks), so it is marked done for everyone.
	done := sc.done[:queues.Count()]
	for i := range done {
		done[i].Store(false)
	}
	g = ix.eng.NewGroup()
	for w := 0; w < workers; w++ {
		g.Submit(func() {
			st := QueryStats{}
			lb := ix.getLB()
			for remaining := true; remaining; {
				remaining = false
				for qi := 0; qi < queues.Count(); qi++ {
					idx := (w + qi) % queues.Count()
					if done[idx].Load() {
						continue
					}
					q := queues.Queue(idx)
					// ParIS+-style I/O masking, active only when the base
					// data is device-backed (ix.prefetch non-nil): a popped
					// leaf without a materialized raw block would pay cold
					// device reads inside refine, so its positions are
					// submitted as a prefetch task on the same pool — no
					// extra goroutines — and its refinement is deferred by
					// one pop. The batched read for leaf N+1 then overlaps
					// the distance computations of leaf N; single-flight
					// block loading makes the race between the prefetch task
					// and a faster-arriving refine harmless. TrySubmit (not
					// Submit) because this code runs on a pool worker: a
					// blocking send to a full queue that only this worker
					// could drain would deadlock a small pool, and a prefetch
					// that cannot be scheduled is better skipped — refine
					// pays the read itself. Deferring a refinement never
					// changes the answer: every surviving entry is checked
					// against the live threshold whenever it runs, and queue
					// abandonment stays monotone (bounds only grow within a
					// queue, the BSF only shrinks).
					var held *core.Node
					for {
						it, abandon := q.PopIfUnder(bsf())
						if abandon {
							done[idx].Store(true)
							break
						}
						popped.Add(1)
						leaf := it.Value.leaf
						if ix.prefetch != nil && leaf.Raw == nil {
							pos := leaf.Pos
							if g.TrySubmit(func() { ix.prefetch(pos) }) {
								if held != nil {
									refine(held, it.Priority, &st, lb)
								}
								held = leaf
								continue
							}
						}
						refine(leaf, it.Priority, &st, lb)
					}
					if held != nil {
						refine(held, 0, &st, lb)
					}
				}
				// Re-scan in case another worker inserted... no inserts can
				// happen in phase B, but a queue may have been skipped while
				// a peer was draining it and then re-marked not-done; one
				// clean pass over all queues seeing them done suffices.
				for qi := 0; qi < queues.Count(); qi++ {
					if !done[qi].Load() {
						remaining = true
						break
					}
				}
			}
			ix.putLB(lb)
			entries.Add(int64(st.EntriesChecked))
			raws.Add(int64(st.RawDistances))
		})
	}
	g.Wait()
	if err := g.Err(); err != nil {
		return err
	}

	stats.LeavesInserted = int(inserted.Load())
	stats.LeavesPopped = int(popped.Load())
	stats.EntriesChecked += int(entries.Load())
	stats.RawDistances += int(raws.Load())
	return nil
}

// SearchApproximate answers a query with the approximate algorithm of the
// iSAX family, extended with multi-probing: descend to the ProbeLeaves
// best-matching leaves (the single matching leaf at the classic p=1) and
// return the best series among them, with no traversal of the rest of the
// tree. The unmerged delta is exact-scanned too (it is small by
// construction — merges keep it under the threshold), so the answer's
// distance still upper-bounds the exact answer over everything the call
// observed. The answer is not guaranteed to be the true nearest neighbor
// but is computed in microseconds.
func (ix *Index) SearchApproximate(q series.Series) (core.Result, error) {
	return ix.SearchApproximateScoped(q, FullScope)
}

// SearchApproximateScoped is SearchApproximate under an explicit Scope.
func (ix *Index) SearchApproximateScoped(q series.Series, scope Scope) (core.Result, error) {
	return ix.SearchApproximateShared(q, nil, scope)
}

// SearchApproximateShared is the scatter form of SearchApproximate: the
// sharding layer probes every shard under one consistent append cut and
// keeps the best mapped answer, so the reported global position always
// lies inside the prefix the caller captured — never a series that landed
// mid-scatter. See SearchShared for the mapPos and scope contracts.
func (ix *Index) SearchApproximateShared(q series.Series, mapPos func(int32) int32, scope Scope) (res core.Result, err error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	v, mp, f := ix.sharedCut(mapPos, scope)
	if v.total(ix.baseLen) == 0 {
		return core.NoResult(), nil
	}
	// The whole approximate probe runs on this goroutine; contain a
	// cold-device fault into a typed error.
	defer func() {
		if r := recover(); r != nil {
			res, err = core.NoResult(), ix.failQuery(engine.Contain(r))
		}
	}()
	end := ix.beginQuery(mapPos != nil, scope.Tenant)
	defer end()
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	best := core.NoResult()
	for _, leaf := range v.snap.tree.BestLeavesApprox(sc.qsax, sc.qpaa, ix.probeLeavesNow()) {
		for i := range leaf.Pos {
			if f.skip(leaf.Pos[i], mp) {
				continue
			}
			if d := vector.SquaredEDEarlyAbandon(q, ix.leafSeries(leaf, i), best.Dist); d < best.Dist {
				best = core.Result{Pos: mp(leaf.Pos[i]), Dist: d}
			}
		}
	}
	for i := v.snap.mergedA; i < v.aLive; i++ {
		if f.skip(int32(ix.baseLen+i), mp) {
			continue
		}
		if d := vector.SquaredEDEarlyAbandon(q, ix.store.At(i), best.Dist); d < best.Dist {
			best = core.Result{Pos: mp(int32(ix.baseLen + i)), Dist: d}
		}
	}
	return best, nil
}

// SearchKNN answers an exact k-NN query, returning the k nearest series in
// ascending distance order. The k-th best distance plays the BSF role.
func (ix *Index) SearchKNN(q series.Series, k, workers int) ([]core.Result, *QueryStats, error) {
	return ix.SearchKNNScoped(q, k, workers, FullScope)
}

// SearchKNNScoped is SearchKNN under an explicit Scope.
func (ix *Index) SearchKNNScoped(q series.Series, k, workers int, scope Scope) ([]core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return nil, nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if k <= 0 {
		return nil, &QueryStats{}, nil
	}
	kb := xsync.NewKBest(k)
	stats, err := ix.SearchKNNShared(q, k, workers, kb, nil, scope)
	if err != nil {
		return nil, nil, err
	}
	out := make([]core.Result, 0, k)
	for _, e := range kb.Sorted() {
		out = append(out, core.Result{Pos: e.Pos, Dist: e.Dist})
	}
	return out, stats, nil
}

// SearchKNNShared is the scatter-gather form of SearchKNN: the k-best set
// lives in the caller-owned kb — shared across shards, its k-th-best
// threshold tightens globally as any shard improves the set — and every
// offer is recorded under mapPos, so the per-position deduplication in kb
// operates on globally unique positions. See SearchShared for the mapPos
// and scope contracts; the caller reads the answer from kb.Sorted().
func (ix *Index) SearchKNNShared(q series.Series, k, workers int, kb *xsync.KBest, mapPos func(int32) int32, scope Scope) (stats *QueryStats, err error) {
	if len(q) != ix.cfg.SeriesLen {
		return nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if k <= 0 {
		return &QueryStats{}, nil
	}
	v, mp, f := ix.sharedCut(mapPos, scope)
	stats = &QueryStats{Observed: v.total(ix.baseLen)}
	if stats.Observed == 0 {
		return stats, nil
	}
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, ix.failQuery(engine.Contain(r))
		}
	}()

	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	t := v.snap.tree
	sc.table.FillED(t.Quantizer(), sc.qpaa, ix.cfg.SeriesLen)
	sc.mt.FillFrom(t.Quantizer(), sc.table)
	table := sc.table

	refine := func(leaf *core.Node, _ float64, st *QueryStats, lb *lbScratch) {
		ix.forLeafBounds(table, leaf, st, lb, func(i int, b float64) {
			lim := kb.Threshold()
			if b >= lim || f.skip(leaf.Pos[i], mp) {
				return
			}
			st.RawDistances++
			kb.Offer(mp(leaf.Pos[i]), vector.SquaredEDEarlyAbandon(q, ix.leafSeries(leaf, i), lim))
		})
	}
	ix.probeLeaves(sc, t, stats, refine)

	// The k-th best distance plays the BSF role in every pruning decision.
	if err := ix.queuedSearch(workers, mapPos != nil, scope.Tenant, stats, kb.Threshold, sc, v,
		func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)) {
			t.PruneWalkTable(node, sc.mt, bsf, emit)
		},
		refine,
		func(lo, hi int, st *QueryStats, lb *lbScratch) {
			ix.forDeltaBounds(table, lo, hi, st, lb, func(i int, b float64) {
				lim := kb.Threshold()
				if b >= lim || f.skip(int32(ix.baseLen+i), mp) {
					return
				}
				st.RawDistances++
				kb.Offer(mp(int32(ix.baseLen+i)), vector.SquaredEDEarlyAbandon(q, ix.store.At(i), lim))
			})
		}); err != nil {
		return nil, ix.failQuery(err)
	}
	return stats, nil
}

// SearchDTW answers an exact 1-NN query under DTW with a Sakoe-Chiba band
// of half-width window, on the unchanged index (paper §V): node pruning and
// per-entry filtering use the envelope-based iSAX lower bound, candidates
// pass an LB_Keogh check, and survivors pay the full dynamic program. The
// unmerged delta runs through the same cascade.
func (ix *Index) SearchDTW(q series.Series, window, workers int) (core.Result, *QueryStats, error) {
	return ix.SearchDTWScoped(q, window, workers, FullScope)
}

// SearchDTWScoped is SearchDTW under an explicit Scope.
func (ix *Index) SearchDTWScoped(q series.Series, window, workers int, scope Scope) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	best := xsync.NewBest()
	stats, err := ix.SearchDTWShared(q, window, workers, best, nil, scope)
	if err != nil {
		return core.NoResult(), nil, err
	}
	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// SearchDTWShared is the scatter-gather form of SearchDTW: the caller-owned
// best is shared across shards, so any shard's improvement tightens the
// LB_Keogh and dynamic-program abandoning thresholds everywhere. See
// SearchShared for the mapPos and scope contracts.
func (ix *Index) SearchDTWShared(q series.Series, window, workers int, best *xsync.Best, mapPos func(int32) int32, scope Scope) (stats *QueryStats, err error) {
	if len(q) != ix.cfg.SeriesLen {
		return nil, fmt.Errorf("messi: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if window < 0 {
		window = 0
	}
	v, mp, f := ix.sharedCut(mapPos, scope)
	stats = &QueryStats{Observed: v.total(ix.baseLen)}
	if stats.Observed == 0 {
		return stats, nil
	}
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, ix.failQuery(engine.Contain(r))
		}
	}()

	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.summarizeQuery(q)

	env := series.NewEnvelope(q, window)
	upPAA := paa.Transform(env.Upper, ix.cfg.Segments)
	loPAA := paa.Transform(env.Lower, ix.cfg.Segments)
	n := ix.cfg.SeriesLen

	t := v.snap.tree
	sc.table.FillDTW(t.Quantizer(), upPAA, loPAA, n)
	// The multi-cardinality view of the DTW table remains a valid DTW lower
	// bound: coarse cells are minima over their sub-regions.
	sc.mt.FillFrom(t.Quantizer(), sc.table)
	table := sc.table

	refine := func(leaf *core.Node, _ float64, st *QueryStats, lb *lbScratch) {
		ix.forLeafBounds(table, leaf, st, lb, func(i int, b float64) {
			lim := best.Distance()
			if b >= lim || f.skip(leaf.Pos[i], mp) {
				return
			}
			s := ix.leafSeries(leaf, i)
			if series.LBKeogh(env, s, lim) >= lim {
				return
			}
			st.RawDistances++
			if d := series.DTW(q, s, window, lim); d < lim {
				best.Update(d, int64(mp(leaf.Pos[i])))
			}
		})
	}
	ix.probeLeaves(sc, t, stats, refine)

	if err := ix.queuedSearch(workers, mapPos != nil, scope.Tenant, stats, best.Distance, sc, v,
		func(node *core.Node, bsf func() float64, emit func(*core.Node, float64)) {
			t.PruneWalkTable(node, sc.mt, bsf, emit)
		},
		refine,
		func(lo, hi int, st *QueryStats, lb *lbScratch) {
			ix.forDeltaBounds(table, lo, hi, st, lb, func(i int, b float64) {
				lim := best.Distance()
				if b >= lim || f.skip(int32(ix.baseLen+i), mp) {
					return
				}
				s := ix.store.At(i)
				if series.LBKeogh(env, s, lim) >= lim {
					return
				}
				st.RawDistances++
				if d := series.DTW(q, s, window, lim); d < lim {
					best.Update(d, int64(mp(int32(ix.baseLen+i))))
				}
			})
		}); err != nil {
		return nil, ix.failQuery(err)
	}
	return stats, nil
}
