package isax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dsidx/internal/paa"
	"dsidx/internal/series"
)

func TestMultiTableDistWordEqualsMinDist(t *testing.T) {
	// The multi-cardinality table must agree EXACTLY with region-based
	// MinDist at every cardinality: coarse cells are minima over adjacent
	// full-cardinality regions, and region distance of a union is the
	// minimum of member distances.
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(30))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, segments := 256, 16
		a, b := randomSeries(r, n), randomSeries(r, n)
		qPAA := paa.Transform(a, segments)
		sax := summarize(q, b, segments)
		table := NewQueryTable(q, qPAA, n)
		mt := NewMultiTable(q, table)

		w := Word{Symbols: make([]uint8, segments), Bits: make([]uint8, segments)}
		for j := range w.Symbols {
			bits := 1 + r.Intn(8)
			w.Bits[j] = uint8(bits)
			w.Symbols[j] = sax[j] >> (8 - bits)
		}
		got := mt.DistWord(w)
		want := MinDist(q, qPAA, w, n)
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMultiTableDistSAXMatchesBase(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(31))
	n, segments := 128, 16
	a := randomSeries(rng, n)
	qPAA := paa.Transform(a, segments)
	table := NewQueryTable(q, qPAA, n)
	mt := NewMultiTable(q, table)
	for trial := 0; trial < 100; trial++ {
		sax := make([]uint8, segments)
		for j := range sax {
			sax[j] = uint8(rng.Intn(256))
		}
		if got, want := mt.DistSAX(sax), table.MinDistSAX(sax); got != want {
			t.Fatalf("DistSAX = %v, MinDistSAX = %v", got, want)
		}
	}
}

func TestMultiTableCoarseningOnlyLoosens(t *testing.T) {
	// Dropping cardinality can only decrease (loosen) the bound.
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(32))
	n, segments := 256, 16
	a, b := randomSeries(rng, n), randomSeries(rng, n)
	qPAA := paa.Transform(a, segments)
	sax := summarize(q, b, segments)
	mt := NewMultiTable(q, NewQueryTable(q, qPAA, n))
	prev := math.Inf(1)
	for bits := 8; bits >= 1; bits-- {
		w := Word{Symbols: make([]uint8, segments), Bits: make([]uint8, segments)}
		for j := range w.Symbols {
			w.Bits[j] = uint8(bits)
			w.Symbols[j] = sax[j] >> (8 - bits)
		}
		d := mt.DistWord(w)
		if d > prev+1e-12 {
			t.Fatalf("bound tightened from %v to %v when coarsening to %d bits", prev, d, bits)
		}
		prev = d
	}
}

func TestMultiTableDTWBaseRemainsLowerBound(t *testing.T) {
	// A multi-table built over the DTW query table must still lower-bound
	// true DTW distances at any cardinality.
	q := mustQuantizer(t, 8)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, segments := 128, 16
		a, b := randomSeries(r, n), randomSeries(r, n)
		window := r.Intn(12)
		env := series.NewEnvelope(a, window)
		upPAA := paa.Transform(env.Upper, segments)
		loPAA := paa.Transform(env.Lower, segments)
		mt := NewMultiTable(q, NewDTWQueryTable(q, upPAA, loPAA, n))
		sax := summarize(q, b, segments)
		w := Word{Symbols: make([]uint8, segments), Bits: make([]uint8, segments)}
		for j := range w.Symbols {
			bits := 1 + r.Intn(8)
			w.Bits[j] = uint8(bits)
			w.Symbols[j] = sax[j] >> (8 - bits)
		}
		lb := mt.DistWord(w)
		dtw := series.DTW(a, b, window, math.Inf(1))
		return lb <= dtw+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
