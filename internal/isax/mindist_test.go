package isax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dsidx/internal/paa"
	"dsidx/internal/series"
)

func randomSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// fullWord builds the maxBits-cardinality word of a summary.
func fullWord(sax []uint8, maxBits int) Word {
	w := Word{Symbols: make([]uint8, len(sax)), Bits: make([]uint8, len(sax))}
	for j, s := range sax {
		w.Symbols[j] = s
		w.Bits[j] = uint8(maxBits)
	}
	return w
}

func summarize(q *Quantizer, s series.Series, segments int) []uint8 {
	coeffs := paa.Transform(s, segments)
	out := make([]uint8, segments)
	q.SymbolsInto(coeffs, out)
	return out
}

func TestMinDistLowerBoundsED(t *testing.T) {
	// THE invariant: MinDist(PAA(q), iSAX(s)) <= ED²(q, s), at every
	// cardinality. Every index's exactness depends on this.
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(20))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, segments := 256, 16
		a, b := randomSeries(r, n), randomSeries(r, n)
		qPAA := paa.Transform(a, segments)
		ed := series.SquaredED(a, b)
		sax := summarize(q, b, segments)
		// Random-cardinality word containing b's summary.
		w := Word{Symbols: make([]uint8, segments), Bits: make([]uint8, segments)}
		for j := range w.Symbols {
			bits := 1 + r.Intn(8)
			w.Bits[j] = uint8(bits)
			w.Symbols[j] = sax[j] >> (8 - bits)
		}
		return MinDist(q, qPAA, w, n) <= ed+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMinDistZeroForOwnWord(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		s := randomSeries(rng, 128)
		qPAA := paa.Transform(s, 16)
		sax := summarize(q, s, 16)
		w := fullWord(sax, 8)
		if d := MinDist(q, qPAA, w, 128); d != 0 {
			t.Fatalf("MinDist of series against its own word = %v, want 0", d)
		}
	}
}

func TestMinDistMonotoneInCardinality(t *testing.T) {
	// Promoting a segment to higher cardinality shrinks the region, so the
	// bound can only tighten (grow).
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		n, segments := 256, 16
		a, b := randomSeries(rng, n), randomSeries(rng, n)
		qPAA := paa.Transform(a, segments)
		sax := summarize(q, b, segments)
		prev := -1.0
		for bits := 1; bits <= 8; bits++ {
			w := Word{Symbols: make([]uint8, segments), Bits: make([]uint8, segments)}
			for j := range w.Symbols {
				w.Bits[j] = uint8(bits)
				w.Symbols[j] = sax[j] >> (8 - bits)
			}
			d := MinDist(q, qPAA, w, n)
			if d < prev-1e-9 {
				t.Fatalf("bound loosened from %v to %v at bits=%d", prev, d, bits)
			}
			prev = d
		}
	}
}

func TestQueryTableMatchesMinDist(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n, segments := 256, 16
		a, b := randomSeries(rng, n), randomSeries(rng, n)
		qPAA := paa.Transform(a, segments)
		sax := summarize(q, b, segments)
		table := NewQueryTable(q, qPAA, n)
		got := table.MinDistSAX(sax)
		want := MinDist(q, qPAA, fullWord(sax, 8), n)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("QueryTable = %v, MinDist = %v", got, want)
		}
	}
}

func TestMinDistSAXStrided(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(24))
	n, segments, count := 256, 16, 33
	a := randomSeries(rng, n)
	qPAA := paa.Transform(a, segments)
	table := NewQueryTable(q, qPAA, n)

	sax := make([]uint8, count*segments)
	for i := range sax {
		sax[i] = uint8(rng.Intn(256))
	}
	out := make([]float64, count)
	table.MinDistSAXStrided(sax, out)
	for i := 0; i < count; i++ {
		want := table.MinDistSAX(sax[i*segments : (i+1)*segments])
		if out[i] != want {
			t.Fatalf("strided[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestMinDistSAXStridedPanicsOnMismatch(t *testing.T) {
	q := mustQuantizer(t, 8)
	table := NewQueryTable(q, make([]float64, 16), 256)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched batch")
		}
	}()
	table.MinDistSAXStrided(make([]uint8, 17), make([]float64, 1))
}

func TestMinDistDTWLowerBoundsDTW(t *testing.T) {
	// DTW extension invariant: the envelope-based iSAX bound never exceeds
	// the true DTW distance.
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(25))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, segments := 128, 16
		a, b := randomSeries(r, n), randomSeries(r, n)
		window := r.Intn(16)
		env := series.NewEnvelope(a, window)
		upPAA := paa.Transform(env.Upper, segments)
		loPAA := paa.Transform(env.Lower, segments)
		sax := summarize(q, b, segments)
		w := fullWord(sax, 8)
		lb := MinDistDTW(q, upPAA, loPAA, w, n)
		dtw := series.DTW(a, b, window, math.Inf(1))
		return lb <= dtw+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMinDistDTWAtZeroWindowMatchesMinDistDirection(t *testing.T) {
	// With window 0 the envelope collapses to the query, so the DTW bound
	// must still lower-bound plain ED.
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 50; trial++ {
		n, segments := 128, 16
		a, b := randomSeries(rng, n), randomSeries(rng, n)
		env := series.NewEnvelope(a, 0)
		upPAA := paa.Transform(env.Upper, segments)
		loPAA := paa.Transform(env.Lower, segments)
		sax := summarize(q, b, segments)
		lb := MinDistDTW(q, upPAA, loPAA, fullWord(sax, 8), n)
		ed := series.SquaredED(a, b)
		if lb > ed+1e-6 {
			t.Fatalf("zero-window DTW bound %v exceeds ED %v", lb, ed)
		}
	}
}

func TestQueryTableFillReuseMatchesFresh(t *testing.T) {
	// Refilling a table (or multitable) in place for a new query must be
	// indistinguishable from building fresh ones — the scratch-pooling path
	// of the concurrent query engine depends on it, including cells that
	// must return to zero.
	q, err := NewQuantizer(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	const segments, n = 16, 256
	reusedT := &QueryTable{}
	reusedMT := &MultiTable{}
	for round := 0; round < 5; round++ {
		s := randomSeries(rng, n)
		coeffs := paa.Transform(s, segments)
		fresh := NewQueryTable(q, coeffs, n)
		reusedT.FillED(q, coeffs, n)
		for i, c := range fresh.Cells() {
			if reusedT.Cells()[i] != c {
				t.Fatalf("round %d: reused table cell %d = %v, fresh = %v",
					round, i, reusedT.Cells()[i], c)
			}
		}
		freshMT := NewMultiTable(q, fresh)
		reusedMT.FillFrom(q, reusedT)
		sax := summarize(q, randomSeries(rng, n), segments)
		w := fullWord(sax, 8)
		w.Bits[3], w.Symbols[3] = 2, sax[3]>>6 // mixed cardinality
		if got, want := reusedMT.DistWord(w), freshMT.DistWord(w); got != want {
			t.Fatalf("round %d: reused multitable %v != fresh %v", round, got, want)
		}
		if got, want := reusedMT.DistSAX(sax), freshMT.DistSAX(sax); got != want {
			t.Fatalf("round %d: reused DistSAX %v != fresh %v", round, got, want)
		}
	}
}

func TestQueryTableFillDTWReuse(t *testing.T) {
	q, err := NewQuantizer(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	const segments, n = 16, 256
	reused := &QueryTable{}
	// First fill with an ED table so the DTW refill must overwrite all cells.
	reused.FillED(q, paa.Transform(randomSeries(rng, n), segments), n)
	for round := 0; round < 3; round++ {
		s := randomSeries(rng, n)
		env := series.NewEnvelope(s, 10)
		up := paa.Transform(env.Upper, segments)
		lo := paa.Transform(env.Lower, segments)
		fresh := NewDTWQueryTable(q, up, lo, n)
		reused.FillDTW(q, up, lo, n)
		for i, c := range fresh.Cells() {
			if reused.Cells()[i] != c {
				t.Fatalf("round %d: reused DTW cell %d = %v, fresh = %v",
					round, i, reused.Cells()[i], c)
			}
		}
	}
}
