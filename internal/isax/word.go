package isax

import (
	"fmt"
	"strings"
)

// Word is an iSAX word: one symbol per segment, each with its own
// cardinality expressed in bits. Index nodes are labeled with Words; a node
// covers exactly the series whose full-cardinality summaries have the word's
// symbols as bit-prefixes (paper Figure 1(d)).
type Word struct {
	Symbols []uint8 // symbol value per segment, valid in [0, 2^Bits[j])
	Bits    []uint8 // cardinality bits per segment, in [1, MaxBits]
}

// NewRootWord returns the 1-bit-per-segment word with the given symbols,
// which is how root children are labeled.
func NewRootWord(topBits []uint8) Word {
	w := Word{Symbols: make([]uint8, len(topBits)), Bits: make([]uint8, len(topBits))}
	for j, b := range topBits {
		w.Symbols[j] = b & 1
		w.Bits[j] = 1
	}
	return w
}

// Segments returns the number of segments of the word.
func (w Word) Segments() int { return len(w.Symbols) }

// Clone returns a deep copy of w.
func (w Word) Clone() Word {
	out := Word{Symbols: make([]uint8, len(w.Symbols)), Bits: make([]uint8, len(w.Bits))}
	copy(out.Symbols, w.Symbols)
	copy(out.Bits, w.Bits)
	return out
}

// Equal reports whether two words have identical symbols and cardinalities.
func (w Word) Equal(o Word) bool {
	if len(w.Symbols) != len(o.Symbols) {
		return false
	}
	for j := range w.Symbols {
		if w.Symbols[j] != o.Symbols[j] || w.Bits[j] != o.Bits[j] {
			return false
		}
	}
	return true
}

// Contains reports whether a full-cardinality summary (maxBits bits per
// segment) falls under this word, i.e. whether for every segment the word's
// symbol equals the top Bits[j] bits of the summary's symbol.
func (w Word) Contains(fullSAX []uint8, maxBits int) bool {
	for j := range w.Symbols {
		if fullSAX[j]>>(maxBits-int(w.Bits[j])) != w.Symbols[j] {
			return false
		}
	}
	return true
}

// Child returns the word obtained by promoting segment seg to one more bit
// of cardinality and appending the given bit (0 or 1). This is the split
// operation: a leaf with word w becomes an inner node with children
// w.Child(seg, 0) and w.Child(seg, 1).
func (w Word) Child(seg int, bit uint8) Word {
	out := w.Clone()
	out.Symbols[seg] = w.Symbols[seg]<<1 | (bit & 1)
	out.Bits[seg]++
	return out
}

// PrefixBitAt returns the bit that a full-cardinality symbol would
// contribute at position Bits[seg]+1 of segment seg — the bit that routes an
// entry to one of the two children created by splitting on seg.
func (w Word) PrefixBitAt(seg int, fullSym uint8, maxBits int) uint8 {
	return (fullSym >> (maxBits - int(w.Bits[seg]) - 1)) & 1
}

// String renders the word in the paper's subscript style, e.g.
// "1(2) 0(2) 10(4)" where the parenthesized number is the cardinality.
func (w Word) String() string {
	var sb strings.Builder
	for j := range w.Symbols {
		if j > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%0*b(%d)", w.Bits[j], w.Symbols[j], 1<<w.Bits[j])
	}
	return sb.String()
}

// Key returns a compact string usable as a map key. Two words have equal
// keys iff Equal reports true.
func (w Word) Key() string {
	b := make([]byte, 0, 2*len(w.Symbols))
	for j := range w.Symbols {
		b = append(b, w.Symbols[j], w.Bits[j])
	}
	return string(b)
}

// RootKey packs the top bit of each segment of a full-cardinality summary
// into an integer in [0, 2^w): the index of the root subtree (and of the
// receiving buffer) the series belongs to. This is how stage 2 of ParIS and
// stage 1 of MESSI route summaries (paper §III).
func RootKey(fullSAX []uint8, maxBits int) uint32 {
	var key uint32
	for _, s := range fullSAX {
		key = key<<1 | uint32(s>>(maxBits-1))
	}
	return key
}

// RootWordFromKey reconstructs the 1-bit root word corresponding to a root
// key for the given segment count.
func RootWordFromKey(key uint32, segments int) Word {
	w := Word{Symbols: make([]uint8, segments), Bits: make([]uint8, segments)}
	for j := 0; j < segments; j++ {
		w.Symbols[j] = uint8(key>>(segments-1-j)) & 1
		w.Bits[j] = 1
	}
	return w
}
