package isax

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustQuantizer(t *testing.T, bits int) *Quantizer {
	t.Helper()
	q, err := NewQuantizer(bits)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewQuantizerValidation(t *testing.T) {
	for _, bits := range []int{0, -1, 9, 100} {
		if _, err := NewQuantizer(bits); err == nil {
			t.Errorf("NewQuantizer(%d): expected error", bits)
		}
	}
	for bits := 1; bits <= MaxBits; bits++ {
		if _, err := NewQuantizer(bits); err != nil {
			t.Errorf("NewQuantizer(%d): %v", bits, err)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.8413447460685429, 1},   // Φ(1)
		{0.15865525393145705, -1}, // Φ(-1)
		{0.9772498680518208, 2},   // Φ(2)
		{0.25, -0.6744897501960817},
		{0.75, 0.6744897501960817},
	}
	for _, tc := range cases {
		if got := normalQuantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("normalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBreakpointsSortedAndSymmetric(t *testing.T) {
	q := mustQuantizer(t, 8)
	for bits := 1; bits <= 8; bits++ {
		bp := q.Breakpoints(bits)
		if len(bp) != (1<<bits)-1 {
			t.Fatalf("bits=%d: %d breakpoints, want %d", bits, len(bp), (1<<bits)-1)
		}
		if !sort.Float64sAreSorted(bp) {
			t.Fatalf("bits=%d: breakpoints not sorted", bits)
		}
		// N(0,1) is symmetric: bp[k] == -bp[len-1-k].
		for k := range bp {
			if math.Abs(bp[k]+bp[len(bp)-1-k]) > 1e-9 {
				t.Fatalf("bits=%d: breakpoints not symmetric at %d: %v vs %v",
					bits, k, bp[k], bp[len(bp)-1-k])
			}
		}
	}
	// Classic 1-bit cut is at 0.
	if bp := q.Breakpoints(1); math.Abs(bp[0]) > 1e-12 {
		t.Errorf("1-bit breakpoint = %v, want 0", bp[0])
	}
}

func TestSymbolRegionConsistency(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		v := rng.NormFloat64() * 2
		for bits := 1; bits <= 8; bits++ {
			sym := q.Symbol(v, bits)
			lo, hi := q.Region(sym, bits)
			if v < lo || v >= hi {
				t.Fatalf("bits=%d: value %v assigned symbol %d with region [%v,%v)", bits, v, sym, lo, hi)
			}
		}
	}
}

func TestSymbolNestingProperty(t *testing.T) {
	// The b-bit symbol must be the top b bits of the 8-bit symbol; leaf
	// splitting relies on this.
	q := mustQuantizer(t, 8)
	f := func(raw float64) bool {
		v := math.Mod(raw, 10) // keep finite and in a reasonable range
		full := q.Symbol(v, 8)
		for bits := 1; bits < 8; bits++ {
			if q.Symbol(v, bits) != full>>(8-bits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSymbolBoundaryBelongsToUpperRegion(t *testing.T) {
	q := mustQuantizer(t, 2)
	bp := q.Breakpoints(2)
	for i, b := range bp {
		sym := q.Symbol(b, 2)
		if int(sym) != i+1 {
			t.Errorf("symbol at breakpoint %d (%v) = %d, want %d", i, b, sym, i+1)
		}
	}
}

func TestSymbolsIntoMatchesSymbol(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(2))
	coeffs := make([]float64, 16)
	for j := range coeffs {
		coeffs[j] = rng.NormFloat64()
	}
	out := make([]uint8, 16)
	q.SymbolsInto(coeffs, out)
	for j, v := range coeffs {
		if want := q.Symbol(v, 8); out[j] != want {
			t.Errorf("SymbolsInto[%d] = %d, want %d", j, out[j], want)
		}
	}
}

func TestRegionExtremes(t *testing.T) {
	q := mustQuantizer(t, 3)
	lo, _ := q.Region(0, 3)
	if !math.IsInf(lo, -1) {
		t.Errorf("first region lo = %v, want -Inf", lo)
	}
	_, hi := q.Region(7, 3)
	if !math.IsInf(hi, 1) {
		t.Errorf("last region hi = %v, want +Inf", hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range symbol")
		}
	}()
	q.Region(8, 3)
}

func TestWordContainsAndChild(t *testing.T) {
	q := mustQuantizer(t, 8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		segments := 4
		full := make([]uint8, segments)
		for j := range full {
			full[j] = uint8(rng.Intn(256))
		}
		root := RootWordFromKey(RootKey(full, 8), segments)
		if !root.Contains(full, 8) {
			t.Fatalf("root word %v does not contain its own summary %v", root, full)
		}
		// Repeated splitting: the summary must land in exactly one child.
		w := root
		for depth := 0; depth < 20; depth++ {
			seg := rng.Intn(segments)
			if w.Bits[seg] >= 8 {
				continue
			}
			c0, c1 := w.Child(seg, 0), w.Child(seg, 1)
			in0, in1 := c0.Contains(full, 8), c1.Contains(full, 8)
			if in0 == in1 {
				t.Fatalf("summary in %d children after split (word=%v seg=%d)", b2i(in0)+b2i(in1), w, seg)
			}
			bit := w.PrefixBitAt(seg, full[seg], 8)
			if (bit == 0) != in0 {
				t.Fatalf("PrefixBitAt says %d but containment says c0=%v", bit, in0)
			}
			if in0 {
				w = c0
			} else {
				w = c1
			}
		}
	}
	_ = q
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestWordCloneIndependence(t *testing.T) {
	w := NewRootWord([]uint8{1, 0, 1, 0})
	c := w.Clone()
	c.Symbols[0] = 0
	c.Bits[1] = 5
	if w.Symbols[0] != 1 || w.Bits[1] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestWordEqualAndKey(t *testing.T) {
	a := NewRootWord([]uint8{1, 0})
	b := NewRootWord([]uint8{1, 0})
	c := a.Child(0, 1)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("identical words not equal")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different words compare equal")
	}
	if a.Equal(Word{Symbols: []uint8{1}, Bits: []uint8{1}}) {
		t.Error("words of different segment counts compare equal")
	}
}

func TestWordString(t *testing.T) {
	w := NewRootWord([]uint8{1, 0})
	w = w.Child(0, 0) // segment 0 now "10" at 4 cardinality
	if got := w.String(); got != "10(4) 0(2)" {
		t.Errorf("String() = %q, want %q", got, "10(4) 0(2)")
	}
}

func TestRootKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		segments := 1 + rng.Intn(16)
		full := make([]uint8, segments)
		for j := range full {
			full[j] = uint8(rng.Intn(256))
		}
		key := RootKey(full, 8)
		w := RootWordFromKey(key, segments)
		for j := 0; j < segments; j++ {
			if w.Symbols[j] != full[j]>>7 {
				t.Fatalf("round-trip symbol %d = %d, want %d", j, w.Symbols[j], full[j]>>7)
			}
		}
		if !w.Contains(full, 8) {
			t.Fatal("root word from key does not contain summary")
		}
	}
}

func TestRootKeyRange(t *testing.T) {
	full := []uint8{255, 255, 255, 255}
	if key := RootKey(full, 8); key != 15 {
		t.Errorf("RootKey(all-high, 4 segs) = %d, want 15", key)
	}
	if key := RootKey([]uint8{0, 0, 0, 0}, 8); key != 0 {
		t.Errorf("RootKey(all-low) = %d, want 0", key)
	}
}
