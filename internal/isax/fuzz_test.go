package isax_test

import (
	"encoding/binary"
	"math"
	"testing"

	"dsidx/internal/isax"
	"dsidx/internal/paa"
	"dsidx/internal/series"
)

// FuzzSAXLowerBound property-tests the guarantee the whole index family
// rests on: the iSAX lower bound never exceeds the true squared Euclidean
// distance, so pruning on it can never discard the true nearest neighbor.
// The fuzzer drives both the query and the candidate; any counterexample
// would be an exactness bug in every index in this repository.
func FuzzSAXLowerBound(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		const n, w, maxBits = 64, 8, 8
		q, s := fuzzSeries(data, n), fuzzSeries(append([]byte{0xA5}, data...), n)
		quant, err := isax.NewQuantizer(maxBits)
		if err != nil {
			t.Fatal(err)
		}
		qPAA := paa.Transform(q, w)
		sPAA := paa.Transform(s, w)
		sax := make([]uint8, w)
		quant.SymbolsInto(sPAA, sax)
		d := series.SquaredED(q, s)
		// Tiny relative slack: the bound and the distance accumulate float64
		// rounding along different orders.
		limit := d*(1+1e-9) + 1e-9

		table := isax.NewQueryTable(quant, qPAA, n)
		if lb := table.MinDistSAX(sax); lb > limit {
			t.Errorf("table lower bound %v exceeds true distance %v", lb, d)
		}
		word := isax.Word{Symbols: sax, Bits: []uint8{maxBits, maxBits, maxBits, maxBits, maxBits, maxBits, maxBits, maxBits}}
		if lb := isax.MinDist(quant, qPAA, word, n); lb > limit {
			t.Errorf("word lower bound %v exceeds true distance %v", lb, d)
		}
		// Every coarser cardinality — the node words a tree traversal
		// prunes on — must lower-bound the distance too.
		mt := isax.NewMultiTable(quant, table)
		coarse := word
		for bits := maxBits; bits >= 1; bits-- {
			if lb := mt.DistWord(coarse); lb > limit {
				t.Errorf("%d-bit word lower bound %v exceeds true distance %v", bits, lb, d)
			}
			if bits > 1 {
				next := coarse.Clone()
				for j := range next.Symbols {
					next.Symbols[j] >>= 1
					next.Bits[j]--
				}
				coarse = next
			}
		}
		// The DTW envelope bound with a degenerate (window 0) envelope is an
		// ED lower bound as well.
		dtw := isax.NewDTWQueryTable(quant, qPAA, qPAA, n)
		if lb := dtw.MinDistSAX(sax); lb > limit {
			t.Errorf("DTW-table lower bound %v exceeds true distance %v", lb, d)
		}
	})
}

// fuzzSeries expands arbitrary bytes into a finite length-n series: four
// bytes per point via float32 bit patterns, with non-finite and huge values
// replaced deterministically so the mathematical bound claim applies.
func fuzzSeries(data []byte, n int) series.Series {
	out := make(series.Series, n)
	for i := 0; i < n; i++ {
		var u uint32
		for j := 0; j < 4; j++ {
			u <<= 8
			if len(data) > 0 {
				u |= uint32(data[(i*4+j)%len(data)])
			}
		}
		v := math.Float32frombits(u)
		if f64 := float64(v); math.IsNaN(f64) || math.Abs(f64) > 1e6 {
			// Fold the bit pattern into a modest finite value instead.
			v = float32(int32(u%2001)-1000) / 250
		}
		out[i] = v
	}
	// Mix in the length of data so short inputs still vary.
	if len(data) > 0 {
		out[0] += float32(binary.LittleEndian.Uint16(append(data, 0, 0)[:2])) / 65536
	}
	return out
}
