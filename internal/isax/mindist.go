package isax

import (
	"fmt"
	"math"

	"dsidx/internal/vector"
)

// This file implements the lower-bounding distances between a query and iSAX
// summaries. The guarantee chain (property-tested across packages) is
//
//	MinDist(PAA(q), iSAX(s)) <= (n/w)·ED²(PAA(q), PAA(s)) <= ED²(q, s)
//
// so pruning on MinDist never discards the true nearest neighbor.

// MinDist returns the squared lower-bounding distance between the query's
// PAA coefficients and an iSAX word, for original series length n. For each
// segment, the distance contribution is the gap between the coefficient and
// the word's value region (zero if the coefficient falls inside the region).
func MinDist(q *Quantizer, paaCoeffs []float64, w Word, n int) float64 {
	if len(paaCoeffs) != len(w.Symbols) {
		panic(fmt.Sprintf("isax: MinDist segment mismatch %d != %d", len(paaCoeffs), len(w.Symbols)))
	}
	ratio := float64(n) / float64(len(paaCoeffs))
	var acc float64
	for j, v := range paaCoeffs {
		lo, hi := q.Region(w.Symbols[j], int(w.Bits[j]))
		switch {
		case v < lo:
			d := lo - v
			acc += d * d
		case v > hi:
			d := v - hi
			acc += d * d
		}
	}
	return acc * ratio
}

// QueryTable is a per-query lookup table for lower-bound scans over
// full-cardinality summaries (the SAX array of ParIS, paper Figure 2).
// cell[j][s] holds the ready-scaled squared distance contribution of segment
// j when the candidate's symbol is s, so the bound for one series is the sum
// of w table lookups — this is the memory-access pattern the paper
// accelerates with SIMD.
type QueryTable struct {
	segments int
	cells    []float64 // segments × 2^maxBits, row-major
	card     int
}

// NewQueryTable precomputes the lookup table for the given query PAA
// coefficients and original series length n.
func NewQueryTable(q *Quantizer, paaCoeffs []float64, n int) *QueryTable {
	t := &QueryTable{}
	t.FillED(q, paaCoeffs, n)
	return t
}

// FillED recomputes the table in place for a new query, reusing the cell
// array when the shape matches — the table is ~w·2^maxBits float64s (32KB at
// the defaults), so pooled scratch tables keep sustained query rates off the
// allocator.
func (t *QueryTable) FillED(q *Quantizer, paaCoeffs []float64, n int) {
	segs := len(paaCoeffs)
	card := 1 << q.maxBits
	t.reshape(segs, card)
	ratio := float64(n) / float64(segs)
	for j, v := range paaCoeffs {
		row := t.cells[j*card : (j+1)*card]
		for s := 0; s < card; s++ {
			lo, hi := q.Region(uint8(s), q.maxBits)
			switch {
			case v < lo:
				d := lo - v
				row[s] = d * d * ratio
			case v > hi:
				d := v - hi
				row[s] = d * d * ratio
			default:
				row[s] = 0
			}
		}
	}
}

// reshape sizes the cell array for segs × card entries, reallocating only on
// growth or shape change.
func (t *QueryTable) reshape(segs, card int) {
	t.segments, t.card = segs, card
	if cap(t.cells) >= segs*card {
		t.cells = t.cells[:segs*card]
	} else {
		t.cells = make([]float64, segs*card)
	}
}

// Cells exposes the row-major lookup table (segments × cardinality) for
// batched kernels in internal/vector. The slice must not be modified.
func (t *QueryTable) Cells() []float64 { return t.cells }

// Card returns the cardinality of the table — the row stride of Cells,
// which batched kernels need alongside the cell array.
func (t *QueryTable) Card() int { return t.card }

// MinDistSAX returns the lower-bounding distance between the query
// underlying t and one full-cardinality summary. At w = 16 (the paper's
// configuration) it delegates to the vector kernel, so per-entry and
// batched scans produce bit-identical bounds by construction, whichever
// implementation dispatch selects.
func (t *QueryTable) MinDistSAX(fullSAX []uint8) float64 {
	if len(fullSAX) == 16 && t.segments == 16 {
		return vector.MinDistLookup16(t.cells, fullSAX, t.card)
	}
	var acc float64
	cells, card := t.cells, t.card
	for j, s := range fullSAX {
		acc += cells[j*card+int(s)]
	}
	return acc
}

// MinDistSAXStrided computes lower bounds for a batch of summaries laid out
// back-to-back in sax (stride = segments), writing one bound per summary
// into out. Separating the batched form lets internal/vector provide an
// unrolled implementation with identical semantics.
func (t *QueryTable) MinDistSAXStrided(sax []uint8, out []float64) {
	w := t.segments
	if len(sax) != len(out)*w {
		panic(fmt.Sprintf("isax: strided batch mismatch: %d summaries of %d segments vs %d bounds",
			len(sax)/w, w, len(out)))
	}
	vector.MinDistBatch(t.cells, sax, w, t.card, out)
}

// MinDistWord returns the lower bound between the query underlying t and a
// variable-cardinality word, using region arithmetic from the quantizer.
// Node-level pruning in MESSI uses this (leaves store their words, not
// full-cardinality summaries).
func MinDistWord(q *Quantizer, paaCoeffs []float64, w Word, n int) float64 {
	return MinDist(q, paaCoeffs, w, n)
}

// MinDistDTW returns a DTW-valid lower bound between a query envelope's PAA
// bounds and an iSAX word. For DTW queries (paper §V) the query is replaced
// by its warping envelope: a segment contributes distance only if the word's
// region lies entirely above the envelope-upper PAA or below the
// envelope-lower PAA. The bound is valid because every warping of the query
// stays inside the envelope.
func MinDistDTW(q *Quantizer, paaUpper, paaLower []float64, w Word, n int) float64 {
	if len(paaUpper) != len(w.Symbols) || len(paaLower) != len(w.Symbols) {
		panic("isax: MinDistDTW segment mismatch")
	}
	ratio := float64(n) / float64(len(paaUpper))
	var acc float64
	for j := range paaUpper {
		lo, hi := q.Region(w.Symbols[j], int(w.Bits[j]))
		switch {
		case paaUpper[j] < lo:
			d := lo - paaUpper[j]
			acc += d * d
		case paaLower[j] > hi:
			d := paaLower[j] - hi
			acc += d * d
		}
	}
	return acc * ratio
}

// NewDTWQueryTable precomputes a lookup table of per-segment DTW lower-bound
// contributions for a query envelope's PAA bounds (see MinDistDTW). The
// returned table's MinDistSAX then yields an envelope-based DTW lower bound
// for full-cardinality summaries, letting the DTW search reuse the same
// batched scan kernels as the Euclidean search (paper §V: DTW support with
// "no changes ... in the index structure").
func NewDTWQueryTable(q *Quantizer, paaUpper, paaLower []float64, n int) *QueryTable {
	t := &QueryTable{}
	t.FillDTW(q, paaUpper, paaLower, n)
	return t
}

// FillDTW recomputes the table in place for a new query envelope, reusing
// the cell array when the shape matches (see FillED).
func (t *QueryTable) FillDTW(q *Quantizer, paaUpper, paaLower []float64, n int) {
	if len(paaUpper) != len(paaLower) {
		panic("isax: NewDTWQueryTable envelope mismatch")
	}
	segs := len(paaUpper)
	card := 1 << q.maxBits
	t.reshape(segs, card)
	ratio := float64(n) / float64(segs)
	for j := 0; j < segs; j++ {
		row := t.cells[j*card : (j+1)*card]
		for s := 0; s < card; s++ {
			lo, hi := q.Region(uint8(s), q.maxBits)
			switch {
			case paaUpper[j] < lo:
				d := lo - paaUpper[j]
				row[s] = d * d * ratio
			case paaLower[j] > hi:
				d := paaLower[j] - hi
				row[s] = d * d * ratio
			default:
				row[s] = 0
			}
		}
	}
}

// MultiTable extends a QueryTable to every cardinality level: cell (j, s)
// at level b holds the minimum lower-bound contribution of segment j over
// all full-cardinality symbols whose b-bit prefix is s. A node-word lower
// bound then costs one lookup per segment regardless of the word's
// cardinalities — the precomputed-distance trick the C implementations use
// to make tree-level pruning as cheap as SAX-array scanning.
//
// Because each coarse cell is the minimum over its sub-region, the bound
// remains valid (≤ the true MinDist of the word, which is itself ≤ the true
// distance); it equals MinDist exactly, since the region distance of a
// union of adjacent regions is the minimum of the member distances.
type MultiTable struct {
	segments int
	maxBits  int
	// levels[b-1] holds segments × 2^b cells, row-major by segment.
	levels [][]float64
}

// NewMultiTable derives per-cardinality tables from a base full-cardinality
// table (Euclidean or DTW — any per-symbol contribution table works).
func NewMultiTable(q *Quantizer, base *QueryTable) *MultiTable {
	mt := &MultiTable{}
	mt.FillFrom(q, base)
	return mt
}

// FillFrom rederives every cardinality level from the (re)filled base table,
// reusing each level's backing array when the shape matches. The
// full-cardinality level aliases base's cells rather than copying them.
func (mt *MultiTable) FillFrom(q *Quantizer, base *QueryTable) {
	maxBits := q.maxBits
	mt.segments = base.segments
	mt.maxBits = maxBits
	if len(mt.levels) != maxBits {
		mt.levels = make([][]float64, maxBits)
	}
	mt.levels[maxBits-1] = base.cells
	for b := maxBits - 1; b >= 1; b-- {
		card := 1 << b
		below := mt.levels[b] // level b+1 bits
		cells := mt.levels[b-1]
		if len(cells) != base.segments*card {
			cells = make([]float64, base.segments*card)
		}
		for j := 0; j < base.segments; j++ {
			for s := 0; s < card; s++ {
				lo := below[j*2*card+2*s]
				hi := below[j*2*card+2*s+1]
				if hi < lo {
					lo = hi
				}
				cells[j*card+s] = lo
			}
		}
		mt.levels[b-1] = cells
	}
}

// DistWord returns the lower bound between the table's query and a
// variable-cardinality word: one lookup per segment.
func (mt *MultiTable) DistWord(w Word) float64 {
	var acc float64
	for j, sym := range w.Symbols {
		bits := int(w.Bits[j])
		acc += mt.levels[bits-1][j<<bits+int(sym)]
	}
	return acc
}

// DistSAX returns the full-cardinality bound (equivalent to the base
// table's MinDistSAX — at w = 16 both delegate to the same vector kernel,
// keeping the equivalence bit-exact under either dispatch choice).
func (mt *MultiTable) DistSAX(fullSAX []uint8) float64 {
	cells := mt.levels[mt.maxBits-1]
	card := 1 << mt.maxBits
	if len(fullSAX) == 16 && mt.segments == 16 {
		return vector.MinDistLookup16(cells, fullSAX, card)
	}
	var acc float64
	for j, s := range fullSAX {
		acc += cells[j*card+int(s)]
	}
	return acc
}

// Inf is a convenience +Inf used by search loops.
var Inf = math.Inf(1)
