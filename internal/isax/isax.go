// Package isax implements the indexable Symbolic Aggregate approXimation
// (iSAX) representation (paper §II, Figure 1(c)) used by the ADS+, ParIS,
// ParIS+ and MESSI indexes.
//
// iSAX discretizes the PAA coefficients of a series: the value axis is cut
// into regions by the quantiles of the standard normal distribution (data
// series are z-normalized, so their values are approximately N(0,1)), and
// each PAA coefficient is replaced by the symbol of the region it falls in.
// Each segment may use a different cardinality (number of regions); a
// cardinality of 2^b needs b bits. Symbols are nested: the b-bit symbol of a
// value is the top b bits of its maxBits-bit symbol, which is what lets a
// leaf split by "promoting" one segment to one more bit.
//
// The package also provides MinDist, the lower-bounding distance between a
// query (as PAA coefficients) and an iSAX word, and a per-query lookup table
// that makes scanning millions of full-cardinality summaries cheap.
package isax

import (
	"fmt"
	"math"
	"sort"
)

// MaxBits is the maximum cardinality in bits supported per segment: 8 bits =
// cardinality 256, the configuration used by the paper and by iSAX2+/ADS+.
const MaxBits = 8

// MaxSegments bounds the number of PAA segments. The root fan-out of the
// index keys on one bit per segment, so 16 segments (the paper's w) already
// yields 2^16 root subtrees; allowing more would explode the root array.
const MaxSegments = 16

// Quantizer holds the nested breakpoint tables for every cardinality from
// 2^1 to 2^maxBits and performs value→symbol assignment. A Quantizer is
// immutable after construction and safe for concurrent use.
type Quantizer struct {
	maxBits int
	// bp[b] has 2^(b+1)-1 sorted breakpoints for cardinality 2^(b+1)
	// (index 0 ↔ 1 bit). All tables are subsamples of the maxBits table, so
	// symbol prefixes are consistent across cardinalities by construction.
	bp [][]float64
}

// NewQuantizer builds breakpoint tables for cardinalities up to 2^maxBits.
func NewQuantizer(maxBits int) (*Quantizer, error) {
	if maxBits < 1 || maxBits > MaxBits {
		return nil, fmt.Errorf("isax: maxBits %d out of range [1,%d]", maxBits, MaxBits)
	}
	full := normalBreakpoints(maxBits)
	q := &Quantizer{maxBits: maxBits, bp: make([][]float64, maxBits)}
	q.bp[maxBits-1] = full
	for b := 1; b < maxBits; b++ {
		step := 1 << (maxBits - b) // take every step-th quantile
		sub := make([]float64, (1<<b)-1)
		for k := range sub {
			sub[k] = full[(k+1)*step-1]
		}
		q.bp[b-1] = sub
	}
	return q, nil
}

// normalBreakpoints returns the 2^bits−1 quantiles of N(0,1) that cut the
// real line into 2^bits equiprobable regions.
func normalBreakpoints(bits int) []float64 {
	card := 1 << bits
	bp := make([]float64, card-1)
	for k := 1; k < card; k++ {
		bp[k-1] = normalQuantile(float64(k) / float64(card))
	}
	return bp
}

// normalQuantile computes Φ⁻¹(p) for p in (0,1) using Acklam's rational
// approximation refined by one Halley step; absolute error below 1e-13,
// far beyond what symbol assignment needs.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("isax: quantile argument %v out of (0,1)", p))
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// One Halley refinement using erfc for the forward CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// MaxBitsValue returns the quantizer's maximum cardinality in bits.
func (q *Quantizer) MaxBitsValue() int { return q.maxBits }

// Breakpoints returns the sorted breakpoint slice for the given cardinality
// bits (1..maxBits). The returned slice is shared and must not be modified.
func (q *Quantizer) Breakpoints(bits int) []float64 {
	if bits < 1 || bits > q.maxBits {
		panic(fmt.Sprintf("isax: breakpoint bits %d out of range [1,%d]", bits, q.maxBits))
	}
	return q.bp[bits-1]
}

// Symbol returns the symbol of value v at the given cardinality bits:
// the number of breakpoints ≤ v, i.e. the index of the region containing v.
func (q *Quantizer) Symbol(v float64, bits int) uint8 {
	bp := q.Breakpoints(bits)
	// First index with bp[i] > v; equals the count of breakpoints <= v.
	i := sort.Search(len(bp), func(i int) bool { return bp[i] > v })
	return uint8(i)
}

// SymbolsInto assigns the maxBits-cardinality symbol for each PAA
// coefficient into out (len(out) == len(paaCoeffs)). This is the hot path of
// the bulk-loading stages; it allocates nothing.
func (q *Quantizer) SymbolsInto(paaCoeffs []float64, out []uint8) {
	if len(paaCoeffs) != len(out) {
		panic(fmt.Sprintf("isax: SymbolsInto length mismatch %d != %d", len(paaCoeffs), len(out)))
	}
	bp := q.bp[q.maxBits-1]
	for j, v := range paaCoeffs {
		i := sort.Search(len(bp), func(i int) bool { return bp[i] > v })
		out[j] = uint8(i)
	}
}

// Region returns the half-open value interval [lo, hi) covered by symbol sym
// at the given cardinality bits. The first region has lo = -Inf and the last
// has hi = +Inf.
func (q *Quantizer) Region(sym uint8, bits int) (lo, hi float64) {
	bp := q.Breakpoints(bits)
	card := 1 << bits
	if int(sym) >= card {
		panic(fmt.Sprintf("isax: symbol %d out of range for %d bits", sym, bits))
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	if sym > 0 {
		lo = bp[sym-1]
	}
	if int(sym) < card-1 {
		hi = bp[sym]
	}
	return lo, hi
}
