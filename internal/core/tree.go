package core

import (
	"fmt"
	"math"
	"sync"

	"dsidx/internal/isax"
)

// Tree is the iSAX index tree. The conceptual root is the Roots array: one
// slot per combination of the first bit of each segment (2^Segments slots),
// created lazily as series arrive.
//
// Concurrency contract: distinct root subtrees may be built concurrently by
// distinct goroutines with no locking (this is the parallelization unit of
// both ParIS and MESSI); a single subtree must never be mutated
// concurrently. Registering a new root child takes a short mutex.
type Tree struct {
	cfg   Config
	quant *isax.Quantizer

	roots []*Node

	mu       sync.Mutex
	occupied []uint32 // keys of non-nil root children, in creation order
}

// NewTree creates an empty tree for the configuration (defaults applied).
func NewTree(cfg Config) (*Tree, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	quant, err := isax.NewQuantizer(cfg.MaxBits)
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg, quant: quant, roots: make([]*Node, cfg.RootFanout())}, nil
}

// Config returns the normalized configuration.
func (t *Tree) Config() Config { return t.cfg }

// Quantizer returns the shared quantizer.
func (t *Tree) Quantizer() *isax.Quantizer { return t.quant }

// RootKey computes the root-subtree key of a full-cardinality summary.
func (t *Tree) RootKey(sax []uint8) uint32 { return isax.RootKey(sax, t.cfg.MaxBits) }

// Subtree returns the root child for key, or nil.
func (t *Tree) Subtree(key uint32) *Node { return t.roots[key] }

// ensureRoot returns the root child for key, creating and registering it if
// needed. Only the goroutine owning the key may call it.
func (t *Tree) ensureRoot(key uint32) *Node {
	if n := t.roots[key]; n != nil {
		return n
	}
	n := &Node{Word: isax.RootWordFromKey(key, t.cfg.Segments)}
	t.roots[key] = n
	t.mu.Lock()
	t.occupied = append(t.occupied, key)
	t.mu.Unlock()
	return n
}

// CloneShell returns a new tree sharing every subtree pointer (and the
// quantizer) with t. The live-merge path mutates the shell only through
// SetSubtree and SubtreeInsert on subtrees it has cloned or created first,
// so t — and any query still traversing it — is never touched.
func (t *Tree) CloneShell() *Tree {
	t.mu.Lock()
	occ := make([]uint32, len(t.occupied))
	copy(occ, t.occupied)
	t.mu.Unlock()
	roots := make([]*Node, len(t.roots))
	copy(roots, t.roots)
	return &Tree{cfg: t.cfg, quant: t.quant, roots: roots, occupied: occ}
}

// SetSubtree installs n as the root child for key, registering the key if
// it was previously empty. A nil n is a no-op. Distinct keys may be set by
// distinct goroutines concurrently (the merge parallelization unit, like
// subtree building); the same key must not.
func (t *Tree) SetSubtree(key uint32, n *Node) {
	if n == nil {
		return
	}
	fresh := t.roots[key] == nil
	t.roots[key] = n
	if fresh {
		t.mu.Lock()
		t.occupied = append(t.occupied, key)
		t.mu.Unlock()
	}
}

// CloneSubtreeFiltered returns a deep copy of the root subtree for key with
// every entry whose position satisfies drop removed. The copy is rebuilt by
// re-inserting the surviving entries (leaf order) into a fresh root child:
// filtering in place cannot work, because CheckInvariants pins every inner
// node's children to exact Word.Child forms — an inner node whose side
// empties out must disappear, and only a rebuild keeps the word chain
// valid. Returns nil when the subtree does not exist; returns a plain
// Clone when the subtree holds flushed leaves (their entries live on disk
// and cannot be filtered here). The caller owns the result, exactly as
// with Clone — the merge path filters tombstoned series out of a subtree
// while copying it aside.
func (t *Tree) CloneSubtreeFiltered(key uint32, drop func(pos int32) bool) *Node {
	old := t.roots[key]
	if old == nil {
		return nil
	}
	flushed := false
	old.WalkLeaves(func(leaf *Node) {
		if leaf.Flushed {
			flushed = true
		}
	})
	if flushed {
		return old.Clone()
	}
	w, sl := t.cfg.Segments, t.cfg.SeriesLen
	fresh := &Node{Word: isax.RootWordFromKey(key, w)}
	old.WalkLeaves(func(leaf *Node) {
		for i := 0; i < leaf.Count; i++ {
			if drop(leaf.Pos[i]) {
				continue
			}
			fresh.insert(t.cfg, leaf.entrySAX(i, w), leaf.Pos[i], leaf.EntryRaw(i, sl))
		}
	})
	return fresh
}

// SubtreeInsert inserts a summary into the subtree for key, which the
// caller has already computed (and owns). sax is copied.
func (t *Tree) SubtreeInsert(key uint32, sax []uint8, pos int32) {
	t.ensureRoot(key).insert(t.cfg, sax, pos, nil)
}

// SubtreeInsertRaw is SubtreeInsert carrying the series' raw values into
// the destination leaf, for trees with materialized (leaf-ordered) raw
// storage. sax and raw are copied. Every insert into a materialized tree
// must use this form, or leaves would hold fewer raw blocks than entries.
func (t *Tree) SubtreeInsertRaw(key uint32, sax []uint8, pos int32, raw []float32) {
	t.ensureRoot(key).insert(t.cfg, sax, pos, raw)
}

// Insert routes a summary to its root subtree and inserts it. Convenience
// for serial builders (ADS+); not safe for concurrent use.
func (t *Tree) Insert(sax []uint8, pos int32) {
	t.SubtreeInsert(t.RootKey(sax), sax, pos)
}

// OccupiedKeys returns a snapshot of the keys of existing root subtrees.
func (t *Tree) OccupiedKeys() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, len(t.occupied))
	copy(out, t.occupied)
	return out
}

// Count returns the total number of indexed series.
func (t *Tree) Count() int {
	total := 0
	for _, key := range t.OccupiedKeys() {
		total += t.roots[key].Count
	}
	return total
}

// VisitLeaves calls fn on every leaf of the tree.
func (t *Tree) VisitLeaves(fn func(*Node)) {
	for _, key := range t.OccupiedKeys() {
		t.roots[key].WalkLeaves(fn)
	}
}

// BestLeafApprox descends the tree following the query's summary and
// returns the leaf whose word is closest to the query — the approximate
// search that seeds the BSF in every index's exact algorithm ("the leaf
// with the smallest lower bound distance to the query", paper §III).
// Returns nil for an empty tree.
func (t *Tree) BestLeafApprox(querySAX []uint8, queryPAA []float64) *Node {
	node := t.roots[t.RootKey(querySAX)]
	if node == nil {
		// The query's own root region is empty: fall back to the occupied
		// root child with the smallest lower bound (they are 1-bit words,
		// so this scan is cheap relative to a query).
		best, bestDist := uint32(0), math.Inf(1)
		keys := t.OccupiedKeys()
		if len(keys) == 0 {
			return nil
		}
		for _, key := range keys {
			d := isax.MinDist(t.quant, queryPAA, t.roots[key].Word, t.cfg.SeriesLen)
			if d < bestDist {
				best, bestDist = key, d
			}
		}
		node = t.roots[best]
	}
	for !node.IsLeaf() {
		node = node.route(querySAX, t.cfg.MaxBits)
	}
	return node
}

// BestLeavesApprox returns up to p distinct leaves ordered by how
// promising they are for seeding the BSF: the leaf BestLeafApprox finds,
// then the multi-probe extension — each further probe descends the
// unexplored sibling subtree with the smallest node lower bound among all
// siblings passed so far (the neighboring regions a slightly-perturbed
// query summary would have routed to). Probing p leaves instead of one
// tightens the initial BSF, so fewer leaves survive tree pruning in the
// exact phase. Costs p descents plus one MinDist per passed sibling; no
// full root scan beyond the one BestLeafApprox already performs for an
// empty matching root. Returns nil for an empty tree.
func (t *Tree) BestLeavesApprox(querySAX []uint8, queryPAA []float64, p int) []*Node {
	if p <= 1 {
		// The classic single-leaf seed: no sibling bounds to compute.
		if leaf := t.BestLeafApprox(querySAX, queryPAA); leaf != nil {
			return []*Node{leaf}
		}
		return nil
	}
	start := t.roots[t.RootKey(querySAX)]
	if start == nil {
		// Same fallback as BestLeafApprox: the best occupied root child.
		bestDist := math.Inf(1)
		for _, key := range t.OccupiedKeys() {
			d := isax.MinDist(t.quant, queryPAA, t.roots[key].Word, t.cfg.SeriesLen)
			if d < bestDist {
				start, bestDist = t.roots[key], d
			}
		}
		if start == nil {
			return nil
		}
	}
	leaves := make([]*Node, 0, p)
	// siblings collects the un-routed child at every inner node passed,
	// with its lower bound; probes pop the minimum. Descent paths are
	// MaxDepth deep and p is small, so a linear-scan pop beats a heap.
	// The final probe's descent skips the bound computations entirely —
	// nothing will pop what it would collect.
	type cand struct {
		n  *Node
		lb float64
	}
	var siblings []cand
	descend := func(n *Node, collect bool) *Node {
		for !n.IsLeaf() {
			next := n.route(querySAX, t.cfg.MaxBits)
			if collect {
				sib := n.Left
				if sib == next {
					sib = n.Right
				}
				siblings = append(siblings, cand{sib, isax.MinDist(t.quant, queryPAA, sib.Word, t.cfg.SeriesLen)})
			}
			n = next
		}
		return n
	}
	leaves = append(leaves, descend(start, p > 1))
	for len(leaves) < p && len(siblings) > 0 {
		best := 0
		for i := 1; i < len(siblings); i++ {
			if siblings[i].lb < siblings[best].lb {
				best = i
			}
		}
		next := siblings[best].n
		siblings[best] = siblings[len(siblings)-1]
		siblings = siblings[:len(siblings)-1]
		leaves = append(leaves, descend(next, len(leaves)+1 < p))
	}
	return leaves
}

// MaterializeLeaves fills every leaf below n with its entries' raw values
// in leaf order: fetch resolves a stored position to that series' values
// (sl points each), and the leaf's Raw block is laid out entry-aligned
// with SAX/Pos. fetch may read through any backing — a flat collection,
// an append store, or a position-remapping series.View — because the
// values are copied into the leaf-owned block here; the materialized tree
// never aliases the storage fetch resolved through. Leaves already
// materialized are skipped, so the walk is idempotent; flushed leaves
// have no in-memory entries and are skipped too. Callers own the subtree
// (build and merge both materialize before publishing a snapshot).
func (n *Node) MaterializeLeaves(sl int, fetch func(pos int32) []float32) {
	n.WalkLeaves(func(leaf *Node) {
		if leaf.Raw != nil || leaf.Flushed || leaf.Count == 0 {
			return
		}
		raw := make([]float32, leaf.Count*sl)
		for i, p := range leaf.Pos {
			copy(raw[i*sl:(i+1)*sl], fetch(p))
		}
		leaf.Raw = raw
	})
}

// PruneWalk traverses the subtree rooted at n, pruning every node whose
// lower-bound distance to the query is at least bsf() at visit time, and
// calls emit with each surviving leaf and its lower bound. This is the
// node-level pruning of MESSI stage 3.
func (t *Tree) PruneWalk(n *Node, queryPAA []float64, bsf func() float64, emit func(*Node, float64)) {
	if n == nil {
		return
	}
	d := isax.MinDist(t.quant, queryPAA, n.Word, t.cfg.SeriesLen)
	if d >= bsf() {
		return
	}
	if n.IsLeaf() {
		emit(n, d)
		return
	}
	t.PruneWalk(n.Left, queryPAA, bsf, emit)
	t.PruneWalk(n.Right, queryPAA, bsf, emit)
}

// PruneWalkTable is PruneWalk with node bounds served by a precomputed
// multi-cardinality table (one lookup per segment instead of region
// arithmetic) — the hot path of MESSI query answering.
func (t *Tree) PruneWalkTable(n *Node, mt *isax.MultiTable, bsf func() float64, emit func(*Node, float64)) {
	if n == nil {
		return
	}
	d := mt.DistWord(n.Word)
	if d >= bsf() {
		return
	}
	if n.IsLeaf() {
		emit(n, d)
		return
	}
	t.PruneWalkTable(n.Left, mt, bsf, emit)
	t.PruneWalkTable(n.Right, mt, bsf, emit)
}

// Stats summarizes tree shape for diagnostics and tests.
type Stats struct {
	Series    int
	RootNodes int
	Inner     int
	Leaves    int
	MaxDepth  int
	// FillAvg is the mean leaf occupancy as a fraction of capacity.
	FillAvg float64
}

// Stats walks the tree and returns shape statistics.
func (t *Tree) Stats() Stats {
	var st Stats
	var walk func(n *Node, depth int)
	totalFill := 0.0
	walk = func(n *Node, depth int) {
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if n.IsLeaf() {
			st.Leaves++
			totalFill += float64(n.Count) / float64(t.cfg.LeafCapacity)
			return
		}
		st.Inner++
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	for _, key := range t.OccupiedKeys() {
		st.RootNodes++
		st.Series += t.roots[key].Count
		walk(t.roots[key], 1)
	}
	if st.Leaves > 0 {
		st.FillAvg = totalFill / float64(st.Leaves)
	}
	return st
}

// CheckInvariants validates the structural invariants of the whole tree:
// every leaf entry is contained in its leaf's word and in every ancestor's
// word, counts are consistent, and children's words refine their parent's.
// Tests call this after concurrent builds.
func (t *Tree) CheckInvariants() error {
	w := t.cfg.Segments
	var check func(n *Node, ancestors []isax.Word) error
	check = func(n *Node, ancestors []isax.Word) error {
		if n.IsLeaf() {
			if len(n.Pos) != n.Count || len(n.SAX) != n.Count*w {
				if !n.Flushed {
					return fmt.Errorf("leaf %v: count %d vs %d pos, %d sax bytes",
						n.Word, n.Count, len(n.Pos), len(n.SAX))
				}
			}
			if n.Raw != nil && len(n.Raw) != n.Count*t.cfg.SeriesLen {
				return fmt.Errorf("leaf %v: %d raw values for %d entries of length %d",
					n.Word, len(n.Raw), n.Count, t.cfg.SeriesLen)
			}
			for i := 0; i < len(n.Pos); i++ {
				sax := n.entrySAX(i, w)
				if !n.Word.Contains(sax, t.cfg.MaxBits) {
					return fmt.Errorf("leaf %v: entry %d not contained", n.Word, i)
				}
				for _, a := range ancestors {
					if !a.Contains(sax, t.cfg.MaxBits) {
						return fmt.Errorf("ancestor %v does not contain entry of leaf %v", a, n.Word)
					}
				}
			}
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("inner %v: missing child", n.Word)
		}
		if n.Left.Count+n.Right.Count != n.Count {
			return fmt.Errorf("inner %v: count %d != %d+%d",
				n.Word, n.Count, n.Left.Count, n.Right.Count)
		}
		if n.Left.Count == 0 || n.Right.Count == 0 {
			return fmt.Errorf("inner %v: empty child after split", n.Word)
		}
		wantL, wantR := n.Word.Child(n.SplitSeg, 0), n.Word.Child(n.SplitSeg, 1)
		if !n.Left.Word.Equal(wantL) || !n.Right.Word.Equal(wantR) {
			return fmt.Errorf("inner %v: children words %v/%v, want %v/%v",
				n.Word, n.Left.Word, n.Right.Word, wantL, wantR)
		}
		anc := make([]isax.Word, len(ancestors)+1)
		copy(anc, ancestors)
		anc[len(ancestors)] = n.Word
		if err := check(n.Left, anc); err != nil {
			return err
		}
		return check(n.Right, anc)
	}
	for _, key := range t.OccupiedKeys() {
		n := t.roots[key]
		if got := isax.RootWordFromKey(key, t.cfg.Segments); !n.Word.Equal(got) {
			return fmt.Errorf("root %d word %v != %v", key, n.Word, got)
		}
		if err := check(n, nil); err != nil {
			return fmt.Errorf("subtree %d: %w", key, err)
		}
	}
	return nil
}
