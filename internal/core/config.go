// Package core implements the iSAX tree index structure shared by every
// index in this repository (paper §II, Figure 1(d)): ADS+, ParIS, ParIS+
// and MESSI all use "the iSAX representation and basic ADS+ index
// structure", differing in *how* (and how concurrently) they build and
// search it.
//
// The tree has three kinds of nodes: a conceptual root with up to 2^w
// children (one per combination of the first bit of each of the w
// segments), inner nodes with exactly two children produced by splitting,
// and leaves holding the iSAX summaries of their series plus pointers
// (positions) into the raw data. Splits promote one segment of the leaf's
// word to one more bit of cardinality, choosing the segment that balances
// the two new leaves best.
//
// A root subtree is only ever mutated by one goroutine at a time (both
// ParIS and MESSI partition work at root-subtree granularity precisely to
// avoid synchronization — paper footnote 3), so Tree performs no locking;
// the parallel packages own the partitioning.
package core

import (
	"fmt"

	"dsidx/internal/isax"
	"dsidx/internal/paa"
)

// Config fixes the shape parameters of an index.
type Config struct {
	// SeriesLen is the number of points per series (a positive multiple of
	// Segments).
	SeriesLen int
	// Segments is the number of PAA/iSAX segments, w in the paper (default
	// 16, the paper's setting).
	Segments int
	// MaxBits is the maximum per-segment cardinality in bits (default 8,
	// i.e. cardinality 256).
	MaxBits int
	// LeafCapacity is the maximum number of series in a leaf before it
	// splits (default 256).
	LeafCapacity int
}

// Defaults used when Config fields are zero.
const (
	DefaultSegments     = 16
	DefaultMaxBits      = 8
	DefaultLeafCapacity = 256
)

// Normalize fills in defaults and validates the configuration.
func (c Config) Normalize() (Config, error) {
	if c.Segments == 0 {
		c.Segments = DefaultSegments
	}
	if c.MaxBits == 0 {
		c.MaxBits = DefaultMaxBits
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = DefaultLeafCapacity
	}
	if c.Segments < 1 || c.Segments > isax.MaxSegments {
		return c, fmt.Errorf("core: segments %d out of range [1,%d]", c.Segments, isax.MaxSegments)
	}
	if c.MaxBits < 1 || c.MaxBits > isax.MaxBits {
		return c, fmt.Errorf("core: maxBits %d out of range [1,%d]", c.MaxBits, isax.MaxBits)
	}
	if c.LeafCapacity < 1 {
		return c, fmt.Errorf("core: leaf capacity %d must be positive", c.LeafCapacity)
	}
	if !paa.Valid(c.SeriesLen, c.Segments) {
		return c, fmt.Errorf("core: series length %d is not a positive multiple of %d segments",
			c.SeriesLen, c.Segments)
	}
	return c, nil
}

// RootFanout returns the number of root children slots, 2^Segments.
func (c Config) RootFanout() int { return 1 << c.Segments }
