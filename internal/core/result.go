package core

import "math"

// Result is a similarity search answer shared by every index and baseline:
// the position of the matching series in the collection/file and its
// squared distance (ED or DTW, depending on the search) to the query.
type Result struct {
	Pos  int32
	Dist float64
}

// NoResult is the answer for empty datasets.
func NoResult() Result { return Result{Pos: -1, Dist: math.Inf(1)} }

// Better reports whether r improves on other.
func (r Result) Better(other Result) bool { return r.Dist < other.Dist }
