package core

import (
	"fmt"
	"sort"

	"dsidx/internal/isax"
	"dsidx/internal/paa"
	"dsidx/internal/series"
)

// Summarizer converts raw series into full-cardinality iSAX summaries. It
// owns a scratch PAA buffer, so each worker goroutine should hold its own
// Summarizer (they share the immutable Quantizer).
type Summarizer struct {
	cfg    Config
	quant  *isax.Quantizer
	paaBuf []float64
}

// NewSummarizer builds a summarizer for the (normalized) config.
func NewSummarizer(cfg Config, quant *isax.Quantizer) *Summarizer {
	return &Summarizer{cfg: cfg, quant: quant, paaBuf: make([]float64, cfg.Segments)}
}

// Summarize writes the full-cardinality summary of s into dst
// (len(dst) == Segments).
func (sm *Summarizer) Summarize(s series.Series, dst []uint8) {
	paa.TransformInto(s, sm.paaBuf)
	sm.quant.SymbolsInto(sm.paaBuf, dst)
}

// PAA computes the PAA coefficients of s into the internal buffer and
// returns it (valid until the next call on this summarizer).
func (sm *Summarizer) PAA(s series.Series) []float64 {
	paa.TransformInto(s, sm.paaBuf)
	return sm.paaBuf
}

// SAXArray is the flat array of full-cardinality iSAX summaries of the
// whole dataset — "the iSAX summarizations are also stored in the array SAX
// (used during query answering)" (paper §III). Summary i occupies
// Data[i*W : (i+1)*W].
type SAXArray struct {
	W    int
	Data []uint8
}

// NewSAXArray allocates a SAX array for n summaries of w segments.
func NewSAXArray(n, w int) *SAXArray {
	return &SAXArray{W: w, Data: make([]uint8, n*w)}
}

// Len returns the number of summaries.
func (a *SAXArray) Len() int { return len(a.Data) / a.W }

// At returns summary i as a slice view.
func (a *SAXArray) At(i int) []uint8 { return a.Data[i*a.W : (i+1)*a.W] }

// Range returns the flat byte range of summaries [lo, hi), for batched
// lower-bound kernels.
func (a *SAXArray) Range(lo, hi int) []uint8 { return a.Data[lo*a.W : hi*a.W] }

func (a *SAXArray) String() string { return fmt.Sprintf("SAXArray(n=%d,w=%d)", a.Len(), a.W) }

// TopKByLowerBound scans the SAX array with a per-query table and returns
// the positions of the k smallest lower bounds, in ascending bound order.
// The on-disk indexes use it to seed the best-so-far robustly: at the
// paper's scale the approximate tree descent lands in a leaf with
// thousands of close candidates, but a scaled-down sparse tree can descend
// into a leaf whose members are summary-close yet raw-far; reading the
// few globally best-bounded series (bounded extra I/O) restores the
// approximate-answer quality regime of the full-scale system.
func (a *SAXArray) TopKByLowerBound(table *isax.QueryTable, k int) []int32 {
	if k <= 0 || a.Len() == 0 {
		return nil
	}
	type cand struct {
		pos int32
		lb  float64
	}
	// Bounded max-heap on lb: the root is the current k-th best.
	heap := make([]cand, 0, k)
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < len(heap) && heap[l].lb > heap[largest].lb {
				largest = l
			}
			if r < len(heap) && heap[r].lb > heap[largest].lb {
				largest = r
			}
			if largest == i {
				return
			}
			heap[i], heap[largest] = heap[largest], heap[i]
			i = largest
		}
	}
	n := a.Len()
	for i := 0; i < n; i++ {
		lb := table.MinDistSAX(a.At(i))
		switch {
		case len(heap) < k:
			heap = append(heap, cand{int32(i), lb})
			for j := len(heap) - 1; j > 0; {
				parent := (j - 1) / 2
				if heap[parent].lb >= heap[j].lb {
					break
				}
				heap[parent], heap[j] = heap[j], heap[parent]
				j = parent
			}
		case lb < heap[0].lb:
			heap[0] = cand{int32(i), lb}
			siftDown()
		}
	}
	sort.Slice(heap, func(i, j int) bool { return heap[i].lb < heap[j].lb })
	out := make([]int32, len(heap))
	for i, c := range heap {
		out[i] = c.pos
	}
	return out
}
