package core

import (
	"math"
	"sync"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/paa"
	"dsidx/internal/series"
)

func testConfig() Config {
	return Config{SeriesLen: 256, Segments: 16, MaxBits: 8, LeafCapacity: 16}
}

func buildTestTree(t *testing.T, n int, cfg Config) (*Tree, *series.Collection, *SAXArray) {
	t.Helper()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generator{Kind: gen.Synthetic, Length: cfg.SeriesLen, Seed: 77}
	coll := g.Collection(n)
	sm := NewSummarizer(tree.Config(), tree.Quantizer())
	sax := NewSAXArray(n, tree.Config().Segments)
	for i := 0; i < n; i++ {
		sm.Summarize(coll.At(i), sax.At(i))
		tree.Insert(sax.At(i), int32(i))
	}
	return tree, coll, sax
}

func TestConfigNormalize(t *testing.T) {
	cfg, err := Config{SeriesLen: 256}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Segments != 16 || cfg.MaxBits != 8 || cfg.LeafCapacity != 256 {
		t.Fatalf("defaults = %+v", cfg)
	}
	bad := []Config{
		{SeriesLen: 100, Segments: 16},             // not divisible
		{SeriesLen: 256, Segments: 17},             // too many segments
		{SeriesLen: 256, MaxBits: 9},               // too many bits
		{SeriesLen: 256, LeafCapacity: -1},         // negative capacity
		{SeriesLen: 0},                             // no length
		{SeriesLen: 256, Segments: 16, MaxBits: 0}, // normalizes fine
	}
	for i, c := range bad[:5] {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestTreeCountAndInvariants(t *testing.T) {
	tree, _, _ := buildTestTree(t, 2000, testConfig())
	if got := tree.Count(); got != 2000 {
		t.Fatalf("Count = %d, want 2000", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Series != 2000 {
		t.Errorf("Stats.Series = %d", st.Series)
	}
	if st.Leaves == 0 || st.RootNodes == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	// With capacity 16 and 2000 series, splitting must have happened.
	if st.Inner == 0 || st.MaxDepth < 2 {
		t.Errorf("expected splits: %+v", st)
	}
}

func TestTreeLeafCapacityRespected(t *testing.T) {
	cfg := testConfig()
	tree, _, _ := buildTestTree(t, 3000, cfg)
	over := 0
	tree.VisitLeaves(func(n *Node) {
		if n.Count > cfg.LeafCapacity {
			over++
		}
	})
	// Random-walk summaries are essentially unique, so no leaf should be
	// forced to overflow.
	if over > 0 {
		t.Errorf("%d leaves over capacity", over)
	}
}

func TestTreeAllEntriesReachable(t *testing.T) {
	tree, _, _ := buildTestTree(t, 1500, testConfig())
	seen := make(map[int32]bool, 1500)
	tree.VisitLeaves(func(n *Node) {
		for _, p := range n.Pos {
			if seen[p] {
				t.Fatalf("position %d appears in two leaves", p)
			}
			seen[p] = true
		}
	})
	if len(seen) != 1500 {
		t.Fatalf("reached %d entries, want 1500", len(seen))
	}
}

func TestTreeDuplicateSummariesOverflow(t *testing.T) {
	// All-identical summaries cannot be separated by any split; the leaf
	// must be allowed to overflow rather than loop.
	cfg := Config{SeriesLen: 16, Segments: 4, MaxBits: 2, LeafCapacity: 4}
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sax := []uint8{1, 2, 3, 0}
	for i := 0; i < 50; i++ {
		tree.Insert(sax, int32(i))
	}
	if got := tree.Count(); got != 50 {
		t.Fatalf("Count = %d, want 50", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSubtreeBuilds(t *testing.T) {
	// The parallel contract: distinct root subtrees built from distinct
	// goroutines, no locks. This is how MESSI stage 2 works.
	cfg := testConfig()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 5000
	g := gen.Generator{Kind: gen.Synthetic, Length: cfg.SeriesLen, Seed: 13}
	coll := g.Collection(n)
	sm := NewSummarizer(tree.Config(), tree.Quantizer())
	byKey := make(map[uint32][]int32)
	sax := NewSAXArray(n, cfg.Segments)
	for i := 0; i < n; i++ {
		sm.Summarize(coll.At(i), sax.At(i))
		key := tree.RootKey(sax.At(i))
		byKey[key] = append(byKey[key], int32(i))
	}
	keys := make([]uint32, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ki := w; ki < len(keys); ki += workers {
				key := keys[ki]
				for _, pos := range byKey[key] {
					tree.SubtreeInsert(key, sax.At(int(pos)), pos)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tree.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.OccupiedKeys()); got != len(keys) {
		t.Fatalf("occupied = %d, want %d", got, len(keys))
	}
}

func TestBestLeafApproxContainsCloseNeighbor(t *testing.T) {
	tree, coll, _ := buildTestTree(t, 2000, testConfig())
	sm := NewSummarizer(tree.Config(), tree.Quantizer())
	g := gen.Generator{Kind: gen.Synthetic, Length: 256, Seed: 99}
	for qi := 0; qi < 10; qi++ {
		q := g.Series(-(int64(qi) + 1))
		qsax := make([]uint8, 16)
		sm.Summarize(q, qsax)
		qpaa := make([]float64, 16)
		paa.TransformInto(q, qpaa)
		leaf := tree.BestLeafApprox(qsax, qpaa)
		if leaf == nil || leaf.Count == 0 {
			t.Fatal("approximate search returned empty leaf on non-empty tree")
		}
		// The approximate answer must be a real series from the collection.
		for _, p := range leaf.Pos {
			if p < 0 || int(p) >= coll.Len() {
				t.Fatalf("leaf position %d out of range", p)
			}
		}
	}
}

func TestBestLeafApproxEmptyRootFallback(t *testing.T) {
	cfg := Config{SeriesLen: 16, Segments: 4, MaxBits: 8, LeafCapacity: 4}
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if leaf := tree.BestLeafApprox([]uint8{0, 0, 0, 0}, make([]float64, 4)); leaf != nil {
		t.Fatal("empty tree should return nil leaf")
	}
	// Insert series only in the all-high region, query the all-low region.
	tree.Insert([]uint8{255, 255, 255, 255}, 0)
	qpaa := []float64{-3, -3, -3, -3}
	leaf := tree.BestLeafApprox([]uint8{0, 0, 0, 0}, qpaa)
	if leaf == nil || leaf.Count != 1 {
		t.Fatal("fallback did not find the only occupied subtree")
	}
}

func TestPruneWalkNeverPrunesTrueNN(t *testing.T) {
	// With bsf = true NN distance + ε, the walk must emit the leaf holding
	// the true nearest neighbor (mindist lower-bounds real distance).
	cfg := testConfig()
	tree, coll, _ := buildTestTree(t, 2000, cfg)
	g := gen.Generator{Kind: gen.Synthetic, Length: 256, Seed: 1234}
	for qi := 0; qi < 5; qi++ {
		q := g.Series(-(int64(qi) + 10))
		qpaa := make([]float64, 16)
		paa.TransformInto(q, qpaa)
		nnPos, nnDist := coll.BruteForce1NN(q)

		found := false
		bsf := nnDist * 1.0000001
		for _, key := range tree.OccupiedKeys() {
			tree.PruneWalk(tree.Subtree(key), qpaa, func() float64 { return bsf }, func(leaf *Node, lb float64) {
				if lb > bsf {
					t.Errorf("emitted leaf with lb %v above bsf %v", lb, bsf)
				}
				for _, p := range leaf.Pos {
					if int(p) == nnPos {
						found = true
					}
				}
			})
		}
		if !found {
			t.Fatalf("query %d: pruning discarded the true NN (dist %v)", qi, math.Sqrt(nnDist))
		}
	}
}

func TestSAXArray(t *testing.T) {
	a := NewSAXArray(5, 4)
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	copy(a.At(2), []uint8{9, 8, 7, 6})
	if a.Data[8] != 9 || a.At(2)[3] != 6 {
		t.Error("At view not backed by Data")
	}
	r := a.Range(1, 3)
	if len(r) != 8 || r[4] != 9 {
		t.Errorf("Range view wrong: %v", r)
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestCloneSubtreeFiltered(t *testing.T) {
	tree, _, _ := buildTestTree(t, 2000, testConfig())
	dropEven := func(pos int32) bool { return pos%2 == 0 }

	next := tree.CloneShell()
	total := 0
	for _, key := range tree.OccupiedKeys() {
		filtered := tree.CloneSubtreeFiltered(key, dropEven)
		next.SetSubtree(key, filtered)
		// Collect surviving positions and compare against a direct walk
		// of the original subtree.
		want := map[int32]bool{}
		tree.Subtree(key).WalkLeaves(func(leaf *Node) {
			for i := 0; i < leaf.Count; i++ {
				if !dropEven(leaf.Pos[i]) {
					want[leaf.Pos[i]] = true
				}
			}
		})
		got := map[int32]bool{}
		if filtered != nil {
			filtered.WalkLeaves(func(leaf *Node) {
				for i := 0; i < leaf.Count; i++ {
					if dropEven(leaf.Pos[i]) {
						t.Fatalf("key %d: dropped pos %d survived", key, leaf.Pos[i])
					}
					got[leaf.Pos[i]] = true
				}
			})
		}
		if len(got) != len(want) {
			t.Fatalf("key %d: %d survivors, want %d", key, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("key %d: missing survivor %d", key, p)
			}
		}
		total += len(got)
	}
	if total != 1000 {
		t.Fatalf("total survivors = %d, want 1000", total)
	}
	if err := next.CheckInvariants(); err != nil {
		t.Fatalf("filtered tree invariants: %v", err)
	}
	if next.Count() != 1000 {
		t.Fatalf("filtered Count = %d, want 1000", next.Count())
	}
	// The original tree must be untouched.
	if tree.Count() != 2000 {
		t.Fatalf("original Count = %d after filter", tree.Count())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("original invariants after filter: %v", err)
	}
}

func TestCloneSubtreeFilteredDropAll(t *testing.T) {
	tree, _, _ := buildTestTree(t, 500, testConfig())
	next := tree.CloneShell()
	for _, key := range tree.OccupiedKeys() {
		next.SetSubtree(key, tree.CloneSubtreeFiltered(key, func(int32) bool { return true }))
	}
	if err := next.CheckInvariants(); err != nil {
		t.Fatalf("drop-all invariants: %v", err)
	}
	if next.Count() != 0 {
		t.Fatalf("drop-all Count = %d", next.Count())
	}
	// Missing subtree: filtering a key that was never occupied yields nil.
	var missing uint32
	occupied := map[uint32]bool{}
	for _, key := range tree.OccupiedKeys() {
		occupied[key] = true
	}
	for k := uint32(0); ; k++ {
		if !occupied[k] {
			missing = k
			break
		}
	}
	if got := tree.CloneSubtreeFiltered(missing, func(int32) bool { return false }); got != nil {
		t.Fatalf("missing subtree: got %v, want nil", got)
	}
}
