package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dsidx/internal/gen"
	"dsidx/internal/isax"
	"dsidx/internal/paa"
)

func TestSummarizerMatchesDirectPipeline(t *testing.T) {
	cfg, err := Config{SeriesLen: 256}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	quant, err := isax.NewQuantizer(cfg.MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSummarizer(cfg, quant)
	g := gen.Generator{Kind: gen.SALD, Length: 256, Seed: 3}
	for i := int64(0); i < 20; i++ {
		s := g.Series(i)
		got := make([]uint8, cfg.Segments)
		sm.Summarize(s, got)
		coeffs := paa.Transform(s, cfg.Segments)
		want := make([]uint8, cfg.Segments)
		quant.SymbolsInto(coeffs, want)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("series %d segment %d: %d != %d", i, j, got[j], want[j])
			}
		}
		// PAA view matches too.
		pv := sm.PAA(s)
		for j := range coeffs {
			if pv[j] != coeffs[j] {
				t.Fatalf("PAA mismatch at %d", j)
			}
		}
	}
}

func TestTopKByLowerBoundMatchesSort(t *testing.T) {
	cfg, err := Config{SeriesLen: 128}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	quant, err := isax.NewQuantizer(cfg.MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generator{Kind: gen.Synthetic, Length: 128, Seed: 44}
	coll := g.Collection(500)
	sm := NewSummarizer(cfg, quant)
	sax := NewSAXArray(coll.Len(), cfg.Segments)
	for i := 0; i < coll.Len(); i++ {
		sm.Summarize(coll.At(i), sax.At(i))
	}
	q := g.Series(-1)
	qpaa := paa.Transform(q, cfg.Segments)
	table := isax.NewQueryTable(quant, qpaa, cfg.SeriesLen)

	for _, k := range []int{1, 3, 10, 500, 1000} {
		got := sax.TopKByLowerBound(table, k)
		wantLen := min(k, coll.Len())
		if len(got) != wantLen {
			t.Fatalf("k=%d: returned %d positions", k, len(got))
		}
		// Reference: full sort by lower bound.
		lbs := make([]float64, coll.Len())
		for i := range lbs {
			lbs[i] = table.MinDistSAX(sax.At(i))
		}
		ref := make([]int, coll.Len())
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool { return lbs[ref[a]] < lbs[ref[b]] })
		for i, p := range got {
			if lbs[p] != lbs[ref[i]] {
				t.Fatalf("k=%d rank %d: lb %v, want %v", k, i, lbs[p], lbs[ref[i]])
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if lbs[got[i]] < lbs[got[i-1]] {
				t.Fatalf("k=%d: results not ascending", k)
			}
		}
	}
	if got := sax.TopKByLowerBound(table, 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestTreeRandomBuildInvariantsProperty(t *testing.T) {
	// Property: any multiset of summaries, inserted in any order, yields a
	// structurally valid tree holding exactly the inserted entries.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			SeriesLen:    32,
			Segments:     8,
			MaxBits:      1 + rng.Intn(8),
			LeafCapacity: 1 + rng.Intn(16),
		}
		tree, err := NewTree(cfg)
		if err != nil {
			return false
		}
		cfg = tree.Config()
		n := 50 + rng.Intn(400)
		card := 1 << cfg.MaxBits
		sax := make([]uint8, cfg.Segments)
		for i := 0; i < n; i++ {
			for j := range sax {
				// Skewed distribution to force deep splits and duplicates.
				sax[j] = uint8(rng.Intn(card) * rng.Intn(2))
			}
			tree.Insert(sax, int32(i))
		}
		if tree.Count() != n {
			return false
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
