package core

import (
	"math/rand"
	"testing"
)

// buildRandomTree inserts n random summaries and returns the tree plus the
// summaries, so tests can replay inserts against clones.
func buildRandomTree(t *testing.T, n int) (*Tree, [][]uint8) {
	t.Helper()
	cfg := Config{SeriesLen: 16, Segments: 4, MaxBits: 4, LeafCapacity: 4}
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sums := make([][]uint8, n)
	for i := range sums {
		sax := make([]uint8, 4)
		for j := range sax {
			sax[j] = uint8(rng.Intn(16))
		}
		sums[i] = sax
		tree.Insert(sax, int32(i))
	}
	return tree, sums
}

func TestNodeCloneIsDeepForEntries(t *testing.T) {
	tree, sums := buildRandomTree(t, 200)
	key := tree.OccupiedKeys()[0]
	orig := tree.Subtree(key)
	origCount := orig.Count
	clone := orig.Clone()

	// Inserting into the clone must not disturb the original: replay every
	// summary belonging to this subtree into the clone and re-validate.
	inserted := 0
	for i, sax := range sums {
		if tree.RootKey(sax) == key {
			clone.insert(tree.Config(), sax, int32(10_000+i), nil)
			inserted++
		}
	}
	if inserted == 0 {
		t.Fatal("no summaries for the sampled subtree")
	}
	if orig.Count != origCount {
		t.Fatalf("original count changed: %d -> %d", origCount, orig.Count)
	}
	if clone.Count != origCount+inserted {
		t.Fatalf("clone count %d, want %d", clone.Count, origCount+inserted)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("original tree corrupted by clone insert: %v", err)
	}
}

func TestNodeCloneNil(t *testing.T) {
	var n *Node
	if n.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestCloneShellSharesUntouchedSubtrees(t *testing.T) {
	// 30 series leave some of the 16 root slots empty (fixed seed), so the
	// fresh-key registration path below is exercised.
	tree, _ := buildRandomTree(t, 30)
	shell := tree.CloneShell()
	keys := tree.OccupiedKeys()
	if got := shell.OccupiedKeys(); len(got) != len(keys) {
		t.Fatalf("shell has %d occupied keys, want %d", len(got), len(keys))
	}
	for _, key := range keys {
		if shell.Subtree(key) != tree.Subtree(key) {
			t.Fatalf("shell subtree %d not shared", key)
		}
	}
	if shell.Count() != tree.Count() {
		t.Fatalf("shell count %d != %d", shell.Count(), tree.Count())
	}

	// saxForKey builds a full-cardinality summary routed to key: segment
	// j's top bit is bit j of the key.
	saxForKey := func(key uint32) []uint8 {
		sax := make([]uint8, 4)
		for j := range sax {
			sax[j] = uint8((key>>(3-j))&1) << 3
		}
		return sax
	}

	// Replacing one subtree in the shell must leave the original untouched
	// and register fresh keys exactly once.
	key := keys[0]
	replacement := tree.Subtree(key).Clone()
	replacement.insert(tree.Config(), saxForKey(key), 999, nil)
	before := tree.Subtree(key).Count
	shell.SetSubtree(key, replacement)
	if tree.Subtree(key).Count != before {
		t.Fatal("SetSubtree on shell mutated the original tree")
	}
	if shell.Subtree(key) != replacement {
		t.Fatal("SetSubtree did not install the replacement")
	}
	if got := len(shell.OccupiedKeys()); got != len(keys) {
		t.Fatalf("replacing an existing key changed occupancy: %d != %d", got, len(keys))
	}

	// Nil installs are no-ops; installing into an empty slot registers it.
	shell.SetSubtree(0xFFFF_FFF0%uint32(len(shell.roots)), nil)
	if got := len(shell.OccupiedKeys()); got != len(keys) {
		t.Fatal("nil SetSubtree changed occupancy")
	}
	fresh := uint32(len(shell.roots))
	for k := uint32(0); int(k) < len(shell.roots); k++ {
		if shell.roots[k] == nil {
			fresh = k
			break
		}
	}
	if int(fresh) < len(shell.roots) {
		shell.SubtreeInsert(fresh, saxForKey(fresh), 1234)
		if got := len(shell.OccupiedKeys()); got != len(keys)+1 {
			t.Fatalf("fresh key not registered: %d occupied", got)
		}
	}
	if err := shell.CheckInvariants(); err != nil {
		t.Fatalf("shell invariants: %v", err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("original tree corrupted: %v", err)
	}
}
