package core
