package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"dsidx/internal/isax"
	"dsidx/internal/storage"
)

// Index persistence ("DSI1" format): a built index is its configuration,
// the SAX array, and the tree. ADS+/ParIS are persistent indexes — build
// once, query across sessions — so the serialized form must round-trip
// both in-memory leaves and leaves flushed to a LeafStore (whose refs
// remain valid because the leaf log lives on the data device).
//
//	header:  magic "DSI1", u32 version=1,
//	         u32 seriesLen, u32 segments, u32 maxBits, u32 leafCapacity,
//	         u64 seriesCount
//	sax:     seriesCount × segments bytes
//	tree:    u32 rootCount, then per root: u32 key + pre-order subtree
//	node:    u8 tag (0 leaf, 1 inner, 2 flushed leaf), u32 count,
//	         segments × {u8 symbol, u8 bits} word
//	  leaf:         count × segments sax bytes, count × i32 positions
//	  inner:        u8 splitSeg, then left subtree, right subtree
//	  flushed leaf: i64 ref offset, u32 ref len

const (
	indexMagic   = "DSI1"
	indexVersion = 1

	tagLeaf        = 0
	tagInner       = 1
	tagFlushedLeaf = 2
)

// EncodeIndex serializes a built index (tree + SAX array) to bytes.
func EncodeIndex(tree *Tree, sax *SAXArray) []byte {
	cfg := tree.Config()
	var buf bytes.Buffer
	buf.WriteString(indexMagic)
	writeU32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	writeU32(indexVersion)
	writeU32(uint32(cfg.SeriesLen))
	writeU32(uint32(cfg.Segments))
	writeU32(uint32(cfg.MaxBits))
	writeU32(uint32(cfg.LeafCapacity))
	_ = binary.Write(&buf, binary.LittleEndian, uint64(sax.Len()))
	buf.Write(sax.Data)

	keys := tree.OccupiedKeys()
	writeU32(uint32(len(keys)))
	var writeNode func(n *Node)
	writeNode = func(n *Node) {
		switch {
		case !n.IsLeaf():
			buf.WriteByte(tagInner)
		case n.Flushed:
			buf.WriteByte(tagFlushedLeaf)
		default:
			buf.WriteByte(tagLeaf)
		}
		writeU32(uint32(n.Count))
		for j := 0; j < cfg.Segments; j++ {
			buf.WriteByte(n.Word.Symbols[j])
			buf.WriteByte(n.Word.Bits[j])
		}
		switch {
		case !n.IsLeaf():
			buf.WriteByte(uint8(n.SplitSeg))
			writeNode(n.Left)
			writeNode(n.Right)
		case n.Flushed:
			_ = binary.Write(&buf, binary.LittleEndian, n.Ref.Offset)
			writeU32(uint32(n.Ref.Len))
		default:
			buf.Write(n.SAX)
			for _, p := range n.Pos {
				writeU32(uint32(p))
			}
		}
	}
	for _, key := range keys {
		writeU32(key)
		writeNode(tree.Subtree(key))
	}
	return buf.Bytes()
}

// indexReader tracks a decode position with bounds checking.
type indexReader struct {
	data []byte
	off  int
}

func (r *indexReader) take(n int) ([]byte, error) {
	// n < 0 catches length-prefix arithmetic that overflowed on hostile
	// input; without it the slice below panics instead of erroring.
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("core: index truncated at offset %d (+%d): %w",
			r.off, n, storage.ErrCorrupt)
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *indexReader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *indexReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *indexReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// DecodeIndex reconstructs a tree and SAX array from EncodeIndex output.
func DecodeIndex(data []byte) (*Tree, *SAXArray, error) {
	r := &indexReader{data: data}
	magic, err := r.take(4)
	if err != nil {
		return nil, nil, err
	}
	if string(magic) != indexMagic {
		return nil, nil, fmt.Errorf("core: bad index magic %q: %w", magic, storage.ErrCorrupt)
	}
	version, err := r.u32()
	if err != nil {
		return nil, nil, err
	}
	if version != indexVersion {
		return nil, nil, fmt.Errorf("core: unsupported index version %d: %w", version, storage.ErrCorrupt)
	}
	var cfgVals [4]uint32
	for i := range cfgVals {
		if cfgVals[i], err = r.u32(); err != nil {
			return nil, nil, err
		}
	}
	cfg := Config{
		SeriesLen:    int(cfgVals[0]),
		Segments:     int(cfgVals[1]),
		MaxBits:      int(cfgVals[2]),
		LeafCapacity: int(cfgVals[3]),
	}
	tree, err := NewTree(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: decoding index config: %w", err)
	}
	cfg = tree.Config()

	count, err := r.u64()
	if err != nil {
		return nil, nil, err
	}
	// Bound the claimed series count by the bytes actually present before
	// the multiply below — a hostile count would overflow int and slip
	// past take's range check as a small (or negative) length.
	if count > uint64(len(r.data))/uint64(cfg.Segments) {
		return nil, nil, fmt.Errorf("core: series count %d exceeds index size: %w",
			count, storage.ErrCorrupt)
	}
	saxBytes, err := r.take(int(count) * cfg.Segments)
	if err != nil {
		return nil, nil, err
	}
	// Symbols index 2^MaxBits-cell query tables at search time; corrupt
	// bytes must fail the decode, not panic the first scan.
	checkSymbols := func(bs []uint8) error {
		for _, s := range bs {
			if int(s) >= 1<<cfg.MaxBits {
				return fmt.Errorf("core: summary symbol %d exceeds cardinality %d: %w",
					s, 1<<cfg.MaxBits, storage.ErrCorrupt)
			}
		}
		return nil
	}
	if err := checkSymbols(saxBytes); err != nil {
		return nil, nil, err
	}
	sax := &SAXArray{W: cfg.Segments, Data: append([]uint8(nil), saxBytes...)}

	rootCount, err := r.u32()
	if err != nil {
		return nil, nil, err
	}
	var readNode func() (*Node, error)
	readNode = func() (*Node, error) {
		tag, err := r.u8()
		if err != nil {
			return nil, err
		}
		cnt, err := r.u32()
		if err != nil {
			return nil, err
		}
		word := isax.Word{Symbols: make([]uint8, cfg.Segments), Bits: make([]uint8, cfg.Segments)}
		wb, err := r.take(2 * cfg.Segments)
		if err != nil {
			return nil, err
		}
		for j := 0; j < cfg.Segments; j++ {
			word.Symbols[j], word.Bits[j] = wb[2*j], wb[2*j+1]
		}
		n := &Node{Word: word, Count: int(cnt)}
		switch tag {
		case tagInner:
			seg, err := r.u8()
			if err != nil {
				return nil, err
			}
			n.SplitSeg = int(seg)
			if n.Left, err = readNode(); err != nil {
				return nil, err
			}
			if n.Right, err = readNode(); err != nil {
				return nil, err
			}
		case tagLeaf:
			sb, err := r.take(int(cnt) * cfg.Segments)
			if err != nil {
				return nil, err
			}
			if err := checkSymbols(sb); err != nil {
				return nil, err
			}
			n.SAX = append([]uint8(nil), sb...)
			pb, err := r.take(int(cnt) * 4)
			if err != nil {
				return nil, err
			}
			n.Pos = make([]int32, cnt)
			for i := range n.Pos {
				p := int32(binary.LittleEndian.Uint32(pb[i*4:]))
				// Leaf positions index the collection (and, for live
				// indexes, the append store) — an out-of-range position in
				// a corrupt file must fail the decode, not panic the first
				// access that resolves it (leaf materialization touches
				// every position eagerly at load).
				if p < 0 || uint64(p) >= count {
					return nil, fmt.Errorf("core: leaf position %d exceeds series count %d: %w",
						p, count, storage.ErrCorrupt)
				}
				n.Pos[i] = p
			}
		case tagFlushedLeaf:
			off, err := r.u64()
			if err != nil {
				return nil, err
			}
			ln, err := r.u32()
			if err != nil {
				return nil, err
			}
			n.Flushed = true
			n.Ref = storage.LeafRef{Offset: int64(off), Len: int32(ln)}
		default:
			return nil, fmt.Errorf("core: unknown node tag %d: %w", tag, storage.ErrCorrupt)
		}
		return n, nil
	}
	for i := uint32(0); i < rootCount; i++ {
		key, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		if int(key) >= cfg.RootFanout() {
			return nil, nil, fmt.Errorf("core: root key %d out of range: %w", key, storage.ErrCorrupt)
		}
		node, err := readNode()
		if err != nil {
			return nil, nil, err
		}
		tree.roots[key] = node
		tree.occupied = append(tree.occupied, key)
	}
	if r.off != len(data) {
		return nil, nil, fmt.Errorf("core: %d trailing bytes: %w", len(data)-r.off, storage.ErrCorrupt)
	}
	return tree, sax, nil
}
