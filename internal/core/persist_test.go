package core

import (
	"errors"
	"testing"

	"dsidx/internal/storage"
)

func TestEncodeDecodeIndexRoundTrip(t *testing.T) {
	tree, _, sax := buildTestTree(t, 1500, testConfig())
	data := EncodeIndex(tree, &SAXArray{W: 16, Data: sax.Data})

	tree2, sax2, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Count() != tree.Count() {
		t.Fatalf("decoded count %d, want %d", tree2.Count(), tree.Count())
	}
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if sax2.Len() != sax.Len() {
		t.Fatalf("decoded SAX len %d, want %d", sax2.Len(), sax.Len())
	}
	for i := range sax.Data {
		if sax2.Data[i] != sax.Data[i] {
			t.Fatalf("SAX differs at byte %d", i)
		}
	}
	// Every position must land in the same leaf set.
	collect := func(tr *Tree) map[int32]string {
		m := make(map[int32]string)
		tr.VisitLeaves(func(n *Node) {
			for _, p := range n.Pos {
				m[p] = n.Word.Key()
			}
		})
		return m
	}
	a, b := collect(tree), collect(tree2)
	if len(a) != len(b) {
		t.Fatalf("leaf entry counts differ: %d vs %d", len(a), len(b))
	}
	for p, w := range a {
		if b[p] != w {
			t.Fatalf("position %d moved from leaf %q to %q", p, w, b[p])
		}
	}
}

func TestEncodeDecodeIndexWithFlushedLeaves(t *testing.T) {
	tree, _, sax := buildTestTree(t, 800, testConfig())
	ls := storage.NewLeafStore(storage.NewMemStore())
	var flushErr error
	tree.VisitLeaves(func(n *Node) {
		if flushErr == nil {
			flushErr = FlushLeaf(n, 16, ls)
		}
	})
	if flushErr != nil {
		t.Fatal(flushErr)
	}
	data := EncodeIndex(tree, &SAXArray{W: 16, Data: sax.Data})
	tree2, _, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flushed refs must round-trip and resolve against the same leaf store.
	entries := 0
	tree2.VisitLeaves(func(n *Node) {
		if !n.Flushed {
			t.Fatal("decoded leaf lost flushed state")
		}
		_, pos, err := LoadLeaf(n, 16, ls)
		if err != nil {
			t.Fatalf("loading decoded leaf: %v", err)
		}
		entries += len(pos)
	})
	if entries != 800 {
		t.Fatalf("flushed leaves hold %d entries, want 800", entries)
	}
}

func TestDecodeIndexCorruption(t *testing.T) {
	tree, _, sax := buildTestTree(t, 200, testConfig())
	data := EncodeIndex(tree, &SAXArray{W: 16, Data: sax.Data})

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"bad version", func(d []byte) []byte { d[4] = 99; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0, 1, 2) }},
		{"empty", func(d []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(append([]byte(nil), data...))
			if _, _, err := DecodeIndex(bad); !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("error = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestDecodeIndexRejectsBadConfig(t *testing.T) {
	tree, _, sax := buildTestTree(t, 100, testConfig())
	data := EncodeIndex(tree, &SAXArray{W: 16, Data: sax.Data})
	// Corrupt the segments field (offset 4+4+4 = 12).
	data[12] = 99
	if _, _, err := DecodeIndex(data); err == nil {
		t.Fatal("invalid config accepted")
	}
}
