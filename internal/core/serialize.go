package core

import (
	"encoding/binary"
	"fmt"

	"dsidx/internal/storage"
)

// Leaf blob format (ParIS leaf materialization):
//
//	offset 0: entry count (uint32 LE)
//	offset 4: segment count w (uint32 LE)
//	offset 8: count × w summary bytes
//	then:     count × int32 LE positions

// EncodeLeaf serializes a leaf's entries for flushing to a LeafStore.
func EncodeLeaf(n *Node, w int) []byte {
	count := len(n.Pos)
	blob := make([]byte, 8+count*w+count*4)
	binary.LittleEndian.PutUint32(blob[0:4], uint32(count))
	binary.LittleEndian.PutUint32(blob[4:8], uint32(w))
	copy(blob[8:], n.SAX)
	posOff := 8 + count*w
	for i, p := range n.Pos {
		binary.LittleEndian.PutUint32(blob[posOff+i*4:], uint32(p))
	}
	return blob
}

// DecodeLeaf parses a leaf blob back into summaries and positions.
func DecodeLeaf(blob []byte, wantW int) (sax []uint8, pos []int32, err error) {
	if len(blob) < 8 {
		return nil, nil, fmt.Errorf("core: leaf blob too short (%d bytes): %w", len(blob), storage.ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(blob[0:4]))
	w := int(binary.LittleEndian.Uint32(blob[4:8]))
	if w != wantW {
		return nil, nil, fmt.Errorf("core: leaf blob has %d segments, want %d: %w", w, wantW, storage.ErrCorrupt)
	}
	need := 8 + count*w + count*4
	if len(blob) != need {
		return nil, nil, fmt.Errorf("core: leaf blob %d bytes, want %d: %w", len(blob), need, storage.ErrCorrupt)
	}
	sax = make([]uint8, count*w)
	copy(sax, blob[8:8+count*w])
	pos = make([]int32, count)
	posOff := 8 + count*w
	for i := range pos {
		pos[i] = int32(binary.LittleEndian.Uint32(blob[posOff+i*4:]))
	}
	return sax, pos, nil
}

// FlushLeaf materializes a leaf to the LeafStore and releases its in-memory
// entries — the job of ParIS's IndexConstruction workers, which "flush the
// subtree leaves to disk ... resulting in free space in main memory".
func FlushLeaf(n *Node, w int, ls *storage.LeafStore) error {
	if !n.IsLeaf() {
		return fmt.Errorf("core: FlushLeaf on inner node %v", n.Word)
	}
	if n.Flushed {
		return nil
	}
	ref, err := ls.Append(EncodeLeaf(n, w))
	if err != nil {
		return fmt.Errorf("core: flushing leaf %v: %w", n.Word, err)
	}
	n.Ref = ref
	n.Flushed = true
	n.SAX, n.Pos = nil, nil
	return nil
}

// LoadLeaf reads a flushed leaf's entries back from the LeafStore without
// mutating the node. Unflushed leaves return their in-memory entries.
func LoadLeaf(n *Node, w int, ls *storage.LeafStore) (sax []uint8, pos []int32, err error) {
	if !n.Flushed {
		return n.SAX, n.Pos, nil
	}
	blob, err := ls.Read(n.Ref)
	if err != nil {
		return nil, nil, fmt.Errorf("core: loading leaf %v: %w", n.Word, err)
	}
	return DecodeLeaf(blob, w)
}
