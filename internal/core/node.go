package core

import (
	"dsidx/internal/isax"
	"dsidx/internal/storage"
)

// Node is a tree node: a leaf holding entries, or an inner node with two
// children produced by a split. The conceptual root is not a Node — the
// Tree keeps an array of root children keyed by the first bit of each
// segment.
type Node struct {
	// Word is the iSAX word covering every series below this node.
	Word isax.Word
	// Count is the number of series stored below this node.
	Count int

	// Inner-node fields: SplitSeg is the segment whose cardinality was
	// promoted by the split; Left receives entries whose next bit is 0,
	// Right those with 1. Both are non-nil for inner nodes (one may be an
	// empty leaf only transiently; splits that cannot separate entries are
	// not performed).
	SplitSeg    int
	Left, Right *Node

	// Leaf fields: SAX holds Count full-cardinality summaries back-to-back
	// (stride = segments); Pos holds the positions of the raw series.
	SAX []uint8
	Pos []int32
	// Raw optionally holds the leaf's raw series values back-to-back
	// (stride = series length), aligned with SAX/Pos: entry i occupies
	// [i*n, (i+1)*n). A materialized leaf lets refinement read candidates
	// sequentially instead of chasing Pos through the collection — the
	// cache behavior MESSI's SIMD scans depend on. Either every leaf of a
	// tree is materialized or none is; Pos remains the source of truth for
	// reported result positions.
	Raw []float32

	// Flushed leaf state (ParIS): when a leaf has been materialized to
	// disk, SAX/Pos are released and Ref locates the blob.
	Flushed bool
	Ref     storage.LeafRef
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// appendEntry adds one (summary, position) entry to a leaf, carrying the
// raw values when the tree is materialized (raw may be nil otherwise).
func (n *Node) appendEntry(sax []uint8, pos int32, raw []float32) {
	n.SAX = append(n.SAX, sax...)
	n.Pos = append(n.Pos, pos)
	if raw != nil {
		n.Raw = append(n.Raw, raw...)
	}
	n.Count++
}

// entrySAX returns the i-th summary stored in a leaf.
func (n *Node) entrySAX(i, w int) []uint8 { return n.SAX[i*w : (i+1)*w] }

// EntryRaw returns the i-th materialized series of a leaf (series length
// sl), or nil if the leaf is not materialized.
func (n *Node) EntryRaw(i, sl int) []float32 {
	if n.Raw == nil {
		return nil
	}
	return n.Raw[i*sl : (i+1)*sl : (i+1)*sl]
}

// route returns the child of an inner node that covers the given summary.
func (n *Node) route(sax []uint8, maxBits int) *Node {
	if n.Word.PrefixBitAt(n.SplitSeg, sax[n.SplitSeg], maxBits) == 0 {
		return n.Left
	}
	return n.Right
}

// splittable reports whether some segment of a leaf's word can still be
// promoted and actually separates the leaf's entries (a split where every
// entry lands on one side makes no progress; duplicated summaries can make
// every segment useless, in which case the leaf is allowed to overflow).
func (n *Node) splittable(cfg Config) (seg int, ok bool) {
	w := cfg.Segments
	bestImbalance := n.Count + 1
	bestSeg := -1
	for s := 0; s < w; s++ {
		if int(n.Word.Bits[s]) >= cfg.MaxBits {
			continue
		}
		ones := 0
		for i := 0; i < n.Count; i++ {
			if n.Word.PrefixBitAt(s, n.entrySAX(i, w)[s], cfg.MaxBits) == 1 {
				ones++
			}
		}
		zeros := n.Count - ones
		if ones == 0 || zeros == 0 {
			continue // does not separate
		}
		imbalance := ones - zeros
		if imbalance < 0 {
			imbalance = -imbalance
		}
		if imbalance < bestImbalance {
			bestImbalance, bestSeg = imbalance, s
		}
	}
	return bestSeg, bestSeg >= 0
}

// split turns an over-capacity leaf into an inner node with two leaves,
// promoting segment seg by one bit and redistributing the entries. The
// paper (after [8], [12]) picks the segment "that will result in the most
// balanced split"; splittable made that choice.
func (n *Node) split(cfg Config, seg int) {
	w := cfg.Segments
	left := &Node{Word: n.Word.Child(seg, 0)}
	right := &Node{Word: n.Word.Child(seg, 1)}
	sl := 0
	if n.Raw != nil {
		sl = len(n.Raw) / n.Count
	}
	for i := 0; i < n.Count; i++ {
		sax := n.entrySAX(i, w)
		var raw []float32
		if sl > 0 {
			raw = n.Raw[i*sl : (i+1)*sl]
		}
		if n.Word.PrefixBitAt(seg, sax[seg], cfg.MaxBits) == 0 {
			left.appendEntry(sax, n.Pos[i], raw)
		} else {
			right.appendEntry(sax, n.Pos[i], raw)
		}
	}
	n.SplitSeg = seg
	n.Left, n.Right = left, right
	n.SAX, n.Pos, n.Raw = nil, nil, nil
}

// insert adds an entry below n, splitting leaves that exceed capacity.
// raw carries the series values into materialized leaves and must be nil
// for unmaterialized trees. Called only by the goroutine owning this root
// subtree.
func (n *Node) insert(cfg Config, sax []uint8, pos int32, raw []float32) {
	node := n
	for !node.IsLeaf() {
		node.Count++
		node = node.route(sax, cfg.MaxBits)
	}
	node.appendEntry(sax, pos, raw)
	for node.Count > cfg.LeafCapacity {
		seg, ok := node.splittable(cfg)
		if !ok {
			return // duplicates exhausted every segment; allow overflow
		}
		node.split(cfg, seg)
		// After one split both children are at most the old size; only one
		// can still exceed capacity. Descend into it if so.
		if node.Left.Count > cfg.LeafCapacity {
			node = node.Left
		} else if node.Right.Count > cfg.LeafCapacity {
			node = node.Right
		} else {
			return
		}
	}
}

// Clone returns a deep copy of the subtree rooted at n: fresh nodes with
// copied entry storage. Word slices are shared — words are immutable after
// construction (splits build child words with Word.Child, which allocates).
// The live-merge path clones a subtree aside, inserts the pending delta
// entries into the copy, and swaps it in, so queries keep traversing the
// original untouched.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{
		Word:     n.Word,
		Count:    n.Count,
		SplitSeg: n.SplitSeg,
		Flushed:  n.Flushed,
		Ref:      n.Ref,
	}
	if n.SAX != nil {
		c.SAX = append(make([]uint8, 0, len(n.SAX)), n.SAX...)
	}
	if n.Pos != nil {
		c.Pos = append(make([]int32, 0, len(n.Pos)), n.Pos...)
	}
	if n.Raw != nil {
		c.Raw = append(make([]float32, 0, len(n.Raw)), n.Raw...)
	}
	c.Left, c.Right = n.Left.Clone(), n.Right.Clone()
	return c
}

// WalkLeaves invokes fn on every leaf below n in depth-first order.
func (n *Node) WalkLeaves(fn func(*Node)) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		fn(n)
		return
	}
	n.Left.WalkLeaves(fn)
	n.Right.WalkLeaves(fn)
}
