package core

import (
	"errors"
	"testing"

	"dsidx/internal/isax"
	"dsidx/internal/storage"
)

func makeLeaf(count, w int) *Node {
	n := &Node{Word: isax.NewRootWord(make([]uint8, w))}
	sax := make([]uint8, w)
	for i := 0; i < count; i++ {
		for j := range sax {
			sax[j] = uint8(i + j)
		}
		n.appendEntry(sax, int32(i*10), nil)
	}
	return n
}

func TestEncodeDecodeLeaf(t *testing.T) {
	for _, count := range []int{0, 1, 7, 100} {
		n := makeLeaf(count, 16)
		blob := EncodeLeaf(n, 16)
		sax, pos, err := DecodeLeaf(blob, 16)
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		if len(pos) != count || len(sax) != count*16 {
			t.Fatalf("count=%d: decoded %d pos, %d sax", count, len(pos), len(sax))
		}
		for i := range pos {
			if pos[i] != n.Pos[i] {
				t.Fatalf("pos[%d] = %d, want %d", i, pos[i], n.Pos[i])
			}
		}
		for i := range sax {
			if sax[i] != n.SAX[i] {
				t.Fatalf("sax[%d] differs", i)
			}
		}
	}
}

func TestDecodeLeafErrors(t *testing.T) {
	n := makeLeaf(3, 8)
	blob := EncodeLeaf(n, 8)
	if _, _, err := DecodeLeaf(blob, 16); !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("segment mismatch: %v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeLeaf(blob[:5], 8); !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("truncated blob: %v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeLeaf(blob[:len(blob)-2], 8); !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("short blob: %v, want ErrCorrupt", err)
	}
}

func TestFlushAndLoadLeaf(t *testing.T) {
	ls := storage.NewLeafStore(storage.NewMemStore())
	n := makeLeaf(20, 16)
	wantPos := append([]int32(nil), n.Pos...)
	wantSAX := append([]uint8(nil), n.SAX...)

	if err := FlushLeaf(n, 16, ls); err != nil {
		t.Fatal(err)
	}
	if !n.Flushed || n.SAX != nil || n.Pos != nil {
		t.Fatal("flush did not release in-memory entries")
	}
	if n.Count != 20 {
		t.Fatalf("flush changed Count to %d", n.Count)
	}
	// Idempotent.
	if err := FlushLeaf(n, 16, ls); err != nil {
		t.Fatal(err)
	}

	sax, pos, err := LoadLeaf(n, 16, ls)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPos {
		if pos[i] != wantPos[i] {
			t.Fatalf("pos[%d] = %d, want %d", i, pos[i], wantPos[i])
		}
	}
	for i := range wantSAX {
		if sax[i] != wantSAX[i] {
			t.Fatalf("sax[%d] differs", i)
		}
	}
}

func TestLoadLeafUnflushedReturnsInMemory(t *testing.T) {
	n := makeLeaf(5, 8)
	sax, pos, err := LoadLeaf(n, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 5 || len(sax) != 40 {
		t.Fatalf("unflushed load shape (%d,%d)", len(pos), len(sax))
	}
}

func TestFlushLeafRejectsInner(t *testing.T) {
	cfg := Config{SeriesLen: 16, Segments: 4, MaxBits: 8, LeafCapacity: 1}
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree.Insert([]uint8{0, 0, 0, 0}, 0)
	tree.Insert([]uint8{50, 0, 0, 0}, 1) // forces split of the root leaf
	key := tree.OccupiedKeys()[0]
	n := tree.Subtree(key)
	if n.IsLeaf() {
		t.Skip("split did not occur; cannot exercise inner-flush error")
	}
	ls := storage.NewLeafStore(storage.NewMemStore())
	if err := FlushLeaf(n, 4, ls); err == nil {
		t.Error("flushing inner node should error")
	}
}
