package paris

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/storage"
)

func dataset(t *testing.T, kind gen.Kind, n int) (*series.Collection, *series.Collection) {
	t.Helper()
	g := gen.Generator{Kind: kind, Seed: 61}
	return g.Collection(n), g.Queries(6)
}

func buildDisk(t *testing.T, coll *series.Collection, mode Mode, workers int) *Index {
	t.Helper()
	raw, err := storage.WriteCollection(storage.NewMemStore(), coll)
	if err != nil {
		t.Fatal(err)
	}
	leaves := storage.NewLeafStore(storage.NewMemStore())
	ix, err := Build(raw, leaves, core.Config{LeafCapacity: 32},
		Options{Mode: mode, Workers: workers, BatchSeries: 300, ReadBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildBothModesIndexEverything(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 1000)
	for _, mode := range []Mode{ModeParIS, ModeParISPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			ix := buildDisk(t, coll, mode, 4)
			if ix.Count() != coll.Len() {
				t.Fatalf("Count = %d, want %d", ix.Count(), coll.Len())
			}
			if got := ix.Tree().Count(); got != coll.Len() {
				t.Fatalf("tree holds %d series, want %d", got, coll.Len())
			}
			if err := ix.Tree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildMatchesSerialReference(t *testing.T) {
	// The parallel build must produce exactly the same SAX array as a
	// serial summarization pass, and a tree containing every position once.
	coll, _ := dataset(t, gen.Seismic, 700)
	ix := buildDisk(t, coll, ModeParISPlus, 8)

	tree, err := core.NewTree(core.Config{SeriesLen: coll.SeriesLen(), LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	sm := core.NewSummarizer(tree.Config(), tree.Quantizer())
	want := make([]uint8, tree.Config().Segments)
	for i := 0; i < coll.Len(); i++ {
		sm.Summarize(coll.At(i), want)
		got := ix.sax.At(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("SAX[%d][%d] = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
	seen := make(map[int32]bool, coll.Len())
	ix.Tree().VisitLeaves(func(n *core.Node) {
		_, pos, err := core.LoadLeaf(n, tree.Config().Segments, ix.leaves)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pos {
			if seen[p] {
				t.Fatalf("position %d in two leaves", p)
			}
			seen[p] = true
		}
	})
	if len(seen) != coll.Len() {
		t.Fatalf("tree leaves hold %d positions, want %d", len(seen), coll.Len())
	}
}

func TestBuildInMemoryBothModes(t *testing.T) {
	coll, _ := dataset(t, gen.SALD, 900)
	for _, mode := range []Mode{ModeParIS, ModeParISPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, err := BuildInMemory(coll, core.Config{LeafCapacity: 32},
				Options{Mode: mode, Workers: 6, ReadBlock: 50})
			if err != nil {
				t.Fatal(err)
			}
			if ix.Count() != coll.Len() || ix.Tree().Count() != coll.Len() {
				t.Fatalf("indexed %d/%d series", ix.Tree().Count(), coll.Len())
			}
			if err := ix.Tree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSearchExactnessOnDisk(t *testing.T) {
	for _, kind := range []gen.Kind{gen.Synthetic, gen.SALD} {
		for _, mode := range []Mode{ModeParIS, ModeParISPlus} {
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				coll, queries := dataset(t, kind, 800)
				ix := buildDisk(t, coll, mode, 4)
				for qi := 0; qi < queries.Len(); qi++ {
					q := queries.At(qi)
					_, wantDist := coll.BruteForce1NN(q)
					got, stats, err := ix.Search(q, 4)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(got.Dist-wantDist) > 1e-6*math.Max(1, wantDist) {
						t.Fatalf("query %d: dist %v, want %v", qi, got.Dist, wantDist)
					}
					if stats.Candidates+stats.PrunedByScan != coll.Len() {
						t.Fatalf("query %d: stats don't add up: %+v", qi, stats)
					}
				}
			})
		}
	}
}

func TestSearchExactnessInMemory(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 1500)
	ix, err := BuildInMemory(coll, core.Config{LeafCapacity: 64}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8, 0} {
		for qi := 0; qi < queries.Len(); qi++ {
			q := queries.At(qi)
			_, wantDist := coll.BruteForce1NN(q)
			got, _, err := ix.Search(q, workers)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-wantDist) > 1e-6*math.Max(1, wantDist) {
				t.Fatalf("workers=%d query %d: dist %v, want %v", workers, qi, got.Dist, wantDist)
			}
			// The winning position must actually be at the winning distance.
			if d := series.SquaredED(q, coll.At(int(got.Pos))); math.Abs(d-got.Dist) > 1e-9 {
				t.Fatalf("returned pos %d has dist %v, claimed %v", got.Pos, d, got.Dist)
			}
		}
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	coll := series.NewCollection(0, 256)
	ix, err := BuildInMemory(coll, core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Search(make(series.Series, 256), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != -1 || !math.IsInf(got.Dist, 1) {
		t.Fatalf("empty index search = %+v", got)
	}
}

func TestSearchValidatesQueryLength(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 50)
	ix, err := BuildInMemory(coll, core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(make(series.Series, 100), 2); err == nil {
		t.Error("mismatched query length accepted")
	}
}

func TestBuildStatsRecorded(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 400)
	ix := buildDisk(t, coll, ModeParIS, 2)
	bs := ix.BuildStats()
	if bs.Total <= 0 {
		t.Error("Total not recorded")
	}
	if bs.TreeWall <= 0 {
		t.Error("ParIS should record dedicated tree-construction time")
	}
	ixPlus := buildDisk(t, coll, ModeParISPlus, 2)
	if ixPlus.BuildStats().TreeWall != 0 {
		t.Error("ParIS+ should have no dedicated tree-construction wall time")
	}
}

func TestModeString(t *testing.T) {
	if ModeParIS.String() != "ParIS" || ModeParISPlus.String() != "ParIS+" {
		t.Error("mode names wrong")
	}
}
