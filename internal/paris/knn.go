package paris

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dsidx/internal/core"
	"dsidx/internal/isax"
	"dsidx/internal/series"
	"dsidx/internal/vector"
	"dsidx/internal/xsync"
)

// SearchKNN answers an exact k-NN query with the ParIS algorithm: the k-th
// best distance plays the BSF role of the lower-bound scan and the
// real-distance phase. The seeding phase reads the k globally
// best-bounded series so the threshold is finite before the scan.
func (ix *Index) SearchKNN(q series.Series, k, workers int) ([]core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return nil, nil, fmt.Errorf("paris: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if k <= 0 {
		return nil, &QueryStats{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats := &QueryStats{}
	n := ix.sax.Len()
	if n == 0 {
		return nil, stats, nil
	}

	sm := core.NewSummarizer(ix.cfg, ix.tree.Quantizer())
	qsax := make([]uint8, ix.cfg.Segments)
	sm.Summarize(q, qsax)
	qpaa := make([]float64, ix.cfg.Segments)
	copy(qpaa, sm.PAA(q))
	table := isax.NewQueryTable(ix.tree.Quantizer(), qpaa, ix.cfg.SeriesLen)

	// Seed: exact distances to the k best-bounded series fill the set.
	kb := xsync.NewKBest(k)
	buf := make(series.Series, ix.cfg.SeriesLen)
	for _, p := range ix.sax.TopKByLowerBound(table, max(k, 4)) {
		s, err := ix.rawSeries(int64(p), buf)
		if err != nil {
			return nil, stats, fmt.Errorf("paris: k-NN seed: %w", err)
		}
		stats.RawDistances++
		kb.Offer(p, vector.SquaredED(q, s))
	}
	threshold := kb.Threshold()

	// Lower-bound scan against the fixed seed threshold.
	candidates := xsync.NewCandidateList(n)
	var wg sync.WaitGroup
	for _, ch := range xsync.Chunks(n, workers) {
		wg.Add(1)
		go func(ch xsync.Chunk) {
			defer wg.Done()
			const block = 256
			bounds := make([]float64, block)
			card := 1 << ix.cfg.MaxBits
			for lo := ch.Lo; lo < ch.Hi; lo += block {
				hi := min(lo+block, ch.Hi)
				vector.MinDistBatch(table.Cells(), ix.sax.Range(lo, hi), ix.cfg.Segments, card, bounds[:hi-lo])
				for i := lo; i < hi; i++ {
					if bounds[i-lo] < threshold {
						candidates.Append(int32(i))
					}
				}
			}
		}(ch)
	}
	wg.Wait()
	cand := candidates.Snapshot()
	stats.Candidates = len(cand)
	stats.PrunedByScan = n - len(cand)

	// Refinement against the live k-th best.
	var rawDist xsync.Counter
	errs := make([]error, workers)
	wg = sync.WaitGroup{}
	for wi, ch := range xsync.Chunks(len(cand), workers) {
		wg.Add(1)
		go func(wi int, ch xsync.Chunk) {
			defer wg.Done()
			mine := append([]int32(nil), cand[ch.Lo:ch.Hi]...)
			if ix.raw != nil {
				sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
			}
			buf := make(series.Series, ix.cfg.SeriesLen)
			for _, p := range mine {
				limit := kb.Threshold()
				if table.MinDistSAX(ix.sax.At(int(p))) >= limit {
					continue
				}
				s, err := ix.rawSeries(int64(p), buf)
				if err != nil {
					errs[wi] = err
					return
				}
				rawDist.Next()
				kb.Offer(p, vector.SquaredEDEarlyAbandon(q, s, limit))
			}
		}(wi, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, fmt.Errorf("paris: k-NN refinement: %w", err)
		}
	}
	stats.RawDistances += int(rawDist.Value())

	out := make([]core.Result, 0, k)
	for _, e := range kb.Sorted() {
		out = append(out, core.Result{Pos: e.Pos, Dist: e.Dist})
	}
	return out, stats, nil
}

// SearchApproximate answers a query with the classic iSAX approximate
// algorithm: the best series of the single leaf matching the query's
// summary. On-disk it costs one random read.
func (ix *Index) SearchApproximate(q series.Series) (core.Result, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), fmt.Errorf("paris: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if ix.sax.Len() == 0 {
		return core.NoResult(), nil
	}
	sm := core.NewSummarizer(ix.cfg, ix.tree.Quantizer())
	qsax := make([]uint8, ix.cfg.Segments)
	sm.Summarize(q, qsax)
	qpaa := make([]float64, ix.cfg.Segments)
	copy(qpaa, sm.PAA(q))
	table := isax.NewQueryTable(ix.tree.Quantizer(), qpaa, ix.cfg.SeriesLen)

	leaf := ix.tree.BestLeafApprox(qsax, qpaa)
	if leaf == nil {
		return core.NoResult(), nil
	}
	sax, pos, err := core.LoadLeaf(leaf, ix.cfg.Segments, ix.leaves)
	if err != nil || len(pos) == 0 {
		return core.NoResult(), err
	}
	buf := make(series.Series, ix.cfg.SeriesLen)
	if ix.mem != nil {
		best := core.NoResult()
		for _, p := range pos {
			if d := vector.SquaredEDEarlyAbandon(q, ix.mem.At(int(p)), best.Dist); d < best.Dist {
				best = core.Result{Pos: p, Dist: d}
			}
		}
		return best, nil
	}
	w := ix.cfg.Segments
	bestEntry, bestLB := 0, isax.Inf
	for i := range pos {
		if lb := table.MinDistSAX(sax[i*w : (i+1)*w]); lb < bestLB {
			bestEntry, bestLB = i, lb
		}
	}
	p := pos[bestEntry]
	s, err := ix.rawSeries(int64(p), buf)
	if err != nil {
		return core.NoResult(), fmt.Errorf("paris: approximate: %w", err)
	}
	return core.Result{Pos: p, Dist: vector.SquaredED(q, s)}, nil
}
