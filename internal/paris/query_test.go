package paris

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/storage"
)

// faultStore wraps a Store and fails every read once armed.
type faultStore struct {
	storage.Store
	fail atomic.Bool
}

var errInjected = errors.New("injected fault")

func (f *faultStore) ReadAt(p []byte, off int64) (int, error) {
	if f.fail.Load() {
		return 0, errInjected
	}
	return f.Store.ReadAt(p, off)
}

func TestSearchPropagatesReadErrors(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 300)
	fs := &faultStore{Store: storage.NewMemStore()}
	raw, err := storage.WriteCollection(fs, coll)
	if err != nil {
		t.Fatal(err)
	}
	leaves := storage.NewLeafStore(storage.NewMemStore())
	ix, err := Build(raw, leaves, core.Config{LeafCapacity: 16}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.fail.Store(true)
	if _, _, err := ix.Search(queries.At(0), 2); !errors.Is(err, errInjected) {
		t.Fatalf("Search error = %v, want injected fault", err)
	}
}

func TestBuildPropagatesReadErrors(t *testing.T) {
	coll, _ := dataset(t, gen.Synthetic, 300)
	fs := &faultStore{Store: storage.NewMemStore()}
	raw, err := storage.WriteCollection(fs, coll)
	if err != nil {
		t.Fatal(err)
	}
	fs.fail.Store(true)
	_, err = Build(raw, storage.NewLeafStore(storage.NewMemStore()),
		core.Config{LeafCapacity: 16}, Options{Workers: 2})
	if !errors.Is(err, errInjected) {
		t.Fatalf("Build error = %v, want injected fault", err)
	}
}

func TestQueryStatsConsistency(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 1200)
	ix, err := BuildInMemory(coll, core.Config{LeafCapacity: 32}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.Len(); qi++ {
		_, stats, err := ix.Search(queries.At(qi), 4)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates+stats.PrunedByScan != coll.Len() {
			t.Fatalf("candidates %d + pruned %d != %d", stats.Candidates, stats.PrunedByScan, coll.Len())
		}
		// Real distances never exceed candidates plus the approximate
		// phase (which refines up to one full leaf in-memory).
		if stats.RawDistances > stats.Candidates+32 {
			t.Fatalf("raw distances %d exceed candidates %d + leaf", stats.RawDistances, stats.Candidates)
		}
	}
}

func TestConcurrentSearches(t *testing.T) {
	// Queries are read-only; many must be able to run concurrently on one
	// index without interference.
	coll, queries := dataset(t, gen.Synthetic, 800)
	ix, err := BuildInMemory(coll, core.Config{LeafCapacity: 32}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, queries.Len())
	for qi := range want {
		_, want[qi] = coll.BruteForce1NN(queries.At(qi))
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		for qi := 0; qi < queries.Len(); qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				got, _, err := ix.Search(queries.At(qi), 2)
				if err != nil {
					t.Error(err)
					return
				}
				if math.Abs(got.Dist-want[qi]) > 1e-6*math.Max(1, want[qi]) {
					t.Errorf("query %d: %v != %v", qi, got.Dist, want[qi])
				}
			}(qi)
		}
	}
	wg.Wait()
}

func TestDiskMetricsChargedDuringQuery(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 500)
	disk := storage.NewDisk(storage.NewMemStore(), storage.Unthrottled)
	raw, err := storage.WriteCollection(disk, coll)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(raw, storage.NewLeafStore(disk), core.Config{LeafCapacity: 16}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	disk.ResetMetrics()
	if _, _, err := ix.Search(queries.At(0), 2); err != nil {
		t.Fatal(err)
	}
	m := disk.Metrics()
	if m.ReadOps == 0 || m.BytesRead == 0 {
		t.Fatalf("no device reads charged during on-disk query: %+v", m)
	}
}
