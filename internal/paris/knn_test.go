package paris

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
)

func TestSearchKNNMatchesSerial(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 900)
	for _, variant := range []string{"memory", "disk"} {
		t.Run(variant, func(t *testing.T) {
			var ix *Index
			if variant == "memory" {
				var err error
				ix, err = BuildInMemory(coll, core.Config{LeafCapacity: 32}, Options{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				ix = buildDisk(t, coll, ModeParISPlus, 4)
			}
			const k = 7
			for qi := 0; qi < queries.Len(); qi++ {
				q := queries.At(qi)
				want := ucr.ScanKNN(coll, q, k)
				got, stats, err := ix.SearchKNN(q, k, 4)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != k {
					t.Fatalf("query %d: %d results, want %d", qi, len(got), k)
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*math.Max(1, want[i].Dist) {
						t.Fatalf("query %d rank %d: %v, want %v", qi, i, got[i].Dist, want[i].Dist)
					}
				}
				if stats.Candidates+stats.PrunedByScan != coll.Len() {
					t.Fatalf("query %d: stats inconsistent %+v", qi, stats)
				}
			}
		})
	}
}

func TestSearchKNNDegenerate(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 100)
	ix, err := BuildInMemory(coll, core.Config{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := ix.SearchKNN(queries.At(0), 0, 2); err != nil || got != nil {
		t.Errorf("k=0: %v %v", got, err)
	}
	got, _, err := ix.SearchKNN(queries.At(0), 1, 2)
	if err != nil || len(got) != 1 {
		t.Fatalf("k=1: %v %v", got, err)
	}
	one, _, err := ix.Search(queries.At(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0].Dist-one.Dist) > 1e-9 {
		t.Errorf("k=1 %v != 1-NN %v", got[0].Dist, one.Dist)
	}
	if _, _, err := ix.SearchKNN(make(series.Series, 3), 2, 2); err == nil {
		t.Error("bad query length accepted")
	}
}

func TestSearchDTWMatchesSerial(t *testing.T) {
	g := gen.Generator{Kind: gen.SALD, Length: 128, Seed: 62}
	coll := g.Collection(400)
	queries := g.Queries(4)
	window := 8
	for _, variant := range []string{"memory", "disk"} {
		t.Run(variant, func(t *testing.T) {
			var ix *Index
			if variant == "memory" {
				var err error
				ix, err = BuildInMemory(coll, core.Config{LeafCapacity: 32}, Options{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				ix = buildDisk(t, coll, ModeParIS, 4)
			}
			for qi := 0; qi < queries.Len(); qi++ {
				q := queries.At(qi)
				want := ucr.ScanDTW(coll, q, window)
				got, _, err := ix.SearchDTW(q, window, 4)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Dist-want.Dist) > 1e-6*math.Max(1, want.Dist) {
					t.Fatalf("query %d: DTW %v, want %v", qi, got.Dist, want.Dist)
				}
			}
		})
	}
}

func TestSearchDTWZeroWindowEqualsED(t *testing.T) {
	coll, queries := dataset(t, gen.Synthetic, 300)
	ix, err := BuildInMemory(coll, core.Config{LeafCapacity: 32}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := queries.At(0)
	ed, _, err := ix.Search(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	dtw, _, err := ix.SearchDTW(q, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ed.Dist-dtw.Dist) > 1e-6 {
		t.Fatalf("zero-window DTW %v != ED %v", dtw.Dist, ed.Dist)
	}
}

func TestSearchApproximateParIS(t *testing.T) {
	coll, _ := dataset(t, gen.Seismic, 600)
	g := gen.Generator{Kind: gen.Seismic, Seed: 61}
	queries := g.PerturbedQueries(coll, 5, 0.05)
	for _, variant := range []string{"memory", "disk"} {
		t.Run(variant, func(t *testing.T) {
			var ix *Index
			if variant == "memory" {
				var err error
				ix, err = BuildInMemory(coll, core.Config{LeafCapacity: 32}, Options{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				ix = buildDisk(t, coll, ModeParISPlus, 4)
			}
			for qi := 0; qi < queries.Len(); qi++ {
				q := queries.At(qi)
				approx, err := ix.SearchApproximate(q)
				if err != nil {
					t.Fatal(err)
				}
				exact, _, err := ix.Search(q, 4)
				if err != nil {
					t.Fatal(err)
				}
				if approx.Pos < 0 {
					t.Fatalf("query %d: no approximate answer", qi)
				}
				if approx.Dist < exact.Dist-1e-9 {
					t.Fatalf("query %d: approximate %v below exact %v", qi, approx.Dist, exact.Dist)
				}
			}
		})
	}
}
