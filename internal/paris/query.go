package paris

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dsidx/internal/core"
	"dsidx/internal/isax"
	"dsidx/internal/series"
	"dsidx/internal/vector"
	"dsidx/internal/xsync"
)

// Search answers an exact 1-NN query with the ParIS/ParIS+ algorithm
// (identical for both modes, paper §III): approximate BSF from the closest
// leaf, a parallel vectorized lower-bound scan over the SAX array that
// fills a lock-free candidate list, then parallel exact distances over the
// candidates. workers ≤ 0 means GOMAXPROCS.
func (ix *Index) Search(q series.Series, workers int) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("paris: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats := &QueryStats{}
	n := ix.sax.Len()
	if n == 0 {
		return core.NoResult(), stats, nil
	}

	sm := core.NewSummarizer(ix.cfg, ix.tree.Quantizer())
	qsax := make([]uint8, ix.cfg.Segments)
	sm.Summarize(q, qsax)
	qpaa := make([]float64, ix.cfg.Segments)
	copy(qpaa, sm.PAA(q))

	// Phase 1: approximate answer seeds the BSF.
	table := isax.NewQueryTable(ix.tree.Quantizer(), qpaa, ix.cfg.SeriesLen)
	best := xsync.NewBest()
	if err := ix.approxPhase(q, qsax, qpaa, table, best, stats); err != nil {
		return core.NoResult(), stats, err
	}
	bsfApprox := best.Distance()

	// Phase 2: lower-bound workers scan the SAX array (vectorized) and
	// append surviving positions to the candidate list. ParIS prunes
	// against the fixed approximate BSF — no real distances are being
	// computed concurrently, so the threshold cannot improve mid-scan.
	candidates := xsync.NewCandidateList(n)
	var wg sync.WaitGroup
	for _, ch := range xsync.Chunks(n, workers) {
		wg.Add(1)
		go func(ch xsync.Chunk) {
			defer wg.Done()
			const block = 256
			bounds := make([]float64, block)
			card := 1 << ix.cfg.MaxBits
			for lo := ch.Lo; lo < ch.Hi; lo += block {
				hi := min(lo+block, ch.Hi)
				vector.MinDistBatch(table.Cells(), ix.sax.Range(lo, hi), ix.cfg.Segments, card, bounds[:hi-lo])
				for i := lo; i < hi; i++ {
					if bounds[i-lo] < bsfApprox {
						candidates.Append(int32(i))
					}
				}
			}
		}(ch)
	}
	wg.Wait()
	cand := candidates.Snapshot()
	stats.Candidates = len(cand)
	stats.PrunedByScan = n - len(cand)

	// Phase 3: real-distance workers consume the candidate list in
	// parallel; on-disk candidates are visited in ascending position order
	// per worker to keep seeks short.
	var rawDist xsync.Counter
	wg = sync.WaitGroup{}
	errs := make([]error, workers)
	for wi, ch := range xsync.Chunks(len(cand), workers) {
		wg.Add(1)
		go func(wi int, ch xsync.Chunk) {
			defer wg.Done()
			mine := append([]int32(nil), cand[ch.Lo:ch.Hi]...)
			if ix.raw != nil {
				sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
			}
			buf := make(series.Series, ix.cfg.SeriesLen)
			for _, p := range mine {
				limit := best.Distance()
				// Re-prune against the live BSF before paying for raw data.
				if table.MinDistSAX(ix.sax.At(int(p))) >= limit {
					continue
				}
				s, err := ix.rawSeries(int64(p), buf)
				if err != nil {
					errs[wi] = err
					return
				}
				rawDist.Next()
				if d := vector.SquaredEDEarlyAbandon(q, s, limit); d < limit {
					best.Update(d, int64(p))
				}
			}
		}(wi, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return core.NoResult(), stats, fmt.Errorf("paris: real-distance phase: %w", err)
		}
	}
	stats.RawDistances += int(rawDist.Value())

	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// approxPhase computes the BSF seed. Following the paper ("the real
// distance between the query and the best candidate series, which is in
// the leaf with the smallest lower bound distance to the query"), it
// selects the best candidate inside the closest leaf by its in-memory
// summary lower bound and computes one real distance. For on-disk raw data
// this costs a single random read; for the in-memory variant the whole
// leaf is refined (raw values are free to access, as in MESSI).
func (ix *Index) approxPhase(q series.Series, qsax []uint8, qpaa []float64, table *isax.QueryTable, best *xsync.Best, stats *QueryStats) error {
	leaf := ix.tree.BestLeafApprox(qsax, qpaa)
	if leaf == nil {
		return nil
	}
	sax, pos, err := core.LoadLeaf(leaf, ix.cfg.Segments, ix.leaves)
	if err != nil {
		return fmt.Errorf("paris: approximate phase: %w", err)
	}
	if len(pos) == 0 {
		return nil
	}
	buf := make(series.Series, ix.cfg.SeriesLen)
	if ix.mem != nil {
		for _, p := range pos {
			stats.RawDistances++
			if d := vector.SquaredEDEarlyAbandon(q, ix.mem.At(int(p)), best.Distance()); d < best.Distance() {
				best.Update(d, int64(p))
			}
		}
		return nil
	}
	w := ix.cfg.Segments
	bestEntry, bestLB := 0, isax.Inf
	for i := range pos {
		if lb := table.MinDistSAX(sax[i*w : (i+1)*w]); lb < bestLB {
			bestEntry, bestLB = i, lb
		}
	}
	seeds := []int32{pos[bestEntry]}
	// Robustness at scaled-down leaf sizes: also refine the globally
	// best-bounded positions (see SAXArray.TopKByLowerBound).
	seeds = append(seeds, ix.sax.TopKByLowerBound(table, 4)...)
	for _, p := range seeds {
		s, err := ix.rawSeries(int64(p), buf)
		if err != nil {
			return fmt.Errorf("paris: approximate phase series %d: %w", p, err)
		}
		stats.RawDistances++
		if d := vector.SquaredEDEarlyAbandon(q, s, best.Distance()); d < best.Distance() {
			best.Update(d, int64(p))
		}
	}
	return nil
}

// rawSeries fetches series i from RAM (no copy) or from the raw file (into
// buf).
func (ix *Index) rawSeries(i int64, buf series.Series) (series.Series, error) {
	if ix.mem != nil {
		return ix.mem.At(int(i)), nil
	}
	if err := ix.raw.ReadSeries(i, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
