package paris

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dsidx/internal/core"
	"dsidx/internal/isax"
	"dsidx/internal/paa"
	"dsidx/internal/series"
	"dsidx/internal/vector"
	"dsidx/internal/xsync"
)

// SearchDTW answers an exact 1-NN query under DTW with a Sakoe-Chiba band
// of half-width window, on the unchanged index (paper §V: "we are
// extending our techniques (i.e., ParIS+ and MESSI) to support the DTW
// distance measure ... no changes are required in the index structure").
// The SAX-array scan uses the envelope-based DTW lower-bound table;
// surviving candidates pass an LB_Keogh check before paying the dynamic
// program.
func (ix *Index) SearchDTW(q series.Series, window, workers int) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("paris: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if window < 0 {
		window = 0
	}
	stats := &QueryStats{}
	n := ix.sax.Len()
	if n == 0 {
		return core.NoResult(), stats, nil
	}

	sm := core.NewSummarizer(ix.cfg, ix.tree.Quantizer())
	qsax := make([]uint8, ix.cfg.Segments)
	sm.Summarize(q, qsax)
	qpaa := make([]float64, ix.cfg.Segments)
	copy(qpaa, sm.PAA(q))

	env := series.NewEnvelope(q, window)
	upPAA := paa.Transform(env.Upper, ix.cfg.Segments)
	loPAA := paa.Transform(env.Lower, ix.cfg.Segments)
	table := isax.NewDTWQueryTable(ix.tree.Quantizer(), upPAA, loPAA, ix.cfg.SeriesLen)

	best := xsync.NewBest()
	buf := make(series.Series, ix.cfg.SeriesLen)

	// Seed the BSF with true DTW distances to the best-bounded series.
	for _, p := range ix.sax.TopKByLowerBound(table, 4) {
		s, err := ix.rawSeries(int64(p), buf)
		if err != nil {
			return core.NoResult(), stats, fmt.Errorf("paris: DTW seed: %w", err)
		}
		stats.RawDistances++
		if d := series.DTW(q, s, window, best.Distance()); d < best.Distance() {
			best.Update(d, int64(p))
		}
	}
	bsfSeed := best.Distance()

	// DTW lower-bound scan over the SAX array.
	candidates := xsync.NewCandidateList(n)
	var wg sync.WaitGroup
	for _, ch := range xsync.Chunks(n, workers) {
		wg.Add(1)
		go func(ch xsync.Chunk) {
			defer wg.Done()
			const block = 256
			bounds := make([]float64, block)
			card := 1 << ix.cfg.MaxBits
			for lo := ch.Lo; lo < ch.Hi; lo += block {
				hi := min(lo+block, ch.Hi)
				vector.MinDistBatch(table.Cells(), ix.sax.Range(lo, hi), ix.cfg.Segments, card, bounds[:hi-lo])
				for i := lo; i < hi; i++ {
					if bounds[i-lo] < bsfSeed {
						candidates.Append(int32(i))
					}
				}
			}
		}(ch)
	}
	wg.Wait()
	cand := candidates.Snapshot()
	stats.Candidates = len(cand)
	stats.PrunedByScan = n - len(cand)

	// Refinement: LB_Keogh cascade, then banded DTW, against the live BSF.
	var rawDist xsync.Counter
	errs := make([]error, workers)
	wg = sync.WaitGroup{}
	for wi, ch := range xsync.Chunks(len(cand), workers) {
		wg.Add(1)
		go func(wi int, ch xsync.Chunk) {
			defer wg.Done()
			mine := append([]int32(nil), cand[ch.Lo:ch.Hi]...)
			if ix.raw != nil {
				sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
			}
			buf := make(series.Series, ix.cfg.SeriesLen)
			for _, p := range mine {
				limit := best.Distance()
				if table.MinDistSAX(ix.sax.At(int(p))) >= limit {
					continue
				}
				s, err := ix.rawSeries(int64(p), buf)
				if err != nil {
					errs[wi] = err
					return
				}
				rawDist.Next()
				if series.LBKeogh(env, s, limit) >= limit {
					continue
				}
				if d := series.DTW(q, s, window, limit); d < limit {
					best.Update(d, int64(p))
				}
			}
		}(wi, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return core.NoResult(), stats, fmt.Errorf("paris: DTW refinement: %w", err)
		}
	}
	stats.RawDistances += int(rawDist.Value())

	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}
