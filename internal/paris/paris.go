// Package paris implements ParIS and ParIS+ (paper §III, Figure 2), the
// first data series indexes designed for multi-core architectures.
//
// Index creation is a pipeline over an on-disk raw file:
//
//	Stage 1  a Coordinator worker reads raw series into memory blocks;
//	Stage 2  IndexBulkLoading workers summarize blocks into the SAX array
//	         and append series positions to per-root-subtree Receiving
//	         Buffers (RecBufs);
//	Stage 3  IndexConstruction workers turn RecBufs into index subtrees and
//	         materialize leaves to disk.
//
// ParIS runs stage 3 after each memory-budget batch, so tree building CPU
// time is visible in the creation time. ParIS+ moves tree growth into the
// stage-2 workers — they drain RecBufs into subtrees while the coordinator
// is still reading — which completely overlaps CPU work with I/O; its
// stage-3 workers only flush leaves. For in-memory data there is no I/O to
// hide behind, and ParIS+'s repeated subtree visits make it *slower* than
// ParIS — the effect Figure 7 reports.
//
// Query answering (identical for ParIS and ParIS+) first computes an
// approximate best-so-far from the closest leaf, then lower-bound workers
// scan the in-memory SAX array with vectorized kernels, appending surviving
// positions to a lock-free candidate list, and finally real-distance
// workers read the surviving raw series and refine the BSF under early
// abandoning.
package paris

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/series"
	"dsidx/internal/storage"
	"dsidx/internal/xsync"
)

// Mode selects the index creation algorithm.
type Mode int

const (
	// ModeParIS builds subtrees in a separate stage after each batch.
	ModeParIS Mode = iota
	// ModeParISPlus grows subtrees inside the bulk-loading workers,
	// overlapping all CPU work with the coordinator's I/O.
	ModeParISPlus
)

// String names the mode as in the paper.
func (m Mode) String() string {
	if m == ModeParISPlus {
		return "ParIS+"
	}
	return "ParIS"
}

// Options configures index creation.
type Options struct {
	Mode Mode
	// Workers is the number of worker goroutines for building (the paper's
	// "number of cores"). 0 means GOMAXPROCS.
	Workers int
	// BatchSeries is the memory budget of one stage-1..3 cycle, in series
	// (the paper iterates "until all available main memory is full").
	// 0 means 65536.
	BatchSeries int
	// ReadBlock is the coordinator's read granularity in series. 0 means 1024.
	ReadBlock int
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchSeries <= 0 {
		o.BatchSeries = 65536
	}
	if o.ReadBlock <= 0 {
		o.ReadBlock = 1024
	}
	return o
}

// BuildStats records creation-time accounting. ReadWall is the wall time
// the coordinator spent blocked on the device; TreeWall is the wall time of
// dedicated stage-3 tree building (zero for ParIS+, whose tree work hides
// inside stage 2); FlushWall is leaf materialization.
type BuildStats struct {
	ReadWall  time.Duration
	TreeWall  time.Duration
	FlushWall time.Duration
	Total     time.Duration
}

// QueryStats counts the work of one query.
type QueryStats struct {
	Candidates   int // positions surviving the lower-bound scan
	PrunedByScan int
	RawDistances int
}

// recBuf is one receiving buffer: the positions (pointers into the SAX
// array and raw file) of series routed to one root subtree. cnt mirrors
// len(pos) atomically so sweeps can skip empty buffers without locking.
type recBuf struct {
	mu  sync.Mutex
	pos []int32
	cnt atomic.Int32
}

// append adds a position.
func (b *recBuf) append(p int32) {
	b.mu.Lock()
	b.pos = append(b.pos, p)
	b.cnt.Store(int32(len(b.pos)))
	b.mu.Unlock()
}

// drain atomically takes the buffered positions.
func (b *recBuf) drain() []int32 {
	b.mu.Lock()
	out := b.pos
	b.pos = nil
	b.cnt.Store(0)
	b.mu.Unlock()
	return out
}

// empty is a lock-free emptiness hint (exact when no appender is running).
func (b *recBuf) empty() bool { return b.cnt.Load() == 0 }

// Index is a built ParIS or ParIS+ index. The raw data live either in a
// series file behind a (simulated) disk, or in memory (the in-memory ParIS
// variant of Figures 7, 9 and 12).
type Index struct {
	cfg    core.Config
	opt    Options
	tree   *core.Tree
	sax    *core.SAXArray
	raw    *storage.SeriesFile // nil when in-memory
	mem    *series.Collection  // nil when on-disk
	leaves *storage.LeafStore  // nil when in-memory
	build  BuildStats
}

// Mode returns the creation mode the index was built with.
func (ix *Index) Mode() Mode { return ix.opt.Mode }

// Encode serializes the built index (tree + SAX array). Flushed leaf
// references remain valid against the same leaf store / data device.
func (ix *Index) Encode() []byte { return core.EncodeIndex(ix.tree, ix.sax) }

// Decode reconstructs an on-disk index from Encode output over the same
// raw series file and leaf store it was built with.
func Decode(data []byte, raw *storage.SeriesFile, leaves *storage.LeafStore, opt Options) (*Index, error) {
	opt = opt.normalize()
	tree, sax, err := core.DecodeIndex(data)
	if err != nil {
		return nil, fmt.Errorf("paris: %w", err)
	}
	cfg := tree.Config()
	if cfg.SeriesLen != raw.Length() {
		return nil, fmt.Errorf("paris: index is for length-%d series, file has %d",
			cfg.SeriesLen, raw.Length())
	}
	if int64(sax.Len()) != raw.Count() {
		return nil, fmt.Errorf("paris: index covers %d series, file has %d",
			sax.Len(), raw.Count())
	}
	return &Index{cfg: cfg, opt: opt, tree: tree, sax: sax, raw: raw, leaves: leaves}, nil
}

// DecodeInMemory reconstructs an in-memory index from Encode output over
// the collection it was built from.
func DecodeInMemory(data []byte, coll *series.Collection, opt Options) (*Index, error) {
	opt = opt.normalize()
	tree, sax, err := core.DecodeIndex(data)
	if err != nil {
		return nil, fmt.Errorf("paris: %w", err)
	}
	cfg := tree.Config()
	if cfg.SeriesLen != coll.SeriesLen() || sax.Len() != coll.Len() {
		return nil, fmt.Errorf("paris: index shape (%d series × %d) does not match collection (%d × %d)",
			sax.Len(), cfg.SeriesLen, coll.Len(), coll.SeriesLen())
	}
	return &Index{cfg: cfg, opt: opt, tree: tree, sax: sax, mem: coll}, nil
}

// Count returns the number of indexed series.
func (ix *Index) Count() int { return ix.sax.Len() }

// Tree exposes the index tree for diagnostics and tests.
func (ix *Index) Tree() *core.Tree { return ix.tree }

// BuildStats returns creation accounting.
func (ix *Index) BuildStats() BuildStats { return ix.build }

// builder carries the shared state of one index creation.
type builder struct {
	ix    *Index
	opt   Options
	bufs  []recBuf
	claim []atomic.Bool // per-key subtree ownership (ParIS+)
}

func newBuilder(ix *Index, opt Options) *builder {
	fan := ix.cfg.RootFanout()
	return &builder{
		ix:    ix,
		opt:   opt,
		bufs:  make([]recBuf, fan),
		claim: make([]atomic.Bool, fan),
	}
}

// loadSeries summarizes one series into the SAX array and routes its
// position to the proper RecBuf. Returns the root key.
func (b *builder) loadSeries(sm *core.Summarizer, s series.Series, pos int32) uint32 {
	dst := b.ix.sax.At(int(pos))
	sm.Summarize(s, dst)
	key := b.ix.tree.RootKey(dst)
	b.bufs[key].append(pos)
	return key
}

// growSubtree drains the RecBuf for key into the tree. The caller must own
// the key (stage-3 Fetch&Inc distribution or a ParIS+ claim).
func (b *builder) growSubtree(key uint32) {
	for _, pos := range b.bufs[key].drain() {
		b.ix.tree.SubtreeInsert(key, b.ix.sax.At(int(pos)), pos)
	}
}

// tryGrow attempts to claim the subtree for key and drain its buffer;
// returns immediately if another worker holds the claim (ParIS+ stage 2).
func (b *builder) tryGrow(key uint32) {
	if !b.claim[key].CompareAndSwap(false, true) {
		return
	}
	b.growSubtree(key)
	b.claim[key].Store(false)
}

// constructAll sweeps every receiving buffer, distributing slot ranges over
// workers with Fetch&Inc, and builds every pending subtree (ParIS stage 3,
// and the final ParIS+ sweep). Stage 2 has finished when this runs, so the
// emptiness hints are exact.
func (b *builder) constructAll(workers int) {
	const stride = 1024 // RecBuf slots claimed per Fetch&Inc
	var cursor xsync.Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Next()) * stride
				if lo >= len(b.bufs) {
					return
				}
				hi := min(lo+stride, len(b.bufs))
				for key := lo; key < hi; key++ {
					if !b.bufs[key].empty() {
						// The claim keeps ParIS+ stragglers out of the
						// same subtree.
						b.tryGrow(uint32(key))
					}
				}
			}
		}()
	}
	wg.Wait()
}

// flushAll materializes every leaf to the leaf store in parallel (ParIS+
// stage 3 proper; the final Write component of Figure 4).
func (b *builder) flushAll(workers int) error {
	if b.ix.leaves == nil {
		return nil
	}
	keys := b.ix.tree.OccupiedKeys()
	var cursor xsync.Counter
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := cursor.Next()
				if int(i) >= len(keys) {
					return
				}
				var err error
				b.ix.tree.Subtree(keys[i]).WalkLeaves(func(n *core.Node) {
					if err == nil {
						err = core.FlushLeaf(n, b.ix.cfg.Segments, b.ix.leaves)
					}
				})
				if err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Build creates a ParIS or ParIS+ index over an on-disk series file,
// materializing leaves through leafStore.
func Build(raw *storage.SeriesFile, leafStore *storage.LeafStore, cfg core.Config, opt Options) (*Index, error) {
	opt = opt.normalize()
	cfg.SeriesLen = raw.Length()
	tree, err := core.NewTree(cfg)
	if err != nil {
		return nil, fmt.Errorf("paris: %w", err)
	}
	cfg = tree.Config()
	n := int(raw.Count())
	ix := &Index{cfg: cfg, opt: opt, tree: tree, sax: core.NewSAXArray(n, cfg.Segments), raw: raw, leaves: leafStore}
	b := newBuilder(ix, opt)

	start := time.Now()

	type block struct {
		start int64
		n     int
		raw   []byte  // little-endian float32 values, decoded by the worker
		bufp  *[]byte // pooled backing buffer, returned after decode
	}

	for batchLo := int64(0); batchLo < raw.Count(); batchLo += int64(opt.BatchSeries) {
		batchHi := batchLo + int64(opt.BatchSeries)
		if batchHi > raw.Count() {
			batchHi = raw.Count()
		}

		// Stage 1: the coordinator streams raw byte blocks while stage-2
		// workers consume them; it performs no CPU work beyond the read
		// itself, as in the paper. Block buffers are pooled — the raw data
		// buffer of the paper is a fixed memory region, not fresh
		// allocations, and reuse keeps the garbage collector out of the
		// measured pipeline.
		bufPool := sync.Pool{New: func() any {
			buf := make([]byte, opt.ReadBlock*cfg.SeriesLen*4)
			return &buf
		}}
		blocks := make(chan block, 4)
		var readWall atomic.Int64
		var readErr error
		go func() {
			defer close(blocks)
			for lo := batchLo; lo < batchHi; lo += int64(opt.ReadBlock) {
				hi := lo + int64(opt.ReadBlock)
				if hi > batchHi {
					hi = batchHi
				}
				bufp := bufPool.Get().(*[]byte)
				buf := (*bufp)[:(hi-lo)*int64(cfg.SeriesLen)*4]
				t0 := time.Now()
				err := raw.ReadBatchBytesInto(buf, lo)
				readWall.Add(int64(time.Since(t0)))
				if err != nil {
					readErr = fmt.Errorf("paris: coordinator read at %d: %w", lo, err)
					return
				}
				blocks <- block{start: lo, n: int(hi - lo), raw: buf, bufp: bufp}
			}
		}()

		// Stage 2: IndexBulkLoading workers decode and summarize.
		var wg sync.WaitGroup
		for w := 0; w < opt.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sm := core.NewSummarizer(cfg, tree.Quantizer())
				values := make([]float32, opt.ReadBlock*cfg.SeriesLen)
				touched := make(map[uint32]struct{}, 64)
				for blk := range blocks {
					vals := values[:blk.n*cfg.SeriesLen]
					storage.DecodeFloat32(vals, blk.raw)
					bufPool.Put(blk.bufp)
					for i := 0; i < blk.n; i++ {
						s := series.Series(vals[i*cfg.SeriesLen : (i+1)*cfg.SeriesLen])
						key := b.loadSeries(sm, s, int32(blk.start)+int32(i))
						if opt.Mode == ModeParISPlus {
							touched[key] = struct{}{}
						}
					}
					if opt.Mode == ModeParISPlus {
						// ParIS+: grow the subtrees this block touched while
						// the coordinator keeps reading.
						for key := range touched {
							b.tryGrow(key)
							delete(touched, key)
						}
					}
				}
			}()
		}
		wg.Wait()
		if readErr != nil {
			return nil, readErr
		}
		ix.build.ReadWall += time.Duration(readWall.Load())

		// Stage 3 for ParIS: dedicated tree construction. For ParIS+ the
		// trees are already grown except for claim-contention leftovers,
		// which the final sweep below picks up batch by batch.
		t0 := time.Now()
		b.constructAll(opt.Workers)
		if opt.Mode == ModeParIS {
			ix.build.TreeWall += time.Since(t0)
		}
	}

	// Materialize leaves (ParIS+ stage 3 proper; final Write for both).
	t0 := time.Now()
	if err := b.flushAll(opt.Workers); err != nil {
		return nil, fmt.Errorf("paris: flushing leaves: %w", err)
	}
	ix.build.FlushWall = time.Since(t0)
	ix.build.Total = time.Since(start)
	return ix, nil
}

// BuildInMemory creates the in-memory ParIS/ParIS+ variant over a RAM
// collection (Figures 7, 9, 12): no coordinator, no leaf flushing; stage-2
// workers claim fixed-size blocks of the collection with Fetch&Inc.
func BuildInMemory(coll *series.Collection, cfg core.Config, opt Options) (*Index, error) {
	opt = opt.normalize()
	cfg.SeriesLen = coll.SeriesLen()
	tree, err := core.NewTree(cfg)
	if err != nil {
		return nil, fmt.Errorf("paris: %w", err)
	}
	cfg = tree.Config()
	n := coll.Len()
	ix := &Index{cfg: cfg, opt: opt, tree: tree, sax: core.NewSAXArray(n, cfg.Segments), mem: coll}
	b := newBuilder(ix, opt)

	start := time.Now()
	blocks := xsync.Blocks(n, opt.ReadBlock)
	var cursor xsync.Counter
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sm := core.NewSummarizer(cfg, tree.Quantizer())
			touched := make(map[uint32]struct{}, 64)
			for {
				bi := cursor.Next()
				if int(bi) >= len(blocks) {
					return
				}
				blk := blocks[bi]
				for i := blk.Lo; i < blk.Hi; i++ {
					key := b.loadSeries(sm, coll.At(i), int32(i))
					if opt.Mode == ModeParISPlus {
						touched[key] = struct{}{}
					}
				}
				if opt.Mode == ModeParISPlus {
					for key := range touched {
						b.tryGrow(key)
						delete(touched, key)
					}
				}
			}
		}()
	}
	wg.Wait()

	t0 := time.Now()
	b.constructAll(opt.Workers)
	ix.build.TreeWall = time.Since(t0)
	ix.build.Total = time.Since(start)
	return ix, nil
}
