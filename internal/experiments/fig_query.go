package experiments

import (
	"fmt"

	"dsidx/internal/adsplus"
	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/paris"
	"dsidx/internal/series"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
)

// buildParISOnDisk stages the workload on a device (unthrottled during the
// untimed build) and returns the index with the device ready for timed
// queries.
func buildParISOnDisk(w workload, profile storage.Profile, mode paris.Mode, cores int) (*paris.Index, *storage.Disk, error) {
	disk, raw, err := w.onDisk(profile)
	if err != nil {
		return nil, nil, err
	}
	disk.SetScale(0) // index creation is not the measured phase here
	ix, err := paris.Build(raw, storage.NewLeafStore(disk), core.Config{LeafCapacity: leafCapacity},
		paris.Options{Mode: mode, Workers: cores})
	if err != nil {
		return nil, nil, err
	}
	disk.SetScale(1)
	disk.ResetMetrics()
	return ix, disk, nil
}

// Fig8 reproduces ParIS+ exact query answering vs cores on HDD and SSD.
// Paper: performance improves with cores on both devices; SSD is more than
// an order of magnitude faster.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	if cfg.QueryCount > 3 {
		cfg.QueryCount = 3 // disk queries are the slow part of the suite
	}
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:    "fig8",
		Title: "ParIS+ exact query answering vs cores (Synthetic)",
		Unit:  "seconds per query",
	}
	coreCounts := cfg.coreAxis(1, 2, 4, 8, 16, 24)
	for _, n := range coreCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%dc", n))
	}
	for _, profile := range []storage.Profile{queryHDD, querySSD} {
		ix, _, err := buildParISOnDisk(w, profile, paris.ModeParISPlus, cfg.MaxCores)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", profile.Name, err)
		}
		row := make([]float64, 0, len(coreCounts))
		for _, cores := range coreCounts {
			mean, err := timeQueries(w.queries, func(q series.Series) error {
				_, _, err := ix.Search(q, cores)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s@%d: %w", profile.Name, cores, err)
			}
			row = append(row, seconds(mean))
		}
		t.AddRow("ParIS+ on "+profile.Name, row...)
	}
	t.Note("paper: both curves fall with cores; SSD >1 order of magnitude below HDD")
	return t, nil
}

// inMemoryScale multiplies the collection size for the in-memory query
// figures (9 and 12): they are CPU-bound and fast, and the separation the
// paper reports between MESSI's tree pruning and ParIS's full SAX-array
// scan is asymptotic — it needs enough series to emerge from fixed
// per-query overheads.
const inMemoryScale = 5

// Fig9 reproduces in-memory query answering vs cores: MESSI vs in-memory
// ParIS vs the parallel UCR Suite scan.
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	cfg.SeriesCount *= inMemoryScale
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:    "fig9",
		Title: "In-memory exact query answering vs cores (Synthetic)",
		Unit:  "milliseconds per query",
	}
	coreCounts := cfg.coreAxis(2, 4, 6, 8, 12, 18, 24)
	for _, n := range coreCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%dc", n))
	}

	parisIx, err := paris.BuildInMemory(w.coll, core.Config{LeafCapacity: leafCapacity},
		paris.Options{Workers: cfg.MaxCores})
	if err != nil {
		return nil, fmt.Errorf("fig9 ParIS build: %w", err)
	}
	messiIx, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
		messi.Options{Workers: cfg.MaxCores})
	if err != nil {
		return nil, fmt.Errorf("fig9 MESSI build: %w", err)
	}
	defer messiIx.Close()

	systems := []struct {
		name string
		run  func(q series.Series, cores int) error
	}{
		{"UCR Suite-p", func(q series.Series, cores int) error {
			ucr.ParallelScan(w.coll, q, cores)
			return nil
		}},
		{"ParIS", func(q series.Series, cores int) error {
			_, _, err := parisIx.Search(q, cores)
			return err
		}},
		{"MESSI", func(q series.Series, cores int) error {
			_, _, err := messiIx.Search(q, cores)
			return err
		}},
	}
	for _, sys := range systems {
		row := make([]float64, 0, len(coreCounts))
		for _, cores := range coreCounts {
			mean, err := timeQueries(w.queries, func(q series.Series) error {
				return sys.run(q, cores)
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %s@%d: %w", sys.name, cores, err)
			}
			row = append(row, millis(mean))
		}
		t.AddRow(sys.name, row...)
	}
	t.Note("paper: MESSI below ParIS below UCR-p at every core count (log-scale plot)")
	return t, nil
}

// diskQueryRow measures the three on-disk systems of Figures 10/11 on one
// dataset and device.
func diskQueryRow(cfg Config, kind gen.Kind, profile storage.Profile) (ucrS, adsS, parisS float64, err error) {
	w := newWorkload(cfg, kind)

	// UCR Suite: serial scan of the raw file.
	disk, raw, err := w.onDisk(profile)
	if err != nil {
		return 0, 0, 0, err
	}
	_ = disk
	mean, err := timeQueries(w.queries, func(q series.Series) error {
		_, err := ucr.ScanDisk(raw, q, 0)
		return err
	})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("UCR: %w", err)
	}
	ucrS = seconds(mean)

	// ADS+ (serial index).
	disk2, raw2, err := w.onDisk(profile)
	if err != nil {
		return 0, 0, 0, err
	}
	disk2.SetScale(0)
	adsIx, err := adsplus.Build(raw2, storage.NewLeafStore(disk2), core.Config{LeafCapacity: leafCapacity})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("ADS+ build: %w", err)
	}
	disk2.SetScale(1)
	mean, err = timeQueries(w.queries, func(q series.Series) error {
		_, _, err := adsIx.Search(q)
		return err
	})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("ADS+: %w", err)
	}
	adsS = seconds(mean)

	// ParIS+.
	parisIx, _, err := buildParISOnDisk(w, profile, paris.ModeParISPlus, cfg.MaxCores)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("ParIS+ build: %w", err)
	}
	mean, err = timeQueries(w.queries, func(q series.Series) error {
		_, _, err := parisIx.Search(q, cfg.MaxCores)
		return err
	})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("ParIS+: %w", err)
	}
	parisS = seconds(mean)
	return ucrS, adsS, parisS, nil
}

func diskQueryFigure(cfg Config, id string, profile storage.Profile, paperNote string) (*Table, error) {
	cfg = cfg.Normalize()
	if cfg.QueryCount > 3 {
		cfg.QueryCount = 3
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Exact query answering across datasets (%s)", profile.Name),
		Unit:    "seconds per query",
		Columns: []string{"UCR Suite", "ADS+", "ParIS+"},
	}
	for _, kind := range datasets {
		u, a, p, err := diskQueryRow(cfg, kind, profile)
		if err != nil {
			return nil, fmt.Errorf("%s %v: %w", id, kind, err)
		}
		t.AddRow(kind.String(), u, a, p)
	}
	t.Note("%s", paperNote)
	return t, nil
}

// Fig10 reproduces on-HDD query answering across datasets.
func Fig10(cfg Config) (*Table, error) {
	return diskQueryFigure(cfg, "fig10", queryHDD,
		"paper: ParIS+ up to 1 order of magnitude over ADS+, >2 orders over UCR Suite (HDD)")
}

// Fig11 reproduces on-SSD query answering across datasets.
func Fig11(cfg Config) (*Table, error) {
	return diskQueryFigure(cfg, "fig11", querySSD,
		"paper: ParIS+ 15x over ADS+, 2000x over UCR Suite (SSD)")
}

// Fig12 reproduces in-memory query answering across datasets.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	cfg.SeriesCount *= inMemoryScale
	t := &Table{
		ID:      "fig12",
		Title:   "In-memory exact query answering across datasets",
		Unit:    "milliseconds per query",
		Columns: []string{"UCR Suite-p", "ParIS", "MESSI"},
	}
	cores := cfg.MaxCores
	for _, kind := range datasets {
		w := newWorkload(cfg, kind)
		parisIx, err := paris.BuildInMemory(w.coll, core.Config{LeafCapacity: leafCapacity},
			paris.Options{Workers: cores})
		if err != nil {
			return nil, fmt.Errorf("fig12 ParIS %v: %w", kind, err)
		}
		messiIx, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
			messi.Options{Workers: cores})
		if err != nil {
			return nil, fmt.Errorf("fig12 MESSI %v: %w", kind, err)
		}
		var row [3]float64
		mean, err := timeQueries(w.queries, func(q series.Series) error {
			ucr.ParallelScan(w.coll, q, cores)
			return nil
		})
		if err != nil {
			return nil, err
		}
		row[0] = millis(mean)
		mean, err = timeQueries(w.queries, func(q series.Series) error {
			_, _, err := parisIx.Search(q, cores)
			return err
		})
		if err != nil {
			return nil, err
		}
		row[1] = millis(mean)
		mean, err = timeQueries(w.queries, func(q series.Series) error {
			_, _, err := messiIx.Search(q, cores)
			return err
		})
		messiIx.Close()
		if err != nil {
			return nil, err
		}
		row[2] = millis(mean)
		t.AddRow(kind.String(), row[0], row[1], row[2])
	}
	t.Note("paper: MESSI 55-80x faster than UCR-p, 6.4-11x faster than ParIS")
	return t, nil
}
