package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/paris"
	"dsidx/internal/series"
	"dsidx/internal/vector"
)

// AblationQueueCount measures MESSI query time as the number of concurrent
// priority queues varies — the load-balancing design choice of stage 3.
func AblationQueueCount(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:      "ablation-queues",
		Title:   "MESSI query time vs priority-queue count (Synthetic)",
		Unit:    "milliseconds per query",
		Columns: []string{"mean"},
	}
	cores := cfg.MaxCores
	for _, qc := range []int{1, 2, cores / 4, cores / 2, cores, 2 * cores} {
		if qc < 1 {
			continue
		}
		ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
			messi.Options{Workers: cores, QueueCount: qc})
		if err != nil {
			return nil, fmt.Errorf("ablation-queues qc=%d: %w", qc, err)
		}
		mean, err := timeQueries(w.queries, func(q series.Series) error {
			_, _, err := ix.Search(q, cores)
			return err
		})
		ix.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("queues=%d", qc), millis(mean))
	}
	t.Note("single queue serializes pops; far too many queues weaken best-first ordering")
	return t, nil
}

// AblationBufferPartitioning compares MESSI's per-worker buffer parts
// against the lock-protected shared buffers the paper's footnote 2 rejects.
func AblationBufferPartitioning(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:      "ablation-buffers",
		Title:   "MESSI stage-1 buffer design (Synthetic)",
		Unit:    "seconds",
		Columns: []string{"Summarize", "Total"},
	}
	cores := cfg.MaxCores
	for _, shared := range []bool{false, true} {
		label := "per-worker parts"
		if shared {
			label = "locked shared buffers"
		}
		// Median of 3 builds: contention effects are noisy.
		var sums, totals []float64
		for rep := 0; rep < 3; rep++ {
			ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
				messi.Options{Workers: cores, SharedBuffers: shared})
			if err != nil {
				return nil, fmt.Errorf("ablation-buffers shared=%v: %w", shared, err)
			}
			ix.Close()
			bs := ix.BuildStats()
			sums = append(sums, seconds(bs.Summarize))
			totals = append(totals, seconds(bs.Total))
		}
		t.AddRow(label, sortedCopy(sums)[1], sortedCopy(totals)[1])
	}
	t.Note("paper footnote 2: the locked design 'resulted in worse performance due to contention'")
	return t, nil
}

// AblationVectorKernels measures the distance-kernel implementation
// ladder: the dispatched production kernel (AVX2 assembly where the CPU
// has it), the forced scalar oracle, and the 8-way unrolled "SIMD-style"
// Go transcription kept from before the assembly layer existed.
func AblationVectorKernels(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	t := &Table{
		ID:      "ablation-kernels",
		Title:   fmt.Sprintf("Distance kernels: dispatch (%s) vs scalar vs unrolled", vector.Impl()),
		Unit:    "nanoseconds per 256-point distance",
		Columns: []string{"ns/op"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const n, pairs = 256, 512
	a := make([][]float32, pairs)
	b := make([][]float32, pairs)
	for i := range a {
		a[i] = make([]float32, n)
		b[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			a[i][j] = float32(rng.NormFloat64())
			b[i][j] = float32(rng.NormFloat64())
		}
	}
	var sink float64
	measure := func(fn func(x, y []float32) float64) float64 {
		const reps = 200
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			for i := range a {
				sink += fn(a[i], b[i])
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(reps*pairs)
	}
	vector.ForceScalar(false)
	defer vector.ForceScalar(false)
	t.AddRow(fmt.Sprintf("dispatch (%s, production)", vector.Impl()), measure(vector.SquaredED))
	vector.ForceScalar(true)
	t.AddRow("scalar oracle (forced)", measure(vector.SquaredED))
	t.AddRow("8-way unrolled (Go)", measure(vector.SquaredEDUnrolled))
	vector.ForceScalar(false)
	if sink == 0 {
		t.Note("sink zero (unexpected)")
	}
	t.Note("the unroll transcribes the paper's SIMD style in pure Go; the assembly layer implements the same pinned summation order bit-identically (internal/vector)")
	return t, nil
}

// AblationQueryHardness sweeps the query perturbation eps and reports the
// fraction of the collection surviving the lower-bound scan — the pruning
// power that every speedup in Figures 8-12 rests on, and the quantitative
// justification for the perturbed-query substitution in DESIGN.md.
func AblationQueryHardness(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:      "ablation-hardness",
		Title:   "Pruning power vs query difficulty (Synthetic, ParIS in-memory)",
		Unit:    "fraction of collection",
		Columns: []string{"candidates", "raw_dists"},
	}
	ix, err := paris.BuildInMemory(w.coll, core.Config{LeafCapacity: leafCapacity},
		paris.Options{Workers: cfg.MaxCores})
	if err != nil {
		return nil, fmt.Errorf("ablation-hardness: %w", err)
	}
	n := float64(w.coll.Len())
	g := gen.Generator{Kind: gen.Synthetic, Seed: cfg.Seed}
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
		queries := g.PerturbedQueries(w.coll, cfg.QueryCount, eps)
		var cands, raws int
		for qi := 0; qi < queries.Len(); qi++ {
			_, stats, err := ix.Search(queries.At(qi), cfg.MaxCores)
			if err != nil {
				return nil, err
			}
			cands += stats.Candidates
			raws += stats.RawDistances
		}
		q := float64(queries.Len())
		t.AddRow(fmt.Sprintf("eps=%.2f", eps), float64(cands)/q/n, float64(raws)/q/n)
	}
	t.Note("harder queries (larger eps ⇒ more distant NN) prune less — the dense-collection regime of the paper corresponds to small eps")
	return t, nil
}

// AblationLeafCapacity measures the MESSI build/query tradeoff as leaf
// capacity varies: small leaves prune tighter but cost more splits.
func AblationLeafCapacity(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:      "ablation-leafcap",
		Title:   "MESSI leaf capacity tradeoff (Synthetic)",
		Unit:    "build: seconds; query: milliseconds",
		Columns: []string{"build_s", "query_ms", "leaves"},
	}
	cores := cfg.MaxCores
	for _, cap := range []int{64, 128, 256, 512, 1024, 2048} {
		t0 := time.Now()
		ix, err := messi.Build(w.coll, core.Config{LeafCapacity: cap},
			messi.Options{Workers: cores})
		if err != nil {
			return nil, fmt.Errorf("ablation-leafcap cap=%d: %w", cap, err)
		}
		build := seconds(time.Since(t0))
		mean, err := timeQueries(w.queries, func(q series.Series) error {
			_, _, err := ix.Search(q, cores)
			return err
		})
		ix.Close()
		if err != nil {
			return nil, err
		}
		st := ix.Tree().Stats()
		t.AddRow(fmt.Sprintf("leaf=%d", cap), build, millis(mean), float64(st.Leaves))
	}
	return t, nil
}
