package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"dsidx/internal/vector"
)

// Kernel-level microbenchmark: the SIMD distance kernels against their
// scalar oracle, measured in isolation so the per-kernel ns/op series can
// be tracked across PRs in the same trajectory file as the end-to-end
// query numbers. This is the programmatic form of dsbench -kerneljson and
// the CI kernel-smoke step (scripts/kernel_smoke.sh).

// KernelBenchResult is the machine-readable kernel record (schema
// dsidx-bench-kernels/v1). All ns/op figures are single-core: kernels
// never parallelize internally, so Workers is pinned to 1 and speedups
// read as per-core gains.
type KernelBenchResult struct {
	BenchHeader
	// Simd is what CPU feature detection found at startup: "avx2" on
	// amd64 machines with AVX2 (and a build carrying the assembly layer),
	// "none" otherwise. When "none", every *SimdNs field measures the
	// scalar path and the speedups sit at ~1.
	Simd string `json:"simd"`
	// Batch and Card are the lower-bound workload shape: bounds per
	// MinDistBatch call and table cardinality.
	Batch int `json:"batch"`
	Card  int `json:"card"`

	// Per-kernel ns/op, dispatch (SIMD where detected) vs forced scalar.
	// SquaredED and EarlyAbandon are per distance over SeriesLen points
	// (EarlyAbandon at limit +Inf: the never-abandons worst case, so both
	// implementations do full-length work); MinDist is per bound (w=16).
	EDSimdNs        float64 `json:"ed_simd_ns"`
	EDScalarNs      float64 `json:"ed_scalar_ns"`
	EASimdNs        float64 `json:"ea_simd_ns"`
	EAScalarNs      float64 `json:"ea_scalar_ns"`
	MinDistSimdNs   float64 `json:"mindist_simd_ns"`
	MinDistScalarNs float64 `json:"mindist_scalar_ns"`

	// MinEDSpeedup is the smaller of the two ED-kernel scalar/SIMD
	// ratios — the margin the kernel-smoke gate asserts on. The MinDist
	// speedup is recorded alongside but gated more loosely (gathers are
	// closer to the scalar lookup loop than the arithmetic kernels are).
	MinEDSpeedup   float64 `json:"min_ed_speedup"`
	MinDistSpeedup float64 `json:"mindist_speedup"`

	Note string `json:"note,omitempty"`
}

// Validate extends the shared header checks with kernel-record shape.
func (r *KernelBenchResult) Validate() error {
	if err := r.BenchHeader.Validate(); err != nil {
		return err
	}
	if r.Simd != "avx2" && r.Simd != "none" {
		return fmt.Errorf("simd %q, want avx2 or none", r.Simd)
	}
	if r.Batch <= 0 || r.Card <= 0 {
		return fmt.Errorf("implausible lower-bound shape: batch %d, card %d", r.Batch, r.Card)
	}
	for name, ns := range map[string]float64{
		"ed_simd_ns": r.EDSimdNs, "ed_scalar_ns": r.EDScalarNs,
		"ea_simd_ns": r.EASimdNs, "ea_scalar_ns": r.EAScalarNs,
		"mindist_simd_ns": r.MinDistSimdNs, "mindist_scalar_ns": r.MinDistScalarNs,
	} {
		if ns <= 0 {
			return fmt.Errorf("%s = %v, want positive", name, ns)
		}
	}
	return nil
}

// kernelReps spreads a time budget over the measurement loop: enough
// repetitions to dominate timer noise without making the smoke step slow.
const kernelReps = 300

// measureKernel times fn over reps repetitions of a pass covering ops
// operations, returning ns per operation.
func measureKernel(ops int, fn func()) float64 {
	fn() // warm caches and page in inputs before the timed reps
	t0 := time.Now()
	for r := 0; r < kernelReps; r++ {
		fn()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(kernelReps*ops)
}

// RunKernelBench measures every distance kernel under both dispatch
// choices and returns one trajectory point. The vector-length and
// lower-bound shapes follow the production defaults (256-point series,
// w=16 summaries at cardinality 256) regardless of cfg's collection
// scale — kernel timings should stay comparable across runs that sweep
// the end-to-end workload.
func RunKernelBench(cfg Config) (*KernelBenchResult, error) {
	cfg = cfg.Normalize()
	const n, pairs, batch, card = 256, 512, 1024, 256

	rng := rand.New(rand.NewSource(cfg.Seed))
	a := make([][]float32, pairs)
	b := make([][]float32, pairs)
	for i := range a {
		a[i] = make([]float32, n)
		b[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			a[i][j] = float32(rng.NormFloat64())
			b[i][j] = float32(rng.NormFloat64())
		}
	}
	cells := make([]float64, 16*card)
	for i := range cells {
		cells[i] = rng.Float64()
	}
	sax := make([]uint8, batch*16)
	for i := range sax {
		sax[i] = uint8(rng.Intn(card))
	}
	bounds := make([]float64, batch)

	var sink float64
	inf := math.Inf(1)
	edPass := func() {
		for i := range a {
			sink += vector.SquaredED(a[i], b[i])
		}
	}
	eaPass := func() {
		for i := range a {
			sink += vector.SquaredEDEarlyAbandon(a[i], b[i], inf)
		}
	}
	mdPass := func() { vector.MinDistBatch(cells, sax, 16, card, bounds) }

	res := &KernelBenchResult{
		BenchHeader: BenchHeader{
			Schema:      "dsidx-bench-kernels/v1",
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Workers:     1, // kernels are single-core by construction
			SeriesCount: pairs,
			SeriesLen:   n,
			QueryCount:  0,
		},
		Simd:  vector.Detected(),
		Batch: batch,
		Card:  card,
		Note:  machineBoundNote + "; speedups are per-core (kernels never parallelize internally)",
	}

	vector.ForceScalar(false)
	defer vector.ForceScalar(false)
	res.EDSimdNs = measureKernel(pairs, edPass)
	res.EASimdNs = measureKernel(pairs, eaPass)
	res.MinDistSimdNs = measureKernel(batch, mdPass)
	vector.ForceScalar(true)
	res.EDScalarNs = measureKernel(pairs, edPass)
	res.EAScalarNs = measureKernel(pairs, eaPass)
	res.MinDistScalarNs = measureKernel(batch, mdPass)
	vector.ForceScalar(false)

	res.MinEDSpeedup = res.EDScalarNs / res.EDSimdNs
	if s := res.EAScalarNs / res.EASimdNs; s < res.MinEDSpeedup {
		res.MinEDSpeedup = s
	}
	res.MinDistSpeedup = res.MinDistScalarNs / res.MinDistSimdNs
	if sink == 0 {
		res.Note += "; sink zero (unexpected)"
	}
	return res, nil
}

// WriteJSON writes the record to path (kept as a method for the dsbench
// entry point; all schemas funnel through WriteBenchJSON).
func (r *KernelBenchResult) WriteJSON(path string) error { return WriteBenchJSON(path, r) }
