package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/shard"
	"dsidx/internal/storage"
)

// Out-of-core tiering benchmark: the same collection served fully hot
// (MESSI's in-memory premise) versus cold (base values on a simulated SSD
// behind shard.Options.ColdStorage's block cache), across cache budgets.
//
// Two claims are pinned. Correctness: every exact answer over the cold
// tier is bit-identical to the hot build's — the float32 → LE bytes →
// float32 round trip through the device is exact, so tiering is invisible
// to results (cold_matches_hot, asserted by scripts/disk_smoke.sh).
// Residency: an all-cold build over a real temp file must keep resident
// bytes/series well below the hot build — the base payload (the dominant
// term) lives on the device, RAM holds the tree, SAX summaries and the
// bounded cache (cold_over_flat).
//
// The latency points show the price: mean exact-query time against cache
// budget, with the block cache's hit rate and the device's I/O accounting
// (read ops, bytes, seeks, modeled busy time) for the query phase only —
// construction is staged at latency scale 0 and metrics are reset before
// the first query. Query time includes ParIS+-style I/O masking: the
// refinement phase prefetches the next candidate leaf's block while
// computing distances on the current one (see messi's phase-B pipeline).

// diskPoint is one cache budget's measurement over the cold tier.
type diskPoint struct {
	CacheBytes    int64   `json:"cache_bytes"`
	CacheOverData float64 `json:"cache_over_data"`
	NsPerQuery    float64 `json:"ns_per_query"`
	// Cache counters for the query phase (build-time loads excluded).
	HitRate   float64 `json:"hit_rate"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	// Device accounting for the query phase.
	DeviceReadOps         int64   `json:"device_read_ops"`
	DeviceBytesRead       int64   `json:"device_bytes_read"`
	DeviceSeeks           int64   `json:"device_seeks"`
	DeviceReadBusySeconds float64 `json:"device_read_busy_seconds"`
}

// DiskBenchResult is the machine-readable out-of-core record dsbench
// -diskjson writes (BENCH_disk.json).
type DiskBenchResult struct {
	BenchHeader
	Shards      int    `json:"shards"`
	BlockSeries int    `json:"block_series"`
	Device      string `json:"device"`
	// RawBytesPerSeries is the payload floor: 4 bytes per float32 point.
	RawBytesPerSeries int `json:"raw_bytes_per_series"`
	// FlatBytesPerSeries is the hot (all-in-RAM) build's residency;
	// ColdBytesPerSeries the all-cold build's over a real temp file.
	FlatBytesPerSeries float64 `json:"flat_bytes_per_series"`
	ColdBytesPerSeries float64 `json:"cold_bytes_per_series"`
	ColdOverFlat       float64 `json:"cold_over_flat"`
	// ColdMatchesHot records that every query answered bit-identically on
	// the cold tier and the hot build — the smoke-test invariant.
	ColdMatchesHot bool        `json:"cold_matches_hot"`
	Points         []diskPoint `json:"points"`
	Note           string      `json:"note,omitempty"`
}

// WriteJSON writes the record to path.
func (r *DiskBenchResult) WriteJSON(path string) error { return WriteBenchJSON(path, r) }

// diskCacheAxis is the swept cache budget as a fraction of the dataset.
var diskCacheAxis = []int64{32, 8, 2} // dataBytes / N

// RunDiskBench measures the out-of-core tier: residency and correctness
// against a hot build, and query latency across cache budgets on the
// query-scaled SSD profile. It is the programmatic form of the dsbench
// -diskjson flag and the CI disk-smoke step.
func RunDiskBench(cfg Config) (*DiskBenchResult, error) {
	cfg = cfg.Normalize()
	shards := maxInt(cfg.ShardAxis)
	w := newWorkload(cfg, gen.Synthetic)
	dataBytes := int64(w.coll.Len()) * int64(w.coll.SeriesLen()) * 4
	mo := messi.Options{Workers: cfg.MaxCores, MaxInFlight: maxInt(cfg.InFlightAxis)}

	res := &DiskBenchResult{
		BenchHeader:       header("dsidx-bench-disk/v1", cfg, w),
		Shards:            shards,
		BlockSeries:       storage.DefaultBlockSeries,
		Device:            querySSD.Name,
		RawBytesPerSeries: 4 * w.coll.SeriesLen(),
		ColdMatchesHot:    true,
		Note: "query-phase device accounting (construction staged unthrottled); " +
			machineBoundNote,
	}

	// Hot baseline: answers every point must reproduce exactly.
	hot, err := shard.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
		shard.Options{Shards: shards, Options: mo})
	if err != nil {
		return nil, fmt.Errorf("diskbench: hot: %w", err)
	}
	hotAnswers := make([]core.Result, w.queries.Len())
	for i := range hotAnswers {
		r, _, err := hot.Search(w.queries.At(i), 0)
		if err != nil {
			hot.Close()
			return nil, fmt.Errorf("diskbench: hot query %d: %w", i, err)
		}
		hotAnswers[i] = r
	}
	hot.Close()

	for _, frac := range diskCacheAxis {
		budget := dataBytes / frac
		pt, matches, err := measureCold(cfg, w, shards, budget, dataBytes, mo, hotAnswers)
		if err != nil {
			return nil, err
		}
		res.ColdMatchesHot = res.ColdMatchesHot && matches
		res.Points = append(res.Points, pt)
	}

	if err := measureDiskResidency(cfg, res, shards, dataBytes, mo); err != nil {
		return nil, err
	}
	return res, nil
}

// measureCold builds an all-cold sharded index at one cache budget and
// runs the query set once, timing it and checking every answer against the
// hot baseline. The single pass is deliberate: first-touch misses are part
// of cold-tier latency.
func measureCold(cfg Config, w workload, shards int, budget, dataBytes int64,
	mo messi.Options, hotAnswers []core.Result) (diskPoint, bool, error) {
	pt := diskPoint{CacheBytes: budget, CacheOverData: float64(budget) / float64(dataBytes)}
	s, err := shard.Build(w.coll, core.Config{LeafCapacity: leafCapacity}, shard.Options{
		Shards: shards,
		ColdStorage: &shard.ColdStorage{
			Profile:    querySSD,
			CacheBytes: budget,
		},
		Options: mo,
	})
	if err != nil {
		return pt, false, fmt.Errorf("diskbench: cold@%d: %w", budget, err)
	}
	defer s.Close()
	s.ColdDisk().ResetMetrics()
	before := s.ColdStats().Cache

	matches := true
	qi := 0
	mean, err := timeQueries(w.queries, func(q series.Series) error {
		r, _, err := s.Search(q, 0)
		if err != nil {
			return err
		}
		if r != hotAnswers[qi] {
			matches = false
		}
		qi++
		return nil
	})
	if err != nil {
		return pt, false, fmt.Errorf("diskbench: cold@%d: %w", budget, err)
	}
	pt.NsPerQuery = float64(mean.Nanoseconds())

	after := s.ColdStats()
	pt.Hits = after.Cache.Hits - before.Hits
	pt.Misses = after.Cache.Misses - before.Misses
	pt.Evictions = after.Cache.Evictions - before.Evictions
	if total := pt.Hits + pt.Misses; total > 0 {
		pt.HitRate = float64(pt.Hits) / float64(total)
	}
	pt.DeviceReadOps = after.Device.ReadOps
	pt.DeviceBytesRead = after.Device.BytesRead
	pt.DeviceSeeks = after.Device.Seeks
	pt.DeviceReadBusySeconds = after.Device.ReadBusy.Seconds()
	return pt, matches, nil
}

// measureDiskResidency fills the flat-vs-cold bytes/series comparison: the
// hot build keeps the collection reachable; the all-cold build stages it
// onto a real temp file and lets it be collected, so only the index
// structures and the bounded cache stay on the heap.
func measureDiskResidency(cfg Config, res *DiskBenchResult, shards int, dataBytes int64, mo messi.Options) error {
	g := gen.Generator{Kind: gen.Synthetic, Seed: cfg.Seed}
	var buildErr error
	flat, err := residentBytes(func() func() {
		coll := g.Collection(cfg.SeriesCount)
		s, err := shard.Build(coll, core.Config{LeafCapacity: leafCapacity},
			shard.Options{Shards: shards, Options: mo})
		if err != nil {
			buildErr = err
			return func() {}
		}
		return func() { s.Close(); runtime.KeepAlive(coll) }
	})
	if buildErr != nil {
		return fmt.Errorf("diskbench: flat residency: %w", buildErr)
	}
	if err != nil {
		return fmt.Errorf("diskbench: flat residency: %w", err)
	}

	cold, err := residentBytes(func() func() {
		coll := g.Collection(cfg.SeriesCount)
		dir, err := os.MkdirTemp("", "dsidx-cold-*")
		if err != nil {
			buildErr = err
			return func() {}
		}
		var fs *storage.FileStore
		s, err := shard.Build(coll, core.Config{LeafCapacity: leafCapacity}, shard.Options{
			Shards: shards,
			ColdStorage: &shard.ColdStorage{
				NewStore: func() (storage.Store, error) {
					var err error
					fs, err = storage.OpenFileStore(filepath.Join(dir, "base.dsf"))
					return fs, err
				},
				CacheBytes: dataBytes / 8,
			},
			Options: mo,
		})
		if err != nil {
			buildErr = err
			os.RemoveAll(dir)
			return func() {}
		}
		// No KeepAlive(coll): with every shard cold, the index serves reads
		// through the device cache and the flat collection must be
		// collectable — that is the residency win being measured.
		return func() {
			s.Close()
			fs.Close()
			os.RemoveAll(dir)
		}
	})
	if buildErr != nil {
		return fmt.Errorf("diskbench: cold residency: %w", buildErr)
	}
	if err != nil {
		return fmt.Errorf("diskbench: cold residency: %w", err)
	}

	n := float64(cfg.SeriesCount)
	res.FlatBytesPerSeries = float64(flat) / n
	res.ColdBytesPerSeries = float64(cold) / n
	res.ColdOverFlat = float64(cold) / float64(flat)
	return nil
}

// OutOfCore is the table form of the out-of-core benchmark (dsbench
// -experiment outofcore).
func OutOfCore(cfg Config) (*Table, error) {
	res, err := RunDiskBench(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "outofcore",
		Title: fmt.Sprintf("Out-of-core tiered shards: query latency vs cache budget (%s)", res.Device),
	}
	lat := make([]float64, 0, len(res.Points))
	hitRates := make([]float64, 0, len(res.Points))
	busy := make([]float64, 0, len(res.Points))
	for _, pt := range res.Points {
		t.Columns = append(t.Columns, fmt.Sprintf("cache %.0f%%", 100*pt.CacheOverData))
		lat = append(lat, pt.NsPerQuery/1e6)
		hitRates = append(hitRates, pt.HitRate)
		busy = append(busy, pt.DeviceReadBusySeconds*1e3)
	}
	t.AddRow("mean query latency [ms]", lat...)
	t.AddRow("cache hit rate", hitRates...)
	t.AddRow("device read busy [ms total]", busy...)
	t.Note("cold answers %s hot answers bit-for-bit", map[bool]string{true: "MATCH", false: "DIVERGE FROM"}[res.ColdMatchesHot])
	t.Note("residency: hot %.0f B/series vs all-cold %.0f B/series (%.2fx) — base payload %d B/series lives on the device",
		res.FlatBytesPerSeries, res.ColdBytesPerSeries, res.ColdOverFlat, res.RawBytesPerSeries)
	t.Note("refinement masks device reads ParIS+-style (prefetch next leaf while computing on current); needs a pool ≥ 2 workers to overlap")
	return t, nil
}
