package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// memRecord builds a valid MemBenchResult for trajectory tests; the
// shape fields feed ConfigKey, ratio distinguishes repeat runs.
func memRecord(seriesCount, shards int, ratio float64) *MemBenchResult {
	return &MemBenchResult{
		BenchHeader: BenchHeader{
			Schema:      "dsidx-bench-mem/v1",
			GeneratedAt: "2026-01-02T03:04:05Z",
			GOMAXPROCS:  1,
			Workers:     2,
			SeriesCount: seriesCount,
			SeriesLen:   64,
		},
		Shards:          shards,
		ShardedOverFlat: ratio,
	}
}

func TestTrajectoryUpsertDedupesByConfigKey(t *testing.T) {
	path := t.TempDir() + "/BENCH_mem.json"

	// Same configuration twice: the second run replaces the first.
	if err := WriteBenchJSON(path, memRecord(1000, 4, 1.5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(path, memRecord(1000, 4, 1.05)); err != nil {
		t.Fatal(err)
	}
	traj, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 1 {
		t.Fatalf("repeat run duplicated: %d runs", len(traj.Runs))
	}
	var back MemBenchResult
	if err := json.Unmarshal(traj.Runs[0].Record, &back); err != nil {
		t.Fatal(err)
	}
	if back.ShardedOverFlat != 1.05 {
		t.Fatalf("upsert kept the stale record: ratio %v", back.ShardedOverFlat)
	}

	// A different configuration accumulates alongside.
	if err := WriteBenchJSON(path, memRecord(2000, 4, 1.04)); err != nil {
		t.Fatal(err)
	}
	traj, err = loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 {
		t.Fatalf("new configuration did not accumulate: %d runs", len(traj.Runs))
	}
	if err := traj.Validate(); err != nil {
		t.Fatal(err)
	}
	keys := []string{traj.Runs[0].ConfigKey, traj.Runs[1].ConfigKey}
	if keys[0] == keys[1] || keys[0] == "" {
		t.Fatalf("config keys %q", keys)
	}
}

func TestTrajectoryMigratesLegacyFile(t *testing.T) {
	path := t.TempDir() + "/BENCH_mem.json"
	// A pre-trajectory file: the bare record at top level.
	legacy, err := json.MarshalIndent(memRecord(500, 2, 1.2), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := WriteBenchJSON(path, memRecord(1000, 4, 1.05)); err != nil {
		t.Fatal(err)
	}
	traj, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 {
		t.Fatalf("migration produced %d runs, want legacy + new", len(traj.Runs))
	}
	if got := traj.Runs[0].ConfigKey; got != "legacy:dsidx-bench-mem/v1" {
		t.Fatalf("legacy run keyed %q", got)
	}
	var back MemBenchResult
	if err := json.Unmarshal(traj.Runs[0].Record, &back); err != nil {
		t.Fatal(err)
	}
	if back.SeriesCount != 500 || back.ShardedOverFlat != 1.2 {
		t.Fatalf("legacy record mangled: %+v", back)
	}
}

func TestWriteBenchJSONRejectsInvalidRecord(t *testing.T) {
	path := t.TempDir() + "/BENCH_mem.json"
	bad := memRecord(1000, 4, 1.0)
	bad.GeneratedAt = "yesterday-ish"
	if err := WriteBenchJSON(path, bad); err == nil {
		t.Fatal("malformed generated_at accepted")
	}
	bad = memRecord(1000, 4, 1.0)
	bad.Schema = "something-else/v1"
	if err := WriteBenchJSON(path, bad); err == nil {
		t.Fatal("foreign schema accepted")
	}
	bad = memRecord(0, 4, 1.0)
	if err := WriteBenchJSON(path, bad); err == nil {
		t.Fatal("zero series count accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("a rejected record still touched the file")
	}
}

func TestWriteBenchJSONRefusesUnrecognizedFile(t *testing.T) {
	path := t.TempDir() + "/BENCH_mem.json"
	if err := os.WriteFile(path, []byte(`{"hello":"world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteBenchJSON(path, memRecord(1000, 4, 1.0))
	if err == nil || !strings.Contains(err.Error(), "neither") {
		t.Fatalf("unrecognized file clobbered (err %v)", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != `{"hello":"world"}` {
		t.Fatalf("refused write still modified the file: %q, %v", data, err)
	}
}
