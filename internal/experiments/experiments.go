// Package experiments reproduces every figure of the paper's evaluation
// (§IV, Figures 4-12) plus the ablations DESIGN.md calls out. Each
// experiment builds its workload, runs the competing systems, and returns a
// Table whose rows/series match what the paper plots; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Scaling notes (see DESIGN.md "Substitutions"): collections are scaled
// from 100M series to the configured count (default 200K), simulated
// devices stand in for the RAID0-HDD/SSD testbed, and query workloads for
// the on-disk figures use perturbed dataset members so that the *pruning
// regime* (the fraction of the collection surviving lower-bound filtering)
// matches the paper's dense 100GB collections rather than the sparse
// scaled-down ones.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config holds the scaling knobs shared by all experiments.
type Config struct {
	// SeriesCount is the collection size (default 200_000; the paper uses
	// 100-200M).
	SeriesCount int
	// QueryCount is the number of queries averaged per measurement
	// (default 5; 3 for the slow on-disk figures).
	QueryCount int
	// Seed fixes all generators.
	Seed int64
	// MaxCores caps the core-count axis (default 24, the paper's machine).
	MaxCores int
	// InFlightAxis lists the concurrent-query levels of the multi-query
	// throughput experiment (default 1, 4, 16).
	InFlightAxis []int
	// AppendRates lists the live-append rates (series/s) of the ingestion
	// experiment (default 0, 1000, 10000; 0 is the query-only baseline).
	AppendRates []int
	// ShardAxis lists the shard counts of the sharded scatter-gather
	// experiment (default 1, 2, 4; 1 is the unsharded baseline).
	ShardAxis []int
	// DeleteRate is the fraction of the collection tombstoned (evenly
	// spaced, uncompacted) before the query benchmark runs, measuring the
	// tombstone-filtered search path. 0 (the default) benchmarks the
	// delete-free hot path; values are clamped to [0, 0.9].
	DeleteRate float64
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SeriesCount <= 0 {
		c.SeriesCount = 200_000
	}
	if c.QueryCount <= 0 {
		c.QueryCount = 5
	}
	if c.Seed == 0 {
		c.Seed = 2020
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 24
	}
	if len(c.InFlightAxis) == 0 {
		c.InFlightAxis = []int{1, 4, 16}
	}
	if len(c.AppendRates) == 0 {
		c.AppendRates = []int{0, 1000, 10000}
	}
	if len(c.ShardAxis) == 0 {
		c.ShardAxis = []int{1, 2, 4}
	}
	if c.DeleteRate < 0 {
		c.DeleteRate = 0
	}
	if c.DeleteRate > 0.9 {
		c.DeleteRate = 0.9
	}
	return c
}

// coreAxis clips the paper's core counts to the configured maximum.
func (c Config) coreAxis(counts ...int) []int {
	out := make([]int, 0, len(counts))
	for _, n := range counts {
		if n <= c.MaxCores {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = append(out, c.MaxCores)
	}
	return out
}

// Row is one labeled series of measurements.
type Row struct {
	Label  string
	Values []float64
}

// Table is an experiment result shaped like the paper's figure.
type Table struct {
	ID      string
	Title   string
	Unit    string
	Columns []string
	Rows    []Row
	Notes   []string
}

// AddRow appends a labeled row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Note appends a free-text annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&sb, " [%s]", t.Unit)
	}
	sb.WriteByte('\n')

	labelW := 5
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = max(len(c), 10)
	}
	fmt.Fprintf(&sb, "  %-*s", labelW, "")
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "  %*s", colW[i], c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "  %-*s", labelW, r.Label)
		for i, v := range r.Values {
			w := 10
			if i < len(colW) {
				w = colW[i]
			}
			fmt.Fprintf(&sb, "  %*s", w, formatValue(v))
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// seconds converts a duration to float seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// millis converts a duration to float milliseconds.
func millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// All lists every reproducible figure and ablation, in paper order.
var All = []Experiment{
	{"fig4", "ParIS/ParIS+ index creation vs cores, Read/Write/CPU breakdown (HDD)", Fig4},
	{"fig5", "MESSI index creation vs cores, phase breakdown (in-memory)", Fig5},
	{"fig6", "Index creation across datasets: ADS+ vs ParIS vs ParIS+ (HDD)", Fig6},
	{"fig7", "In-memory index creation across datasets: ParIS vs MESSI", Fig7},
	{"fig8", "ParIS+ exact query answering vs cores, HDD vs SSD", Fig8},
	{"fig9", "In-memory exact query answering vs cores: UCR-p vs ParIS vs MESSI", Fig9},
	{"fig10", "Exact query answering across datasets on HDD: UCR vs ADS+ vs ParIS+", Fig10},
	{"fig11", "Exact query answering across datasets on SSD: UCR vs ADS+ vs ParIS+", Fig11},
	{"fig12", "In-memory exact query answering across datasets: UCR-p vs ParIS vs MESSI", Fig12},
	{"ablation-queues", "MESSI query time vs priority-queue count", AblationQueueCount},
	{"ablation-buffers", "MESSI buffer partitioning vs single locked buffers", AblationBufferPartitioning},
	{"ablation-kernels", "Vectorized vs scalar distance kernels", AblationVectorKernels},
	{"ablation-leafcap", "MESSI build/query tradeoff vs leaf capacity", AblationLeafCapacity},
	{"ablation-hardness", "Pruning power vs query difficulty (eps sweep)", AblationQueryHardness},
	{"concurrent", "MESSI multi-query throughput vs in-flight queries (shared pool)", ConcurrentQPS},
	{"ingest", "MESSI query throughput under live appends (delta buffer + background merge)", IngestThroughput},
	{"sharded", "Sharded scatter-gather vs shard count (shared pool, shared BSF)", ShardedSweep},
	{"mem", "Resident bytes per series: flat vs sharded build (zero-copy views)", MemResidency},
	{"outofcore", "Out-of-core tiered shards: cold-tier query latency, hit rate and residency vs cache budget", OutOfCore},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(All))
	for i, e := range All {
		out[i] = e.ID
	}
	return out
}

// sortedCopy returns a sorted copy of xs (used for medians in ablations).
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
