package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
)

// BenchHeader is the shared envelope of every machine-readable benchmark
// record dsbench writes (BENCH_*.json): the schema tag plus the workload
// and machine shape every trajectory point needs to be comparable. Records
// embed it, so each schema's JSON keys stay flat and stable — additions
// are fine, renames are not.
type BenchHeader struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GOMAXPROCS  int    `json:"gomaxprocs"` // cores actually available
	Workers     int    `json:"workers"`    // index worker-pool size

	SeriesCount int `json:"series_count"`
	SeriesLen   int `json:"series_len"`
	QueryCount  int `json:"query_count"`
}

// header fills the shared envelope for one workload.
func header(schema string, cfg Config, w workload) BenchHeader {
	return BenchHeader{
		Schema:      schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     cfg.MaxCores,
		SeriesCount: w.coll.Len(),
		SeriesLen:   w.coll.SeriesLen(),
		QueryCount:  w.queries.Len(),
	}
}

// machineBoundNote is the caveat stamped on every bench record.
const machineBoundNote = "absolute numbers are machine-bound; compare points generated " +
	"on the same hardware (see EXPERIMENTS.md)"

// QueryBenchResult is the machine-readable query-performance record
// dsbench -benchjson writes (BENCH_query.json): one trajectory point of
// the hot-path numbers tracked across PRs.
type QueryBenchResult struct {
	BenchHeader
	ProbeLeaves int `json:"probe_leaves"`

	// NsPerQuery is single-stream mean exact-query latency; QPSByInflight
	// is throughput with 1/4/16 (or the configured axis) queries in
	// flight on the shared pool.
	NsPerQuery    float64            `json:"ns_per_query"`
	QPSByInflight map[string]float64 `json:"qps_by_inflight"`

	// Per-query pruning means, from QueryStats: raw distances paid and
	// lower bounds computed per exact query.
	RawDistancesPerQuery   float64 `json:"raw_distances_per_query"`
	EntriesCheckedPerQuery float64 `json:"entries_checked_per_query"`

	// DeleteRate and Tombstoned describe the -deleterate mode: the
	// requested tombstone fraction and the positions actually deleted
	// (evenly spaced, left uncompacted so the measured path is the
	// tombstone-filtered search). Zero for the delete-free baseline.
	DeleteRate float64 `json:"delete_rate,omitempty"`
	Tombstoned int     `json:"tombstoned,omitempty"`

	Note string `json:"note,omitempty"`
}

// searchIndex is the measurement surface shared by a plain index and a
// sharded one: admission-controlled exact search. Both runConcurrent and
// the bench runners measure through it, so the sharded benchmark reuses
// the query benchmark's machinery instead of duplicating it.
type searchIndex interface {
	Admit() (release func())
	Search(q series.Series, workers int) (core.Result, *messi.QueryStats, error)
}

// RunQueryBench builds a MESSI index over the configured workload and
// measures the exact-query hot path: latency, the in-flight throughput
// sweep, and the mean pruning stats. It is the programmatic form of the
// dsbench -benchjson flag and the CI bench-smoke step.
func RunQueryBench(cfg Config) (*QueryBenchResult, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
		messi.Options{Workers: cfg.MaxCores, MaxInFlight: maxInt(cfg.InFlightAxis)})
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	defer ix.Close()

	// -deleterate mode: tombstone an evenly spaced fraction of the
	// collection, left uncompacted, so the sweep below measures the
	// tombstone-filtered search path under a realistic delete spread.
	tombstoned := 0
	if cfg.DeleteRate > 0 {
		k := int(cfg.DeleteRate * float64(w.coll.Len()))
		for i := 0; i < k; i++ {
			newly, err := ix.Delete(i * w.coll.Len() / k)
			if err != nil {
				return nil, fmt.Errorf("benchjson: deleterate: %w", err)
			}
			if newly {
				tombstoned++
			}
		}
	}

	qs := make([]series.Series, w.queries.Len())
	for i := range qs {
		qs[i] = w.queries.At(i)
	}
	// Warm pools and stats in one pass, collecting the pruning profile.
	_, stats, err := ix.BatchSearchStats(qs)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var raw, entries int
	for _, st := range stats {
		raw += st.RawDistances
		entries += st.EntriesChecked
	}

	res := &QueryBenchResult{
		BenchHeader:            header("dsidx-bench-query/v1", cfg, w),
		ProbeLeaves:            ix.ProbeLeaves(),
		QPSByInflight:          make(map[string]float64, len(cfg.InFlightAxis)),
		RawDistancesPerQuery:   float64(raw) / float64(len(qs)),
		EntriesCheckedPerQuery: float64(entries) / float64(len(qs)),
		DeleteRate:             cfg.DeleteRate,
		Tombstoned:             tombstoned,
		Note:                   machineBoundNote,
	}

	ns, qps, err := sweepInflight(ix, w.queries, cfg.InFlightAxis, len(qs))
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	res.NsPerQuery, res.QPSByInflight = ns, qps
	return res, nil
}

// sweepInflight measures throughput at each in-flight level and the
// single-stream latency (measured separately if the axis omits 1).
func sweepInflight(ix searchIndex, queries *series.Collection, axis []int, queryCount int) (nsPerQuery float64, qps map[string]float64, err error) {
	qps = make(map[string]float64, len(axis))
	for _, p := range axis {
		total := max(4*p, 2*queryCount)
		elapsed, err := runConcurrent(ix, queries, p, total)
		if err != nil {
			return 0, nil, fmt.Errorf("inflight %d: %w", p, err)
		}
		qps[fmt.Sprint(p)] = float64(total) / elapsed.Seconds()
		if p == 1 {
			nsPerQuery = float64(elapsed.Nanoseconds()) / float64(total)
		}
	}
	if nsPerQuery == 0 {
		total := 2 * queryCount
		elapsed, err := runConcurrent(ix, queries, 1, total)
		if err != nil {
			return 0, nil, fmt.Errorf("inflight 1: %w", err)
		}
		nsPerQuery = float64(elapsed.Nanoseconds()) / float64(total)
	}
	return nsPerQuery, qps, nil
}

// WriteJSON writes the record to path (kept as a method for the dsbench
// entry point; all schemas funnel through WriteBenchJSON).
func (r *QueryBenchResult) WriteJSON(path string) error { return WriteBenchJSON(path, r) }
