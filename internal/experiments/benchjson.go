package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
)

// QueryBenchResult is the machine-readable query-performance record
// dsbench -benchjson writes (BENCH_query.json): one trajectory point of
// the hot-path numbers tracked across PRs. Fields are stable — additions
// are fine, renames are not — so historical files stay comparable.
type QueryBenchResult struct {
	Schema      string `json:"schema"` // "dsidx-bench-query/v1"
	GeneratedAt string `json:"generated_at"`
	GOMAXPROCS  int    `json:"gomaxprocs"` // cores actually available
	Workers     int    `json:"workers"`    // index worker-pool size

	SeriesCount int `json:"series_count"`
	SeriesLen   int `json:"series_len"`
	QueryCount  int `json:"query_count"`
	ProbeLeaves int `json:"probe_leaves"`

	// NsPerQuery is single-stream mean exact-query latency; QPSByInflight
	// is throughput with 1/4/16 (or the configured axis) queries in
	// flight on the shared pool.
	NsPerQuery    float64            `json:"ns_per_query"`
	QPSByInflight map[string]float64 `json:"qps_by_inflight"`

	// Per-query pruning means, from QueryStats: raw distances paid and
	// lower bounds computed per exact query.
	RawDistancesPerQuery   float64 `json:"raw_distances_per_query"`
	EntriesCheckedPerQuery float64 `json:"entries_checked_per_query"`

	Note string `json:"note,omitempty"`
}

// RunQueryBench builds a MESSI index over the configured workload and
// measures the exact-query hot path: latency, the in-flight throughput
// sweep, and the mean pruning stats. It is the programmatic form of the
// dsbench -benchjson flag and the CI bench-smoke step.
func RunQueryBench(cfg Config) (*QueryBenchResult, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
		messi.Options{Workers: cfg.MaxCores, MaxInFlight: maxInt(cfg.InFlightAxis)})
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	defer ix.Close()

	qs := make([]series.Series, w.queries.Len())
	for i := range qs {
		qs[i] = w.queries.At(i)
	}
	// Warm pools and stats in one pass, collecting the pruning profile.
	_, stats, err := ix.BatchSearchStats(qs)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var raw, entries int
	for _, st := range stats {
		raw += st.RawDistances
		entries += st.EntriesChecked
	}

	res := &QueryBenchResult{
		Schema:                 "dsidx-bench-query/v1",
		GeneratedAt:            time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		Workers:                cfg.MaxCores,
		SeriesCount:            w.coll.Len(),
		SeriesLen:              w.coll.SeriesLen(),
		QueryCount:             len(qs),
		ProbeLeaves:            ix.ProbeLeaves(),
		QPSByInflight:          make(map[string]float64, len(cfg.InFlightAxis)),
		RawDistancesPerQuery:   float64(raw) / float64(len(qs)),
		EntriesCheckedPerQuery: float64(entries) / float64(len(qs)),
		Note: "absolute numbers are machine-bound; compare points generated " +
			"on the same hardware (see EXPERIMENTS.md)",
	}

	for _, p := range cfg.InFlightAxis {
		total := max(4*p, 2*len(qs))
		elapsed, err := runConcurrent(ix, w.queries, p, total)
		if err != nil {
			return nil, fmt.Errorf("benchjson@%d: %w", p, err)
		}
		res.QPSByInflight[fmt.Sprint(p)] = float64(total) / elapsed.Seconds()
		if p == 1 {
			res.NsPerQuery = float64(elapsed.Nanoseconds()) / float64(total)
		}
	}
	if res.NsPerQuery == 0 {
		// The axis may omit 1-in-flight; measure the single stream anyway.
		elapsed, err := runConcurrent(ix, w.queries, 1, 2*len(qs))
		if err != nil {
			return nil, fmt.Errorf("benchjson@1: %w", err)
		}
		res.NsPerQuery = float64(elapsed.Nanoseconds()) / float64(2*len(qs))
	}
	return res, nil
}

// WriteJSON writes the record, pretty-printed with a trailing newline, to
// path.
func (r *QueryBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
