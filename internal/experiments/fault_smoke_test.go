package experiments

import (
	"strings"
	"testing"
)

// TestRunFaultSmoke runs the CI fault-smoke lifecycle at a reduced size:
// the walk itself errors on any contract violation, and the returned
// exposition must carry every fault family scripts/fault_smoke.sh greps.
func TestRunFaultSmoke(t *testing.T) {
	text, err := RunFaultSmoke(Config{SeriesCount: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"dsidx_shard_state",
		"dsidx_shard_failures_total",
		"dsidx_shard_quarantines_total",
		"dsidx_shard_restages_total",
		"dsidx_cold_retries_total",
		"dsidx_cold_faults_transient_total",
		"dsidx_cold_faults_permanent_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition lacks family %s", family)
		}
	}
}
