package experiments

import (
	"fmt"
	"sync"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/xsync"
)

// ConcurrentQPS measures MESSI multi-query throughput on the shared worker
// pool: a fixed stream of queries is answered with 1, 4 and 16 in flight
// (the paper has no such figure — its evaluation is one-query-at-a-time —
// so this experiment is the baseline for the serving-engine extension).
// Expected shape: single-query latency is roughly flat across the sweep
// while QPS grows with in-flight queries until the pool saturates, because
// one query cannot keep every core busy through its serial sections and
// queue-drain tail.
func ConcurrentQPS(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
		messi.Options{Workers: cfg.MaxCores, MaxInFlight: maxInt(cfg.InFlightAxis)})
	if err != nil {
		return nil, fmt.Errorf("concurrent: %w", err)
	}
	defer ix.Close()

	t := &Table{
		ID:    "concurrent",
		Title: "MESSI multi-query throughput vs in-flight queries (shared pool)",
	}
	qps := make([]float64, 0, len(cfg.InFlightAxis))
	lat := make([]float64, 0, len(cfg.InFlightAxis))
	for _, p := range cfg.InFlightAxis {
		t.Columns = append(t.Columns, fmt.Sprintf("%d in-flight", p))
		// Enough queries per setting that the slowest in-flight level still
		// cycles the pool several times.
		total := max(4*p, 4*cfg.QueryCount)
		elapsed, err := runConcurrent(ix, w.queries, p, total)
		if err != nil {
			return nil, fmt.Errorf("concurrent@%d: %w", p, err)
		}
		qps = append(qps, float64(total)/elapsed.Seconds())
		lat = append(lat, millis(elapsed)/float64(total)*float64(p))
	}
	t.AddRow("throughput [queries/s]", qps...)
	t.AddRow("mean query latency [ms]", lat...)
	st := ix.EngineStats()
	t.Note("shared pool: %d workers, %d tasks executed, peak %d queries in flight",
		st.Workers, st.Tasks, st.PeakInFlight)
	t.Note("expected: latency ~flat across the sweep, QPS grows until the pool saturates")
	return t, nil
}

// runConcurrent answers total queries with exactly inflight query
// goroutines sharing the index's pool, returning the wall time. It
// measures through the searchIndex surface, so plain and sharded indexes
// run the identical harness.
func runConcurrent(ix searchIndex, queries *series.Collection, inflight, total int) (time.Duration, error) {
	var cursor xsync.Counter
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < inflight; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := int(cursor.Next())
				if i >= total {
					return
				}
				release := ix.Admit()
				_, _, err := ix.Search(queries.At(i%queries.Len()), 0)
				release()
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// maxInt returns the largest element (0 for an empty slice).
func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
