package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
)

// ingestReaders is the number of query goroutines of the mixed workload.
const ingestReaders = 4

// ingestWindow is the measured interval per append-rate setting — long
// enough that the slowest setting completes several queries and (at the
// higher rates) at least one background merge cycle.
const ingestWindow = 400 * time.Millisecond

// IngestThroughput measures serving under live writes: query throughput
// while an appender streams new series into the index at a fixed rate (the
// paper has no such figure — its indexes are built once and frozen — so
// this experiment is the baseline for the live-ingestion extension). Each
// rate setting runs on a fresh index so tree state is comparable across
// columns. Expected shape: query QPS degrades gracefully as the append
// rate grows — appends cost a summarization plus delta-buffer publication,
// and queries additionally exact-scan the unmerged delta, which background
// merges keep bounded near the merge threshold.
func IngestThroughput(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)

	t := &Table{
		ID:    "ingest",
		Title: "MESSI query throughput under live appends (delta buffer + background merge)",
	}
	qps := make([]float64, 0, len(cfg.AppendRates))
	aps := make([]float64, 0, len(cfg.AppendRates))
	mergesRow := make([]float64, 0, len(cfg.AppendRates))
	pendingRow := make([]float64, 0, len(cfg.AppendRates))
	threshold := 0
	for _, rate := range cfg.AppendRates {
		t.Columns = append(t.Columns, fmt.Sprintf("%d appends/s", rate))
		// Fresh series for the appender, disjoint from the built collection.
		pool := gen.Generator{Kind: gen.Synthetic, Length: w.coll.SeriesLen(), Seed: cfg.Seed + 1}.
			Collection(max(1, int(float64(rate)*ingestWindow.Seconds())+1))
		// A threshold well below rate×window makes sure the higher-rate
		// columns measure steady-state serving WITH background merges, not
		// just delta-buffer accumulation.
		ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
			messi.Options{Workers: cfg.MaxCores, MergeThreshold: 512})
		if err != nil {
			return nil, fmt.Errorf("ingest: %w", err)
		}
		queries, appends, err := runIngestMix(ix, w.queries, pool, rate, ingestWindow)
		if err != nil {
			ix.Close()
			return nil, fmt.Errorf("ingest@%d: %w", rate, err)
		}
		st := ix.IngestStats()
		threshold = st.MergeThreshold
		ix.Close()
		qps = append(qps, float64(queries)/ingestWindow.Seconds())
		aps = append(aps, float64(appends)/ingestWindow.Seconds())
		mergesRow = append(mergesRow, float64(st.Merges))
		pendingRow = append(pendingRow, float64(st.Pending))
	}
	t.AddRow("query throughput [queries/s]", qps...)
	t.AddRow("append throughput [series/s]", aps...)
	t.AddRow("merge cycles", mergesRow...)
	t.AddRow("pending at end [series]", pendingRow...)
	t.Note("%d query goroutines, %v window per setting, merge threshold %d series",
		ingestReaders, ingestWindow, threshold)
	t.Note("expected: query QPS degrades gracefully with the append rate; the delta stays bounded near the threshold")
	return t, nil
}

// runIngestMix runs the mixed read/write load for the window: ingestReaders
// goroutines issue queries back to back while one appender paces appends at
// the target rate. It returns the completed query and append counts.
func runIngestMix(ix *messi.Index, queries, pool *series.Collection, rate int, window time.Duration) (int64, int64, error) {
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	var queryCount, appendCount atomic.Int64
	errs := make([]error, ingestReaders+1)
	for g := 0; g < ingestReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				release := ix.Admit()
				_, _, err := ix.Search(queries.At(i%queries.Len()), 0)
				release()
				if err != nil {
					errs[g] = err
					return
				}
				queryCount.Add(1)
			}
		}(g)
	}
	if rate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Pace in small batches so high rates do not sleep per series.
			const tick = 5 * time.Millisecond
			perTick := max(1, int(float64(rate)*tick.Seconds()))
			batch := make([]series.Series, 0, perTick)
			next := 0
			for time.Now().Before(deadline) {
				batch = batch[:0]
				for i := 0; i < perTick && next < pool.Len(); i++ {
					batch = append(batch, pool.At(next))
					next++
				}
				if len(batch) == 0 {
					return // pool exhausted: the target rate is reached
				}
				if _, err := ix.AppendBatch(batch); err != nil {
					errs[ingestReaders] = err
					return
				}
				appendCount.Add(int64(len(batch)))
				time.Sleep(tick)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return queryCount.Load(), appendCount.Load(), nil
}
