package experiments

import (
	"fmt"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/shard"
)

// shardedPoint is one shard count's measurement: build wall time, exact
// query latency/throughput (through the same runConcurrent harness as the
// query benchmark), and the pruning profile of the cross-shard shared BSF.
type shardedPoint struct {
	Shards               int                `json:"shards"`
	BuildSeconds         float64            `json:"build_seconds"`
	NsPerQuery           float64            `json:"ns_per_query"`
	QPSByInflight        map[string]float64 `json:"qps_by_inflight"`
	RawDistancesPerQuery float64            `json:"raw_distances_per_query"`
}

// measureSharded builds a sharded index at one shard count and measures it
// — the shared core of the sharded experiment table and BENCH_sharded.json
// (satellite of the factored bench-JSON writer: one measurement, two
// presentations).
func measureSharded(cfg Config, w workload, shards int) (shardedPoint, error) {
	pt := shardedPoint{Shards: shards}
	t0 := time.Now()
	s, err := shard.Build(w.coll, core.Config{LeafCapacity: leafCapacity}, shard.Options{
		Shards:  shards,
		Options: messi.Options{Workers: cfg.MaxCores, MaxInFlight: maxInt(cfg.InFlightAxis)},
	})
	if err != nil {
		return pt, fmt.Errorf("sharded@%d: %w", shards, err)
	}
	defer s.Close()
	pt.BuildSeconds = time.Since(t0).Seconds()

	qs := make([]series.Series, w.queries.Len())
	for i := range qs {
		qs[i] = w.queries.At(i)
	}
	_, stats, err := s.BatchSearchStats(qs)
	if err != nil {
		return pt, fmt.Errorf("sharded@%d: %w", shards, err)
	}
	raw := 0
	for _, st := range stats {
		raw += st.RawDistances
	}
	pt.RawDistancesPerQuery = float64(raw) / float64(len(qs))

	pt.NsPerQuery, pt.QPSByInflight, err = sweepInflight(s, w.queries, cfg.InFlightAxis, len(qs))
	if err != nil {
		return pt, fmt.Errorf("sharded@%d: %w", shards, err)
	}
	return pt, nil
}

// ShardedSweep is the sharded scatter-gather experiment: the same workload
// indexed at each configured shard count, all shards of an index sharing
// one worker pool and every query threading one BSF through all of them.
// Expected shape: answers identical at every shard count (the conformance
// suite enforces it); build time roughly flat (the same total work split
// into independent trees); query latency close to flat because the shared
// BSF keeps total pruned work near the single-tree case — the per-query
// raw-distance row makes that visible; QPS at higher in-flight levels
// tracks the concurrent experiment since the pool is shared either way.
func ShardedSweep(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:    "sharded",
		Title: "Sharded scatter-gather vs shard count (shared pool, shared BSF)",
	}
	builds := make([]float64, 0, len(cfg.ShardAxis))
	lat := make([]float64, 0, len(cfg.ShardAxis))
	qps := make([]float64, 0, len(cfg.ShardAxis))
	raws := make([]float64, 0, len(cfg.ShardAxis))
	maxIF := maxInt(cfg.InFlightAxis)
	for _, n := range cfg.ShardAxis {
		t.Columns = append(t.Columns, fmt.Sprintf("%d shards", n))
		pt, err := measureSharded(cfg, w, n)
		if err != nil {
			return nil, err
		}
		builds = append(builds, pt.BuildSeconds)
		lat = append(lat, pt.NsPerQuery/1e6)
		qps = append(qps, pt.QPSByInflight[fmt.Sprint(maxIF)])
		raws = append(raws, pt.RawDistancesPerQuery)
	}
	t.AddRow("build time [s]", builds...)
	t.AddRow("mean query latency [ms]", lat...)
	t.AddRow(fmt.Sprintf("QPS @ %d in-flight", maxIF), qps...)
	t.AddRow("raw distances/query", raws...)
	t.Note("all shards share ONE worker pool and every query shares ONE best-so-far across shards")
	t.Note("expected: answers identical at every shard count; latency ~flat (shared BSF keeps pruned work near 1-shard)")
	return t, nil
}

// ShardedBenchResult is the machine-readable sharded trajectory record
// dsbench -shardedjson writes (BENCH_sharded.json): one point per shard
// count, sharing the bench envelope and writer with BENCH_query.json.
type ShardedBenchResult struct {
	BenchHeader
	Policy string         `json:"policy"`
	Points []shardedPoint `json:"points"`
	Note   string         `json:"note,omitempty"`
}

// RunShardedBench measures the configured shard-count sweep — the
// programmatic form of the dsbench -shardedjson flag and the CI sharded
// bench-smoke step.
func RunShardedBench(cfg Config) (*ShardedBenchResult, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	res := &ShardedBenchResult{
		BenchHeader: header("dsidx-bench-sharded/v1", cfg, w),
		Policy:      shard.RoundRobin{}.Name(),
		Note:        machineBoundNote,
	}
	for _, n := range cfg.ShardAxis {
		pt, err := measureSharded(cfg, w, n)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// WriteJSON writes the record to path via the shared bench writer.
func (r *ShardedBenchResult) WriteJSON(path string) error { return WriteBenchJSON(path, r) }
