package experiments

// Fault smoke: a fixed-seed end-to-end walk of the fault-tolerance stack
// driven by scripts/fault_smoke.sh and the CI fault smoke step. It builds
// a mixed hot/cold sharded index whose cold device is a FaultStore, then
// walks the failure lifecycle — transient faults retried invisibly, a dead
// device failing queries with the typed error, quarantine, re-stage,
// bit-identical recovery — and returns the index's Prometheus exposition
// so the script can grep the fault metric families dashboards key on.

import (
	"errors"
	"fmt"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/shard"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
)

// RunFaultSmoke runs the lifecycle and returns the metrics exposition
// text. Any contract violation — a query that should have failed
// succeeding, an untyped error, a quarantine or re-stage that does not
// happen — is an error.
func RunFaultSmoke(cfg Config) (string, error) {
	n := cfg.SeriesCount
	if n <= 0 {
		n = 3000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 2020
	}
	const (
		shards    = 3
		coldShard = 1
		seriesLen = 128
	)

	g := gen.Generator{Kind: gen.Synthetic, Length: seriesLen, Seed: seed}
	coll := g.Collection(n)
	fs := storage.NewFaultStore(storage.NewMemStore(), storage.FaultPlan{})
	first := true
	s, err := shard.Build(coll, core.Config{LeafCapacity: leafCapacity}, shard.Options{
		Shards: shards,
		ColdStorage: &shard.ColdStorage{
			// The first store is the fault-injected device; re-stages get
			// clean ones, so recovery works while it stays dead.
			NewStore: func() (storage.Store, error) {
				if first {
					first = false
					return fs, nil
				}
				return storage.NewMemStore(), nil
			},
			CacheBytes:  8 << 10,
			BlockSeries: 8,
			Cold:        func(si int) bool { return si == coldShard },
			Retry:       storage.RetryPolicy{MaxRetries: 8, Sleep: func(time.Duration) {}},
			Source:      coll,
		},
		QuarantineAfter: 2,
	})
	if err != nil {
		return "", fmt.Errorf("faultsmoke: build: %w", err)
	}
	defer s.Close()

	// Queries that are members of the cold shard: their nearest neighbor
	// (distance zero) lives there, so every search must read its raw
	// values off the device — summary pruning can't mask a dead store.
	// Round-robin placement puts global position g on shard g mod shards.
	coldQ := series.NewCollection(0, seriesLen)
	for i := 0; i < 6; i++ {
		coldQ.Append(coll.At(coldShard + shards*(1+i*n/(shards*8))))
	}
	// A separate member set for the dead-device phase: members the earlier
	// phases never queried, so their blocks can't be sitting in the cache
	// when the device dies.
	deadQ := series.NewCollection(0, seriesLen)
	for i := 0; i < 3; i++ {
		deadQ.Append(coll.At(coldShard + shards*(2+i*n/(shards*8)+n/(shards*16))))
	}
	check := func(phase string) error {
		for i := 0; i < coldQ.Len(); i++ {
			q := coldQ.At(i)
			want := ucr.Scan(coll, q)
			got, _, err := s.Search(q, 0)
			if err != nil {
				return fmt.Errorf("faultsmoke: %s query %d: %w", phase, i, err)
			}
			if got.Pos != want.Pos || got.Dist != want.Dist {
				return fmt.Errorf("faultsmoke: %s query %d: (#%d, %v) != serial (#%d, %v)",
					phase, i, got.Pos, got.Dist, want.Pos, want.Dist)
			}
		}
		return nil
	}

	// Phase 1 — healthy: bit-identical to the serial oracle.
	if err := check("healthy"); err != nil {
		return "", err
	}

	// Phase 2 — transient faults: retries absorb them, answers unchanged.
	fs.SetPlan(storage.FaultPlan{Seed: seed, TransientProb: 0.25, TransientBurst: 2})
	if err := check("transient"); err != nil {
		return "", err
	}
	fs.Heal()

	// Phase 3 — dead device: typed failures, then quarantine.
	fs.SetPlan(storage.FaultPlan{PermanentRanges: []storage.Range{{Start: 0, End: fs.Size()}}})
	var su *shard.ErrShardsUnavailable
	for i := 0; i < 3; i++ {
		_, _, err := s.Search(deadQ.At(i), 0)
		if err == nil {
			return "", fmt.Errorf("faultsmoke: query %d succeeded on a dead device", i)
		}
		if !errors.As(err, &su) {
			return "", fmt.Errorf("faultsmoke: query %d failed untyped: %w", i, err)
		}
	}
	if st := s.ShardState(coldShard); st != shard.Quarantined {
		return "", fmt.Errorf("faultsmoke: cold shard state %v after permanent faults, want quarantined", st)
	}

	// Phase 4 — re-stage onto a fresh store and recover exactly.
	if err := s.Restage(coldShard); err != nil {
		return "", fmt.Errorf("faultsmoke: restage: %w", err)
	}
	if err := check("recovered"); err != nil {
		return "", err
	}
	h := s.Health()
	hs := h.Shards[coldShard]
	if hs.Quarantines < 1 || hs.Restages < 1 {
		return "", fmt.Errorf("faultsmoke: health %+v lacks the quarantine/re-stage record", hs)
	}

	return s.Registry().Text(), nil
}
