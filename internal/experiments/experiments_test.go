package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"dsidx/internal/vector"
)

// tiny returns a configuration small enough to smoke-run every experiment
// in CI time while still exercising every code path.
func tiny() Config {
	return Config{SeriesCount: 2000, QueryCount: 1, Seed: 4, MaxCores: 4}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.SeriesCount != 200_000 || c.QueryCount != 5 || c.Seed == 0 || c.MaxCores != 24 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestCoreAxisClipping(t *testing.T) {
	c := Config{MaxCores: 6}.Normalize()
	got := c.coreAxis(1, 4, 6, 12, 24)
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("coreAxis = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coreAxis = %v, want %v", got, want)
		}
	}
	// Never empty.
	if got := c.coreAxis(100); len(got) != 1 || got[0] != 6 {
		t.Fatalf("coreAxis(100) = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Unit: "s", Columns: []string{"a", "b"}}
	tbl.AddRow("row1", 1.5, 0.25)
	tbl.AddRow("longer-label", 123, 0)
	tbl.Note("hello %d", 7)
	var sb strings.Builder
	if _, err := tbl.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"x — demo [s]", "row1", "longer-label", "1.50", "0.2500", "123", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	if _, ok := ByID("fig9"); !ok {
		t.Error("fig9 not registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID found")
	}
	ids := IDs()
	if len(ids) != len(All) || ids[0] != "fig4" {
		t.Errorf("IDs = %v", ids)
	}
}

// TestAllExperimentsSmoke runs every registered experiment at tiny scale
// and validates that each produces a well-formed, plausible table.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(tiny())
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
				t.Fatalf("empty table: %+v", tbl)
			}
			for _, r := range tbl.Rows {
				if len(r.Values) != len(tbl.Columns) {
					t.Errorf("row %q has %d values for %d columns", r.Label, len(r.Values), len(tbl.Columns))
				}
				for i, v := range r.Values {
					if v < 0 {
						t.Errorf("row %q value %d negative: %v", r.Label, i, v)
					}
				}
			}
			var sb strings.Builder
			if _, err := tbl.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("rendered table missing ID")
			}
		})
	}
}

// readOnlyRun loads path's trajectory envelope and returns its single
// run's record, failing on any envelope malformation.
func readOnlyRun(t *testing.T, path string) []byte {
	t.Helper()
	traj, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traj.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 1 {
		t.Fatalf("want a one-run trajectory, got %d runs", len(traj.Runs))
	}
	return traj.Runs[0].Record
}

// TestRunQueryBench validates the machine-readable trajectory record the
// dsbench -benchjson flag and the CI bench-smoke step produce.
func TestRunQueryBench(t *testing.T) {
	res, err := RunQueryBench(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != "dsidx-bench-query/v1" {
		t.Errorf("schema %q", res.Schema)
	}
	if res.NsPerQuery <= 0 {
		t.Errorf("ns/query %v", res.NsPerQuery)
	}
	if res.RawDistancesPerQuery <= 0 || res.EntriesCheckedPerQuery <= 0 {
		t.Errorf("pruning stats empty: %+v", res)
	}
	if res.ProbeLeaves < 1 {
		t.Errorf("probe leaves %d", res.ProbeLeaves)
	}
	if len(res.QPSByInflight) == 0 {
		t.Error("no QPS sweep")
	}
	for p, qps := range res.QPSByInflight {
		if qps <= 0 {
			t.Errorf("inflight %s: qps %v", p, qps)
		}
	}
	path := t.TempDir() + "/BENCH_query.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data := readOnlyRun(t, path)
	var back QueryBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.NsPerQuery != res.NsPerQuery || back.SeriesCount != res.SeriesCount {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, res)
	}
	// The shared header keys must stay flat inside the record (embedding,
	// not nesting) so historical trajectory points remain comparable.
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "generated_at", "gomaxprocs", "workers",
		"series_count", "series_len", "query_count", "ns_per_query"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("BENCH_query.json missing flat key %q", key)
		}
	}
}

// TestRunShardedBench validates the shard-sweep trajectory record the
// dsbench -shardedjson flag and the CI sharded bench-smoke step produce —
// and that it shares the query benchmark's envelope and writer.
func TestRunShardedBench(t *testing.T) {
	cfg := tiny()
	cfg.ShardAxis = []int{1, 2}
	res, err := RunShardedBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != "dsidx-bench-sharded/v1" {
		t.Errorf("schema %q", res.Schema)
	}
	if res.Policy == "" {
		t.Error("no policy recorded")
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Shards <= 0 || pt.NsPerQuery <= 0 || pt.BuildSeconds <= 0 || pt.RawDistancesPerQuery <= 0 {
			t.Errorf("implausible point: %+v", pt)
		}
		if len(pt.QPSByInflight) == 0 {
			t.Errorf("point %d has no QPS sweep", pt.Shards)
		}
	}
	path := t.TempDir() + "/BENCH_sharded.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data := readOnlyRun(t, path)
	var back ShardedBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Points) != 2 || back.Points[1].NsPerQuery != res.Points[1].NsPerQuery {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, res)
	}
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "generated_at", "gomaxprocs", "workers",
		"series_count", "series_len", "query_count", "policy", "points"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("BENCH_sharded.json missing flat key %q", key)
		}
	}
}

// TestRunMemBench validates the memory-residency record behind dsbench
// -memjson and the CI memory smoke step: plausible per-series figures, a
// near-1x sharded/flat ratio (the zero-copy view guarantee, with slack for
// CI heap jitter at the test's small collection size), and the shared flat
// JSON envelope.
func TestRunMemBench(t *testing.T) {
	cfg := tiny()
	cfg.SeriesCount = 8000
	cfg.ShardAxis = []int{1, 4}
	res, err := RunMemBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != "dsidx-bench-mem/v1" {
		t.Errorf("schema %q", res.Schema)
	}
	if res.Shards != 4 {
		t.Errorf("shards %d, want the axis maximum 4", res.Shards)
	}
	if res.RawBytesPerSeries != 4*res.SeriesLen {
		t.Errorf("raw floor %d for series length %d", res.RawBytesPerSeries, res.SeriesLen)
	}
	// Both builds hold at least the raw payload (collection + leaf blocks
	// both count), and the flat figure must exceed the floor.
	if res.FlatBytesPerSeries < float64(res.RawBytesPerSeries) {
		t.Errorf("flat %v B/series below the %d raw floor", res.FlatBytesPerSeries, res.RawBytesPerSeries)
	}
	if res.ShardedBytesPerSeries < float64(res.RawBytesPerSeries) {
		t.Errorf("sharded %v B/series below the %d raw floor", res.ShardedBytesPerSeries, res.RawBytesPerSeries)
	}
	// The CI bound is 1.1 at 20000 series; leave jitter headroom at 8000.
	if res.ShardedOverFlat > 1.25 {
		t.Errorf("sharded/flat ratio %v: sharding is copying base data again", res.ShardedOverFlat)
	}
	path := t.TempDir() + "/BENCH_mem.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data := readOnlyRun(t, path)
	var back MemBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.ShardedOverFlat != res.ShardedOverFlat || back.SeriesCount != res.SeriesCount {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, res)
	}
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "generated_at", "gomaxprocs", "workers",
		"series_count", "series_len", "shards", "raw_bytes_per_series",
		"flat_bytes_per_series", "sharded_bytes_per_series", "sharded_over_flat"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("BENCH_mem.json missing flat key %q", key)
		}
	}
}

// TestRunKernelBench validates the distance-kernel microbenchmark record
// behind dsbench -kerneljson and the CI kernel smoke step: both dispatch
// arms measured, detection recorded, plausible timings, the shared flat
// JSON envelope, and rerun-replaces-point trajectory semantics.
func TestRunKernelBench(t *testing.T) {
	defer vector.ForceScalar(false)
	res, err := RunKernelBench(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != "dsidx-bench-kernels/v1" {
		t.Errorf("schema %q", res.Schema)
	}
	if res.Simd != vector.Detected() {
		t.Errorf("recorded simd %q, detection says %q", res.Simd, vector.Detected())
	}
	if res.Workers != 1 {
		t.Errorf("workers %d: kernel timings must be single-core", res.Workers)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("self-validation: %v", err)
	}
	if res.MinEDSpeedup <= 0 || res.MinDistSpeedup <= 0 {
		t.Errorf("implausible speedups: %+v", res)
	}
	if vector.Impl() == "scalar" && vector.Detected() == "avx2" {
		t.Error("RunKernelBench left ForceScalar engaged")
	}
	path := t.TempDir() + "/BENCH_query.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	// A rerun of the same configuration replaces its point, not appends.
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data := readOnlyRun(t, path)
	var back KernelBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.EDSimdNs != res.EDSimdNs || back.Simd != res.Simd {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, res)
	}
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "generated_at", "gomaxprocs", "workers",
		"series_count", "series_len", "simd", "batch", "card",
		"ed_simd_ns", "ed_scalar_ns", "ea_simd_ns", "ea_scalar_ns",
		"mindist_simd_ns", "mindist_scalar_ns", "min_ed_speedup", "mindist_speedup"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("kernel record missing flat key %q", key)
		}
	}
}

func TestDiskBenchWriteJSON(t *testing.T) {
	res := &DiskBenchResult{
		BenchHeader: BenchHeader{
			Schema:      "dsidx-bench-disk/v1",
			GeneratedAt: "2026-01-01T00:00:00Z",
			GOMAXPROCS:  1,
			Workers:     1,
			SeriesCount: 100,
			SeriesLen:   16,
			QueryCount:  2,
		},
		Shards:         4,
		BlockSeries:    64,
		Device:         "test",
		ColdMatchesHot: true,
		ColdOverFlat:   0.2,
		Points:         []diskPoint{{CacheBytes: 1 << 20, HitRate: 0.5}},
	}
	path := t.TempDir() + "/BENCH_disk.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data := readOnlyRun(t, path)
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "shards", "cold_matches_hot", "cold_over_flat", "points"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("BENCH_disk.json missing flat key %q", key)
		}
	}
}

// TestRunQueryBenchDeleteRate pins the -deleterate mode: the requested
// fraction is tombstoned (evenly spaced, all distinct), the record carries
// it, and the configuration key gains the deleterate suffix so the
// delete-free trajectory stays untouched.
func TestRunQueryBenchDeleteRate(t *testing.T) {
	cfg := tiny()
	cfg.DeleteRate = 0.25
	res, err := RunQueryBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(0.25 * float64(cfg.SeriesCount)); res.Tombstoned != want {
		t.Errorf("tombstoned %d, want %d", res.Tombstoned, want)
	}
	if res.DeleteRate != 0.25 {
		t.Errorf("delete rate %v", res.DeleteRate)
	}
	if res.NsPerQuery <= 0 || len(res.QPSByInflight) == 0 {
		t.Errorf("sweep missing: %+v", res)
	}
	key := res.ConfigKey()
	if !strings.Contains(key, ",deleterate=0.25") {
		t.Errorf("config key %q lacks the deleterate suffix", key)
	}
	base := *res
	base.DeleteRate = 0
	if strings.Contains(base.ConfigKey(), "deleterate") {
		t.Errorf("delete-free key %q changed", base.ConfigKey())
	}
}

// TestConfigNormalizeDeleteRateClamp pins the [0, 0.9] clamp.
func TestConfigNormalizeDeleteRateClamp(t *testing.T) {
	if got := (Config{DeleteRate: -1}).Normalize().DeleteRate; got != 0 {
		t.Errorf("negative rate normalized to %v", got)
	}
	if got := (Config{DeleteRate: 2}).Normalize().DeleteRate; got != 0.9 {
		t.Errorf("oversized rate normalized to %v", got)
	}
}
