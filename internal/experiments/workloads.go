package experiments

import (
	"fmt"
	"time"

	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/storage"
)

// Device profiles. Index *creation* figures use the paper's testbed
// profile directly (RAID0 HDD: high sequential bandwidth, parallel
// spindles) because creation is dominated by streaming I/O, which scales
// with the dataset.
//
// Query figures use bandwidth-scaled variants: queries trade a full scan
// (cost ∝ dataset size) against random reads (fixed seek quantum per
// read). Shrinking the dataset 500× while keeping the device constant
// would move that crossover and invert the paper's comparisons as a pure
// scale artifact, so the query devices scale sequential bandwidth with the
// dataset while keeping the physical seek quantum — preserving the
// scan-vs-seek ratio of the 100GB experiments. See DESIGN.md.
var (
	buildHDD = storage.HDD
	queryHDD = storage.Profile{Name: "HDD(query-scaled)", Seek: 8 * time.Millisecond,
		ReadBW: 32e6, WriteBW: 32e6, Parallelism: 8}
	querySSD = storage.Profile{Name: "SSD(query-scaled)", Seek: 100 * time.Microsecond,
		ReadBW: 32e6, WriteBW: 32e6, Parallelism: 16}
)

// leafCapacity is the experiments' default leaf size.
const leafCapacity = 256

// queryNoise is the relative perturbation of query workloads (see
// gen.PerturbedQueries for why queries are perturbed dataset members). The
// value is chosen so the query's nearest neighbor sits about as close,
// relative to the data distribution, as in the paper's dense 100M-series
// collections.
const queryNoise = 0.05

// datasets lists the paper's three collections in figure order.
var datasets = []gen.Kind{gen.Synthetic, gen.SALD, gen.Seismic}

// workload bundles a dataset with its query set.
type workload struct {
	kind    gen.Kind
	coll    *series.Collection
	queries *series.Collection
}

// newWorkload generates a collection of the configured size and its
// perturbed queries.
func newWorkload(cfg Config, kind gen.Kind) workload {
	g := gen.Generator{Kind: kind, Seed: cfg.Seed}
	coll := g.Collection(cfg.SeriesCount)
	return workload{
		kind:    kind,
		coll:    coll,
		queries: g.PerturbedQueries(coll, cfg.QueryCount, queryNoise),
	}
}

// onDisk writes the workload's collection to a fresh simulated device with
// the given profile. The initial write is not throttled (the dataset is a
// precondition, not part of any measured experiment).
func (w workload) onDisk(profile storage.Profile) (*storage.Disk, *storage.SeriesFile, error) {
	disk := storage.NewDisk(storage.NewMemStore(), profile)
	disk.SetScale(0)
	file, err := storage.WriteCollection(disk, w.coll)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: staging %s on %s: %w", w.kind, profile.Name, err)
	}
	disk.SetScale(1)
	disk.ResetMetrics()
	return disk, file, nil
}

// timeQueries runs fn once per query and returns the mean wall time.
func timeQueries(queries *series.Collection, fn func(q series.Series) error) (time.Duration, error) {
	if queries.Len() == 0 {
		return 0, fmt.Errorf("experiments: no queries")
	}
	var total time.Duration
	for i := 0; i < queries.Len(); i++ {
		t0 := time.Now()
		if err := fn(queries.At(i)); err != nil {
			return 0, err
		}
		total += time.Since(t0)
	}
	return total / time.Duration(queries.Len()), nil
}
