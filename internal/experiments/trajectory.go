package experiments

// BENCH_*.json files are trajectories, not snapshots: each dsbench run
// upserts one point keyed by its experiment configuration, so re-running
// the same configuration replaces its point instead of silently
// duplicating it, while new configurations accumulate side by side. The
// writer validates both the record and the assembled envelope before
// touching the file, so a committed trajectory can never go malformed
// through the normal path. Pre-trajectory files (a bare record at top
// level) migrate in place: the old record becomes one run keyed
// "legacy:<schema>".

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"
)

// TrajectorySchema tags the envelope every BENCH_*.json file now carries.
const TrajectorySchema = "dsidx-bench-trajectory/v1"

// BenchRecord is one benchmark result the shared writer can persist:
// anything with the shared header (validation) and a stable configuration
// key (dedupe).
type BenchRecord interface {
	// ConfigKey identifies the experiment configuration that produced the
	// record — the workload shape, not the measured numbers — so repeat
	// runs of one configuration replace each other in a trajectory.
	ConfigKey() string
	// Validate rejects a malformed record before it reaches disk.
	Validate() error
}

// Validate checks the shared envelope fields every record embeds; the
// four result types inherit it, so implementing BenchRecord only requires
// a ConfigKey.
func (h BenchHeader) Validate() error {
	if !strings.HasPrefix(h.Schema, "dsidx-bench-") || !strings.Contains(h.Schema, "/v") {
		return fmt.Errorf("schema %q is not a versioned dsidx-bench schema", h.Schema)
	}
	if _, err := time.Parse(time.RFC3339, h.GeneratedAt); err != nil {
		return fmt.Errorf("generated_at %q is not RFC 3339: %w", h.GeneratedAt, err)
	}
	if h.GOMAXPROCS <= 0 || h.Workers <= 0 {
		return fmt.Errorf("implausible machine shape: gomaxprocs %d, workers %d", h.GOMAXPROCS, h.Workers)
	}
	if h.SeriesCount <= 0 || h.SeriesLen <= 0 || h.QueryCount < 0 {
		return fmt.Errorf("implausible workload shape: %d series of length %d, %d queries",
			h.SeriesCount, h.SeriesLen, h.QueryCount)
	}
	return nil
}

// ConfigKey identifies a query-benchmark configuration. The deleterate
// suffix appears only for tombstone-filtered runs, so delete-free keys stay
// byte-identical to those written before -deleterate existed.
func (r *QueryBenchResult) ConfigKey() string {
	key := fmt.Sprintf("query:series=%d,len=%d,queries=%d,workers=%d",
		r.SeriesCount, r.SeriesLen, r.QueryCount, r.Workers)
	if r.DeleteRate > 0 {
		key += fmt.Sprintf(",deleterate=%g", r.DeleteRate)
	}
	return key
}

// ConfigKey identifies a sharded-sweep configuration.
func (r *ShardedBenchResult) ConfigKey() string {
	return fmt.Sprintf("sharded:series=%d,len=%d,queries=%d,workers=%d,policy=%s",
		r.SeriesCount, r.SeriesLen, r.QueryCount, r.Workers, r.Policy)
}

// ConfigKey identifies a kernel-microbenchmark configuration. Detection
// ("avx2"/"none") is part of the key: runs on machines with and without
// SIMD are different experiments, not reruns of one.
func (r *KernelBenchResult) ConfigKey() string {
	return fmt.Sprintf("kernels:len=%d,batch=%d,card=%d,simd=%s",
		r.SeriesLen, r.Batch, r.Card, r.Simd)
}

// ConfigKey identifies a memory-residency configuration.
func (r *MemBenchResult) ConfigKey() string {
	return fmt.Sprintf("mem:series=%d,len=%d,shards=%d", r.SeriesCount, r.SeriesLen, r.Shards)
}

// ConfigKey identifies an out-of-core configuration.
func (r *DiskBenchResult) ConfigKey() string {
	return fmt.Sprintf("disk:series=%d,len=%d,queries=%d,shards=%d,block=%d,device=%s",
		r.SeriesCount, r.SeriesLen, r.QueryCount, r.Shards, r.BlockSeries, r.Device)
}

// BenchTrajectory is the on-disk envelope of a BENCH_*.json file.
type BenchTrajectory struct {
	Schema string     `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// BenchRun is one trajectory point: a configuration key and the record it
// produced, kept raw so every schema shares the envelope.
type BenchRun struct {
	ConfigKey string          `json:"config_key"`
	Record    json.RawMessage `json:"record"`
}

// Validate checks the envelope invariants the writer maintains: the
// trajectory schema tag, non-empty unique configuration keys, and a
// schema-tagged JSON object behind every run.
func (t *BenchTrajectory) Validate() error {
	if t.Schema != TrajectorySchema {
		return fmt.Errorf("envelope schema %q, want %q", t.Schema, TrajectorySchema)
	}
	seen := make(map[string]bool, len(t.Runs))
	for i, run := range t.Runs {
		if run.ConfigKey == "" {
			return fmt.Errorf("run %d has an empty config_key", i)
		}
		if seen[run.ConfigKey] {
			return fmt.Errorf("duplicate config_key %q", run.ConfigKey)
		}
		seen[run.ConfigKey] = true
		var obj map[string]any
		if err := json.Unmarshal(run.Record, &obj); err != nil {
			return fmt.Errorf("run %q: record is not a JSON object: %w", run.ConfigKey, err)
		}
		if s, _ := obj["schema"].(string); !strings.HasPrefix(s, "dsidx-bench-") {
			return fmt.Errorf("run %q: record schema %v is not a dsidx-bench schema", run.ConfigKey, obj["schema"])
		}
	}
	return nil
}

// upsert replaces the run with key's record, or appends a new run.
func (t *BenchTrajectory) upsert(key string, rec json.RawMessage) {
	for i := range t.Runs {
		if t.Runs[i].ConfigKey == key {
			t.Runs[i].Record = rec
			return
		}
	}
	t.Runs = append(t.Runs, BenchRun{ConfigKey: key, Record: rec})
}

// loadTrajectory reads path's existing trajectory: an empty one when the
// file does not exist, the parsed envelope when it is already a
// trajectory, and a one-run migration when it is a pre-trajectory bare
// record. Anything else is an error — the writer refuses to clobber a
// file it cannot interpret.
func loadTrajectory(path string) (*BenchTrajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &BenchTrajectory{Schema: TrajectorySchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var traj BenchTrajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Schema == TrajectorySchema {
		return &traj, nil
	}
	var legacy struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil || !strings.HasPrefix(legacy.Schema, "dsidx-bench-") {
		return nil, fmt.Errorf("experiments: %s is neither a bench trajectory nor a bench record", path)
	}
	return &BenchTrajectory{
		Schema: TrajectorySchema,
		Runs:   []BenchRun{{ConfigKey: "legacy:" + legacy.Schema, Record: json.RawMessage(data)}},
	}, nil
}

// WriteBenchJSON upserts record into the trajectory at path — the one
// writer every BENCH_*.json schema funnels through. The record is
// validated before the file is read, and the assembled envelope before it
// is written; a failed write leaves the existing file untouched.
func WriteBenchJSON(path string, record BenchRecord) error {
	if err := record.Validate(); err != nil {
		return fmt.Errorf("experiments: invalid bench record for %s: %w", path, err)
	}
	data, err := json.Marshal(record)
	if err != nil {
		return err
	}
	traj, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	traj.upsert(record.ConfigKey(), data)
	if err := traj.Validate(); err != nil {
		return fmt.Errorf("experiments: refusing to write malformed trajectory to %s: %w", path, err)
	}
	out, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
