package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/shard"
)

// Memory residency benchmark: resident bytes per indexed series for a flat
// (unsharded) MESSI build versus a sharded build over the same collection.
//
// MESSI's in-memory design keeps the raw data resident once and streams it
// cache-consciously; a sharding layer that copies each series into its
// shard would double base residency and halve the largest collection one
// machine can serve. The sharded build therefore indexes through zero-copy
// position-remapping views (series.View), and this benchmark is the
// measurement that pins it: the sharded bytes/series figure must stay
// within a small factor (CI asserts 1.1x, see scripts/mem_smoke.sh) of the
// flat one. Before the view-based build it measured ~2x.
//
// Methodology: each build is measured as the heap growth (runtime
// HeapAlloc after a forced GC) across generating the collection AND
// building the index over it, so the base payload is counted exactly once
// no matter which side holds it. Tree nodes, summaries and (default-on)
// leaf-ordered raw blocks are included in both figures alike — the flat
// build pays them too, so the ratio isolates what sharding itself adds.

// MemBenchResult is the machine-readable memory-residency record dsbench
// -memjson writes (BENCH_mem.json).
type MemBenchResult struct {
	BenchHeader
	Shards int `json:"shards"`
	// RawBytesPerSeries is the payload floor: 4 bytes per float32 point.
	RawBytesPerSeries int `json:"raw_bytes_per_series"`
	// FlatBytesPerSeries / ShardedBytesPerSeries are resident heap bytes
	// per series for the two builds (collection + index).
	FlatBytesPerSeries    float64 `json:"flat_bytes_per_series"`
	ShardedBytesPerSeries float64 `json:"sharded_bytes_per_series"`
	// ShardedOverFlat is the ratio the CI memory smoke step bounds.
	ShardedOverFlat float64 `json:"sharded_over_flat"`
	Note            string  `json:"note,omitempty"`
}

// WriteJSON writes the record to path.
func (r *MemBenchResult) WriteJSON(path string) error { return WriteBenchJSON(path, r) }

// residentBytes reports the heap growth across build: forced-GC HeapAlloc
// deltas, with everything build returned still reachable at the second
// reading. release must free it (measurements run back to back). Each
// reading is preceded by TWO collections: sync.Pool contents (query
// scratch from whatever ran before) survive the first GC in a victim
// cache and would otherwise be freed mid-measurement, skewing the delta.
func residentBytes(build func() (release func())) (int64, error) {
	settle := func(m *runtime.MemStats) {
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(m)
	}
	var m0, m1 runtime.MemStats
	settle(&m0)
	release := build()
	settle(&m1)
	delta := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	release()
	if delta <= 0 {
		return 0, fmt.Errorf("experiments: memory measurement collapsed (delta %d bytes)", delta)
	}
	return delta, nil
}

// RunMemBench measures bytes/series for a flat build and a sharded build
// (the largest entry of cfg.ShardAxis, default 4). It is the programmatic
// form of the dsbench -memjson flag and the CI memory smoke step.
func RunMemBench(cfg Config) (*MemBenchResult, error) {
	cfg = cfg.Normalize()
	shards := maxInt(cfg.ShardAxis)
	g := gen.Generator{Kind: gen.Synthetic, Seed: cfg.Seed}
	seriesLen := gen.Synthetic.DefaultLength()

	res := &MemBenchResult{
		BenchHeader: BenchHeader{
			Schema:      "dsidx-bench-mem/v1",
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Workers:     cfg.MaxCores,
			SeriesCount: cfg.SeriesCount,
			SeriesLen:   seriesLen,
		},
		Shards:            shards,
		RawBytesPerSeries: 4 * seriesLen,
		Note: "heap growth across collection generation + build, forced-GC HeapAlloc; " +
			machineBoundNote,
	}

	var buildErr error
	flat, err := residentBytes(func() func() {
		coll := g.Collection(cfg.SeriesCount)
		ix, err := messi.Build(coll, core.Config{LeafCapacity: leafCapacity},
			messi.Options{Workers: cfg.MaxCores})
		if err != nil {
			buildErr = err
			return func() {}
		}
		return func() { ix.Close(); runtime.KeepAlive(coll) }
	})
	if buildErr != nil {
		return nil, fmt.Errorf("membench: flat: %w", buildErr)
	}
	if err != nil {
		return nil, fmt.Errorf("membench: flat: %w", err)
	}

	sharded, err := residentBytes(func() func() {
		coll := g.Collection(cfg.SeriesCount)
		s, err := shard.Build(coll, core.Config{LeafCapacity: leafCapacity}, shard.Options{
			Shards:  shards,
			Options: messi.Options{Workers: cfg.MaxCores},
		})
		if err != nil {
			buildErr = err
			return func() {}
		}
		return func() { s.Close(); runtime.KeepAlive(coll) }
	})
	if buildErr != nil {
		return nil, fmt.Errorf("membench: sharded@%d: %w", shards, buildErr)
	}
	if err != nil {
		return nil, fmt.Errorf("membench: sharded@%d: %w", shards, err)
	}

	n := float64(cfg.SeriesCount)
	res.FlatBytesPerSeries = float64(flat) / n
	res.ShardedBytesPerSeries = float64(sharded) / n
	res.ShardedOverFlat = float64(sharded) / float64(flat)
	return res, nil
}

// MemResidency is the table form of the memory benchmark (dsbench
// -experiment mem).
func MemResidency(cfg Config) (*Table, error) {
	res, err := RunMemBench(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "mem",
		Title:   "Resident bytes per series: flat vs sharded build",
		Unit:    "bytes/series",
		Columns: []string{"bytes/series", "vs flat"},
	}
	t.AddRow("flat", res.FlatBytesPerSeries, 1)
	t.AddRow(fmt.Sprintf("sharded@%d", res.Shards), res.ShardedBytesPerSeries, res.ShardedOverFlat)
	t.Note("raw payload floor %d bytes/series; sharded builds index through zero-copy views, "+
		"so the base values stay resident once (the ratio was ~2x with copied per-shard splits)",
		res.RawBytesPerSeries)
	return t, nil
}
