package experiments

import (
	"fmt"
	"time"

	"dsidx/internal/adsplus"
	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/paris"
	"dsidx/internal/storage"
)

// buildBreakdown builds an on-disk index with the given builder and returns
// the Figure-4 stack: device read time, device write time, and visible CPU
// time (wall total minus device-busy time, clamped at zero — exactly the
// "visible CPU cost" the paper plots; ParIS+ drives it to zero).
func buildBreakdown(w workload, profile storage.Profile,
	build func(raw *storage.SeriesFile, leaves *storage.LeafStore) error,
) (read, write, cpu, total float64, err error) {
	disk, raw, err := w.onDisk(profile)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	leaves := storage.NewLeafStore(disk)
	t0 := time.Now()
	if err := build(raw, leaves); err != nil {
		return 0, 0, 0, 0, err
	}
	wall := time.Since(t0)
	m := disk.Metrics()
	read = seconds(m.ReadBusy)
	write = seconds(m.WriteBusy)
	cpu = seconds(wall) - read - write
	if cpu < 0 {
		cpu = 0
	}
	return read, write, cpu, seconds(wall), nil
}

// Fig4 reproduces the ParIS/ParIS+ index creation breakdown: ADS+ (serial)
// as the 1-core reference, then ParIS and ParIS+ as cores grow. The paper's
// claim: ParIS+ completely removes the visible CPU cost beyond ~6 cores.
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:      "fig4",
		Title:   "ParIS/ParIS+ index creation breakdown (Synthetic, HDD)",
		Unit:    "seconds",
		Columns: []string{"Read", "Write", "CPU", "Total"},
	}

	read, write, cpu, total, err := buildBreakdown(w, buildHDD,
		func(raw *storage.SeriesFile, leaves *storage.LeafStore) error {
			_, err := adsplus.Build(raw, leaves, core.Config{LeafCapacity: leafCapacity})
			return err
		})
	if err != nil {
		return nil, fmt.Errorf("fig4 ADS+: %w", err)
	}
	t.AddRow("ADS+ (1)", read, write, cpu, total)

	for _, mode := range []paris.Mode{paris.ModeParIS, paris.ModeParISPlus} {
		for _, cores := range cfg.coreAxis(4, 6, 12, 24) {
			read, write, cpu, total, err := buildBreakdown(w, buildHDD,
				func(raw *storage.SeriesFile, leaves *storage.LeafStore) error {
					_, err := paris.Build(raw, leaves, core.Config{LeafCapacity: leafCapacity},
						paris.Options{Mode: mode, Workers: cores})
					return err
				})
			if err != nil {
				return nil, fmt.Errorf("fig4 %v@%d: %w", mode, cores, err)
			}
			t.AddRow(fmt.Sprintf("%s (%d)", mode, cores), read, write, cpu, total)
		}
	}
	t.Note("paper: ParIS+ visible CPU reaches 0 beyond 6 cores; ADS+ pays Read+CPU+Write serially")
	return t, nil
}

// Fig5 reproduces MESSI index creation vs cores, split into the iSAX
// summarization and tree construction phases. The paper's claim: time
// reduces (near-)linearly with the number of cores.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	w := newWorkload(cfg, gen.Synthetic)
	t := &Table{
		ID:      "fig5",
		Title:   "MESSI index creation phases vs cores (Synthetic, in-memory)",
		Unit:    "seconds",
		Columns: []string{"iSAX", "TreeBuild", "Total"},
	}
	for _, cores := range cfg.coreAxis(4, 6, 12, 24) {
		ix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
			messi.Options{Workers: cores})
		if err != nil {
			return nil, fmt.Errorf("fig5 @%d: %w", cores, err)
		}
		ix.Close()
		bs := ix.BuildStats()
		t.AddRow(fmt.Sprintf("MESSI (%d)", cores),
			seconds(bs.Summarize), seconds(bs.TreeBuild), seconds(bs.Total))
	}
	t.Note("paper: creation time decreases linearly with core count")
	return t, nil
}

// Fig6 reproduces on-disk index creation across the three datasets:
// ParIS+ is 2.3-3.2x faster than ADS+ in the paper.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	t := &Table{
		ID:      "fig6",
		Title:   "Index creation across datasets (HDD)",
		Unit:    "seconds",
		Columns: []string{"ADS+", "ParIS", "ParIS+"},
	}
	cores := cfg.coreAxis(24)[0]
	for _, kind := range datasets {
		w := newWorkload(cfg, kind)
		var row [3]float64
		_, _, _, total, err := buildBreakdown(w, buildHDD,
			func(raw *storage.SeriesFile, leaves *storage.LeafStore) error {
				_, err := adsplus.Build(raw, leaves, core.Config{LeafCapacity: leafCapacity})
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("fig6 ADS+ %v: %w", kind, err)
		}
		row[0] = total
		for mi, mode := range []paris.Mode{paris.ModeParIS, paris.ModeParISPlus} {
			_, _, _, total, err := buildBreakdown(w, buildHDD,
				func(raw *storage.SeriesFile, leaves *storage.LeafStore) error {
					_, err := paris.Build(raw, leaves, core.Config{LeafCapacity: leafCapacity},
						paris.Options{Mode: mode, Workers: cores})
					return err
				})
			if err != nil {
				return nil, fmt.Errorf("fig6 %v %v: %w", mode, kind, err)
			}
			row[1+mi] = total
		}
		t.AddRow(kind.String(), row[0], row[1], row[2])
	}
	t.Note("paper: ParIS+ is 2.6x (Synthetic), 3.2x (SALD), 2.3x (Seismic) faster than ADS+")
	return t, nil
}

// Fig7 reproduces in-memory index creation across datasets: MESSI is ~3.6x
// faster than the in-memory ParIS, and ParIS beats ParIS+ in memory (no
// I/O to hide the repeated subtree visits behind). Builds are CPU-bound,
// so the figure runs at the larger in-memory scale (see Fig9) to lift the
// comparison out of fixed setup costs.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.Normalize()
	cfg.SeriesCount *= 5
	t := &Table{
		ID:      "fig7",
		Title:   "In-memory index creation across datasets",
		Unit:    "seconds",
		Columns: []string{"ParIS", "ParIS+", "MESSI"},
	}
	cores := cfg.coreAxis(24)[0]
	for _, kind := range datasets {
		w := newWorkload(cfg, kind)
		var row [3]float64
		for mi, mode := range []paris.Mode{paris.ModeParIS, paris.ModeParISPlus} {
			t0 := time.Now()
			if _, err := paris.BuildInMemory(w.coll, core.Config{LeafCapacity: leafCapacity},
				paris.Options{Mode: mode, Workers: cores}); err != nil {
				return nil, fmt.Errorf("fig7 %v %v: %w", mode, kind, err)
			}
			row[mi] = seconds(time.Since(t0))
		}
		t0 := time.Now()
		mix, err := messi.Build(w.coll, core.Config{LeafCapacity: leafCapacity},
			messi.Options{Workers: cores})
		if err != nil {
			return nil, fmt.Errorf("fig7 MESSI %v: %w", kind, err)
		}
		row[2] = seconds(time.Since(t0))
		mix.Close()
		t.AddRow(kind.String(), row[0], row[1], row[2])
	}
	t.Note("paper: MESSI 3.6-3.7x faster than in-memory ParIS; ParIS+ slower than ParIS in memory")
	return t, nil
}
