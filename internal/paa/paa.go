// Package paa implements Piecewise Aggregate Approximation (PAA), the first
// half of the iSAX summarization pipeline (paper §II, Figure 1(b)).
//
// PAA divides a series of length n into w segments of equal length and
// represents each segment by the mean of its points. The classical bound
//
//	ED(a, b) >= sqrt(n/w) * ED(PAA(a), PAA(b))
//
// is what makes PAA (and everything built on it) usable for exact search.
package paa

import (
	"fmt"

	"dsidx/internal/series"
)

// Transform computes the w-segment PAA of s. The series length must be a
// positive multiple of w; all indexes in this repository validate series
// length at construction, so Transform panics rather than returning an error.
func Transform(s series.Series, w int) []float64 {
	out := make([]float64, w)
	TransformInto(s, out)
	return out
}

// TransformInto computes the PAA of s into out, whose length determines the
// segment count. It performs no allocation, so the per-series hot paths of
// the bulk-loading stages can reuse one buffer per worker.
func TransformInto(s series.Series, out []float64) {
	w := len(out)
	if w <= 0 || len(s) == 0 || len(s)%w != 0 {
		panic(fmt.Sprintf("paa: series length %d not a positive multiple of segments %d", len(s), w))
	}
	seg := len(s) / w
	inv := 1.0 / float64(seg)
	for j := 0; j < w; j++ {
		var sum float64
		base := j * seg
		for k := 0; k < seg; k++ {
			sum += float64(s[base+k])
		}
		out[j] = sum * inv
	}
}

// Reconstruct expands a PAA back to a series of length n (each segment's
// points set to the segment mean). Useful for visualization and for testing
// the distance bound.
func Reconstruct(coeffs []float64, n int) series.Series {
	w := len(coeffs)
	if w == 0 || n%w != 0 {
		panic(fmt.Sprintf("paa: cannot reconstruct length %d from %d segments", n, w))
	}
	seg := n / w
	out := make(series.Series, n)
	for j, c := range coeffs {
		for k := 0; k < seg; k++ {
			out[j*seg+k] = float32(c)
		}
	}
	return out
}

// SquaredLowerBound returns the scaled squared PAA distance
// (n/w)·Σ(a_j−b_j)², which lower-bounds the squared Euclidean distance of
// the original series of length n.
func SquaredLowerBound(a, b []float64, n int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("paa: coefficient length mismatch %d != %d", len(a), len(b)))
	}
	var acc float64
	for j := range a {
		d := a[j] - b[j]
		acc += d * d
	}
	return acc * float64(n) / float64(len(a))
}

// Valid reports whether a series of length n can be summarized with w
// segments.
func Valid(n, w int) bool { return w > 0 && n > 0 && n%w == 0 }
