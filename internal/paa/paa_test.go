package paa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dsidx/internal/series"
)

func randomSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestTransformKnown(t *testing.T) {
	s := series.Series{1, 1, 2, 2, 3, 3, 4, 4}
	got := Transform(s, 4)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("coeff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTransformSingleSegmentIsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomSeries(rng, 64)
	got := Transform(s, 1)
	if math.Abs(got[0]-s.Mean()) > 1e-9 {
		t.Errorf("single segment PAA = %v, want mean %v", got[0], s.Mean())
	}
}

func TestTransformFullResolutionIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSeries(rng, 16)
	got := Transform(s, 16)
	for i := range s {
		if math.Abs(got[i]-float64(s[i])) > 1e-6 {
			t.Errorf("coeff[%d] = %v, want %v", i, got[i], s[i])
		}
	}
}

func TestTransformPanicsOnBadShape(t *testing.T) {
	cases := []struct {
		n, w int
	}{{10, 3}, {0, 4}, {8, 0}, {4, 8}}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d w=%d: expected panic", tc.n, tc.w)
				}
			}()
			Transform(make(series.Series, tc.n), tc.w)
		}()
	}
}

func TestTransformIntoMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSeries(rng, 256)
	buf := make([]float64, 16)
	TransformInto(s, buf)
	want := Transform(s, 16)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("TransformInto[%d] = %v, Transform = %v", i, buf[i], want[i])
		}
	}
}

func TestReconstructShape(t *testing.T) {
	coeffs := []float64{1, -1}
	s := Reconstruct(coeffs, 8)
	if len(s) != 8 {
		t.Fatalf("len = %d, want 8", len(s))
	}
	for i := 0; i < 4; i++ {
		if s[i] != 1 {
			t.Errorf("s[%d] = %v, want 1", i, s[i])
		}
	}
	for i := 4; i < 8; i++ {
		if s[i] != -1 {
			t.Errorf("s[%d] = %v, want -1", i, s[i])
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	// (n/w)·ED²(PAA(a),PAA(b)) ≤ ED²(a,b): the foundation of pruning.
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, w := 256, 16
		a, b := randomSeries(r, n), randomSeries(r, n)
		lb := SquaredLowerBound(Transform(a, w), Transform(b, w), n)
		return lb <= series.SquaredED(a, b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundTightensWithResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 256
	a, b := randomSeries(rng, n), randomSeries(rng, n)
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		lb := SquaredLowerBound(Transform(a, w), Transform(b, w), n)
		if lb+1e-9 < prev {
			t.Fatalf("lower bound decreased from %v to %v at w=%d", prev, lb, w)
		}
		prev = lb
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		n, w int
		want bool
	}{{256, 16, true}, {128, 16, true}, {100, 16, false}, {0, 16, false}, {16, 0, false}, {8, 16, false}}
	for _, tc := range cases {
		if got := Valid(tc.n, tc.w); got != tc.want {
			t.Errorf("Valid(%d,%d) = %v, want %v", tc.n, tc.w, got, tc.want)
		}
	}
}
