// Package pqueue provides the minimum priority queues used by MESSI's query
// answering stage (paper §III): leaves that survive node-level pruning are
// inserted, with their lower-bound distance as priority, into a set of
// concurrent min-queues in round-robin fashion; worker threads then drain
// the queues in ascending lower-bound order.
package pqueue

import (
	"sync"

	"dsidx/internal/xsync"
)

// Item is a prioritized value.
type Item[T any] struct {
	Priority float64
	Value    T
}

// Heap is a classic binary min-heap on Item.Priority. Not safe for
// concurrent use; see Locked.
type Heap[T any] struct {
	items []Item[T]
}

// NewHeap returns a heap with the given initial capacity.
func NewHeap[T any](capacity int) *Heap[T] {
	return &Heap[T]{items: make([]Item[T], 0, capacity)}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts a value with the given priority.
func (h *Heap[T]) Push(priority float64, v T) {
	h.items = append(h.items, Item[T]{Priority: priority, Value: v})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Priority <= h.items[i].Priority {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// Pop removes and returns the minimum-priority item. ok is false when the
// heap is empty.
func (h *Heap[T]) Pop() (it Item[T], ok bool) {
	if len(h.items) == 0 {
		return it, false
	}
	it = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero Item[T]
	h.items[last] = zero // release references for GC
	h.items = h.items[:last]
	h.siftDown(0)
	return it, true
}

// Reset empties the heap, keeping its backing array for reuse.
func (h *Heap[T]) Reset() {
	clear(h.items) // release references for GC
	h.items = h.items[:0]
}

// Peek returns the minimum-priority item without removing it.
func (h *Heap[T]) Peek() (it Item[T], ok bool) {
	if len(h.items) == 0 {
		return it, false
	}
	return h.items[0], true
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].Priority < h.items[smallest].Priority {
			smallest = l
		}
		if r < n && h.items[r].Priority < h.items[smallest].Priority {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// Locked is a mutex-protected Heap safe for concurrent use. MESSI protects
// each of its queues with a lock; contention stays low because there are
// several queues and workers spread across them.
type Locked[T any] struct {
	mu   sync.Mutex
	heap Heap[T]
}

// NewLocked returns a concurrent heap with the given initial capacity.
func NewLocked[T any](capacity int) *Locked[T] {
	return &Locked[T]{heap: Heap[T]{items: make([]Item[T], 0, capacity)}}
}

// Push inserts a value with the given priority.
func (q *Locked[T]) Push(priority float64, v T) {
	q.mu.Lock()
	q.heap.Push(priority, v)
	q.mu.Unlock()
}

// Pop removes and returns the minimum item; ok is false when empty.
func (q *Locked[T]) Pop() (Item[T], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.heap.Pop()
}

// PopIfUnder removes and returns the minimum item only if its priority is
// strictly below limit. done is true when the queue is empty or its minimum
// is already >= limit — in both cases a MESSI worker abandons this queue,
// because every remaining element has an even larger lower bound.
func (q *Locked[T]) PopIfUnder(limit float64) (it Item[T], done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	head, ok := q.heap.Peek()
	if !ok || head.Priority >= limit {
		var zero Item[T]
		return zero, true
	}
	it, _ = q.heap.Pop()
	return it, false
}

// Reset empties the queue, keeping its backing array for reuse.
func (q *Locked[T]) Reset() {
	q.mu.Lock()
	q.heap.Reset()
	q.mu.Unlock()
}

// Len returns the current number of queued items.
func (q *Locked[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.heap.Len()
}

// Set is a group of concurrent min-queues with round-robin insertion, the
// exact structure MESSI stage 3 uses for load balancing: "each thread
// inserts elements in the priority queues in a round-robin fashion".
type Set[T any] struct {
	queues []*Locked[T]
	rr     xsync.Counter
}

// NewSet creates count queues, each with the given initial capacity.
func NewSet[T any](count, capacity int) *Set[T] {
	if count <= 0 {
		count = 1
	}
	s := &Set[T]{queues: make([]*Locked[T], count)}
	for i := range s.queues {
		s.queues[i] = NewLocked[T](capacity)
	}
	return s
}

// Insert pushes the value into the next queue in round-robin order.
func (s *Set[T]) Insert(priority float64, v T) {
	i := int(s.rr.Next()) % len(s.queues)
	s.queues[i].Push(priority, v)
}

// Count returns the number of queues in the set.
func (s *Set[T]) Count() int { return len(s.queues) }

// Queue returns the i-th queue (modulo the count), letting each worker
// start from a different queue and walk the set.
func (s *Set[T]) Queue(i int) *Locked[T] { return s.queues[i%len(s.queues)] }

// Reset empties every queue and rewinds the round-robin cursor, so a
// pooled set can be reused across queries without reallocating heaps.
func (s *Set[T]) Reset() {
	for _, q := range s.queues {
		q.Reset()
	}
	s.rr.Reset()
}

// TotalLen returns the total number of queued items across the set.
func (s *Set[T]) TotalLen() int {
	total := 0
	for _, q := range s.queues {
		total += q.Len()
	}
	return total
}
