package pqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := NewHeap[string](4)
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	var got []string
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, it.Value)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("pop order = %v, want [a b c]", got)
	}
}

func TestHeapEmptyPop(t *testing.T) {
	h := NewHeap[int](0)
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
}

func TestHeapPropertySorted(t *testing.T) {
	f := func(priorities []float64) bool {
		h := NewHeap[int](len(priorities))
		for i, p := range priorities {
			h.Push(p, i)
		}
		popped := make([]float64, 0, len(priorities))
		for {
			it, ok := h.Pop()
			if !ok {
				break
			}
			popped = append(popped, it.Priority)
		}
		if len(popped) != len(priorities) {
			return false
		}
		return sort.Float64sAreSorted(popped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapDuplicatePriorities(t *testing.T) {
	h := NewHeap[int](8)
	for i := 0; i < 8; i++ {
		h.Push(1, i)
	}
	seen := map[int]bool{}
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		seen[it.Value] = true
	}
	if len(seen) != 8 {
		t.Fatalf("lost values under duplicate priorities: %d/8", len(seen))
	}
}

func TestLockedPopIfUnder(t *testing.T) {
	q := NewLocked[int](4)
	q.Push(5, 50)
	q.Push(1, 10)

	it, done := q.PopIfUnder(3)
	if done || it.Value != 10 {
		t.Fatalf("PopIfUnder(3) = (%v,%v), want value 10", it, done)
	}
	// Head is now 5 >= 3: abandon.
	if _, done := q.PopIfUnder(3); !done {
		t.Fatal("PopIfUnder should report done when head >= limit")
	}
	if q.Len() != 1 {
		t.Fatalf("abandoned pop must not consume; len = %d", q.Len())
	}
	// Empty queue: done.
	q2 := NewLocked[int](0)
	if _, done := q2.PopIfUnder(100); !done {
		t.Fatal("PopIfUnder on empty queue should report done")
	}
}

func TestLockedConcurrentPushPop(t *testing.T) {
	q := NewLocked[int](0)
	const n = 4000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < n/4; i++ {
				q.Push(rng.Float64(), w*n/4+i)
			}
		}(w)
	}
	wg.Wait()

	var mu sync.Mutex
	seen := make(map[int]bool, n)
	wg = sync.WaitGroup{}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				it, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				seen[it.Value] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("drained %d values, want %d", len(seen), n)
	}
}

func TestSetRoundRobin(t *testing.T) {
	s := NewSet[int](3, 4)
	for i := 0; i < 9; i++ {
		s.Insert(float64(i), i)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for i := 0; i < 3; i++ {
		if got := s.Queue(i).Len(); got != 3 {
			t.Fatalf("queue %d len = %d, want 3 (round robin)", i, got)
		}
	}
	if s.TotalLen() != 9 {
		t.Fatalf("TotalLen = %d, want 9", s.TotalLen())
	}
	// Queue index wraps.
	if s.Queue(0) != s.Queue(3) {
		t.Fatal("Queue index should wrap modulo count")
	}
}

func TestSetMinimumCount(t *testing.T) {
	s := NewSet[int](0, 0)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1 for degenerate set", s.Count())
	}
	s.Insert(1, 1)
	if s.TotalLen() != 1 {
		t.Fatal("insert into degenerate set lost the item")
	}
}

func TestResetReusesAcrossQueries(t *testing.T) {
	// A pooled Set must behave identically after Reset: empty queues,
	// round-robin cursor rewound, no stale items.
	s := NewSet[string](3, 4)
	for i := 0; i < 7; i++ {
		s.Insert(float64(i), "old")
	}
	s.Reset()
	if s.TotalLen() != 0 {
		t.Fatalf("TotalLen = %d after Reset", s.TotalLen())
	}
	s.Insert(2, "b")
	s.Insert(1, "a")
	if s.TotalLen() != 2 {
		t.Fatalf("TotalLen = %d after refill", s.TotalLen())
	}
	// Cursor rewound: inserts land in queues 0 then 1, as on a fresh set.
	if s.Queue(0).Len() != 1 || s.Queue(1).Len() != 1 || s.Queue(2).Len() != 0 {
		t.Fatalf("round-robin after Reset: lens %d/%d/%d",
			s.Queue(0).Len(), s.Queue(1).Len(), s.Queue(2).Len())
	}
	if it, ok := s.Queue(0).Pop(); !ok || it.Value != "b" {
		t.Fatalf("queue 0 head = %+v, want b", it)
	}
}

func TestHeapResetKeepsCapacity(t *testing.T) {
	h := NewHeap[int](2)
	for i := 0; i < 100; i++ {
		h.Push(float64(100-i), i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len = %d after Reset", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop succeeded on reset heap")
	}
	h.Push(5, 42)
	if it, ok := h.Pop(); !ok || it.Value != 42 || it.Priority != 5 {
		t.Fatalf("heap broken after Reset: %+v", it)
	}
}
