package vector

import (
	"math/rand"
	"sync"
	"testing"
)

func TestImplAndForceScalar(t *testing.T) {
	defer ForceScalar(false)
	ForceScalar(false)
	switch Detected() {
	case "avx2":
		if !hasAsm {
			t.Fatal("Detected()=avx2 on a build without the assembly layer")
		}
		if Impl() != "avx2" {
			t.Fatalf("Impl()=%q with AVX2 detected and ForceScalar off", Impl())
		}
	case "none":
		if Impl() != "scalar" {
			t.Fatalf("Impl()=%q with no SIMD detected", Impl())
		}
	default:
		t.Fatalf("Detected()=%q, want avx2 or none", Detected())
	}
	ForceScalar(true)
	if Impl() != "scalar" {
		t.Fatalf("Impl()=%q under ForceScalar(true)", Impl())
	}
	ForceScalar(false)
	if Detected() == "avx2" && Impl() != "avx2" {
		t.Fatalf("Impl()=%q after ForceScalar(false) on an AVX2 machine", Impl())
	}
}

// TestDetectionRunsOnce pins that CPU feature detection happened exactly
// once, at package init, and that concurrent kernel calls racing against
// ForceScalar toggles neither re-run it nor trip the race detector.
func TestDetectionRunsOnce(t *testing.T) {
	defer ForceScalar(false)
	if hasAsm {
		if got := detectRuns(); got != 1 {
			t.Fatalf("detection ran %d times, want exactly 1", got)
		}
	} else if got := detectRuns(); got != 0 {
		t.Fatalf("detection ran %d times on a build without the assembly layer", got)
	}

	rng := rand.New(rand.NewSource(21))
	a, b := randVec(rng, 128), randVec(rng, 128)
	want := ScalarSquaredED(a, b)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g == 0 {
					ForceScalar(i%2 == 0)
				}
				if got := SquaredED(a, b); got != want {
					t.Errorf("concurrent SquaredED=%v, want %v", got, want)
					return
				}
				_ = Impl()
			}
		}(g)
	}
	wg.Wait()

	if hasAsm {
		if got := detectRuns(); got != 1 {
			t.Fatalf("detection re-ran under concurrency: %d runs", got)
		}
	}
}
