//go:build amd64 && !purego

package vector

// CPU feature detection for the AVX2 kernel layer. The module is
// dependency-free, so the CPUID/XGETBV probes are tiny assembly stubs in
// asm_amd64.s rather than golang.org/x/sys/cpu. Detection runs exactly
// once, at package initialization (package-level variable initialization
// happens before any goroutine can call into the package, so haveAVX2
// needs no synchronization); detectRuns lets the race test pin that.

// hasAsm marks builds that carry the assembly layer at all.
const hasAsm = true

// detectCalls counts detectAVX2 invocations — must stay exactly 1.
var detectCalls int

var haveAVX2 = detectAVX2()

// detectAVX2 reports whether this CPU and OS support the AVX2 kernels:
// CPUID must advertise OSXSAVE and AVX, XGETBV must confirm the OS
// preserves XMM+YMM state across context switches, and leaf 7 must
// advertise AVX2 itself.
func detectAVX2() bool {
	detectCalls++
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set: the OS saves and
	// restores the full YMM state.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// detectRuns reports how many times feature detection has executed.
func detectRuns() int { return detectCalls }

// cpuid executes the CPUID instruction with the given EAX/ECX arguments.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)
