package vector

import "sync/atomic"

// forceScalar is the runtime escape hatch: when set, the exported kernels
// run the scalar oracle even where AVX2 was detected. It is atomic so
// tests (and operators debugging a suspected kernel issue) can flip it
// while queries are in flight without a data race; haveAVX2 itself is
// written exactly once, during package initialization, before any
// goroutine can call a kernel.
var forceScalar atomic.Bool

// ForceScalar forces (v = true) or re-allows (v = false) the scalar
// implementation at runtime. Safe for concurrent use; the switch applies
// to kernel calls that start after it.
func ForceScalar(v bool) { forceScalar.Store(v) }

// Impl reports the implementation the next kernel call will use: "avx2"
// or "scalar". Surfaced through the index Metrics snapshot and the
// dsidx_vector_simd metric family.
func Impl() string {
	if useSIMD() {
		return "avx2"
	}
	return "scalar"
}

// Detected reports what CPU feature detection found at startup, ignoring
// ForceScalar: "avx2", or "none" when this build or machine has no SIMD
// path (non-amd64, the purego build tag, or a CPU without AVX2).
func Detected() string {
	if haveAVX2 {
		return "avx2"
	}
	return "none"
}

// useSIMD reports whether the assembly implementation serves the next
// call. On builds without an assembly layer haveAVX2 is constant false
// and the compiler removes the SIMD branches entirely.
func useSIMD() bool { return haveAVX2 && !forceScalar.Load() }
