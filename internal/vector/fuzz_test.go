package vector

import (
	"encoding/binary"
	"math"
	"testing"
)

// Differential fuzzing: the exported kernels (SIMD on machines that have
// it) against the scalar oracle, compared through Float64bits so signed
// zeros, infinities, and denormals all count (NaN payloads are the one
// unspecified dimension — see the package comment). Inputs are raw bytes
// reinterpreted as float32 bit patterns, so NaNs, infinities, and
// denormals appear constantly, and lengths are whatever the byte slice
// gives — never a convenient lane multiple.

// nanEq is the contract comparison: exact bits, except any NaN matches
// any NaN (payloads are unspecified — see the package comment).
func nanEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func f32sFromBytes(data []byte) []float32 {
	n := len(data) / 4
	v := make([]float32, n)
	for i := 0; i < n; i++ {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return v
}

func FuzzSquaredEDDifferential(f *testing.F) {
	f.Add(make([]byte, 8), make([]byte, 8))
	f.Add([]byte{0, 0, 0x80, 0x7f, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}, []byte{0, 0, 0xc0, 0xff, 0, 0, 0, 0x80, 2, 0, 0, 0})
	f.Add(make([]byte, 4*33), make([]byte, 4*33))
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		a, b := f32sFromBytes(ab), f32sFromBytes(bb)
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		if n == 0 {
			return
		}
		got, want := SquaredED(a, b), ScalarSquaredED(a, b)
		if !nanEq(got, want) {
			t.Fatalf("impl=%s n=%d: SquaredED=%x scalar=%x (%v vs %v)",
				Impl(), n, math.Float64bits(got), math.Float64bits(want), got, want)
		}
	})
}

func FuzzSquaredEDEarlyAbandonDifferential(f *testing.F) {
	f.Add(make([]byte, 4*17), make([]byte, 4*17), 1.5)
	f.Add([]byte{0, 0, 0x80, 0x7f}, []byte{0, 0, 0x80, 0xff}, math.Inf(1))
	f.Add(make([]byte, 4*64), make([]byte, 4*64), math.NaN())
	f.Fuzz(func(t *testing.T, ab, bb []byte, limit float64) {
		a, b := f32sFromBytes(ab), f32sFromBytes(bb)
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		if n == 0 {
			return
		}
		got := SquaredEDEarlyAbandon(a, b, limit)
		want := ScalarSquaredEDEarlyAbandon(a, b, limit)
		if !nanEq(got, want) {
			t.Fatalf("impl=%s n=%d limit=%v: EA=%x scalar=%x",
				Impl(), n, limit, math.Float64bits(got), math.Float64bits(want))
		}
		// And the documented identity: EA at +Inf is the full distance.
		if ea, ed := SquaredEDEarlyAbandon(a, b, math.Inf(1)), SquaredED(a, b); !nanEq(ea, ed) {
			t.Fatalf("impl=%s n=%d: EA(+Inf)=%v != SquaredED=%v", Impl(), n, ea, ed)
		}
	})
}

func FuzzMinDistBatchDifferential(f *testing.F) {
	f.Add(make([]byte, 16*4*8), make([]byte, 16*3), uint8(2))
	f.Add(make([]byte, 16*8*8), make([]byte, 16), uint8(3))
	f.Fuzz(func(t *testing.T, cellBytes, sax []byte, logCard uint8) {
		card := 1 << (logCard % 9) // 1..256, always a power of two
		if len(cellBytes) < 16*card*8 || len(sax) < 16 {
			return
		}
		cells := make([]float64, 16*card)
		for i := range cells {
			cells[i] = math.Float64frombits(binary.LittleEndian.Uint64(cellBytes[i*8:]))
		}
		count := len(sax) / 16
		sax = sax[:count*16]
		got := make([]float64, count)
		want := make([]float64, count)
		MinDistBatch(cells, sax, 16, card, got)
		ScalarMinDistBatch(cells, sax, 16, card, want)
		for i := range got {
			if !nanEq(got[i], want[i]) {
				t.Fatalf("impl=%s card=%d entry=%d: %x vs %x",
					Impl(), card, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		// Single-entry form must match the batch entry bit for bit.
		if one := MinDistLookup16(cells, sax[:16], card); !nanEq(one, want[0]) {
			t.Fatalf("impl=%s card=%d: MinDistLookup16=%v batch=%v", Impl(), card, one, want[0])
		}
	})
}
