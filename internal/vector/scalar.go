package vector

// This file is the scalar ORACLE: the pure-Go, always-compiled reference
// implementation of the pinned summation contract (see the package
// comment). The assembly kernels must match these functions bit for bit on
// every input; the differential fuzz targets enforce it. The float64(...)
// conversions around each product are rounding points required by the Go
// spec — they forbid the compiler from fusing the multiply into the
// following add (which gc does on arm64/ppc64), so the oracle computes the
// same bits on every platform.

// ScalarSquaredED is the oracle form of SquaredED: the pinned 4-lane
// accumulation, never dispatched to assembly.
func ScalarSquaredED(a, b []float32) float64 {
	_ = b[len(a)-1]
	return scalarSquaredED(a, b)
}

func scalarSquaredED(a, b []float32) float64 {
	n := len(a)
	var l0, l1, l2, l3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		l0 += float64(d0 * d0)
		l1 += float64(d1 * d1)
		l2 += float64(d2 * d2)
		l3 += float64(d3 * d3)
	}
	r := (l0 + l1) + (l2 + l3)
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		r += float64(d * d)
	}
	return r
}

// ScalarSquaredEDEarlyAbandon is the oracle form of SquaredEDEarlyAbandon.
func ScalarSquaredEDEarlyAbandon(a, b []float32, limit float64) float64 {
	_ = b[len(a)-1]
	return scalarSquaredEDEarlyAbandon(a, b, limit)
}

func scalarSquaredEDEarlyAbandon(a, b []float32, limit float64) float64 {
	n := len(a)
	var l0, l1, l2, l3 float64
	i := 0
	for ; i+16 <= n; i += 16 {
		for j := i; j < i+16; j += 4 {
			d0 := float64(a[j]) - float64(b[j])
			d1 := float64(a[j+1]) - float64(b[j+1])
			d2 := float64(a[j+2]) - float64(b[j+2])
			d3 := float64(a[j+3]) - float64(b[j+3])
			l0 += float64(d0 * d0)
			l1 += float64(d1 * d1)
			l2 += float64(d2 * d2)
			l3 += float64(d3 * d3)
		}
		if r := (l0 + l1) + (l2 + l3); r > limit {
			return r
		}
	}
	for ; i+4 <= n; i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		l0 += float64(d0 * d0)
		l1 += float64(d1 * d1)
		l2 += float64(d2 * d2)
		l3 += float64(d3 * d3)
	}
	r := (l0 + l1) + (l2 + l3)
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		r += float64(d * d)
	}
	return r
}

// ScalarMinDistLookup16 is the oracle form of MinDistLookup16.
func ScalarMinDistLookup16(cells []float64, sax []uint8, card int) float64 {
	_ = sax[15]
	_ = cells[16*card-1]
	return scalarMinDistLookup16(cells, sax, card)
}

func scalarMinDistLookup16(cells []float64, sax []uint8, card int) float64 {
	mask := card - 1 // card is a power of two; symbols reduce modulo card
	var l0, l1, l2, l3 float64
	for k := 0; k < 16; k += 4 {
		l0 += cells[k*card+int(sax[k])&mask]
		l1 += cells[(k+1)*card+int(sax[k+1])&mask]
		l2 += cells[(k+2)*card+int(sax[k+2])&mask]
		l3 += cells[(k+3)*card+int(sax[k+3])&mask]
	}
	return (l0 + l1) + (l2 + l3)
}

// ScalarMinDistBatch is the oracle form of MinDistBatch: the w == 16 case
// runs the per-entry lookup oracle, every other width the shared
// sequential loop.
func ScalarMinDistBatch(cells []float64, sax []uint8, w, card int, out []float64) {
	if w == 16 {
		for i := range out {
			out[i] = scalarMinDistLookup16(cells, sax[i*16:i*16+16], card)
		}
		return
	}
	for i := range out {
		var acc float64
		row := sax[i*w : (i+1)*w]
		for j, s := range row {
			acc += cells[j*card+int(s)]
		}
		out[i] = acc
	}
}
