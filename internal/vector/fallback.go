//go:build !amd64 || purego

package vector

// Scalar-only builds: every other architecture, and amd64 with the purego
// build tag. haveAVX2 is a constant false here, so the compiler deletes
// the SIMD branches in the exported kernels and this file's stubs are
// never reached — they exist so the package compiles identically
// everywhere.

// hasAsm marks builds that carry the assembly layer at all.
const hasAsm = false

const haveAVX2 = false

// detectRuns reports how many times feature detection has executed —
// never, on a build with no assembly layer.
func detectRuns() int { return 0 }

func simdSquaredED(a, b []float32) float64 { return scalarSquaredED(a, b) }

func simdSquaredEDEarlyAbandon(a, b []float32, limit float64) float64 {
	return scalarSquaredEDEarlyAbandon(a, b, limit)
}

func simdMinDistBatch16(cells []float64, sax []uint8, card int, out []float64) {
	for i := range out {
		out[i] = scalarMinDistLookup16(cells, sax[i*16:i*16+16], card)
	}
}
