//go:build !purego

// AVX2 kernels implementing the pinned summation contract documented in
// vector.go. Every instruction sequence here mirrors the scalar oracle in
// scalar.go operation for operation:
//
//   - element i lives in lane i mod 4 (VCVTPS2PD loads 4 consecutive
//     float32 as 4 float64 lanes, so lane j of vector step s is element
//     4s+j — exactly the oracle's l0..l3 striping),
//   - each product is rounded before the add (VMULPD then VADDPD are two
//     rounded operations, matching the oracle's float64(d*d) barriers),
//   - the lane reduce is (l0+l1)+(l2+l3) with the left operand of every
//     add as the x86 first source, so NaN payload propagation matches the
//     compiled oracle,
//   - the scalar tail runs element-at-a-time with VCVTSS2SD/VSUBSD/
//     VMULSD/VADDSD, the same instructions gc emits for the oracle tail.
//
// a is always the first source of the subtract and the accumulator the
// first source of the add: x86 binary FP ops return the first source
// quieted when both inputs are NaN, and that is the operand order the
// compiler picks for the oracle.

#include "textflag.h"

// maskOdd selects int64 lanes 1 and 3; maskHi selects lanes 2 and 3.
// Together they turn a broadcast card into the row-offset ramp
// [0, card, 2*card, 3*card] without needing a variable shift.
DATA maskOdd<>+0(SB)/8, $0
DATA maskOdd<>+8(SB)/8, $-1
DATA maskOdd<>+16(SB)/8, $0
DATA maskOdd<>+24(SB)/8, $-1
GLOBL maskOdd<>(SB), RODATA|NOPTR, $32

DATA maskHi<>+0(SB)/8, $0
DATA maskHi<>+8(SB)/8, $0
DATA maskHi<>+16(SB)/8, $-1
DATA maskHi<>+24(SB)/8, $-1
GLOBL maskHi<>(SB), RODATA|NOPTR, $32

// func simdSquaredED(a, b []float32) float64
TEXT ·simdSquaredED(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX

edVec:
	CMPQ AX, BX
	JGE  edReduce
	VCVTPS2PD (SI)(AX*4), Y1
	VCVTPS2PD (DI)(AX*4), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $4, AX
	JMP  edVec

edReduce:
	// (l0+l1)+(l2+l3), left operand of each add as first source.
	VEXTRACTF128 $1, Y0, X2
	VPERMILPD $1, X0, X3
	VADDSD X3, X0, X0
	VPERMILPD $1, X2, X3
	VADDSD X3, X2, X2
	VADDSD X2, X0, X0

edTail:
	CMPQ AX, CX
	JGE  edDone
	VCVTSS2SD (SI)(AX*4), X1, X1
	VCVTSS2SD (DI)(AX*4), X2, X2
	VSUBSD X2, X1, X1
	VMULSD X1, X1, X1
	VADDSD X1, X0, X0
	INCQ AX
	JMP  edTail

edDone:
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func simdSquaredEDEarlyAbandon(a, b []float32, limit float64) float64
TEXT ·simdSquaredEDEarlyAbandon(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	VMOVSD limit+48(FP), X7
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-16, BX

eaBlk16:
	CMPQ AX, BX
	JGE  eaBlk16Done
	VCVTPS2PD (SI)(AX*4), Y1
	VCVTPS2PD (DI)(AX*4), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	VCVTPS2PD 16(SI)(AX*4), Y1
	VCVTPS2PD 16(DI)(AX*4), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	VCVTPS2PD 32(SI)(AX*4), Y1
	VCVTPS2PD 32(DI)(AX*4), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	VCVTPS2PD 48(SI)(AX*4), Y1
	VCVTPS2PD 48(DI)(AX*4), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $16, AX
	// Reduce into X4 without disturbing the lane accumulators in Y0, and
	// abandon on r > limit. Unordered (NaN) compares fall through, like
	// the oracle's `r > limit`.
	VEXTRACTF128 $1, Y0, X2
	VPERMILPD $1, X0, X3
	VADDSD X3, X0, X4
	VPERMILPD $1, X2, X5
	VADDSD X5, X2, X5
	VADDSD X5, X4, X4
	VUCOMISD X7, X4
	JA   eaAbandon
	JMP  eaBlk16

eaBlk16Done:
	MOVQ CX, BX
	ANDQ $-4, BX

eaBlk4:
	CMPQ AX, BX
	JGE  eaBlk4Done
	VCVTPS2PD (SI)(AX*4), Y1
	VCVTPS2PD (DI)(AX*4), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $4, AX
	JMP  eaBlk4

eaBlk4Done:
	VEXTRACTF128 $1, Y0, X2
	VPERMILPD $1, X0, X3
	VADDSD X3, X0, X4
	VPERMILPD $1, X2, X5
	VADDSD X5, X2, X5
	VADDSD X5, X4, X4

eaTail:
	CMPQ AX, CX
	JGE  eaDone
	VCVTSS2SD (SI)(AX*4), X1, X1
	VCVTSS2SD (DI)(AX*4), X2, X2
	VSUBSD X2, X1, X1
	VMULSD X1, X1, X1
	VADDSD X1, X4, X4
	INCQ AX
	JMP  eaTail

eaAbandon:
eaDone:
	VZEROUPPER
	MOVSD X4, ret+56(FP)
	RET

// func simdMinDistBatch16(cells []float64, sax []uint8, card int, out []float64)
TEXT ·simdMinDistBatch16(SB), NOSPLIT, $0-80
	MOVQ out_len+64(FP), R10
	TESTQ R10, R10
	JZ   mdDone
	MOVQ cells_base+0(FP), SI
	MOVQ sax_base+24(FP), DX
	MOVQ card+48(FP), R8
	MOVQ out_base+56(FP), R9
	// Y9 = broadcast(card-1): the symbol mask (card is a power of two).
	LEAQ -1(R8), R11
	MOVQ R11, X9
	VPBROADCASTQ X9, Y9
	// Y8 = [0, card, 2*card, 3*card], Y11 = broadcast(4*card).
	MOVQ R8, X10
	VPBROADCASTQ X10, Y10
	VPAND maskOdd<>(SB), Y10, Y8
	VPAND maskHi<>(SB), Y10, Y12
	VPADDQ Y12, Y12, Y12
	VPADDQ Y12, Y8, Y8
	VPADDQ Y10, Y10, Y11
	VPADDQ Y11, Y11, Y11

mdEntry:
	// Lane j accumulates rows j, j+4, j+8, j+12 — the oracle's l0..l3.
	VXORPD Y0, Y0, Y0
	VMOVDQA Y8, Y1

	// Group 0: rows 0..3.
	VPMOVZXBQ (DX), Y2
	VPAND Y9, Y2, Y2
	VPADDQ Y1, Y2, Y2
	VPCMPEQQ Y3, Y3, Y3
	VGATHERQPD Y3, (SI)(Y2*8), Y4
	VADDPD Y4, Y0, Y0
	VPADDQ Y11, Y1, Y1

	// Group 1: rows 4..7. VGATHERQPD clobbers its mask, so Y3 is
	// re-armed before every gather.
	VPMOVZXBQ 4(DX), Y2
	VPAND Y9, Y2, Y2
	VPADDQ Y1, Y2, Y2
	VPCMPEQQ Y3, Y3, Y3
	VGATHERQPD Y3, (SI)(Y2*8), Y4
	VADDPD Y4, Y0, Y0
	VPADDQ Y11, Y1, Y1

	// Group 2: rows 8..11.
	VPMOVZXBQ 8(DX), Y2
	VPAND Y9, Y2, Y2
	VPADDQ Y1, Y2, Y2
	VPCMPEQQ Y3, Y3, Y3
	VGATHERQPD Y3, (SI)(Y2*8), Y4
	VADDPD Y4, Y0, Y0
	VPADDQ Y11, Y1, Y1

	// Group 3: rows 12..15.
	VPMOVZXBQ 12(DX), Y2
	VPAND Y9, Y2, Y2
	VPADDQ Y1, Y2, Y2
	VPCMPEQQ Y3, Y3, Y3
	VGATHERQPD Y3, (SI)(Y2*8), Y4
	VADDPD Y4, Y0, Y0

	ADDQ $16, DX

	// (l0+l1)+(l2+l3), left operand of each add as first source.
	VEXTRACTF128 $1, Y0, X2
	VPERMILPD $1, X0, X3
	VADDSD X3, X0, X5
	VPERMILPD $1, X2, X4
	VADDSD X4, X2, X4
	VADDSD X4, X5, X5
	VMOVSD X5, (R9)
	ADDQ $8, R9
	DECQ R10
	JNZ  mdEntry

mdDone:
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
