//go:build amd64 && !purego

package vector

// Declarations for the AVX2 kernels in asm_amd64.s. All four are leaf
// functions (NOSPLIT, no calls back into Go) and none retain their
// arguments, so go:noescape keeps callers' slices — including the
// stack-allocated single-entry out buffer in MinDistLookup16 — off the
// heap.

// simdSquaredED is the AVX2 form of the pinned SquaredED contract.
// Preconditions (checked by the exported wrapper): len(b) >= len(a).
//
//go:noescape
func simdSquaredED(a, b []float32) float64

// simdSquaredEDEarlyAbandon is the AVX2 form of the pinned
// SquaredEDEarlyAbandon contract, blockwise abandon included.
//
//go:noescape
func simdSquaredEDEarlyAbandon(a, b []float32, limit float64) float64

// simdMinDistBatch16 computes the w = 16 lower-bound kernel for
// len(out) summaries. Preconditions (checked by the exported wrappers):
// len(sax) >= 16*len(out), len(cells) >= 16*card, card a power of two.
//
//go:noescape
func simdMinDistBatch16(cells []float64, sax []uint8, card int, out []float64)
