package vector

import (
	"math"
	"math/rand"
	"testing"
)

// These tests pin the summation contract documented in the package
// comment: the exported kernels (SIMD where detected) must be
// bit-identical to the scalar oracle — checked via Float64bits so NaN
// payloads count — for every length around the 4-lane and 16-block
// boundaries, including special values.

// contractLengths covers 1 .. 2*16+1: every tail residue mod 4 and mod
// 16, the empty vector-loop case, and a couple of full blocks.
func contractLengths() []int {
	var ns []int
	for n := 1; n <= 33; n++ {
		ns = append(ns, n)
	}
	return append(ns, 64, 100, 256, 1000)
}

func specialF32(rng *rand.Rand) float32 {
	switch rng.Intn(10) {
	case 0:
		return float32(math.NaN())
	case 1:
		return float32(math.Inf(1))
	case 2:
		return float32(math.Inf(-1))
	case 3:
		return math.Float32frombits(1) // smallest denormal
	case 4:
		return -math.Float32frombits(rng.Uint32() & 0x7fffff) // denormal range
	case 5:
		return float32(math.Copysign(0, -1))
	case 6:
		return math.Float32frombits(rng.Uint32()) // arbitrary bit pattern
	default:
		return float32(rng.NormFloat64()) * 1000
	}
}

func specialVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = specialF32(rng)
	}
	return v
}

// bitsEq is the contract comparison: exact bits, except any NaN matches
// any NaN (payloads are unspecified — see the package comment).
func bitsEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestSquaredEDContractOddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range contractLengths() {
		for trial := 0; trial < 20; trial++ {
			a, b := specialVec(rng, n), specialVec(rng, n)
			got, want := SquaredED(a, b), ScalarSquaredED(a, b)
			if !bitsEq(got, want) {
				t.Fatalf("n=%d impl=%s: SquaredED=%x scalar=%x (%v vs %v)",
					n, Impl(), math.Float64bits(got), math.Float64bits(want), got, want)
			}
		}
	}
}

func TestEarlyAbandonContract(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range contractLengths() {
		for trial := 0; trial < 20; trial++ {
			a, b := specialVec(rng, n), specialVec(rng, n)
			for _, limit := range []float64{math.Inf(1), 0, 1, 100, 1e6, math.NaN(), math.Inf(-1)} {
				got := SquaredEDEarlyAbandon(a, b, limit)
				want := ScalarSquaredEDEarlyAbandon(a, b, limit)
				if !bitsEq(got, want) {
					t.Fatalf("n=%d limit=%v impl=%s: EA=%x scalar=%x",
						n, limit, Impl(), math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestEarlyAbandonInfEquivalence pins the guarantee conformance.go relies
// on: with limit = +Inf the early-abandon kernel returns exactly the same
// bits as the full distance, because both follow the same lane order.
func TestEarlyAbandonInfEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range contractLengths() {
		a, b := specialVec(rng, n), specialVec(rng, n)
		if got, want := SquaredEDEarlyAbandon(a, b, math.Inf(1)), SquaredED(a, b); !bitsEq(got, want) {
			t.Fatalf("n=%d impl=%s: EA(+Inf)=%v != SquaredED=%v", n, Impl(), got, want)
		}
	}
}

func TestMinDistContract(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, card := range []int{2, 4, 16, 64, 256} {
		cells := make([]float64, 16*card)
		for i := range cells {
			switch rng.Intn(8) {
			case 0:
				cells[i] = math.NaN()
			case 1:
				cells[i] = math.Inf(1)
			case 2:
				cells[i] = math.Float64frombits(rng.Uint64()) // incl. denormals
			default:
				cells[i] = rng.NormFloat64()
			}
		}
		for trial := 0; trial < 50; trial++ {
			sax := make([]uint8, 16)
			for i := range sax {
				// Hostile symbols beyond card must reduce modulo card, not
				// read out of bounds.
				sax[i] = uint8(rng.Intn(256))
			}
			got := MinDistLookup16(cells, sax, card)
			want := ScalarMinDistLookup16(cells, sax, card)
			if !bitsEq(got, want) {
				t.Fatalf("card=%d impl=%s: MinDistLookup16=%x scalar=%x",
					card, Impl(), math.Float64bits(got), math.Float64bits(want))
			}
		}
		// Batched form over a stretch of entries, against the batch oracle.
		const count = 23
		sax := make([]uint8, count*16)
		for i := range sax {
			sax[i] = uint8(rng.Intn(256))
		}
		got := make([]float64, count)
		want := make([]float64, count)
		MinDistBatch(cells, sax, 16, card, got)
		ScalarMinDistBatch(cells, sax, 16, card, want)
		for i := range got {
			if !bitsEq(got[i], want[i]) {
				t.Fatalf("card=%d batch[%d] impl=%s: %x vs %x",
					card, i, Impl(), math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestContractBothImpls re-runs the bit-identity checks with ForceScalar
// toggled, so on AVX2 machines a single test process exercises both
// implementations and their agreement with each other.
func TestContractBothImpls(t *testing.T) {
	defer ForceScalar(false)
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 3, 4, 15, 16, 17, 33, 256} {
		a, b := specialVec(rng, n), specialVec(rng, n)
		ForceScalar(false)
		fast := SquaredED(a, b)
		fastEA := SquaredEDEarlyAbandon(a, b, 10)
		ForceScalar(true)
		slow := SquaredED(a, b)
		slowEA := SquaredEDEarlyAbandon(a, b, 10)
		if !bitsEq(fast, slow) || !bitsEq(fastEA, slowEA) {
			t.Fatalf("n=%d: impls disagree: %v/%v vs %v/%v", n, fast, fastEA, slow, slowEA)
		}
	}
}
