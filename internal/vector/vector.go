// Package vector provides the vectorized distance kernels of the paper's
// SIMD usage (§III: "MESSI uses SIMD for calculating the distances of the
// index iSAX summaries from the query iSAX summary ... and the raw data
// series from the query data series").
//
// Go's standard toolchain exposes no SIMD intrinsics, so the kernels here
// are manually unrolled with independent accumulators — giving the compiler
// and CPU the same instruction-level parallelism that explicit AVX code
// gives the authors' C implementation. The semantics (and, where the
// accumulation order matters, the tolerance expectations) are documented on
// each kernel; the ablation benchmark BenchmarkAblationVectorKernels
// measures the speedup over the scalar reference implementations.
package vector

// SquaredED returns the squared Euclidean distance between two equal-length
// float32 vectors. The implementation is the plain single-accumulator loop:
// measured on the benchmark host it runs ~2× faster than the manually
// 8-way-unrolled variant (the Go compiler pipelines the simple loop better
// than the unroll with its float64 conversions) — see the kernel ablation
// in EXPERIMENTS.md. SquaredEDUnrolled preserves the unrolled form for
// that comparison.
func SquaredED(a, b []float32) float64 {
	_ = b[len(a)-1] // eliminate bounds checks in the loop
	var acc float64
	for i, av := range a {
		d := float64(av) - float64(b[i])
		acc += d * d
	}
	return acc
}

// SquaredEDUnrolled is the manually 8-way-unrolled kernel with 4
// independent accumulators — the literal transcription of the paper's
// SIMD-style distance code, kept for the kernel ablation. Its result can
// differ from SquaredED by floating-point reassociation only (relative
// error ~1e-15).
func SquaredEDUnrolled(a, b []float32) float64 {
	n := len(a)
	_ = b[n-1]
	var acc0, acc1, acc2, acc3 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		d4 := float64(a[i+4]) - float64(b[i+4])
		d5 := float64(a[i+5]) - float64(b[i+5])
		d6 := float64(a[i+6]) - float64(b[i+6])
		d7 := float64(a[i+7]) - float64(b[i+7])
		acc0 += d0*d0 + d4*d4
		acc1 += d1*d1 + d5*d5
		acc2 += d2*d2 + d6*d6
		acc3 += d3*d3 + d7*d7
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		acc0 += d * d
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// SquaredEDEarlyAbandon is SquaredED with an abandon check every 16
// elements: as soon as the partial sum exceeds limit the (partial) sum is
// returned. Used by the real-distance phases, where most candidates abandon
// within the first few blocks. Here the 4-accumulator unroll IS the fastest
// measured variant — the abandon checks already break the simple loop's
// pipelining, so the extra instruction-level parallelism pays.
func SquaredEDEarlyAbandon(a, b []float32, limit float64) float64 {
	n := len(a)
	_ = b[n-1]
	var acc0, acc1, acc2, acc3 float64
	i := 0
	for ; i+16 <= n; i += 16 {
		for j := i; j < i+16; j += 4 {
			d0 := float64(a[j]) - float64(b[j])
			d1 := float64(a[j+1]) - float64(b[j+1])
			d2 := float64(a[j+2]) - float64(b[j+2])
			d3 := float64(a[j+3]) - float64(b[j+3])
			acc0 += d0 * d0
			acc1 += d1 * d1
			acc2 += d2 * d2
			acc3 += d3 * d3
		}
		if (acc0+acc1)+(acc2+acc3) > limit {
			return (acc0 + acc1) + (acc2 + acc3)
		}
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		acc0 += d * d
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// MinDistLookup16 sums 16 table lookups — the per-series inner loop of the
// lower-bound scan over the SAX array when w = 16 (the paper's
// configuration). cells is the query table laid out row-major
// (segment × cardinality); sax is one 16-segment summary; card is the
// cardinality (row stride).
//
// The additions are kept in strict segment order: every batched lower
// bound in this package is BIT-IDENTICAL to the scalar
// isax.QueryTable.MinDistSAX accumulation (differential-fuzzed in
// internal/messi), so the batched and per-entry refinement paths make the
// same pruning decisions down to the last ulp. The unroll's win is the
// eliminated bounds checks and loop control, not reassociation — a
// multi-accumulator variant would be slightly faster but would round
// differently.
func MinDistLookup16(cells []float64, sax []uint8, card int) float64 {
	_ = sax[15]
	acc := cells[int(sax[0])]
	acc += cells[card+int(sax[1])]
	acc += cells[2*card+int(sax[2])]
	acc += cells[3*card+int(sax[3])]
	acc += cells[4*card+int(sax[4])]
	acc += cells[5*card+int(sax[5])]
	acc += cells[6*card+int(sax[6])]
	acc += cells[7*card+int(sax[7])]
	acc += cells[8*card+int(sax[8])]
	acc += cells[9*card+int(sax[9])]
	acc += cells[10*card+int(sax[10])]
	acc += cells[11*card+int(sax[11])]
	acc += cells[12*card+int(sax[12])]
	acc += cells[13*card+int(sax[13])]
	acc += cells[14*card+int(sax[14])]
	acc += cells[15*card+int(sax[15])]
	return acc
}

// MinDistBatch computes lower bounds for a batch of w-segment summaries laid
// out back-to-back in sax, writing one bound per summary into out. It
// dispatches to the unrolled 16-segment kernel when w == 16. Each bound is
// bit-identical to the per-entry isax.QueryTable.MinDistSAX value (see
// MinDistLookup16) — the contract the batched refinement hot path relies on.
func MinDistBatch(cells []float64, sax []uint8, w, card int, out []float64) {
	if w == 16 {
		for i := range out {
			out[i] = MinDistLookup16(cells, sax[i*16:i*16+16], card)
		}
		return
	}
	for i := range out {
		var acc float64
		row := sax[i*w : (i+1)*w]
		for j, s := range row {
			acc += cells[j*card+int(s)]
		}
		out[i] = acc
	}
}

// ScalarSquaredED is the straightforward sequential implementation, kept
// exported as the baseline for the kernel ablation benchmark and for
// differential tests against the unrolled kernels.
func ScalarSquaredED(a, b []float32) float64 {
	var acc float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}
