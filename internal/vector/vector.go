// Package vector provides the vectorized distance kernels of the paper's
// SIMD usage (§III: "MESSI uses SIMD for calculating the distances of the
// index iSAX summaries from the query iSAX summary ... and the raw data
// series from the query data series").
//
// # Implementation layers
//
// Every kernel exists twice: a pure-Go scalar implementation (the ORACLE:
// Scalar* functions, always compiled on every platform) and, on amd64
// without the purego build tag, a hand-written AVX2 assembly
// implementation. The exported kernels dispatch to the assembly when CPU
// feature detection (done once, at package init) found AVX2 support and
// ForceScalar has not been set; otherwise they run the oracle. Impl
// reports which implementation the next call will use.
//
// # The pinned summation contract
//
// The two implementations are BIT-IDENTICAL on every input — Inf and
// denormal values included — because both commit to one floating-point
// summation order, chosen so a 4-lane AVX2 register can implement it
// directly:
//
//   - Element i is accumulated into lane (i mod 4); lanes advance through
//     the input in element order, and every multiply is rounded before the
//     add consumes it (no fused multiply-add, on any platform).
//   - A result is produced by reducing the lanes as (l0+l1) + (l2+l3),
//     then folding any remaining tail elements (n mod 4) into the reduced
//     value sequentially.
//   - SquaredEDEarlyAbandon accumulates identically and additionally
//     performs the reduction after every 16 elements to compare against
//     the abandon limit; an abandoned call returns that partial reduction.
//     Because the check never perturbs the lanes, a call that never
//     abandons — any call with limit +Inf — returns the same bits as
//     SquaredED.
//   - MinDistLookup16 accumulates segment j's table cell into lane
//     (j mod 4), in segment order, and reduces the same way (tail-free:
//     w = 16 is a lane multiple). MinDistBatch at w == 16 is exactly that
//     kernel per entry; at any other width both implementations share the
//     plain sequential loop and no assembly is dispatched.
//
// The scalar oracle spells the product rounding out with explicit
// float64(d*d) conversions, which the Go spec defines as rounding points:
// without them the compiler may fuse the multiply-add on arm64/ppc64 and
// the oracle would stop matching itself across platforms, let alone the
// assembly. The conformance harness (internal/conformance) and the
// differential fuzz targets here and in internal/messi pin the contract:
// vectorized answers must stay bit-identical to the serial ground truth
// end to end.
//
// One carve-out, inherited from Go itself: when a result is NaN, its
// payload bits are unspecified. The Go spec does not define NaN payload
// propagation, and for a commutative add of two NaNs with different
// payloads the compiler is free to emit either operand order — x86 ADDSD
// returns its first source quieted, so the compiled oracle's payload
// choice is a register-allocation accident, not a semantic one. Both
// implementations are guaranteed to agree on WHETHER a result is NaN
// (NaN-ness is operand-order independent for every operation in these
// kernels); the tests and fuzzers therefore compare results with
// Float64bits but treat any NaN as equal to any NaN.
package vector

// SquaredED returns the squared Euclidean distance between two equal-length
// float32 vectors, accumulated in the pinned 4-lane order documented in the
// package comment. Panics if b is shorter than a.
func SquaredED(a, b []float32) float64 {
	_ = b[len(a)-1] // one bounds check; both implementations assume it
	if useSIMD() {
		return simdSquaredED(a, b)
	}
	return scalarSquaredED(a, b)
}

// SquaredEDEarlyAbandon is SquaredED with an abandon check every 16
// elements: as soon as the reduced partial sum exceeds limit, that partial
// sum is returned. Used by the real-distance phases, where most candidates
// abandon within the first few blocks. A call that never abandons (in
// particular limit = +Inf) returns bits identical to SquaredED — the
// property the conformance harness verifies answers against.
func SquaredEDEarlyAbandon(a, b []float32, limit float64) float64 {
	_ = b[len(a)-1]
	if useSIMD() {
		return simdSquaredEDEarlyAbandon(a, b, limit)
	}
	return scalarSquaredEDEarlyAbandon(a, b, limit)
}

// MinDistLookup16 sums 16 table lookups — the per-series inner loop of the
// lower-bound scan over the SAX array when w = 16 (the paper's
// configuration). cells is the query table laid out row-major
// (segment × cardinality); sax is one 16-segment summary; card is the
// cardinality (row stride), always a power of two.
//
// Accumulation follows the pinned 4-lane order (segment j lands in lane
// j mod 4; reduce (l0+l1)+(l2+l3)), so the batched and per-entry
// refinement paths make the same pruning decisions down to the last ulp.
// Symbols are reduced modulo card (a mask with card-1), making the kernel
// total: both implementations read the same cell for any input byte.
func MinDistLookup16(cells []float64, sax []uint8, card int) float64 {
	_ = sax[15]
	_ = cells[16*card-1]
	if useSIMD() {
		var out [1]float64
		simdMinDistBatch16(cells, sax[:16], card, out[:1])
		return out[0]
	}
	return scalarMinDistLookup16(cells, sax, card)
}

// MinDistBatch computes lower bounds for a batch of w-segment summaries laid
// out back-to-back in sax, writing one bound per summary into out. At
// w == 16 each bound is the MinDistLookup16 kernel (SIMD when available);
// other widths share one sequential scalar loop. Each bound is bit-identical
// to the per-entry isax.QueryTable.MinDistSAX value — the contract the
// batched refinement hot path relies on.
func MinDistBatch(cells []float64, sax []uint8, w, card int, out []float64) {
	if w == 16 {
		if len(out) == 0 {
			return
		}
		_ = sax[len(out)*16-1]
		_ = cells[16*card-1]
		if useSIMD() {
			simdMinDistBatch16(cells, sax, card, out)
			return
		}
		for i := range out {
			out[i] = scalarMinDistLookup16(cells, sax[i*16:i*16+16], card)
		}
		return
	}
	for i := range out {
		var acc float64
		row := sax[i*w : (i+1)*w]
		for j, s := range row {
			acc += cells[j*card+int(s)]
		}
		out[i] = acc
	}
}

// SquaredEDUnrolled is the manually 8-way-unrolled scalar kernel with 4
// independent accumulators — the literal transcription of the paper's
// SIMD-style distance code, kept for the kernel ablation benchmark. Its
// result can differ from the pinned contract by floating-point
// reassociation only (relative error ~1e-15).
func SquaredEDUnrolled(a, b []float32) float64 {
	n := len(a)
	_ = b[n-1]
	var acc0, acc1, acc2, acc3 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		d4 := float64(a[i+4]) - float64(b[i+4])
		d5 := float64(a[i+5]) - float64(b[i+5])
		d6 := float64(a[i+6]) - float64(b[i+6])
		d7 := float64(a[i+7]) - float64(b[i+7])
		acc0 += d0*d0 + d4*d4
		acc1 += d1*d1 + d5*d5
		acc2 += d2*d2 + d6*d6
		acc3 += d3*d3 + d7*d7
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		acc0 += d * d
	}
	return (acc0 + acc1) + (acc2 + acc3)
}
