package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestSquaredEDMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 8, 9, 15, 16, 17, 128, 256, 255} {
		a, b := randVec(rng, n), randVec(rng, n)
		want := ScalarSquaredED(a, b)
		if got := SquaredED(a, b); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("n=%d: SquaredED %v vs scalar %v", n, got, want)
		}
		if got := SquaredEDUnrolled(a, b); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("n=%d: unrolled %v vs scalar %v", n, got, want)
		}
	}
}

func TestSquaredEDZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randVec(rng, 64)
	if got := SquaredED(a, a); got != 0 {
		t.Errorf("SquaredED(a,a) = %v, want 0", got)
	}
}

func TestEarlyAbandonMatchesFullWhenUnderLimit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := randVec(r, n), randVec(r, n)
		full := SquaredED(a, b)
		got := SquaredEDEarlyAbandon(a, b, math.Inf(1))
		return math.Abs(got-full) <= 1e-9*math.Max(1, full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEarlyAbandonExceedsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := randVec(rng, 256), randVec(rng, 256)
		full := ScalarSquaredED(a, b)
		limit := full / 8
		got := SquaredEDEarlyAbandon(a, b, limit)
		if got <= limit {
			t.Fatalf("abandoned value %v must exceed limit %v", got, limit)
		}
	}
}

func TestMinDistLookup16(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const card = 256
	cells := make([]float64, 16*card)
	for i := range cells {
		cells[i] = rng.Float64()
	}
	sax := make([]uint8, 16)
	for i := range sax {
		sax[i] = uint8(rng.Intn(card))
	}
	got := MinDistLookup16(cells, sax, card)
	want := ScalarMinDistLookup16(cells, sax, card)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("MinDistLookup16 = %v, want %v (must be bit-identical to the pinned 4-lane sum)", got, want)
	}
	var seq float64
	for j, s := range sax {
		seq += cells[j*card+int(s)]
	}
	if math.Abs(got-seq) > 1e-12*math.Max(1, seq) {
		t.Fatalf("MinDistLookup16 = %v, sequential sum %v differ beyond reassociation tolerance", got, seq)
	}
}

func TestMinDistBatchGenericAndUnrolledAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const card = 256
	for _, w := range []int{8, 16} {
		cells := make([]float64, w*card)
		for i := range cells {
			cells[i] = rng.Float64()
		}
		const count = 37
		sax := make([]uint8, count*w)
		for i := range sax {
			sax[i] = uint8(rng.Intn(card))
		}
		out := make([]float64, count)
		MinDistBatch(cells, sax, w, card, out)
		for i := 0; i < count; i++ {
			var want float64
			if w == 16 {
				// w == 16 follows the pinned 4-lane contract.
				want = ScalarMinDistLookup16(cells, sax[i*16:i*16+16], card)
			} else {
				for j := 0; j < w; j++ {
					want += cells[j*card+int(sax[i*w+j])]
				}
			}
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("w=%d batch[%d] = %v, want %v (must be bit-identical to the contract order)", w, i, out[i], want)
			}
		}
	}
}
