// Package conformance is the randomized differential harness for the
// serving stack: a seeded generator drives an arbitrary interleaving of
// Build / Append / AppendBatch / AppendWithTTL / Delete / DeleteRange /
// ExpireBefore / Compact / Flush / Save / Load / Search / k-NN / DTW /
// approximate / sliding-window ops against a plain messi.Index AND a
// shard.Sharded instance holding identical content, asserting after every
// query that both answers are bit-identical to each other and to the
// internal/ucr serial scan over a mirror of everything landed so far.
//
// The mirror is the oracle: a flat collection grown in exactly the global
// position order both systems assign, plus a tombstone set and a pending
// TTL table mirroring the delete state, so "serial scan of the live
// mirror" is the ground truth every exactness claim in this repository
// reduces to. TTL expiry runs on a logical clock the harness owns — the
// index never reads wall time — so runs are deterministic per seed.
// Equality is exact (not tolerance-based) because every system shares one
// distance kernel — see ucr.Scan. Some exact queries also carry a random
// tenant ID: tenancy only moves scheduling, so answers must be
// bit-identical with or without it.
//
// Every (re)build of the sharded instance randomly chooses among the
// zero-copy view-based base split, the legacy materialized copy
// (shard.Options.CopyBase) and the out-of-core cold tier
// (shard.Options.ColdStorage, with a deliberately tiny block cache and a
// random hot/cold shard placement so eviction, cache misses and the
// mixed-tier path all run under the op stream). Answers must be
// bit-identical however the base is placed, so the harness differentially
// verifies view-based, copied and device-backed indexing against each
// other and the oracle.
//
// The harness is deterministic per seed: a failure reproduces from its
// seed and op count alone. It runs as a normal test with fixed seeds
// (conformance_test.go) and scales to long runs via -conformance.ops.
package conformance

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/shard"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
	"dsidx/internal/vector"
)

// Config shapes one harness run.
type Config struct {
	// Seed fixes the op sequence, the data and the queries.
	Seed int64
	// Ops is the number of randomized operations to execute.
	Ops int
	// Shards is the sharded instance's partition count.
	Shards int
	// Policy routes the sharded instance (nil means round-robin).
	Policy shard.Policy
	// BaseSeries and SeriesLen shape the initial build (defaults 256/64).
	BaseSeries int
	SeriesLen  int
	// MergeThreshold is the per-shard delta size triggering background
	// merges (default 192 — small, so merges interleave with the ops).
	MergeThreshold int
	// ForceAutoTune turns the self-tuning feedback loop on for every
	// instance. When false, each instance still tosses AutoTune at random
	// — tuning only moves performance knobs, so answers must stay
	// bit-identical with it on, off, or mixed across instances.
	ForceAutoTune bool
	// Faults switches the harness into fault-injection mode: the sharded
	// instance's cold tier sits on a storage.FaultStore, and a new op
	// randomly installs transient/permanent fault plans, heals the device
	// and re-stages quarantined shards. The contract under faults: every
	// query that COMPLETES is still bit-identical to the serial oracle;
	// every query that fails does so with the typed
	// shard.ErrShardsUnavailable (never an untyped error, never a process
	// panic); and after heal + re-stage, answers are bit-identical again.
	Faults bool
}

func (c Config) normalize() Config {
	if c.BaseSeries <= 0 {
		c.BaseSeries = 256
	}
	if c.SeriesLen <= 0 {
		c.SeriesLen = 64
	}
	if c.MergeThreshold <= 0 {
		c.MergeThreshold = 192
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// harness holds the two systems under test plus the oracle mirror.
type harness struct {
	t   testing.TB
	cfg Config
	rng *rand.Rand
	gen gen.Generator
	seq int64 // next fresh series index from the generator

	mirror *series.Collection // oracle: all landed series in global order
	dead   map[int]bool       // oracle: tombstoned global positions
	ttls   map[int]int64      // oracle: pending TTL deadlines by position
	clock  int64              // logical clock driving ExpireBefore
	base   *series.Collection // the collection both systems were built over
	qpool  *series.Collection // far-from-everything query series
	plain  *messi.Index
	shrd   *shard.Sharded

	// Fired-op counters: a run long enough to claim coverage must have
	// actually exercised every workload dimension.
	deletes, rangeDeletes, ttlAppends, expired, windows, tenanted int

	// Fault-mode state: the injecting store under the sharded instance's
	// cold tier (nil outside fault mode), and counters proving both sides
	// of the contract were actually exercised.
	fault       *storage.FaultStore
	typedFails  int
	faultChecks int
}

// Run executes cfg.Ops randomized operations, failing t on the first
// divergence. It is single-threaded by design — the interleaving under
// test is the op order, not goroutine scheduling (the race-stress suites
// cover that axis) — so every query observes the full mirror.
func Run(t testing.TB, cfg Config) {
	cfg = cfg.normalize()
	h := &harness{
		t:   t,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		gen: gen.Generator{Kind: gen.Synthetic, Length: cfg.SeriesLen, Seed: cfg.Seed},
	}
	base := h.gen.Collection(cfg.BaseSeries)
	h.seq = int64(cfg.BaseSeries)
	h.qpool = h.gen.Queries(64)
	h.mirror = series.NewCollection(0, cfg.SeriesLen)
	h.dead = make(map[int]bool)
	h.ttls = make(map[int]int64)
	for i := 0; i < base.Len(); i++ {
		h.mirror.Append(base.At(i))
	}
	h.build(base)
	defer h.close()

	queries := 0
	for op := 0; op < cfg.Ops; op++ {
		// Fault mode folds device chaos into the stream: roughly every
		// tenth op flips the fault plan or heals and re-stages.
		if cfg.Faults && h.rng.Intn(10) == 0 {
			h.opFault()
		}
		switch p := h.rng.Intn(100); {
		case p < 30:
			h.opAppend()
		case p < 40:
			h.opAppendBatch()
		case p < 46:
			h.opTTLAppend()
		case p < 51:
			h.opDelete()
		case p < 54:
			h.opDeleteRange()
		case p < 57:
			h.opTTLExpire()
		case p < 59:
			h.opCompact()
		case p < 62:
			h.opFlush()
		case p < 64:
			h.opSaveLoad()
		case p < 65:
			h.opRebuild()
		case p < 78:
			h.opSearch()
			queries++
		case p < 85:
			h.opSearchWindow()
			queries++
		case p < 92:
			h.opKNN()
			queries++
		case p < 96:
			h.opDTW()
			queries++
		default:
			h.opApproximate()
			queries++
		}
		if h.t.Failed() {
			h.t.Fatalf("conformance: diverged at op %d (seed %d, shards %d)", op, cfg.Seed, cfg.Shards)
		}
		if h.plain.Count() != h.mirror.Len() || h.shrd.Count() != h.mirror.Len() {
			h.t.Fatalf("conformance: op %d: counts diverged: plain %d, sharded %d, mirror %d",
				op, h.plain.Count(), h.shrd.Count(), h.mirror.Len())
		}
		if h.plain.Tombstoned() != len(h.dead) || h.shrd.Tombstoned() != len(h.dead) {
			h.t.Fatalf("conformance: op %d: tombstones diverged: plain %d, sharded %d, mirror %d",
				op, h.plain.Tombstoned(), h.shrd.Tombstoned(), len(h.dead))
		}
	}
	// A run that never queried verified nothing — the op mix forbids it at
	// any plausible op count.
	if cfg.Ops >= 100 && queries == 0 {
		h.t.Fatal("conformance: no query ops executed")
	}
	// Every workload dimension must actually have fired: a long run that
	// never deleted, never expired a TTL, never windowed or never carried a
	// tenant verified less than it claims. The op mix makes each
	// near-certain at any plausible op count.
	if cfg.Ops >= 300 {
		for name, n := range map[string]int{
			"delete":       h.deletes,
			"delete-range": h.rangeDeletes,
			"ttl-append":   h.ttlAppends,
			"ttl-expired":  h.expired,
			"window-query": h.windows,
			"tenant-query": h.tenanted,
		} {
			if n == 0 {
				h.t.Fatalf("conformance: op kind %q never fired in %d ops", name, cfg.Ops)
			}
		}
	}
	// A fault-mode run must have exercised both sides of the contract:
	// queries completed under injection (checked bit-identical above) and
	// queries failed with the typed error. The op mix makes both
	// near-certain at any plausible op count.
	if cfg.Faults && cfg.Ops >= 300 {
		if h.faultChecks == 0 {
			h.t.Fatal("conformance: fault mode never queried under an active plan")
		}
		if h.typedFails == 0 {
			h.t.Fatal("conformance: fault mode produced no typed query failures")
		}
	}
}

func (h *harness) build(base *series.Collection) {
	cfg := core.Config{LeafCapacity: 32}
	opt := messi.Options{MergeThreshold: h.cfg.MergeThreshold}
	h.tossAutoTune(&opt)
	plain, err := messi.Build(base, cfg, opt)
	if err != nil {
		h.t.Fatal(err)
	}
	sopt := shard.Options{Shards: h.cfg.Shards, Policy: h.cfg.Policy, Options: opt}
	h.tossAutoTune(&sopt.Options)
	// Toss the base placement: zero-copy views (the default), materialized
	// flat copies, or the out-of-core cold tier. Answers must be
	// bit-identical whichever way the base is stored, so the whole op
	// stream differentially verifies all three paths against each other.
	h.tossPlacement(&sopt, base)
	shrd, err := shard.Build(base, cfg, sopt)
	if err != nil {
		h.t.Fatal(err)
	}
	h.base, h.plain, h.shrd = base, plain, shrd
}

// tossAutoTune decides each instance's AutoTune setting: forced on by the
// config, or tossed per instance so runs differentially verify tuned
// against untuned copies over the same op stream. AutoTune only moves the
// live probe-leaf count and merge threshold — performance knobs an exact
// search answers identically under — so a divergence here means tuning
// broke the exactness contract.
func (h *harness) tossAutoTune(opt *messi.Options) {
	opt.AutoTune = h.cfg.ForceAutoTune || h.rng.Intn(2) == 1
}

// tossPlacement randomly picks how the sharded instance stores its base
// values: zero-copy views, materialized copies, or the device-backed cold
// tier. The cold configuration uses a cache far smaller than the data
// (16 KiB, 8-series blocks) so evictions and misses actually happen, and
// half the time assigns tiers per shard at random (always at least one
// cold) to exercise the mixed hot/cold path.
//
// In fault mode the cold tier is mandatory and its store is a
// storage.FaultStore (healed at build time — staging and construction run
// on a healthy device, like the experiments' dataset staging), with base
// the hot re-stage source so Restage can route around a dead device.
func (h *harness) tossPlacement(opt *shard.Options, base *series.Collection) {
	if h.cfg.Faults {
		h.fault = storage.NewFaultStore(storage.NewMemStore(), storage.FaultPlan{})
		first := true
		cs := &shard.ColdStorage{
			// The build's cold tier lands on the injecting store;
			// re-stages get genuinely fresh stores.
			NewStore: func() (storage.Store, error) {
				if first {
					first = false
					return h.fault, nil
				}
				return storage.NewMemStore(), nil
			},
			CacheBytes:  16 << 10,
			BlockSeries: 8,
			Retry:       storage.RetryPolicy{Sleep: func(time.Duration) {}},
			Source:      base,
		}
		h.tossColdPlacement(cs)
		opt.ColdStorage = cs
		opt.QuarantineAfter = 2
		return
	}
	switch h.rng.Intn(3) {
	case 0: // zero-copy views — the default
	case 1:
		opt.CopyBase = true
	case 2:
		cs := &shard.ColdStorage{CacheBytes: 16 << 10, BlockSeries: 8}
		h.tossColdPlacement(cs)
		opt.ColdStorage = cs
	}
}

// tossColdPlacement half the time assigns tiers per shard at random
// (always at least one cold) to exercise the mixed hot/cold path; the
// other half leaves Cold nil, placing every shard cold.
func (h *harness) tossColdPlacement(cs *shard.ColdStorage) {
	if h.rng.Intn(2) == 0 {
		cold := make([]bool, h.cfg.Shards)
		for i := range cold {
			cold[i] = h.rng.Intn(2) == 0
		}
		cold[h.rng.Intn(len(cold))] = true
		cs.Cold = func(si int) bool { return cold[si] }
	}
}

func (h *harness) close() {
	h.plain.Close()
	h.shrd.Close()
}

// fresh returns the next never-seen series from the deterministic
// generator, so landed content is duplicate-free and nearest neighbors are
// unique — the precondition for comparing positions, not just distances.
func (h *harness) fresh() series.Series {
	s := h.gen.Series(h.seq)
	h.seq++
	return s
}

// query picks a query series: usually a perturbed landed member (so the
// pruning regime matches dense collections), sometimes a fresh series far
// from everything.
func (h *harness) query() series.Series {
	if h.rng.Intn(5) == 0 {
		return h.qpool.At(h.rng.Intn(h.qpool.Len()))
	}
	src := h.mirror.At(h.rng.Intn(h.mirror.Len()))
	q := src.Clone()
	for i := range q {
		q[i] += float32(h.rng.NormFloat64() * 0.05)
	}
	return q
}

func (h *harness) opAppend() {
	s := h.fresh()
	g := h.mirror.Append(s)
	p1, err := h.plain.Append(s)
	if err != nil {
		h.t.Fatal(err)
	}
	p2, err := h.shrd.Append(s)
	if err != nil {
		h.t.Fatal(err)
	}
	if p1 != g || p2 != g {
		h.t.Fatalf("append landed at plain %d / sharded %d, mirror says %d", p1, p2, g)
	}
}

func (h *harness) opAppendBatch() {
	n := 2 + h.rng.Intn(8)
	ss := make([]series.Series, n)
	want := h.mirror.Len()
	for i := range ss {
		ss[i] = h.fresh()
		h.mirror.Append(ss[i])
	}
	p1, err := h.plain.AppendBatch(ss)
	if err != nil {
		h.t.Fatal(err)
	}
	p2, err := h.shrd.AppendBatch(ss)
	if err != nil {
		h.t.Fatal(err)
	}
	if p1 != want || p2 != want {
		h.t.Fatalf("batch landed at plain %d / sharded %d, mirror says %d", p1, p2, want)
	}
}

// opTTLAppend lands a fresh series with a deadline a few logical ticks
// ahead, so later opTTLExpire calls actually reap it mid-stream.
func (h *harness) opTTLAppend() {
	s := h.fresh()
	deadline := h.clock + 1 + int64(h.rng.Intn(5))
	g := h.mirror.Len()
	h.mirror.Append(s)
	p1, err := h.plain.AppendWithTTL(s, deadline)
	if err != nil {
		h.t.Fatal(err)
	}
	p2, err := h.shrd.AppendWithTTL(s, deadline)
	if err != nil {
		h.t.Fatal(err)
	}
	if p1 != g || p2 != g {
		h.t.Fatalf("ttl append landed at plain %d / sharded %d, mirror says %d", p1, p2, g)
	}
	h.ttls[g] = deadline
	h.ttlAppends++
}

// opDelete tombstones one random landed position — sometimes one already
// deleted, so the newly-deleted report is verified both ways.
func (h *harness) opDelete() {
	if h.mirror.Len() == 0 {
		return
	}
	pos := h.rng.Intn(h.mirror.Len())
	wantNew := !h.dead[pos]
	ok1, err := h.plain.Delete(pos)
	if err != nil {
		h.t.Fatal(err)
	}
	ok2, err := h.shrd.Delete(pos)
	if err != nil {
		h.t.Fatal(err)
	}
	if ok1 != wantNew || ok2 != wantNew {
		h.t.Fatalf("delete #%d: newly plain %v / sharded %v, mirror says %v", pos, ok1, ok2, wantNew)
	}
	h.dead[pos] = true
	h.deletes++
}

// opDeleteRange tombstones a small random range, which may straddle the
// base/append boundary, overlap earlier deletes, or be empty.
func (h *harness) opDeleteRange() {
	lo := h.rng.Intn(h.mirror.Len() + 1)
	hi := lo + h.rng.Intn(6)
	if hi > h.mirror.Len() {
		hi = h.mirror.Len()
	}
	want := 0
	for p := lo; p < hi; p++ {
		if !h.dead[p] {
			want++
		}
	}
	n1, err := h.plain.DeleteRange(lo, hi)
	if err != nil {
		h.t.Fatal(err)
	}
	n2, err := h.shrd.DeleteRange(lo, hi)
	if err != nil {
		h.t.Fatal(err)
	}
	if n1 != want || n2 != want {
		h.t.Fatalf("delete range [%d, %d): newly plain %d / sharded %d, mirror says %d", lo, hi, n1, n2, want)
	}
	for p := lo; p < hi; p++ {
		h.dead[p] = true
	}
	h.rangeDeletes++
}

// opTTLExpire advances the logical clock and reaps every deadline it
// passed, verifying both systems report exactly the mirror's count of
// newly expired series (TTLs on already-deleted positions expire silently).
func (h *harness) opTTLExpire() {
	h.clock += int64(1 + h.rng.Intn(3))
	want := 0
	for pos, deadline := range h.ttls {
		if deadline > h.clock {
			continue
		}
		if !h.dead[pos] {
			want++
			h.dead[pos] = true
		}
		delete(h.ttls, pos)
	}
	n1 := h.plain.ExpireBefore(h.clock)
	n2 := h.shrd.ExpireBefore(h.clock)
	if n1 != want || n2 != want {
		h.t.Fatalf("expire at %d: plain %d / sharded %d, mirror says %d", h.clock, n1, n2, want)
	}
	h.expired += want
}

// opCompact forces the tombstone sweep on both systems; every later query
// verifies answers are unchanged by it.
func (h *harness) opCompact() {
	h.plain.Compact()
	h.shrd.Compact()
}

func (h *harness) opFlush() {
	h.plain.Flush()
	h.shrd.Flush()
	if p := h.plain.Pending(); p != 0 {
		h.t.Fatalf("plain pending %d after Flush", p)
	}
	if p := h.shrd.Pending(); p != 0 {
		h.t.Fatalf("sharded pending %d after Flush", p)
	}
}

// opSaveLoad round-trips both systems through their persistence formats
// and continues the run on the decoded copies, so every later op also
// verifies the loaded state.
func (h *harness) opSaveLoad() {
	// Maintenance runs on a healthy device: a re-encode with a dead store
	// is out of scope (and a fresh decode re-stages the cold tier anyway).
	h.opHeal()
	opt := messi.Options{MergeThreshold: h.cfg.MergeThreshold}
	h.tossAutoTune(&opt)
	enc := h.plain.Encode()
	plain2, err := messi.Decode(enc, h.base, opt)
	if err != nil {
		h.t.Fatalf("plain decode: %v", err)
	}
	senc := h.shrd.Encode()
	// The loaded copy re-tosses the base placement (views / copies / cold
	// tier) independently of the saved instance's choice: persistence is
	// backing-agnostic, so any combination must keep answering identically.
	sopt := shard.Options{Options: opt}
	h.tossAutoTune(&sopt.Options)
	h.tossPlacement(&sopt, h.base)
	shrd2, err := shard.Decode(senc, h.base, sopt)
	if err != nil {
		plain2.Close()
		h.t.Fatalf("sharded decode: %v", err)
	}
	// No byte-identical re-encode assertion here: Decode schedules a
	// background merge when a restored delta already exceeds the (small)
	// threshold, which can legitimately advance the merged split before a
	// re-encode — byte identity under quiesced merges is covered by the
	// persistence unit tests and FuzzShardedPersistRoundTrip. The harness
	// asserts the part that must hold regardless of merge timing: every
	// subsequent op answers identically on the decoded copies.
	h.close()
	h.plain, h.shrd = plain2, shrd2
}

// opRebuild rebuilds both systems from scratch over a snapshot of the
// mirror — the landed content becomes the new base collection, exercising
// the build-time split over previously appended series.
func (h *harness) opRebuild() {
	h.opHeal() // builds stage onto a healthy device
	base := series.NewCollection(0, h.cfg.SeriesLen)
	for i := 0; i < h.mirror.Len(); i++ {
		base.Append(h.mirror.At(i))
	}
	h.close()
	h.build(base)
	// A from-scratch rebuild has no delete state; re-apply the mirror's
	// tombstones (now all base positions — exercising base-side deletes)
	// and pending TTL deadlines.
	for pos := range h.dead {
		if _, err := h.plain.Delete(pos); err != nil {
			h.t.Fatal(err)
		}
		if _, err := h.shrd.Delete(pos); err != nil {
			h.t.Fatal(err)
		}
	}
	for pos, deadline := range h.ttls {
		if err := h.plain.SetTTL(pos, deadline); err != nil {
			h.t.Fatal(err)
		}
		if err := h.shrd.SetTTL(pos, deadline); err != nil {
			h.t.Fatal(err)
		}
	}
}

// isDead is the oracle's tombstone predicate.
func (h *harness) isDead(pos int) bool { return h.dead[pos] }

func (h *harness) opSearch() {
	q := h.query()
	// A third of exact searches carry a random tenant ID: tenancy touches
	// only admission and pool scheduling, so the answer must be
	// bit-identical with or without it.
	scope := messi.FullScope
	if h.rng.Intn(3) == 0 {
		scope.Tenant = []string{"tenant-a", "tenant-b"}[h.rng.Intn(2)]
		h.tenanted++
	}
	want := ucr.ScanLive(h.mirror, q, 0, h.isDead)
	got, st, err := h.plain.SearchScoped(q, 0, scope)
	if err != nil {
		h.t.Fatal(err)
	}
	if st.Observed != h.mirror.Len() {
		h.t.Fatalf("observed plain %d, mirror has %d", st.Observed, h.mirror.Len())
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		h.t.Errorf("1-NN: plain (#%d, %v) != serial (#%d, %v)", got.Pos, got.Dist, want.Pos, want.Dist)
	}
	sgot, sst, err := h.shrd.SearchScoped(q, 0, scope)
	if h.shardErr("1-NN", err) {
		return
	}
	if sst.Observed != h.mirror.Len() {
		h.t.Fatalf("observed sharded %d, mirror has %d", sst.Observed, h.mirror.Len())
	}
	if sgot.Pos != want.Pos || sgot.Dist != want.Dist {
		h.t.Errorf("1-NN: sharded (#%d, %v) != serial (#%d, %v)", sgot.Pos, sgot.Dist, want.Pos, want.Dist)
	}
}

// opSearchWindow queries the most recent n landed series — sometimes a
// window wider than everything landed (degenerating to a full search),
// sometimes a thin recent slice — and compares both systems against the
// serial scan of exactly that live suffix.
func (h *harness) opSearchWindow() {
	q := h.query()
	n := 1 + h.rng.Intn(h.mirror.Len()+8)
	tenant := ""
	if h.rng.Intn(4) == 0 {
		tenant = "tenant-w"
		h.tenanted++
	}
	want := ucr.ScanLive(h.mirror, q, h.mirror.Len()-n, h.isDead)
	got, _, err := h.plain.SearchWindowTenant(q, n, 0, tenant)
	if err != nil {
		h.t.Fatal(err)
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		h.t.Errorf("window(n=%d): plain (#%d, %v) != serial (#%d, %v)", n, got.Pos, got.Dist, want.Pos, want.Dist)
	}
	sgot, _, err := h.shrd.SearchWindowTenant(q, n, 0, tenant)
	if h.shardErr("window", err) {
		return
	}
	if sgot.Pos != want.Pos || sgot.Dist != want.Dist {
		h.t.Errorf("window(n=%d): sharded (#%d, %v) != serial (#%d, %v)", n, sgot.Pos, sgot.Dist, want.Pos, want.Dist)
	}
	h.windows++
}

func (h *harness) opKNN() {
	q := h.query()
	k := 1 + h.rng.Intn(6)
	want := ucr.ScanLiveKNN(h.mirror, q, k, 0, h.isDead)
	got, _, err := h.plain.SearchKNN(q, k, 0)
	if err != nil {
		h.t.Fatal(err)
	}
	if len(got) != len(want) {
		h.t.Fatalf("k-NN sizes: plain %d, serial %d", len(got), len(want))
	}
	for r := range want {
		if got[r].Pos != want[r].Pos || got[r].Dist != want[r].Dist {
			h.t.Errorf("k-NN rank %d: plain (#%d, %v) != serial (#%d, %v)",
				r, got[r].Pos, got[r].Dist, want[r].Pos, want[r].Dist)
		}
	}
	sgot, _, err := h.shrd.SearchKNN(q, k, 0)
	if h.shardErr("k-NN", err) {
		return
	}
	if len(sgot) != len(want) {
		h.t.Fatalf("k-NN sizes: sharded %d, serial %d", len(sgot), len(want))
	}
	for r := range want {
		if sgot[r].Pos != want[r].Pos || sgot[r].Dist != want[r].Dist {
			h.t.Errorf("k-NN rank %d: sharded (#%d, %v) != serial (#%d, %v)",
				r, sgot[r].Pos, sgot[r].Dist, want[r].Pos, want[r].Dist)
		}
	}
}

func (h *harness) opDTW() {
	q := h.query()
	w := h.rng.Intn(6)
	want := ucr.ScanLiveDTW(h.mirror, q, w, 0, h.isDead)
	got, _, err := h.plain.SearchDTW(q, w, 0)
	if err != nil {
		h.t.Fatal(err)
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		h.t.Errorf("DTW(w=%d): plain (#%d, %v) != serial (#%d, %v)", w, got.Pos, got.Dist, want.Pos, want.Dist)
	}
	sgot, _, err := h.shrd.SearchDTW(q, w, 0)
	if h.shardErr("DTW", err) {
		return
	}
	if sgot.Pos != want.Pos || sgot.Dist != want.Dist {
		h.t.Errorf("DTW(w=%d): sharded (#%d, %v) != serial (#%d, %v)", w, sgot.Pos, sgot.Dist, want.Pos, want.Dist)
	}
}

// opApproximate checks the approximate contract on both systems: the
// reported position is in range, its reported distance is that position's
// true distance, and it upper-bounds the exact answer.
func (h *harness) opApproximate() {
	q := h.query()
	exact := ucr.ScanLive(h.mirror, q, 0, h.isDead)
	for name, search := range map[string]func() (core.Result, error){
		"plain":   func() (core.Result, error) { return h.plain.SearchApproximate(q) },
		"sharded": func() (core.Result, error) { return h.shrd.SearchApproximate(q) },
	} {
		r, err := search()
		if name == "sharded" && h.shardErr("approx", err) {
			continue
		}
		if err != nil {
			h.t.Fatal(err)
		}
		if r.Pos < 0 {
			// No answer is within the approximate contract once deletes
			// exist: the probed leaves (a bounded set) may all be
			// tombstoned even while live series sit elsewhere. With no
			// deletes a non-empty index must always answer.
			if exact.Pos >= 0 && len(h.dead) == 0 {
				h.t.Errorf("%s approx returned no answer over a live collection", name)
			}
			continue
		}
		if exact.Pos < 0 {
			// Nothing is live; an approximate answer would have to name a
			// deleted series.
			h.t.Errorf("%s approx answered #%d with nothing live", name, r.Pos)
			continue
		}
		if int(r.Pos) >= h.mirror.Len() {
			h.t.Errorf("%s approx position %d out of range [0, %d)", name, r.Pos, h.mirror.Len())
			continue
		}
		if h.dead[int(r.Pos)] {
			h.t.Errorf("%s approx answered deleted series #%d", name, r.Pos)
			continue
		}
		if r.Dist < exact.Dist {
			h.t.Errorf("%s approx distance %v below exact %v", name, r.Dist, exact.Dist)
		}
		if d := vector.SquaredEDEarlyAbandon(q, h.mirror.At(int(r.Pos)), math.Inf(1)); d != r.Dist {
			h.t.Errorf("%s approx reports %v for #%d, true distance %v", name, r.Dist, r.Pos, d)
		}
	}
}

// shardErr handles a sharded query's error under fault mode: a nil error
// (query completed, caller compares it against the oracle) returns false;
// the typed shards-unavailable failure is counted and tolerated; anything
// else — or any error outside fault mode — is fatal. Every query issued
// while a fault plan is active also counts toward faultChecks, so the run
// can prove injection actually intersected the query stream.
func (h *harness) shardErr(op string, err error) (failed bool) {
	if h.fault != nil && h.fault.Plan().Active() {
		h.faultChecks++
	}
	if err == nil {
		return false
	}
	if h.fault == nil {
		h.t.Fatalf("%s: sharded: %v", op, err)
	}
	var su *shard.ErrShardsUnavailable
	if !errors.As(err, &su) {
		h.t.Fatalf("%s: sharded failed with an untyped error under faults: %v", op, err)
	}
	if len(su.Shards) == 0 {
		h.t.Fatalf("%s: ErrShardsUnavailable lists no shards: %v", op, err)
	}
	h.typedFails++
	return true
}

// opFault mutates the injected fault plan: heal the device (and re-stage
// any quarantined shards, after which answers must be bit-identical
// again), install a transient plan (retries mask most of it; exhaustion
// produces typed failures), or kill a byte range permanently (driving
// quarantine).
func (h *harness) opFault() {
	if h.fault == nil {
		return
	}
	switch h.rng.Intn(4) {
	case 0:
		h.opHeal()
	case 1:
		h.fault.SetPlan(storage.FaultPlan{
			Seed:           h.rng.Int63(),
			TransientProb:  0.1 + 0.4*h.rng.Float64(),
			TransientBurst: h.rng.Intn(3),
			LatencyProb:    0.05,
			Latency:        50 * time.Microsecond,
		})
	default:
		size := h.fault.Size()
		if size == 0 {
			return
		}
		start := h.rng.Int63n(size)
		end := start + 1 + h.rng.Int63n(size-start)
		h.fault.SetPlan(storage.FaultPlan{
			Seed:            h.rng.Int63(),
			PermanentRanges: []storage.Range{{Start: start, End: end}},
		})
	}
}

// opHeal clears the fault plan and re-stages every quarantined shard onto
// a fresh store, restoring full service; subsequent query ops assert the
// answers are bit-identical to the oracle again.
func (h *harness) opHeal() {
	if h.fault == nil {
		return
	}
	h.fault.Heal()
	for _, si := range h.shrd.Health().Quarantined {
		if err := h.shrd.Restage(si); err != nil {
			h.t.Fatalf("restage shard %d: %v", si, err)
		}
	}
	if q := h.shrd.Health().Quarantined; len(q) != 0 {
		h.t.Fatalf("shards %v still unavailable after heal + restage", q)
	}
}
