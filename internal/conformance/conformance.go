// Package conformance is the randomized differential harness for the
// serving stack: a seeded generator drives an arbitrary interleaving of
// Build / Append / AppendBatch / Flush / Save / Load / Search / k-NN / DTW
// / approximate ops against a plain messi.Index AND a shard.Sharded
// instance holding identical content, asserting after every query that
// both answers are bit-identical to each other and to the internal/ucr
// serial scan over a mirror of everything landed so far.
//
// The mirror is the oracle: a flat collection grown in exactly the global
// position order both systems assign, so "serial scan of the mirror" is
// the ground truth every exactness claim in this repository reduces to.
// Equality is exact (not tolerance-based) because every system shares one
// distance kernel — see ucr.Scan.
//
// Every (re)build of the sharded instance randomly chooses among the
// zero-copy view-based base split, the legacy materialized copy
// (shard.Options.CopyBase) and the out-of-core cold tier
// (shard.Options.ColdStorage, with a deliberately tiny block cache and a
// random hot/cold shard placement so eviction, cache misses and the
// mixed-tier path all run under the op stream). Answers must be
// bit-identical however the base is placed, so the harness differentially
// verifies view-based, copied and device-backed indexing against each
// other and the oracle.
//
// The harness is deterministic per seed: a failure reproduces from its
// seed and op count alone. It runs as a normal test with fixed seeds
// (conformance_test.go) and scales to long runs via -conformance.ops.
package conformance

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/shard"
	"dsidx/internal/storage"
	"dsidx/internal/ucr"
	"dsidx/internal/vector"
)

// Config shapes one harness run.
type Config struct {
	// Seed fixes the op sequence, the data and the queries.
	Seed int64
	// Ops is the number of randomized operations to execute.
	Ops int
	// Shards is the sharded instance's partition count.
	Shards int
	// Policy routes the sharded instance (nil means round-robin).
	Policy shard.Policy
	// BaseSeries and SeriesLen shape the initial build (defaults 256/64).
	BaseSeries int
	SeriesLen  int
	// MergeThreshold is the per-shard delta size triggering background
	// merges (default 192 — small, so merges interleave with the ops).
	MergeThreshold int
	// ForceAutoTune turns the self-tuning feedback loop on for every
	// instance. When false, each instance still tosses AutoTune at random
	// — tuning only moves performance knobs, so answers must stay
	// bit-identical with it on, off, or mixed across instances.
	ForceAutoTune bool
	// Faults switches the harness into fault-injection mode: the sharded
	// instance's cold tier sits on a storage.FaultStore, and a new op
	// randomly installs transient/permanent fault plans, heals the device
	// and re-stages quarantined shards. The contract under faults: every
	// query that COMPLETES is still bit-identical to the serial oracle;
	// every query that fails does so with the typed
	// shard.ErrShardsUnavailable (never an untyped error, never a process
	// panic); and after heal + re-stage, answers are bit-identical again.
	Faults bool
}

func (c Config) normalize() Config {
	if c.BaseSeries <= 0 {
		c.BaseSeries = 256
	}
	if c.SeriesLen <= 0 {
		c.SeriesLen = 64
	}
	if c.MergeThreshold <= 0 {
		c.MergeThreshold = 192
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// harness holds the two systems under test plus the oracle mirror.
type harness struct {
	t   testing.TB
	cfg Config
	rng *rand.Rand
	gen gen.Generator
	seq int64 // next fresh series index from the generator

	mirror *series.Collection // oracle: all landed series in global order
	base   *series.Collection // the collection both systems were built over
	qpool  *series.Collection // far-from-everything query series
	plain  *messi.Index
	shrd   *shard.Sharded

	// Fault-mode state: the injecting store under the sharded instance's
	// cold tier (nil outside fault mode), and counters proving both sides
	// of the contract were actually exercised.
	fault       *storage.FaultStore
	typedFails  int
	faultChecks int
}

// Run executes cfg.Ops randomized operations, failing t on the first
// divergence. It is single-threaded by design — the interleaving under
// test is the op order, not goroutine scheduling (the race-stress suites
// cover that axis) — so every query observes the full mirror.
func Run(t testing.TB, cfg Config) {
	cfg = cfg.normalize()
	h := &harness{
		t:   t,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		gen: gen.Generator{Kind: gen.Synthetic, Length: cfg.SeriesLen, Seed: cfg.Seed},
	}
	base := h.gen.Collection(cfg.BaseSeries)
	h.seq = int64(cfg.BaseSeries)
	h.qpool = h.gen.Queries(64)
	h.mirror = series.NewCollection(0, cfg.SeriesLen)
	for i := 0; i < base.Len(); i++ {
		h.mirror.Append(base.At(i))
	}
	h.build(base)
	defer h.close()

	queries := 0
	for op := 0; op < cfg.Ops; op++ {
		// Fault mode folds device chaos into the stream: roughly every
		// tenth op flips the fault plan or heals and re-stages.
		if cfg.Faults && h.rng.Intn(10) == 0 {
			h.opFault()
		}
		switch p := h.rng.Intn(100); {
		case p < 40:
			h.opAppend()
		case p < 55:
			h.opAppendBatch()
		case p < 60:
			h.opFlush()
		case p < 62:
			h.opSaveLoad()
		case p < 63:
			h.opRebuild()
		case p < 80:
			h.opSearch()
			queries++
		case p < 90:
			h.opKNN()
			queries++
		case p < 95:
			h.opDTW()
			queries++
		default:
			h.opApproximate()
			queries++
		}
		if h.t.Failed() {
			h.t.Fatalf("conformance: diverged at op %d (seed %d, shards %d)", op, cfg.Seed, cfg.Shards)
		}
		if h.plain.Count() != h.mirror.Len() || h.shrd.Count() != h.mirror.Len() {
			h.t.Fatalf("conformance: op %d: counts diverged: plain %d, sharded %d, mirror %d",
				op, h.plain.Count(), h.shrd.Count(), h.mirror.Len())
		}
	}
	// A run that never queried verified nothing — the op mix forbids it at
	// any plausible op count.
	if cfg.Ops >= 100 && queries == 0 {
		h.t.Fatal("conformance: no query ops executed")
	}
	// A fault-mode run must have exercised both sides of the contract:
	// queries completed under injection (checked bit-identical above) and
	// queries failed with the typed error. The op mix makes both
	// near-certain at any plausible op count.
	if cfg.Faults && cfg.Ops >= 300 {
		if h.faultChecks == 0 {
			h.t.Fatal("conformance: fault mode never queried under an active plan")
		}
		if h.typedFails == 0 {
			h.t.Fatal("conformance: fault mode produced no typed query failures")
		}
	}
}

func (h *harness) build(base *series.Collection) {
	cfg := core.Config{LeafCapacity: 32}
	opt := messi.Options{MergeThreshold: h.cfg.MergeThreshold}
	h.tossAutoTune(&opt)
	plain, err := messi.Build(base, cfg, opt)
	if err != nil {
		h.t.Fatal(err)
	}
	sopt := shard.Options{Shards: h.cfg.Shards, Policy: h.cfg.Policy, Options: opt}
	h.tossAutoTune(&sopt.Options)
	// Toss the base placement: zero-copy views (the default), materialized
	// flat copies, or the out-of-core cold tier. Answers must be
	// bit-identical whichever way the base is stored, so the whole op
	// stream differentially verifies all three paths against each other.
	h.tossPlacement(&sopt, base)
	shrd, err := shard.Build(base, cfg, sopt)
	if err != nil {
		h.t.Fatal(err)
	}
	h.base, h.plain, h.shrd = base, plain, shrd
}

// tossAutoTune decides each instance's AutoTune setting: forced on by the
// config, or tossed per instance so runs differentially verify tuned
// against untuned copies over the same op stream. AutoTune only moves the
// live probe-leaf count and merge threshold — performance knobs an exact
// search answers identically under — so a divergence here means tuning
// broke the exactness contract.
func (h *harness) tossAutoTune(opt *messi.Options) {
	opt.AutoTune = h.cfg.ForceAutoTune || h.rng.Intn(2) == 1
}

// tossPlacement randomly picks how the sharded instance stores its base
// values: zero-copy views, materialized copies, or the device-backed cold
// tier. The cold configuration uses a cache far smaller than the data
// (16 KiB, 8-series blocks) so evictions and misses actually happen, and
// half the time assigns tiers per shard at random (always at least one
// cold) to exercise the mixed hot/cold path.
//
// In fault mode the cold tier is mandatory and its store is a
// storage.FaultStore (healed at build time — staging and construction run
// on a healthy device, like the experiments' dataset staging), with base
// the hot re-stage source so Restage can route around a dead device.
func (h *harness) tossPlacement(opt *shard.Options, base *series.Collection) {
	if h.cfg.Faults {
		h.fault = storage.NewFaultStore(storage.NewMemStore(), storage.FaultPlan{})
		first := true
		cs := &shard.ColdStorage{
			// The build's cold tier lands on the injecting store;
			// re-stages get genuinely fresh stores.
			NewStore: func() (storage.Store, error) {
				if first {
					first = false
					return h.fault, nil
				}
				return storage.NewMemStore(), nil
			},
			CacheBytes:  16 << 10,
			BlockSeries: 8,
			Retry:       storage.RetryPolicy{Sleep: func(time.Duration) {}},
			Source:      base,
		}
		h.tossColdPlacement(cs)
		opt.ColdStorage = cs
		opt.QuarantineAfter = 2
		return
	}
	switch h.rng.Intn(3) {
	case 0: // zero-copy views — the default
	case 1:
		opt.CopyBase = true
	case 2:
		cs := &shard.ColdStorage{CacheBytes: 16 << 10, BlockSeries: 8}
		h.tossColdPlacement(cs)
		opt.ColdStorage = cs
	}
}

// tossColdPlacement half the time assigns tiers per shard at random
// (always at least one cold) to exercise the mixed hot/cold path; the
// other half leaves Cold nil, placing every shard cold.
func (h *harness) tossColdPlacement(cs *shard.ColdStorage) {
	if h.rng.Intn(2) == 0 {
		cold := make([]bool, h.cfg.Shards)
		for i := range cold {
			cold[i] = h.rng.Intn(2) == 0
		}
		cold[h.rng.Intn(len(cold))] = true
		cs.Cold = func(si int) bool { return cold[si] }
	}
}

func (h *harness) close() {
	h.plain.Close()
	h.shrd.Close()
}

// fresh returns the next never-seen series from the deterministic
// generator, so landed content is duplicate-free and nearest neighbors are
// unique — the precondition for comparing positions, not just distances.
func (h *harness) fresh() series.Series {
	s := h.gen.Series(h.seq)
	h.seq++
	return s
}

// query picks a query series: usually a perturbed landed member (so the
// pruning regime matches dense collections), sometimes a fresh series far
// from everything.
func (h *harness) query() series.Series {
	if h.rng.Intn(5) == 0 {
		return h.qpool.At(h.rng.Intn(h.qpool.Len()))
	}
	src := h.mirror.At(h.rng.Intn(h.mirror.Len()))
	q := src.Clone()
	for i := range q {
		q[i] += float32(h.rng.NormFloat64() * 0.05)
	}
	return q
}

func (h *harness) opAppend() {
	s := h.fresh()
	g := h.mirror.Append(s)
	p1, err := h.plain.Append(s)
	if err != nil {
		h.t.Fatal(err)
	}
	p2, err := h.shrd.Append(s)
	if err != nil {
		h.t.Fatal(err)
	}
	if p1 != g || p2 != g {
		h.t.Fatalf("append landed at plain %d / sharded %d, mirror says %d", p1, p2, g)
	}
}

func (h *harness) opAppendBatch() {
	n := 2 + h.rng.Intn(8)
	ss := make([]series.Series, n)
	want := h.mirror.Len()
	for i := range ss {
		ss[i] = h.fresh()
		h.mirror.Append(ss[i])
	}
	p1, err := h.plain.AppendBatch(ss)
	if err != nil {
		h.t.Fatal(err)
	}
	p2, err := h.shrd.AppendBatch(ss)
	if err != nil {
		h.t.Fatal(err)
	}
	if p1 != want || p2 != want {
		h.t.Fatalf("batch landed at plain %d / sharded %d, mirror says %d", p1, p2, want)
	}
}

func (h *harness) opFlush() {
	h.plain.Flush()
	h.shrd.Flush()
	if p := h.plain.Pending(); p != 0 {
		h.t.Fatalf("plain pending %d after Flush", p)
	}
	if p := h.shrd.Pending(); p != 0 {
		h.t.Fatalf("sharded pending %d after Flush", p)
	}
}

// opSaveLoad round-trips both systems through their persistence formats
// and continues the run on the decoded copies, so every later op also
// verifies the loaded state.
func (h *harness) opSaveLoad() {
	// Maintenance runs on a healthy device: a re-encode with a dead store
	// is out of scope (and a fresh decode re-stages the cold tier anyway).
	h.opHeal()
	opt := messi.Options{MergeThreshold: h.cfg.MergeThreshold}
	h.tossAutoTune(&opt)
	enc := h.plain.Encode()
	plain2, err := messi.Decode(enc, h.base, opt)
	if err != nil {
		h.t.Fatalf("plain decode: %v", err)
	}
	senc := h.shrd.Encode()
	// The loaded copy re-tosses the base placement (views / copies / cold
	// tier) independently of the saved instance's choice: persistence is
	// backing-agnostic, so any combination must keep answering identically.
	sopt := shard.Options{Options: opt}
	h.tossAutoTune(&sopt.Options)
	h.tossPlacement(&sopt, h.base)
	shrd2, err := shard.Decode(senc, h.base, sopt)
	if err != nil {
		plain2.Close()
		h.t.Fatalf("sharded decode: %v", err)
	}
	// No byte-identical re-encode assertion here: Decode schedules a
	// background merge when a restored delta already exceeds the (small)
	// threshold, which can legitimately advance the merged split before a
	// re-encode — byte identity under quiesced merges is covered by the
	// persistence unit tests and FuzzShardedPersistRoundTrip. The harness
	// asserts the part that must hold regardless of merge timing: every
	// subsequent op answers identically on the decoded copies.
	h.close()
	h.plain, h.shrd = plain2, shrd2
}

// opRebuild rebuilds both systems from scratch over a snapshot of the
// mirror — the landed content becomes the new base collection, exercising
// the build-time split over previously appended series.
func (h *harness) opRebuild() {
	h.opHeal() // builds stage onto a healthy device
	base := series.NewCollection(0, h.cfg.SeriesLen)
	for i := 0; i < h.mirror.Len(); i++ {
		base.Append(h.mirror.At(i))
	}
	h.close()
	h.build(base)
}

func (h *harness) opSearch() {
	q := h.query()
	want := ucr.Scan(h.mirror, q)
	got, st, err := h.plain.Search(q, 0)
	if err != nil {
		h.t.Fatal(err)
	}
	if st.Observed != h.mirror.Len() {
		h.t.Fatalf("observed plain %d, mirror has %d", st.Observed, h.mirror.Len())
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		h.t.Errorf("1-NN: plain (#%d, %v) != serial (#%d, %v)", got.Pos, got.Dist, want.Pos, want.Dist)
	}
	sgot, sst, err := h.shrd.Search(q, 0)
	if h.shardErr("1-NN", err) {
		return
	}
	if sst.Observed != h.mirror.Len() {
		h.t.Fatalf("observed sharded %d, mirror has %d", sst.Observed, h.mirror.Len())
	}
	if sgot.Pos != want.Pos || sgot.Dist != want.Dist {
		h.t.Errorf("1-NN: sharded (#%d, %v) != serial (#%d, %v)", sgot.Pos, sgot.Dist, want.Pos, want.Dist)
	}
}

func (h *harness) opKNN() {
	q := h.query()
	k := 1 + h.rng.Intn(6)
	want := ucr.ScanKNN(h.mirror, q, k)
	got, _, err := h.plain.SearchKNN(q, k, 0)
	if err != nil {
		h.t.Fatal(err)
	}
	if len(got) != len(want) {
		h.t.Fatalf("k-NN sizes: plain %d, serial %d", len(got), len(want))
	}
	for r := range want {
		if got[r].Pos != want[r].Pos || got[r].Dist != want[r].Dist {
			h.t.Errorf("k-NN rank %d: plain (#%d, %v) != serial (#%d, %v)",
				r, got[r].Pos, got[r].Dist, want[r].Pos, want[r].Dist)
		}
	}
	sgot, _, err := h.shrd.SearchKNN(q, k, 0)
	if h.shardErr("k-NN", err) {
		return
	}
	if len(sgot) != len(want) {
		h.t.Fatalf("k-NN sizes: sharded %d, serial %d", len(sgot), len(want))
	}
	for r := range want {
		if sgot[r].Pos != want[r].Pos || sgot[r].Dist != want[r].Dist {
			h.t.Errorf("k-NN rank %d: sharded (#%d, %v) != serial (#%d, %v)",
				r, sgot[r].Pos, sgot[r].Dist, want[r].Pos, want[r].Dist)
		}
	}
}

func (h *harness) opDTW() {
	q := h.query()
	w := h.rng.Intn(6)
	want := ucr.ScanDTW(h.mirror, q, w)
	got, _, err := h.plain.SearchDTW(q, w, 0)
	if err != nil {
		h.t.Fatal(err)
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		h.t.Errorf("DTW(w=%d): plain (#%d, %v) != serial (#%d, %v)", w, got.Pos, got.Dist, want.Pos, want.Dist)
	}
	sgot, _, err := h.shrd.SearchDTW(q, w, 0)
	if h.shardErr("DTW", err) {
		return
	}
	if sgot.Pos != want.Pos || sgot.Dist != want.Dist {
		h.t.Errorf("DTW(w=%d): sharded (#%d, %v) != serial (#%d, %v)", w, sgot.Pos, sgot.Dist, want.Pos, want.Dist)
	}
}

// opApproximate checks the approximate contract on both systems: the
// reported position is in range, its reported distance is that position's
// true distance, and it upper-bounds the exact answer.
func (h *harness) opApproximate() {
	q := h.query()
	exact := ucr.Scan(h.mirror, q)
	for name, search := range map[string]func() (core.Result, error){
		"plain":   func() (core.Result, error) { return h.plain.SearchApproximate(q) },
		"sharded": func() (core.Result, error) { return h.shrd.SearchApproximate(q) },
	} {
		r, err := search()
		if name == "sharded" && h.shardErr("approx", err) {
			continue
		}
		if err != nil {
			h.t.Fatal(err)
		}
		if r.Pos < 0 || int(r.Pos) >= h.mirror.Len() {
			h.t.Errorf("%s approx position %d out of range [0, %d)", name, r.Pos, h.mirror.Len())
			continue
		}
		if r.Dist < exact.Dist {
			h.t.Errorf("%s approx distance %v below exact %v", name, r.Dist, exact.Dist)
		}
		if d := vector.SquaredEDEarlyAbandon(q, h.mirror.At(int(r.Pos)), math.Inf(1)); d != r.Dist {
			h.t.Errorf("%s approx reports %v for #%d, true distance %v", name, r.Dist, r.Pos, d)
		}
	}
}

// shardErr handles a sharded query's error under fault mode: a nil error
// (query completed, caller compares it against the oracle) returns false;
// the typed shards-unavailable failure is counted and tolerated; anything
// else — or any error outside fault mode — is fatal. Every query issued
// while a fault plan is active also counts toward faultChecks, so the run
// can prove injection actually intersected the query stream.
func (h *harness) shardErr(op string, err error) (failed bool) {
	if h.fault != nil && h.fault.Plan().Active() {
		h.faultChecks++
	}
	if err == nil {
		return false
	}
	if h.fault == nil {
		h.t.Fatalf("%s: sharded: %v", op, err)
	}
	var su *shard.ErrShardsUnavailable
	if !errors.As(err, &su) {
		h.t.Fatalf("%s: sharded failed with an untyped error under faults: %v", op, err)
	}
	if len(su.Shards) == 0 {
		h.t.Fatalf("%s: ErrShardsUnavailable lists no shards: %v", op, err)
	}
	h.typedFails++
	return true
}

// opFault mutates the injected fault plan: heal the device (and re-stage
// any quarantined shards, after which answers must be bit-identical
// again), install a transient plan (retries mask most of it; exhaustion
// produces typed failures), or kill a byte range permanently (driving
// quarantine).
func (h *harness) opFault() {
	if h.fault == nil {
		return
	}
	switch h.rng.Intn(4) {
	case 0:
		h.opHeal()
	case 1:
		h.fault.SetPlan(storage.FaultPlan{
			Seed:           h.rng.Int63(),
			TransientProb:  0.1 + 0.4*h.rng.Float64(),
			TransientBurst: h.rng.Intn(3),
			LatencyProb:    0.05,
			Latency:        50 * time.Microsecond,
		})
	default:
		size := h.fault.Size()
		if size == 0 {
			return
		}
		start := h.rng.Int63n(size)
		end := start + 1 + h.rng.Int63n(size-start)
		h.fault.SetPlan(storage.FaultPlan{
			Seed:            h.rng.Int63(),
			PermanentRanges: []storage.Range{{Start: start, End: end}},
		})
	}
}

// opHeal clears the fault plan and re-stages every quarantined shard onto
// a fresh store, restoring full service; subsequent query ops assert the
// answers are bit-identical to the oracle again.
func (h *harness) opHeal() {
	if h.fault == nil {
		return
	}
	h.fault.Heal()
	for _, si := range h.shrd.Health().Quarantined {
		if err := h.shrd.Restage(si); err != nil {
			h.t.Fatalf("restage shard %d: %v", si, err)
		}
	}
	if q := h.shrd.Health().Quarantined; len(q) != 0 {
		h.t.Fatalf("shards %v still unavailable after heal + restage", q)
	}
}
