package conformance

import (
	"flag"
	"fmt"
	"testing"

	"dsidx/internal/shard"
)

// -conformance.ops overrides the per-configuration op count for long runs:
//
//	go test ./internal/conformance -conformance.ops 10000
//
// 0 means the default: 10000 ops per shard count, 1200 in -short mode (the
// CI smoke configuration).
var opsFlag = flag.Int("conformance.ops", 0, "randomized ops per conformance configuration (0 = default)")

func opsDefault() int {
	if *opsFlag > 0 {
		return *opsFlag
	}
	if testing.Short() {
		return 1200
	}
	return 10000
}

// TestConformanceRandomized is the acceptance gate of the sharded serving
// stack: at every shard count, the full op interleaving must keep the
// plain index, the sharded index and the serial-scan oracle bit-identical.
func TestConformanceRandomized(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			Run(t, Config{Seed: 2020 + int64(shards), Ops: opsDefault(), Shards: shards})
		})
	}
}

// TestConformanceAutoTune forces the self-tuning feedback loop on for
// every instance (the random toss in other runs can leave it off) with a
// merge threshold low enough that the tuner's window actually fires:
// answers must remain bit-identical to the serial oracle while the knobs
// move.
func TestConformanceAutoTune(t *testing.T) {
	ops := opsDefault()
	if !testing.Short() && *opsFlag == 0 {
		ops = 4000
	}
	Run(t, Config{Seed: 4242, Ops: ops, Shards: 2, MergeThreshold: 96, ForceAutoTune: true})
}

// TestConformanceHashPolicy re-runs a configuration under content-hash
// routing, where shard sizes are uneven and build-time neighbors scatter.
func TestConformanceHashPolicy(t *testing.T) {
	ops := opsDefault()
	if !testing.Short() && *opsFlag == 0 {
		ops = 4000 // the main sweep already covers the long default
	}
	Run(t, Config{Seed: 77, Ops: ops, Shards: 3, Policy: shard.HashSeries{}})
}

// TestConformanceFaults runs the op stream with a fault-injecting cold
// tier: random transient/permanent plans, heals and re-stages interleave
// with every other op. Completed queries must stay bit-identical to the
// serial oracle, failed queries must carry the typed shards-unavailable
// error, and heal + re-stage must restore exact service — the
// fault-tolerance acceptance gate.
func TestConformanceFaults(t *testing.T) {
	ops := opsDefault()
	if !testing.Short() && *opsFlag == 0 {
		ops = 4000
	}
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			Run(t, Config{Seed: 911 + int64(shards), Ops: ops, Shards: shards, Faults: true})
		})
	}
}
