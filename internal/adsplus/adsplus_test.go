package adsplus

import (
	"math"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/storage"
)

func buildIndex(t *testing.T, kind gen.Kind, n int) (*Index, *series.Collection, *series.Collection) {
	t.Helper()
	g := gen.Generator{Kind: kind, Seed: 51}
	coll := g.Collection(n)
	raw, err := storage.WriteCollection(storage.NewMemStore(), coll)
	if err != nil {
		t.Fatal(err)
	}
	leaves := storage.NewLeafStore(storage.NewMemStore())
	ix, err := Build(raw, leaves, core.Config{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	return ix, coll, g.Queries(8)
}

func TestBuildShape(t *testing.T) {
	ix, coll, _ := buildIndex(t, gen.Synthetic, 1200)
	if ix.Count() != coll.Len() {
		t.Fatalf("Count = %d, want %d", ix.Count(), coll.Len())
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := ix.Tree().Stats()
	if st.Series != 1200 || st.Leaves == 0 {
		t.Fatalf("tree stats %+v", st)
	}
	bs := ix.BuildStats()
	if bs.Total <= 0 {
		t.Error("Total build time not recorded")
	}
}

func TestSearchExactness(t *testing.T) {
	// The defining property: ADS+ exact search returns the brute-force NN.
	for _, kind := range []gen.Kind{gen.Synthetic, gen.SALD, gen.Seismic} {
		t.Run(kind.String(), func(t *testing.T) {
			ix, coll, queries := buildIndex(t, kind, 800)
			for qi := 0; qi < queries.Len(); qi++ {
				q := queries.At(qi)
				wantPos, wantDist := coll.BruteForce1NN(q)
				got, stats, err := ix.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Dist-wantDist) > 1e-6*math.Max(1, wantDist) {
					t.Fatalf("query %d: dist %v, want %v", qi, got.Dist, wantDist)
				}
				if int(got.Pos) != wantPos && math.Abs(got.Dist-wantDist) > 1e-9 {
					t.Fatalf("query %d: pos %d, want %d", qi, got.Pos, wantPos)
				}
				if stats.Candidates+stats.PrunedByScan != coll.Len() {
					t.Fatalf("query %d: candidates %d + pruned %d != %d",
						qi, stats.Candidates, stats.PrunedByScan, coll.Len())
				}
			}
		})
	}
}

func TestSearchPrunes(t *testing.T) {
	ix, coll, queries := buildIndex(t, gen.Synthetic, 2000)
	totalPruned := 0
	for qi := 0; qi < queries.Len(); qi++ {
		_, stats, err := ix.Search(queries.At(qi))
		if err != nil {
			t.Fatal(err)
		}
		totalPruned += stats.PrunedByScan
		// Exact distances must be far fewer than a full scan.
		if stats.RawDistances >= coll.Len() {
			t.Fatalf("query %d computed %d raw distances on %d series",
				qi, stats.RawDistances, coll.Len())
		}
	}
	if totalPruned == 0 {
		t.Error("lower-bound scan pruned nothing across all queries")
	}
}

func TestSearchQueryLengthValidation(t *testing.T) {
	ix, _, _ := buildIndex(t, gen.Synthetic, 100)
	if _, _, err := ix.Search(make(series.Series, 13)); err == nil {
		t.Error("mismatched query length accepted")
	}
}

func TestBuildStatsComponentsPositive(t *testing.T) {
	// Build against a disk with modeled (unslept) latency: the Read and
	// Write components must be visible in the wall-clock stats.
	g := gen.Generator{Kind: gen.Synthetic, Seed: 5}
	coll := g.Collection(500)
	raw, err := storage.WriteCollection(storage.NewMemStore(), coll)
	if err != nil {
		t.Fatal(err)
	}
	leaves := storage.NewLeafStore(storage.NewMemStore())
	ix, err := Build(raw, leaves, core.Config{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.BuildStats()
	if bs.CPU <= 0 {
		t.Errorf("CPU component = %v", bs.CPU)
	}
	if bs.Read < 0 || bs.Write < 0 {
		t.Errorf("negative components: %+v", bs)
	}
	if bs.Total < bs.CPU {
		t.Errorf("Total %v below CPU %v", bs.Total, bs.CPU)
	}
}
