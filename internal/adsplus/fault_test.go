package adsplus

import (
	"errors"
	"sync/atomic"
	"testing"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/storage"
)

type faultStore struct {
	storage.Store
	failReads atomic.Bool
}

var errInjected = errors.New("injected fault")

func (f *faultStore) ReadAt(p []byte, off int64) (int, error) {
	if f.failReads.Load() {
		return 0, errInjected
	}
	return f.Store.ReadAt(p, off)
}

func TestBuildAndSearchPropagateFaults(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Seed: 52}
	coll := g.Collection(300)
	fs := &faultStore{Store: storage.NewMemStore()}
	raw, err := storage.WriteCollection(fs, coll)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(raw, storage.NewLeafStore(storage.NewMemStore()), core.Config{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}

	fs.failReads.Store(true)
	if _, _, err := ix.Search(g.Queries(1).At(0)); !errors.Is(err, errInjected) {
		t.Fatalf("Search error = %v, want injected", err)
	}

	// Build over a failing store errors out too.
	_, err = Build(raw, storage.NewLeafStore(storage.NewMemStore()), core.Config{LeafCapacity: 16})
	if !errors.Is(err, errInjected) {
		t.Fatalf("Build error = %v, want injected", err)
	}
}

func TestLeafStoreFaultDuringFlush(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Seed: 53}
	coll := g.Collection(200)
	raw, err := storage.WriteCollection(storage.NewMemStore(), coll)
	if err != nil {
		t.Fatal(err)
	}
	leafStore := storage.NewLeafStore(&failingWriter{})
	if _, err := Build(raw, leafStore, core.Config{LeafCapacity: 16}); err == nil {
		t.Fatal("Build with failing leaf store should error")
	}
}

type failingWriter struct{ storage.MemStore }

func (f *failingWriter) WriteAt(p []byte, off int64) (int, error) {
	return 0, errInjected
}
