// Package adsplus implements the ADS+ baseline (Zoumpatianos, Idreos,
// Palpanas, VLDBJ 2016) as the paper evaluates it: the state-of-the-art
// *serial* iSAX index that ParIS/ParIS+ are compared against for on-disk
// data. Index creation reads the raw file sequentially and builds the tree
// with a single thread; exact query answering is the serial
// skip-sequential algorithm (SIMS): an approximate tree search seeds the
// best-so-far, a scan of the in-memory SAX array prunes by lower bound, and
// surviving candidates are read from disk in position order for exact
// distances. ParIS parallelizes exactly these stages, so this package is
// also the single-threaded reference point of the scaling figures.
package adsplus

import (
	"fmt"
	"math"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/isax"
	"dsidx/internal/series"
	"dsidx/internal/storage"
)

// BuildStats breaks index creation into the components of Figure 4:
// time spent reading raw data, pure CPU time (summarization + tree
// building), and time writing index leaves.
type BuildStats struct {
	Read  time.Duration
	CPU   time.Duration
	Write time.Duration
	Total time.Duration
}

// QueryStats counts the work of the last query, for the pruning-power
// analyses in EXPERIMENTS.md.
type QueryStats struct {
	Candidates   int // series surviving the lower-bound scan
	RawDistances int // exact distances computed (including approx phase)
	PrunedByScan int // series eliminated by the SAX-array scan
	ApproxDist   float64
	LeafOfApprox int
}

// Index is a built ADS+ index over an on-disk series file.
type Index struct {
	cfg    core.Config
	tree   *core.Tree
	sax    *core.SAXArray
	raw    *storage.SeriesFile
	leaves *storage.LeafStore
	build  BuildStats
}

// BatchSize is the number of series read per sequential batch during index
// creation (the "raw data buffer" granularity).
const BatchSize = 8192

// Build creates an ADS+ index over the series in raw, writing materialized
// leaves through leafStore (which may share the device with raw, as in the
// paper's single-disk setup).
func Build(raw *storage.SeriesFile, leafStore *storage.LeafStore, cfg core.Config) (*Index, error) {
	cfg.SeriesLen = raw.Length()
	tree, err := core.NewTree(cfg)
	if err != nil {
		return nil, fmt.Errorf("adsplus: %w", err)
	}
	cfg = tree.Config()
	n := int(raw.Count())
	ix := &Index{cfg: cfg, tree: tree, sax: core.NewSAXArray(n, cfg.Segments), raw: raw, leaves: leafStore}

	sm := core.NewSummarizer(cfg, tree.Quantizer())
	start := time.Now()
	for lo := int64(0); lo < raw.Count(); lo += BatchSize {
		count := int64(BatchSize)
		if lo+count > raw.Count() {
			count = raw.Count() - lo
		}
		t0 := time.Now()
		batch, err := raw.ReadBatch(lo, count)
		if err != nil {
			return nil, fmt.Errorf("adsplus: reading batch at %d: %w", lo, err)
		}
		ix.build.Read += time.Since(t0)

		t0 = time.Now()
		for i := 0; i < batch.Len(); i++ {
			pos := int32(lo) + int32(i)
			dst := ix.sax.At(int(pos))
			sm.Summarize(batch.At(i), dst)
			tree.Insert(dst, pos)
		}
		ix.build.CPU += time.Since(t0)
	}

	// Materialize leaves (the Write component of Figure 4). The paper's
	// systems interleave flushing with memory pressure; at this repository's
	// scale a single final flush preserves the same total write volume —
	// see DESIGN.md, substitutions.
	t0 := time.Now()
	var flushErr error
	tree.VisitLeaves(func(nd *core.Node) {
		if flushErr == nil {
			flushErr = core.FlushLeaf(nd, cfg.Segments, leafStore)
		}
	})
	if flushErr != nil {
		return nil, fmt.Errorf("adsplus: flushing leaves: %w", flushErr)
	}
	ix.build.Write += time.Since(t0)
	ix.build.Total = time.Since(start)
	return ix, nil
}

// BuildStats returns the creation-time breakdown.
func (ix *Index) BuildStats() BuildStats { return ix.build }

// Tree exposes the underlying tree (read-only) for diagnostics.
func (ix *Index) Tree() *core.Tree { return ix.tree }

// Count returns the number of indexed series.
func (ix *Index) Count() int { return ix.sax.Len() }

// Search answers an exact 1-NN query, returning the position and squared
// Euclidean distance of the nearest series.
func (ix *Index) Search(q series.Series) (core.Result, *QueryStats, error) {
	if len(q) != ix.cfg.SeriesLen {
		return core.NoResult(), nil, fmt.Errorf("adsplus: query length %d != %d", len(q), ix.cfg.SeriesLen)
	}
	stats := &QueryStats{}
	sm := core.NewSummarizer(ix.cfg, ix.tree.Quantizer())
	qsax := make([]uint8, ix.cfg.Segments)
	sm.Summarize(q, qsax)
	qpaa := make([]float64, ix.cfg.Segments)
	copy(qpaa, sm.PAA(q))

	best := core.NoResult()
	buf := make(series.Series, ix.cfg.SeriesLen)
	table := isax.NewQueryTable(ix.tree.Quantizer(), qpaa, ix.cfg.SeriesLen)

	// Phase 1: approximate answer from the closest leaf (BSF seed). As in
	// the paper, the BSF is "the real distance between the query and the
	// best candidate series" of that leaf — the candidate is chosen by its
	// in-memory summary lower bound, so the phase costs one random read.
	leaf := ix.tree.BestLeafApprox(qsax, qpaa)
	if leaf == nil {
		return best, stats, nil // empty index
	}
	leafSAX, pos, err := core.LoadLeaf(leaf, ix.cfg.Segments, ix.leaves)
	if err != nil {
		return best, stats, fmt.Errorf("adsplus: approximate phase: %w", err)
	}
	if len(pos) > 0 {
		w := ix.cfg.Segments
		bestEntry, bestLB := 0, math.Inf(1)
		for i := range pos {
			if lb := table.MinDistSAX(leafSAX[i*w : (i+1)*w]); lb < bestLB {
				bestEntry, bestLB = i, lb
			}
		}
		seeds := []int32{pos[bestEntry]}
		// Robustness at scaled-down leaf sizes: also refine the globally
		// best-bounded positions (see SAXArray.TopKByLowerBound).
		seeds = append(seeds, ix.sax.TopKByLowerBound(table, 4)...)
		for _, p := range seeds {
			if err := ix.raw.ReadSeries(int64(p), buf); err != nil {
				return best, stats, fmt.Errorf("adsplus: reading series %d: %w", p, err)
			}
			stats.RawDistances++
			if d := series.SquaredEDEarlyAbandon(q, buf, best.Dist); d < best.Dist {
				best = core.Result{Pos: p, Dist: d}
			}
		}
	}
	stats.ApproxDist = best.Dist
	stats.LeafOfApprox = leaf.Count

	// Phase 2: serial lower-bound scan over the SAX array.
	n := ix.sax.Len()
	candidates := make([]int32, 0, n/16)
	for i := 0; i < n; i++ {
		if table.MinDistSAX(ix.sax.At(i)) < best.Dist {
			candidates = append(candidates, int32(i))
		}
	}
	stats.Candidates = len(candidates)
	stats.PrunedByScan = n - len(candidates)

	// Phase 3: skip-sequential exact distances in position order (ascending
	// file offsets minimize seek cost, as in ADS+'s SIMS).
	for _, p := range candidates {
		// Re-check against the tightened best-so-far before paying a read.
		if table.MinDistSAX(ix.sax.At(int(p))) >= best.Dist {
			continue
		}
		if err := ix.raw.ReadSeries(int64(p), buf); err != nil {
			return best, stats, fmt.Errorf("adsplus: reading candidate %d: %w", p, err)
		}
		stats.RawDistances++
		if d := series.SquaredEDEarlyAbandon(q, buf, best.Dist); d < best.Dist {
			best = core.Result{Pos: p, Dist: d}
		}
	}
	return best, stats, nil
}
