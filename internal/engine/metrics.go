package engine

import (
	"dsidx/internal/metrics"
	"dsidx/internal/vector"
)

// RegisterMetrics wires the engine's stats into r as one metric family
// set, sampled from Stats() at scrape time. Called once per registry —
// a pool shared by N shards registers once, not per shard.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(e.Stats()) }
	}
	r.MustRegister(
		metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_engine_workers",
			Help: "Worker goroutines in the shared pool.",
		}, stat(func(s Stats) float64 { return float64(s.Workers) })),
		metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_engine_tasks_pending",
			Help: "Tasks queued but not yet claimed by a worker.",
		}, stat(func(s Stats) float64 { return float64(s.PendingTasks) })),
		metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_engine_queries_inflight",
			Help: "Queries currently admitted.",
		}, stat(func(s Stats) float64 { return float64(s.InFlight) })),
		metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_engine_queries_inflight_peak",
			Help: "High-water mark of admitted queries.",
		}, stat(func(s Stats) float64 { return float64(s.PeakInFlight) })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_queries_total",
			Help: "Logical queries executed since creation.",
		}, stat(func(s Stats) float64 { return float64(s.Queries) })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_tasks_total",
			Help: "Tasks executed by pool workers since creation.",
		}, stat(func(s Stats) float64 { return float64(s.Tasks) })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_admit_waits_total",
			Help: "Admissions that blocked on a full query-slot semaphore.",
		}, stat(func(s Stats) float64 { return float64(s.AdmitWaits) })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_admit_wait_seconds_total",
			Help: "Total seconds spent blocked in admission.",
		}, stat(func(s Stats) float64 { return float64(s.AdmitWaitNanos) / 1e9 })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_submit_fallbacks_total",
			Help: "Optional tasks (TrySubmit) rejected by a full run queue.",
		}, stat(func(s Stats) float64 { return float64(s.SubmitFallbacks) })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_task_panics_total",
			Help: "Pool tasks whose panic was contained at the worker boundary.",
		}, stat(func(s Stats) float64 { return float64(s.TaskPanics) })),
		metrics.NewCounterFunc(metrics.Opts{
			Name: "dsidx_engine_bg_panics_total",
			Help: "Background jobs (merges) whose panic was contained.",
		}, stat(func(s Stats) float64 { return float64(s.BgPanics) })),
		// Process-global like the pool itself: which distance-kernel
		// implementation serves queries, after CPU detection and the
		// runtime ForceScalar escape hatch.
		metrics.NewGaugeFunc(metrics.Opts{
			Name: "dsidx_vector_simd",
			Help: "Whether the SIMD distance kernels are active (1) or the scalar oracle serves queries (0).",
		}, func() float64 {
			if vector.Impl() == "scalar" {
				return 0
			}
			return 1
		}),
	)
	// Per-tenant families: one sample per tenant ever seen, labeled by the
	// opaque tenant ID. Untenanted ("") traffic never creates a sample —
	// it lives entirely in the global families above.
	tstat := func(f func(TenantStat) float64) func() []metrics.LabeledValue {
		return func() []metrics.LabeledValue {
			ts := e.TenantStats()
			out := make([]metrics.LabeledValue, len(ts))
			for i, t := range ts {
				out[i] = metrics.LabeledValue{Label: t.Tenant, Value: f(t)}
			}
			return out
		}
	}
	r.MustRegister(
		metrics.NewMultiGaugeFunc(metrics.Opts{
			Name: "dsidx_tenant_in_flight",
			Help: "Queries currently admitted, per tenant.",
		}, "tenant", tstat(func(t TenantStat) float64 { return float64(t.InFlight) })),
		metrics.NewMultiGaugeFunc(metrics.Opts{
			Name: "dsidx_tenant_active_queries",
			Help: "Query branches currently executing, per tenant.",
		}, "tenant", tstat(func(t TenantStat) float64 { return float64(t.ActiveQueries) })),
		metrics.NewMultiCounterFunc(metrics.Opts{
			Name: "dsidx_tenant_queries_total",
			Help: "Logical queries executed since creation, per tenant.",
		}, "tenant", tstat(func(t TenantStat) float64 { return float64(t.Queries) })),
		metrics.NewMultiCounterFunc(metrics.Opts{
			Name: "dsidx_tenant_admit_waits_total",
			Help: "Admissions that blocked on the tenant's own gate.",
		}, "tenant", tstat(func(t TenantStat) float64 { return float64(t.AdmitWaits) })),
	)
}
