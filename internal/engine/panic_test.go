package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestGroupContainsTaskPanic(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	cause := fmt.Errorf("leaf refinement: %w", errors.New("device gone"))
	g := e.NewGroup()
	for i := 0; i < 4; i++ {
		i := i
		g.Submit(func() {
			if i == 2 {
				panic(cause)
			}
		})
	}
	g.Wait() // must release despite the panic — barrier integrity
	err := g.Err()
	if err == nil {
		t.Fatal("Group.Err() = nil after a task panicked")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Group.Err() = %T, want *PanicError", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("contained panic does not unwrap to its error payload: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError captured no stack")
	}
}

func TestGroupErrFirstPanicWins(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	g := e.NewGroup()
	for i := 0; i < 8; i++ {
		g.Submit(func() { panic("boom") })
	}
	g.Wait()
	var pe *PanicError
	if err := g.Err(); !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("Group.Err() = %v, want contained \"boom\"", err)
	}
}

func TestGroupContainsInlinePanicAfterClose(t *testing.T) {
	// After Close, Submit degrades to inline execution on the caller's
	// goroutine; containment must still hold there.
	e := New(Options{Workers: 1})
	e.Close()
	g := e.NewGroup()
	g.Submit(func() { panic("inline") })
	g.Wait()
	if g.Err() == nil {
		t.Fatal("inline-executed panic escaped containment")
	}
}

func TestGoContainsBackgroundPanic(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	done := make(chan struct{})
	if !e.Go(func() {
		defer close(done)
		panic("merge exploded")
	}) {
		t.Fatal("Go refused before Close")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("background job never finished")
	}
	// The counter may trail the job's defer by a hair; poll briefly.
	deadline := time.Now().Add(time.Second)
	for e.Stats().BgPanics == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("BgPanics = %d, want 1", e.Stats().BgPanics)
		}
		time.Sleep(time.Millisecond)
	}
	// The pool is still alive and useful after the contained panic.
	g := e.NewGroup()
	ran := false
	g.Submit(func() { ran = true })
	g.Wait()
	if !ran || g.Err() != nil {
		t.Fatalf("pool unusable after contained background panic: ran=%v err=%v", ran, g.Err())
	}
}

func TestWorkerContainsRawTaskPanic(t *testing.T) {
	// A raw (non-Group) submission that panics must not kill the worker:
	// the pool keeps executing later tasks and counts the escape.
	e := New(Options{Workers: 1})
	defer e.Close()
	e.submit(func() { panic("raw") })
	g := e.NewGroup()
	ran := false
	g.Submit(func() { ran = true })
	g.Wait()
	if !ran {
		t.Fatal("worker died after raw task panic")
	}
	if got := e.Stats().TaskPanics; got != 1 {
		t.Fatalf("TaskPanics = %d, want 1", got)
	}
}

// TestPanicErrorRendering pins the containment wrapper's message and
// unwrap behavior for both error and non-error payloads.
func TestPanicErrorRendering(t *testing.T) {
	wrapped := errors.New("device gone")
	pe := &PanicError{Value: wrapped}
	if msg := pe.Error(); !strings.Contains(msg, "contained panic") || !strings.Contains(msg, "device gone") {
		t.Fatalf("PanicError message %q", msg)
	}
	if !errors.Is(pe, wrapped) {
		t.Fatal("error payload not exposed via Unwrap")
	}
	if (&PanicError{Value: "boom"}).Unwrap() != nil {
		t.Fatal("non-error payload should unwrap to nil")
	}
}
