package engine

// Unit coverage for tenant-aware admission and fair-share accounting: the
// per-tenant gate in front of the untouched global semaphore, its equal
// split of MaxInFlight across live tenants, cancellation through the gate,
// stats snapshots, and the dsidx_tenant_* metric families.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dsidx/internal/metrics"
)

func TestAdmitTenantSequential(t *testing.T) {
	e := New(Options{Workers: 2, MaxInFlight: 4})
	defer e.Close()

	r1 := e.AdmitTenant("a")
	r2 := e.AdmitTenant("a")
	st := e.TenantStats()
	if len(st) != 1 || st[0].Tenant != "a" || st[0].InFlight != 2 {
		t.Fatalf("stats after two admissions: %+v", st)
	}
	r1()
	r2()
	r2() // release is idempotent
	st = e.TenantStats()
	if st[0].InFlight != 0 {
		t.Fatalf("in-flight after release: %+v", st)
	}

	// Tenant "" bypasses the gate entirely: no tenant entry appears.
	rel := e.AdmitTenant("")
	rel()
	if st := e.TenantStats(); len(st) != 1 {
		t.Fatalf("untenanted admission created a tenant entry: %+v", st)
	}
}

func TestAdmitTenantContextCancel(t *testing.T) {
	e := New(Options{Workers: 1, MaxInFlight: 2})
	defer e.Close()

	// Fill the lone tenant's cap (its equal split of MaxInFlight = 2).
	r1, err := e.AdmitTenantContext(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.AdmitTenantContext(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	// A third admission blocks on the tenant gate until its context dies.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.AdmitTenantContext(ctx, "a"); err == nil {
		t.Fatal("over-cap admission returned without error")
	}
	st := e.TenantStats()
	if len(st) != 1 || st[0].AdmitWaits == 0 {
		t.Fatalf("blocked admission not counted as a wait: %+v", st)
	}

	// An already-dead context fails fast.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if _, err := e.AdmitTenantContext(dead, "a"); err == nil {
		t.Fatal("admission under a canceled context returned without error")
	}

	// Releasing a slot unblocks the gate again.
	r1()
	r3, err := e.AdmitTenantContext(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	r3()
	r2()
	if st := e.TenantStats(); st[0].InFlight != 0 {
		t.Fatalf("in-flight after all releases: %+v", st)
	}
}

func TestAdmitTenantCapSplitsAcrossTenants(t *testing.T) {
	// With two live tenants, each tenant's gate caps at MaxInFlight/2 —
	// tenant b can still admit while tenant a sits at its full split.
	e := New(Options{Workers: 1, MaxInFlight: 4})
	defer e.Close()

	var relA []func()
	// b registers first so a's cap is already the two-tenant split.
	relB, err := e.AdmitTenantContext(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := e.AdmitTenantContext(context.Background(), "a")
		if err != nil {
			t.Fatalf("admission %d for tenant a: %v", i, err)
		}
		relA = append(relA, r)
	}
	// a is at its split (4/2 = 2): one more must block.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.AdmitTenantContext(ctx, "a"); err == nil {
		t.Fatal("tenant a exceeded its split")
	}
	// b still has room in its own split and in the global window.
	relB2, err := e.AdmitTenantContext(context.Background(), "b")
	if err != nil {
		t.Fatalf("tenant b blocked by tenant a's storm: %v", err)
	}
	relB2()
	relB()
	for _, r := range relA {
		r()
	}
}

func TestAdmitTenantConcurrentStorm(t *testing.T) {
	// Two tenants hammer a tiny admission window concurrently; everything
	// must drain without deadlock and the books must balance to zero.
	e := New(Options{Workers: 2, MaxInFlight: 2})
	defer e.Close()
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b"} {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					rel := e.AdmitTenant(tenant)
					end := e.BeginQueryTenant(tenant)
					end()
					rel()
				}
			}(tenant)
		}
	}
	wg.Wait()
	for _, st := range e.TenantStats() {
		if st.InFlight != 0 || st.ActiveQueries != 0 {
			t.Fatalf("unbalanced books after storm: %+v", st)
		}
		if st.Queries != 60 {
			t.Fatalf("tenant %s counted %d queries, want 60", st.Tenant, st.Queries)
		}
	}
}

func TestFairShareTenant(t *testing.T) {
	e := New(Options{Workers: 8, MaxInFlight: 16})
	defer e.Close()

	// Untenanted and lone-tenant callers get the global fair share.
	if got, want := e.FairShareTenant(""), e.FairShare(); got != want {
		t.Fatalf("untenanted share %d, global %d", got, want)
	}
	endA := e.BeginSubQueryTenant("a")
	if got, want := e.FairShareTenant("a"), e.FairShare(); got != want {
		t.Fatalf("lone tenant share %d, global %d", got, want)
	}

	// A second live tenant halves the slice; a second active branch of the
	// same tenant halves it again. Never above global, never below 1.
	endB := e.BeginSubQueryTenant("b")
	if got := e.FairShareTenant("a"); got != 4 {
		t.Fatalf("two-tenant share %d, want 4", got)
	}
	endA2 := e.BeginSubQueryTenant("a")
	if got := e.FairShareTenant("a"); got != 2 {
		t.Fatalf("two-branch share %d, want 2", got)
	}
	if got := e.FairShareTenant("zzz-idle"); got < 1 {
		t.Fatalf("idle tenant share %d, want >= 1", got)
	}
	endA()
	endA2()
	endB()
	// All branches done: back to the global share.
	if got, want := e.FairShareTenant("a"), e.FairShare(); got != want {
		t.Fatalf("post-drain share %d, global %d", got, want)
	}
}

func TestTenantStatsSortedAndCounted(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	e.CountQueryTenant("b")
	e.CountQueryTenant("a")
	e.CountQueryTenant("a")
	e.CountQueryTenant("") // global only, no tenant entry
	st := e.TenantStats()
	if len(st) != 2 || st[0].Tenant != "a" || st[1].Tenant != "b" {
		t.Fatalf("stats not sorted by tenant: %+v", st)
	}
	if st[0].Queries != 2 || st[1].Queries != 1 {
		t.Fatalf("query counts: %+v", st)
	}
}

func TestTenantMetricsExposition(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	r := metrics.NewRegistry()
	e.RegisterMetrics(r)

	e.CountQueryTenant("beta")
	e.CountQueryTenant("alpha")
	rel := e.AdmitTenant("alpha")
	defer rel()

	text := r.Text()
	for _, want := range []string{
		`dsidx_tenant_queries_total{tenant="alpha"} 1`,
		`dsidx_tenant_queries_total{tenant="beta"} 1`,
		`dsidx_tenant_in_flight{tenant="alpha"} 1`,
		`dsidx_tenant_in_flight{tenant="beta"} 0`,
		`dsidx_tenant_active_queries{tenant="alpha"} 0`,
		`dsidx_tenant_admit_waits_total{tenant="alpha"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
	// Labels sort deterministically: alpha before beta.
	if strings.Index(text, `tenant="alpha"`) > strings.Index(text, `tenant="beta"`) {
		t.Error("tenant samples not sorted by label")
	}
}
