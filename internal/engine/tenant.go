package engine

// Tenant-aware fairness: every admission and scheduling surface has a
// *Tenant variant taking an opaque tenant ID. The design keeps the global
// machinery untouched and layers a per-tenant gate in front of it:
//
//   - AdmitTenant first takes a tenant slot — each tenant with live work is
//     entitled to MaxInFlight / liveTenants slots (at least one) — and only
//     then the global semaphore. A storm from one tenant queues on its own
//     gate while other tenants sail through theirs, so the global window is
//     shared instead of captured. Caps shrink and grow as tenants arrive
//     and drain; a shrunken cap never evicts admitted queries, it just
//     holds newcomers until the tenant drains below it.
//   - FairShareTenant divides the pool first across tenants with active
//     queries, then across the tenant's own, and never exceeds the global
//     FairShare — with a single tenant (or none) it degenerates to exactly
//     the untenanted formula.
//
// Tenant "" is the untenanted default and bypasses everything here — those
// calls are byte-for-byte the pre-tenant paths, so existing single-tenant
// deployments see zero overhead and identical scheduling.
//
// State for a tenant is retained after its work drains (the counters feed
// the dsidx_tenant_* metric families); the map is bounded by the number of
// distinct tenant IDs the caller uses.

import (
	"context"
	"sort"
	"sync"
)

// tenantState is one tenant's accounting. Mutable fields are guarded by
// Engine.tmu.
type tenantState struct {
	// refs counts live holders — waiting admissions, admitted queries,
	// active query branches. A tenant is "live" (counted by liveTenants,
	// entitled to an admission share) while refs > 0.
	refs int
	// inFlight is the tenant's currently admitted query count; the
	// admission gate holds it at or under the tenant's cap.
	inFlight int
	// active is the tenant's executing query-branch count (the per-tenant
	// slice of Engine.active), dividing the tenant's pool share across its
	// own queries.
	active int
	// queries and waits are lifetime counters: logical queries counted and
	// admissions that had to block on the tenant gate.
	queries uint64
	waits   uint64
}

// tenant returns (creating if needed) the named tenant's state and adds one
// live reference. Caller holds tmu.
func (e *Engine) tenant(name string) *tenantState {
	ts := e.tenants[name]
	if ts == nil {
		ts = &tenantState{}
		e.tenants[name] = ts
	}
	ts.refs++
	if ts.refs == 1 {
		e.liveTenants++
	}
	return ts
}

// tenantDone drops one live reference. Caller holds tmu. Waiters are woken
// when the live-tenant count drops — every remaining tenant's cap grew.
func (e *Engine) tenantDone(ts *tenantState) {
	ts.refs--
	if ts.refs == 0 {
		e.liveTenants--
		e.tcond.Broadcast()
	}
}

// tenantCap is the per-tenant admission bound: an equal split of the global
// window across tenants with live work, never below one. Caller holds tmu.
func (e *Engine) tenantCap() int {
	return max(1, e.opt.MaxInFlight/max(1, e.liveTenants))
}

// AdmitTenant is Admit under a tenant identity: the query first clears the
// tenant's own admission gate (its equal split of MaxInFlight), then the
// global one. Tenant "" is exactly Admit.
func (e *Engine) AdmitTenant(tenant string) (release func()) {
	if tenant == "" {
		return e.Admit()
	}
	e.tmu.Lock()
	ts := e.tenant(tenant)
	for waited := false; ts.inFlight >= e.tenantCap(); {
		if !waited {
			waited = true
			ts.waits++
		}
		e.tcond.Wait()
	}
	ts.inFlight++
	e.tmu.Unlock()
	return e.tenantRelease(ts, e.Admit())
}

// AdmitTenantContext is AdmitTenant with cancellation: release is nil and
// err non-nil if ctx is done before both gates clear.
func (e *Engine) AdmitTenantContext(ctx context.Context, tenant string) (release func(), err error) {
	if tenant == "" {
		return e.AdmitContext(ctx)
	}
	// The tenant gate waits on a condition variable, which cannot select on
	// ctx; a cancellation callback broadcasting the condition bounds every
	// waiter's wake-up latency to one Broadcast.
	stop := context.AfterFunc(ctx, func() {
		e.tmu.Lock()
		e.tcond.Broadcast()
		e.tmu.Unlock()
	})
	defer stop()
	e.tmu.Lock()
	ts := e.tenant(tenant)
	for waited := false; ts.inFlight >= e.tenantCap(); {
		if ctx.Err() != nil {
			e.tenantDone(ts)
			e.tmu.Unlock()
			return nil, ctx.Err()
		}
		if !waited {
			waited = true
			ts.waits++
		}
		e.tcond.Wait()
	}
	ts.inFlight++
	e.tmu.Unlock()
	globalRelease, err := e.AdmitContext(ctx)
	if err != nil {
		e.tmu.Lock()
		ts.inFlight--
		e.tenantDone(ts)
		e.tcond.Broadcast()
		e.tmu.Unlock()
		return nil, err
	}
	return e.tenantRelease(ts, globalRelease), nil
}

// tenantRelease wraps a global admission release with the tenant-side exit:
// global slot first, then the tenant slot, then a broadcast so gate waiters
// (of this tenant, or of others whose cap grew) re-check.
func (e *Engine) tenantRelease(ts *tenantState, globalRelease func()) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			globalRelease()
			e.tmu.Lock()
			ts.inFlight--
			e.tenantDone(ts)
			e.tcond.Broadcast()
			e.tmu.Unlock()
		})
	}
}

// BeginQueryTenant is BeginQuery under a tenant identity. Tenant "" is
// exactly BeginQuery.
func (e *Engine) BeginQueryTenant(tenant string) (end func()) {
	e.CountQueryTenant(tenant)
	return e.BeginSubQueryTenant(tenant)
}

// CountQueryTenant records one logical query for the throughput counters —
// global always, per-tenant when tenant is non-empty.
func (e *Engine) CountQueryTenant(tenant string) {
	e.CountQuery()
	if tenant == "" {
		return
	}
	e.tmu.Lock()
	ts := e.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		e.tenants[tenant] = ts
	}
	ts.queries++
	e.tmu.Unlock()
}

// BeginSubQueryTenant marks one branch of an already-counted query as
// actively executing under a tenant identity: global and per-tenant active
// counts both move, so FairShareTenant can split the pool first across
// tenants, then across the tenant's own branches. Tenant "" is exactly
// BeginSubQuery.
func (e *Engine) BeginSubQueryTenant(tenant string) (end func()) {
	endGlobal := e.BeginSubQuery()
	if tenant == "" {
		return endGlobal
	}
	e.tmu.Lock()
	ts := e.tenant(tenant)
	ts.active++
	e.tmu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			endGlobal()
			e.tmu.Lock()
			ts.active--
			e.tenantDone(ts)
			e.tmu.Unlock()
		})
	}
}

// FairShareTenant is FairShare under a tenant identity: the pool divides
// first across tenants with active queries, then across this tenant's own
// active branches, and the result never exceeds the global fair share — so
// a lone tenant (or untenanted traffic) gets exactly FairShare, while under
// multi-tenant contention each tenant's storm is confined to its slice.
func (e *Engine) FairShareTenant(tenant string) int {
	global := e.FairShare()
	if tenant == "" {
		return global
	}
	e.tmu.Lock()
	nt := e.liveTenants
	own := 0
	if ts := e.tenants[tenant]; ts != nil {
		own = ts.active
	}
	e.tmu.Unlock()
	if nt <= 1 {
		return global
	}
	share := e.opt.Workers / max(1, nt) / max(1, own)
	return max(1, min(share, global))
}

// TenantStat is one tenant's public accounting snapshot.
type TenantStat struct {
	// Tenant is the opaque ID the caller supplied.
	Tenant string
	// InFlight and ActiveQueries are the tenant's current admitted and
	// executing-branch counts.
	InFlight      int
	ActiveQueries int
	// Queries counts the tenant's lifetime logical queries; AdmitWaits its
	// admissions that blocked on the tenant gate.
	Queries    uint64
	AdmitWaits uint64
}

// TenantStats snapshots every tenant ever seen, sorted by ID. Empty until
// the first tenanted call.
func (e *Engine) TenantStats() []TenantStat {
	e.tmu.Lock()
	out := make([]TenantStat, 0, len(e.tenants))
	for name, ts := range e.tenants {
		out = append(out, TenantStat{
			Tenant:        name,
			InFlight:      ts.inFlight,
			ActiveQueries: ts.active,
			Queries:       ts.queries,
			AdmitWaits:    ts.waits,
		})
	}
	e.tmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
