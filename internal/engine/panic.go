package engine

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic converted into an error at an engine boundary: a
// pool task (Group.Submit), a background job (Engine.Go), or a query
// coordinator. Value is the original panic payload; when it is itself an
// error — e.g. a *storage.BlockError from a cold-device read — Unwrap
// exposes it, so errors.As classification reaches through containment to
// the root cause. Stack is captured at recovery, for logs and tests.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: contained panic: %v", e.Value)
}

// Unwrap exposes the panic payload when it is an error, so errors.Is/As
// chains see through the containment wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Contain converts a recovered panic value into a *PanicError. Callers use
// it inside a deferred recover at any boundary where a panic must become a
// per-query error instead of a process crash:
//
//	defer func() {
//		if r := recover(); r != nil {
//			err = engine.Contain(r)
//		}
//	}()
func Contain(r any) error {
	return &PanicError{Value: r, Stack: debug.Stack()}
}
