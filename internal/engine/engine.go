// Package engine provides the shared worker pool that turns the single-query
// parallelism of MESSI (paper §III) into a multi-query serving engine.
//
// The paper's design gives every query all the cores: each Search call
// spawns one goroutine per worker for the tree-traversal phase and again for
// the queue-draining phase. That is the right shape for one query at a time,
// but a serving system has many queries in flight, and per-call goroutine
// fan-out makes them fight the scheduler instead of sharing it. ParIS+
// (Peng et al.) already time-shares one worker pool across pipeline stages;
// this package extends the idea across queries: a persistent, index-owned
// pool executes leaf-refinement and traversal tasks from *all* in-flight
// queries, interleaved through one FIFO run queue, so the hardware runs at
// most Workers tasks at any instant no matter how many queries are active.
//
// The three pieces:
//
//   - Engine: the pool itself. Fixed worker goroutines pull closures from a
//     bounded channel. Submission after Close degrades to inline execution,
//     so a closed engine is still correct, just serial.
//   - Group: a per-phase barrier. A query submits its phase's tasks to a
//     Group and Waits; only its own tasks gate the barrier, while the pool
//     freely interleaves other queries' work.
//   - Admission: a counting semaphore bounding the number of simultaneously
//     admitted queries, so a burst cannot oversubscribe memory (each
//     admitted query pins scratch buffers) or grow the run queue without
//     bound.
//
// One pool can serve several indexes: a sharding layer builds N indexes and
// hands each the same Engine (Retain/Close reference counting keeps the pool
// alive until the last holder closes), so total parallelism is governed
// globally — N shards of one query, or tasks of N unrelated queries, all
// share the same Workers execution slots and the same admission budget, and
// FairShare splits the pool over every query active on any attached index.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of pool goroutines. 0 means GOMAXPROCS.
	Workers int
	// MaxInFlight bounds the number of concurrently admitted queries.
	// 0 means 2×Workers — enough to keep the pool saturated while one
	// query is in a serial section, without unbounded scratch pinning.
	MaxInFlight int
	// QueueDepth is the task channel buffer. 0 means 64×Workers. Submit
	// blocks (backpressure on the query goroutine) when the queue is full.
	QueueDepth int
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2 * o.Workers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64 * o.Workers
	}
	return o
}

// Stats is a snapshot of the engine's throughput counters. Snapshots
// taken while writers run are internally consistent: every monotonic
// counter is non-decreasing across successive snapshots, and
// PeakInFlight >= InFlight always holds (Stats clamps the published
// peak against the in-flight count it just read, closing the window
// between a query bumping inFlight and raising the peak).
type Stats struct {
	Workers         int    // pool size
	PendingTasks    int    // tasks queued but not yet claimed by a worker
	InFlight        int    // queries currently admitted via Admit
	PeakInFlight    int    // high-water mark of InFlight
	Queries         uint64 // queries executed since creation, any entry path
	Tasks           uint64 // tasks executed by pool workers since creation
	AdmitWaits      uint64 // admissions that blocked on a full semaphore
	AdmitWaitNanos  uint64 // total nanoseconds spent blocked in admission
	SubmitFallbacks uint64 // trySubmit calls rejected by a full run queue
	TaskPanics      uint64 // pool tasks that panicked and were contained
	BgPanics        uint64 // background jobs (Go) that panicked and were contained
}

// Engine is a persistent worker pool shared by every query on one index.
type Engine struct {
	opt   Options
	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	// mu serializes Submit's closed-check-then-send against Close, so no
	// task can be enqueued after the workers have drained and exited.
	// closing flips first and gates new background jobs; closed flips after
	// the background jobs drain and gates task submission.
	mu      sync.RWMutex
	closing bool
	closed  bool
	once    sync.Once
	bg      sync.WaitGroup

	// refs counts the holders sharing this pool (New returns the first
	// reference, Retain adds one). Close releases a reference; the pool
	// only shuts down when the last one is released.
	refs atomic.Int64

	sem       chan struct{}
	inFlight  atomic.Int64
	peak      atomic.Int64
	queries   atomic.Uint64
	tasksDone atomic.Uint64
	active    atomic.Int64

	// Saturation counters: how often admission had to block (and for how
	// long), and how often an optional task was dropped because the run
	// queue was full. Together they are the pool's overload signal.
	admitWaits    atomic.Uint64
	admitWaitNs   atomic.Uint64
	submitDropped atomic.Uint64

	// Containment counters: panics recovered at the pool-task and
	// background-job boundaries instead of crashing the process.
	taskPanics atomic.Uint64
	bgPanics   atomic.Uint64

	// Tenant-fairness state (tenant.go): per-tenant accounting plus the
	// condition variable gating tenant admission. Untenanted traffic
	// (tenant "") never touches any of it.
	tmu         sync.Mutex
	tcond       *sync.Cond
	tenants     map[string]*tenantState
	liveTenants int
}

// New starts an engine with opt.Workers pool goroutines. The pool is idle
// (parked on a channel receive) until tasks arrive.
func New(opt Options) *Engine {
	opt = opt.normalize()
	e := &Engine{
		opt:     opt,
		tasks:   make(chan func(), opt.QueueDepth),
		quit:    make(chan struct{}),
		sem:     make(chan struct{}, opt.MaxInFlight),
		tenants: make(map[string]*tenantState),
	}
	e.tcond = sync.NewCond(&e.tmu)
	e.refs.Store(1)
	for w := 0; w < opt.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case fn := <-e.tasks:
			e.runTask(fn)
			e.tasksDone.Add(1)
		case <-e.quit:
			// Drain everything already enqueued so no Group waits forever,
			// then exit.
			for {
				select {
				case fn := <-e.tasks:
					e.runTask(fn)
					e.tasksDone.Add(1)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one pool task with last-resort panic containment: a
// worker goroutine has no caller to recover for it, so an escaped panic
// here would kill the process and strand every Group waiting on the pool.
// Group tasks contain their own panics (recording them for Group.Err)
// before this fires; this boundary covers raw submissions and is counted
// separately so an escape is visible in Stats.
func (e *Engine) runTask(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			e.taskPanics.Add(1)
		}
	}()
	fn()
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.opt.Workers }

// MaxInFlight returns the admission bound.
func (e *Engine) MaxInFlight() int { return e.opt.MaxInFlight }

// Retain adds a reference to the pool and returns it, so several indexes
// can share one set of workers: each holder calls Close exactly once, and
// the pool shuts down only when the last reference is released. The first
// reference belongs to the New caller.
func (e *Engine) Retain() *Engine {
	e.refs.Add(1)
	return e
}

// Close releases one reference to the pool; the last release stops it.
// In-flight background jobs (Go) are waited for with the pool still live,
// so a running merge finishes in parallel; then pending tasks are drained
// and the workers retire. Tasks submitted after the final Close run inline
// on the submitting goroutine. Extra Close calls past the reference count
// are ignored, so a single-owner engine keeps its idempotent-Close
// contract; the final Close is safe to call concurrently with running
// queries.
func (e *Engine) Close() {
	if e.refs.Add(-1) > 0 {
		return
	}
	e.once.Do(func() {
		e.mu.Lock()
		e.closing = true
		e.mu.Unlock()
		e.bg.Wait()
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		close(e.quit)
		e.wg.Wait()
	})
}

// Closing reports whether Close has begun. Long-running background jobs
// poll it between work items and exit early, so a job that could otherwise
// run forever (e.g. a merge loop racing a sustained append stream) cannot
// deadlock Close's wait.
func (e *Engine) Closing() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closing
}

// Go runs fn on a tracked background goroutine — the scheduling entry point
// for maintenance jobs like delta merges, which coordinate from their own
// goroutine (exactly as query coordinators run on caller goroutines) while
// their parallel phases Submit tasks to the pool. Close waits for every
// tracked job before retiring the workers, so a job observes a live pool
// for its whole run. Returns false, without running fn, once Close has
// begun: shutdown must not race with new maintenance work.
//
// A panic in fn is contained — counted in Stats.BgPanics, never crashing
// the process: a failed merge leaves the index serving its previous
// snapshot, which is strictly better than taking down every in-flight
// query with it.
func (e *Engine) Go(fn func()) bool {
	e.mu.RLock()
	if e.closing {
		e.mu.RUnlock()
		return false
	}
	e.bg.Add(1)
	e.mu.RUnlock()
	go func() {
		defer e.bg.Done()
		defer func() {
			if r := recover(); r != nil {
				e.bgPanics.Add(1)
			}
		}()
		fn()
	}()
	return true
}

// submit enqueues fn for pool execution, or runs it inline if the engine is
// closed. The RLock pins the open state across the send: Close cannot take
// the write lock (and so cannot retire the workers) until every in-progress
// send has landed in the channel, where the drain loop still sees it.
func (e *Engine) submit(fn func()) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		fn()
		return
	}
	e.tasks <- fn
	e.mu.RUnlock()
}

// trySubmit is submit without the blocking send: it enqueues fn only if a
// queue slot is immediately free, reporting whether it did. Tasks that are
// an optimization rather than required work (prefetch hints) use it from
// inside pool tasks, where a blocking send could deadlock a small pool —
// the submitting worker may be the only goroutine that could drain the
// queue it is waiting on. After the final Close it runs fn inline, exactly
// as submit does.
func (e *Engine) trySubmit(fn func()) bool {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		fn()
		return true
	}
	select {
	case e.tasks <- fn:
		e.mu.RUnlock()
		return true
	default:
		e.mu.RUnlock()
		e.submitDropped.Add(1)
		return false
	}
}

// Admit blocks until a query slot is free and returns its release function.
// Admission bounds scratch-buffer pinning and run-queue growth; it is used
// by the batch and serve layers, while direct Search calls manage their own
// concurrency.
func (e *Engine) Admit() (release func()) {
	select {
	case e.sem <- struct{}{}:
	default:
		t0 := time.Now()
		e.sem <- struct{}{}
		e.admitWaits.Add(1)
		e.admitWaitNs.Add(uint64(time.Since(t0)))
	}
	return e.admitted()
}

// AdmitContext is Admit with cancellation: it returns ctx.Err() instead of
// a release function if ctx is done before a slot frees, so serving loops
// waiting behind a long batch unblock promptly on shutdown.
func (e *Engine) AdmitContext(ctx context.Context) (release func(), err error) {
	select {
	case e.sem <- struct{}{}:
		return e.admitted(), nil
	default:
	}
	t0 := time.Now()
	select {
	case e.sem <- struct{}{}:
		e.admitWaits.Add(1)
		e.admitWaitNs.Add(uint64(time.Since(t0)))
		return e.admitted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *Engine) admitted() (release func()) {
	n := e.inFlight.Add(1)
	for {
		p := e.peak.Load()
		if n <= p || e.peak.CompareAndSwap(p, n) {
			break
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			e.inFlight.Add(-1)
			<-e.sem
		})
	}
}

// BeginQuery marks a query as actively executing on the pool and returns
// the matching end function. Unlike Admit (the blocking admission gate used
// by batch/serve layers), this is a plain counter: every query path calls
// it, so ActiveQueries — and the Stats.Queries throughput counter — see
// direct Search calls too, not just admitted traffic.
func (e *Engine) BeginQuery() (end func()) {
	e.CountQuery()
	return e.BeginSubQuery()
}

// CountQuery records one logical query in the Stats.Queries throughput
// counter without marking an active executor. A sharding layer counts each
// scatter-gather query exactly once through here, while its N per-shard
// sub-searches drive ActiveQueries via BeginSubQuery — so sampling Queries
// still yields logical QPS no matter the shard count.
func (e *Engine) CountQuery() { e.queries.Add(1) }

// BeginSubQuery marks one branch of an already-counted query as actively
// executing: FairShare splits the pool over it, Stats.Queries does not
// double-count it.
func (e *Engine) BeginSubQuery() (end func()) {
	e.active.Add(1)
	return func() { e.active.Add(-1) }
}

// ActiveQueries returns the number of queries currently executing.
func (e *Engine) ActiveQueries() int { return int(e.active.Load()) }

// FairShare returns the parallelism an unpinned query should fan out to:
// the whole pool when it is alone, a proportional slice when others are
// active. Space-sharing under load beats pure time-slicing because each
// query then submits fewer, larger tasks — less queue and barrier overhead
// per answer — while the pool stays fully busy as long as there is work.
func (e *Engine) FairShare() int {
	n := e.ActiveQueries()
	if n <= 1 {
		return e.opt.Workers
	}
	return max(1, e.opt.Workers/n)
}

// Stats snapshots the throughput counters.
func (e *Engine) Stats() Stats {
	// Load inFlight before peak: admitted() bumps inFlight first and
	// raises peak second, so a peak read after an inFlight read is >= any
	// concurrent raiser's target — except the raiser that has bumped but
	// not yet CASed, which the clamp below covers. The published snapshot
	// therefore always satisfies PeakInFlight >= InFlight.
	inFlight := int(e.inFlight.Load())
	peak := int(e.peak.Load())
	if inFlight > peak {
		peak = inFlight
	}
	return Stats{
		Workers:         e.opt.Workers,
		PendingTasks:    len(e.tasks),
		InFlight:        inFlight,
		PeakInFlight:    peak,
		Queries:         e.queries.Load(),
		Tasks:           e.tasksDone.Load(),
		AdmitWaits:      e.admitWaits.Load(),
		AdmitWaitNanos:  e.admitWaitNs.Load(),
		SubmitFallbacks: e.submitDropped.Load(),
		TaskPanics:      e.taskPanics.Load(),
		BgPanics:        e.bgPanics.Load(),
	}
}

// Group is one query phase's barrier over the shared pool: Submit hands
// tasks to the pool, Wait blocks until exactly this group's tasks finish.
//
// A task that panics is contained at the group boundary: the barrier still
// releases (the wrapped task always completes), and the first contained
// panic is available from Err after Wait — the delivery path that turns a
// cold-device fault inside one leaf-refinement task into a typed per-query
// error instead of a process crash.
type Group struct {
	e  *Engine
	wg sync.WaitGroup

	errMu sync.Mutex
	err   error
}

// NewGroup returns an empty group bound to the engine.
func (e *Engine) NewGroup() *Group { return &Group{e: e} }

// run executes fn with the group's containment: a panic is recorded as the
// group's error (first one wins) and swallowed, so the barrier releases.
func (g *Group) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			g.errMu.Lock()
			if g.err == nil {
				g.err = Contain(r)
			}
			g.errMu.Unlock()
		}
	}()
	fn()
}

// Submit schedules fn on the pool (or inline after Close).
func (g *Group) Submit(fn func()) {
	g.wg.Add(1)
	g.e.submit(func() {
		defer g.wg.Done()
		g.run(fn)
	})
}

// TrySubmit schedules fn only if the pool can take it without blocking,
// reporting whether it did. Safe to call from inside a pool task — unlike
// Submit, it cannot deadlock a worker against its own queue.
func (g *Group) TrySubmit(fn func()) bool {
	g.wg.Add(1)
	ok := g.e.trySubmit(func() {
		defer g.wg.Done()
		g.run(fn)
	})
	if !ok {
		g.wg.Done()
	}
	return ok
}

// Wait blocks until every task submitted to this group has finished.
func (g *Group) Wait() { g.wg.Wait() }

// Err returns the first contained panic of the group's tasks as a
// *PanicError, or nil. Call it after Wait; a phase whose Err is non-nil
// produced an incomplete result and must not be published.
func (g *Group) Err() error {
	g.errMu.Lock()
	defer g.errMu.Unlock()
	return g.err
}
