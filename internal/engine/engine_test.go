package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsEveryTask(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	var n atomic.Int64
	g := e.NewGroup()
	for i := 0; i < 1000; i++ {
		g.Submit(func() { n.Add(1) })
	}
	g.Wait()
	if got := n.Load(); got != 1000 {
		t.Fatalf("ran %d tasks, want 1000", got)
	}
	if st := e.Stats(); st.Tasks != 1000 {
		t.Fatalf("stats counted %d tasks, want 1000", st.Tasks)
	}
}

func TestGroupsInterleaveWithoutCrossWaiting(t *testing.T) {
	// Two groups on one pool: each Wait gates only its own tasks.
	e := New(Options{Workers: 2})
	defer e.Close()
	var a, b atomic.Int64
	ga, gb := e.NewGroup(), e.NewGroup()
	for i := 0; i < 100; i++ {
		ga.Submit(func() { a.Add(1) })
		gb.Submit(func() { b.Add(1) })
	}
	ga.Wait()
	if a.Load() != 100 {
		t.Fatalf("group a ran %d/100 at its own Wait", a.Load())
	}
	gb.Wait()
	if b.Load() != 100 {
		t.Fatalf("group b ran %d/100", b.Load())
	}
}

func TestSingleWorkerMakesProgress(t *testing.T) {
	// Tasks never depend on one another, so even one worker must finish
	// everything that many concurrent groups submit.
	e := New(Options{Workers: 1})
	defer e.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := e.NewGroup()
			for i := 0; i < 50; i++ {
				g.Submit(func() { n.Add(1) })
			}
			g.Wait()
		}()
	}
	wg.Wait()
	if n.Load() != 400 {
		t.Fatalf("ran %d tasks, want 400", n.Load())
	}
}

func TestSubmitAfterCloseRunsInline(t *testing.T) {
	e := New(Options{Workers: 2})
	e.Close()
	e.Close() // idempotent
	var n atomic.Int64
	g := e.NewGroup()
	g.Submit(func() { n.Add(1) })
	g.Wait()
	if n.Load() != 1 {
		t.Fatal("task submitted after Close did not run")
	}
}

func TestCloseConcurrentWithSubmitters(t *testing.T) {
	// Close racing many submitting goroutines: every task must still run
	// (pool or inline) and every Wait must return.
	e := New(Options{Workers: 4, QueueDepth: 8})
	var n atomic.Int64
	var wg sync.WaitGroup
	for q := 0; q < 16; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := e.NewGroup()
			for i := 0; i < 100; i++ {
				g.Submit(func() { n.Add(1) })
			}
			g.Wait()
		}()
	}
	e.Close()
	wg.Wait()
	if n.Load() != 1600 {
		t.Fatalf("ran %d tasks, want 1600", n.Load())
	}
}

func TestAdmissionBoundsInFlight(t *testing.T) {
	e := New(Options{Workers: 2, MaxInFlight: 3})
	defer e.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for q := 0; q < 20; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := e.Admit()
			defer release()
			end := e.BeginQuery()
			defer end()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			g := e.NewGroup()
			g.Submit(func() {})
			g.Wait()
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if peak.Load() > 3 {
		t.Fatalf("observed %d queries in flight, admission bound is 3", peak.Load())
	}
	st := e.Stats()
	if st.Queries != 20 {
		t.Fatalf("counted %d queries, want 20", st.Queries)
	}
	if st.PeakInFlight > 3 || st.PeakInFlight < 1 {
		t.Fatalf("peak in-flight %d out of range [1,3]", st.PeakInFlight)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after all queries released", st.InFlight)
	}
}

func TestAdmitContextUnblocksOnCancel(t *testing.T) {
	// A canceled waiter must not sit behind traffic holding every slot.
	e := New(Options{Workers: 1, MaxInFlight: 1})
	defer e.Close()
	release := e.Admit() // occupy the only slot
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.AdmitContext(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("AdmitContext returned a slot that was never free")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AdmitContext did not unblock on cancel")
	}
	release()
	// With the slot free again, AdmitContext succeeds.
	r2, err := e.AdmitContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()
}

func TestReleaseIsIdempotent(t *testing.T) {
	e := New(Options{Workers: 1, MaxInFlight: 1})
	defer e.Close()
	release := e.Admit()
	release()
	release() // second call must not double-free the slot
	r2 := e.Admit()
	r2()
	if got := e.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight %d, want 0", got)
	}
}

func TestFairShareScalesWithActiveQueries(t *testing.T) {
	e := New(Options{Workers: 8})
	defer e.Close()
	if got := e.FairShare(); got != 8 {
		t.Fatalf("idle fair share = %d, want full pool 8", got)
	}
	end1 := e.BeginQuery()
	if got := e.FairShare(); got != 8 {
		t.Fatalf("solo fair share = %d, want full pool 8", got)
	}
	end2 := e.BeginQuery()
	if got := e.FairShare(); got != 4 {
		t.Fatalf("fair share with 2 active = %d, want 4", got)
	}
	ends := make([]func(), 0, 14)
	for i := 0; i < 14; i++ {
		ends = append(ends, e.BeginQuery())
	}
	if got := e.FairShare(); got != 1 {
		t.Fatalf("fair share with 16 active = %d, want floor 1", got)
	}
	end1()
	end2()
	for _, end := range ends {
		end()
	}
	if got := e.ActiveQueries(); got != 0 {
		t.Fatalf("active = %d after all ended", got)
	}
}

func TestDefaults(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if e.Workers() <= 0 {
		t.Fatal("default workers not positive")
	}
	if e.MaxInFlight() != 2*e.Workers() {
		t.Fatalf("default MaxInFlight %d, want %d", e.MaxInFlight(), 2*e.Workers())
	}
}

func TestGoBackgroundJobCompletesBeforeClose(t *testing.T) {
	e := New(Options{Workers: 2})
	started := make(chan struct{})
	var finished atomic.Bool
	ok := e.Go(func() {
		close(started)
		// The job fans out on the pool mid-shutdown, like a merge does; the
		// pool must still execute its tasks.
		g := e.NewGroup()
		var ran atomic.Int64
		for i := 0; i < 8; i++ {
			g.Submit(func() { ran.Add(1) })
		}
		g.Wait()
		if ran.Load() != 8 {
			t.Error("background job's pool tasks did not all run")
		}
		finished.Store(true)
	})
	if !ok {
		t.Fatal("Go refused on an open engine")
	}
	<-started
	e.Close()
	if !finished.Load() {
		t.Fatal("Close returned before the background job finished")
	}
}

func TestGoRefusedAfterClose(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()
	if e.Go(func() { t.Error("job ran after Close") }) {
		t.Fatal("Go accepted a job after Close")
	}
	// Idempotent close with a refused job pending nowhere.
	e.Close()
}

func TestConcurrentCloseWithBackgroundJob(t *testing.T) {
	e := New(Options{Workers: 2})
	release := make(chan struct{})
	e.Go(func() { <-release })
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	// Give closers a moment to block on the job, then let it finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
}

func TestRetainKeepsSharedPoolAlive(t *testing.T) {
	// Two holders of one pool (the sharding layer's configuration): the
	// first Close must leave the pool running for the second holder, the
	// last Close stops it, and extra Closes past the count stay harmless.
	e := New(Options{Workers: 2})
	shared := e.Retain()
	var n atomic.Int64
	g := e.NewGroup()
	g.Submit(func() { n.Add(1) })
	g.Wait()

	e.Close() // first holder leaves
	if e.Closing() {
		t.Fatal("pool shutting down with a holder remaining")
	}
	done := make(chan struct{})
	g = shared.NewGroup()
	g.Submit(func() { n.Add(1); close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retained pool did not execute a task after the first Close")
	}
	g.Wait()
	if st := e.Stats(); st.Tasks != 2 {
		t.Fatalf("pool executed %d tasks, want 2", st.Tasks)
	}

	shared.Close() // last holder: real shutdown
	if !e.Closing() {
		t.Fatal("pool still open after the last holder closed")
	}
	shared.Close() // past the count: ignored
	// A closed pool degrades to inline execution.
	g = e.NewGroup()
	g.Submit(func() { n.Add(1) })
	g.Wait()
	if n.Load() != 3 {
		t.Fatalf("inline task did not run, n=%d", n.Load())
	}
}

func TestTrySubmitRefusesWhenSaturated(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()
	g := e.NewGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	g.Submit(func() { close(started); <-release })
	<-started
	// Worker blocked, queue empty: the non-blocking path must accept.
	var queued atomic.Int64
	if !g.TrySubmit(func() { queued.Add(1) }) {
		t.Fatal("TrySubmit refused with a free queue slot")
	}
	// Queue now full: TrySubmit must refuse instead of blocking — the
	// property the query pipeline's prefetch relies on to never deadlock a
	// worker submitting from inside the pool.
	for g.TrySubmit(func() { queued.Add(1) }) {
		// A refusal must arrive before the buffer could plausibly drain
		// (the only worker is parked on release).
	}
	close(release)
	g.Wait()
	if queued.Load() == 0 {
		t.Fatal("accepted TrySubmit task never ran")
	}
}

func TestTrySubmitAfterCloseRunsInline(t *testing.T) {
	e := New(Options{Workers: 1})
	g := e.NewGroup()
	e.Close()
	ran := false
	if !g.TrySubmit(func() { ran = true }) {
		t.Fatal("TrySubmit on a closed engine must report true")
	}
	if !ran {
		t.Fatal("TrySubmit on a closed engine must run the task inline")
	}
	g.Wait()
}
