package engine

import (
	"strings"
	"testing"

	"dsidx/internal/metrics"
)

func TestRegisterMetricsSamplesStats(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	r := metrics.NewRegistry()
	e.RegisterMetrics(r)

	release := e.Admit()
	end := e.BeginQuery()
	g := e.NewGroup()
	g.Submit(func() {})
	g.Wait()
	end()
	release()

	text := r.Text()
	for _, want := range []string{
		"dsidx_engine_workers 2",
		"dsidx_engine_queries_total 1",
		"dsidx_engine_queries_inflight 0",
		"dsidx_engine_queries_inflight_peak 1",
		"dsidx_engine_tasks_total 1",
		"dsidx_engine_admit_waits_total",
		"dsidx_engine_admit_wait_seconds_total",
		"dsidx_engine_submit_fallbacks_total",
		"dsidx_engine_tasks_pending",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
}
