package engine

// Stats-snapshot consistency under concurrency (run with -race): every
// monotonic counter must be non-decreasing across successive snapshots,
// PeakInFlight must never read below InFlight, and InFlight must respect
// the admission bound. The writers deliberately keep the semaphore and the
// run queue saturated so the blocking-admission and fallback counters see
// real traffic.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStatsConsistentUnderLoad(t *testing.T) {
	e := New(Options{Workers: 2, MaxInFlight: 2, QueueDepth: 4})
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// Query traffic: more admitters than slots, so some admissions block.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				release := e.Admit()
				end := e.BeginQuery()
				end()
				release()
			}
		}()
	}
	// Optional-task traffic against a tiny queue, forcing fallbacks; the
	// busy sink keeps workers occupied so the queue actually fills.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sink atomic.Uint64
		busy := func() {
			for i := 0; i < 100; i++ {
				sink.Add(1)
			}
		}
		for !stopped() {
			e.trySubmit(busy)
		}
	}()

	dur := 1 * time.Second
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var prev Stats
	for k := 0; ; k++ {
		if k%64 == 0 {
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched() // one CPU: let the writers interleave
		}
		st := e.Stats()
		if st.InFlight < 0 || st.InFlight > e.MaxInFlight() {
			t.Fatalf("sample %d: InFlight %d outside [0,%d]", k, st.InFlight, e.MaxInFlight())
		}
		if st.PeakInFlight < st.InFlight {
			t.Fatalf("sample %d: PeakInFlight %d < InFlight %d", k, st.PeakInFlight, st.InFlight)
		}
		if st.Queries < prev.Queries || st.Tasks < prev.Tasks ||
			st.AdmitWaits < prev.AdmitWaits || st.AdmitWaitNanos < prev.AdmitWaitNanos ||
			st.SubmitFallbacks < prev.SubmitFallbacks || st.PeakInFlight < prev.PeakInFlight {
			t.Fatalf("sample %d: counter regressed: %+v after %+v", k, st, prev)
		}
		prev = st
	}
	close(stop)
	wg.Wait()

	st := e.Stats()
	if st.Queries == 0 {
		t.Fatal("no queries recorded during the stress run")
	}
	if st.AdmitWaits > 0 && st.AdmitWaitNanos == 0 {
		t.Fatalf("blocked admissions recorded with zero wait time: %+v", st)
	}
}
