package gen

import (
	"math"
	"testing"

	"dsidx/internal/series"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Synthetic, "Synthetic"}, {SALD, "SALD"}, {Seismic, "Seismic"}, {Kind(99), "Kind(99)"},
	}
	for _, tc := range cases {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestDefaultLengths(t *testing.T) {
	if got := Synthetic.DefaultLength(); got != 256 {
		t.Errorf("Synthetic length = %d, want 256", got)
	}
	if got := SALD.DefaultLength(); got != 128 {
		t.Errorf("SALD length = %d, want 128", got)
	}
	if got := Seismic.DefaultLength(); got != 256 {
		t.Errorf("Seismic length = %d, want 256", got)
	}
}

func TestSeriesDeterministic(t *testing.T) {
	for _, kind := range []Kind{Synthetic, SALD, Seismic} {
		g := Generator{Kind: kind, Seed: 42}
		a := g.Series(7)
		b := g.Series(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: series 7 not deterministic at %d", kind, i)
			}
		}
	}
}

func TestSeriesDistinctAcrossIndexAndSeed(t *testing.T) {
	g1 := Generator{Kind: Synthetic, Seed: 1}
	g2 := Generator{Kind: Synthetic, Seed: 2}
	a, b, c := g1.Series(0), g1.Series(1), g2.Series(0)
	if series.SquaredED(a, b) == 0 {
		t.Error("consecutive series identical")
	}
	if series.SquaredED(a, c) == 0 {
		t.Error("different seeds produced identical series")
	}
}

func TestSeriesZNormalized(t *testing.T) {
	for _, kind := range []Kind{Synthetic, SALD, Seismic} {
		g := Generator{Kind: kind, Seed: 3}
		for i := int64(0); i < 10; i++ {
			s := g.Series(i)
			if m := s.Mean(); math.Abs(m) > 1e-4 {
				t.Errorf("%v series %d mean = %v, want ~0", kind, i, m)
			}
			if sd := s.Stddev(); math.Abs(sd-1) > 1e-3 {
				t.Errorf("%v series %d stddev = %v, want ~1", kind, i, sd)
			}
		}
	}
}

func TestCollectionMatchesSeries(t *testing.T) {
	// Parallel generation must produce exactly the per-index streams.
	g := Generator{Kind: Seismic, Seed: 9}
	coll := g.Collection(100)
	if coll.Len() != 100 || coll.SeriesLen() != 256 {
		t.Fatalf("shape = (%d,%d)", coll.Len(), coll.SeriesLen())
	}
	for _, i := range []int{0, 1, 50, 99} {
		want := g.Series(int64(i))
		got := coll.At(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("series %d differs at %d", i, j)
			}
		}
	}
}

func TestQueriesDisjointFromDataset(t *testing.T) {
	g := Generator{Kind: Synthetic, Seed: 5}
	coll := g.Collection(50)
	queries := g.Queries(5)
	if queries.Len() != 5 {
		t.Fatalf("queries len = %d", queries.Len())
	}
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		for i := 0; i < coll.Len(); i++ {
			if series.SquaredED(q, coll.At(i)) == 0 {
				t.Fatalf("query %d equals dataset series %d", qi, i)
			}
		}
	}
}

func TestCustomLength(t *testing.T) {
	g := Generator{Kind: Synthetic, Length: 64, Seed: 1}
	if got := len(g.Series(0)); got != 64 {
		t.Errorf("series length = %d, want 64", got)
	}
}

func TestFamiliesHaveDifferentSmoothness(t *testing.T) {
	// Sanity check that the families are genuinely different processes:
	// mean absolute first difference (of z-normalized series) should rank
	// random walk (smooth, diffusive) below SALD/Seismic-style signals.
	diff := func(k Kind) float64 {
		g := Generator{Kind: k, Length: 256, Seed: 11}
		var acc float64
		const count = 50
		for i := int64(0); i < count; i++ {
			s := g.Series(i)
			for j := 1; j < len(s); j++ {
				acc += math.Abs(float64(s[j] - s[j-1]))
			}
		}
		return acc / count
	}
	walk, sald, seismic := diff(Synthetic), diff(SALD), diff(Seismic)
	if walk >= sald {
		t.Errorf("random walk roughness %v should be below SALD %v", walk, sald)
	}
	if walk >= seismic {
		t.Errorf("random walk roughness %v should be below Seismic %v", walk, seismic)
	}
}
