// Package gen produces the three dataset families of the paper's evaluation
// (§IV): Synthetic (random walk), SALD (electroencephalography), and Seismic
// (seismic activity). The real SALD and Seismic collections are not
// redistributable, so this package generates synthetic stand-ins with the
// statistical character that drives index behaviour: random walks have
// near-independent PAA coefficients and prune extremely well, while the
// "real-like" families are temporally correlated, concentrating summaries in
// few iSAX regions and pruning worse — exactly the dataset effect the paper
// reports (§IV: "working on random data results in better pruning than that
// on real data").
//
// Generation is deterministic per (seed, series index): every series derives
// its own RNG stream via SplitMix64, so collections are reproducible
// bit-for-bit regardless of how many goroutines generate them.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"dsidx/internal/series"
)

// Kind identifies a dataset family.
type Kind int

const (
	// Synthetic is the random-walk family (100M series of 256 points in the
	// paper; scaled down here).
	Synthetic Kind = iota
	// SALD imitates the electroencephalography dataset (200M series of 128
	// points in the paper): band-limited oscillatory mixtures with drift.
	SALD
	// Seismic imitates the seismic-activity dataset (100M series of 256
	// points in the paper): low noise floors broken by decaying bursts.
	Seismic
)

// String returns the dataset family name as used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Synthetic:
		return "Synthetic"
	case SALD:
		return "SALD"
	case Seismic:
		return "Seismic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultLength returns the series length the paper uses for the family:
// 256 points, except SALD at 128.
func (k Kind) DefaultLength() int {
	if k == SALD {
		return 128
	}
	return 256
}

// Generator deterministically produces series of one dataset family.
// The zero value generates Synthetic series of length 256 with seed 0.
type Generator struct {
	Kind   Kind
	Length int   // series length; 0 means Kind.DefaultLength()
	Seed   int64 // stream seed; same seed ⇒ same collection
}

// length resolves the configured length.
func (g Generator) length() int {
	if g.Length > 0 {
		return g.Length
	}
	return g.Kind.DefaultLength()
}

// splitmix64 derives a well-mixed 64-bit value from x; used to give every
// series an independent RNG stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Series generates the i-th series of the stream. Negative indexes are
// reserved for query streams (see Queries) and are equally valid.
func (g Generator) Series(i int64) series.Series {
	seed := int64(splitmix64(uint64(g.Seed)*0x9e3779b97f4a7c15 + uint64(i) + 0x1234567))
	rng := rand.New(rand.NewSource(seed))
	n := g.length()
	s := make(series.Series, n)
	switch g.Kind {
	case SALD:
		g.fillSALD(rng, s)
	case Seismic:
		g.fillSeismic(rng, s)
	default:
		g.fillRandomWalk(rng, s)
	}
	s.ZNormalizeInPlace()
	return s
}

// fillRandomWalk writes a standard Gaussian random walk: the synthetic
// workload of this whole literature (iSAX, ADS+, ParIS, MESSI).
func (g Generator) fillRandomWalk(rng *rand.Rand, s series.Series) {
	var x float64
	for i := range s {
		x += rng.NormFloat64()
		s[i] = float32(x)
	}
}

// fillSALD writes an EEG-like mixture: a handful of band-limited
// oscillations with random phase, a slow baseline drift, and measurement
// noise. Neighboring points are strongly correlated, which is what makes
// real-data pruning harder than random-walk pruning.
func (g Generator) fillSALD(rng *rand.Rand, s series.Series) {
	n := len(s)
	const components = 4
	freqs := make([]float64, components)
	phases := make([]float64, components)
	amps := make([]float64, components)
	for c := 0; c < components; c++ {
		freqs[c] = 1 + rng.Float64()*15 // cycles over the window
		phases[c] = rng.Float64() * 2 * math.Pi
		amps[c] = 1 / (1 + freqs[c]/4) // rough 1/f spectrum
	}
	driftSlope := rng.NormFloat64() * 0.5
	for i := range s {
		t := float64(i) / float64(n)
		v := driftSlope * t
		for c := 0; c < components; c++ {
			v += amps[c] * math.Sin(2*math.Pi*freqs[c]*t+phases[c])
		}
		v += rng.NormFloat64() * 0.2
		s[i] = float32(v)
	}
}

// fillSeismic writes a seismogram-like series: a temporally correlated
// microseismic background (AR(1), as continuous seismic stations record)
// with a few exponentially decaying oscillatory bursts at random onsets.
func (g Generator) fillSeismic(rng *rand.Rand, s series.Series) {
	n := len(s)
	var bg float64
	for i := range s {
		bg = 0.85*bg + rng.NormFloat64()*0.3
		s[i] = float32(bg)
	}
	events := 1 + rng.Intn(3)
	for e := 0; e < events; e++ {
		onset := rng.Intn(n)
		amp := 0.5 + rng.Float64()*1.5
		freq := 8 + rng.Float64()*24
		decay := 4 + rng.Float64()*12
		phase := rng.Float64() * 2 * math.Pi
		for i := onset; i < n; i++ {
			t := float64(i-onset) / float64(n)
			s[i] += float32(amp * math.Exp(-decay*t) * math.Sin(2*math.Pi*freq*t+phase))
		}
	}
}

// Collection generates n series (indexes 0..n-1) in parallel and returns
// them as one contiguous collection.
func (g Generator) Collection(n int) *series.Collection {
	coll := series.NewCollection(n, g.length())
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = max(1, n)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				coll.Set(i, g.Series(int64(i)))
			}
		}(w)
	}
	wg.Wait()
	return coll
}

// Queries generates n query series drawn from the same family but from a
// disjoint stream (so queries are not dataset members), matching the paper's
// methodology of querying with fresh series from the same distribution.
func (g Generator) Queries(n int) *series.Collection {
	coll := series.NewCollection(n, g.length())
	for i := 0; i < n; i++ {
		coll.Set(i, g.Series(-(int64(i) + 1)))
	}
	return coll
}

// PerturbedQueries generates n queries by adding Gaussian noise of relative
// magnitude eps to randomly chosen members of coll (then re-normalizing).
//
// Why this exists: at the paper's scale (100M series) a fresh random query
// has a very close nearest neighbor simply because the space is dense, which
// is what gives the indexes their pruning power. A scaled-down collection is
// sparse, so fresh random queries would have distant NNs and graceless
// pruning — a scale artifact, not an algorithmic difference. Perturbed
// queries restore the paper's pruning regime: the NN is at distance ~eps,
// exactly as dense-collection queries behave. The experiments document which
// query flavor each figure uses.
func (g Generator) PerturbedQueries(coll *series.Collection, n int, eps float64) *series.Collection {
	out := series.NewCollection(n, coll.SeriesLen())
	rng := rand.New(rand.NewSource(g.Seed*0x5851f42d + 0x14057b7e))
	for i := 0; i < n; i++ {
		base := coll.At(rng.Intn(coll.Len()))
		q := base.Clone()
		for j := range q {
			q[j] += float32(rng.NormFloat64() * eps)
		}
		q.ZNormalizeInPlace()
		out.Set(i, q)
	}
	return out
}
