// Package storage provides the on-disk substrate for the ParIS/ParIS+ and
// ADS+ experiments: a byte store abstraction, a simulated disk that injects
// the latency and bandwidth profile of the paper's testbed devices (HDD and
// SATA SSD), and a binary file format for large data series collections.
//
// The paper evaluates on 100 GB collections stored on real devices. This
// repository scales the collections down and replaces the devices with a
// latency model; what the experiments need preserved is (a) the cost gap
// between sequential and random access on an HDD, (b) the much lower random
// access penalty of an SSD, and (c) the fact that a device serializes
// requests, making I/O a maskable pipeline stage (the effect ParIS+
// exploits). Disk reproduces all three.
package storage

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a random-access byte store. Implementations must support
// concurrent calls.
type Store interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current store size in bytes.
	Size() int64
	// Truncate resizes the store.
	Truncate(size int64) error
}

// MemStore is an in-memory Store. All experiments use MemStore under a
// latency-injecting Disk: the bytes live in RAM while the timing behaves
// like the configured device, which keeps benchmark runs hermetic.
type MemStore struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadAt implements io.ReaderAt.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off < 0 {
		return 0, errors.New("storage: negative offset")
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the store as needed. Growth
// doubles capacity so append-heavy workloads (leaf logs) stay amortized
// O(1) per byte.
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("storage: negative offset")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		if end > int64(cap(m.data)) {
			newCap := int64(2 * cap(m.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, m.data)
			m.data = grown
		} else {
			m.data = m.data[:end]
		}
	}
	copy(m.data[off:end], p)
	return len(p), nil
}

// Size returns the store size.
func (m *MemStore) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}

// Truncate resizes the store.
func (m *MemStore) Truncate(size int64) error {
	if size < 0 {
		return errors.New("storage: negative size")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

// Profile models a storage device's performance characteristics.
type Profile struct {
	Name string
	// Seek is the penalty charged when an access is not sequential with the
	// previous access of the same kind.
	Seek time.Duration
	// ReadBW and WriteBW are sustained transfer rates in bytes/second.
	ReadBW  float64
	WriteBW float64
	// Parallelism is the number of requests the device services
	// concurrently (RAID0 spindle count, SSD NCQ depth). 0 means 1. This is
	// what lets parallel query answering overlap random reads — the
	// behaviour of the paper's RAID0/SSD testbed.
	Parallelism int
}

// Device profiles roughly matching the paper's testbed; absolute values
// matter less than their ratios (HDD seek ≈ 100× SSD seek).
var (
	// HDD models the paper's RAID0 array of spinning disks: expensive
	// seeks, high sequential bandwidth, several concurrent spindles.
	HDD = Profile{Name: "HDD", Seek: 8 * time.Millisecond, ReadBW: 1000e6, WriteBW: 800e6, Parallelism: 8}
	// SSD models a SATA SSD: cheap random access, deep command queue.
	SSD = Profile{Name: "SSD", Seek: 100 * time.Microsecond, ReadBW: 500e6, WriteBW: 450e6, Parallelism: 16}
	// Unthrottled injects no latency at all; unit tests use it.
	Unthrottled = Profile{Name: "Unthrottled"}
)

// Metrics accumulates I/O accounting for a Disk. Time fields are the
// modeled device-busy durations (the injected sleep time at scale 1),
// summed over all channels.
type Metrics struct {
	BytesRead    int64
	BytesWritten int64
	ReadOps      int64
	WriteOps     int64
	Seeks        int64
	ReadBusy     time.Duration
	WriteBusy    time.Duration
}

// Disk wraps a Store with a device Profile. Device time is divided among
// Profile.Parallelism channels: each request occupies one channel for its
// modeled duration, so up to Parallelism requests overlap and further
// concurrency queues — matching how a RAID array or SSD behaves under
// multi-threaded access, and making "I/O bound" meaningful for the pipeline
// experiments.
type Disk struct {
	store   Store
	profile Profile
	scale   atomic.Uint64 // float64 bits; multiplier on injected latency

	chans []diskChannel
	rr    atomic.Uint64 // round-robin picker for non-sequential ops

	bytesRead, bytesWritten atomic.Int64
	readOps, writeOps       atomic.Int64
	seeks                   atomic.Int64
	readBusy, writeBusy     atomic.Int64 // nanoseconds
}

// NewDisk wraps store with the given device profile at scale 1.
func NewDisk(store Store, profile Profile) *Disk {
	par := profile.Parallelism
	if par < 1 {
		par = 1
	}
	d := &Disk{store: store, profile: profile, chans: make([]diskChannel, par)}
	for i := range d.chans {
		d.chans[i].lastRead.Store(-1)
		d.chans[i].lastWrite.Store(-1)
	}
	d.scale.Store(math.Float64bits(1))
	return d
}

// SetScale adjusts the injected latency multiplier: 1 is realtime, 0
// disables sleeping entirely (metrics still accumulate modeled time).
func (d *Disk) SetScale(s float64) {
	if s < 0 {
		s = 0
	}
	d.scale.Store(math.Float64bits(s))
}

// Profile returns the device profile.
func (d *Disk) Profile() Profile { return d.profile }

// Metrics returns a snapshot of accumulated I/O accounting.
func (d *Disk) Metrics() Metrics {
	return Metrics{
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		ReadOps:      d.readOps.Load(),
		WriteOps:     d.writeOps.Load(),
		Seeks:        d.seeks.Load(),
		ReadBusy:     time.Duration(d.readBusy.Load()),
		WriteBusy:    time.Duration(d.writeBusy.Load()),
	}
}

// ResetMetrics zeroes the accounting (e.g. between index build and query
// phases of an experiment).
func (d *Disk) ResetMetrics() {
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
	d.readOps.Store(0)
	d.writeOps.Store(0)
	d.seeks.Store(0)
	d.readBusy.Store(0)
	d.writeBusy.Store(0)
}

// diskChannel is one unit of device parallelism. Sub-granularity sleeps
// are accumulated as debt and paid in batches: operating-system timers
// cannot sleep for tens of nanoseconds, and naively sleeping per tiny
// sequential write would inflate modeled time by orders of magnitude.
//
// Each channel tracks the end offset of its previous read and write, so
// sequential detection is per stream, not global: N concurrent sequential
// scans each continue on their own channel and are charged seeks only when
// they actually jump. (A single shared last-offset pair used to mark nearly
// every op of parallel scans as a seek — wildly overstating HDD cost in
// exactly the out-of-core experiments that run parallel streams.)
type diskChannel struct {
	mu        sync.Mutex
	debt      time.Duration
	lastRead  atomic.Int64 // offset right after this channel's previous read
	lastWrite atomic.Int64
}

// sleepGranularity is the smallest sleep worth issuing; debt below it
// accumulates.
const sleepGranularity = 200 * time.Microsecond

// claim picks the channel an operation at [off, end) runs on and reports
// whether it pays a seek: a channel whose previous access of the same kind
// ended exactly at off is the continuation of that sequential stream (the
// CompareAndSwap advances it to end atomically, so two racing continuations
// cannot both claim it); with no match the op is a seek and lands on a
// round-robin channel.
func (d *Disk) claim(off, end int64, write bool) (ch *diskChannel, seek bool) {
	for i := range d.chans {
		c := &d.chans[i]
		last := &c.lastRead
		if write {
			last = &c.lastWrite
		}
		if last.CompareAndSwap(off, end) {
			return c, false
		}
	}
	c := &d.chans[int(d.rr.Add(1)-1)%len(d.chans)]
	if write {
		c.lastWrite.Store(end)
	} else {
		c.lastRead.Store(end)
	}
	return c, true
}

// busy computes the modeled duration of a transfer of n bytes at bw with an
// optional seek, then occupies the claimed device channel for that long
// (scaled) — a sequential stream's ops serialize on their channel, while
// independent streams overlap up to the profile's parallelism.
func (d *Disk) busy(ch *diskChannel, n int, bw float64, seek bool) time.Duration {
	var dur time.Duration
	if seek {
		dur += d.profile.Seek
	}
	if bw > 0 && n > 0 {
		dur += time.Duration(float64(n) / bw * float64(time.Second))
	}
	if dur <= 0 {
		return 0
	}
	if scale := math.Float64frombits(d.scale.Load()); scale > 0 {
		ch.mu.Lock()
		ch.debt += time.Duration(float64(dur) * scale)
		if ch.debt >= sleepGranularity {
			t0 := time.Now()
			time.Sleep(ch.debt)
			// Operating-system sleeps overshoot; credit the overshoot
			// against future debt so modeled time stays accurate in the
			// long run (debt may go negative).
			ch.debt -= time.Since(t0)
		}
		ch.mu.Unlock()
	}
	return dur
}

// ReadAt reads from the store, charging device time.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	ch, seek := d.claim(off, off+int64(len(p)), false)
	dur := d.busy(ch, len(p), d.profile.ReadBW, seek)
	d.bytesRead.Add(int64(len(p)))
	d.readOps.Add(1)
	if seek {
		d.seeks.Add(1)
	}
	d.readBusy.Add(int64(dur))
	return d.store.ReadAt(p, off)
}

// WriteAt writes to the store, charging device time.
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	ch, seek := d.claim(off, off+int64(len(p)), true)
	dur := d.busy(ch, len(p), d.profile.WriteBW, seek)
	d.bytesWritten.Add(int64(len(p)))
	d.writeOps.Add(1)
	if seek {
		d.seeks.Add(1)
	}
	d.writeBusy.Add(int64(dur))
	return d.store.WriteAt(p, off)
}

// Size returns the underlying store size.
func (d *Disk) Size() int64 { return d.store.Size() }

// Truncate resizes the underlying store.
func (d *Disk) Truncate(size int64) error { return d.store.Truncate(size) }

var _ Store = (*Disk)(nil)

// ErrCorrupt reports an invalid or truncated file structure.
var ErrCorrupt = errors.New("storage: corrupt file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
