package storage

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"dsidx/internal/series"
)

func TestMemStoreReadWrite(t *testing.T) {
	m := NewMemStore()
	if _, err := m.WriteAt([]byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 8 {
		t.Fatalf("Size = %d, want 8", m.Size())
	}
	buf := make([]byte, 5)
	if _, err := m.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	// Reads past the end return EOF.
	if _, err := m.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Fatalf("read past end: %v, want EOF", err)
	}
	// Short read at the boundary.
	n, err := m.ReadAt(buf, 6)
	if n != 2 || !errors.Is(err, io.EOF) {
		t.Fatalf("boundary read = (%d,%v), want (2,EOF)", n, err)
	}
}

func TestMemStoreTruncate(t *testing.T) {
	m := NewMemStore()
	if _, err := m.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	if err := m.Truncate(10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf[:3]) != "abc" || buf[5] != 0 {
		t.Fatalf("truncate-grow contents wrong: %q", buf)
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("negative truncate should error")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	m := NewMemStore()
	if err := m.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := []byte{byte(w)}
			for i := 0; i < 200; i++ {
				if _, err := m.WriteAt(buf, int64(w*512+i%512)); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.ReadAt(buf, int64(w*512)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDiskMetricsAndSeeks(t *testing.T) {
	d := NewDisk(NewMemStore(), Unthrottled)
	if _, err := d.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(make([]byte, 100), 100); err != nil { // sequential
		t.Fatal(err)
	}
	if _, err := d.WriteAt(make([]byte, 100), 500); err != nil { // seek
		t.Fatal(err)
	}
	buf := make([]byte, 50)
	if _, err := d.ReadAt(buf, 0); err != nil { // first read: seek
		t.Fatal(err)
	}
	if _, err := d.ReadAt(buf, 50); err != nil { // sequential
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.BytesWritten != 300 || m.WriteOps != 3 {
		t.Errorf("write metrics = %+v", m)
	}
	if m.BytesRead != 100 || m.ReadOps != 2 {
		t.Errorf("read metrics = %+v", m)
	}
	// Seeks: first write, jump write, first read = 3.
	if m.Seeks != 3 {
		t.Errorf("Seeks = %d, want 3", m.Seeks)
	}
	d.ResetMetrics()
	if d.Metrics() != (Metrics{}) {
		t.Error("ResetMetrics did not zero")
	}
}

func TestDiskBusyAccounting(t *testing.T) {
	// scale 0: no sleeping, but modeled busy time accumulates.
	profile := Profile{Name: "test", Seek: 10 * time.Millisecond, ReadBW: 1e6, WriteBW: 1e6}
	d := NewDisk(NewMemStore(), profile)
	d.SetScale(0)
	start := time.Now()
	if _, err := d.WriteAt(make([]byte, 1e6), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("scale 0 slept for %v", elapsed)
	}
	m := d.Metrics()
	want := 10*time.Millisecond + time.Second // seek + 1e6 bytes at 1e6 B/s
	if m.WriteBusy != want {
		t.Errorf("WriteBusy = %v, want %v", m.WriteBusy, want)
	}
}

func TestDiskRealSleep(t *testing.T) {
	profile := Profile{Name: "test", Seek: 20 * time.Millisecond}
	d := NewDisk(NewMemStore(), profile)
	start := time.Now()
	if _, err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("expected ≥20ms injected latency, slept %v", elapsed)
	}
}

func TestDiskSerializesDeviceTime(t *testing.T) {
	// Two concurrent 25ms operations on one device must take ~50ms total.
	profile := Profile{Name: "test", Seek: 25 * time.Millisecond}
	d := NewDisk(NewMemStore(), profile)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.WriteAt([]byte{1}, int64(i*100)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("device did not serialize: %v elapsed, want ≥50ms", elapsed)
	}
}

func makeCollection(n, length int) *series.Collection {
	coll := series.NewCollection(n, length)
	for i := 0; i < n; i++ {
		s := coll.At(i)
		for j := range s {
			s[j] = float32(i*1000 + j)
		}
	}
	return coll
}

func TestSeriesFileRoundTrip(t *testing.T) {
	store := NewMemStore()
	coll := makeCollection(10, 16)
	f, err := WriteCollection(store, coll)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != 10 || f.Length() != 16 {
		t.Fatalf("file shape = (%d,%d)", f.Count(), f.Length())
	}

	// Reopen and verify.
	g, err := OpenSeriesFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != 10 || g.Length() != 16 {
		t.Fatalf("reopened shape = (%d,%d)", g.Count(), g.Length())
	}
	batch, err := g.ReadBatch(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := coll.At(3 + i)
		got := batch.At(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("batch series %d differs at %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	dst := make(series.Series, 16)
	if err := g.ReadSeries(9, dst); err != nil {
		t.Fatal(err)
	}
	for j, v := range coll.At(9) {
		if dst[j] != v {
			t.Fatalf("ReadSeries(9)[%d] = %v, want %v", j, dst[j], v)
		}
	}
}

func TestSeriesFileErrors(t *testing.T) {
	store := NewMemStore()
	if _, err := CreateSeriesFile(store, 0); err == nil {
		t.Error("zero length accepted")
	}
	f, err := CreateSeriesFile(store, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(series.NewCollection(1, 4)); err == nil {
		t.Error("length-mismatched append accepted")
	}
	if _, err := f.ReadBatch(0, 1); err == nil {
		t.Error("out-of-range batch accepted")
	}
	if err := f.ReadSeries(0, make(series.Series, 8)); err == nil {
		t.Error("out-of-range series accepted")
	}
	if err := f.Append(makeCollection(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadSeries(0, make(series.Series, 4)); err == nil {
		t.Error("short destination accepted")
	}

	// Corrupt magic.
	bad := NewMemStore()
	if _, err := bad.WriteAt([]byte("NOPExxxxxxxxxxxx"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeriesFile(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt open: %v, want ErrCorrupt", err)
	}
}

func TestLeafStoreRoundTrip(t *testing.T) {
	store := NewMemStore()
	ls := NewLeafStore(store)
	blobs := [][]byte{[]byte("leaf-a"), []byte("leaf-bb"), {}, []byte("leaf-cccc")}
	refs := make([]LeafRef, len(blobs))
	for i, b := range blobs {
		ref, err := ls.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	for i, want := range blobs {
		got, err := ls.Read(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("blob %d = %q, want %q", i, got, want)
		}
	}
	// Bad ref: wrong length.
	badRef := LeafRef{Offset: refs[1].Offset, Len: refs[1].Len + 1}
	if _, err := ls.Read(badRef); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad ref read: %v, want ErrCorrupt", err)
	}
}

func TestLeafStoreConcurrentAppends(t *testing.T) {
	ls := NewLeafStore(NewMemStore())
	const workers, perWorker = 8, 50
	type result struct {
		ref  LeafRef
		blob []byte
	}
	results := make([][]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs := make([]result, perWorker)
			for i := range rs {
				blob := []byte{byte(w), byte(i), byte(w + i)}
				ref, err := ls.Append(blob)
				if err != nil {
					t.Error(err)
					return
				}
				rs[i] = result{ref, blob}
			}
			results[w] = rs
		}(w)
	}
	wg.Wait()
	for w, rs := range results {
		for i, r := range rs {
			got, err := ls.Read(r.ref)
			if err != nil {
				t.Fatalf("worker %d blob %d: %v", w, i, err)
			}
			if string(got) != string(r.blob) {
				t.Fatalf("worker %d blob %d corrupted", w, i)
			}
		}
	}
}
