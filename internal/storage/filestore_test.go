package storage

import (
	"path/filepath"
	"testing"

	"dsidx/internal/series"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.bin")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 0 {
		t.Fatalf("new file size = %d", fs.Size())
	}
	if _, err := fs.WriteAt([]byte("hello"), 10); err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 15 {
		t.Fatalf("Size = %d, want 15", fs.Size())
	}
	buf := make([]byte, 5)
	if _, err := fs.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if err := fs.Truncate(12); err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 12 {
		t.Fatalf("after truncate Size = %d", fs.Size())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen preserves contents and size.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if fs2.Size() != 12 {
		t.Fatalf("reopened Size = %d", fs2.Size())
	}
	if _, err := fs2.ReadAt(buf[:2], 10); err != nil {
		t.Fatal(err)
	}
	if string(buf[:2]) != "he" {
		t.Fatalf("reopened contents %q", buf[:2])
	}
}

func TestFileStoreSeriesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coll.dsf")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	coll := makeCollection(20, 8)
	if _, err := WriteCollection(fs, coll); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	f, err := OpenSeriesFile(fs2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != 20 || f.Length() != 8 {
		t.Fatalf("shape (%d,%d)", f.Count(), f.Length())
	}
	dst := make(series.Series, 8)
	if err := f.ReadSeries(13, dst); err != nil {
		t.Fatal(err)
	}
	want := coll.At(13)
	for j := range want {
		if dst[j] != want[j] {
			t.Fatalf("series 13 differs at %d", j)
		}
	}
}

// TestFileStoreLeafStore round-trips leaf blobs through a real file,
// including reopening: refs handed out before the close must still resolve
// on the reopened store, and appends must continue from the persisted end.
func TestFileStoreLeafStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "leaves.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLeafStore(fs)
	blobs := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	refs := make([]LeafRef, len(blobs))
	for i, b := range blobs {
		if refs[i], err = ls.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	ls2 := NewLeafStore(fs2)
	for i, want := range blobs {
		got, err := ls2.Read(refs[i])
		if err != nil {
			t.Fatalf("reopened read %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("reopened blob %d = %q, want %q", i, got, want)
		}
	}
	ref, err := ls2.Append([]byte("post-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ls2.Read(ref); err != nil || string(got) != "post-reopen" {
		t.Fatalf("post-reopen append read = (%q, %v)", got, err)
	}
	if got, err := ls2.Read(refs[2]); err != nil || string(got) != string(blobs[2]) {
		t.Fatalf("old ref after new append = (%q, %v)", got, err)
	}
}

func TestOpenFileStoreBadPath(t *testing.T) {
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("expected error for unreachable path")
	}
}
