package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultClass classifies an I/O failure by how a reader should respond to it.
type FaultClass int

const (
	// FaultTransient marks a failure worth retrying: the device hiccuped
	// but the data is intact (bus reset, timeout, contention).
	FaultTransient FaultClass = iota
	// FaultPermanent marks a failure retries cannot fix: the bytes are
	// gone (bad sector, dead device, truncated file).
	FaultPermanent
)

// String names the class for error messages and metrics labels.
func (c FaultClass) String() string {
	if c == FaultTransient {
		return "transient"
	}
	return "permanent"
}

// ReadError is the typed error a FaultStore injects: the failed byte range
// plus the fault's class, so the retry layer above can tell a hiccup from a
// dead sector. Unwrap exposes the underlying cause for errors.Is chains.
type ReadError struct {
	Off   int64
	Len   int
	Class FaultClass
	Err   error
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("storage: %s read fault at [%d,%d): %v", e.Class, e.Off, e.Off+int64(e.Len), e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// IsTransient reports whether err carries an explicitly transient fault
// classification. Anything else — permanent faults, plain I/O errors,
// corruption — is treated as non-retryable: only a fault the device itself
// marked as a hiccup justifies burning retry time.
func IsTransient(err error) bool {
	var re *ReadError
	return errors.As(err, &re) && re.Class == FaultTransient
}

// Range is a half-open byte range [Start, End) of the underlying store.
type Range struct {
	Start, End int64
}

// overlaps reports whether the range intersects [off, off+n).
func (r Range) overlaps(off int64, n int) bool {
	return off < r.End && off+int64(n) > r.Start
}

// FaultPlan scripts the failures a FaultStore injects. The zero plan
// injects nothing. Plans are values: tests build them inline, swap them
// mid-run with SetPlan, and clear them with Heal.
type FaultPlan struct {
	// Seed fixes the random stream driving probabilistic faults, so a
	// plan replays identically for a serial caller. (Concurrent readers
	// still share one stream; per-call outcomes then depend on
	// interleaving, but totals remain plan-bounded.)
	Seed int64
	// TransientProb is the per-read probability of starting a transient
	// fault burst.
	TransientProb float64
	// TransientBurst is the number of consecutive reads that fail once a
	// burst starts (0 means 1) — modeling the correlated failures real
	// devices produce, which is what exhausts naive retry loops.
	TransientBurst int
	// PermanentRanges lists byte ranges whose reads always fail with a
	// permanent fault — a dead region of the device.
	PermanentRanges []Range
	// LatencyProb and Latency inject stalls: with probability LatencyProb
	// a read sleeps Latency before being served. Slow-but-working reads
	// exercise the timeout-free retry path and prefetch masking.
	LatencyProb float64
	Latency     time.Duration
}

// Active reports whether the plan injects anything (the zero plan does
// not).
func (p FaultPlan) Active() bool {
	return p.TransientProb > 0 || len(p.PermanentRanges) > 0 || p.LatencyProb > 0
}

// FaultStats counts the faults a FaultStore has injected.
type FaultStats struct {
	TransientFaults uint64
	PermanentFaults uint64
	LatencySpikes   uint64
	Reads           uint64
}

// FaultStore wraps a Store and injects read faults per a scriptable,
// seeded FaultPlan — the deterministic test substrate for every
// fault-tolerance layer above it. Writes, Size and Truncate pass through
// untouched: the failure modes under study are on the read path, where an
// index serves queries off cold data.
//
// errFault is the sentinel cause under every injected ReadError, so tests
// can errors.Is for "injected by the plan" regardless of class.
type FaultStore struct {
	inner Store

	mu    sync.Mutex
	rng   *rand.Rand
	plan  FaultPlan
	burst int // remaining reads of the active transient burst
	stats FaultStats
}

// ErrInjected is the root cause of every fault a FaultStore injects.
var ErrInjected = errors.New("injected fault")

// NewFaultStore wraps inner with the given plan.
func NewFaultStore(inner Store, plan FaultPlan) *FaultStore {
	f := &FaultStore{inner: inner}
	f.SetPlan(plan)
	return f
}

// SetPlan replaces the active plan, reseeding the random stream and
// clearing any in-progress burst. Safe to call while reads are in flight —
// the device "heals" or "degrades" mid-run.
func (f *FaultStore) SetPlan(plan FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	f.rng = rand.New(rand.NewSource(plan.Seed))
	f.burst = 0
}

// Heal clears the plan: subsequent reads pass through fault-free.
func (f *FaultStore) Heal() { f.SetPlan(FaultPlan{}) }

// Plan returns the active plan.
func (f *FaultStore) Plan() FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan
}

// Stats snapshots the injection counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ReadAt consults the plan, then either fails with a typed ReadError,
// stalls, or serves the read from the wrapped store.
func (f *FaultStore) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.stats.Reads++
	for _, r := range f.plan.PermanentRanges {
		if r.overlaps(off, len(p)) {
			f.stats.PermanentFaults++
			f.mu.Unlock()
			return 0, &ReadError{Off: off, Len: len(p), Class: FaultPermanent, Err: ErrInjected}
		}
	}
	if f.burst > 0 {
		f.burst--
		f.stats.TransientFaults++
		f.mu.Unlock()
		return 0, &ReadError{Off: off, Len: len(p), Class: FaultTransient, Err: ErrInjected}
	}
	if f.plan.TransientProb > 0 && f.rng.Float64() < f.plan.TransientProb {
		if f.plan.TransientBurst > 1 {
			f.burst = f.plan.TransientBurst - 1
		}
		f.stats.TransientFaults++
		f.mu.Unlock()
		return 0, &ReadError{Off: off, Len: len(p), Class: FaultTransient, Err: ErrInjected}
	}
	var stall time.Duration
	if f.plan.LatencyProb > 0 && f.rng.Float64() < f.plan.LatencyProb {
		f.stats.LatencySpikes++
		stall = f.plan.Latency
	}
	f.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt passes through to the wrapped store.
func (f *FaultStore) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }

// Size passes through to the wrapped store.
func (f *FaultStore) Size() int64 { return f.inner.Size() }

// Truncate passes through to the wrapped store.
func (f *FaultStore) Truncate(size int64) error { return f.inner.Truncate(size) }

var _ Store = (*FaultStore)(nil)
