package storage

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// faultReader builds a DiskReader over a FaultStore so tests can script
// device failures under the block cache.
func faultReader(t *testing.T, n, length int, opt DiskReaderOptions) (*DiskReader, *FaultStore) {
	t.Helper()
	coll := makeCollection(n, length)
	fs := NewFaultStore(NewMemStore(), FaultPlan{})
	f, err := WriteCollection(fs, coll)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Retry.Sleep == nil {
		opt.Retry.Sleep = func(time.Duration) {} // instant backoff in tests
	}
	r, err := NewDiskReader(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r, fs
}

func TestFaultStoreDeterministic(t *testing.T) {
	// The same seed over the same serial read sequence injects the same
	// faults at the same positions.
	mem := NewMemStore()
	if _, err := mem.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		fs := NewFaultStore(mem, FaultPlan{Seed: 7, TransientProb: 0.3})
		outcomes := make([]bool, 64)
		buf := make([]byte, 16)
		for i := range outcomes {
			_, err := fs.ReadAt(buf, int64(i*16))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: run A fault=%v, run B fault=%v (same seed)", i, a[i], b[i])
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("TransientProb 0.3 over 64 reads injected nothing")
	}
}

func TestFaultStorePermanentRange(t *testing.T) {
	mem := NewMemStore()
	if _, err := mem.WriteAt(make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(mem, FaultPlan{PermanentRanges: []Range{{Start: 100, End: 200}}})
	buf := make([]byte, 50)
	if _, err := fs.ReadAt(buf, 0); err != nil {
		t.Fatalf("read outside dead range failed: %v", err)
	}
	_, err := fs.ReadAt(buf, 120)
	var re *ReadError
	if !errors.As(err, &re) || re.Class != FaultPermanent {
		t.Fatalf("read in dead range: err = %v, want permanent ReadError", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected fault does not unwrap to ErrInjected: %v", err)
	}
	if IsTransient(err) {
		t.Fatal("permanent fault classified transient")
	}
	// Overlap at the edge counts; adjacency does not.
	if _, err := fs.ReadAt(buf, 200); err != nil {
		t.Fatalf("read adjacent to dead range failed: %v", err)
	}
	if st := fs.Stats(); st.PermanentFaults != 1 {
		t.Fatalf("PermanentFaults = %d, want 1", st.PermanentFaults)
	}
}

func TestFaultStoreBurstAndHeal(t *testing.T) {
	mem := NewMemStore()
	if _, err := mem.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	// TransientProb 1 with burst 3: every burst is 3 consecutive failures.
	fs := NewFaultStore(mem, FaultPlan{Seed: 1, TransientProb: 1, TransientBurst: 3})
	buf := make([]byte, 8)
	for i := 0; i < 6; i++ {
		if _, err := fs.ReadAt(buf, 0); !IsTransient(err) {
			t.Fatalf("read %d: err = %v, want transient fault", i, err)
		}
	}
	fs.Heal()
	if _, err := fs.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after Heal failed: %v", err)
	}
	st := fs.Stats()
	if st.TransientFaults != 6 || st.Reads != 7 {
		t.Fatalf("stats = %+v, want 6 transient faults over 7 reads", st)
	}
}

func TestFaultStoreLatencySpike(t *testing.T) {
	mem := NewMemStore()
	if _, err := mem.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(mem, FaultPlan{Seed: 2, LatencyProb: 1, Latency: time.Millisecond})
	t0 := time.Now()
	if _, err := fs.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < time.Millisecond {
		t.Fatalf("latency spike slept %v, want >= 1ms", elapsed)
	}
	if st := fs.Stats(); st.LatencySpikes != 1 {
		t.Fatalf("LatencySpikes = %d, want 1", st.LatencySpikes)
	}
}

func TestDiskReaderRetriesTransient(t *testing.T) {
	// A 2-read burst under a 3-retry policy: the access succeeds after
	// retries, values intact, retry counter bumped, no fault recorded.
	r, fs := faultReader(t, 64, 8, DiskReaderOptions{BlockSeries: 16})
	// Script exactly two consecutive transient failures, then a clean device.
	fs.mu.Lock()
	fs.burst = 2
	fs.mu.Unlock()
	got := r.At(0)
	if len(got) != 8 {
		t.Fatalf("series length %d, want 8", len(got))
	}
	st := r.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.TransientFaults != 0 || st.PermanentFaults != 0 {
		t.Fatalf("faults = %d/%d after successful retry, want 0/0", st.TransientFaults, st.PermanentFaults)
	}
}

func TestDiskReaderRetryExhaustionPanicsTyped(t *testing.T) {
	r, fs := faultReader(t, 64, 8, DiskReaderOptions{BlockSeries: 16, Retry: RetryPolicy{MaxRetries: 2}})
	fs.SetPlan(FaultPlan{Seed: 4, TransientProb: 1, TransientBurst: 100})
	defer func() {
		rec := recover()
		be, ok := rec.(*BlockError)
		if !ok {
			t.Fatalf("panic payload %T (%v), want *BlockError", rec, rec)
		}
		if be.Class != FaultTransient || be.Block != 0 {
			t.Fatalf("BlockError = %+v, want transient block 0", be)
		}
		st := r.Stats()
		if st.Retries != 2 || st.TransientFaults != 1 {
			t.Fatalf("retries/faults = %d/%d, want 2 retries then 1 transient fault", st.Retries, st.TransientFaults)
		}
		// The failed block was dropped: healing the store makes the same
		// access succeed — nothing is poisoned.
		fs.Heal()
		if got := r.At(0); len(got) != 8 {
			t.Fatalf("post-heal read length %d, want 8", len(got))
		}
	}()
	r.At(0)
}

func TestDiskReaderPermanentFailsFast(t *testing.T) {
	r, fs := faultReader(t, 64, 8, DiskReaderOptions{BlockSeries: 16})
	fs.SetPlan(FaultPlan{PermanentRanges: []Range{{Start: 0, End: 1 << 30}}})
	defer func() {
		rec := recover()
		be, ok := rec.(*BlockError)
		if !ok {
			t.Fatalf("panic payload %T (%v), want *BlockError", rec, rec)
		}
		if be.Class != FaultPermanent {
			t.Fatalf("class = %v, want permanent", be.Class)
		}
		var re *ReadError
		if !errors.As(be, &re) || re.Class != FaultPermanent {
			t.Fatalf("BlockError does not unwrap to the injected ReadError: %v", be)
		}
		st := r.Stats()
		if st.Retries != 0 {
			t.Fatalf("permanent fault was retried %d times, want 0", st.Retries)
		}
		if st.PermanentFaults != 1 {
			t.Fatalf("PermanentFaults = %d, want 1", st.PermanentFaults)
		}
	}()
	r.At(0)
}

func TestDiskReaderPrefetchSwallowsFaults(t *testing.T) {
	r, fs := faultReader(t, 64, 8, DiskReaderOptions{BlockSeries: 8})
	fs.SetPlan(FaultPlan{PermanentRanges: []Range{{Start: 0, End: 1 << 30}}})
	// Prefetch over a dead device must not panic; the demand access later
	// surfaces the fault.
	r.Prefetch([]int32{0, 8, 16})
	fs.Heal()
	if got := r.At(0); len(got) != 8 {
		t.Fatalf("post-heal read length %d, want 8", len(got))
	}
}

func TestDiskReaderSingleFlightFaultSharedByWaiters(t *testing.T) {
	// Two goroutines race the same dead block: the single-flight load fails
	// once and both observe a typed *BlockError panic; afterwards the block
	// is reloadable.
	r, fs := faultReader(t, 64, 8, DiskReaderOptions{BlockSeries: 64})
	fs.SetPlan(FaultPlan{PermanentRanges: []Range{{Start: 0, End: 1 << 30}}})
	panics := make(chan any, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { panics <- recover() }()
			r.At(0)
			panics <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		rec := <-panics
		if _, ok := rec.(*BlockError); !ok {
			t.Fatalf("goroutine %d: panic payload %T, want *BlockError", i, rec)
		}
	}
	fs.Heal()
	if got := r.At(0); len(got) != 8 {
		t.Fatalf("post-heal read length %d, want 8", len(got))
	}
}

// FuzzFaultPlan drives random fault plans through a DiskReader: whatever
// the plan, an access either returns the exact stored values or panics with
// a typed *BlockError — never a corrupt result, never an untyped panic.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), 0.5, 3, false, 0)
	f.Add(int64(42), 0.0, 0, true, 5)
	f.Add(int64(7), 1.0, 8, false, 63)
	f.Fuzz(func(t *testing.T, seed int64, prob float64, burst int, dead bool, pos int) {
		if prob < 0 || prob > 1 || burst < 0 || burst > 1000 {
			t.Skip()
		}
		const n, length = 64, 8
		coll := makeCollection(n, length)
		fs := NewFaultStore(NewMemStore(), FaultPlan{})
		sf, err := WriteCollection(fs, coll)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewDiskReader(sf, DiskReaderOptions{
			BlockSeries: 8,
			CacheBytes:  1,
			Retry:       RetryPolicy{MaxRetries: 2, Sleep: func(time.Duration) {}},
		})
		if err != nil {
			t.Fatal(err)
		}
		plan := FaultPlan{Seed: seed, TransientProb: prob, TransientBurst: burst}
		if dead {
			plan.PermanentRanges = []Range{{Start: 0, End: 256}}
		}
		fs.SetPlan(plan)
		i := ((pos % n) + n) % n
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(*BlockError); !ok {
						t.Fatalf("untyped panic %T: %v", rec, rec)
					}
				}
			}()
			got := r.At(i)
			want := coll.At(i)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("series %d differs at %d under plan %+v", i, k, plan)
				}
			}
		}()
		// After healing, every access succeeds with exact values.
		fs.Heal()
		got, want := r.At(i), coll.At(i)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("post-heal series %d differs at %d", i, k)
			}
		}
	})
}

// TestFaultStorePassthroughSurface pins the non-read surface: plans are
// readable back, Active distinguishes the zero plan, and writes, Size and
// Truncate pass through to the wrapped store untouched by any plan.
func TestFaultStorePassthroughSurface(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultPlan{})
	if fs.Plan().Active() {
		t.Fatal("zero plan reports Active")
	}
	plan := FaultPlan{Seed: 9, TransientProb: 0.5, PermanentRanges: []Range{{Start: 0, End: 4}}}
	fs.SetPlan(plan)
	if got := fs.Plan(); !got.Active() || got.TransientProb != plan.TransientProb || len(got.PermanentRanges) != 1 {
		t.Fatalf("Plan() = %+v, want the set plan back", got)
	}
	if _, err := fs.WriteAt([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Size(); got != 8 {
		t.Fatalf("Size() = %d, want 8 (writes bypass the plan)", got)
	}
	if err := fs.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := fs.Size(); got != 4 {
		t.Fatalf("Size() = %d after Truncate(4)", got)
	}
	// The dead range still fires on reads, and its typed error renders the
	// class, range and cause.
	_, err := fs.ReadAt(make([]byte, 2), 1)
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("read in a dead range returned %v, want *ReadError", err)
	}
	msg := re.Error()
	for _, sub := range []string{"permanent", "[1,3)", "injected fault"} {
		if !strings.Contains(msg, sub) {
			t.Fatalf("ReadError %q lacks %q", msg, sub)
		}
	}
}

// TestBlockErrorRendering pins the typed panic payload's message and
// unwrap chain: logs must name the block and class, and errors.Is must
// reach the injected cause through it.
func TestBlockErrorRendering(t *testing.T) {
	be := &BlockError{Block: 3, Class: FaultPermanent,
		Err: &ReadError{Off: 64, Len: 32, Class: FaultPermanent, Err: ErrInjected}}
	msg := be.Error()
	for _, sub := range []string{"block 3", "permanent"} {
		if !strings.Contains(msg, sub) {
			t.Fatalf("BlockError %q lacks %q", msg, sub)
		}
	}
	if !errors.Is(be, ErrInjected) {
		t.Fatal("BlockError does not unwrap to the injected cause")
	}
	if IsTransient(be) {
		t.Fatal("permanent BlockError classified transient")
	}
}
