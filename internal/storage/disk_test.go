package storage

import (
	"sync"
	"testing"
	"time"
)

func TestDiskParallelChannelsOverlap(t *testing.T) {
	// With Parallelism 4, four concurrent 40ms requests should take ~40ms,
	// not ~160ms.
	profile := Profile{Name: "par", Seek: 40 * time.Millisecond, Parallelism: 4}
	d := NewDisk(NewMemStore(), profile)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.WriteAt([]byte{1}, int64(i*100)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 120*time.Millisecond {
		t.Fatalf("4 concurrent ops on 4 channels took %v, expected ~40ms", elapsed)
	}
	// Modeled busy time is still the sum over channels.
	if busy := d.Metrics().WriteBusy; busy < 150*time.Millisecond {
		t.Fatalf("WriteBusy = %v, want ~160ms (sum of ops)", busy)
	}
}

func TestDiskSingleChannelQueues(t *testing.T) {
	// Parallelism 1 (or 0): requests serialize.
	profile := Profile{Name: "serial", Seek: 30 * time.Millisecond}
	d := NewDisk(NewMemStore(), profile)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.WriteAt([]byte{1}, int64(i*100)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("3 serialized 30ms ops took only %v", elapsed)
	}
}

func TestDiskDebtBatchingPreservesTotalTime(t *testing.T) {
	// Many sub-granularity operations must accumulate to roughly their
	// modeled total, not round each up to scheduler granularity.
	profile := Profile{Name: "debt", ReadBW: 100e6, WriteBW: 100e6} // 10ns/byte
	d := NewDisk(NewMemStore(), profile)
	if err := d.Truncate(1 << 20); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000) // 10µs modeled per op
	start := time.Now()
	const ops = 2000 // 20ms modeled total
	for i := 0; i < ops; i++ {
		if _, err := d.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Naive per-op sleeping would take ≥ 2000 × ~60µs = 120ms+.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("2000 micro-ops took %v; debt batching broken", elapsed)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("2000 micro-ops took %v; modeled time not charged", elapsed)
	}
}

func TestDiskScaleZeroNeverSleeps(t *testing.T) {
	d := NewDisk(NewMemStore(), Profile{Name: "x", Seek: time.Second})
	d.SetScale(0)
	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := d.WriteAt([]byte{1}, int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("scale-0 disk slept: %v", elapsed)
	}
	// Modeled time still accumulates.
	if d.Metrics().WriteBusy < 9*time.Second {
		t.Fatalf("WriteBusy = %v, want ~10s modeled", d.Metrics().WriteBusy)
	}
}

func TestDiskSequentialDetection(t *testing.T) {
	d := NewDisk(NewMemStore(), Unthrottled)
	if _, err := d.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if _, err := d.WriteAt(make([]byte, 100), int64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	if seeks := d.Metrics().Seeks; seeks != 1 {
		t.Fatalf("sequential writes produced %d seeks, want 1 (initial)", seeks)
	}
}

func TestDiskProfileAndSize(t *testing.T) {
	d := NewDisk(NewMemStore(), Unthrottled)
	if got := d.Profile(); got.Name != Unthrottled.Name {
		t.Fatalf("Profile() = %q, want %q", got.Name, Unthrottled.Name)
	}
	if err := d.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	if got := d.Size(); got != 4096 {
		t.Fatalf("Size() = %d after Truncate(4096)", got)
	}
}
